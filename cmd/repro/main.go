// Command repro regenerates every table and figure of "Zeros Are
// Heroes: NSEC3 Parameter Settings in the Wild" (IMC 2024) from the
// simulated reproduction, printing each alongside the paper's reported
// numbers. Absolute counts are scale-dependent (the default universe is
// a 1:10,000-scale calibrated synthesis); the shapes — who wins, where
// the thresholds sit, which shares dominate — are the reproduction
// targets recorded in EXPERIMENTS.md.
//
//	repro -all                # everything (default)
//	repro -table1             # RFC 9276 guideline table
//	repro -fig1 -table2 -tlds # domain-side experiment (§5.1)
//	repro -fig2               # Tranco popularity study
//	repro -fig3               # resolver-side experiment (§5.2)
//
//	-scale divides the paper's population sizes (default 10000 for
//	domains, 200 for resolvers); -seed fixes the universe.
//
//	-metrics :9090 serves /metrics + /healthz while experiments run;
//	-trace trace.ndjson records per-shard survey phase timings.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/compliance"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/respop"
	"repro/internal/scanner"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		all      = flag.Bool("all", false, "run every experiment")
		table1   = flag.Bool("table1", false, "Table 1: RFC 9276 guidelines")
		fig1     = flag.Bool("fig1", false, "Figure 1 + §5.1 domain stats")
		fig2     = flag.Bool("fig2", false, "Figure 2: Tranco popularity study")
		table2   = flag.Bool("table2", false, "Table 2: name server operators")
		tlds     = flag.Bool("tlds", false, "§5.1 TLD statistics")
		fig3     = flag.Bool("fig3", false, "Figure 3 + §5.2 resolver stats")
		timeline = flag.Bool("timeline", false, "§6 future work: compliance over the 2020–2024 migrations")

		statewalk       = flag.Bool("statewalk", false, "differential state-machine walk: every (topology × profile) cell vs the expectation model")
		statewalkBudget = flag.Int("statewalk-budget", 0, "statewalk: bound the enumeration to this many cells (0 = all)")
		statewalkOut    = flag.String("statewalk-out", "statewalk.ndjson", "statewalk: write divergence records to this NDJSON file")
		statewalkCells  = flag.Bool("statewalk-cells", false, "statewalk: record every cell, not just divergences")
		statewalkCorpus = flag.String("statewalk-corpus", "", "statewalk: write fuzz-corpus seeds minimized from unexplained divergences under this directory")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		shards   = flag.Int("shards", 1, "stream the domain survey in this many bounded shards (same results at any value)")
		signing  = flag.String("signing", "lazy", "zone signing mode for the survey: lazy (sign on first query) or eager (sign at deploy); same results either way")
		dScale   = flag.Int("domain-scale", 10000, "divide the 302 M-domain universe by this")
		rScale   = flag.Int("resolver-scale", 200, "divide the resolver fleet by this")
		tScale   = flag.Int("tranco-scale", 100, "divide the 1 M Tranco list by this")
		metrics  = flag.String("metrics", "", "serve /metrics and /healthz on this address while running")
		traceOut = flag.String("trace", "", "append survey phase spans to this NDJSON file")

		serveAddr  = flag.String("serve", "", "coordinate the domain survey for -worker processes on this TCP address (e.g. 127.0.0.1:0)")
		workerAddr = flag.String("worker", "", "execute survey shards for the coordinator at this TCP address (start with the same survey flags)")
		stateDir   = flag.String("state-dir", "", "coordinator: directory for crash-safe shard checkpoints")
		resume     = flag.Bool("resume", false, "coordinator: resume a survey from -state-dir instead of starting fresh")
		leaseTTL   = flag.Duration("lease-ttl", 0, "coordinator: re-lease shards from workers silent this long (default 10s)")
	)
	flag.Parse()
	if !(*table1 || *fig1 || *fig2 || *table2 || *tlds || *fig3 || *timeline || *statewalk) {
		*all = true
	}
	var signingMode core.SigningMode
	switch *signing {
	case "lazy":
		signingMode = core.SigningLazy
	case "eager":
		signingMode = core.SigningEager
	default:
		return fmt.Errorf("unknown -signing mode %q (want lazy or eager)", *signing)
	}
	ctx := context.Background()

	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		bound, stop, err := obs.Serve(*metrics, reg)
		if err != nil {
			return err
		}
		// Best-effort teardown: the process is exiting anyway.
		defer func() { _ = stop() }()
		fmt.Fprintf(os.Stderr, "repro: metrics on http://%s/metrics\n", bound)
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		// Spans are flushed line-by-line by the encoder; Close only
		// releases the descriptor.
		defer func() { _ = f.Close() }()
		tracer = obs.NewTracer(scanner.NewEncoder(f))
	}

	if *serveAddr != "" || *workerAddr != "" {
		if *serveAddr != "" && *workerAddr != "" {
			return fmt.Errorf("-serve and -worker are mutually exclusive")
		}
		// Distributed mode runs exactly one study kind: -fig3 selects the
		// §4.2 resolver study, anything else the §4.1 domain survey.
		if *fig3 {
			if *fig1 || *table2 || *tlds || *fig2 || *all {
				return fmt.Errorf("distributed mode runs one study at a time: pass -fig3 alone or the domain-survey sections alone")
			}
			rspec, err := core.ResolverStudyConfig{
				ScaleDen: *rScale,
				Seed:     *seed,
				Shards:   *shards,
			}.Resolve()
			if err != nil {
				return err
			}
			if *workerAddr != "" {
				return runDistResolverWorker(ctx, *workerAddr, rspec, reg, tracer)
			}
			return runDistResolverCoordinator(ctx, *serveAddr, rspec, reg, *stateDir, *resume, *leaseTTL)
		}
		spec, err := core.SurveyConfig{
			Registered: population.FullRegistered / *dScale,
			Seed:       *seed,
			Shards:     *shards,
			Signing:    signingMode,
		}.Resolve()
		if err != nil {
			return err
		}
		if *workerAddr != "" {
			return runDistWorker(ctx, *workerAddr, spec, reg, tracer)
		}
		return runDistCoordinator(ctx, *serveAddr, spec, reg, *stateDir, *resume, *leaseTTL, distSections{
			fig1:   *all || *fig1,
			table2: *all || *table2,
			tlds:   *all || *tlds,
		})
	}

	if *statewalk {
		if err := runStatewalk(ctx, statewalkOptions{
			seed:      *seed,
			budget:    *statewalkBudget,
			out:       *statewalkOut,
			emitCells: *statewalkCells,
			corpusDir: *statewalkCorpus,
			obs:       reg,
		}); err != nil {
			return err
		}
	}

	if *all || *table1 {
		printTable1()
	}

	var survey *core.SurveyReport
	if *all || *fig1 || *table2 || *tlds {
		fmt.Printf("== Running the §4.1 domain survey (%d domains, 1:%d scale, seed %d)…\n\n",
			population.FullRegistered / *dScale, *dScale, *seed)
		var err error
		survey, err = core.RunSurvey(ctx, core.SurveyConfig{
			Registered: population.FullRegistered / *dScale,
			Seed:       *seed,
			Shards:     *shards,
			Signing:    signingMode,
			Obs:        reg,
			Trace:      tracer,
		})
		if err != nil {
			return err
		}
	}
	if (*all || *fig1) && survey != nil {
		printFig1(survey)
	}
	if (*all || *table2) && survey != nil {
		printTable2(survey)
	}
	if (*all || *tlds) && survey != nil {
		printTLDs(survey)
	}

	if *all || *fig2 {
		fmt.Printf("== Running the Tranco popularity study (%d ranked domains, 1:%d scale, seed %d)…\n\n",
			1000000 / *tScale, *tScale, *seed)
		tr, err := core.RunTrancoStudy(ctx, core.TrancoConfig{
			ListSize: 1000000 / *tScale,
			Seed:     *seed,
		})
		if err != nil {
			return err
		}
		printFig2(tr)
	}

	if *all || *fig3 {
		fmt.Printf("== Running the §4.2 resolver study (fleet at 1:%d scale, %d shard(s), seed %d)…\n\n", *rScale, *shards, *seed)
		rs, err := core.RunResolverStudy(ctx, core.ResolverStudyConfig{
			ScaleDen: *rScale,
			Seed:     *seed,
			Shards:   *shards,
			Obs:      reg,
			Trace:    tracer,
		})
		if err != nil {
			return err
		}
		printFig3(rs)
	}

	if *all || *timeline {
		samples, err := core.RunTimeline(ctx, core.TimelineConfig{
			Registered: population.FullRegistered / *dScale,
			Seed:       *seed,
		})
		if err != nil {
			return err
		}
		core.RenderTimeline(os.Stdout, samples)
		fmt.Println()
	}
	return nil
}

func printTable1() {
	fmt.Println("==== Table 1: RFC 9276 guidelines for authoritative name servers (1–5) and validating resolvers (6–12)")
	for _, g := range compliance.Guidelines() {
		aud := "auth"
		if g.Audience == compliance.AudienceResolver {
			aud = "res"
		}
		fmt.Printf("  %2d. [%-4s] %-15s %s\n", g.Item, aud, g.Keyword, g.Guidance)
	}
	fmt.Println()
}

func printFig1(s *core.SurveyReport) {
	agg := s.Agg
	fmt.Println("==== Figure 1 + §5.1 registered-domain statistics")
	fmt.Printf("  registered domains scanned        %9d   (paper: 302 M, scaled)\n", agg.Total)
	fmt.Printf("  DNSSEC-enabled                    %9d = %5.1f %%  (paper: 26.6 M = 8.8 %%)\n",
		agg.DNSSECEnabled, compliance.Pct(agg.DNSSECEnabled, agg.Total))
	fmt.Printf("  NSEC3-enabled                     %9d = %5.1f %% of DNSSEC  (paper: 15.5 M = 58.9 %%)\n",
		agg.NSEC3Enabled, compliance.Pct(agg.NSEC3Enabled, agg.DNSSECEnabled))
	fmt.Printf("  Item 2 OK (0 additional iter.)    %9d = %5.1f %%  (paper: 12.2 %% — i.e. 87.8 %% non-compliant)\n",
		agg.Item2OK, compliance.Pct(agg.Item2OK, agg.NSEC3Enabled))
	fmt.Printf("  Item 3 OK (no salt)               %9d = %5.1f %%  (paper: 8.6 %%)\n",
		agg.Item3OK, compliance.Pct(agg.Item3OK, agg.NSEC3Enabled))
	fmt.Printf("  opt-out set (Items 4/5)           %9d = %5.1f %%  (paper: 6.4 %%)\n",
		agg.OptOut, compliance.Pct(agg.OptOut, agg.NSEC3Enabled))
	fmt.Println()
	analysis.RenderCDF(os.Stdout, "  CDF of additional iterations (paper: 12.2 % at 0, 99.9 % ≤ 25, max 500)",
		s.IterCDF, []int{0, 1, 5, 10, 25, 50, 100, 150, 500})
	fmt.Println()
	analysis.RenderCDF(os.Stdout, "  CDF of salt length in bytes (paper: 8.6 % at 0, 97.2 % ≤ 10, max 160)",
		s.SaltCDF, []int{0, 1, 4, 8, 10, 40, 45, 160})
	fmt.Println()
}

func printTable2(s *core.SurveyReport) {
	fmt.Println("==== Table 2: top name server operators of NSEC3-enabled domains (paper: top 10 = 77.7 %)")
	rows := s.Operators.Top(10)
	analysis.RenderOperatorTable(os.Stdout, rows)
	fmt.Printf("  (of %d NSEC3-enabled domains with exclusive operators)\n\n", s.Operators.Total())
}

func printTLDs(s *core.SurveyReport) {
	fmt.Println("==== §5.1 TLD statistics (scanned end-to-end; registry calibrated to March 2024)")
	t := s.TLDs
	fmt.Printf("  TLDs scanned                      %6d   (paper: 1,449)\n", t.Total)
	fmt.Printf("  DNSSEC-enabled                    %6d   (paper: 1,354)\n", t.DNSSECEnabled)
	fmt.Printf("  NSEC3-enabled                     %6d   (paper: 1,302 = 96.2 %% of DNSSEC)\n", t.NSEC3Enabled)
	fmt.Printf("  zero additional iterations        %6d   (paper: 688)\n", t.Item2OK)
	fmt.Printf("  at 100 additional iterations      %6d   (paper: 447, all Identity Digital)\n", t.IterationsHist[100])
	fmt.Printf("  no salt                           %6d   (paper: 672)\n", t.Item3OK)
	fmt.Printf("  8-byte salt                       %6d   (paper: 558)\n", t.SaltLenHist[8])
	fmt.Printf("  10-byte salt                      %6d   (paper: 7, the maximum)\n", t.SaltLenHist[10])
	fmt.Printf("  opt-out                           %6d = %4.1f %%  (paper: 85.4 %%)\n",
		t.OptOut, compliance.Pct(t.OptOut, t.NSEC3Enabled))
	fmt.Printf("  open zone data (registry side)    %6d   (paper: 1,105 = 84.9 %%)\n", s.TLDAgg.OpenZoneData)
	fmt.Printf("  domains under Identity Digital    %6d   (paper: ≥12.6 M, scaled lower bound)\n\n",
		s.DomainsUnderIDTLDs)
}

func printFig2(tr *core.TrancoReport) {
	fmt.Println("==== Figure 2: NSEC3 among popular (Tranco-style) domains")
	fmt.Printf("  ranked domains scanned            %7d   (paper list: 1 M)\n", tr.ListSize)
	fmt.Printf("  DNSSEC-enabled                    %7d = %5.1f %%  (paper: 66.6 K = 6.7 %%)\n",
		tr.DNSSECEnabled, compliance.Pct(tr.DNSSECEnabled, tr.ListSize))
	fmt.Printf("  NSEC3-enabled                     %7d = %5.1f %% of DNSSEC  (paper: 27.2 K = 40.8 %%)\n",
		tr.NSEC3Enabled, compliance.Pct(tr.NSEC3Enabled, tr.DNSSECEnabled))
	fmt.Printf("  zero additional iterations        %7d = %5.1f %%  (paper: 6.2 K = 22.8 %%)\n",
		tr.ZeroIter, compliance.Pct(tr.ZeroIter, tr.NSEC3Enabled))
	fmt.Printf("  no salt                           %7d = %5.1f %%  (paper: 6.4 K = 23.6 %%)\n",
		tr.NoSalt, compliance.Pct(tr.NoSalt, tr.NSEC3Enabled))
	fmt.Printf("  both (fully compliant)            %7d = %5.1f %%  (paper: 3.5 K = 12.7 %%)\n",
		tr.Both, compliance.Pct(tr.Both, tr.NSEC3Enabled))
	// Uniformity of ranks: quartiles of the rank CDF should sit near
	// 25/50/75 % of the list (the paper's curves "increase uniformly").
	fmt.Printf("  rank quartiles of NSEC3 domains   p25=%d p50=%d p75=%d of %d (uniform ⇒ ≈ quarters)\n\n",
		tr.RankCDF.Percentile(0.25), tr.RankCDF.Percentile(0.50),
		tr.RankCDF.Percentile(0.75), tr.ListSize)
}

func printFig3(rs *core.ResolverStudyReport) {
	fmt.Println("==== Figure 3 + §5.2 resolver statistics")
	quads := []respop.Quadrant{respop.OpenIPv4, respop.OpenIPv6, respop.ClosedIPv4, respop.ClosedIPv6}
	for _, q := range quads {
		if s := rs.Series[q]; s != nil {
			analysis.RenderRCodeSeries(os.Stdout, s)
			analysis.SparkRender(os.Stdout, s)
			fmt.Println()
		}
	}
	var deployed, population int
	for _, q := range quads {
		deployed += rs.Deployed[q]
		population += rs.Population[q]
	}
	fmt.Printf("  deployed fleet                    %6d resolvers (modeling a %d-resolver population; paper: 1.9 M open + 2.5 K closed)\n",
		deployed, population)
	fmt.Printf("  probe failures (no transcript)    %6d\n", rs.ProbeFailures)
	o := rs.Overall
	fmt.Printf("  validators (all quadrants)        %6d of %d probed\n", o.Validators, o.Probed)
	fmt.Printf("  Item 6 (insecure above a limit)   %6d = %5.1f %%  (paper: 59.9 %%)\n",
		o.Item6, compliance.Pct(o.Item6, o.Validators))
	fmt.Printf("  Item 8 (SERVFAIL above a limit)   %6d = %5.1f %%  (paper: 18.4 %%)\n",
		o.Item8, compliance.Pct(o.Item8, o.Validators))
	fmt.Println("  insecure limits observed (paper: 150 dominant, 100 common, 50 = 150/12.5):")
	printHist(o.InsecureLimits)
	fmt.Println("  SERVFAIL start points observed (paper: mostly 151; 418 resolvers at 1; 92 at 101):")
	printHist(o.ServfailFroms)
	fmt.Printf("  Item 7 violations                 %6d = %5.2f %%  (paper: 0.2 %%)\n",
		o.Item7Violations, compliance.Pct(o.Item7Violations, o.Validators))
	fmt.Printf("  three-phase (Item 12 gap)         %6d = %5.1f %%  (paper: 4.3 %%)\n",
		o.ThreePhase, compliance.Pct(o.ThreePhase, o.Validators))
	limited := o.Item6 + o.Item8
	fmt.Printf("  EDE attached (any code)           %6d = %5.1f %% of limit-implementing  (paper: <18 %% with code 27)\n",
		o.EDEAny, compliance.Pct(o.EDEAny, limited))
	fmt.Printf("  EDE INFO-CODE 27 specifically     %6d = %5.1f %%\n",
		o.EDE27, compliance.Pct(o.EDE27, limited))
	fmt.Printf("  RA echoed (broken forwarders)     %6d\n\n", o.EchoRA)
}

func printHist(h map[int]int) {
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Printf("    limit %4d: %6d resolvers\n", k, h[k])
	}
}
