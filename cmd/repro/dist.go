package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/distsurvey"
	"repro/internal/obs"
)

// Distributed survey mode: `repro -serve ADDR` runs the coordinator —
// it plans the shards, leases them to workers, merges their results,
// and prints the same §5.1 sections the in-process survey prints.
// `repro -worker ADDR` runs a worker that executes leased shards; it
// must be started with the same survey flags (-domain-scale, -seed,
// -shards, -signing), which the hello handshake enforces.

// distSections selects which survey sections the coordinator prints.
type distSections struct {
	fig1, table2, tlds bool
}

// runDistCoordinator binds addr, serves the survey to workers, and
// prints the merged report.
func runDistCoordinator(ctx context.Context, addr string, spec core.SurveySpec, reg *obs.Registry, stateDir string, resume bool, leaseTTL time.Duration, show distSections) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The bound address goes to stderr so scripts (and CI) can discover
	// a :0 ephemeral port.
	fmt.Fprintf(os.Stderr, "repro: coordinating on %s\n", ln.Addr())
	coord, err := distsurvey.NewCoordinator(distsurvey.Config{
		Spec:     spec,
		Obs:      reg,
		StateDir: stateDir,
		Resume:   resume,
		LeaseTTL: leaseTTL,
	})
	if err != nil {
		// Serve never runs, so the listener must be released here.
		_ = ln.Close()
		return err
	}
	if n := coord.CheckpointsLoaded(); n > 0 {
		fmt.Fprintf(os.Stderr, "repro: resumed %d checkpointed shard(s) from %s\n", n, stateDir)
	}
	fmt.Printf("== Coordinating the §4.1 domain survey (%d domains, %d shards, seed %d)…\n\n",
		spec.Registered, spec.Shards, spec.Seed)
	report, err := coord.Serve(ctx, ln)
	if err != nil {
		return err
	}
	if show.fig1 {
		printFig1(report)
	}
	if show.table2 {
		printTable2(report)
	}
	if show.tlds {
		printTLDs(report)
	}
	return nil
}

// runDistResolverCoordinator is runDistCoordinator for the §4.2
// resolver study (`repro -fig3 -serve ADDR`).
func runDistResolverCoordinator(ctx context.Context, addr string, spec core.ResolverStudySpec, reg *obs.Registry, stateDir string, resume bool, leaseTTL time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "repro: coordinating on %s\n", ln.Addr())
	coord, err := distsurvey.NewResolverCoordinator(distsurvey.ResolverConfig{
		Spec:     spec,
		Obs:      reg,
		StateDir: stateDir,
		Resume:   resume,
		LeaseTTL: leaseTTL,
	})
	if err != nil {
		// ServeResolverStudy never runs, so release the listener here.
		_ = ln.Close()
		return err
	}
	if n := coord.CheckpointsLoaded(); n > 0 {
		fmt.Fprintf(os.Stderr, "repro: resumed %d checkpointed shard(s) from %s\n", n, stateDir)
	}
	fmt.Printf("== Coordinating the §4.2 resolver study (fleet at 1:%d scale, %d shards, seed %d)…\n\n",
		spec.ScaleDen, spec.Shards, spec.Seed)
	report, err := coord.ServeResolverStudy(ctx, ln)
	if err != nil {
		return err
	}
	printFig3(report)
	return nil
}

// runDistResolverWorker is runDistWorker for the §4.2 resolver study
// (`repro -fig3 -worker ADDR`).
func runDistResolverWorker(ctx context.Context, addr string, spec core.ResolverStudySpec, reg *obs.Registry, tracer *obs.Tracer) error {
	conn, err := dialRetry(ctx, addr)
	if err != nil {
		return err
	}
	name, _ := os.Hostname() // best-effort label; empty is fine
	name = fmt.Sprintf("%s/%d", name, os.Getpid())
	fmt.Fprintf(os.Stderr, "repro: worker %s serving coordinator %s\n", name, addr)
	return distsurvey.RunResolverWorker(ctx, conn, spec, distsurvey.WorkerConfig{
		Name:  name,
		Obs:   reg,
		Trace: tracer,
	})
}

// runDistWorker dials the coordinator (retrying while it boots) and
// executes leased shards until the survey is done.
func runDistWorker(ctx context.Context, addr string, spec core.SurveySpec, reg *obs.Registry, tracer *obs.Tracer) error {
	conn, err := dialRetry(ctx, addr)
	if err != nil {
		return err
	}
	name, _ := os.Hostname() // best-effort label; empty is fine
	name = fmt.Sprintf("%s/%d", name, os.Getpid())
	fmt.Fprintf(os.Stderr, "repro: worker %s serving coordinator %s\n", name, addr)
	return distsurvey.RunWorker(ctx, conn, spec, distsurvey.WorkerConfig{
		Name:  name,
		Obs:   reg,
		Trace: tracer,
	})
}

// dialRetry connects to the coordinator, retrying for ~5 s so workers
// can be launched before (or alongside) the coordinator.
func dialRetry(ctx context.Context, addr string) (net.Conn, error) {
	var lastErr error
	for i := 0; i < 50; i++ {
		d := net.Dialer{}
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		select {
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("coordinator at %s unreachable: %w", addr, lastErr)
}
