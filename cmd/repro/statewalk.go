package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/scanner"
	"repro/internal/statewalk"
)

// statewalkOptions carries the -statewalk* flags.
type statewalkOptions struct {
	seed      uint64
	budget    int
	out       string
	emitCells bool
	corpusDir string
	obs       *obs.Registry
}

// runStatewalk executes the differential state-machine walk and prints
// its summary. Unexplained divergences are an error: either the
// resolver or the expectation model is wrong, and CI must not pass
// until the discrepancy is fixed or documented in Explain.
func runStatewalk(ctx context.Context, o statewalkOptions) error {
	fmt.Printf("== Running the differential state-machine walk (seed %d)…\n\n", o.seed)
	f, err := os.Create(o.out)
	if err != nil {
		return err
	}
	// Records are flushed line-by-line by the encoder; Close only
	// releases the descriptor.
	defer func() { _ = f.Close() }()

	sum, err := statewalk.Run(ctx, statewalk.Config{
		Seed:      o.seed,
		Limit:     o.budget,
		EmitCells: o.emitCells,
		Out:       scanner.NewEncoder(f),
		Obs:       o.obs,
	})
	if err != nil {
		return err
	}
	fmt.Println("==== Differential state-machine walk (topology × profile vs expectation model)")
	fmt.Printf("  topologies enumerated             %6d\n", sum.Topologies)
	fmt.Printf("  resolver profiles                 %6d\n", sum.Profiles)
	fmt.Printf("  cells executed                    %6d\n", sum.Cells)
	fmt.Printf("  divergences                       %6d  (report: %s)\n", sum.Divergences, o.out)
	fmt.Printf("  unexplained                       %6d\n\n", sum.Unexplained)

	if o.corpusDir != "" && len(sum.Seeds) > 0 {
		if err := statewalk.WriteSeeds(o.corpusDir, sum.Seeds); err != nil {
			return err
		}
		fmt.Printf("  wrote %d fuzz-corpus seeds under %s\n\n", len(sum.Seeds), o.corpusDir)
	}
	if sum.Unexplained > 0 {
		return fmt.Errorf("statewalk: %d unexplained divergences (see %s)", sum.Unexplained, o.out)
	}
	return nil
}
