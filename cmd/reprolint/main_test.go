package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunJSONClean drives the real loader over a package that is clean
// on the final tree and pins the -json contract: exit 0 and a JSON
// array (empty, not null).
func TestRunJSONClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "../../internal/nsec3"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d, stderr: %s", code, stderr.String())
	}
	var diags []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout.String())
	}
	if diags == nil {
		t.Fatal("clean run encoded as null, want []")
	}
	if len(diags) != 0 {
		t.Fatalf("expected no findings in internal/nsec3, got %v", diags)
	}
}

// TestRunBaselineFlags exercises the ratchet plumbing end to end:
// -write-baseline regenerates the file, -max-baseline caps its size,
// and stale entries are called out without failing the run. Matching
// semantics are pinned by the internal/lint baseline tests.
func TestRunBaselineFlags(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", path, "-write-baseline", "../../internal/nsec3"}, &stdout, &stderr); code != 0 {
		t.Fatalf("write-baseline exited %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	var b struct {
		Entries []map[string]string `json:"entries"`
	}
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("baseline is not JSON: %v\n%s", err, data)
	}
	if len(b.Entries) != 0 {
		t.Fatalf("clean package wrote %d baseline entries, want 0", len(b.Entries))
	}

	// A baseline over the -max-baseline cap fails even on a clean tree:
	// the ratchet bounds tolerated debt, not current findings.
	overfull := `{"entries":[{"analyzer":"goleak","file":"x.go","message":"m"}]}`
	if err := os.WriteFile(path, []byte(overfull), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", path, "-max-baseline", "0", "../../internal/nsec3"}, &stdout, &stderr); code != 1 {
		t.Fatalf("over-full baseline exited %d, want 1; stderr: %s", code, stderr.String())
	}

	// Under the cap, the unmatched entry is stale: reported, not fatal.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", path, "-max-baseline", "5", "../../internal/nsec3"}, &stdout, &stderr); code != 0 {
		t.Fatalf("stale-entry run exited %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "stale baseline entry") {
		t.Fatalf("expected stale-entry notice, stderr: %s", stderr.String())
	}
}

// TestRunSelfCheck drives the -selfcheck leg CI runs: every golden
// fixture replays clean and the JSON artifact carries one report per
// analyzer with its timing.
func TestRunSelfCheck(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-selfcheck", "../../internal/lint/testdata"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("selfcheck exited %d, stderr: %s", code, stderr.String())
	}
	var reps []struct {
		Analyzer  string   `json:"analyzer"`
		Findings  int      `json:"findings"`
		Missing   []string `json:"missing"`
		ElapsedMS *float64 `json:"elapsed_ms"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &reps); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(reps) == 0 {
		t.Fatal("selfcheck emitted no reports")
	}
	for _, r := range reps {
		if r.Analyzer == "" {
			t.Errorf("report lacks an analyzer name: %+v", r)
		}
		if r.ElapsedMS == nil {
			t.Errorf("%s: report lacks elapsed_ms", r.Analyzer)
		}
	}
}

// TestRunCleanCtxPropTargets pins the interprocedural fixes on the real
// tree: the packages rewired to thread context (atlas's probe path into
// testbed/netsim/authserver, and respop) plus the distributed-survey
// wire path (distsurvey's codec, coordinator, and worker loops) and the
// statewalk differential runner (ctx-guarded semaphore acquire, joined
// workers) stay clean under the full suite, call graph included, as do
// the resolver-study plan/execute/merge layers (core's shard runners
// and report builders, analysis and compliance merge methods). A
// regression that drops a ctx parameter, reintroduces
// context.Background() in library code, un-guards the frame codec's
// length word, or makes a Merge method impure fails here.
func TestRunCleanCtxPropTargets(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"../../internal/atlas", "../../internal/respop",
		"../../internal/netsim", "../../internal/authserver",
		"../../internal/testbed", "../../internal/distsurvey",
		"../../internal/statewalk", "../../internal/core",
		"../../internal/analysis", "../../internal/compliance",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

// TestRunSuppression exercises the -exclude plumbing end to end; the
// suppression semantics themselves are pinned by the internal/lint
// Suppress tests against synthetic diagnostics.
func TestRunSuppression(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exclude", "internal/nsec3", "../../internal/nsec3"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d, stderr: %s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("expected no output, got %s", stdout.String())
	}
}
