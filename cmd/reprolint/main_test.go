package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunJSONClean drives the real loader over a package that is clean
// on the final tree and pins the -json contract: exit 0 and a JSON
// array (empty, not null).
func TestRunJSONClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "../../internal/nsec3"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d, stderr: %s", code, stderr.String())
	}
	var diags []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout.String())
	}
	if diags == nil {
		t.Fatal("clean run encoded as null, want []")
	}
	if len(diags) != 0 {
		t.Fatalf("expected no findings in internal/nsec3, got %v", diags)
	}
}

// TestRunSuppression exercises the -exclude plumbing end to end; the
// suppression semantics themselves are pinned by the internal/lint
// Suppress tests against synthetic diagnostics.
func TestRunSuppression(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exclude", "internal/nsec3", "../../internal/nsec3"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d, stderr: %s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("expected no output, got %s", stdout.String())
	}
}
