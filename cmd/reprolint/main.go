// Command reprolint runs the project's static-analysis suite
// (internal/lint) over the packages matched by its arguments.
//
// Usage:
//
//	go run ./cmd/reprolint [-json] [-exclude path,path] \
//	    [-baseline file] [-write-baseline] [-max-baseline n] [patterns...]
//
// Patterns default to ./... . The exit status is 0 when no diagnostic
// survives suppression and the baseline, 1 when findings remain, and 2
// on load errors.
//
// Suppression: -exclude takes a comma-separated list of path fragments;
// a diagnostic whose file path contains any fragment is dropped. This
// is deliberately coarse — per-finding waivers belong in the code as
// justification comments (errdiscard), named constants (rfcconst), or
// //repro:nondeterministic directives (detertaint), not in driver
// flags.
//
// Self-check: -selfcheck <dir> ignores patterns and instead replays
// every analyzer's golden fixture under <dir> (normally
// internal/lint/testdata), emitting one JSON report per analyzer —
// findings count, want-marker mismatches, and run time. CI publishes
// that array as an artifact; a non-OK fixture exits 1. This catches a
// toolchain or refactor that shifts analyzer behavior even when no
// unit test names the changed shape.
//
// Baseline: -baseline names a committed JSON ratchet file. Findings
// matched by an entry (analyzer + file suffix + exact message) are
// tolerated; anything else fails the run, so the tolerated set can
// only shrink. Entries that match nothing are reported as stale —
// delete them. -write-baseline regenerates the file from the current
// findings (the escape hatch when adopting a new analyzer), and
// -max-baseline fails the run when the file holds more than n entries,
// keeping the ratchet honest in CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reprolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	exclude := fs.String("exclude", "", "comma-separated path fragments; matching files are suppressed")
	baselinePath := fs.String("baseline", "", "ratchet file of tolerated findings; new findings still fail")
	writeBaseline := fs.Bool("write-baseline", false, "regenerate the -baseline file from current findings and exit")
	maxBaseline := fs.Int("max-baseline", -1, "fail when the baseline holds more than this many entries (-1: no limit)")
	selfcheck := fs.String("selfcheck", "", "replay the golden fixtures under this testdata dir and emit per-analyzer JSON reports")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *selfcheck != "" {
		return runSelfCheck(*selfcheck, stdout, stderr)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}
	diags := lint.Run(pkgs, lint.Analyzers())
	diags = lint.Suppress(diags, lint.ParseExcludes(*exclude))

	if *writeBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(stderr, "reprolint: -write-baseline requires -baseline")
			return 2
		}
		if err := lint.WriteBaseline(*baselinePath, lint.FromDiagnostics(diags, "accepted when the baseline was regenerated; fix and delete")); err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "reprolint: wrote %d entr(ies) to %s\n", len(diags), *baselinePath)
		return 0
	}

	if *baselinePath != "" {
		base, err := lint.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
		if *maxBaseline >= 0 && len(base.Entries) > *maxBaseline {
			fmt.Fprintf(stderr, "reprolint: baseline %s holds %d entries, over the -max-baseline limit of %d; fix findings instead of accumulating waivers\n",
				*baselinePath, len(base.Entries), *maxBaseline)
			return 1
		}
		var stale []lint.BaselineEntry
		diags, stale = base.Apply(diags)
		for _, e := range stale {
			fmt.Fprintf(stderr, "reprolint: stale baseline entry (finding fixed — delete it): [%s] %s: %s\n", e.Analyzer, e.File, e.Message)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(lint.ToJSON(diags)); err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "reprolint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// runSelfCheck replays every golden fixture and writes the per-analyzer
// reports as a JSON array. A fixture whose diagnostics drift from its
// want markers fails the run.
func runSelfCheck(testdataDir string, stdout, stderr io.Writer) int {
	reps, err := lint.SelfCheck(testdataDir)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reps); err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}
	failed := 0
	for _, r := range reps {
		if !r.OK() {
			failed++
			for _, m := range r.Missing {
				fmt.Fprintf(stderr, "reprolint: %s: missing: %s\n", r.Analyzer, m)
			}
			for _, u := range r.Unexpected {
				fmt.Fprintf(stderr, "reprolint: %s: unexpected: %s\n", r.Analyzer, u)
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "reprolint: %d fixture(s) out of %d failed self-check\n", failed, len(reps))
		return 1
	}
	fmt.Fprintf(stderr, "reprolint: %d fixture(s) passed self-check\n", len(reps))
	return 0
}
