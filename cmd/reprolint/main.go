// Command reprolint runs the project's static-analysis suite
// (internal/lint) over the packages matched by its arguments.
//
// Usage:
//
//	go run ./cmd/reprolint [-json] [-exclude path,path] [patterns...]
//
// Patterns default to ./... . The exit status is 0 when no diagnostic
// survives suppression, 1 when findings remain, and 2 on load errors.
//
// Suppression: -exclude takes a comma-separated list of path fragments;
// a diagnostic whose file path contains any fragment is dropped. This
// is deliberately coarse — per-finding waivers belong in the code as
// justification comments (errdiscard) or named constants (rfcconst),
// not in driver flags.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reprolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	exclude := fs.String("exclude", "", "comma-separated path fragments; matching files are suppressed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}
	diags := lint.Run(pkgs, lint.Analyzers())
	diags = lint.Suppress(diags, lint.ParseExcludes(*exclude))

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(lint.ToJSON(diags)); err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "reprolint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
