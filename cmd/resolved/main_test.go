package main

import "testing"

func TestParseDS(t *testing.T) {
	ds, err := parseDS("12345 13 2 49FD46E6C4B45C55D4AC69CBD3CD34AC1AFE51DE52FE34EF3C5CF9E04F3C5CF9")
	if err != nil {
		t.Fatal(err)
	}
	if ds.KeyTag != 12345 || uint8(ds.Algorithm) != 13 || uint8(ds.DigestType) != 2 {
		t.Fatalf("ds = %+v", ds)
	}
	if len(ds.Digest) != 32 {
		t.Fatalf("digest %d bytes", len(ds.Digest))
	}
	for _, bad := range []string{"", "1 2", "x y z w", "1 2 3 nothex!"} {
		if _, err := parseDS(bad); err == nil {
			t.Errorf("parseDS(%q) accepted", bad)
		}
	}
}
