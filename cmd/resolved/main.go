// Command resolved runs the validating recursive resolver over real
// UDP/TCP sockets with a chosen NSEC3 iteration policy — point dig at
// it and watch RFC 9276 Items 6–12 in action.
//
//	resolved -listen 127.0.0.1:5301 -root 127.0.0.1:5300 \
//	         -anchor <ds-record> -profile bind9-2021
//
// The -profile values are the vendor behaviours the paper measured
// (see internal/respop): bind9-2021, bind9-cve-patched, unbound-2021,
// google-public-dns, quad9, cloudflare, opendns, technitium,
// strict-zero, legacy-2018, item7-violator, three-phase,
// non-validating.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/resolver"
	"repro/internal/respop"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resolved:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen  = flag.String("listen", "127.0.0.1:5301", "UDP/TCP listen address")
		rootArg = flag.String("root", "", "root name server address (required)")
		anchor  = flag.String("anchor", "", "trust anchor DS RDATA: 'keytag alg digesttype hex' (empty = no validation)")
		profile = flag.String("profile", "bind9-2021", "policy profile name")
		metrics = flag.String("metrics", "", "serve /metrics and /healthz on this address")
	)
	flag.Parse()
	if *rootArg == "" {
		flag.Usage()
		return fmt.Errorf("-root is required")
	}
	rootAddr, err := netip.ParseAddrPort(*rootArg)
	if err != nil {
		return fmt.Errorf("bad -root: %w", err)
	}
	var prof *respop.Profile
	for _, p := range respop.Profiles() {
		if p.Policy.Name == *profile {
			prof = &p
			break
		}
	}
	if prof == nil {
		var names []string
		for _, p := range respop.Profiles() {
			names = append(names, p.Policy.Name)
		}
		return fmt.Errorf("unknown profile %q; have: %s", *profile, strings.Join(names, ", "))
	}
	cfg := resolver.Config{
		Roots:     []netip.AddrPort{rootAddr},
		Exchanger: &netsim.UDPExchanger{},
		Policy:    prof.Policy,
	}
	if *anchor != "" {
		ds, err := parseDS(*anchor)
		if err != nil {
			return err
		}
		cfg.TrustAnchor = []dnswire.DS{ds}
	}
	var handler netsim.Handler
	if *metrics != "" {
		reg := obs.NewRegistry()
		cfg.Obs = reg
		queries := reg.Counter("resolved_queries_total", "client queries handled over UDP and TCP")
		res := resolver.New(cfg)
		handler = netsim.HandlerFunc(func(ctx context.Context, from netip.AddrPort, q *dnswire.Message) *dnswire.Message {
			queries.Inc()
			return res.Handle(ctx, from, q)
		})
		bound, stop, err := obs.Serve(*metrics, reg)
		if err != nil {
			return err
		}
		// Best-effort teardown: the process is exiting anyway.
		defer func() { _ = stop() }()
		fmt.Printf("resolved: metrics on http://%s/metrics\n", bound)
	} else {
		handler = resolver.New(cfg)
	}
	srv := &netsim.Server{Handler: handler}
	addr, err := srv.Listen(context.Background(), *listen)
	if err != nil {
		return err
	}
	fmt.Printf("resolved: %s (%s) listening on %s, root %s, validation=%v\n",
		prof.Policy.Name, prof.Vendor, addr, rootAddr, len(cfg.TrustAnchor) > 0)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return srv.Close()
}

// parseDS parses "keytag alg digesttype hexdigest".
func parseDS(s string) (dnswire.DS, error) {
	var tag, alg, dt int
	var digest string
	if _, err := fmt.Sscanf(s, "%d %d %d %s", &tag, &alg, &dt, &digest); err != nil {
		return dnswire.DS{}, fmt.Errorf("bad -anchor (want 'keytag alg digesttype hex'): %w", err)
	}
	raw := make([]byte, len(digest)/2)
	if _, err := fmt.Sscanf(strings.ToLower(digest), "%x", &raw); err != nil {
		return dnswire.DS{}, fmt.Errorf("bad -anchor digest: %w", err)
	}
	return dnswire.DS{
		KeyTag:     uint16(tag),
		Algorithm:  dnswire.SecAlgorithm(alg),
		DigestType: dnswire.DigestType(dt),
		Digest:     raw,
	}, nil
}
