package main

import "testing"

func TestRunVector(t *testing.T) {
	// RFC 5155 Appendix A vector; run prints to stdout, so only the
	// error path is asserted here (the hash itself is covered in
	// internal/nsec3).
	if err := run([]string{"AABBCCDD", "1", "12", "example"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-", "1", "0", "example.com"}); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{},
		{"AABB", "1", "12"},
		{"nothex", "1", "12", "example"},
		{"AABB", "abc", "12", "example"},
		{"AABB", "1", "notanumber", "example"},
		{"AABB", "1", "12", "bad..name"},
		{"AABB", "2", "12", "example"}, // unknown hash algorithm
	}
	for _, c := range cases {
		if err := run(c); err == nil {
			t.Errorf("run(%v) accepted", c)
		}
	}
}
