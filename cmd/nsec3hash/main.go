// Command nsec3hash computes the RFC 5155 hashed owner name of a
// domain, in the spirit of the classic BIND nsec3hash(1) utility:
//
//	nsec3hash <salt-hex|-> <algorithm> <iterations> <domain>
//
// Example (RFC 5155 Appendix A vector):
//
//	$ nsec3hash AABBCCDD 1 12 example
//	0p9mhaveqvm6t7vbl5lop2u3t2rp3tom (salt=AABBCCDD, hash=1, iterations=12)
package main

import (
	"encoding/hex"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/dnswire"
	"repro/internal/nsec3"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nsec3hash:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) != 4 {
		return fmt.Errorf("usage: nsec3hash <salt-hex|-> <algorithm> <iterations> <domain>")
	}
	var salt []byte
	if args[0] != "-" && args[0] != "" {
		var err error
		if salt, err = hex.DecodeString(strings.ToLower(args[0])); err != nil {
			return fmt.Errorf("bad salt: %w", err)
		}
	}
	alg, err := strconv.ParseUint(args[1], 10, 8)
	if err != nil {
		return fmt.Errorf("bad algorithm: %w", err)
	}
	iters, err := strconv.ParseUint(args[2], 10, 16)
	if err != nil {
		return fmt.Errorf("bad iterations: %w", err)
	}
	name, err := dnswire.ParseName(args[3])
	if err != nil {
		return fmt.Errorf("bad domain: %w", err)
	}
	p := nsec3.Params{
		Alg:        dnswire.NSEC3HashAlg(alg),
		Iterations: uint16(iters),
		Salt:       salt,
	}
	h, err := nsec3.Hash(name, p)
	if err != nil {
		return err
	}
	saltStr := "-"
	if len(salt) > 0 {
		saltStr = strings.ToUpper(hex.EncodeToString(salt))
	}
	fmt.Printf("%s (salt=%s, hash=%d, iterations=%d)\n",
		nsec3.EncodeHash(h), saltStr, alg, iters)
	return nil
}
