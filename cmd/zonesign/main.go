// Command zonesign signs a master-file zone with NSEC or NSEC3 denial
// of existence and writes the signed zone back in master-file format —
// the repository's equivalent of dnssec-signzone(8).
//
//	zonesign -origin example.com. -in zone.db [-out signed.db]
//	         [-nsec3] [-iterations N] [-salt hex] [-optout]
//	         [-algorithm 8|13|15] [-inception unix] [-expiration unix]
//
// Following RFC 9276, the defaults are zero additional iterations and
// no salt; raising them prints a warning, since the whole point of the
// accompanying study is that nonzero values buy nothing and hurt
// resolvers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"encoding/hex"

	"repro/internal/dnswire"
	"repro/internal/nsec3"
	"repro/internal/zone"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zonesign:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	var (
		origin     = flag.String("origin", "", "zone origin (required)")
		inPath     = flag.String("in", "", "input master file (required)")
		outPath    = flag.String("out", "", "output file (default stdout)")
		useNSEC3   = flag.Bool("nsec3", false, "use NSEC3 instead of NSEC")
		iterations = flag.Uint("iterations", 0, "NSEC3 additional iterations (RFC 9276: keep 0)")
		saltHex    = flag.String("salt", "", "NSEC3 salt in hex (RFC 9276: keep empty)")
		optOut     = flag.Bool("optout", false, "set the NSEC3 opt-out flag")
		algorithm  = flag.Uint("algorithm", 13, "DNSSEC algorithm (8, 13, or 15)")
		inception  = flag.Int64("inception", time.Now().Add(-time.Hour).Unix(), "RRSIG inception (unix)")
		expiration = flag.Int64("expiration", time.Now().Add(30*24*time.Hour).Unix(), "RRSIG expiration (unix)")
	)
	flag.Parse()
	if *origin == "" || *inPath == "" {
		flag.Usage()
		return fmt.Errorf("-origin and -in are required")
	}
	apex, err := dnswire.ParseName(*origin)
	if err != nil {
		return err
	}
	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	defer f.Close() // read-only input; a close error cannot lose data
	z, err := zone.ParseMaster(f, apex, 300)
	if err != nil {
		return err
	}
	cfg := zone.SignConfig{
		Algorithm:  dnswire.SecAlgorithm(*algorithm),
		Inception:  uint32(*inception),
		Expiration: uint32(*expiration),
	}
	if *useNSEC3 {
		cfg.Denial = zone.DenialNSEC3
		var salt []byte
		if *saltHex != "" {
			if salt, err = hex.DecodeString(strings.ToLower(*saltHex)); err != nil {
				return fmt.Errorf("bad salt: %w", err)
			}
		}
		cfg.NSEC3 = nsec3.Params{Iterations: uint16(*iterations), Salt: salt}
		cfg.OptOut = *optOut
		if !cfg.NSEC3.RFC9276Compliant() {
			fmt.Fprintf(os.Stderr,
				"zonesign: warning: %d iterations / %d-byte salt violates RFC 9276 "+
					"(MUST use 0 iterations, SHOULD NOT use a salt)\n",
				*iterations, len(salt))
		}
	}
	signed, err := z.Sign(cfg)
	if err != nil {
		return err
	}

	out := os.Stdout
	if *outPath != "" {
		if out, err = os.Create(*outPath); err != nil {
			return err
		}
		// A close error on the written zone file means truncated
		// output; surface it as run's error unless one beat it there.
		defer func() {
			if cerr := out.Close(); cerr != nil && retErr == nil {
				retErr = cerr
			}
		}()
	}
	// Emit the zone data, then signatures and denial records.
	if err := zone.WriteMaster(out, z); err != nil {
		return err
	}
	fmt.Fprintln(out, "; RRSIGs")
	for name, bitmap := range signed.AuthNames() {
		for _, t := range bitmap {
			for _, sig := range signed.RRSIGsFor(name, t) {
				fmt.Fprintln(out, sig)
			}
		}
	}
	switch cfg.Denial {
	case zone.DenialNSEC3:
		fmt.Fprintln(out, "; NSEC3 chain")
		for _, rec := range signed.Chain().Records {
			rr := signed.Chain().RRFor(rec, signed.NegativeTTL())
			fmt.Fprintln(out, rr)
			for _, sig := range signed.RRSIGsFor(rr.Name, dnswire.TypeNSEC3) {
				fmt.Fprintln(out, sig)
			}
		}
	default:
		fmt.Fprintln(out, "; NSEC chain")
		for name := range signed.AuthNames() {
			if rr, ok := signed.NSECRecord(name); ok {
				fmt.Fprintln(out, rr)
			}
		}
	}
	ds, err := signed.DSForChild()
	if err == nil {
		fmt.Fprintf(out, "; DS for the parent:\n; %s 3600 IN DS %s\n", apex, ds)
	}
	return nil
}
