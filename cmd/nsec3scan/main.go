// Command nsec3scan is the zdns-style bulk scanner of §4.1 over real
// sockets: it reads domain names (one per line) from a file or stdin,
// scans each through a recursive resolver (DNSKEY, NSEC3PARAM, NS,
// random-subdomain probe), and emits one NDJSON result per domain plus
// a final RFC 9276 compliance summary on stderr. The input streams —
// domains feed the worker pool as they are read, so arbitrarily large
// lists run in constant memory.
//
//	nsec3scan -resolver 1.1.1.1:53 -workers 64 -qps 100 < domains.txt
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/netip"
	"os"

	"repro/internal/compliance"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/scanner"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nsec3scan:", err)
		os.Exit(1)
	}
}

// lineSource streams domain names off a reader one line at a time —
// scanner.ScanAll pulls from it as workers free up, so the domain list
// is never materialized.
type lineSource struct {
	sc *bufio.Scanner
}

// Next implements scanner.Source (called from one goroutine).
func (l *lineSource) Next() (dnswire.Name, bool) {
	for l.sc.Scan() {
		line := l.sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		n, err := dnswire.ParseName(line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nsec3scan: skipping %q: %v\n", line, err)
			continue
		}
		return n, true
	}
	return "", false
}

// resultSink is one worker's sink: a private compliance aggregate plus
// the shared NDJSON encoder (which serializes writes internally).
type resultSink struct {
	enc *scanner.Encoder
	agg *compliance.Aggregate
}

// Consume implements scanner.Sink.
func (s *resultSink) Consume(r scanner.Result) {
	// A failed encode can only mean stdout is gone; the final Flush
	// in run reports it once instead of once per result.
	_ = s.enc.Write(r)
	if r.Err == nil {
		s.agg.Add(compliance.Classify(r.Facts))
	}
}

func run() error {
	var (
		resolverArg = flag.String("resolver", "127.0.0.1:5301", "recursive resolver to scan through")
		workers     = flag.Int("workers", 32, "concurrent scan workers")
		qps         = flag.Int("qps", 0, "query rate limit (0 = unlimited)")
		inPath      = flag.String("in", "-", "domain list file ('-' = stdin)")
		seed        = flag.Uint64("seed", 1, "probe label seed")
	)
	flag.Parse()
	resolverAddr, err := netip.ParseAddrPort(*resolverArg)
	if err != nil {
		return fmt.Errorf("bad -resolver: %w", err)
	}

	in := os.Stdin
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close() // read-only input; a close error cannot lose data
		in = f
	}
	src := &lineSource{sc: bufio.NewScanner(in)}

	s := scanner.New(scanner.Config{
		Exchanger: &netsim.UDPExchanger{},
		Resolver:  resolverAddr,
		Workers:   *workers,
		QPS:       *qps,
		Seed:      *seed,
	})
	defer s.Close()
	out := bufio.NewWriter(os.Stdout)
	// Early-return safety net; the success path Flushes explicitly
	// below and checks the error there.
	defer out.Flush()
	enc := scanner.NewEncoder(out)
	var sinks []*resultSink
	err = s.ScanAll(context.Background(), src, func(int) scanner.Sink {
		sink := &resultSink{enc: enc, agg: compliance.NewAggregate()}
		sinks = append(sinks, sink)
		return sink
	})
	if err != nil {
		return err
	}
	if err := src.sc.Err(); err != nil {
		return fmt.Errorf("reading domains: %w", err)
	}
	agg := compliance.NewAggregate()
	for _, sink := range sinks {
		agg.Merge(sink.agg)
	}
	if err := out.Flush(); err != nil {
		return fmt.Errorf("writing results: %w", err)
	}
	fmt.Fprintf(os.Stderr,
		"nsec3scan: %d domains; %d DNSSEC-enabled (%.1f %%); %d NSEC3-enabled (%.1f %% of DNSSEC); "+
			"Item 2 OK %.1f %%, Item 3 OK %.1f %%, both %.1f %% of NSEC3-enabled\n",
		agg.Total,
		agg.DNSSECEnabled, compliance.Pct(agg.DNSSECEnabled, agg.Total),
		agg.NSEC3Enabled, compliance.Pct(agg.NSEC3Enabled, agg.DNSSECEnabled),
		compliance.Pct(agg.Item2OK, agg.NSEC3Enabled),
		compliance.Pct(agg.Item3OK, agg.NSEC3Enabled),
		compliance.Pct(agg.BothOK, agg.NSEC3Enabled))
	return nil
}
