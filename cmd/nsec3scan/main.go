// Command nsec3scan is the zdns-style bulk scanner of §4.1 over real
// sockets: it reads domain names (one per line) from a file or stdin,
// scans each through a recursive resolver (DNSKEY, NSEC3PARAM, NS,
// random-subdomain probe), and emits one NDJSON result per domain plus
// a final RFC 9276 compliance summary on stderr.
//
//	nsec3scan -resolver 1.1.1.1:53 -workers 64 -qps 100 < domains.txt
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"sync"

	"repro/internal/compliance"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/scanner"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nsec3scan:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		resolverArg = flag.String("resolver", "127.0.0.1:5301", "recursive resolver to scan through")
		workers     = flag.Int("workers", 32, "concurrent scan workers")
		qps         = flag.Int("qps", 0, "query rate limit (0 = unlimited)")
		inPath      = flag.String("in", "-", "domain list file ('-' = stdin)")
		seed        = flag.Uint64("seed", 1, "probe label seed")
	)
	flag.Parse()
	resolverAddr, err := netip.ParseAddrPort(*resolverArg)
	if err != nil {
		return fmt.Errorf("bad -resolver: %w", err)
	}

	in := os.Stdin
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var domains []dnswire.Name
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		n, err := dnswire.ParseName(line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nsec3scan: skipping %q: %v\n", line, err)
			continue
		}
		domains = append(domains, n)
	}
	if err := sc.Err(); err != nil {
		return err
	}

	s := scanner.New(scanner.Config{
		Exchanger: &netsim.UDPExchanger{},
		Resolver:  resolverAddr,
		Workers:   *workers,
		QPS:       *qps,
		Seed:      *seed,
	})
	agg := compliance.NewAggregate()
	var mu sync.Mutex
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	err = s.ScanAll(context.Background(), domains, func(r scanner.Result) {
		mu.Lock()
		defer mu.Unlock()
		// A failed encode can only mean stdout is gone; the final Flush
		// below reports it once instead of once per result.
		_ = scanner.Encode(out, r)
		if r.Err == nil {
			agg.Add(compliance.Classify(r.Facts))
		}
	})
	if err != nil {
		return err
	}
	if err := out.Flush(); err != nil {
		return fmt.Errorf("writing results: %w", err)
	}
	fmt.Fprintf(os.Stderr,
		"nsec3scan: %d domains; %d DNSSEC-enabled (%.1f %%); %d NSEC3-enabled (%.1f %% of DNSSEC); "+
			"Item 2 OK %.1f %%, Item 3 OK %.1f %%, both %.1f %% of NSEC3-enabled\n",
		agg.Total,
		agg.DNSSECEnabled, compliance.Pct(agg.DNSSECEnabled, agg.Total),
		agg.NSEC3Enabled, compliance.Pct(agg.NSEC3Enabled, agg.DNSSECEnabled),
		compliance.Pct(agg.Item2OK, agg.NSEC3Enabled),
		compliance.Pct(agg.Item3OK, agg.NSEC3Enabled),
		compliance.Pct(agg.BothOK, agg.NSEC3Enabled))
	return nil
}
