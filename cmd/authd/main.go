// Command authd serves one or more signed zones authoritatively over
// real UDP and TCP sockets — the role the paper's name servers for
// rfc9276-in-the-wild.com played.
//
//	authd -listen 127.0.0.1:5300 -zone example.com.=zone.db \
//	      [-nsec3] [-iterations N] [-salt hex] [-optout] [-metrics :9090]
//
// With -testbed, authd instead serves the paper's full 49-subdomain
// measurement testbed (each subdomain a separately signed zone with its
// own iteration count), so a real resolver pointed at it can be
// classified by hand with dig.
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/authserver"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/nsec3"
	"repro/internal/obs"
	"repro/internal/testbed"
	"repro/internal/zone"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "authd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen     = flag.String("listen", "127.0.0.1:5300", "UDP/TCP listen address")
		zoneArg    = flag.String("zone", "", "origin=masterfile to load and sign")
		useNSEC3   = flag.Bool("nsec3", true, "sign with NSEC3")
		iterations = flag.Uint("iterations", 0, "NSEC3 additional iterations")
		saltHex    = flag.String("salt", "", "NSEC3 salt (hex)")
		optOut     = flag.Bool("optout", false, "NSEC3 opt-out flag")
		serveTB    = flag.Bool("testbed", false, "serve the rfc9276-in-the-wild.com testbed instead of -zone")
		metrics    = flag.String("metrics", "", "serve /metrics and /healthz on this address")
	)
	flag.Parse()

	srv := authserver.New()
	srv.Log = authserver.NewQueryLog(4096)
	inception := uint32(time.Now().Add(-time.Hour).Unix())
	expiration := uint32(time.Now().Add(30 * 24 * time.Hour).Unix())

	switch {
	case *serveTB:
		// Build the testbed zones; the simulated hierarchy builder is
		// reused purely as a zone factory here.
		b := testbed.NewBuilder(inception, expiration)
		b.AddZone(testbed.ZoneSpec{
			Apex: dnswire.Root, Sign: zone.SignConfig{Denial: zone.DenialNSEC},
			Server: netsim.Addr4(198, 41, 0, 4),
		})
		b.AddZone(testbed.ZoneSpec{
			Apex: dnswire.MustParseName("com"), Sign: zone.SignConfig{Denial: zone.DenialNSEC3, OptOut: true},
			Server: netsim.Addr4(192, 5, 6, 30),
		})
		testbed.InstallTestbed(b, netsim.Addr4(203, 0, 113, 10), netsim.Addr6(0x10))
		h, err := b.Build(netsim.NewNetwork(1))
		if err != nil {
			return err
		}
		tb := dnswire.MustParseName(testbed.TestbedDomain)
		srv.AddZone(h.Zones[tb])
		for _, sub := range testbed.Subdomains() {
			srv.AddZone(h.Zones[sub.Apex()])
		}
		fmt.Printf("authd: serving the rfc9276 testbed (%d zones)\n", len(srv.Zones()))
	case *zoneArg != "":
		origin, path, ok := strings.Cut(*zoneArg, "=")
		if !ok {
			return fmt.Errorf("-zone must be origin=masterfile")
		}
		apex, err := dnswire.ParseName(origin)
		if err != nil {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		z, err := zone.ParseMaster(f, apex, 300)
		_ = f.Close() // read-only handle; parse errors are surfaced below
		if err != nil {
			return err
		}
		cfg := zone.SignConfig{Inception: inception, Expiration: expiration}
		if *useNSEC3 {
			cfg.Denial = zone.DenialNSEC3
			var salt []byte
			if *saltHex != "" {
				if salt, err = hex.DecodeString(strings.ToLower(*saltHex)); err != nil {
					return err
				}
			}
			cfg.NSEC3 = nsec3.Params{Iterations: uint16(*iterations), Salt: salt}
			cfg.OptOut = *optOut
		}
		signed, err := z.Sign(cfg)
		if err != nil {
			return err
		}
		srv.AddZone(signed)
		ds, _ := signed.DSForChild()
		fmt.Printf("authd: serving %s (%s), DS for the parent: %s\n", apex, cfg.Denial, ds)
	default:
		return fmt.Errorf("one of -zone or -testbed is required")
	}

	var handler netsim.Handler = srv
	if *metrics != "" {
		reg := obs.NewRegistry()
		reg.Gauge("authd_zones", "signed zones currently served").Set(float64(len(srv.Zones())))
		queries := reg.Counter("authd_queries_total", "DNS queries handled over UDP and TCP")
		inner := handler
		handler = netsim.HandlerFunc(func(ctx context.Context, from netip.AddrPort, q *dnswire.Message) *dnswire.Message {
			queries.Inc()
			return inner.Handle(ctx, from, q)
		})
		bound, stop, err := obs.Serve(*metrics, reg)
		if err != nil {
			return err
		}
		// Best-effort teardown: the process is exiting anyway.
		defer func() { _ = stop() }()
		fmt.Printf("authd: metrics on http://%s/metrics\n", bound)
	}

	real := &netsim.Server{Handler: handler}
	addr, err := real.Listen(context.Background(), *listen)
	if err != nil {
		return err
	}
	fmt.Printf("authd: listening on %s (udp+tcp)\n", addr)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("authd: shutting down")
	return real.Close()
}
