#!/usr/bin/env bash
# ci.sh — the full local CI pipeline, mirrored by .github/workflows/ci.yml.
# Every leg must pass before a PR merges:
#   build, vet, race-enabled tests, a short fuzz pass over the wire
#   codec and NSEC3 hash, and the project's own static-analysis suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== test (-race) =="
go test -race ./...

echo "== fuzz (5s per target) =="
go test -run='^$' -fuzz=FuzzDecodeMessage -fuzztime=5s ./internal/dnswire/
go test -run='^$' -fuzz=FuzzDecodeName -fuzztime=5s ./internal/dnswire/
go test -run='^$' -fuzz=FuzzHash -fuzztime=5s ./internal/nsec3/

echo "== bench smoke (sharded survey, 1 iteration) =="
go test -run='^$' -bench=Survey -benchtime=1x .

echo "== reprolint =="
go run ./cmd/reprolint ./...

echo "CI: all legs passed"
