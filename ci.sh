#!/usr/bin/env bash
# ci.sh — the full local CI pipeline, mirrored by .github/workflows/ci.yml.
# Every leg must pass before a PR merges:
#   build, vet, race-enabled tests, a short fuzz pass over the wire
#   codec and NSEC3 hash, and the project's own static-analysis suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== test (-race) =="
go test -race ./...

echo "== fuzz (5s per target) =="
go test -run='^$' -fuzz=FuzzDecodeMessage -fuzztime=5s ./internal/dnswire/
go test -run='^$' -fuzz=FuzzDecodeName -fuzztime=5s ./internal/dnswire/
go test -run='^$' -fuzz=FuzzHash -fuzztime=5s ./internal/nsec3/

echo "== bench smoke (sharded survey, lazy + eager, 1 iteration) =="
go test -run='^$' -bench=Survey -benchtime=1x .

echo "== bench smoke (authserver QPS, -benchmem, 1 iteration) =="
# One pass of the serving-path benchmark; the artifact records ns/op and
# allocs/op so a serving-path allocation regression is visible in review
# even when it sneaks past the static analyzers.
go test -run='^$' -bench='^BenchmarkAuthServerQPS$' -benchtime=1x -benchmem . \
  | tee authserver-qps.bench.txt
grep -q 'allocs/op' authserver-qps.bench.txt || {
  echo "authserver QPS bench produced no -benchmem output"; exit 1;
}

echo "== metrics smoke (authd -metrics, /healthz + /metrics) =="
SMOKE_DIR=$(mktemp -d)
go build -o "$SMOKE_DIR/authd" ./cmd/authd
"$SMOKE_DIR/authd" -testbed -listen 127.0.0.1:0 -metrics 127.0.0.1:0 \
  >"$SMOKE_DIR/authd.log" 2>&1 &
AUTHD_PID=$!
REPRO_PID=""
cleanup() {
  kill "$AUTHD_PID" 2>/dev/null || true
  [ -n "$REPRO_PID" ] && kill "$REPRO_PID" 2>/dev/null || true
  for p in "${W1_PID:-}" "${W2_PID:-}"; do
    [ -n "$p" ] && kill "$p" 2>/dev/null || true
  done
  rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT
# authd prints the bound metrics address once the listener is up.
METRICS_URL=""
for _ in $(seq 1 100); do
  METRICS_URL=$(sed -n 's#^authd: metrics on \(http://[^ ]*\)$#\1#p' "$SMOKE_DIR/authd.log")
  [ -n "$METRICS_URL" ] && break
  sleep 0.1
done
[ -n "$METRICS_URL" ] || { echo "authd never exposed /metrics"; cat "$SMOKE_DIR/authd.log"; exit 1; }
curl -fsS "${METRICS_URL%/metrics}/healthz" | grep -qx 'ok'
curl -fsS "$METRICS_URL" | grep -q '^authd_zones '
curl -fsS "$METRICS_URL" | grep -q '^authd_queries_total '
echo "metrics smoke OK ($METRICS_URL)"

echo "== survey metrics smoke (repro -shards 2, lazy signing) =="
go build -o "$SMOKE_DIR/repro" ./cmd/repro
"$SMOKE_DIR/repro" -fig1 -shards 2 -domain-scale 50000 -metrics 127.0.0.1:0 \
  >"$SMOKE_DIR/repro.log" 2>&1 &
REPRO_PID=$!
SURVEY_URL=""
for _ in $(seq 1 100); do
  SURVEY_URL=$(sed -n 's#^repro: metrics on \(http://[^ ]*\)/metrics$#\1/metrics#p' "$SMOKE_DIR/repro.log")
  [ -n "$SURVEY_URL" ] && break
  sleep 0.1
done
[ -n "$SURVEY_URL" ] || { echo "repro never exposed /metrics"; cat "$SMOKE_DIR/repro.log"; exit 1; }
# Snapshot /metrics until the run exits: the endpoint dies with the
# process, so keep the last good scrape and assert on that.
SNAP="$SMOKE_DIR/metrics.snap"
: > "$SNAP"
while kill -0 "$REPRO_PID" 2>/dev/null; do
  curl -fsS "$SURVEY_URL" > "$SNAP.tmp" 2>/dev/null && mv "$SNAP.tmp" "$SNAP"
  sleep 0.1
done
wait "$REPRO_PID" || { echo "repro exited nonzero"; cat "$SMOKE_DIR/repro.log"; exit 1; }
REPRO_PID=""
grep -q '^survey_zones_signed_lazily_total ' "$SNAP"
grep -q '^survey_zones_untouched_total ' "$SNAP"
grep -q '^authserver_sign_wait_ns_count ' "$SNAP"
echo "survey metrics smoke OK ($SURVEY_URL)"

echo "== distributed survey smoke (coordinator + 2 workers on loopback) =="
DIST_STATE="$SMOKE_DIR/dist-state"
"$SMOKE_DIR/repro" -serve 127.0.0.1:0 -fig1 -shards 4 -domain-scale 500000 \
  -state-dir "$DIST_STATE" -metrics 127.0.0.1:0 \
  >"$SMOKE_DIR/coord.log" 2>"$SMOKE_DIR/coord.err" &
REPRO_PID=$!
COORD_ADDR=""
for _ in $(seq 1 100); do
  COORD_ADDR=$(sed -n 's#^repro: coordinating on \(.*\)$#\1#p' "$SMOKE_DIR/coord.err")
  [ -n "$COORD_ADDR" ] && break
  sleep 0.1
done
[ -n "$COORD_ADDR" ] || { echo "coordinator never bound"; cat "$SMOKE_DIR/coord.err"; exit 1; }
DIST_URL=$(sed -n 's#^repro: metrics on \(http://[^ ]*\)/metrics$#\1/metrics#p' "$SMOKE_DIR/coord.err")
"$SMOKE_DIR/repro" -worker "$COORD_ADDR" -shards 4 -domain-scale 500000 \
  >"$SMOKE_DIR/worker1.log" 2>&1 &
W1_PID=$!
"$SMOKE_DIR/repro" -worker "$COORD_ADDR" -shards 4 -domain-scale 500000 \
  >"$SMOKE_DIR/worker2.log" 2>&1 &
W2_PID=$!
# Snapshot the coordinator's merged /metrics until it exits; the last
# good scrape carries the merged worker counters.
DSNAP="$SMOKE_DIR/dist-metrics.snap"
: > "$DSNAP"
while kill -0 "$REPRO_PID" 2>/dev/null; do
  curl -fsS "$DIST_URL" > "$DSNAP.tmp" 2>/dev/null && mv "$DSNAP.tmp" "$DSNAP"
  sleep 0.1
done
wait "$REPRO_PID" || { echo "coordinator exited nonzero"; cat "$SMOKE_DIR/coord.err"; exit 1; }
REPRO_PID=""
wait "$W1_PID" || { echo "worker 1 exited nonzero"; cat "$SMOKE_DIR/worker1.log"; exit 1; }
wait "$W2_PID" || { echo "worker 2 exited nonzero"; cat "$SMOKE_DIR/worker2.log"; exit 1; }
grep -q '^survey_shards_completed_total ' "$DSNAP"
grep -q '^distsurvey_leases_granted_total ' "$DSNAP"
grep -q '^distsurvey_workers_connected_total 2$' "$DSNAP"
ls "$DIST_STATE"/shard-*.json >/dev/null || { echo "no shard checkpoints written"; exit 1; }
echo "distributed survey smoke OK (coordinator $COORD_ADDR)"

echo "== resolver study smoke (repro -fig3 -shards 2) =="
"$SMOKE_DIR/repro" -fig3 -shards 2 -resolver-scale 2000 -metrics 127.0.0.1:0 \
  >"$SMOKE_DIR/fig3.log" 2>"$SMOKE_DIR/fig3.err" &
REPRO_PID=$!
FIG3_URL=""
for _ in $(seq 1 100); do
  FIG3_URL=$(sed -n 's#^repro: metrics on \(http://[^ ]*\)/metrics$#\1/metrics#p' "$SMOKE_DIR/fig3.err")
  [ -n "$FIG3_URL" ] && break
  sleep 0.1
done
[ -n "$FIG3_URL" ] || { echo "repro -fig3 never exposed /metrics"; cat "$SMOKE_DIR/fig3.err"; exit 1; }
FSNAP="$SMOKE_DIR/fig3-metrics.snap"
: > "$FSNAP"
while kill -0 "$REPRO_PID" 2>/dev/null; do
  curl -fsS "$FIG3_URL" > "$FSNAP.tmp" 2>/dev/null && mv "$FSNAP.tmp" "$FSNAP"
  sleep 0.1
done
wait "$REPRO_PID" || { echo "repro -fig3 exited nonzero"; cat "$SMOKE_DIR/fig3.err"; exit 1; }
REPRO_PID=""
# Counters flush at each shard's merge, so the last pre-exit scrape
# reliably carries shard 1 (the open quadrants); the final merged
# report — all four quadrants — is asserted from stdout instead.
grep -q '^resolverstudy_probed_open_ipv4_total ' "$FSNAP"
grep -q '^resolverstudy_probed_open_ipv6_total ' "$FSNAP"
grep -q '^resolverstudy_shards_completed_total ' "$FSNAP"
grep -q 'Open, IPv4' "$SMOKE_DIR/fig3.log"
grep -q 'Open, IPv6' "$SMOKE_DIR/fig3.log"
grep -q 'Closed, IPv4' "$SMOKE_DIR/fig3.log"
grep -q 'Closed, IPv6' "$SMOKE_DIR/fig3.log"
grep -q 'validators (all quadrants)' "$SMOKE_DIR/fig3.log"
grep -q 'probe failures (no transcript)         0' "$SMOKE_DIR/fig3.log"
echo "resolver study smoke OK ($FIG3_URL)"

echo "== statewalk smoke (differential state-machine walk, fixed seed) =="
# Every (topology × profile) cell through the real resolver, diffed
# against the expectation model. Any unexplained divergence exits
# nonzero; the NDJSON report is kept as a CI artifact for triage.
"$SMOKE_DIR/repro" -statewalk -seed 7 -statewalk-out statewalk-report.ndjson \
  > "$SMOKE_DIR/statewalk.log" || { cat "$SMOKE_DIR/statewalk.log"; exit 1; }
SW_CELLS=$(sed -n 's/^  cells executed  *\([0-9]*\)$/\1/p' "$SMOKE_DIR/statewalk.log")
[ -n "$SW_CELLS" ] && [ "$SW_CELLS" -ge 200 ] || {
  echo "statewalk ran ${SW_CELLS:-0} cells, want >= 200"
  cat "$SMOKE_DIR/statewalk.log"
  exit 1
}
echo "statewalk smoke OK ($SW_CELLS cells, report in statewalk-report.ndjson)"

echo "== reprolint self-check (golden fixtures) =="
# Replays every analyzer's golden fixture and publishes the per-analyzer
# JSON report (findings, want-marker mismatches, timing) as an artifact.
# A diagnostic drifting from its fixture markers fails this leg even if
# the real tree stays clean.
go run ./cmd/reprolint -selfcheck internal/lint/testdata > reprolint-selfcheck.json
# The report must cover the full suite: spot-check that the serving-path
# analyzers are present and that every fixture carried a timing.
for a in hotpathalloc bufalias poolsafe; do
  grep -q "\"analyzer\": \"$a\"" reprolint-selfcheck.json \
    || { echo "self-check report missing analyzer $a"; exit 1; }
done
grep -q '"elapsed_ms"' reprolint-selfcheck.json \
  || { echo "self-check report lacks elapsed_ms timings"; exit 1; }

echo "== reprolint (baseline ratchet) =="
# The baseline is the tolerated-findings ratchet. MAX_BASELINE pins the
# ceiling at the committed entry count; it may only ever be decreased.
# The JSON report is kept as a CI artifact for triage.
MAX_BASELINE=0
go run ./cmd/reprolint -json ./... > reprolint-report.json || true
go run ./cmd/reprolint -baseline lint.baseline.json -max-baseline "$MAX_BASELINE" ./...

echo "CI: all legs passed"
