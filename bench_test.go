// Package repro's root-level benchmarks regenerate the cost side of
// every table and figure in "Zeros Are Heroes" plus the ablations
// called out in DESIGN.md §4:
//
//   - BenchmarkNSEC3HashIterations and BenchmarkCVE202350868ProofCost:
//     the per-iteration CPU cost that motivates RFC 9276 Item 2 and
//     that CVE-2023-50868 weaponizes (Gruza et al. measured up to 72×
//     resolver CPU).
//   - BenchmarkTable1RuleEvaluation: resolver-transcript classification
//     against the twelve guideline items.
//   - BenchmarkFig1DomainScan: the end-to-end §4.1 per-domain scan.
//   - BenchmarkFig2TrancoIntersect: rank-CDF construction.
//   - BenchmarkTable2OperatorAttribution: NS-record operator
//     aggregation.
//   - BenchmarkFig3ResolverProbe: one full 50-subdomain probe of a
//     validating resolver.
//   - BenchmarkAblation*: hash memoization, proof search strategy,
//     name compression, and the Item 7 policy-order trade-off.
package repro

import (
	"bytes"
	"context"
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/authserver"
	"repro/internal/compliance"
	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/nsec3"
	"repro/internal/population"
	"repro/internal/resolver"
	"repro/internal/respop"
	"repro/internal/scanner"
	"repro/internal/testbed"
	"repro/internal/zone"
)

// ---------------------------------------------------------------------
// CVE-2023-50868 cost: the iterated hash itself.

func BenchmarkNSEC3HashIterations(b *testing.B) {
	name := dnswire.MustParseName("some-random-subdomain.example.com")
	for _, iters := range []uint16{0, 1, 10, 50, 100, 150, 500, 2500} {
		b.Run(fmt.Sprintf("it-%d", iters), func(b *testing.B) {
			p := nsec3.Params{Alg: dnswire.NSEC3HashSHA1, Iterations: iters, Salt: []byte{0xAA, 0xBB, 0xCC, 0xDD}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := nsec3.Hash(name, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchWorldOnce builds the testbed hierarchy one time for all benches.
var (
	benchWorldMu   sync.Mutex
	benchWorldOnce *testbed.Hierarchy
)

func benchWorld(b *testing.B) *testbed.Hierarchy {
	b.Helper()
	benchWorldMu.Lock()
	defer benchWorldMu.Unlock()
	if benchWorldOnce == nil {
		h, err := core.BuildTestbedWorld(1)
		if err != nil {
			b.Fatal(err)
		}
		benchWorldOnce = h
	}
	return benchWorldOnce
}

// BenchmarkCVE202350868ProofCost measures the resolver-side denial
// validation (closest-encloser search + covering checks) as the zone's
// iteration count grows — the attack surface of CVE-2023-50868.
func BenchmarkCVE202350868ProofCost(b *testing.B) {
	h := benchWorld(b)
	ctx := context.Background()
	for _, label := range []string{"it-1", "it-25", "it-150", "it-500"} {
		b.Run(label, func(b *testing.B) {
			sub := findSub(b, label)
			apex := sub.Apex()
			srv := h.Servers[netsim.Addr4(203, 0, 113, 10)]
			q := dnswire.NewQuery(1, sub.QName("bench"), dnswire.TypeA, true)
			q.Header.RecursionDesired = false
			resp := srv.Handle(ctx, netsim.Addr4(10, 0, 0, 1), q)
			set, err := nsec3.ExtractResponseSet(resp.Authority)
			if err != nil {
				b.Fatal(err)
			}
			qname := sub.QName("bench")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := set.VerifyNXDOMAIN(qname); err != nil {
					b.Fatal(err)
				}
			}
			_ = apex
		})
	}
}

func findSub(b *testing.B, label string) testbed.Subdomain {
	b.Helper()
	for _, s := range testbed.Subdomains() {
		if s.Label == label {
			return s
		}
	}
	b.Fatalf("no subdomain %s", label)
	return testbed.Subdomain{}
}

// ---------------------------------------------------------------------
// Table 1: guideline evaluation over a transcript.

func BenchmarkTable1RuleEvaluation(b *testing.B) {
	h := benchWorld(b)
	res := resolver.New(resolver.Config{
		Roots: h.Roots, TrustAnchor: h.TrustAnchor, Exchanger: h.Net,
		Policy: respop.BIND2021.Policy,
		Now:    func() uint32 { return core.DefaultNow },
	})
	addr := netsim.Addr4(10, 99, 0, 1)
	h.Net.Register(addr, res)
	tr, err := testbed.ProbeResolver(context.Background(), h.Net, addr, "bench-t1")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := compliance.ClassifyResolver(tr)
		if !c.IsValidator {
			b.Fatal("misclassified")
		}
	}
}

// ---------------------------------------------------------------------
// Figure 1: the per-domain scan pipeline, end to end over the wire.

var (
	scanWorldMu  sync.Mutex
	scanWorldNet *netsim.Network
	scanWorldU   *population.Universe
)

func benchScanWorld(b *testing.B) (*netsim.Network, *population.Universe) {
	b.Helper()
	scanWorldMu.Lock()
	defer scanWorldMu.Unlock()
	if scanWorldNet == nil {
		u, err := population.Generate(population.Config{Registered: 600, Seed: 4})
		if err != nil {
			b.Fatal(err)
		}
		net := netsim.NewNetwork(4)
		dep, err := population.Deploy(u, net, core.DefaultInception, core.DefaultExpiration)
		if err != nil {
			b.Fatal(err)
		}
		res := resolver.New(resolver.Config{
			Roots: dep.Hierarchy.Roots, TrustAnchor: dep.Hierarchy.TrustAnchor,
			Exchanger: net, Policy: respop.Cloudflare.Policy,
			Now:             func() uint32 { return core.DefaultNow },
			MaxCacheEntries: 1 << 16,
		})
		net.Register(netsim.Addr4(1, 1, 1, 1), res)
		scanWorldNet, scanWorldU = net, u
	}
	return scanWorldNet, scanWorldU
}

func BenchmarkFig1DomainScan(b *testing.B) {
	net, u := benchScanWorld(b)
	sc := scanner.New(scanner.Config{
		Exchanger: net, Resolver: netsim.Addr4(1, 1, 1, 1), Workers: 1, Seed: 11,
	})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := u.Domains[i%len(u.Domains)]
		r := sc.ScanDomain(ctx, d.Name)
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		compliance.Classify(r.Facts)
	}
}

// ---------------------------------------------------------------------
// The sharded survey pipeline end to end.

// BenchmarkSurveyShardedEndToEnd runs the whole §4.1 survey through the
// streaming generate→deploy→scan→merge loop at different shard counts
// and signing modes. Results are identical in every cell
// (TestSurveyShardEquivalence, TestSurveyEagerLazyEquivalence); what
// varies is the memory envelope — lazy signing skips the untouched
// part of each shard's 1,449-zone TLD registry plus all deferred
// raw-zone construction, which shows up directly in B/op.
func BenchmarkSurveyShardedEndToEnd(b *testing.B) {
	for _, mode := range []struct {
		name    string
		signing core.SigningMode
	}{
		{"lazy", core.SigningLazy},
		{"eager", core.SigningEager},
	} {
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/shards-%d", mode.name, shards), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					report, err := core.RunSurvey(context.Background(), core.SurveyConfig{
						Registered: 600,
						Seed:       3,
						Shards:     shards,
						Signing:    mode.signing,
					})
					if err != nil {
						b.Fatal(err)
					}
					if report.Agg.Total != 600 {
						b.Fatal("short survey")
					}
				}
			})
		}
	}
}

// BenchmarkResolverStudySharded runs the whole §4.2 resolver study
// through the plan→execute→merge loop at different shard counts.
// Results are identical in every cell (TestResolverStudyShardEquivalence);
// what varies is the memory envelope — each shard deploys only its
// cursor's slice of the fleet, and the sign cache keeps the testbed's
// 52 zones signed once across shard worlds.
func BenchmarkResolverStudySharded(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				report, err := core.RunResolverStudy(context.Background(), core.ResolverStudyConfig{
					ScaleDen: 1000,
					Seed:     3,
					Shards:   shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				if report.Overall.Probed == 0 {
					b.Fatal("short resolver study")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Figure 2: rank-CDF construction over the NSEC3 intersection.

func BenchmarkFig2TrancoIntersect(b *testing.B) {
	u, err := population.Generate(population.Config{
		Registered: 20000, Seed: 5, RankedSize: 20000,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hist := make(map[int]int)
		nsec3Count := 0
		for j := range u.Domains {
			if u.Domains[j].NSEC3 {
				hist[u.Domains[j].Rank]++
				nsec3Count++
			}
		}
		cdf := analysis.CDFFromHist(hist)
		if cdf.Total() != nsec3Count {
			b.Fatal("bad CDF")
		}
	}
}

// ---------------------------------------------------------------------
// Table 2: operator attribution from NS host names.

func BenchmarkTable2OperatorAttribution(b *testing.B) {
	u, err := population.Generate(population.Config{Registered: 50000, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	type row struct {
		op    string
		iters uint16
		salt  int
	}
	var rows []row
	for i := range u.Domains {
		d := &u.Domains[i]
		if d.NSEC3 {
			rows = append(rows, row{u.Operators[d.Operator].InfraDomain, d.Iterations, d.SaltLen})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := analysis.NewOperatorStats()
		for _, r := range rows {
			stats.Add([]string{r.op}, r.iters, r.salt)
		}
		if len(stats.Top(10)) == 0 {
			b.Fatal("no rows")
		}
	}
}

// ---------------------------------------------------------------------
// Figure 3: a complete 50-subdomain probe of one validating resolver.

func BenchmarkFig3ResolverProbe(b *testing.B) {
	h := benchWorld(b)
	res := resolver.New(resolver.Config{
		Roots: h.Roots, TrustAnchor: h.TrustAnchor, Exchanger: h.Net,
		Policy: respop.BIND2021.Policy,
		Now:    func() uint32 { return core.DefaultNow },
	})
	addr := netsim.Addr4(10, 99, 0, 2)
	h.Net.Register(addr, res)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh unique label per iteration defeats the resolver's
		// message cache, as the paper's wildcard design intends.
		tr, err := testbed.ProbeResolver(ctx, h.Net, addr, fmt.Sprintf("bench-%d", i))
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Observations) != 50 {
			b.Fatal("short transcript")
		}
	}
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §4).

// benchChain builds a medium zone chain for the ablation benches.
func benchChain(b *testing.B, iters uint16) (*nsec3.Chain, map[dnswire.Name]dnswire.TypeBitmap) {
	b.Helper()
	apex := dnswire.MustParseName("bench.example")
	names := map[dnswire.Name]dnswire.TypeBitmap{
		apex: dnswire.NewTypeBitmap(dnswire.TypeSOA, dnswire.TypeNS),
	}
	for i := 0; i < 500; i++ {
		names[apex.MustChild(fmt.Sprintf("host%03d", i))] = dnswire.NewTypeBitmap(dnswire.TypeA)
	}
	c, err := nsec3.BuildChain(apex, nsec3.Params{Alg: dnswire.NSEC3HashSHA1, Iterations: iters}, names, false, 300)
	if err != nil {
		b.Fatal(err)
	}
	return c, names
}

// BenchmarkAblationHashMemo compares serving proofs from a prebuilt
// (hash-memoized) chain against rebuilding the chain per query — the
// design choice that makes the authoritative side O(1) hashes per
// negative answer.
func BenchmarkAblationHashMemo(b *testing.B) {
	qname := dnswire.MustParseName("nope.bench.example")
	b.Run("memoized-chain", func(b *testing.B) {
		c, names := benchChain(b, 10)
		exists := func(n dnswire.Name) bool { _, ok := names[n]; return ok }
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.ProveNXDOMAIN(qname, exists); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild-per-query", func(b *testing.B) {
		_, names := benchChain(b, 10)
		exists := func(n dnswire.Name) bool { _, ok := names[n]; return ok }
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := nsec3.BuildChain("bench.example.", nsec3.Params{Alg: dnswire.NSEC3HashSHA1, Iterations: 10}, names, false, 300)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.ProveNXDOMAIN(qname, exists); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationProofSearch compares the chain's binary search
// against a linear scan over the sorted records.
func BenchmarkAblationProofSearch(b *testing.B) {
	c, _ := benchChain(b, 0)
	h, err := nsec3.Hash(dnswire.MustParseName("missing.bench.example"), c.Params)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("binary-search", func(b *testing.B) {
		qname := dnswire.MustParseName("missing.bench.example")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok, err := c.Cover(qname); err != nil || !ok {
				b.Fatal("cover failed")
			}
		}
	})
	b.Run("linear-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			found := false
			for _, rec := range c.Records {
				if nsec3.Covers(rec.OwnerHash, rec.RR.NextHashedOwner, h) {
					found = true
					break
				}
			}
			if !found {
				b.Fatal("cover failed")
			}
		}
	})
}

// BenchmarkAblationCompression measures name compression's effect on
// encoding cost and wire size for a referral-shaped message.
func BenchmarkAblationCompression(b *testing.B) {
	msg := &dnswire.Message{
		Header:    dnswire.Header{ID: 1, Response: true},
		Questions: []dnswire.Question{{Name: "host.sub.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassIN}},
	}
	for i := 0; i < 8; i++ {
		msg.Authority = append(msg.Authority, dnswire.RR{
			Name: "sub.example.com.", Class: dnswire.ClassIN, TTL: 3600,
			Data: dnswire.NS{Host: dnswire.MustParseName(fmt.Sprintf("ns%d.sub.example.com", i))},
		})
	}
	for _, mode := range []struct {
		name     string
		compress bool
	}{{"compressed", true}, {"uncompressed", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var size int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				wire, err := msg.PackBuffer(nil, 0, mode.compress)
				if err != nil {
					b.Fatal(err)
				}
				size = len(wire)
			}
			b.ReportMetric(float64(size), "wire-bytes")
		})
	}
}

// BenchmarkAblationPolicyOrder measures the Item 7 trade-off on an
// over-limit negative response: checking the iteration policy first and
// skipping signature verification (the violator's shortcut) versus
// verifying the NSEC3 RRSIGs before trusting the count (compliant).
func BenchmarkAblationPolicyOrder(b *testing.B) {
	h := benchWorld(b)
	ctx := context.Background()
	mkResolver := func(verify bool, octet byte) *resolver.Resolver {
		pol := respop.BIND2021.Policy
		pol.VerifyInsecureNSEC3 = verify
		res := resolver.New(resolver.Config{
			Roots: h.Roots, TrustAnchor: h.TrustAnchor, Exchanger: h.Net,
			Policy: pol,
			Now:    func() uint32 { return core.DefaultNow },
		})
		h.Net.Register(netsim.Addr4(10, 99, 1, octet), res)
		return res
	}
	sub := findSub(b, "it-500")
	for _, mode := range []struct {
		name   string
		verify bool
		octet  byte
	}{{"item7-compliant-verify-first", true, 1}, {"shortcut-skip-verification", false, 2}} {
		b.Run(mode.name, func(b *testing.B) {
			res := mkResolver(mode.verify, mode.octet)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qname := sub.QName(fmt.Sprintf("po-%s-%d", mode.name, i))
				r, err := res.Resolve(ctx, qname, dnswire.TypeA)
				if err != nil {
					b.Fatal(err)
				}
				if r.RCode != dnswire.RCodeNXDomain {
					b.Fatalf("rcode %s", r.RCode)
				}
			}
		})
	}
}

// BenchmarkZoneSigning measures full zone signing across denial modes —
// the operational cost RFC 9276 Item 3 cites against salt rotation
// (changing the salt re-hashes and re-signs the entire chain).
func BenchmarkZoneSigning(b *testing.B) {
	build := func() *zone.Zone {
		apex := dnswire.MustParseName("signbench.example")
		z := zone.New(apex, 300)
		z.MustAdd(dnswire.RR{Name: apex, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.SOA{
			MName: apex.MustChild("ns1"), RName: apex.MustChild("hostmaster"),
			Serial: 1, Refresh: 1, Retry: 1, Expire: 1, Minimum: 300,
		}})
		z.MustAdd(dnswire.RR{Name: apex, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NS{Host: apex.MustChild("ns1")}})
		for i := 0; i < 50; i++ {
			z.MustAdd(dnswire.RR{Name: apex.MustChild(fmt.Sprintf("h%02d", i)), Class: dnswire.ClassIN,
				TTL: 300, Data: dnswire.TXT{Strings: []string{"x"}}})
		}
		return z
	}
	for _, mode := range []struct {
		name string
		cfg  zone.SignConfig
	}{
		{"NSEC", zone.SignConfig{Denial: zone.DenialNSEC}},
		{"NSEC3-it0", zone.SignConfig{Denial: zone.DenialNSEC3}},
		{"NSEC3-it100-salted", zone.SignConfig{Denial: zone.DenialNSEC3,
			NSEC3: nsec3.Params{Iterations: 100, Salt: bytes.Repeat([]byte{0xAB}, 8)}}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := mode.cfg
			cfg.Inception, cfg.Expiration = core.DefaultInception, core.DefaultExpiration
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				z := build()
				b.StartTimer()
				if _, err := z.Sign(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAggressiveNSEC compares serving repeated NXDOMAINs
// for one zone with and without RFC 8198 aggressive NSEC3 caching. The
// cache eliminates upstream traffic but still pays the iterated hash
// per synthesis — so the win shrinks as the zone's iteration count
// grows, another consequence of violating RFC 9276 Item 2.
func BenchmarkAblationAggressiveNSEC(b *testing.B) {
	h := benchWorld(b)
	ctx := context.Background()
	for _, mode := range []struct {
		name       string
		aggressive bool
		octet      byte
	}{{"rfc8198-on", true, 10}, {"rfc8198-off", false, 11}} {
		for _, label := range []string{"it-1", "it-150"} {
			b.Run(mode.name+"/"+label, func(b *testing.B) {
				pol := respop.BIND2021.Policy
				pol.AggressiveNSEC = mode.aggressive
				res := resolver.New(resolver.Config{
					Roots: h.Roots, TrustAnchor: h.TrustAnchor, Exchanger: h.Net,
					Policy: pol,
					Now:    func() uint32 { return core.DefaultNow },
				})
				h.Net.Register(netsim.Addr4(10, 99, mode.octet, labelOctet(label)), res)
				sub := findSub(b, label)
				// Warm: prime delegations, keys, and (when on) spans.
				for i := 0; i < 8; i++ {
					if _, err := res.Resolve(ctx, sub.QName(fmt.Sprintf("warm-%d", i)), dnswire.TypeA); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					q := sub.QName(fmt.Sprintf("agg-%d", i))
					r, err := res.Resolve(ctx, q, dnswire.TypeA)
					if err != nil || r.RCode != dnswire.RCodeNXDomain {
						b.Fatalf("%v %v", err, r)
					}
				}
			})
		}
	}
}

func labelOctet(label string) byte {
	var h byte
	for i := 0; i < len(label); i++ {
		h = h*31 + label[i]
	}
	return h
}

// BenchmarkAblationQNameMinimization measures RFC 9156's cost: the
// minimized walk sends extra per-level NS probes in exchange for not
// disclosing the full query name to every server on the path.
func BenchmarkAblationQNameMinimization(b *testing.B) {
	h := benchWorld(b)
	ctx := context.Background()
	for _, mode := range []struct {
		name string
		min  bool
	}{{"minimized", true}, {"full-qname", false}} {
		b.Run(mode.name, func(b *testing.B) {
			pol := respop.BIND2021.Policy
			pol.QNameMinimization = mode.min
			res := resolver.New(resolver.Config{
				Roots: h.Roots, TrustAnchor: h.TrustAnchor, Exchanger: h.Net,
				Policy: pol,
				Now:    func() uint32 { return core.DefaultNow },
			})
			sub := findSub(b, "it-5")
			// Warm infrastructure so the loop isolates the walk shape.
			if _, err := res.Resolve(ctx, sub.QName("warm"), dnswire.TypeA); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := sub.QName(fmt.Sprintf("qm-%d", i))
				r, err := res.Resolve(ctx, q, dnswire.TypeA)
				if err != nil || r.RCode != dnswire.RCodeNXDomain {
					b.Fatalf("%v %v", err, r)
				}
			}
		})
	}
}

// BenchmarkAuthServerQPS measures the authoritative serving path end
// to end — Handle dispatch plus PackBuffer rendering into a reused
// buffer — for one NSEC3-signed zone under three query mixes: pure
// positive answers, pure NXDOMAIN (each carrying its NSEC3 denial
// proof), and an alternating blend. Run with -benchmem: allocs/op is
// the number this PR's hotpathalloc work drives toward the floor (the
// response Message and answer synthesis, both //repro:allocok-waived
// pending the precompiled answer cache).
func BenchmarkAuthServerQPS(b *testing.B) {
	apex := dnswire.MustParseName("qps.example.")
	z := zone.New(apex, 300)
	z.MustAdd(dnswire.RR{Name: apex, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.SOA{
		MName: apex.MustChild("ns"), RName: apex.MustChild("hostmaster"),
		Serial: 1, Refresh: 1, Retry: 1, Expire: 1, Minimum: 300,
	}})
	z.MustAdd(dnswire.RR{Name: apex, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NS{Host: apex.MustChild("ns")}})
	for i := 0; i < 16; i++ {
		z.MustAdd(dnswire.RR{Name: apex.MustChild(fmt.Sprintf("h%02d", i)), Class: dnswire.ClassIN,
			TTL: 300, Data: dnswire.TXT{Strings: []string{"x"}}})
	}
	signed, err := z.Sign(zone.SignConfig{
		Denial: zone.DenialNSEC3, NSEC3: nsec3.Params{Iterations: 0},
		Inception: core.DefaultInception, Expiration: core.DefaultExpiration,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv := authserver.New()
	srv.AddZone(signed)

	positive := make([]*dnswire.Message, 16)
	for i := range positive {
		positive[i] = dnswire.NewQuery(uint16(i), apex.MustChild(fmt.Sprintf("h%02d", i)), dnswire.TypeTXT, true)
	}
	nxdomain := make([]*dnswire.Message, 16)
	for i := range nxdomain {
		nxdomain[i] = dnswire.NewQuery(uint16(i), apex.MustChild(fmt.Sprintf("missing-%02d", i)), dnswire.TypeA, true)
	}
	ctx := context.Background()
	from := netip.MustParseAddrPort("192.0.2.7:5353")
	buf := make([]byte, 0, dnswire.DefaultUDPSize)

	serve := func(b *testing.B, pick func(i int) *dnswire.Message, wantRCode dnswire.RCode) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := pick(i)
			resp := srv.Handle(ctx, from, q)
			if resp == nil || resp.Header.RCode != wantRCode {
				b.Fatalf("query %d: resp=%v", i, resp)
			}
			buf, err = resp.PackBuffer(buf[:0], dnswire.DefaultUDPSize, true)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("positive", func(b *testing.B) {
		serve(b, func(i int) *dnswire.Message { return positive[i%len(positive)] }, dnswire.RCodeNoError)
	})
	b.Run("nxdomain-nsec3-proof", func(b *testing.B) {
		serve(b, func(i int) *dnswire.Message { return nxdomain[i%len(nxdomain)] }, dnswire.RCodeNXDomain)
	})
	b.Run("mixed", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var q *dnswire.Message
			want := dnswire.RCodeNoError
			if i%2 == 0 {
				q = positive[i%len(positive)]
			} else {
				q = nxdomain[i%len(nxdomain)]
				want = dnswire.RCodeNXDomain
			}
			resp := srv.Handle(ctx, from, q)
			if resp == nil || resp.Header.RCode != want {
				b.Fatalf("query %d: resp=%v", i, resp)
			}
			buf, err = resp.PackBuffer(buf[:0], dnswire.DefaultUDPSize, true)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
