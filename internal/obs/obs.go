// Package obs is the observability substrate for the whole pipeline:
// an atomic metrics registry (counters, gauges, fixed-bucket
// histograms) whose aggregates carry Merge methods like the analysis
// types — per-shard and per-worker metrics combine order-independently
// — plus a lightweight span tracer (trace.go) and a Prometheus-text
// /metrics + /healthz HTTP endpoint (http.go). Everything is standard
// library only.
//
// Every metric type is safe for concurrent use and safe as a nil
// receiver: an uninstrumented component holds nil metrics and every
// Add/Set/Observe is a no-op, so hot paths need no "is observability
// on?" branches of their own.
//
// The paper's pipeline ran at a scale (302 M domains, 14.7 K qps)
// where a blind scanner is undebuggable; zdns ships per-query metadata
// and throughput accounting for exactly this reason. The registry
// surfaces the same signals for the reproduction: query RTTs, retry
// and rate-limiter pressure, resolver cache behaviour, and the NSEC3
// hash-iteration work the Gruza et al. cost model prices.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Merge folds o into c by summation — commutative and associative, so
// per-shard counters combine in any order. A nil o is a no-op.
func (c *Counter) Merge(o *Counter) {
	if o != nil {
		c.Add(o.Value())
	}
}

// Gauge is an instantaneous float value (a rate, a level).
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Merge folds o into g by taking the maximum — the only fold over
// last-value semantics that stays commutative and associative. A nil o
// is a no-op.
func (g *Gauge) Merge(o *Gauge) {
	if g == nil || o == nil {
		return
	}
	if v := o.Value(); v > g.Value() {
		g.Set(v)
	}
}

// Registry holds named metrics. The zero value is not usable; create
// one with NewRegistry. A nil *Registry is valid everywhere and hands
// out nil metrics, so instrumentation can be threaded unconditionally.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		help:       make(map[string]string),
	}
}

// register records help text and guards against a name being reused as
// a different metric type. Callers hold r.mu.
func (r *Registry) register(name, help string, taken bool) {
	if taken {
		panic(fmt.Sprintf("obs: metric %q already registered as a different type", name))
	}
	if _, ok := r.help[name]; !ok {
		r.help[name] = help
	}
}

// Counter returns the counter registered under name, creating it on
// first use (the first registration's help text wins). A nil registry
// returns a nil, no-op counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	_, g := r.gauges[name]
	_, h := r.histograms[name]
	r.register(name, help, g || h)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. A nil registry returns a nil, no-op gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	_, c := r.counters[name]
	_, h := r.histograms[name]
	r.register(name, help, c || h)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (later calls ignore
// buckets). A nil registry returns a nil, no-op histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	_, c := r.counters[name]
	_, g := r.gauges[name]
	r.register(name, help, c || g)
	h := newHistogram(buckets)
	r.histograms[name] = h
	return h
}

// Merge folds every metric of o into r, creating missing ones:
// counters and histograms sum, gauges take the maximum. Merging shard
// registries in any order yields the same totals — the property
// TestRegistryMergeOrderIndependence pins. It fails only when the same
// histogram name carries different bucket bounds in r and o.
func (r *Registry) Merge(o *Registry) error {
	if r == nil || o == nil {
		return nil
	}
	// Snapshot o's tables so the fold never holds both locks at once.
	o.mu.Lock()
	counters := make(map[string]*Counter, len(o.counters))
	for n, c := range o.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(o.gauges))
	for n, g := range o.gauges {
		gauges[n] = g
	}
	histograms := make(map[string]*Histogram, len(o.histograms))
	for n, h := range o.histograms {
		histograms[n] = h
	}
	help := make(map[string]string, len(o.help))
	for n, t := range o.help {
		help[n] = t
	}
	o.mu.Unlock()

	for n, c := range counters {
		r.Counter(n, help[n]).Merge(c)
	}
	for n, g := range gauges {
		r.Gauge(n, help[n]).Merge(g)
	}
	for n, h := range histograms {
		if err := r.Histogram(n, help[n], h.bounds).Merge(h); err != nil {
			return fmt.Errorf("obs: merging histogram %q: %w", n, err)
		}
	}
	return nil
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format, sorted by name so the output is stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		histograms[n] = h
	}
	help := make(map[string]string, len(r.help))
	for n, t := range r.help {
		help[n] = t
	}
	r.mu.Unlock()

	for _, n := range names {
		if t := help[n]; t != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", n, t); err != nil {
				return err
			}
		}
		switch {
		case counters[n] != nil:
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, counters[n].Value()); err != nil {
				return err
			}
		case gauges[n] != nil:
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", n, n, gauges[n].Value()); err != nil {
				return err
			}
		case histograms[n] != nil:
			if err := histograms[n].writePrometheus(w, n); err != nil {
				return err
			}
		}
	}
	return nil
}
