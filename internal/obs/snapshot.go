package obs

import (
	"fmt"
	"math"
)

// Snapshot is the serializable point-in-time state of a Registry: the
// form worker processes ship their per-shard metrics back to the
// coordinator in. AddSnapshot folds one in with the same semantics as
// Registry.Merge — counters and histogram buckets sum, gauges take the
// maximum — so snapshots merge order-independently too.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Help carries the first-registration help text so a merged
	// registry renders the same /metrics comments as a local one.
	Help map[string]string `json:"help,omitempty"`
}

// HistogramSnapshot is one histogram's serializable state.
type HistogramSnapshot struct {
	// Bounds are the ascending bucket upper bounds.
	Bounds []float64 `json:"bounds"`
	// Counts holds len(Bounds)+1 non-cumulative bucket counts; the
	// last entry is the +Inf bucket.
	Counts []uint64 `json:"counts"`
	Sum    float64  `json:"sum"`
}

// Snapshot captures the registry's current state. A nil registry
// yields a nil snapshot (which AddSnapshot treats as a no-op).
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		histograms[n] = h
	}
	help := make(map[string]string, len(r.help))
	for n, t := range r.help {
		help[n] = t
	}
	r.mu.Unlock()

	s := &Snapshot{
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(histograms)),
		Help:       help,
	}
	for n, c := range counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range histograms {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[n] = hs
	}
	return s
}

// AddSnapshot folds a snapshot into the registry: counters and
// histogram buckets sum, gauges take the maximum, missing metrics are
// created with the snapshot's help text. It fails only when a
// histogram name carries different bucket bounds, or a snapshot metric
// collides with an existing metric of another type.
func (r *Registry) AddSnapshot(s *Snapshot) (err error) {
	if r == nil || s == nil {
		return nil
	}
	// The registry panics on a name registered as two different types;
	// a snapshot comes off the wire, so surface that as an error.
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("obs: snapshot merge: %v", p)
		}
	}()
	for n, v := range s.Counters {
		r.Counter(n, s.Help[n]).Add(v)
	}
	for n, v := range s.Gauges {
		g := r.Gauge(n, s.Help[n])
		if v > g.Value() {
			g.Set(v)
		}
	}
	for n, hs := range s.Histograms {
		if len(hs.Counts) != len(hs.Bounds)+1 {
			return fmt.Errorf("obs: snapshot histogram %q has %d counts for %d bounds", n, len(hs.Counts), len(hs.Bounds))
		}
		h := r.Histogram(n, s.Help[n], hs.Bounds)
		if len(h.bounds) != len(hs.Bounds) {
			return fmt.Errorf("obs: snapshot histogram %q: %w", n, ErrBucketMismatch)
		}
		for i, b := range h.bounds {
			if hs.Bounds[i] != b {
				return fmt.Errorf("obs: snapshot histogram %q: %w", n, ErrBucketMismatch)
			}
		}
		var total uint64
		for i, c := range hs.Counts {
			h.counts[i].Add(c)
			total += c
		}
		h.count.Add(total)
		for {
			old := h.sum.Load()
			next := math.Float64bits(math.Float64frombits(old) + hs.Sum)
			if h.sum.CompareAndSwap(old, next) {
				break
			}
		}
	}
	return nil
}
