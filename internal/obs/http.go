package obs

import (
	"io"
	"net"
	"net/http"
)

// NewHandler serves reg over HTTP: GET /metrics renders the Prometheus
// text exposition, GET /healthz answers "ok" — the two endpoints a
// production scrape-and-probe loop needs, on net/http alone.
func NewHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Best-effort: a probe that hung up mid-reply is still healthy.
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Best-effort for the same reason: the scraper owns the socket.
		_ = reg.WritePrometheus(w)
	})
	return mux
}

// Serve exposes reg on addr (host:port; port 0 picks a free one) and
// returns the bound address plus a shutdown function. The server runs
// until the shutdown function is called; shutdown waits for the serve
// goroutine to exit, so a caller that stops the server and then tears
// down the registry (or the test binary) cannot race a final accept.
//
//repro:ctxexempt the server's lifetime is owned by the returned shutdown func; srv.Close unblocks the serve goroutine and the bind itself is non-blocking
func Serve(addr string, reg *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewHandler(reg)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Serve returns http.ErrServerClosed on shutdown — the normal
		// exit path, nothing to report.
		_ = srv.Serve(ln)
	}()
	shutdown := func() error {
		err := srv.Close()
		<-done
		return err
	}
	return ln.Addr().String(), shutdown, nil
}
