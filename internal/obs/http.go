package obs

import (
	"io"
	"net"
	"net/http"
)

// NewHandler serves reg over HTTP: GET /metrics renders the Prometheus
// text exposition, GET /healthz answers "ok" — the two endpoints a
// production scrape-and-probe loop needs, on net/http alone.
func NewHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Best-effort: a probe that hung up mid-reply is still healthy.
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Best-effort for the same reason: the scraper owns the socket.
		_ = reg.WritePrometheus(w)
	})
	return mux
}

// Serve exposes reg on addr (host:port; port 0 picks a free one) and
// returns the bound address plus a shutdown function. The server runs
// until the shutdown function is called.
func Serve(addr string, reg *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewHandler(reg)}
	go func() {
		// Serve returns http.ErrServerClosed on shutdown — the normal
		// exit path, nothing to report.
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), srv.Close, nil
}
