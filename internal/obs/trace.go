package obs

// This file is the one place in internal/obs that reads the wall
// clock. The clock reads are sanctioned per function with
// //repro:nondeterministic directives (checked by the detertaint
// analyzer, which propagates taint over the cross-package call graph
// and stops at annotated roots). The waiver is deliberate and narrow:
// a span tracer's whole job is to measure real elapsed time, so unlike
// the population/analysis layers it cannot run off the simulation
// clock — and nothing a span measures feeds back into experiment
// output, only into telemetry.

import (
	"time"
)

// LineWriter emits one JSON-encodable value per line. scanner.Encoder
// satisfies it, so a trace shares the scanner's NDJSON machinery (and
// may even share its output stream — WriteAny serializes internally).
type LineWriter interface {
	WriteAny(v any) error
}

// Tracer times named pipeline phases and emits one NDJSON record per
// finished span. A nil *Tracer is valid: spans still time themselves
// (callers use the returned duration for throughput gauges) but
// nothing is emitted.
type Tracer struct {
	w LineWriter
}

// NewTracer creates a tracer writing spans to w (nil w: time only).
func NewTracer(w LineWriter) *Tracer {
	return &Tracer{w: w}
}

// Span is one in-flight phase measurement.
type Span struct {
	t     *Tracer
	phase string
	shard int
	start time.Time
	dur   time.Duration
	ended bool
}

// spanJSON is the NDJSON encoding of a finished span.
type spanJSON struct {
	Span        string  `json:"span"`
	Shard       int     `json:"shard"`
	StartUnixNS int64   `json:"start_unix_ns"`
	DurationNS  int64   `json:"duration_ns"`
	Seconds     float64 `json:"seconds"`
}

// Start begins timing one phase of one shard (use shard 0 for
// unsharded work). Valid on a nil tracer.
//
//repro:nondeterministic span start times are telemetry, never report data
func (t *Tracer) Start(phase string, shard int) *Span {
	return &Span{t: t, phase: phase, shard: shard, start: time.Now()}
}

// End stops the span, emits its NDJSON record when the tracer has a
// writer, and returns the measured duration. Idempotent: later calls
// return the first duration without re-emitting.
//
//repro:nondeterministic span durations are telemetry, never report data
func (s *Span) End() time.Duration {
	if s.ended {
		return s.dur
	}
	s.dur = time.Since(s.start)
	s.ended = true
	if s.t != nil && s.t.w != nil {
		// Telemetry is best-effort: a full disk must not abort the
		// experiment the trace describes.
		_ = s.t.w.WriteAny(spanJSON{
			Span:        s.phase,
			Shard:       s.shard,
			StartUnixNS: s.start.UnixNano(),
			DurationNS:  int64(s.dur),
			Seconds:     s.dur.Seconds(),
		})
	}
	return s.dur
}
