package obs

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"sync"
	"testing"
)

// render gives a registry's canonical, order-stable text form — the
// comparison key for the merge property tests.
func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

// randomRegistry builds a registry with seeded-random metric activity
// over a shared name space, so merges exercise overlapping and
// disjoint names alike.
func randomRegistry(seed uint64) *Registry {
	rng := rand.New(rand.NewPCG(seed, seed^0xABCD))
	r := NewRegistry()
	names := []string{"alpha_total", "beta_total", "gamma_total"}
	for i := 0; i < 50; i++ {
		r.Counter(names[rng.IntN(len(names))], "test counter").Add(uint64(rng.IntN(100)))
	}
	r.Gauge("rate", "test gauge").Set(rng.Float64() * 100)
	h := r.Histogram("lat_seconds", "test histogram", DurationBuckets())
	for i := 0; i < 30; i++ {
		// Multiples of 1/64 sum exactly in float64, so the merge
		// property can be checked bit-for-bit rather than with an
		// epsilon (plain IEEE addition is not associative).
		h.Observe(float64(rng.IntN(64*5)) / 64)
	}
	return r
}

// TestRegistryMergeOrderIndependence is the property the sharded
// pipeline depends on (mirroring TestSurveyShardEquivalence): merging
// per-shard registries must be commutative and associative, so the
// merge order never shows in the totals.
func TestRegistryMergeOrderIndependence(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		// Commutativity: a+b == b+a.
		ab := randomRegistry(seed)
		if err := ab.Merge(randomRegistry(seed + 100)); err != nil {
			t.Fatal(err)
		}
		ba := randomRegistry(seed + 100)
		if err := ba.Merge(randomRegistry(seed)); err != nil {
			t.Fatal(err)
		}
		if got, want := render(t, ab), render(t, ba); got != want {
			t.Errorf("seed %d: merge not commutative:\na+b:\n%s\nb+a:\n%s", seed, got, want)
		}

		// Associativity: (a+b)+c == a+(b+c).
		left := randomRegistry(seed)
		if err := left.Merge(randomRegistry(seed + 100)); err != nil {
			t.Fatal(err)
		}
		if err := left.Merge(randomRegistry(seed + 200)); err != nil {
			t.Fatal(err)
		}
		bc := randomRegistry(seed + 100)
		if err := bc.Merge(randomRegistry(seed + 200)); err != nil {
			t.Fatal(err)
		}
		right := randomRegistry(seed)
		if err := right.Merge(bc); err != nil {
			t.Fatal(err)
		}
		if got, want := render(t, left), render(t, right); got != want {
			t.Errorf("seed %d: merge not associative:\n(a+b)+c:\n%s\na+(b+c):\n%s", seed, got, want)
		}
	}
}

// TestConcurrentIncrements drives every metric type from many
// goroutines; run under -race this is the registry's thread-safety
// proof, and the final values prove no increment was lost.
func TestConcurrentIncrements(t *testing.T) {
	const workers, perWorker = 16, 1000
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("work_total", "")
			h := r.Histogram("vals", "", []float64{0.25, 0.5, 0.75})
			g := r.Gauge("level", "")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i%4) / 4)
				g.Set(float64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("work_total", "").Value(); got != workers*perWorker {
		t.Errorf("counter lost increments: got %d want %d", got, workers*perWorker)
	}
	h := r.Histogram("vals", "", []float64{0.25, 0.5, 0.75})
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram lost observations: got %d want %d", got, workers*perWorker)
	}
	wantSum := float64(workers*perWorker) * (0 + 0.25 + 0.5 + 0.75) / 4
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum: got %g want %g", got, wantSum)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter should stay 0")
	}
	g := r.Gauge("y", "")
	g.Set(5)
	if g.Value() != 0 {
		t.Error("nil gauge should stay 0")
	}
	h := r.Histogram("z", "", DurationBuckets())
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram should stay empty")
	}
	if err := r.Merge(NewRegistry()); err != nil {
		t.Errorf("nil registry merge: %v", err)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry render: %v, %q", err, buf.String())
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := h.writePrometheus(&buf, "d"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`d_bucket{le="1"} 2`,    // 0.5 and the boundary value 1
		`d_bucket{le="2"} 3`,    // + 1.5
		`d_bucket{le="4"} 4`,    // + 3
		`d_bucket{le="+Inf"} 5`, // + 100
		"d_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramMergeBucketMismatch(t *testing.T) {
	a := NewRegistry().Histogram("h", "", []float64{1, 2})
	b := NewRegistry().Histogram("h", "", []float64{1, 3})
	if err := a.Merge(b); err == nil {
		t.Fatal("merge of mismatched buckets should fail")
	}
	ra, rb := NewRegistry(), NewRegistry()
	ra.Histogram("h", "", []float64{1, 2})
	rb.Histogram("h", "", []float64{1, 3})
	if err := ra.Merge(rb); err == nil {
		t.Fatal("registry merge of mismatched buckets should fail")
	}
}

func TestGaugeMergeIsMax(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Gauge("g", "").Set(3)
	b.Gauge("g", "").Set(7)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Gauge("g", "").Value(); got != 7 {
		t.Errorf("gauge merge: got %g want 7", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("scanner_queries_total", "DNS queries issued").Add(42)
	r.Gauge("survey_domains_per_second", "scan throughput").Set(123.5)
	out := render(t, r)
	for _, want := range []string{
		"# HELP scanner_queries_total DNS queries issued",
		"# TYPE scanner_queries_total counter",
		"scanner_queries_total 42",
		"# TYPE survey_domains_per_second gauge",
		"survey_domains_per_second 123.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
