package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// bufLineWriter is a minimal LineWriter capturing emitted values.
type bufLineWriter struct {
	mu    sync.Mutex
	lines []string
}

func (b *bufLineWriter) WriteAny(v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b.mu.Lock()
	b.lines = append(b.lines, string(raw))
	b.mu.Unlock()
	return nil
}

func TestTracerEmitsSpans(t *testing.T) {
	w := &bufLineWriter{}
	tr := NewTracer(w)
	sp := tr.Start("deploy", 2)
	d := sp.End()
	if d < 0 {
		t.Fatalf("negative duration %v", d)
	}
	if sp.End() != d {
		t.Error("End should be idempotent")
	}
	if len(w.lines) != 1 {
		t.Fatalf("want 1 span line, got %d", len(w.lines))
	}
	var rec struct {
		Span       string `json:"span"`
		Shard      int    `json:"shard"`
		DurationNS int64  `json:"duration_ns"`
	}
	if err := json.Unmarshal([]byte(w.lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Span != "deploy" || rec.Shard != 2 {
		t.Errorf("bad span record: %+v", rec)
	}
	if rec.DurationNS != int64(d) {
		t.Errorf("duration mismatch: %d vs %d", rec.DurationNS, int64(d))
	}
}

func TestNilTracerStillTimes(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("scan", 0)
	if d := sp.End(); d < 0 {
		t.Errorf("nil tracer span: negative duration %v", d)
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total", "a demo counter").Add(9)
	addr, stop, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("stop: %v", err)
		}
	}()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("healthz: %d %q", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "demo_total 9") {
		t.Errorf("metrics: %d %q", code, body)
	}
}

// TestServeStopWaits pins the shutdown contract: stop() returns only
// after the serve goroutine has exited, so the port is immediately
// rebindable and no goroutine outlives the stop call (the goleak
// finding this fixed: Serve spawned a goroutine nothing waited for).
func TestServeStopWaits(t *testing.T) {
	before := runtime.NumGoroutine()
	addr, stop, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	// The goroutine closes done before returning; give the scheduler a
	// few turns to finish unwinding the stack.
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("%d goroutines before Serve, %d after stop", before, now)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port not released after stop: %v", err)
	}
	if err := ln.Close(); err != nil {
		t.Error(err)
	}
}
