package obs

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram: cumulative-style observation
// counts per upper bound plus a running sum, all updated atomically.
// Buckets are fixed at construction, which is what makes two
// histograms mergeable — the Merge that lets per-worker and per-shard
// observations combine order-independently, mirroring analysis.CDF.
type Histogram struct {
	// bounds are the ascending bucket upper bounds; a final implicit
	// +Inf bucket catches everything above the last bound.
	bounds []float64
	// counts[i] counts observations ≤ bounds[i]; counts[len(bounds)]
	// is the +Inf bucket. Stored non-cumulatively; rendering and
	// Quantile accumulate.
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-added
}

// ErrBucketMismatch reports a merge between histograms with different
// bucket bounds.
var ErrBucketMismatch = errors.New("obs: histogram bucket bounds differ")

// DurationBuckets is the default bucket set for latency-style
// histograms, in seconds: from a microsecond (simulated-network
// exchanges) up past the scanner's 5 s query timeout.
func DurationBuckets() []float64 {
	return []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5}
}

// NanosecondBuckets is the bucket set for nanosecond-valued waits —
// the lazy sign-wait histogram: from a microsecond (fast-path promote
// races) up past a second (a large zone signing under contention).
func NanosecondBuckets() []float64 {
	return []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 5e9}
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Merge folds o's buckets, count, and sum into h. Bucket-wise addition
// is commutative and associative, so shard histograms combine in any
// order; histograms with different bounds cannot be combined and
// return ErrBucketMismatch.
func (h *Histogram) Merge(o *Histogram) error {
	if h == nil || o == nil {
		return nil
	}
	if len(h.bounds) != len(o.bounds) {
		return ErrBucketMismatch
	}
	for i, b := range h.bounds {
		if o.bounds[i] != b {
			return ErrBucketMismatch
		}
	}
	for i := range o.counts {
		h.counts[i].Add(o.counts[i].Load())
	}
	h.count.Add(o.count.Load())
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + o.Sum())
		if h.sum.CompareAndSwap(old, next) {
			return nil
		}
	}
}

// writePrometheus renders the histogram in the text exposition format:
// cumulative le-labelled buckets, then _sum and _count.
func (h *Histogram) writePrometheus(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.Sum(), name, h.Count()); err != nil {
		return err
	}
	return nil
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}
