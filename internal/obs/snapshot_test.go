package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func populated() *Registry {
	r := NewRegistry()
	r.Counter("c_total", "a counter").Add(7)
	r.Gauge("g_rate", "a gauge").Set(2.5)
	h := r.Histogram("h_lat", "a histogram", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	return r
}

// TestSnapshotMergeEqualsRegistryMerge pins the distributed-metrics
// contract: merging snapshots (possibly through JSON) renders the
// exact same /metrics text as merging the live registries.
func TestSnapshotMergeEqualsRegistryMerge(t *testing.T) {
	a, b := populated(), populated()
	b.Counter("c_total", "").Add(3)
	b.Gauge("g_rate", "").Set(9)
	b.Counter("b_only_total", "only in b").Inc()

	direct := NewRegistry()
	if err := direct.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := direct.Merge(b); err != nil {
		t.Fatal(err)
	}

	viaSnap := NewRegistry()
	for _, src := range []*Registry{b, a} { // reversed order on purpose
		data, err := json.Marshal(src.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		var s Snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			t.Fatal(err)
		}
		if err := viaSnap.AddSnapshot(&s); err != nil {
			t.Fatal(err)
		}
	}

	var want, got bytes.Buffer
	if err := direct.WritePrometheus(&want); err != nil {
		t.Fatal(err)
	}
	if err := viaSnap.WritePrometheus(&got); err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Fatalf("snapshot merge diverges from registry merge:\n--- direct\n%s--- snapshot\n%s", want.String(), got.String())
	}
}

// TestSnapshotNilSafety: nil registries and nil snapshots are no-ops,
// like every other obs operation.
func TestSnapshotNilSafety(t *testing.T) {
	var nilReg *Registry
	if s := nilReg.Snapshot(); s != nil {
		t.Fatalf("nil registry snapshotted to %+v", s)
	}
	if err := nilReg.AddSnapshot(&Snapshot{Counters: map[string]uint64{"x": 1}}); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	if err := r.AddSnapshot(nil); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRejectsMalformed: snapshots come off a socket, so shape
// violations are errors, not panics.
func TestSnapshotRejectsMalformed(t *testing.T) {
	r := populated()
	if err := r.AddSnapshot(&Snapshot{
		Histograms: map[string]HistogramSnapshot{"h_lat": {Bounds: []float64{1, 10}, Counts: []uint64{1}}},
	}); err == nil {
		t.Error("count/bounds length mismatch accepted")
	}
	if err := r.AddSnapshot(&Snapshot{
		Histograms: map[string]HistogramSnapshot{"h_lat": {Bounds: []float64{1, 99}, Counts: []uint64{0, 0, 0}}},
	}); err == nil {
		t.Error("bucket bounds mismatch accepted")
	}
	if err := r.AddSnapshot(&Snapshot{
		Histograms: map[string]HistogramSnapshot{"bad": {Bounds: []float64{10, 1}, Counts: []uint64{0, 0, 0}}},
	}); err == nil {
		t.Error("non-ascending bounds accepted")
	}
	if err := r.AddSnapshot(&Snapshot{
		Counters: map[string]uint64{"g_rate": 1}, // registered as a gauge
	}); err == nil {
		t.Error("type collision accepted")
	}
}
