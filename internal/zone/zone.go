// Package zone implements the authoritative zone data model: building a
// zone from records, classifying names (authoritative data, delegation
// points, glue, empty non-terminals), signing the zone with either NSEC
// or NSEC3 denial of existence, and evaluating queries against the
// signed zone the way an authoritative server must (RFC 1034 §4.3.2,
// RFC 4035 §3.1, RFC 5155 §7).
//
// The paper's testbed (rfc9276-in-the-wild.com with its 49 subdomains)
// and every synthetic domain in the measurement population are built
// and served from this package.
package zone

import (
	"fmt"
	"sort"

	"repro/internal/dnswire"
)

// Zone is an unsigned zone: an apex plus a set of resource records.
type Zone struct {
	Apex dnswire.Name
	// TTL is the default TTL applied by convenience adders.
	TTL uint32
	// records maps owner name -> type -> records.
	records map[dnswire.Name]map[dnswire.Type][]dnswire.RR
}

// New creates an empty zone rooted at apex with a default TTL.
func New(apex dnswire.Name, ttl uint32) *Zone {
	return &Zone{
		Apex:    apex,
		TTL:     ttl,
		records: make(map[dnswire.Name]map[dnswire.Type][]dnswire.RR),
	}
}

// Add inserts a record. The owner must be at or below the apex.
func (z *Zone) Add(rr dnswire.RR) error {
	if !rr.Name.IsSubdomainOf(z.Apex) {
		return fmt.Errorf("zone: %s outside zone %s", rr.Name, z.Apex)
	}
	byType, ok := z.records[rr.Name]
	if !ok {
		byType = make(map[dnswire.Type][]dnswire.RR)
		z.records[rr.Name] = byType
	}
	byType[rr.Type()] = append(byType[rr.Type()], rr)
	return nil
}

// MustAdd is Add that panics on error, for zone construction literals.
func (z *Zone) MustAdd(rr dnswire.RR) {
	if err := z.Add(rr); err != nil {
		panic(err)
	}
}

// AddData is a convenience wrapper building the RR from parts with the
// zone default TTL.
func (z *Zone) AddData(owner dnswire.Name, data dnswire.RData) error {
	return z.Add(dnswire.RR{Name: owner, Class: dnswire.ClassIN, TTL: z.TTL, Data: data})
}

// Lookup returns the records of the given type at owner.
func (z *Zone) Lookup(owner dnswire.Name, t dnswire.Type) []dnswire.RR {
	return z.records[owner][t]
}

// TypesAt returns the set of types present at owner.
func (z *Zone) TypesAt(owner dnswire.Name) []dnswire.Type {
	byType := z.records[owner]
	out := make([]dnswire.Type, 0, len(byType))
	for t := range byType {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasName reports whether any record exists exactly at owner.
func (z *Zone) HasName(owner dnswire.Name) bool {
	_, ok := z.records[owner]
	return ok
}

// Names returns every owner name with records, canonically sorted.
func (z *Zone) Names() []dnswire.Name {
	out := make([]dnswire.Name, 0, len(z.records))
	for n := range z.records {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		return dnswire.CanonicalCompare(out[i], out[j]) < 0
	})
	return out
}

// Records returns all records at all names, canonically sorted by owner
// then type.
func (z *Zone) Records() []dnswire.RR {
	var out []dnswire.RR
	for _, n := range z.Names() {
		byType := z.records[n]
		types := make([]dnswire.Type, 0, len(byType))
		for t := range byType {
			types = append(types, t)
		}
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		for _, t := range types {
			out = append(out, byType[t]...)
		}
	}
	return out
}

// SOA returns the apex SOA data, if present.
func (z *Zone) SOA() (dnswire.SOA, bool) {
	rrs := z.Lookup(z.Apex, dnswire.TypeSOA)
	if len(rrs) == 0 {
		return dnswire.SOA{}, false
	}
	soa, ok := rrs[0].Data.(dnswire.SOA)
	return soa, ok
}

// DelegationPoint returns the deepest delegation point at or above
// name (strictly below the apex), if any: a name with an NS RRset that
// is not the apex. Records at or below a delegation point (other than
// the delegation NS and glue) are occluded.
func (z *Zone) DelegationPoint(name dnswire.Name) (dnswire.Name, bool) {
	// Walk from the apex side down: find the highest cut on the path.
	labels := name.Labels()
	apexCount := z.Apex.CountLabels()
	for n := apexCount + 1; n <= len(labels); n++ {
		candidate, err := dnswire.FromLabels(labels[len(labels)-n:]...)
		if err != nil {
			return "", false
		}
		if candidate == z.Apex {
			continue
		}
		if len(z.Lookup(candidate, dnswire.TypeNS)) > 0 {
			return candidate, true
		}
	}
	return "", false
}

// IsDelegation reports whether name is a zone cut (NS below apex).
func (z *Zone) IsDelegation(name dnswire.Name) bool {
	return name != z.Apex && len(z.Lookup(name, dnswire.TypeNS)) > 0
}

// IsGlue reports whether owner's records are glue: address records at
// or below a delegation point.
func (z *Zone) IsGlue(owner dnswire.Name) bool {
	cut, ok := z.DelegationPoint(owner)
	return ok && owner != cut
}

// AuthoritativeNames returns the set of names the zone is authoritative
// for — every owner that is not glue — plus all empty non-terminals on
// the paths between them and the apex. Delegation points are included
// (they own NS and possibly DS). This is exactly the name set the NSEC
// and NSEC3 chains must cover (RFC 5155 §7.1 step 2 includes ENTs).
func (z *Zone) AuthoritativeNames() map[dnswire.Name]dnswire.TypeBitmap {
	out := make(map[dnswire.Name]dnswire.TypeBitmap, len(z.records))
	for owner, byType := range z.records {
		if z.IsGlue(owner) {
			continue
		}
		types := make([]dnswire.Type, 0, len(byType))
		for t := range byType {
			// At a delegation point only NS and DS are authoritative
			// enough to appear in the bitmap (NS appears but unsigned).
			if z.IsDelegation(owner) && t != dnswire.TypeNS && t != dnswire.TypeDS {
				continue
			}
			types = append(types, t)
		}
		out[owner] = dnswire.NewTypeBitmap(types...)
		// Walk up to the apex inserting empty non-terminals.
		for p := owner.Parent(); p != z.Apex && p.IsSubdomainOf(z.Apex) && !p.IsRoot(); p = p.Parent() {
			if _, exists := out[p]; !exists {
				if _, hasRecords := z.records[p]; !hasRecords {
					out[p] = dnswire.NewTypeBitmap()
				}
			}
		}
	}
	return out
}

// WildcardAt returns the closest wildcard owner applicable to qname: a
// "*" child of one of qname's ancestors within the zone, starting from
// the closest encloser (RFC 4592 §3.3.1). The wildcard only applies if
// no closer match exists; callers check existence separately.
func (z *Zone) WildcardAt(qname dnswire.Name) (dnswire.Name, bool) {
	for anc := qname.Parent(); anc.IsSubdomainOf(z.Apex) || anc == z.Apex; anc = anc.Parent() {
		w := anc.Wildcard()
		if z.HasName(w) {
			return w, true
		}
		// The wildcard at the closest encloser is the only candidate:
		// if the ancestor exists, stop (RFC 4592).
		if z.HasName(anc) {
			return "", false
		}
		if anc == z.Apex || anc.IsRoot() {
			break
		}
	}
	return "", false
}
