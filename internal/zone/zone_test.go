package zone

import (
	"net/netip"
	"strings"
	"testing"

	"repro/internal/dnswire"
	"repro/internal/nsec3"
)

const (
	tInception  = 1709251200
	tExpiration = 1711843200
)

func mustA(ip string) dnswire.A  { return dnswire.A{Addr: netip.MustParseAddr(ip)} }
func name(s string) dnswire.Name { return dnswire.MustParseName(s) }
func soaData() dnswire.SOA {
	return dnswire.SOA{
		MName: name("ns1.example.com"), RName: name("hostmaster.example.com"),
		Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
	}
}

// testZone builds the canonical test zone:
//
//	example.com        SOA NS
//	www.example.com    A
//	mail.example.com   A MX
//	a.b.example.com    TXT        (b.example.com is an ENT)
//	*.wild.example.com A          (wild.example.com is an ENT)
//	sub.example.com    NS         (insecure delegation + glue)
//	ns.sub.example.com A          (glue)
//	alias.example.com  CNAME
func testZone(t testing.TB) *Zone {
	t.Helper()
	z := New(name("example.com"), 300)
	z.MustAdd(dnswire.RR{Name: z.Apex, Class: dnswire.ClassIN, TTL: 3600, Data: soaData()})
	z.MustAdd(dnswire.RR{Name: z.Apex, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NS{Host: name("ns1.example.com")}})
	z.MustAdd(dnswire.RR{Name: name("ns1.example.com"), Class: dnswire.ClassIN, TTL: 300, Data: mustA("192.0.2.53")})
	z.MustAdd(dnswire.RR{Name: name("www.example.com"), Class: dnswire.ClassIN, TTL: 300, Data: mustA("192.0.2.1")})
	z.MustAdd(dnswire.RR{Name: name("mail.example.com"), Class: dnswire.ClassIN, TTL: 300, Data: mustA("192.0.2.2")})
	z.MustAdd(dnswire.RR{Name: name("mail.example.com"), Class: dnswire.ClassIN, TTL: 300, Data: dnswire.MX{Preference: 10, Host: name("mail.example.com")}})
	z.MustAdd(dnswire.RR{Name: name("a.b.example.com"), Class: dnswire.ClassIN, TTL: 300, Data: dnswire.TXT{Strings: []string{"deep"}}})
	z.MustAdd(dnswire.RR{Name: name("*.wild.example.com"), Class: dnswire.ClassIN, TTL: 300, Data: mustA("192.0.2.77")})
	z.MustAdd(dnswire.RR{Name: name("sub.example.com"), Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NS{Host: name("ns.sub.example.com")}})
	z.MustAdd(dnswire.RR{Name: name("ns.sub.example.com"), Class: dnswire.ClassIN, TTL: 300, Data: mustA("192.0.2.100")})
	z.MustAdd(dnswire.RR{Name: name("alias.example.com"), Class: dnswire.ClassIN, TTL: 300, Data: dnswire.CNAME{Target: name("www.example.com")}})
	return z
}

func signTestZone(t testing.TB, cfg SignConfig) *Signed {
	t.Helper()
	if cfg.Inception == 0 {
		cfg.Inception, cfg.Expiration = tInception, tExpiration
	}
	s, err := testZone(t).Sign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAddRejectsOutOfZone(t *testing.T) {
	z := New(name("example.com"), 300)
	err := z.Add(dnswire.RR{Name: name("example.org"), Class: dnswire.ClassIN, TTL: 1, Data: mustA("192.0.2.1")})
	if err == nil {
		t.Fatal("out-of-zone record accepted")
	}
}

func TestDelegationClassification(t *testing.T) {
	z := testZone(t)
	if !z.IsDelegation(name("sub.example.com")) {
		t.Fatal("sub not a delegation")
	}
	if z.IsDelegation(z.Apex) {
		t.Fatal("apex wrongly a delegation")
	}
	if !z.IsGlue(name("ns.sub.example.com")) {
		t.Fatal("glue not detected")
	}
	if z.IsGlue(name("ns1.example.com")) {
		t.Fatal("in-zone host wrongly glue")
	}
	cut, ok := z.DelegationPoint(name("deep.below.sub.example.com"))
	if !ok || cut != name("sub.example.com") {
		t.Fatalf("DelegationPoint = %q, %v", cut, ok)
	}
	if _, ok := z.DelegationPoint(name("www.example.com")); ok {
		t.Fatal("www wrongly under a cut")
	}
}

func TestAuthoritativeNamesIncludesENTsExcludesGlue(t *testing.T) {
	z := testZone(t)
	names := z.AuthoritativeNames()
	if _, ok := names[name("b.example.com")]; !ok {
		t.Fatal("ENT b.example.com missing")
	}
	if _, ok := names[name("wild.example.com")]; !ok {
		t.Fatal("ENT wild.example.com missing")
	}
	if _, ok := names[name("ns.sub.example.com")]; ok {
		t.Fatal("glue included")
	}
	if bm, ok := names[name("sub.example.com")]; !ok {
		t.Fatal("delegation point missing")
	} else if !bm.Contains(dnswire.TypeNS) || bm.Contains(dnswire.TypeA) {
		t.Fatalf("delegation bitmap = %v", bm)
	}
	// ENT owns nothing.
	if bm := names[name("b.example.com")]; len(bm) != 0 {
		t.Fatalf("ENT bitmap = %v", bm)
	}
}

func TestSignRequiresSOA(t *testing.T) {
	z := New(name("nosoa.example"), 300)
	if _, err := z.Sign(SignConfig{}); err != ErrNoSOA {
		t.Fatalf("err = %v", err)
	}
}

func TestSignNSEC3PublishesParamAndChain(t *testing.T) {
	s := signTestZone(t, SignConfig{
		Denial: DenialNSEC3,
		NSEC3:  nsec3.Params{Iterations: 1, Salt: []byte{0xAB, 0xCD}},
	})
	params := s.Zone.Lookup(s.Zone.Apex, dnswire.TypeNSEC3PARAM)
	if len(params) != 1 {
		t.Fatalf("NSEC3PARAM count %d", len(params))
	}
	p := params[0].Data.(dnswire.NSEC3PARAM)
	if p.Iterations != 1 || len(p.Salt) != 2 {
		t.Fatalf("NSEC3PARAM = %+v", p)
	}
	if s.Chain() == nil || len(s.Chain().Records) == 0 {
		t.Fatal("no NSEC3 chain")
	}
	// Every chain record has an RRSIG.
	for _, rec := range s.Chain().Records {
		rr := s.Chain().RRFor(rec, 300)
		if len(s.RRSIGsFor(rr.Name, dnswire.TypeNSEC3)) == 0 {
			t.Fatalf("NSEC3 at %s unsigned", rr.Name)
		}
	}
}

func TestSignedLookupSuccess(t *testing.T) {
	s := signTestZone(t, SignConfig{Denial: DenialNSEC3})
	a, err := s.Evaluate(name("www.example.com"), dnswire.TypeA, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != KindSuccess || a.RCode != dnswire.RCodeNoError {
		t.Fatalf("kind=%s rcode=%s", a.Kind, a.RCode)
	}
	var hasA, hasSig bool
	for _, rr := range a.Answer {
		switch rr.Type() {
		case dnswire.TypeA:
			hasA = true
		case dnswire.TypeRRSIG:
			hasSig = true
		}
	}
	if !hasA || !hasSig {
		t.Fatalf("answer incomplete: %v", a.Answer)
	}
	// Without DO: no RRSIG.
	a2, _ := s.Evaluate(name("www.example.com"), dnswire.TypeA, false)
	for _, rr := range a2.Answer {
		if rr.Type() == dnswire.TypeRRSIG {
			t.Fatal("RRSIG included without DO")
		}
	}
}

func TestSignedLookupNXDOMAINProofVerifies(t *testing.T) {
	for _, iters := range []uint16{0, 5, 100} {
		s := signTestZone(t, SignConfig{
			Denial: DenialNSEC3,
			NSEC3:  nsec3.Params{Iterations: iters},
		})
		qname := name("doesnotexist.example.com")
		a, err := s.Evaluate(qname, dnswire.TypeA, true)
		if err != nil {
			t.Fatal(err)
		}
		if a.Kind != KindNXDOMAIN || a.RCode != dnswire.RCodeNXDomain {
			t.Fatalf("kind=%s rcode=%s", a.Kind, a.RCode)
		}
		set, err := nsec3.ExtractResponseSet(a.Authority)
		if err != nil {
			t.Fatal(err)
		}
		ce, _, err := set.VerifyNXDOMAIN(qname)
		if err != nil {
			t.Fatalf("iters=%d: %v", iters, err)
		}
		if ce != "example.com." {
			t.Fatalf("ce = %s", ce)
		}
		// SOA present for negative caching.
		var hasSOA bool
		for _, rr := range a.Authority {
			if rr.Type() == dnswire.TypeSOA {
				hasSOA = true
			}
		}
		if !hasSOA {
			t.Fatal("no SOA in authority")
		}
	}
}

func TestSignedLookupNODATA(t *testing.T) {
	s := signTestZone(t, SignConfig{Denial: DenialNSEC3})
	a, err := s.Evaluate(name("www.example.com"), dnswire.TypeAAAA, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != KindNODATA || a.RCode != dnswire.RCodeNoError || len(a.Answer) != 0 {
		t.Fatalf("kind=%s rcode=%s answers=%d", a.Kind, a.RCode, len(a.Answer))
	}
	set, err := nsec3.ExtractResponseSet(a.Authority)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.VerifyNODATA(name("www.example.com"), dnswire.TypeAAAA); err != nil {
		t.Fatal(err)
	}
}

func TestSignedLookupWildcard(t *testing.T) {
	s := signTestZone(t, SignConfig{Denial: DenialNSEC3})
	qname := name("unique-probe-123.wild.example.com")
	a, err := s.Evaluate(qname, dnswire.TypeA, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != KindWildcard {
		t.Fatalf("kind=%s", a.Kind)
	}
	// Owner rewritten to qname, RRSIG labels < owner labels.
	var sawExpanded bool
	var sigLabels uint8
	for _, rr := range a.Answer {
		if rr.Type() == dnswire.TypeA && rr.Name == qname {
			sawExpanded = true
		}
		if sig, ok := rr.Data.(dnswire.RRSIG); ok {
			sigLabels = sig.Labels
		}
	}
	if !sawExpanded {
		t.Fatal("answer not expanded to qname")
	}
	if int(sigLabels) >= qname.CountLabels() {
		t.Fatalf("RRSIG labels %d not below qname labels %d", sigLabels, qname.CountLabels())
	}
	// The wildcard proof must verify.
	set, err := nsec3.ExtractResponseSet(a.Authority)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.VerifyWildcardAnswer(qname, int(sigLabels)); err != nil {
		t.Fatal(err)
	}
}

func TestSignedLookupDelegation(t *testing.T) {
	s := signTestZone(t, SignConfig{Denial: DenialNSEC3})
	a, err := s.Evaluate(name("host.sub.example.com"), dnswire.TypeA, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != KindDelegation || a.RCode != dnswire.RCodeNoError {
		t.Fatalf("kind=%s", a.Kind)
	}
	var hasNS, hasGlue, hasProof bool
	for _, rr := range a.Authority {
		switch rr.Type() {
		case dnswire.TypeNS:
			hasNS = true
		case dnswire.TypeNSEC3:
			hasProof = true
		}
	}
	for _, rr := range a.Additional {
		if rr.Type() == dnswire.TypeA && rr.Name == name("ns.sub.example.com") {
			hasGlue = true
		}
	}
	if !hasNS || !hasGlue || !hasProof {
		t.Fatalf("referral incomplete: NS=%v glue=%v proof=%v", hasNS, hasGlue, hasProof)
	}
}

func TestSignedLookupCNAME(t *testing.T) {
	s := signTestZone(t, SignConfig{Denial: DenialNSEC3})
	a, err := s.Evaluate(name("alias.example.com"), dnswire.TypeA, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != KindCNAME {
		t.Fatalf("kind=%s", a.Kind)
	}
	if len(a.Answer) == 0 || a.Answer[0].Type() != dnswire.TypeCNAME {
		t.Fatalf("answer=%v", a.Answer)
	}
}

func TestSignedLookupOutOfZone(t *testing.T) {
	s := signTestZone(t, SignConfig{Denial: DenialNSEC3})
	a, err := s.Evaluate(name("www.other.org"), dnswire.TypeA, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != KindNotInZone || a.RCode != dnswire.RCodeRefused {
		t.Fatalf("kind=%s rcode=%s", a.Kind, a.RCode)
	}
}

func TestOptOutOmitsInsecureDelegations(t *testing.T) {
	optIn := signTestZone(t, SignConfig{Denial: DenialNSEC3})
	optOut := signTestZone(t, SignConfig{Denial: DenialNSEC3, OptOut: true})
	if len(optOut.Chain().Records) >= len(optIn.Chain().Records) {
		t.Fatalf("opt-out chain not smaller: %d vs %d",
			len(optOut.Chain().Records), len(optIn.Chain().Records))
	}
	for _, rec := range optOut.Chain().Records {
		if !rec.RR.OptOut() {
			t.Fatal("opt-out flag missing on chain record")
		}
	}
	// The insecure delegation has no NSEC3 match in the opt-out chain.
	if _, ok, _ := optOut.Chain().Match(name("sub.example.com")); ok {
		t.Fatal("insecure delegation has NSEC3 despite opt-out")
	}
	if _, ok, _ := optIn.Chain().Match(name("sub.example.com")); !ok {
		t.Fatal("opt-in chain must include the delegation")
	}
}

func TestNSECModeLookups(t *testing.T) {
	s := signTestZone(t, SignConfig{Denial: DenialNSEC})
	// NXDOMAIN carries NSEC records.
	a, err := s.Evaluate(name("nothere.example.com"), dnswire.TypeA, true)
	if err != nil {
		t.Fatal(err)
	}
	var nsecs int
	for _, rr := range a.Authority {
		if rr.Type() == dnswire.TypeNSEC {
			nsecs++
		}
	}
	if a.Kind != KindNXDOMAIN || nsecs == 0 {
		t.Fatalf("kind=%s nsecs=%d", a.Kind, nsecs)
	}
	// NSEC chain is walkable: next pointers visit every name.
	first := s.nsecOrder[0]
	cur := first
	visited := 0
	for {
		rr, ok := s.NSECRecord(cur)
		if !ok {
			t.Fatalf("no NSEC at %s", cur)
		}
		visited++
		next := rr.Data.(dnswire.NSEC).NextName
		if next == first {
			break
		}
		cur = next
		if visited > len(s.nsecOrder) {
			t.Fatal("NSEC chain does not terminate")
		}
	}
	if visited != len(s.nsecOrder) {
		t.Fatalf("walked %d of %d names", visited, len(s.nsecOrder))
	}
}

func TestExpireAllProducesExpiredRRSIGs(t *testing.T) {
	s := signTestZone(t, SignConfig{Denial: DenialNSEC3, ExpireAll: true})
	sigs := s.RRSIGsFor(name("www.example.com"), dnswire.TypeA)
	if len(sigs) == 0 {
		t.Fatal("no RRSIG")
	}
	sig := sigs[0].Data.(dnswire.RRSIG)
	if int32(tInception-sig.Expiration) <= 0 {
		t.Fatalf("expiration %d not before inception %d", sig.Expiration, tInception)
	}
}

func TestExpireDenialSigsOnlyAffectsNSEC3(t *testing.T) {
	s := signTestZone(t, SignConfig{Denial: DenialNSEC3, ExpireDenialSigs: true})
	aSig := s.RRSIGsFor(name("www.example.com"), dnswire.TypeA)[0].Data.(dnswire.RRSIG)
	if int32(aSig.Expiration-tInception) < 0 {
		t.Fatal("A RRSIG wrongly expired")
	}
	for _, rec := range s.Chain().Records {
		rr := s.Chain().RRFor(rec, 300)
		n3sig := s.RRSIGsFor(rr.Name, dnswire.TypeNSEC3)[0].Data.(dnswire.RRSIG)
		if int32(tInception-n3sig.Expiration) <= 0 {
			t.Fatal("NSEC3 RRSIG not expired")
		}
	}
}

func TestDSQueryAtCutAnsweredByParent(t *testing.T) {
	z := testZone(t)
	// Give the delegation a DS (secure delegation).
	z.MustAdd(dnswire.RR{Name: name("sub.example.com"), Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.DS{KeyTag: 1, Algorithm: dnswire.AlgECDSAP256SHA256,
			DigestType: dnswire.DigestSHA256, Digest: make([]byte, 32)}})
	s, err := z.Sign(SignConfig{Denial: DenialNSEC3, Inception: tInception, Expiration: tExpiration})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Evaluate(name("sub.example.com"), dnswire.TypeDS, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != KindSuccess {
		t.Fatalf("kind=%s", a.Kind)
	}
	if len(a.Answer) == 0 || a.Answer[0].Type() != dnswire.TypeDS {
		t.Fatalf("answer=%v", a.Answer)
	}
	// And the referral for names below now carries DS.
	ref, err := s.Evaluate(name("x.sub.example.com"), dnswire.TypeA, true)
	if err != nil {
		t.Fatal(err)
	}
	var hasDS bool
	for _, rr := range ref.Authority {
		if rr.Type() == dnswire.TypeDS {
			hasDS = true
		}
	}
	if !hasDS {
		t.Fatal("secure referral lacks DS")
	}
}

func TestMasterParseAndWriteRoundTrip(t *testing.T) {
	text := `
$ORIGIN example.com.
$TTL 300
@	3600	IN	SOA	ns1.example.com. hostmaster.example.com. 1 7200 3600 1209600 300
@	3600	IN	NS	ns1
ns1		IN	A	192.0.2.53
www		IN	A	192.0.2.1
www		IN	AAAA	2001:db8::1
mail		IN	MX	10 mail
alias		IN	CNAME	www
txt		IN	TXT	"hello"
`
	z, err := ParseMaster(strings.NewReader(text), name("example.com"), 300)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := z.SOA(); !ok {
		t.Fatal("no SOA parsed")
	}
	if got := z.Lookup(name("www.example.com"), dnswire.TypeA); len(got) != 1 {
		t.Fatalf("www A = %v", got)
	}
	if got := z.Lookup(name("mail.example.com"), dnswire.TypeMX); len(got) != 1 {
		t.Fatalf("mail MX = %v", got)
	}
	var sb strings.Builder
	if err := WriteMaster(&sb, z); err != nil {
		t.Fatal(err)
	}
	z2, err := ParseMaster(strings.NewReader(sb.String()), name("example.com"), 300)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, sb.String())
	}
	if len(z2.Records()) != len(z.Records()) {
		t.Fatalf("round trip %d != %d records", len(z2.Records()), len(z.Records()))
	}
}

func TestMasterParseErrors(t *testing.T) {
	cases := []string{
		"$ORIGIN",                    // missing arg
		"$TTL abc",                   // bad ttl
		"www IN",                     // missing type
		"www IN A not-an-ip",         // bad rdata
		"www IN A",                   // missing rdata
		"\tIN A 192.0.2.1",           // blank owner, no previous
		"www IN NSEC3 1 0 0 - X 0 A", // unsupported presentation type
	}
	for _, c := range cases {
		if _, err := ParseMaster(strings.NewReader(c), name("example.com"), 300); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestWildcardAtRespectsCloserExistence(t *testing.T) {
	z := testZone(t)
	// wild.example.com exists as ENT → its wildcard applies to children.
	if w, ok := z.WildcardAt(name("foo.wild.example.com")); !ok || w != name("*.wild.example.com") {
		t.Fatalf("WildcardAt = %q, %v", w, ok)
	}
	// No wildcard at the apex level.
	if _, ok := z.WildcardAt(name("foo.example.com")); ok {
		t.Fatal("unexpected wildcard")
	}
}
