package zone

import (
	"bufio"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"repro/internal/dnswire"
)

// This file implements a practical subset of the RFC 1035 §5 master
// file format: $ORIGIN and $TTL directives, ';' comments, '@' for the
// origin, relative names, optional TTL and class fields, and the
// presentation syntax of every RR type in the dnswire codec. It does
// not implement multi-line parentheses or $INCLUDE.

// ParseMaster reads a master file and returns the zone rooted at origin
// (which a $ORIGIN directive may override).
func ParseMaster(r io.Reader, origin dnswire.Name, defaultTTL uint32) (*Zone, error) {
	z := New(origin, defaultTTL)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lastOwner dnswire.Name
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		startsBlank := line[0] == ' ' || line[0] == '\t'
		fields := strings.Fields(line)
		if fields[0] == "$ORIGIN" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("zone: line %d: $ORIGIN needs one argument", lineNo)
			}
			o, err := dnswire.ParseName(fields[1])
			if err != nil {
				return nil, fmt.Errorf("zone: line %d: %w", lineNo, err)
			}
			origin = o
			if len(z.records) == 0 {
				z.Apex = o
			}
			continue
		}
		if fields[0] == "$TTL" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("zone: line %d: $TTL needs one argument", lineNo)
			}
			ttl, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("zone: line %d: %w", lineNo, err)
			}
			z.TTL = uint32(ttl)
			continue
		}
		rr, owner, err := parseRecordLine(fields, startsBlank, lastOwner, origin, z.TTL)
		if err != nil {
			return nil, fmt.Errorf("zone: line %d: %w", lineNo, err)
		}
		lastOwner = owner
		if err := z.Add(rr); err != nil {
			return nil, fmt.Errorf("zone: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return z, nil
}

func parseRecordLine(fields []string, startsBlank bool, lastOwner, origin dnswire.Name, defaultTTL uint32) (dnswire.RR, dnswire.Name, error) {
	var owner dnswire.Name
	var err error
	i := 0
	if startsBlank {
		if lastOwner == "" {
			return dnswire.RR{}, "", fmt.Errorf("blank owner with no previous record")
		}
		owner = lastOwner
	} else {
		owner, err = nameRelativeTo(fields[0], origin)
		if err != nil {
			return dnswire.RR{}, "", err
		}
		i = 1
	}
	ttl := defaultTTL
	class := dnswire.ClassIN
	// TTL and class may appear in either order before the type.
	for i < len(fields) {
		f := fields[i]
		if v, err := strconv.ParseUint(f, 10, 32); err == nil {
			ttl = uint32(v)
			i++
			continue
		}
		if f == "IN" || f == "CH" || f == "HS" {
			i++
			continue
		}
		break
	}
	if i >= len(fields) {
		return dnswire.RR{}, "", fmt.Errorf("missing RR type")
	}
	t, err := dnswire.ParseType(fields[i])
	if err != nil {
		return dnswire.RR{}, "", err
	}
	i++
	data, err := parsePresentationRData(t, fields[i:], origin)
	if err != nil {
		return dnswire.RR{}, "", err
	}
	return dnswire.RR{Name: owner, Class: class, TTL: ttl, Data: data}, owner, nil
}

func nameRelativeTo(s string, origin dnswire.Name) (dnswire.Name, error) {
	if s == "@" {
		return origin, nil
	}
	if strings.HasSuffix(s, ".") && !strings.HasSuffix(s, `\.`) {
		return dnswire.ParseName(s)
	}
	rel, err := dnswire.ParseName(s)
	if err != nil {
		return "", err
	}
	labels := append(rel.Labels(), origin.Labels()...)
	return dnswire.FromLabels(labels...)
}

func parsePresentationRData(t dnswire.Type, f []string, origin dnswire.Name) (dnswire.RData, error) {
	need := func(n int) error {
		if len(f) < n {
			return fmt.Errorf("%s RDATA needs %d fields, have %d", t, n, len(f))
		}
		return nil
	}
	name := func(s string) (dnswire.Name, error) { return nameRelativeTo(s, origin) }
	u := func(s string, bits int) (uint64, error) { return strconv.ParseUint(s, 10, bits) }
	switch t {
	case dnswire.TypeA:
		if err := need(1); err != nil {
			return nil, err
		}
		a, err := netip.ParseAddr(f[0])
		if err != nil || !a.Is4() {
			return nil, fmt.Errorf("bad A address %q", f[0])
		}
		return dnswire.A{Addr: a}, nil
	case dnswire.TypeAAAA:
		if err := need(1); err != nil {
			return nil, err
		}
		a, err := netip.ParseAddr(f[0])
		if err != nil || !a.Is6() {
			return nil, fmt.Errorf("bad AAAA address %q", f[0])
		}
		return dnswire.AAAA{Addr: a}, nil
	case dnswire.TypeNS:
		if err := need(1); err != nil {
			return nil, err
		}
		n, err := name(f[0])
		if err != nil {
			return nil, err
		}
		return dnswire.NS{Host: n}, nil
	case dnswire.TypeCNAME:
		if err := need(1); err != nil {
			return nil, err
		}
		n, err := name(f[0])
		if err != nil {
			return nil, err
		}
		return dnswire.CNAME{Target: n}, nil
	case dnswire.TypePTR:
		if err := need(1); err != nil {
			return nil, err
		}
		n, err := name(f[0])
		if err != nil {
			return nil, err
		}
		return dnswire.PTR{Target: n}, nil
	case dnswire.TypeMX:
		if err := need(2); err != nil {
			return nil, err
		}
		pref, err := u(f[0], 16)
		if err != nil {
			return nil, err
		}
		n, err := name(f[1])
		if err != nil {
			return nil, err
		}
		return dnswire.MX{Preference: uint16(pref), Host: n}, nil
	case dnswire.TypeTXT:
		if err := need(1); err != nil {
			return nil, err
		}
		var strs []string
		for _, s := range f {
			strs = append(strs, strings.Trim(s, `"`))
		}
		return dnswire.TXT{Strings: strs}, nil
	case dnswire.TypeSOA:
		if err := need(7); err != nil {
			return nil, err
		}
		m, err := name(f[0])
		if err != nil {
			return nil, err
		}
		r, err := name(f[1])
		if err != nil {
			return nil, err
		}
		var vals [5]uint32
		for i := 0; i < 5; i++ {
			v, err := u(f[2+i], 32)
			if err != nil {
				return nil, err
			}
			vals[i] = uint32(v)
		}
		return dnswire.SOA{MName: m, RName: r, Serial: vals[0], Refresh: vals[1],
			Retry: vals[2], Expire: vals[3], Minimum: vals[4]}, nil
	case dnswire.TypeDNSKEY:
		if err := need(4); err != nil {
			return nil, err
		}
		flags, err := u(f[0], 16)
		if err != nil {
			return nil, err
		}
		proto, err := u(f[1], 8)
		if err != nil {
			return nil, err
		}
		alg, err := u(f[2], 8)
		if err != nil {
			return nil, err
		}
		key, err := base64.StdEncoding.DecodeString(strings.Join(f[3:], ""))
		if err != nil {
			return nil, err
		}
		return dnswire.DNSKEY{Flags: uint16(flags), Protocol: uint8(proto),
			Algorithm: dnswire.SecAlgorithm(alg), PublicKey: key}, nil
	case dnswire.TypeDS:
		if err := need(4); err != nil {
			return nil, err
		}
		tag, err := u(f[0], 16)
		if err != nil {
			return nil, err
		}
		alg, err := u(f[1], 8)
		if err != nil {
			return nil, err
		}
		dt, err := u(f[2], 8)
		if err != nil {
			return nil, err
		}
		digest, err := hex.DecodeString(strings.ToLower(strings.Join(f[3:], "")))
		if err != nil {
			return nil, err
		}
		return dnswire.DS{KeyTag: uint16(tag), Algorithm: dnswire.SecAlgorithm(alg),
			DigestType: dnswire.DigestType(dt), Digest: digest}, nil
	case dnswire.TypeNSEC3PARAM:
		if err := need(4); err != nil {
			return nil, err
		}
		alg, err := u(f[0], 8)
		if err != nil {
			return nil, err
		}
		flags, err := u(f[1], 8)
		if err != nil {
			return nil, err
		}
		iters, err := u(f[2], 16)
		if err != nil {
			return nil, err
		}
		var salt []byte
		if f[3] != "-" {
			if salt, err = hex.DecodeString(strings.ToLower(f[3])); err != nil {
				return nil, err
			}
		}
		return dnswire.NSEC3PARAM{HashAlg: dnswire.NSEC3HashAlg(alg), Flags: uint8(flags),
			Iterations: uint16(iters), Salt: salt}, nil
	default:
		return nil, fmt.Errorf("zone: no presentation parser for %s", t)
	}
}

// WriteMaster serializes the zone in master-file format.
func WriteMaster(w io.Writer, z *Zone) error {
	if _, err := fmt.Fprintf(w, "$ORIGIN %s\n$TTL %d\n", z.Apex, z.TTL); err != nil {
		return err
	}
	for _, rr := range z.Records() {
		if _, err := fmt.Fprintln(w, rr.String()); err != nil {
			return err
		}
	}
	return nil
}
