package zone

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/nsec3"
)

// DenialMode selects the authenticated denial of existence mechanism.
type DenialMode int

// Denial modes.
const (
	DenialNSEC  DenialMode = iota // plain NSEC (RFC 4034) — walkable
	DenialNSEC3                   // hashed NSEC3 (RFC 5155)
	DenialNone                    // unsigned zone: no DNSSEC at all
)

// String returns the mode name.
func (m DenialMode) String() string {
	switch m {
	case DenialNSEC3:
		return "NSEC3"
	case DenialNone:
		return "NONE"
	}
	return "NSEC"
}

// SignConfig controls zone signing.
type SignConfig struct {
	// Algorithm selects the DNSSEC algorithm for both keys.
	Algorithm dnswire.SecAlgorithm
	// Denial selects NSEC or NSEC3.
	Denial DenialMode
	// NSEC3 carries the hash parameters when Denial is DenialNSEC3.
	// These are the knobs the paper measures: additional iterations
	// (RFC 9276 Item 2 requires 0) and salt (Item 3 recommends none).
	NSEC3 nsec3.Params
	// OptOut sets the NSEC3 Opt-Out flag and omits insecure
	// delegations from the chain (RFC 5155 §6; RFC 9276 Items 4–5).
	OptOut bool
	// Inception and Expiration are the RRSIG window (Unix seconds).
	Inception, Expiration uint32
	// ExpireAll signs every RRset with an already-expired window (the
	// paper's "expired" testbed subdomain).
	ExpireAll bool
	// ExpireDenialSigs signs only the NSEC3/NSEC RRsets with an
	// expired window (the "it-2501-expired" subdomain, probing
	// RFC 9276 Item 7).
	ExpireDenialSigs bool
	// KSK and ZSK, when nil, are generated with Rand.
	KSK, ZSK *dnssec.KeyPair
	// Rand seeds key generation; nil means crypto/rand.
	Rand io.Reader
}

// Signed is a fully signed zone ready to be served.
type Signed struct {
	Zone   *Zone
	Config SignConfig
	KSK    *dnssec.KeyPair
	ZSK    *dnssec.KeyPair

	// names is the authoritative name set with post-signing bitmaps.
	names map[dnswire.Name]dnswire.TypeBitmap
	// rrsigs maps owner -> covered type -> RRSIG records.
	rrsigs map[dnswire.Name]map[dnswire.Type][]dnswire.RR
	// chain is the NSEC3 chain (DenialNSEC3 only).
	chain *nsec3.Chain
	// nsecOrder is the canonical owner order (DenialNSEC only).
	nsecOrder []dnswire.Name
	// nsecRRs maps owner -> its NSEC record (DenialNSEC only).
	nsecRRs map[dnswire.Name]dnswire.RR
	// negTTL is the negative-answer TTL from the SOA minimum.
	negTTL uint32
}

// ErrNoSOA is returned when signing a zone without an apex SOA.
var ErrNoSOA = errors.New("zone: apex SOA required before signing")

// Sign signs the zone. The zone must contain an apex SOA and NS.
func (z *Zone) Sign(cfg SignConfig) (*Signed, error) {
	soa, ok := z.SOA()
	if !ok {
		return nil, ErrNoSOA
	}
	if cfg.Algorithm == 0 {
		cfg.Algorithm = dnswire.AlgECDSAP256SHA256
	}
	if cfg.NSEC3.Alg == 0 {
		cfg.NSEC3.Alg = dnswire.NSEC3HashSHA1
	}
	s := &Signed{
		Zone:   z,
		Config: cfg,
		KSK:    cfg.KSK,
		ZSK:    cfg.ZSK,
		rrsigs: make(map[dnswire.Name]map[dnswire.Type][]dnswire.RR),
		negTTL: soa.Minimum,
	}
	if cfg.Denial == DenialNone {
		// Unsigned serving: no keys, no signatures, no denial chain.
		s.names = z.AuthoritativeNames()
		return s, nil
	}
	var err error
	if s.KSK == nil {
		if s.KSK, err = dnssec.GenerateKey(cfg.Algorithm, true, cfg.Rand); err != nil {
			return nil, err
		}
	}
	if s.ZSK == nil {
		if s.ZSK, err = dnssec.GenerateKey(cfg.Algorithm, false, cfg.Rand); err != nil {
			return nil, err
		}
	}

	// Publish DNSKEYs and NSEC3PARAM at the apex before computing
	// bitmaps, so the denial chain reflects the signed zone.
	z.MustAdd(s.KSK.DNSKEYRR(z.Apex, z.TTL))
	z.MustAdd(s.ZSK.DNSKEYRR(z.Apex, z.TTL))
	if cfg.Denial == DenialNSEC3 {
		z.MustAdd(dnswire.RR{Name: z.Apex, Class: dnswire.ClassIN, TTL: 0, Data: dnswire.NSEC3PARAM{
			HashAlg:    cfg.NSEC3.Alg,
			Iterations: cfg.NSEC3.Iterations,
			Salt:       append([]byte(nil), cfg.NSEC3.Salt...),
		}})
	}

	s.names = z.AuthoritativeNames()
	s.addDenialTypesToBitmaps()

	if err := s.signRRsets(); err != nil {
		return nil, err
	}
	if cfg.Denial == DenialNSEC3 {
		err = s.buildNSEC3()
	} else {
		err = s.buildNSEC()
	}
	if err != nil {
		return nil, err
	}
	return s, nil
}

// window returns the RRSIG validity window, honoring ExpireAll.
func (s *Signed) window(denial bool) (uint32, uint32) {
	inc, exp := s.Config.Inception, s.Config.Expiration
	if s.Config.ExpireAll || (denial && s.Config.ExpireDenialSigs) {
		// A window entirely in the past relative to the configured one.
		return inc - 200000, inc - 100000
	}
	return inc, exp
}

// addDenialTypesToBitmaps extends each name's bitmap with RRSIG (for
// names owning signed RRsets) and NSEC in NSEC mode.
func (s *Signed) addDenialTypesToBitmaps() {
	for name, bitmap := range s.names {
		types := append([]dnswire.Type(nil), bitmap...)
		signedTypes := s.signableTypes(name, bitmap)
		if len(signedTypes) > 0 {
			types = append(types, dnswire.TypeRRSIG)
		}
		if s.Config.Denial == DenialNSEC {
			types = append(types, dnswire.TypeNSEC, dnswire.TypeRRSIG)
		}
		s.names[name] = dnswire.NewTypeBitmap(types...)
	}
}

// signableTypes returns the types at name whose RRsets get RRSIGs:
// everything authoritative except delegation NS (and except nothing at
// ENTs, which own no data).
func (s *Signed) signableTypes(name dnswire.Name, bitmap dnswire.TypeBitmap) []dnswire.Type {
	var out []dnswire.Type
	for _, t := range bitmap {
		if t == dnswire.TypeRRSIG || t == dnswire.TypeNSEC {
			continue
		}
		if s.Zone.IsDelegation(name) && t == dnswire.TypeNS {
			continue // delegation NS is not signed (RFC 4035 §2.2)
		}
		out = append(out, t)
	}
	return out
}

// signRRsets produces RRSIGs for every signable RRset. The DNSKEY
// RRset is signed by the KSK; everything else by the ZSK.
func (s *Signed) signRRsets() error {
	for name, bitmap := range s.names {
		for _, t := range s.signableTypes(name, bitmap) {
			rrs := s.Zone.Lookup(name, t)
			if len(rrs) == 0 {
				continue
			}
			key := s.ZSK
			if t == dnswire.TypeDNSKEY {
				key = s.KSK
			}
			inc, exp := s.window(false)
			sigRR, err := dnssec.SignRR(rrs, key, s.Zone.Apex, inc, exp)
			if err != nil {
				return fmt.Errorf("zone: signing %s/%s: %w", name, t, err)
			}
			s.addRRSIG(name, t, sigRR)
		}
	}
	return nil
}

func (s *Signed) addRRSIG(name dnswire.Name, covered dnswire.Type, sig dnswire.RR) {
	byType, ok := s.rrsigs[name]
	if !ok {
		byType = make(map[dnswire.Type][]dnswire.RR)
		s.rrsigs[name] = byType
	}
	byType[covered] = append(byType[covered], sig)
}

// RRSIGsFor returns the RRSIG records covering (name, type).
func (s *Signed) RRSIGsFor(name dnswire.Name, covered dnswire.Type) []dnswire.RR {
	return s.rrsigs[name][covered]
}

// buildNSEC3 constructs and signs the NSEC3 chain.
func (s *Signed) buildNSEC3() error {
	chainNames := make(map[dnswire.Name]dnswire.TypeBitmap, len(s.names))
	for name, bitmap := range s.names {
		if s.Config.OptOut && s.isInsecureDelegation(name) {
			continue // opt-out: insecure delegations own no NSEC3
		}
		chainNames[name] = bitmap
	}
	chain, err := nsec3.BuildChain(s.Zone.Apex, s.Config.NSEC3, chainNames, s.Config.OptOut, s.negTTL)
	if err != nil {
		return err
	}
	s.chain = chain
	// Sign every NSEC3 RR.
	inc, exp := s.window(true)
	for _, rec := range chain.Records {
		rr := chain.RRFor(rec, s.negTTL)
		sig, err := dnssec.SignRR([]dnswire.RR{rr}, s.ZSK, s.Zone.Apex, inc, exp)
		if err != nil {
			return err
		}
		s.addRRSIG(rr.Name, dnswire.TypeNSEC3, sig)
	}
	return nil
}

// isInsecureDelegation reports whether name is a delegation without DS.
func (s *Signed) isInsecureDelegation(name dnswire.Name) bool {
	return s.Zone.IsDelegation(name) && len(s.Zone.Lookup(name, dnswire.TypeDS)) == 0
}

// buildNSEC constructs and signs the plain NSEC chain.
func (s *Signed) buildNSEC() error {
	order := make([]dnswire.Name, 0, len(s.names))
	for n := range s.names {
		order = append(order, n)
	}
	sort.Slice(order, func(i, j int) bool {
		return dnswire.CanonicalCompare(order[i], order[j]) < 0
	})
	s.nsecOrder = order
	s.nsecRRs = make(map[dnswire.Name]dnswire.RR, len(order))
	inc, exp := s.window(true)
	for i, owner := range order {
		next := order[(i+1)%len(order)]
		rr := dnswire.RR{
			Name: owner, Class: dnswire.ClassIN, TTL: s.negTTL,
			Data: dnswire.NSEC{NextName: next, Types: s.names[owner]},
		}
		s.nsecRRs[owner] = rr
		sig, err := dnssec.SignRR([]dnswire.RR{rr}, s.ZSK, s.Zone.Apex, inc, exp)
		if err != nil {
			return err
		}
		s.addRRSIG(owner, dnswire.TypeNSEC, sig)
	}
	return nil
}

// Chain exposes the NSEC3 chain (nil in NSEC mode).
func (s *Signed) Chain() *nsec3.Chain { return s.chain }

// NSECRecord returns the NSEC RR at owner (NSEC mode only).
func (s *Signed) NSECRecord(owner dnswire.Name) (dnswire.RR, bool) {
	rr, ok := s.nsecRRs[owner]
	return rr, ok
}

// nsecCovering returns the NSEC record whose span covers qname.
func (s *Signed) nsecCovering(qname dnswire.Name) (dnswire.RR, bool) {
	n := len(s.nsecOrder)
	if n == 0 {
		return dnswire.RR{}, false
	}
	i := sort.Search(n, func(i int) bool {
		return dnswire.CanonicalCompare(s.nsecOrder[i], qname) > 0
	})
	// Predecessor owns the covering span; wrap to the last record.
	owner := s.nsecOrder[(i-1+n)%n]
	if owner == qname {
		return dnswire.RR{}, false
	}
	return s.nsecRRs[owner], true
}

// DSForChild computes the DS RRset a parent publishes for this signed
// zone's KSK (used to chain the simulated hierarchy together).
func (s *Signed) DSForChild() (dnswire.DS, error) {
	if s.KSK == nil {
		return dnswire.DS{}, errors.New("zone: unsigned zone has no KSK")
	}
	return dnssec.NewDS(s.Zone.Apex, s.KSK.DNSKEY(), dnswire.DigestSHA256)
}

// Exists reports whether an original name exists in the signed zone
// (including empty non-terminals).
func (s *Signed) Exists(name dnswire.Name) bool {
	_, ok := s.names[name]
	return ok
}

// AuthNames exposes the signed zone's authoritative name set.
func (s *Signed) AuthNames() map[dnswire.Name]dnswire.TypeBitmap { return s.names }

// NegativeTTL returns the negative-caching TTL (SOA minimum).
func (s *Signed) NegativeTTL() uint32 { return s.negTTL }
