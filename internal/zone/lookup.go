package zone

import (
	"fmt"

	"repro/internal/dnswire"
	"repro/internal/nsec3"
)

// AnswerKind classifies the outcome of a query against a signed zone.
type AnswerKind int

// Answer kinds.
const (
	KindSuccess    AnswerKind = iota // data exists at qname/qtype
	KindWildcard                     // data synthesized from a wildcard
	KindNODATA                       // name exists, type does not
	KindNXDOMAIN                     // name does not exist
	KindDelegation                   // referral to a child zone
	KindCNAME                        // alias present at qname
	KindNotInZone                    // qname outside this zone
)

// String returns the kind name.
func (k AnswerKind) String() string {
	switch k {
	case KindSuccess:
		return "SUCCESS"
	case KindWildcard:
		return "WILDCARD"
	case KindNODATA:
		return "NODATA"
	case KindNXDOMAIN:
		return "NXDOMAIN"
	case KindDelegation:
		return "DELEGATION"
	case KindCNAME:
		return "CNAME"
	}
	return "NOTINZONE"
}

// Answer is the evaluated response content for one query.
type Answer struct {
	Kind       AnswerKind
	RCode      dnswire.RCode
	Answer     []dnswire.RR
	Authority  []dnswire.RR
	Additional []dnswire.RR
}

// Evaluate answers (qname, qtype) against the signed zone, following
// RFC 1034 §4.3.2 adapted for DNSSEC (RFC 4035 §3.1) and NSEC3
// (RFC 5155 §7.2). When do is false, DNSSEC records (RRSIG, NSEC,
// NSEC3) are omitted, as for a query without the DO bit.
//
//repro:allocok answer synthesis walks the zone and builds RR sets per query today; the ROADMAP answer cache precompiles these at Materialize time
func (s *Signed) Evaluate(qname dnswire.Name, qtype dnswire.Type, do bool) (*Answer, error) {
	if !qname.IsSubdomainOf(s.Zone.Apex) {
		return &Answer{Kind: KindNotInZone, RCode: dnswire.RCodeRefused}, nil
	}

	// Delegation handling: a query at or below a zone cut is referred,
	// except a DS query exactly at the cut, which the parent answers.
	if cut, ok := s.Zone.DelegationPoint(qname); ok {
		if !(qname == cut && qtype == dnswire.TypeDS) {
			return s.referral(cut, do)
		}
	}

	if s.Exists(qname) {
		return s.answerExisting(qname, qname, qtype, do, false)
	}

	// Wildcard synthesis (RFC 4592).
	if w, ok := s.Zone.WildcardAt(qname); ok {
		return s.answerExisting(w, qname, qtype, do, true)
	}

	return s.nxdomain(qname, do)
}

// answerExisting answers from records at owner; when wildcard is true,
// owner is the "*" node and qname the synthesized name.
func (s *Signed) answerExisting(owner, qname dnswire.Name, qtype dnswire.Type, do, wildcard bool) (*Answer, error) {
	rrs := s.Zone.Lookup(owner, qtype)
	if len(rrs) == 0 {
		// CNAME redirection applies for any type but CNAME itself.
		if cn := s.Zone.Lookup(owner, dnswire.TypeCNAME); len(cn) > 0 && qtype != dnswire.TypeCNAME {
			a := &Answer{Kind: KindCNAME, RCode: dnswire.RCodeNoError}
			a.Answer = s.expand(cn, qname, wildcard)
			if do {
				a.Answer = append(a.Answer, s.expand(s.RRSIGsFor(owner, dnswire.TypeCNAME), qname, wildcard)...)
				if wildcard {
					if err := s.appendWildcardProof(a, qname); err != nil {
						return nil, err
					}
				}
			}
			return a, nil
		}
		return s.nodata(owner, qname, do, wildcard)
	}
	kind := KindSuccess
	if wildcard {
		kind = KindWildcard
	}
	a := &Answer{Kind: kind, RCode: dnswire.RCodeNoError}
	a.Answer = s.expand(rrs, qname, wildcard)
	if do {
		a.Answer = append(a.Answer, s.expand(s.RRSIGsFor(owner, qtype), qname, wildcard)...)
		if wildcard {
			if err := s.appendWildcardProof(a, qname); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

// expand rewrites the owner name of wildcard records to the query name.
func (s *Signed) expand(rrs []dnswire.RR, qname dnswire.Name, wildcard bool) []dnswire.RR {
	out := make([]dnswire.RR, len(rrs))
	copy(out, rrs)
	if wildcard {
		for i := range out {
			out[i].Name = qname
		}
	}
	return out
}

// appendWildcardProof attaches the denial record proving qname itself
// does not exist, which legitimizes the wildcard expansion.
func (s *Signed) appendWildcardProof(a *Answer, qname dnswire.Name) error {
	switch s.Config.Denial {
	case DenialNSEC3:
		proof, err := s.chain.ProveWildcard(qname, s.Exists)
		if err != nil {
			return err
		}
		s.appendNSEC3Proof(a, proof)
	default:
		if rr, ok := s.nsecCovering(qname); ok {
			a.Authority = append(a.Authority, rr)
			a.Authority = append(a.Authority, s.RRSIGsFor(rr.Name, dnswire.TypeNSEC)...)
		}
	}
	return nil
}

// nodata builds a NOERROR/empty-answer response with its proof.
func (s *Signed) nodata(owner, qname dnswire.Name, do, wildcard bool) (*Answer, error) {
	a := &Answer{Kind: KindNODATA, RCode: dnswire.RCodeNoError}
	s.appendSOA(a, do)
	if !do {
		return a, nil
	}
	switch s.Config.Denial {
	case DenialNSEC3:
		proof, err := s.chain.ProveNODATA(owner)
		if err != nil {
			if s.Config.OptOut && !wildcard {
				// Opt-out zones own no NSEC3 for insecure delegations:
				// deny DS with the closest-provable-encloser proof of
				// RFC 5155 §7.2.4 instead.
				if p2, err2 := s.proveOptOutNoDS(owner); err2 == nil {
					s.appendNSEC3Proof(a, p2)
					return a, nil
				}
			}
			if !wildcard {
				return nil, fmt.Errorf("zone: NODATA proof for %s: %w", owner, err)
			}
			// Wildcard NODATA (RFC 5155 §7.2.5): closest-encloser proof
			// plus the NSEC3 matching the wildcard.
			ceProof, err := s.chain.ProveNXDOMAIN(qname, s.Exists)
			if err != nil {
				return nil, err
			}
			s.appendNSEC3Proof(a, ceProof)
			proof, err = s.chain.ProveNODATA(owner)
			if err != nil {
				return nil, err
			}
		}
		s.appendNSEC3Proof(a, proof)
		if wildcard {
			ce, nc, err := nsec3.ClosestEncloser(qname, s.Zone.Apex, s.Exists)
			if err == nil {
				_ = ce
				if rec, ok, _ := s.chain.Cover(nc); ok {
					s.appendNSEC3Proof(a, nsec3.Proof{NextCloser: &rec})
				}
			}
		}
	default:
		if rr, ok := s.NSECRecord(owner); ok {
			a.Authority = append(a.Authority, rr)
			a.Authority = append(a.Authority, s.RRSIGsFor(owner, dnswire.TypeNSEC)...)
		}
	}
	return a, nil
}

// proveOptOutNoDS synthesizes the RFC 5155 §7.2.4 proof for an
// insecure delegation excluded from an opt-out chain: the NSEC3
// matching the closest provable encloser plus the opt-out span
// covering the next-closer name.
func (s *Signed) proveOptOutNoDS(owner dnswire.Name) (nsec3.Proof, error) {
	nextCloser := owner
	for cand := owner.Parent(); ; cand = cand.Parent() {
		if rec, ok, err := s.chain.Match(cand); err == nil && ok {
			var p nsec3.Proof
			p.ClosestEncloser = &rec
			if cov, ok, err := s.chain.Cover(nextCloser); err == nil && ok {
				p.NextCloser = &cov
				return p, nil
			}
			return nsec3.Proof{}, fmt.Errorf("zone: next closer %s not covered", nextCloser)
		}
		if cand == s.Zone.Apex || cand.IsRoot() {
			return nsec3.Proof{}, fmt.Errorf("zone: no provable encloser for %s", owner)
		}
		nextCloser = cand
	}
}

// nxdomain builds the NXDOMAIN response with the closest-encloser proof.
func (s *Signed) nxdomain(qname dnswire.Name, do bool) (*Answer, error) {
	a := &Answer{Kind: KindNXDOMAIN, RCode: dnswire.RCodeNXDomain}
	s.appendSOA(a, do)
	if !do {
		return a, nil
	}
	switch s.Config.Denial {
	case DenialNSEC3:
		proof, err := s.chain.ProveNXDOMAIN(qname, s.Exists)
		if err != nil {
			return nil, fmt.Errorf("zone: NXDOMAIN proof for %s: %w", qname, err)
		}
		s.appendNSEC3Proof(a, proof)
	default:
		if rr, ok := s.nsecCovering(qname); ok {
			a.Authority = append(a.Authority, rr)
			a.Authority = append(a.Authority, s.RRSIGsFor(rr.Name, dnswire.TypeNSEC)...)
		}
		// Prove the wildcard absent too (RFC 4035 §3.1.3.2).
		ce := qname.Parent()
		for !s.Exists(ce) && ce != s.Zone.Apex {
			ce = ce.Parent()
		}
		if rr, ok := s.nsecCovering(ce.Wildcard()); ok {
			already := false
			for _, have := range a.Authority {
				if have.Name == rr.Name && have.Type() == dnswire.TypeNSEC {
					already = true
					break
				}
			}
			if !already {
				a.Authority = append(a.Authority, rr)
				a.Authority = append(a.Authority, s.RRSIGsFor(rr.Name, dnswire.TypeNSEC)...)
			}
		}
	}
	return a, nil
}

// referral builds a delegation response for the zone cut.
func (s *Signed) referral(cut dnswire.Name, do bool) (*Answer, error) {
	a := &Answer{Kind: KindDelegation, RCode: dnswire.RCodeNoError}
	nsRRs := s.Zone.Lookup(cut, dnswire.TypeNS)
	a.Authority = append(a.Authority, nsRRs...)
	// Glue below the cut.
	for _, ns := range nsRRs {
		host := ns.Data.(dnswire.NS).Host
		if host.IsSubdomainOf(cut) {
			a.Additional = append(a.Additional, s.Zone.Lookup(host, dnswire.TypeA)...)
			a.Additional = append(a.Additional, s.Zone.Lookup(host, dnswire.TypeAAAA)...)
		}
	}
	if !do {
		return a, nil
	}
	if ds := s.Zone.Lookup(cut, dnswire.TypeDS); len(ds) > 0 {
		a.Authority = append(a.Authority, ds...)
		a.Authority = append(a.Authority, s.RRSIGsFor(cut, dnswire.TypeDS)...)
		return a, nil
	}
	// Insecure delegation: prove DS absence.
	switch s.Config.Denial {
	case DenialNSEC3:
		if s.Config.OptOut {
			// The cut owns no NSEC3; the covering record with Opt-Out
			// set proves the span may contain unsigned delegations
			// (RFC 5155 §7.2.4).
			if rec, ok, err := s.chain.Cover(cut); err == nil && ok {
				s.appendNSEC3Proof(a, nsec3.Proof{NextCloser: &rec})
			} else if rec, ok, err := s.chain.Match(cut); err == nil && ok {
				s.appendNSEC3Proof(a, nsec3.Proof{Matching: &rec})
			}
		} else {
			proof, err := s.chain.ProveNODATA(cut)
			if err != nil {
				return nil, err
			}
			s.appendNSEC3Proof(a, proof)
		}
	default:
		if rr, ok := s.NSECRecord(cut); ok {
			a.Authority = append(a.Authority, rr)
			a.Authority = append(a.Authority, s.RRSIGsFor(cut, dnswire.TypeNSEC)...)
		}
	}
	return a, nil
}

// appendSOA attaches the apex SOA (and its RRSIG when do) to the
// authority section, as negative answers require (RFC 2308 §3).
func (s *Signed) appendSOA(a *Answer, do bool) {
	soaRRs := s.Zone.Lookup(s.Zone.Apex, dnswire.TypeSOA)
	for _, rr := range soaRRs {
		rr.TTL = min(rr.TTL, s.negTTL)
		a.Authority = append(a.Authority, rr)
	}
	if do {
		a.Authority = append(a.Authority, s.RRSIGsFor(s.Zone.Apex, dnswire.TypeSOA)...)
	}
}

// appendNSEC3Proof attaches the proof records and their RRSIGs to the
// authority section, deduplicating repeated NSEC3 owners.
func (s *Signed) appendNSEC3Proof(a *Answer, proof nsec3.Proof) {
	for _, rec := range proof.Records() {
		rr := s.chain.RRFor(rec, s.negTTL)
		dup := false
		for _, have := range a.Authority {
			if have.Name == rr.Name && have.Type() == dnswire.TypeNSEC3 {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		a.Authority = append(a.Authority, rr)
		a.Authority = append(a.Authority, s.RRSIGsFor(rr.Name, dnswire.TypeNSEC3)...)
	}
}
