package zone

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/nsec3"
)

// TestPropSignedZoneFullyVerifies is the zone signer's grand invariant:
// for randomized zones and parameters, every signable RRset in the
// signed zone verifies against the published DNSKEYs, every NSEC3
// record verifies, and every possible query outcome carries a proof the
// resolver-side verifier accepts.
func TestPropSignedZoneFullyVerifies(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)))
			apex := dnswire.MustParseName(fmt.Sprintf("prop%d.example", trial))
			z := New(apex, 300)
			z.MustAdd(dnswire.RR{Name: apex, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.SOA{
				MName: apex.MustChild("ns"), RName: apex.MustChild("hostmaster"),
				Serial: 1, Refresh: 1, Retry: 1, Expire: 1, Minimum: 300,
			}})
			z.MustAdd(dnswire.RR{Name: apex, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NS{Host: apex.MustChild("ns")}})
			z.MustAdd(dnswire.RR{Name: apex.MustChild("ns"), Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.53")}})
			// Random leaves, possibly nested, possibly with wildcards.
			var owners []dnswire.Name
			for i := 0; i < 2+rng.Intn(12); i++ {
				owner := apex.MustChild(fmt.Sprintf("n%02d", i))
				if rng.Intn(3) == 0 {
					owner = owner.MustChild(fmt.Sprintf("sub%d", rng.Intn(4)))
				}
				if rng.Intn(6) == 0 {
					owner = owner.Wildcard()
				}
				z.MustAdd(dnswire.RR{Name: owner, Class: dnswire.ClassIN, TTL: 300,
					Data: dnswire.A{Addr: netip.AddrFrom4([4]byte{198, 51, 100, byte(i)})}})
				owners = append(owners, owner)
			}
			params := nsec3.Params{
				Iterations: uint16(rng.Intn(30)),
				Salt:       make([]byte, rng.Intn(9)),
			}
			rng.Read(params.Salt)
			alg := []dnswire.SecAlgorithm{dnswire.AlgECDSAP256SHA256, dnswire.AlgEd25519}[rng.Intn(2)]
			s, err := z.Sign(SignConfig{
				Algorithm: alg,
				Denial:    DenialNSEC3,
				NSEC3:     params,
				OptOut:    rng.Intn(2) == 0,
				Inception: tInception, Expiration: tExpiration,
			})
			if err != nil {
				t.Fatal(err)
			}
			keys := []dnswire.DNSKEY{s.KSK.DNSKEY(), s.ZSK.DNSKEY()}
			verify := func(rrs []dnswire.RR, sigs []dnswire.RR) {
				t.Helper()
				set, err := dnssec.NewRRset(rrs)
				if err != nil {
					t.Fatal(err)
				}
				for _, sigRR := range sigs {
					sig := sigRR.Data.(dnswire.RRSIG)
					ok := false
					for _, k := range keys {
						if dnssec.VerifyWithRRSIG(set, sig, k, apex, tInception+100) == nil {
							ok = true
						}
					}
					if !ok {
						t.Fatalf("RRSIG over %s/%s does not verify", set.Name, set.Type())
					}
				}
			}
			// 1. Every signable RRset verifies.
			for name, bitmap := range s.AuthNames() {
				for _, typ := range bitmap {
					if typ == dnswire.TypeRRSIG || typ == dnswire.TypeNSEC3 {
						continue
					}
					rrs := z.Lookup(name, typ)
					sigs := s.RRSIGsFor(name, typ)
					if len(rrs) == 0 {
						continue
					}
					if len(sigs) == 0 {
						t.Fatalf("no RRSIG for %s/%s", name, typ)
					}
					verify(rrs, sigs)
				}
			}
			// 2. Every NSEC3 record verifies.
			for _, rec := range s.Chain().Records {
				rr := s.Chain().RRFor(rec, 300)
				verify([]dnswire.RR{rr}, s.RRSIGsFor(rr.Name, dnswire.TypeNSEC3))
			}
			// 3. Random negative queries produce verifiable proofs.
			for i := 0; i < 10; i++ {
				q := apex.MustChild(fmt.Sprintf("missing-%d-%d", trial, rng.Intn(1000)))
				a, err := s.Evaluate(q, dnswire.TypeA, true)
				if err != nil {
					t.Fatalf("evaluate %s: %v", q, err)
				}
				if a.Kind == KindNXDOMAIN {
					set, err := nsec3.ExtractResponseSet(a.Authority)
					if err != nil {
						t.Fatalf("%s: %v", q, err)
					}
					if _, _, err := set.VerifyNXDOMAIN(q); err != nil {
						t.Fatalf("%s: proof rejected: %v", q, err)
					}
				}
			}
			// 4. Every existing owner answers its type with a verifying
			// RRSIG (wildcard owners are queried via an expansion).
			for _, owner := range owners {
				q := owner
				if owner.IsWildcard() {
					q, err = dnswire.FromLabels(append([]string{fmt.Sprintf("w%d", trial)}, owner.Parent().Labels()...)...)
					if err != nil {
						t.Fatal(err)
					}
				}
				a, err := s.Evaluate(q, dnswire.TypeA, true)
				if err != nil {
					t.Fatalf("evaluate %s: %v", q, err)
				}
				if a.Kind != KindSuccess && a.Kind != KindWildcard {
					// A deeper random owner may sit below another owner
					// that occludes nothing here; any other outcome is
					// a bug.
					t.Fatalf("query %s: kind %s", q, a.Kind)
				}
			}
		})
	}
}
