package zone

import (
	"sort"

	"repro/internal/dnswire"
)

// AllRecords returns the complete signed zone contents in AXFR order:
// the apex SOA first, then every data record, every RRSIG, and the
// denial chain (NSEC or NSEC3), and the apex SOA again last — the
// transfer format of RFC 5936 §2.2.
func (s *Signed) AllRecords() []dnswire.RR {
	var out []dnswire.RR
	soaRRs := s.Zone.Lookup(s.Zone.Apex, dnswire.TypeSOA)
	out = append(out, soaRRs...)

	// Data records (excluding the SOA already emitted), canonical order.
	for _, rr := range s.Zone.Records() {
		if rr.Type() == dnswire.TypeSOA && rr.Name == s.Zone.Apex {
			continue
		}
		out = append(out, rr)
	}

	// RRSIGs, grouped per owner/type in a stable order.
	owners := make([]dnswire.Name, 0, len(s.rrsigs))
	for owner := range s.rrsigs {
		owners = append(owners, owner)
	}
	sort.Slice(owners, func(i, j int) bool {
		return dnswire.CanonicalCompare(owners[i], owners[j]) < 0
	})
	for _, owner := range owners {
		byType := s.rrsigs[owner]
		types := make([]dnswire.Type, 0, len(byType))
		for t := range byType {
			types = append(types, t)
		}
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		for _, t := range types {
			out = append(out, byType[t]...)
		}
	}

	// Denial chain.
	switch s.Config.Denial {
	case DenialNSEC3:
		if s.chain != nil {
			for _, rec := range s.chain.Records {
				out = append(out, s.chain.RRFor(rec, s.negTTL))
			}
		}
	case DenialNSEC:
		for _, owner := range s.nsecOrder {
			if rr, ok := s.nsecRRs[owner]; ok {
				out = append(out, rr)
			}
		}
	}

	// Closing SOA.
	out = append(out, soaRRs...)
	return out
}

// TransferPolicy controls who may AXFR a zone from the authoritative
// server. The paper's §4.1 relied on ccTLDs that allow open transfers
// (.ch, .nu, .se, .li); most zones refuse.
type TransferPolicy int

// Transfer policies.
const (
	TransferRefused TransferPolicy = iota // default: REFUSED
	TransferOpen                          // anyone may transfer
)
