// Package atlas simulates the RIPE Atlas measurement platform the
// paper used to reach closed resolvers (§4.2): a fleet of vantage-point
// probes, each with a local resolver unreachable from outside its
// network, a scheduler enforcing the platform's concurrency limits, and
// the platform's reporting quirk that Extended DNS Error data is not
// exposed to the experimenter ("We have not analyzed closed resolvers,
// since RIPE Atlas does not supply the EDE data", §5.2).
package atlas

import (
	"context"
	"fmt"
	"net/netip"
	"sync"

	"repro/internal/netsim"
	"repro/internal/testbed"
)

// Probe is one vantage point with its configured local resolver.
type Probe struct {
	ID       int
	Resolver netip.AddrPort
	// IPv6 marks probes whose local resolver speaks IPv6.
	IPv6 bool
}

// Platform schedules measurements over vantage-point probes. It is
// stateless between calls: callers hand each Measure call the probe
// batch for the shard being executed, so the fleet never has to be
// accumulated in memory.
type Platform struct {
	// Exchanger carries probe→resolver traffic.
	Exchanger netsim.Exchanger
	// MaxConcurrent caps simultaneous probe measurements, as the real
	// platform does. Zero means 100.
	MaxConcurrent int
}

// MeasurementResult pairs a probe with its resolver's transcript.
type MeasurementResult struct {
	Probe      Probe
	Transcript *testbed.Transcript
	Err        error
}

// Measure runs the full rfc9276 probe sequence from each vantage point
// in probes against its local resolver, under the platform's
// concurrency limit. Results are returned in probe order. EDE options
// are stripped from every observation, mirroring the real platform's
// reporting.
func (p *Platform) Measure(ctx context.Context, probes []Probe, uniquePrefix string) []MeasurementResult {
	limit := p.MaxConcurrent
	if limit <= 0 {
		limit = 100
	}
	sem := make(chan struct{}, limit)
	results := make([]MeasurementResult, len(probes))
	var wg sync.WaitGroup
	for i, probe := range probes {
		wg.Add(1)
		go func(i int, probe Probe) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				results[i] = MeasurementResult{Probe: probe, Err: ctx.Err()}
				return
			}
			defer func() { <-sem }()
			unique := fmt.Sprintf("%s-atlas-%d", uniquePrefix, probe.ID)
			tr, err := testbed.ProbeResolver(ctx, p.Exchanger, probe.Resolver, unique)
			if tr != nil {
				stripEDE(tr)
			}
			results[i] = MeasurementResult{Probe: probe, Transcript: tr, Err: err}
		}(i, probe)
	}
	wg.Wait()
	return results
}

// stripEDE removes Extended DNS Error data from a transcript, matching
// what the experimenter actually receives from the platform.
func stripEDE(tr *testbed.Transcript) {
	for i := range tr.Observations {
		tr.Observations[i].EDE = nil
	}
}
