// Package atlas simulates the RIPE Atlas measurement platform the
// paper used to reach closed resolvers (§4.2): a fleet of vantage-point
// probes, each with a local resolver unreachable from outside its
// network, a scheduler enforcing the platform's concurrency limits, and
// the platform's reporting quirk that Extended DNS Error data is not
// exposed to the experimenter ("We have not analyzed closed resolvers,
// since RIPE Atlas does not supply the EDE data", §5.2).
package atlas

import (
	"context"
	"fmt"
	"net/netip"
	"sync"

	"repro/internal/netsim"
	"repro/internal/testbed"
)

// Probe is one vantage point with its configured local resolver.
type Probe struct {
	ID       int
	Resolver netip.AddrPort
	// IPv6 marks probes whose local resolver speaks IPv6.
	IPv6 bool
}

// Platform schedules measurements over a probe fleet.
type Platform struct {
	// Exchanger carries probe→resolver traffic.
	Exchanger netsim.Exchanger
	// MaxConcurrent caps simultaneous probe measurements, as the real
	// platform does. Zero means 100.
	MaxConcurrent int

	mu     sync.Mutex
	probes []Probe
}

// AddProbe registers a vantage point.
func (p *Platform) AddProbe(probe Probe) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.probes = append(p.probes, probe)
}

// Probes returns a snapshot of the fleet.
func (p *Platform) Probes() []Probe {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Probe, len(p.probes))
	copy(out, p.probes)
	return out
}

// MeasurementResult pairs a probe with its resolver's transcript.
type MeasurementResult struct {
	Probe      Probe
	Transcript *testbed.Transcript
	Err        error
}

// MeasureTestbed runs the full rfc9276 probe sequence from every
// vantage point against its local resolver, under the platform's
// concurrency limit. EDE options are stripped from every observation,
// mirroring the real platform's reporting.
func (p *Platform) MeasureTestbed(ctx context.Context, uniquePrefix string) []MeasurementResult {
	probes := p.Probes()
	limit := p.MaxConcurrent
	if limit <= 0 {
		limit = 100
	}
	sem := make(chan struct{}, limit)
	results := make([]MeasurementResult, len(probes))
	var wg sync.WaitGroup
	for i, probe := range probes {
		wg.Add(1)
		go func(i int, probe Probe) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				results[i] = MeasurementResult{Probe: probe, Err: ctx.Err()}
				return
			}
			defer func() { <-sem }()
			unique := fmt.Sprintf("%s-atlas-%d", uniquePrefix, probe.ID)
			tr, err := testbed.ProbeResolver(ctx, p.Exchanger, probe.Resolver, unique)
			if tr != nil {
				stripEDE(tr)
			}
			results[i] = MeasurementResult{Probe: probe, Transcript: tr, Err: err}
		}(i, probe)
	}
	wg.Wait()
	return results
}

// stripEDE removes Extended DNS Error data from a transcript, matching
// what the experimenter actually receives from the platform.
func stripEDE(tr *testbed.Transcript) {
	for i := range tr.Observations {
		tr.Observations[i].EDE = nil
	}
}
