package atlas

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"repro/internal/compliance"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/resolver"
	"repro/internal/respop"
	"repro/internal/testbed"
	"repro/internal/zone"
)

func buildWorldWithResolvers(t testing.TB, n int) (*testbed.Hierarchy, []*respop.Instance) {
	t.Helper()
	b := testbed.NewBuilder(1709251200, 1717200000)
	b.AddZone(testbed.ZoneSpec{
		Apex:   dnswire.Root,
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC},
		Server: netsim.Addr4(198, 41, 0, 4),
	})
	b.AddZone(testbed.ZoneSpec{
		Apex:   dnswire.MustParseName("com"),
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC3, OptOut: true},
		Server: netsim.Addr4(192, 5, 6, 30),
	})
	testbed.InstallTestbed(b, netsim.Addr4(203, 0, 113, 10), netsim.Addr6(0x10))
	h, err := b.Build(netsim.NewNetwork(8))
	if err != nil {
		t.Fatal(err)
	}
	planner, err := respop.NewPlanner(respop.DeployConfig{
		Counts: map[respop.Quadrant]int{respop.ClosedIPv4: n},
		Seed:   8,
		Now:    func() uint32 { return 1712000000 },
	})
	if err != nil {
		t.Fatal(err)
	}
	instances, err := respop.DeployShard(h, planner, planner.Plan(1)[0])
	if err != nil {
		t.Fatal(err)
	}
	return h, instances
}

func probesFor(instances []*respop.Instance) []Probe {
	probes := make([]Probe, len(instances))
	for i, inst := range instances {
		probes[i] = Probe{ID: i + 1, Resolver: inst.Addr}
	}
	return probes
}

func TestMeasureStripsEDE(t *testing.T) {
	h, instances := buildWorldWithResolvers(t, 15)
	p := &Platform{Exchanger: h.Net, MaxConcurrent: 4}
	results := p.Measure(context.Background(), probesFor(instances), "t1")
	if len(results) != 15 {
		t.Fatalf("results = %d", len(results))
	}
	validators := 0
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("probe %d: %v", r.Probe.ID, r.Err)
		}
		for _, o := range r.Transcript.Observations {
			if len(o.EDE) != 0 {
				t.Fatalf("probe %d: EDE leaked through Atlas (%v)", r.Probe.ID, o.EDE)
			}
		}
		c := compliance.ClassifyResolver(r.Transcript)
		if c.IsValidator {
			validators++
		}
		if c.SupportsEDE() {
			t.Fatal("classification saw EDE through Atlas")
		}
	}
	if validators == 0 {
		t.Fatal("no validators among closed resolvers")
	}
}

// TestMeasureResultsInProbeOrder pins the ordering contract the
// streaming study depends on: results[i] always belongs to probes[i],
// regardless of goroutine completion order.
func TestMeasureResultsInProbeOrder(t *testing.T) {
	h, instances := buildWorldWithResolvers(t, 9)
	p := &Platform{Exchanger: h.Net, MaxConcurrent: 3}
	probes := probesFor(instances)
	results := p.Measure(context.Background(), probes, "ord")
	for i, r := range results {
		if r.Probe.ID != probes[i].ID {
			t.Fatalf("result %d carries probe %d", i, r.Probe.ID)
		}
	}
}

func TestMeasurementUniqueLabelsPerProbe(t *testing.T) {
	h, instances := buildWorldWithResolvers(t, 3)
	p := &Platform{Exchanger: h.Net}
	results := p.Measure(context.Background(), probesFor(instances), "u")
	seen := map[string]bool{}
	for _, r := range results {
		if seen[r.Transcript.Unique] {
			t.Fatalf("duplicate unique label %s", r.Transcript.Unique)
		}
		seen[r.Transcript.Unique] = true
	}
}

func TestPlatformUnreachableResolver(t *testing.T) {
	h, _ := buildWorldWithResolvers(t, 1)
	p := &Platform{Exchanger: h.Net}
	results := p.Measure(context.Background(),
		[]Probe{{ID: 99, Resolver: netsim.Addr4(10, 99, 99, 99)}}, "x")
	// ProbeResolver records per-observation errors rather than failing
	// outright; the transcript exists with errored observations.
	tr := results[0].Transcript
	if tr == nil {
		t.Fatal("no transcript")
	}
	for _, o := range tr.Observations {
		if o.Err == nil {
			t.Fatal("unreachable resolver produced an answer")
		}
	}
	c := compliance.ClassifyResolver(tr)
	if c.IsValidator {
		t.Fatal("unreachable resolver classified as validator")
	}
	_ = resolver.NoLimit // keep the import for clarity of what's deployed
}

// blockingExchanger parks every exchange until its context dies — the
// worst-case platform backend for shutdown behavior.
type blockingExchanger struct{}

func (blockingExchanger) Exchange(ctx context.Context, _ netip.AddrPort, _ *dnswire.Message) (*dnswire.Message, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestMeasureCancel pins the fix for the goleak finding in the measure
// path: a probe goroutine waiting for a semaphore slot must also watch
// ctx, so cancellation drains the pool instead of leaving goroutines
// parked on the send forever.
func TestMeasureCancel(t *testing.T) {
	p := &Platform{Exchanger: blockingExchanger{}, MaxConcurrent: 1}
	probes := make([]Probe, 8)
	for i := range probes {
		probes[i] = Probe{ID: i + 1, Resolver: netsim.Addr4(192, 0, 2, byte(i+1))}
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(20*time.Millisecond, cancel)
	done := make(chan []MeasurementResult, 1)
	go func() { done <- p.Measure(ctx, probes, "cancel") }()
	select {
	case results := <-done:
		if len(results) != 8 {
			t.Fatalf("results = %d, want 8", len(results))
		}
		for i, r := range results {
			// Every goroutine must have run to completion and filled
			// its slot, whether it probed (transcript, possibly with
			// per-probe errors folded in) or bailed on cancellation.
			if r.Probe.ID == 0 {
				t.Errorf("result %d: slot never filled", i)
			}
			if r.Err == nil && r.Transcript == nil {
				t.Errorf("probe %d: neither error nor transcript", r.Probe.ID)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Measure did not return after cancellation")
	}
}
