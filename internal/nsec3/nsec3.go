// Package nsec3 implements RFC 5155 hashed authenticated denial of
// existence: the iterated salted SHA-1 owner-name hash, Base32hex owner
// labels, NSEC3 chain construction over a zone's names, and synthesis
// and verification of the three proof shapes (NXDOMAIN via closest
// encloser, NODATA, and wildcard expansion).
//
// The per-zone parameters — hash algorithm, additional iterations, and
// salt — are exactly the knobs whose real-world settings the paper
// "Zeros Are Heroes" measures, and which RFC 9276 constrains (0
// additional iterations, empty salt).
package nsec3

import (
	"bytes"
	"crypto/sha1"
	"encoding/base32"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dnswire"
)

// HashLen is the SHA-1 output length: every NSEC3 hash field is 20 octets.
const HashLen = sha1.Size

// MaxSaltLen is the wire-format limit on salt length (one-octet length).
const MaxSaltLen = 255

// RFC5155MaxIterations is the iteration cap RFC 5155 §10.3 imposed for
// the largest key sizes; the it-2501 testbed subdomain exceeds it.
const RFC5155MaxIterations = 2500

// Params are the per-zone NSEC3 hash parameters (RFC 5155 §3.1.1–3.1.5,
// §4.1). Iterations counts *additional* applications of the hash beyond
// the first, matching the protocol field and the paper's terminology.
type Params struct {
	Alg        dnswire.NSEC3HashAlg
	Iterations uint16
	Salt       []byte
}

// RFC9276Compliant reports whether the parameters satisfy the two
// mandatory knob settings of RFC 9276: zero additional iterations
// (Item 2, MUST) and an empty salt (Item 3, SHOULD NOT use a salt).
func (p Params) RFC9276Compliant() bool {
	return p.Iterations == 0 && len(p.Salt) == 0
}

// String renders the parameters like the NSEC3PARAM presentation form.
func (p Params) String() string {
	salt := "-"
	if len(p.Salt) > 0 {
		salt = fmt.Sprintf("%X", p.Salt)
	}
	return fmt.Sprintf("%d 0 %d %s", uint8(p.Alg), p.Iterations, salt)
}

// ErrUnknownAlg is returned for any hash algorithm other than SHA-1,
// the only value IANA ever assigned.
var ErrUnknownAlg = errors.New("nsec3: unknown hash algorithm")

// Hash computes the iterated salted hash of name (RFC 5155 §5):
//
//	IH(salt, x, 0) = H(x || salt)
//	IH(salt, x, k) = H(IH(salt, x, k-1) || salt)
//
// applied to the canonical (lowercase, uncompressed) wire form of name,
// with k = p.Iterations. The per-iteration rehash over a 20-octet
// digest plus salt is exactly the CPU cost CVE-2023-50868 weaponizes.
//
//repro:allocok convenience wrapper: the one make is the returned hash; zero-allocation callers use AppendHash with a reused dst
func Hash(name dnswire.Name, p Params) ([]byte, error) {
	out := make([]byte, 0, HashLen)
	return AppendHash(out, name, p)
}

// AppendHash appends the 20-octet iterated salted hash of name to dst
// and returns the extended slice. All intermediate state lives in a
// stack scratch buffer, so with a dst of sufficient capacity the call
// performs zero heap allocations — this is the form the denial-proof
// serving path uses per query.
//
//repro:hotpath every NSEC3 denial proof hashes the query name; negative answers at line rate must not allocate per hash
func AppendHash(dst []byte, name dnswire.Name, p Params) ([]byte, error) {
	if p.Alg != dnswire.NSEC3HashSHA1 {
		return nil, ErrUnknownAlg
	}
	if len(p.Salt) > MaxSaltLen {
		// A salt beyond the one-octet wire limit cannot appear in a
		// valid NSEC3PARAM; accept it anyway (robustness principle) on
		// a heap-allocating cold path.
		return appendHashBigSalt(dst, name, p)
	}
	// Big enough for wire-form name + salt (first round) and for
	// digest + salt (every additional iteration).
	var scratch [dnswire.MaxNameWireLen + MaxSaltLen]byte
	buf := scratch[:0]
	buf = name.AppendWire(buf)
	buf = append(buf, p.Salt...)
	digest := sha1.Sum(buf)
	for i := uint16(0); i < p.Iterations; i++ {
		buf = append(buf[:0], digest[:]...)
		buf = append(buf, p.Salt...)
		digest = sha1.Sum(buf)
	}
	return append(dst, digest[:]...), nil
}

// appendHashBigSalt is AppendHash for salts too long for the stack
// scratch buffer.
//
//repro:allocok oversized salts cannot occur in a valid NSEC3PARAM; this robustness path is never on the serving side
func appendHashBigSalt(dst []byte, name dnswire.Name, p Params) ([]byte, error) {
	buf := make([]byte, 0, name.WireLen()+len(p.Salt))
	buf = name.AppendWire(buf)
	buf = append(buf, p.Salt...)
	digest := sha1.Sum(buf)
	iter := make([]byte, 0, HashLen+len(p.Salt))
	for i := uint16(0); i < p.Iterations; i++ {
		iter = append(iter[:0], digest[:]...)
		iter = append(iter, p.Salt...)
		digest = sha1.Sum(iter)
	}
	return append(dst, digest[:]...), nil
}

// base32Hex is unpadded Base32 with the "extended hex" alphabet
// (RFC 5155 §1.3), the encoding of NSEC3 owner labels.
var base32Hex = base32.HexEncoding.WithPadding(base32.NoPadding)

// EncodeHash renders a raw hash as the lowercase Base32hex owner label.
func EncodeHash(h []byte) string {
	return strings.ToLower(base32Hex.EncodeToString(h))
}

// DecodeHash parses a Base32hex owner label back to the raw hash.
func DecodeHash(label string) ([]byte, error) {
	return base32Hex.DecodeString(strings.ToUpper(label))
}

// OwnerName returns the NSEC3 owner name for the hash of name in zone:
// base32hex(hash) prepended to the zone apex.
func OwnerName(name, zone dnswire.Name, p Params) (dnswire.Name, error) {
	h, err := Hash(name, p)
	if err != nil {
		return "", err
	}
	return zone.Child(EncodeHash(h))
}

// HashFromOwner extracts the raw hash encoded in an NSEC3 RR's owner
// name (its leftmost label).
func HashFromOwner(owner dnswire.Name) ([]byte, error) {
	labels := owner.Labels()
	if len(labels) == 0 {
		return nil, fmt.Errorf("nsec3: owner name %q has no hash label", owner)
	}
	h, err := DecodeHash(labels[0])
	if err != nil {
		return nil, fmt.Errorf("nsec3: owner label %q: %w", labels[0], err)
	}
	if len(h) != HashLen {
		return nil, fmt.Errorf("nsec3: owner hash is %d octets, want %d", len(h), HashLen)
	}
	return h, nil
}

// Covers reports whether the circular span (ownerHash, nextHash)
// strictly contains h (RFC 5155 §3.1.7 semantics). The last NSEC3 in a
// chain wraps: its next hash is the first owner hash, and its span
// covers everything greater than the owner or smaller than the next.
func Covers(ownerHash, nextHash, h []byte) bool {
	oc := bytes.Compare(ownerHash, h)
	nc := bytes.Compare(h, nextHash)
	if bytes.Compare(ownerHash, nextHash) < 0 {
		return oc < 0 && nc < 0
	}
	// Wrapped span (or single-record chain where owner == next,
	// which covers the whole space except the owner itself).
	return oc < 0 || nc < 0
}

// Record pairs a hashed owner with its NSEC3 payload inside one zone's
// chain.
type Record struct {
	OwnerHash []byte // 20 raw octets decoded from the owner label
	RR        dnswire.NSEC3
}

// Chain is a complete NSEC3 chain for one zone, sorted by owner hash.
// It can answer match/cover queries and synthesize denial proofs.
type Chain struct {
	Zone    dnswire.Name
	Params  Params
	Records []Record // sorted ascending by OwnerHash
}

// ErrEmptyChain is returned when proof synthesis is attempted on a
// chain with no records.
var ErrEmptyChain = errors.New("nsec3: empty chain")

// BuildChain constructs the NSEC3 chain for the given original owner
// names and their type bitmaps. names maps each original name in the
// zone (apex, delegations, leaf owners, empty non-terminals) to the
// types present at it. optOut sets the Opt-Out flag on every record,
// and ttl is the NSEC3 TTL (conventionally the SOA minimum).
//
// Hashing each owner once and sorting is the memoized strategy
// benchmarked against naive per-proof hashing in the ablation benches.
func BuildChain(zone dnswire.Name, p Params, names map[dnswire.Name]dnswire.TypeBitmap, optOut bool, ttl uint32) (*Chain, error) {
	if len(names) == 0 {
		return nil, ErrEmptyChain
	}
	c := &Chain{Zone: zone, Params: p, Records: make([]Record, 0, len(names))}
	var flags uint8
	if optOut {
		flags |= dnswire.NSEC3FlagOptOut
	}
	for name, types := range names {
		h, err := Hash(name, p)
		if err != nil {
			return nil, err
		}
		c.Records = append(c.Records, Record{
			OwnerHash: h,
			RR: dnswire.NSEC3{
				HashAlg:    p.Alg,
				Flags:      flags,
				Iterations: p.Iterations,
				Salt:       append([]byte(nil), p.Salt...),
				Types:      types,
			},
		})
	}
	sort.Slice(c.Records, func(i, j int) bool {
		return bytes.Compare(c.Records[i].OwnerHash, c.Records[j].OwnerHash) < 0
	})
	// Reject hash collisions between distinct owners: the chain would
	// be ambiguous (astronomically unlikely with SHA-1, but data from
	// a parser could be adversarial).
	for i := 1; i < len(c.Records); i++ {
		if bytes.Equal(c.Records[i-1].OwnerHash, c.Records[i].OwnerHash) {
			return nil, fmt.Errorf("nsec3: hash collision in zone %s", zone)
		}
	}
	// Link next-hashed-owner pointers circularly.
	for i := range c.Records {
		next := c.Records[(i+1)%len(c.Records)].OwnerHash
		c.Records[i].RR.NextHashedOwner = append([]byte(nil), next...)
	}
	_ = ttl // TTL applies when materializing RRs; kept for signature clarity.
	return c, nil
}

// find returns the index of the record whose owner hash matches h
// exactly (match=true), or the index of the record whose span covers h
// (match=false).
func (c *Chain) find(h []byte) (idx int, match bool) {
	n := len(c.Records)
	i := sort.Search(n, func(i int) bool {
		return bytes.Compare(c.Records[i].OwnerHash, h) >= 0
	})
	if i < n && bytes.Equal(c.Records[i].OwnerHash, h) {
		return i, true
	}
	// Predecessor covers h; index -1 wraps to the last record.
	return (i - 1 + n) % n, false
}

// Match returns the record whose owner hash is exactly the hash of
// name, if any.
func (c *Chain) Match(name dnswire.Name) (Record, bool, error) {
	if len(c.Records) == 0 {
		return Record{}, false, ErrEmptyChain
	}
	var hb [HashLen]byte
	h, err := AppendHash(hb[:0], name, c.Params)
	if err != nil {
		return Record{}, false, err
	}
	i, ok := c.find(h)
	if !ok {
		return Record{}, false, nil
	}
	return c.Records[i], true, nil
}

// Cover returns the record whose span covers the hash of name. When the
// hash matches a record exactly there is no covering record and ok is
// false.
func (c *Chain) Cover(name dnswire.Name) (Record, bool, error) {
	if len(c.Records) == 0 {
		return Record{}, false, ErrEmptyChain
	}
	var hb [HashLen]byte
	h, err := AppendHash(hb[:0], name, c.Params)
	if err != nil {
		return Record{}, false, err
	}
	i, match := c.find(h)
	if match {
		return Record{}, false, nil
	}
	return c.Records[i], true, nil
}

// RRFor materializes the wire RR for record r with the given TTL.
func (c *Chain) RRFor(r Record, ttl uint32) dnswire.RR {
	owner, err := c.Zone.Child(EncodeHash(r.OwnerHash))
	if err != nil {
		// A base32hex label is ≤32 chars of [0-9a-v]; only a zone name
		// near the 255-octet limit can fail, which BuildChain callers
		// never construct.
		panic(err)
	}
	return dnswire.RR{Name: owner, Class: dnswire.ClassIN, TTL: ttl, Data: r.RR}
}
