package nsec3

import (
	"testing"

	"repro/internal/dnswire"
)

// TestAppendHashAllocFree pins the denial-proof hot path: hashing a
// query name into a caller-provided buffer must not allocate, at any
// realistic iteration count. The //repro:hotpath annotation on
// AppendHash is enforced statically by hotpathalloc; this test is the
// dynamic half of the same contract.
func TestAppendHashAllocFree(t *testing.T) {
	name := dnswire.MustParseName("www.example.org.")
	p := Params{Alg: dnswire.NSEC3HashSHA1, Iterations: 10, Salt: []byte{0xab, 0xcd}}
	dst := make([]byte, 0, HashLen)
	if n := testing.AllocsPerRun(100, func() {
		var err error
		dst, err = AppendHash(dst[:0], name, p)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("AppendHash into spare capacity allocates %.1f times per run, want 0", n)
	}
}

// hashSink keeps Hash's result live so escape analysis cannot
// stack-allocate it and the measurement sees the real caller cost.
var hashSink []byte

// TestHashSingleAlloc pins the convenience wrapper's floor: exactly
// one allocation, the returned hash itself.
func TestHashSingleAlloc(t *testing.T) {
	name := dnswire.MustParseName("www.example.org.")
	p := Params{Alg: dnswire.NSEC3HashSHA1, Iterations: 10, Salt: []byte{0xab, 0xcd}}
	if n := testing.AllocsPerRun(100, func() {
		var err error
		hashSink, err = Hash(name, p)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 1 {
		t.Errorf("Hash allocates %.1f times per run, want exactly 1 (the returned digest)", n)
	}
}
