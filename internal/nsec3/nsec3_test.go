package nsec3

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dnswire"
)

// mustHex decodes a hex string or panics.
func mustHex(s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		panic(err)
	}
	return b
}

// TestHashRFC5155Vectors checks the hash against the worked example of
// RFC 5155 Appendix A: zone "example", 12 iterations, salt aabbccdd.
func TestHashRFC5155Vectors(t *testing.T) {
	p := Params{Alg: dnswire.NSEC3HashSHA1, Iterations: 12, Salt: mustHex("aabbccdd")}
	cases := []struct {
		name string
		want string // base32hex owner label, lowercase
	}{
		{"example", "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom"},
		{"a.example", "35mthgpgcu1qg68fab165klnsnk3dpvl"},
		{"ai.example", "gjeqe526plbf1g8mklp59enfd789njgi"},
		{"ns1.example", "2t7b4g4vsa5smi47k61mv5bv1a22bojr"},
		{"ns2.example", "q04jkcevqvmu85r014c7dkba38o0ji5r"},
		{"w.example", "k8udemvp1j2f7eg6jebps17vp3n8i58h"},
		{"*.w.example", "r53bq7cc2uvmubfu5ocmm6pers9tk9en"},
		{"x.w.example", "b4um86eghhds6nea196smvmlo4ors995"},
		{"y.w.example", "ji6neoaepv8b5o6k4ev33abha8ht9fgc"},
		{"x.y.w.example", "2vptu5timamqttgl4luu9kg21e0aor3s"},
		{"xx.example", "t644ebqk9bibcna874givr6joj62mlhv"},
	}
	for _, c := range cases {
		h, err := Hash(dnswire.MustParseName(c.name), p)
		if err != nil {
			t.Fatal(err)
		}
		if got := EncodeHash(h); got != c.want {
			t.Errorf("Hash(%q) = %s, want %s", c.name, got, c.want)
		}
	}
}

func TestHashZeroIterationsNoSalt(t *testing.T) {
	// RFC 9276-compliant parameters: a single SHA-1 over the wire name.
	p := Params{Alg: dnswire.NSEC3HashSHA1}
	h, err := Hash(dnswire.MustParseName("com"), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != HashLen {
		t.Fatalf("hash length %d", len(h))
	}
	if !p.RFC9276Compliant() {
		t.Fatal("zero/empty params must be compliant")
	}
	for _, bad := range []Params{
		{Alg: dnswire.NSEC3HashSHA1, Iterations: 1},
		{Alg: dnswire.NSEC3HashSHA1, Salt: []byte{1}},
	} {
		if bad.RFC9276Compliant() {
			t.Errorf("params %v wrongly compliant", bad)
		}
	}
}

func TestHashUnknownAlgorithm(t *testing.T) {
	if _, err := Hash("example.com.", Params{Alg: 2}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestHashCaseInsensitive(t *testing.T) {
	p := Params{Alg: dnswire.NSEC3HashSHA1, Iterations: 3, Salt: []byte{0xFF}}
	a, _ := Hash(dnswire.MustParseName("WWW.Example.COM"), p)
	b, _ := Hash(dnswire.MustParseName("www.example.com"), p)
	if !bytes.Equal(a, b) {
		t.Fatal("hash differs by case")
	}
}

func TestEncodeDecodeHash(t *testing.T) {
	h := mustHex("0123456789abcdef0123456789abcdef01234567")
	label := EncodeHash(h)
	if len(label) != 32 {
		t.Fatalf("label length %d", len(label))
	}
	if strings.ToLower(label) != label {
		t.Fatal("label not lowercase")
	}
	back, err := DecodeHash(label)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, h) {
		t.Fatal("decode mismatch")
	}
}

func TestOwnerNameAndBack(t *testing.T) {
	zone := dnswire.MustParseName("example.com")
	p := Params{Alg: dnswire.NSEC3HashSHA1, Iterations: 1, Salt: []byte{0xAB}}
	owner, err := OwnerName(dnswire.MustParseName("www.example.com"), zone, p)
	if err != nil {
		t.Fatal(err)
	}
	if !owner.IsSubdomainOf(zone) || owner.CountLabels() != 3 {
		t.Fatalf("owner = %s", owner)
	}
	h, err := HashFromOwner(owner)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Hash(dnswire.MustParseName("www.example.com"), p)
	if !bytes.Equal(h, want) {
		t.Fatal("HashFromOwner mismatch")
	}
}

func TestHashFromOwnerRejects(t *testing.T) {
	if _, err := HashFromOwner(dnswire.Root); err == nil {
		t.Fatal("root accepted")
	}
	// Wrong-length but valid base32hex.
	if _, err := HashFromOwner(dnswire.MustParseName("0123456789abcdef.example.com")); err == nil {
		t.Fatal("short hash accepted")
	}
	if _, err := HashFromOwner(dnswire.MustParseName("!!!!.example.com")); err == nil {
		t.Fatal("non-base32hex accepted")
	}
}

func TestCovers(t *testing.T) {
	h := func(b byte) []byte { return bytes.Repeat([]byte{b}, HashLen) }
	cases := []struct {
		owner, next, target byte
		want                bool
	}{
		{0x10, 0x20, 0x18, true},
		{0x10, 0x20, 0x10, false}, // equals owner
		{0x10, 0x20, 0x20, false}, // equals next
		{0x10, 0x20, 0x08, false},
		{0x10, 0x20, 0x28, false},
		// Wrapped span: last record covers everything outside [next, owner].
		{0xF0, 0x10, 0xF8, true},
		{0xF0, 0x10, 0x08, true},
		{0xF0, 0x10, 0x80, false},
		{0xF0, 0x10, 0xF0, false},
	}
	for _, c := range cases {
		got := Covers(h(c.owner), h(c.next), h(c.target))
		if got != c.want {
			t.Errorf("Covers(%02x,%02x,%02x) = %v, want %v", c.owner, c.next, c.target, got, c.want)
		}
	}
}

func TestCoversSingleRecordChain(t *testing.T) {
	// One record: owner == next; covers everything except the owner.
	h := bytes.Repeat([]byte{0x42}, HashLen)
	other := bytes.Repeat([]byte{0x43}, HashLen)
	if Covers(h, h, h) {
		t.Fatal("span covers its own owner")
	}
	if !Covers(h, h, other) {
		t.Fatal("single-record chain must cover all other hashes")
	}
}

// buildTestChain creates a small zone chain for proofs.
func buildTestChain(t testing.TB, p Params, optOut bool) (*Chain, map[dnswire.Name]dnswire.TypeBitmap) {
	t.Helper()
	zone := dnswire.MustParseName("example.com")
	names := map[dnswire.Name]dnswire.TypeBitmap{
		zone:                                     dnswire.NewTypeBitmap(dnswire.TypeSOA, dnswire.TypeNS, dnswire.TypeDNSKEY),
		dnswire.MustParseName("www.example.com"): dnswire.NewTypeBitmap(dnswire.TypeA),
		dnswire.MustParseName("mail.example.com"): dnswire.NewTypeBitmap(dnswire.TypeA, dnswire.TypeMX),
		dnswire.MustParseName("a.b.example.com"):  dnswire.NewTypeBitmap(dnswire.TypeTXT),
		// b.example.com is an empty non-terminal: present, no types.
		dnswire.MustParseName("b.example.com"): dnswire.NewTypeBitmap(),
	}
	c, err := BuildChain(zone, p, names, optOut, 300)
	if err != nil {
		t.Fatal(err)
	}
	return c, names
}

func existsFn(names map[dnswire.Name]dnswire.TypeBitmap) func(dnswire.Name) bool {
	return func(n dnswire.Name) bool { _, ok := names[n]; return ok }
}

func TestBuildChainInvariants(t *testing.T) {
	p := Params{Alg: dnswire.NSEC3HashSHA1, Iterations: 2, Salt: []byte{0x9F}}
	c, _ := buildTestChain(t, p, false)
	if len(c.Records) != 5 {
		t.Fatalf("%d records", len(c.Records))
	}
	// Sorted strictly ascending.
	for i := 1; i < len(c.Records); i++ {
		if bytes.Compare(c.Records[i-1].OwnerHash, c.Records[i].OwnerHash) >= 0 {
			t.Fatal("chain not strictly sorted")
		}
	}
	// Circular linkage: next pointers form one cycle through all records.
	seen := map[string]bool{}
	cur := c.Records[0].OwnerHash
	for i := 0; i < len(c.Records); i++ {
		idx, match := c.find(cur)
		if !match {
			t.Fatal("next pointer to nonexistent record")
		}
		key := string(cur)
		if seen[key] {
			t.Fatal("cycle shorter than chain")
		}
		seen[key] = true
		cur = c.Records[idx].RR.NextHashedOwner
	}
	if !bytes.Equal(cur, c.Records[0].OwnerHash) {
		t.Fatal("chain does not close")
	}
}

func TestBuildChainEmpty(t *testing.T) {
	if _, err := BuildChain("example.com.", Params{Alg: dnswire.NSEC3HashSHA1}, nil, false, 300); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestMatchAndCover(t *testing.T) {
	p := Params{Alg: dnswire.NSEC3HashSHA1}
	c, _ := buildTestChain(t, p, false)
	if _, ok, err := c.Match(dnswire.MustParseName("www.example.com")); err != nil || !ok {
		t.Fatalf("Match(www) = %v, %v", ok, err)
	}
	if _, ok, err := c.Match(dnswire.MustParseName("nope.example.com")); err != nil || ok {
		t.Fatalf("Match(nope) = %v, %v", ok, err)
	}
	if _, ok, err := c.Cover(dnswire.MustParseName("nope.example.com")); err != nil || !ok {
		t.Fatalf("Cover(nope) = %v, %v", ok, err)
	}
	if _, ok, err := c.Cover(dnswire.MustParseName("www.example.com")); err != nil || ok {
		t.Fatalf("Cover(www) = %v, %v", ok, err)
	}
}

func TestNXDOMAINProofSynthesisAndVerification(t *testing.T) {
	for _, iters := range []uint16{0, 1, 10, 151} {
		p := Params{Alg: dnswire.NSEC3HashSHA1, Iterations: iters, Salt: []byte{0x01, 0x02}}
		c, names := buildTestChain(t, p, false)
		qname := dnswire.MustParseName("x.y.example.com")
		proof, err := c.ProveNXDOMAIN(qname, existsFn(names))
		if err != nil {
			t.Fatalf("iters=%d: %v", iters, err)
		}
		if proof.ClosestEncloser == nil || proof.NextCloser == nil || proof.Wildcard == nil {
			t.Fatalf("iters=%d: incomplete proof %+v", iters, proof)
		}
		// Materialize RRs as a server would and verify as a resolver.
		var rrs []dnswire.RR
		for _, r := range proof.Records() {
			rrs = append(rrs, c.RRFor(r, 300))
		}
		set, err := ExtractResponseSet(rrs)
		if err != nil {
			t.Fatal(err)
		}
		if set.Params.Iterations != iters {
			t.Fatalf("extracted iterations %d", set.Params.Iterations)
		}
		ce, _, err := set.VerifyNXDOMAIN(qname)
		if err != nil {
			t.Fatalf("iters=%d verify: %v", iters, err)
		}
		if ce != "example.com." {
			t.Fatalf("closest encloser %s", ce)
		}
	}
}

func TestNXDOMAINDeeperEncloser(t *testing.T) {
	p := Params{Alg: dnswire.NSEC3HashSHA1}
	c, names := buildTestChain(t, p, false)
	// b.example.com exists (ENT), so the encloser for q.b.example.com is b.example.com.
	qname := dnswire.MustParseName("q.b.example.com")
	proof, err := c.ProveNXDOMAIN(qname, existsFn(names))
	if err != nil {
		t.Fatal(err)
	}
	var rrs []dnswire.RR
	for _, r := range proof.Records() {
		rrs = append(rrs, c.RRFor(r, 300))
	}
	set, err := ExtractResponseSet(rrs)
	if err != nil {
		t.Fatal(err)
	}
	ce, _, err := set.VerifyNXDOMAIN(qname)
	if err != nil {
		t.Fatal(err)
	}
	if ce != "b.example.com." {
		t.Fatalf("closest encloser %s", ce)
	}
}

func TestNODATAProof(t *testing.T) {
	p := Params{Alg: dnswire.NSEC3HashSHA1, Iterations: 5}
	c, _ := buildTestChain(t, p, false)
	qname := dnswire.MustParseName("www.example.com")
	proof, err := c.ProveNODATA(qname)
	if err != nil {
		t.Fatal(err)
	}
	set, err := ExtractResponseSet([]dnswire.RR{c.RRFor(*proof.Matching, 300)})
	if err != nil {
		t.Fatal(err)
	}
	// www has A only; AAAA must verify as NODATA, A must fail.
	if err := set.VerifyNODATA(qname, dnswire.TypeAAAA); err != nil {
		t.Fatal(err)
	}
	if err := set.VerifyNODATA(qname, dnswire.TypeA); err == nil {
		t.Fatal("NODATA verified for existing type")
	}
}

func TestWildcardProof(t *testing.T) {
	zone := dnswire.MustParseName("example.com")
	p := Params{Alg: dnswire.NSEC3HashSHA1}
	names := map[dnswire.Name]dnswire.TypeBitmap{
		zone:            dnswire.NewTypeBitmap(dnswire.TypeSOA, dnswire.TypeNS),
		zone.Wildcard(): dnswire.NewTypeBitmap(dnswire.TypeA),
	}
	c, err := BuildChain(zone, p, names, false, 300)
	if err != nil {
		t.Fatal(err)
	}
	qname := dnswire.MustParseName("anything.example.com")
	proof, err := c.ProveWildcard(qname, existsFn(names))
	if err != nil {
		t.Fatal(err)
	}
	set, err := ExtractResponseSet([]dnswire.RR{c.RRFor(*proof.NextCloser, 300)})
	if err != nil {
		t.Fatal(err)
	}
	// The wildcard is *.example.com → 2 labels in the synthesizing name.
	if err := set.VerifyWildcardAnswer(qname, 2); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsForgedProofs(t *testing.T) {
	p := Params{Alg: dnswire.NSEC3HashSHA1}
	c, names := buildTestChain(t, p, false)
	qname := dnswire.MustParseName("ghost.example.com")
	proof, err := c.ProveNXDOMAIN(qname, existsFn(names))
	if err != nil {
		t.Fatal(err)
	}
	all := proof.Records()

	// Missing closest-encloser record.
	var withoutCE []dnswire.RR
	for _, r := range all {
		if bytes.Equal(r.OwnerHash, proof.ClosestEncloser.OwnerHash) {
			continue
		}
		withoutCE = append(withoutCE, c.RRFor(r, 300))
	}
	if set, err := ExtractResponseSet(withoutCE); err == nil {
		if _, _, err := set.VerifyNXDOMAIN(qname); err == nil {
			t.Fatal("proof without closest encloser verified")
		}
	}

	// Proof for a different qname must not verify an existing name...
	var rrs []dnswire.RR
	for _, r := range all {
		rrs = append(rrs, c.RRFor(r, 300))
	}
	set, err := ExtractResponseSet(rrs)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := set.VerifyNXDOMAIN(dnswire.MustParseName("www.example.com")); err == nil {
		t.Fatal("NXDOMAIN proof verified for an existing name")
	}
}

func TestExtractResponseSetInconsistent(t *testing.T) {
	p1 := Params{Alg: dnswire.NSEC3HashSHA1, Iterations: 1}
	p2 := Params{Alg: dnswire.NSEC3HashSHA1, Iterations: 2}
	c1, _ := buildTestChain(t, p1, false)
	c2, _ := buildTestChain(t, p2, false)
	rrs := []dnswire.RR{c1.RRFor(c1.Records[0], 300), c2.RRFor(c2.Records[0], 300)}
	if _, err := ExtractResponseSet(rrs); err == nil {
		t.Fatal("inconsistent parameters accepted (RFC 5155 §8.2 violated)")
	}
}

func TestOptOutFlagPropagates(t *testing.T) {
	p := Params{Alg: dnswire.NSEC3HashSHA1}
	c, _ := buildTestChain(t, p, true)
	for _, r := range c.Records {
		if !r.RR.OptOut() {
			t.Fatal("opt-out flag missing")
		}
	}
}

func TestPropChainMatchXorCover(t *testing.T) {
	// For any name, exactly one of Match/Cover holds on a chain.
	p := Params{Alg: dnswire.NSEC3HashSHA1, Iterations: 1, Salt: []byte{7}}
	c, _ := buildTestChain(t, p, false)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		label := make([]byte, 1+r.Intn(10))
		for i := range label {
			label[i] = "abcdefghijklmnopqrstuvwxyz"[r.Intn(26)]
		}
		n, err := dnswire.FromLabels(string(label), "example", "com")
		if err != nil {
			return false
		}
		_, matched, err1 := c.Match(n)
		_, covered, err2 := c.Cover(n)
		return err1 == nil && err2 == nil && matched != covered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropCoversPartitionsSpace(t *testing.T) {
	// Any hash is covered by exactly one span of a chain, unless it
	// equals an owner hash.
	p := Params{Alg: dnswire.NSEC3HashSHA1}
	c, _ := buildTestChain(t, p, false)
	f := func(raw [HashLen]byte) bool {
		h := raw[:]
		covering := 0
		matching := 0
		for _, r := range c.Records {
			if bytes.Equal(r.OwnerHash, h) {
				matching++
			}
			if Covers(r.OwnerHash, r.RR.NextHashedOwner, h) {
				covering++
			}
		}
		if matching > 0 {
			return covering == 0
		}
		return covering == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestProofRecordsDedup(t *testing.T) {
	// In tiny zones one NSEC3 can serve several proof roles; Records()
	// must not duplicate it.
	zone := dnswire.MustParseName("tiny.example")
	p := Params{Alg: dnswire.NSEC3HashSHA1}
	names := map[dnswire.Name]dnswire.TypeBitmap{
		zone: dnswire.NewTypeBitmap(dnswire.TypeSOA),
	}
	c, err := BuildChain(zone, p, names, false, 300)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := c.ProveNXDOMAIN(dnswire.MustParseName("a.tiny.example"), existsFn(names))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(proof.Records()); got != 1 {
		t.Fatalf("Records() = %d, want 1 (single NSEC3 zone)", got)
	}
}

func TestChainSortedAfterBuild(t *testing.T) {
	p := Params{Alg: dnswire.NSEC3HashSHA1, Iterations: 3, Salt: []byte{0xAA, 0xBB, 0xCC}}
	c, _ := buildTestChain(t, p, false)
	if !sort.SliceIsSorted(c.Records, func(i, j int) bool {
		return bytes.Compare(c.Records[i].OwnerHash, c.Records[j].OwnerHash) < 0
	}) {
		t.Fatal("records not sorted")
	}
}
