package nsec3

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/dnswire"
)

// This file implements the two sides of NSEC3 denial of existence:
// synthesis (authoritative server, RFC 5155 §7.2) and verification
// (validating resolver, RFC 5155 §8). Verification is the code path a
// high iteration count makes expensive — every candidate closest
// encloser costs a full iterated hash — which is why RFC 9276 and
// CVE-2023-50868 exist.

// Proof is the set of NSEC3 records an authoritative server attaches to
// a negative or wildcard response.
type Proof struct {
	// ClosestEncloser is the NSEC3 matching the closest encloser
	// (NXDOMAIN and wildcard proofs).
	ClosestEncloser *Record
	// NextCloser is the NSEC3 covering the next-closer name.
	NextCloser *Record
	// Wildcard is the NSEC3 covering *.closest-encloser (NXDOMAIN
	// proofs only).
	Wildcard *Record
	// Matching is the NSEC3 matching the query name (NODATA proofs).
	Matching *Record
}

// Records returns the distinct records of the proof in a stable order.
func (p Proof) Records() []Record {
	var out []Record
	seen := func(r *Record) bool {
		for i := range out {
			if bytes.Equal(out[i].OwnerHash, r.OwnerHash) {
				return true
			}
		}
		return false
	}
	for _, r := range []*Record{p.ClosestEncloser, p.NextCloser, p.Wildcard, p.Matching} {
		if r != nil && !seen(r) {
			out = append(out, *r)
		}
	}
	return out
}

// ClosestEncloser walks qname's ancestors (within zone) from the
// longest down and returns the first that exists, plus the next-closer
// name (qname truncated to one label below the encloser). exists
// reports whether an original name is present in the zone.
func ClosestEncloser(qname, zone dnswire.Name, exists func(dnswire.Name) bool) (ce, nextCloser dnswire.Name, err error) {
	if !qname.IsSubdomainOf(zone) {
		return "", "", fmt.Errorf("nsec3: %s not within zone %s", qname, zone)
	}
	candidate := qname
	prev := qname
	for {
		if exists(candidate) {
			if candidate == qname {
				return "", "", fmt.Errorf("nsec3: %s exists, no encloser proof needed", qname)
			}
			return candidate, prev, nil
		}
		if candidate == zone {
			// The apex always exists in a well-formed zone.
			return "", "", fmt.Errorf("nsec3: zone apex %s missing from name set", zone)
		}
		prev = candidate
		candidate = candidate.Parent()
	}
}

// ProveNXDOMAIN synthesizes the three-record closest-encloser proof for
// a name that does not exist (RFC 5155 §7.2.2). exists must report
// original names present in the zone (including empty non-terminals).
func (c *Chain) ProveNXDOMAIN(qname dnswire.Name, exists func(dnswire.Name) bool) (Proof, error) {
	ce, nextCloser, err := ClosestEncloser(qname, c.Zone, exists)
	if err != nil {
		return Proof{}, err
	}
	var p Proof
	if r, ok, err := c.Match(ce); err != nil {
		return Proof{}, err
	} else if !ok {
		return Proof{}, fmt.Errorf("nsec3: no NSEC3 matches closest encloser %s", ce)
	} else {
		p.ClosestEncloser = &r
	}
	if r, ok, err := c.Cover(nextCloser); err != nil {
		return Proof{}, err
	} else if ok {
		p.NextCloser = &r
	} else {
		return Proof{}, fmt.Errorf("nsec3: next closer %s unexpectedly matches", nextCloser)
	}
	if r, ok, err := c.Cover(ce.Wildcard()); err != nil {
		return Proof{}, err
	} else if ok {
		p.Wildcard = &r
	}
	// If the wildcard matches instead of being covered, the server
	// should have synthesized a wildcard answer, not an NXDOMAIN; the
	// caller handles that branch.
	return p, nil
}

// ProveNODATA synthesizes the NODATA proof: the NSEC3 matching qname
// whose bitmap shows the queried type absent (RFC 5155 §7.2.3/7.2.4).
func (c *Chain) ProveNODATA(qname dnswire.Name) (Proof, error) {
	r, ok, err := c.Match(qname)
	if err != nil {
		return Proof{}, err
	}
	if !ok {
		return Proof{}, fmt.Errorf("nsec3: no NSEC3 matches %s for NODATA", qname)
	}
	return Proof{Matching: &r}, nil
}

// ProveWildcard synthesizes the proof accompanying a wildcard-expanded
// answer: the NSEC3 covering the next-closer name, showing qname itself
// does not exist (RFC 5155 §7.2.6).
func (c *Chain) ProveWildcard(qname dnswire.Name, exists func(dnswire.Name) bool) (Proof, error) {
	ce, nextCloser, err := ClosestEncloser(qname, c.Zone, exists)
	if err != nil {
		return Proof{}, err
	}
	_ = ce
	r, ok, err := c.Cover(nextCloser)
	if err != nil {
		return Proof{}, err
	}
	if !ok {
		return Proof{}, fmt.Errorf("nsec3: next closer %s matches, not covered", nextCloser)
	}
	return Proof{NextCloser: &r}, nil
}

// ---------------------------------------------------------------------
// Verification (resolver side)

// Errors from proof verification.
var (
	ErrInconsistentParams = errors.New("nsec3: NSEC3 records carry inconsistent parameters")
	ErrNoClosestEncloser  = errors.New("nsec3: no closest encloser proven")
	ErrNotCovered         = errors.New("nsec3: name not covered by any NSEC3 span")
	ErrWildcardExists     = errors.New("nsec3: wildcard not proven absent")
	ErrNoMatchingRecord   = errors.New("nsec3: no NSEC3 matches the query name")
	ErrTypeExists         = errors.New("nsec3: bitmap proves queried type exists")
)

// ResponseSet is the NSEC3 records extracted from one response's
// authority section, with their shared parameters.
type ResponseSet struct {
	Zone    dnswire.Name
	Params  Params
	Records []Record
}

// ExtractResponseSet collects the NSEC3 RRs from rrs (typically a
// response's authority section), checks RFC 5155 §8.2's requirement
// that all parameters agree, and infers the zone from the owner names.
func ExtractResponseSet(rrs []dnswire.RR) (*ResponseSet, error) {
	var set *ResponseSet
	for _, rr := range rrs {
		n3, ok := rr.Data.(dnswire.NSEC3)
		if !ok {
			continue
		}
		h, err := HashFromOwner(rr.Name)
		if err != nil {
			return nil, err
		}
		p := Params{Alg: n3.HashAlg, Iterations: n3.Iterations, Salt: n3.Salt}
		zone := rr.Name.Parent()
		if set == nil {
			set = &ResponseSet{Zone: zone, Params: p}
		} else if set.Params.Alg != p.Alg || set.Params.Iterations != p.Iterations ||
			!bytes.Equal(set.Params.Salt, p.Salt) || set.Zone != zone {
			return nil, ErrInconsistentParams
		}
		set.Records = append(set.Records, Record{OwnerHash: h, RR: n3})
	}
	if set == nil {
		return nil, errors.New("nsec3: no NSEC3 records in response")
	}
	return set, nil
}

// matches reports whether some record's owner hash equals h.
func (s *ResponseSet) matches(h []byte) (Record, bool) {
	for _, r := range s.Records {
		if bytes.Equal(r.OwnerHash, h) {
			return r, true
		}
	}
	return Record{}, false
}

// covered reports whether some record's span covers h.
func (s *ResponseSet) covered(h []byte) (Record, bool) {
	for _, r := range s.Records {
		if Covers(r.OwnerHash, r.RR.NextHashedOwner, h) {
			return r, true
		}
	}
	return Record{}, false
}

// VerifyNXDOMAIN validates a closest-encloser NXDOMAIN proof for qname
// (RFC 5155 §8.4–8.5). It returns the proven closest encloser and the
// covering next-closer record (whose Opt-Out bit weakens the proof for
// delegations). The cost of this function grows linearly with the
// iteration count — one iterated hash per candidate ancestor — which is
// the resolver-side exposure the paper measures.
func (s *ResponseSet) VerifyNXDOMAIN(qname dnswire.Name) (ce dnswire.Name, nextCloserRec Record, err error) {
	ce, nextCloser, err := s.findClosestEncloser(qname)
	if err != nil {
		return "", Record{}, err
	}
	ncHash, err := Hash(nextCloser, s.Params)
	if err != nil {
		return "", Record{}, err
	}
	nc, ok := s.covered(ncHash)
	if !ok {
		return "", Record{}, fmt.Errorf("%w: next closer %s", ErrNotCovered, nextCloser)
	}
	wcHash, err := Hash(ce.Wildcard(), s.Params)
	if err != nil {
		return "", Record{}, err
	}
	if _, ok := s.covered(wcHash); !ok {
		return "", Record{}, fmt.Errorf("%w: *.%s", ErrWildcardExists, ce)
	}
	return ce, nc, nil
}

// VerifyNODATA validates a NODATA proof: an NSEC3 matching qname whose
// bitmap lacks qtype and CNAME (RFC 5155 §8.5).
func (s *ResponseSet) VerifyNODATA(qname dnswire.Name, qtype dnswire.Type) error {
	h, err := Hash(qname, s.Params)
	if err != nil {
		return err
	}
	r, ok := s.matches(h)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoMatchingRecord, qname)
	}
	if r.RR.Types.Contains(qtype) || r.RR.Types.Contains(dnswire.TypeCNAME) {
		return fmt.Errorf("%w: %s %s", ErrTypeExists, qname, qtype)
	}
	return nil
}

// VerifyWildcardAnswer validates the proof accompanying a wildcard
// expansion: qname's next closer (at wildcardLabels+1 labels) must be
// covered, proving the exact name absent (RFC 5155 §8.8). The RRSIG
// Labels field supplies wildcardLabels.
func (s *ResponseSet) VerifyWildcardAnswer(qname dnswire.Name, wildcardLabels int) error {
	labels := qname.Labels()
	if wildcardLabels >= len(labels) {
		return fmt.Errorf("nsec3: wildcard label count %d not below qname %s", wildcardLabels, qname)
	}
	nextCloser, err := nameFromSuffix(labels, wildcardLabels+1)
	if err != nil {
		return err
	}
	h, err := Hash(nextCloser, s.Params)
	if err != nil {
		return err
	}
	if _, ok := s.covered(h); !ok {
		return fmt.Errorf("%w: next closer %s", ErrNotCovered, nextCloser)
	}
	return nil
}

// VerifyNoDS validates the denial of a DS RRset at an insecure
// delegation under an Opt-Out zone (RFC 5155 §8.6): the closest
// provable encloser is matched and the next-closer name is covered by
// a span with the Opt-Out flag. It returns the covering record so the
// caller can inspect the flag; without Opt-Out the proof is invalid
// for a name that should have matched directly.
func (s *ResponseSet) VerifyNoDS(qname dnswire.Name) (Record, error) {
	ce, nextCloser, err := s.findClosestEncloser(qname)
	if err != nil {
		return Record{}, err
	}
	_ = ce
	h, err := Hash(nextCloser, s.Params)
	if err != nil {
		return Record{}, err
	}
	rec, ok := s.covered(h)
	if !ok {
		return Record{}, fmt.Errorf("%w: next closer %s", ErrNotCovered, nextCloser)
	}
	if !rec.RR.OptOut() {
		return Record{}, fmt.Errorf("nsec3: covering span without opt-out cannot deny DS at %s", qname)
	}
	return rec, nil
}

// findClosestEncloser implements RFC 5155 §8.3: the longest ancestor of
// qname with a matching NSEC3 whose immediate child on qname's path is
// covered.
func (s *ResponseSet) findClosestEncloser(qname dnswire.Name) (ce, nextCloser dnswire.Name, err error) {
	labels := qname.Labels()
	// Candidate enclosers from longest (qname's parent) to the zone.
	for drop := 1; drop <= len(labels); drop++ {
		candidate, err := nameFromSuffix(labels, len(labels)-drop)
		if err != nil {
			return "", "", err
		}
		if !candidate.IsSubdomainOf(s.Zone) {
			break
		}
		h, err := Hash(candidate, s.Params)
		if err != nil {
			return "", "", err
		}
		if _, ok := s.matches(h); ok {
			nc, err := nameFromSuffix(labels, len(labels)-drop+1)
			if err != nil {
				return "", "", err
			}
			return candidate, nc, nil
		}
	}
	return "", "", ErrNoClosestEncloser
}

// nameFromSuffix builds the name made of the last n labels.
func nameFromSuffix(labels []string, n int) (dnswire.Name, error) {
	return dnswire.FromLabels(labels[len(labels)-n:]...)
}
