package nsec3

import (
	"bytes"
	"testing"

	"repro/internal/dnswire"
)

// FuzzHash throws arbitrary presentation names, iteration counts, and
// salts at the iterated hash. Any name the parser accepts must hash
// without panicking, deterministically, and to exactly HashLen octets.
// Iterations are capped so a fuzz worker never burns seconds on one
// input (the CPU-exhaustion behavior itself is what the paper measures,
// not what the fuzzer should rediscover).
func FuzzHash(f *testing.F) {
	f.Add("example.com.", uint16(10), []byte{0xAA, 0xBB, 0xCC, 0xDD})
	f.Add("*.example.com.", uint16(0), []byte{})
	f.Add(".", uint16(1), []byte{0xFF})
	f.Add("xn--nxasmq6b.example.", uint16(150), []byte("salt"))
	f.Fuzz(func(t *testing.T, s string, iterations uint16, salt []byte) {
		name, err := dnswire.ParseName(s)
		if err != nil {
			return
		}
		p := Params{
			Alg:        dnswire.NSEC3HashSHA1,
			Iterations: iterations % 500,
			Salt:       salt,
		}
		h, err := Hash(name, p)
		if err != nil {
			t.Fatalf("Hash(%q, %v) failed on a parsed name: %v", name, p, err)
		}
		if len(h) != HashLen {
			t.Fatalf("Hash(%q, %v) returned %d octets, want %d", name, p, len(h), HashLen)
		}
		again, err := Hash(name, p)
		if err != nil || !bytes.Equal(h, again) {
			t.Fatalf("Hash(%q, %v) is not deterministic: %x vs %x (err %v)", name, p, h, again, err)
		}
	})
}
