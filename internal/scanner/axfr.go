package scanner

import (
	"context"
	"errors"
	"fmt"
	"net/netip"

	"repro/internal/dnswire"
	"repro/internal/netsim"
)

// This file is the zone-transfer client of §4.1: the paper obtained
// ccTLD zone files for .ch, .nu, .se, and .li via AXFR and counted
// domains under the Identity Digital TLDs from downloaded zone files.

// ErrTransferRefused is returned when the server's policy denies AXFR.
var ErrTransferRefused = errors.New("scanner: zone transfer refused")

// Transfer performs an AXFR of the zone rooted at apex from server and
// returns the records between (and excluding) the two SOA markers.
func Transfer(ctx context.Context, ex netsim.Exchanger, server netip.AddrPort, apex dnswire.Name) ([]dnswire.RR, error) {
	q := &dnswire.Message{
		Header:    dnswire.Header{ID: 0xAF, Opcode: dnswire.OpcodeQuery},
		Questions: []dnswire.Question{{Name: apex, Type: dnswire.TypeAXFR, Class: dnswire.ClassIN}},
	}
	resp, err := ex.Exchange(ctx, server, q)
	if err != nil {
		return nil, err
	}
	switch resp.Header.RCode {
	case dnswire.RCodeNoError:
	case dnswire.RCodeRefused:
		return nil, fmt.Errorf("%w: %s from %s", ErrTransferRefused, apex, server)
	default:
		return nil, fmt.Errorf("scanner: AXFR of %s: %s", apex, resp.Header.RCode)
	}
	rrs := resp.Answers
	if len(rrs) < 2 || rrs[0].Type() != dnswire.TypeSOA || rrs[len(rrs)-1].Type() != dnswire.TypeSOA {
		return nil, fmt.Errorf("scanner: AXFR of %s not SOA-delimited (%d records)", apex, len(rrs))
	}
	return rrs[1 : len(rrs)-1], nil
}

// CountDelegations counts the distinct delegated child names in a
// transferred TLD zone — the way the paper counted registered domains
// under a TLD from its zone file.
func CountDelegations(apex dnswire.Name, rrs []dnswire.RR) int {
	seen := make(map[dnswire.Name]bool)
	for _, rr := range rrs {
		if rr.Type() != dnswire.TypeNS {
			continue
		}
		if rr.Name == apex || !rr.Name.IsSubdomainOf(apex) {
			continue
		}
		seen[rr.Name] = true
	}
	return len(seen)
}
