// Package scanner is the bulk measurement engine of §4.1 — the role
// zdns played in the paper: a worker pool with token-bucket rate
// limiting that, for each registered domain, queries DNSKEY (DNSSEC
// enablement), NSEC3PARAM and NS, and then a random non-existent
// subdomain to elicit the NSEC3 records from the negative response.
// Results stream out as compliance.ZoneFacts ready for classification,
// or as NDJSON via the Encode helpers (cmd/nsec3scan).
package scanner

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/netip"
	"sync"
	"time"

	"repro/internal/compliance"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// Config assembles a scanner.
type Config struct {
	// Exchanger is the transport.
	Exchanger netsim.Exchanger
	// Resolver is the recursive resolver all queries go through (the
	// paper used Cloudflare's 1.1.1.1).
	Resolver netip.AddrPort
	// Workers is the concurrency (default 32).
	Workers int
	// QPS caps the aggregate query rate; 0 disables the limiter. The
	// paper limited itself to 14.7 K requests per second on average
	// (Appendix A).
	QPS int
	// Burst is the token-bucket burst capacity when QPS is set
	// (default: Workers, so every worker can hold one token).
	Burst int
	// Seed drives the random probe labels.
	Seed uint64
	// Timeout bounds each query attempt (default 5s).
	Timeout time.Duration
	// Retries is how many extra attempts a transport-level query
	// failure gets before the domain's scan is abandoned (default 2;
	// negative disables retries). With retries on, ScanErrors in the
	// survey report reflects persistent faults, not transient loss.
	Retries int
	// RetryBackoff is the base delay before the first retry, doubling
	// per attempt (default 50ms). Each sleep is jittered: the scanner
	// draws uniformly from [base/2, base) using its seeded rng, so
	// synchronized workers desynchronize without losing test
	// reproducibility. Retries also pay the QPS limiter.
	RetryBackoff time.Duration
	// Obs, when set, receives scanner metrics (queries issued, RTT
	// histogram, retries, backoff and limiter wait time). Nil disables
	// instrumentation at zero cost on the query path.
	Obs *obs.Registry
}

// Result is one scanned domain: its facts plus scan metadata.
type Result struct {
	Facts compliance.ZoneFacts
	// Queries is how many DNS queries the scan of this domain used.
	Queries int
	// Err is a transport-level failure (the domain may be retried).
	Err error
}

// Scanner scans domains through a recursive resolver.
type Scanner struct {
	cfg     Config
	limiter *tokenBucket

	mu  sync.Mutex
	rng *rand.Rand

	idMu   sync.Mutex
	nextID uint16

	// Metrics resolved once in New; all nil (no-op) when cfg.Obs is
	// nil. mRTT and mLimiterWaitNS additionally gate their time.Now
	// reads, so an uninstrumented scanner never touches the clock
	// beyond what the retry timer already needs.
	mQueries       *obs.Counter
	mRTT           *obs.Histogram
	mRetries       *obs.Counter
	mBackoffNS     *obs.Counter
	mLimiterWaitNS *obs.Counter
}

// New creates a scanner. Call Close when done with it to release the
// rate limiter.
func New(cfg Config) *Scanner {
	if cfg.Workers <= 0 {
		cfg.Workers = 32
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	} else if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.Workers
	}
	s := &Scanner{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x5851F42D4C957F2D)),
	}
	if cfg.QPS > 0 {
		s.limiter = newTokenBucket(cfg.QPS, cfg.Burst)
	}
	if cfg.Obs != nil {
		s.mQueries = cfg.Obs.Counter("scanner_queries_total",
			"DNS queries issued by the scanner, including retries")
		s.mRTT = cfg.Obs.Histogram("scanner_query_rtt_seconds",
			"round-trip time of scanner queries", obs.DurationBuckets())
		s.mRetries = cfg.Obs.Counter("scanner_retries_total",
			"scanner query attempts that were retries of a failed attempt")
		s.mBackoffNS = cfg.Obs.Counter("scanner_retry_backoff_nanoseconds_total",
			"cumulative nanoseconds scanner workers slept in retry backoff")
		s.mLimiterWaitNS = cfg.Obs.Counter("scanner_limiter_wait_nanoseconds_total",
			"cumulative nanoseconds scanner workers waited on the QPS limiter")
	}
	return s
}

// Close releases the scanner's rate limiter, waking workers blocked on
// a token; their queries fail with ErrClosed. Safe to call more than
// once, and a no-op for unlimited scanners.
func (s *Scanner) Close() {
	if s.limiter != nil {
		s.limiter.Stop()
	}
}

// randomLabel generates the random-subdomain probe label (cache
// busting plus negative-response elicitation, §4.1).
func (s *Scanner) randomLabel() string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	s.mu.Lock()
	defer s.mu.Unlock()
	b := make([]byte, 16)
	for i := range b {
		b[i] = alphabet[s.rng.IntN(len(alphabet))]
	}
	return "zz-probe-" + string(b)
}

// jitter maps a base backoff to a uniformly random duration in
// [d/2, d) — "equal jitter". Drawing from the scanner's seeded rng
// keeps retry schedules reproducible under a fixed seed; in a
// loss-free run no retries fire, so the random-label sequence is
// untouched.
func (s *Scanner) jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	half := d / 2
	return half + time.Duration(s.rng.Int64N(int64(half)))
}

func (s *Scanner) id() uint16 {
	s.idMu.Lock()
	defer s.idMu.Unlock()
	s.nextID++
	return s.nextID
}

// query sends one recursive query (RD+CD+DO) through the resolver,
// retrying transport-level failures with jittered exponential backoff.
// Every attempt pays the rate limiter, so retries cannot push the
// scanner over its QPS budget.
//
//repro:nondeterministic clock reads drive rate limiting and latency metrics, not scan results
func (s *Scanner) query(ctx context.Context, qname dnswire.Name, qtype dnswire.Type) (*dnswire.Message, error) {
	backoff := s.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if s.limiter != nil {
			if s.mLimiterWaitNS != nil {
				waitStart := time.Now()
				err := s.limiter.wait(ctx)
				s.mLimiterWaitNS.Add(uint64(time.Since(waitStart)))
				if err != nil {
					return nil, err
				}
			} else if err := s.limiter.wait(ctx); err != nil {
				return nil, err
			}
		}
		actx, cancel := context.WithTimeout(ctx, s.cfg.Timeout)
		q := dnswire.NewQuery(s.id(), qname, qtype, true)
		q.Header.CheckingDisabled = true
		s.mQueries.Inc()
		if attempt > 0 {
			s.mRetries.Inc()
		}
		var sent time.Time
		if s.mRTT != nil {
			sent = time.Now()
		}
		msg, err := s.cfg.Exchanger.Exchange(actx, s.cfg.Resolver, q)
		if s.mRTT != nil {
			s.mRTT.Observe(time.Since(sent).Seconds())
		}
		cancel()
		if err == nil {
			return msg, nil
		}
		lastErr = err
		if attempt >= s.cfg.Retries || ctx.Err() != nil {
			return nil, lastErr
		}
		sleep := s.jitter(backoff)
		t := time.NewTimer(sleep)
		select {
		case <-t.C:
			s.mBackoffNS.Add(uint64(sleep))
		case <-ctx.Done():
			t.Stop()
			return nil, lastErr
		}
		backoff *= 2
	}
}

// ScanDomain runs the §4.1 probe sequence for one registered domain.
func (s *Scanner) ScanDomain(ctx context.Context, domain dnswire.Name) Result {
	res := Result{Facts: compliance.ZoneFacts{Domain: domain}}

	// 1. DNSKEY: the DNSSEC-enablement test.
	msg, err := s.query(ctx, domain, dnswire.TypeDNSKEY)
	if err != nil {
		res.Err = fmt.Errorf("scanner: DNSKEY query: %w", err)
		return res
	}
	res.Queries++
	for _, rr := range msg.Answers {
		if k, ok := rr.Data.(dnswire.DNSKEY); ok {
			res.Facts.DNSKEYs = append(res.Facts.DNSKEYs, k)
		}
	}
	if len(res.Facts.DNSKEYs) == 0 {
		return res // not DNSSEC-enabled: no further queries (§4.1)
	}

	// 2. NSEC3PARAM.
	msg, err = s.query(ctx, domain, dnswire.TypeNSEC3PARAM)
	if err != nil {
		res.Err = fmt.Errorf("scanner: NSEC3PARAM query: %w", err)
		return res
	}
	res.Queries++
	for _, rr := range msg.Answers {
		if p, ok := rr.Data.(dnswire.NSEC3PARAM); ok {
			res.Facts.NSEC3PARAMs = append(res.Facts.NSEC3PARAMs, p)
		}
	}

	// 3. NS (operator attribution).
	msg, err = s.query(ctx, domain, dnswire.TypeNS)
	if err != nil {
		res.Err = fmt.Errorf("scanner: NS query: %w", err)
		return res
	}
	res.Queries++
	for _, rr := range msg.Answers {
		if ns, ok := rr.Data.(dnswire.NS); ok {
			res.Facts.NSHosts = append(res.Facts.NSHosts, ns.Host)
		}
	}

	// 4. Random subdomain: elicit NSEC3 (or NSEC) from the negative
	// response (or from a wildcard expansion's proof).
	probe, err := domain.Child(s.randomLabel())
	if err != nil {
		res.Err = err
		return res
	}
	msg, err = s.query(ctx, probe, dnswire.TypeA)
	if err != nil {
		res.Err = fmt.Errorf("scanner: probe query: %w", err)
		return res
	}
	res.Queries++
	for _, rr := range msg.Authority {
		switch d := rr.Data.(type) {
		case dnswire.NSEC3:
			res.Facts.NSEC3s = append(res.Facts.NSEC3s, d)
		case dnswire.NSEC:
			res.Facts.NSECSeen = true
		}
	}
	return res
}

// Source streams domains into ScanAll. Next returns the next domain
// to scan, or false when the stream is exhausted. ScanAll calls Next
// from a single goroutine, so implementations need no locking.
type Source interface {
	Next() (dnswire.Name, bool)
}

// sliceSource adapts an in-memory domain list.
type sliceSource struct {
	names []dnswire.Name
	i     int
}

func (s *sliceSource) Next() (dnswire.Name, bool) {
	if s.i >= len(s.names) {
		return "", false
	}
	n := s.names[s.i]
	s.i++
	return n, true
}

// Names adapts a slice to a Source.
func Names(names []dnswire.Name) Source {
	return &sliceSource{names: names}
}

// Sink consumes scan results. ScanAll gives each worker its own Sink,
// so an implementation owns its state lock-free unless sinks
// deliberately share (a shared Encoder, say, serializes internally).
type Sink interface {
	Consume(Result)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Result)

// Consume implements Sink.
func (f SinkFunc) Consume(r Result) { f(r) }

// ScanAll scans every domain yielded by src with the configured worker
// pool. newSink is called once per worker, sequentially and before
// scanning starts; each returned sink then receives only that worker's
// results, so per-worker aggregates need no mutex — the caller merges
// them after ScanAll returns. On context cancellation the feed stops,
// in-flight scans drain (their results still reach the sinks, with
// ctx errors attached), and the context's error is returned.
func (s *Scanner) ScanAll(ctx context.Context, src Source, newSink func(worker int) Sink) error {
	jobs := make(chan dnswire.Name)
	sinks := make([]Sink, s.cfg.Workers)
	for w := range sinks {
		sinks[w] = newSink(w)
	}
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func(sink Sink) {
			defer wg.Done()
			for d := range jobs {
				sink.Consume(s.ScanDomain(ctx, d))
			}
		}(sinks[w])
	}
	var err error
feed:
	for {
		d, ok := src.Next()
		if !ok {
			break
		}
		select {
		case jobs <- d:
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return err
}

// resultJSON is the NDJSON encoding of a Result (zdns-style output).
type resultJSON struct {
	Domain      string   `json:"domain"`
	DNSSEC      bool     `json:"dnssec_enabled"`
	NSEC3Params []string `json:"nsec3param,omitempty"`
	NSEC3Count  int      `json:"nsec3_records,omitempty"`
	NSECSeen    bool     `json:"nsec_seen,omitempty"`
	NSHosts     []string `json:"ns,omitempty"`
	Queries     int      `json:"queries"`
	Error       string   `json:"error,omitempty"`
}

// Encoder writes Results as NDJSON lines, reusing one json.Encoder
// instead of allocating one per result. Write and WriteAny serialize
// internally, so per-worker sinks can share a single Encoder over one
// stream — and so can an obs.Tracer, interleaving span records with
// scan results on the same NDJSON output.
type Encoder struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewEncoder prepares an NDJSON encoder over w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{enc: json.NewEncoder(w)}
}

// WriteAny emits any JSON-encodable value as one line, making Encoder
// an obs.LineWriter (the tracer's output interface).
func (e *Encoder) WriteAny(v any) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.enc.Encode(v)
}

// Write emits one result as a JSON line.
func (e *Encoder) Write(r Result) error {
	out := resultJSON{
		Domain:     r.Facts.Domain.String(),
		DNSSEC:     len(r.Facts.DNSKEYs) > 0,
		NSEC3Count: len(r.Facts.NSEC3s),
		NSECSeen:   r.Facts.NSECSeen,
		Queries:    r.Queries,
	}
	for _, p := range r.Facts.NSEC3PARAMs {
		out.NSEC3Params = append(out.NSEC3Params, p.String())
	}
	for _, h := range r.Facts.NSHosts {
		out.NSHosts = append(out.NSHosts, h.String())
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
	}
	return e.WriteAny(out)
}

// Encode writes one result as a JSON line (one-shot convenience; bulk
// writers should hold an Encoder).
func Encode(w io.Writer, r Result) error {
	return NewEncoder(w).Write(r)
}
