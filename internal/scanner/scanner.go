// Package scanner is the bulk measurement engine of §4.1 — the role
// zdns played in the paper: a worker pool with token-bucket rate
// limiting that, for each registered domain, queries DNSKEY (DNSSEC
// enablement), NSEC3PARAM and NS, and then a random non-existent
// subdomain to elicit the NSEC3 records from the negative response.
// Results stream out as compliance.ZoneFacts ready for classification,
// or as NDJSON via the Encode helpers (cmd/nsec3scan).
package scanner

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/netip"
	"sync"
	"time"

	"repro/internal/compliance"
	"repro/internal/dnswire"
	"repro/internal/netsim"
)

// Config assembles a scanner.
type Config struct {
	// Exchanger is the transport.
	Exchanger netsim.Exchanger
	// Resolver is the recursive resolver all queries go through (the
	// paper used Cloudflare's 1.1.1.1).
	Resolver netip.AddrPort
	// Workers is the concurrency (default 32).
	Workers int
	// QPS caps the aggregate query rate; 0 disables the limiter. The
	// paper limited itself to 14.7 K requests per second on average
	// (Appendix A).
	QPS int
	// Seed drives the random probe labels.
	Seed uint64
	// Timeout bounds each query (default 5s).
	Timeout time.Duration
}

// Result is one scanned domain: its facts plus scan metadata.
type Result struct {
	Facts compliance.ZoneFacts
	// Queries is how many DNS queries the scan of this domain used.
	Queries int
	// Err is a transport-level failure (the domain may be retried).
	Err error
}

// Scanner scans domains through a recursive resolver.
type Scanner struct {
	cfg     Config
	limiter *tokenBucket

	mu  sync.Mutex
	rng *rand.Rand

	idMu   sync.Mutex
	nextID uint16
}

// New creates a scanner.
func New(cfg Config) *Scanner {
	if cfg.Workers <= 0 {
		cfg.Workers = 32
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	s := &Scanner{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x5851F42D4C957F2D)),
	}
	if cfg.QPS > 0 {
		s.limiter = newTokenBucket(cfg.QPS)
	}
	return s
}

// randomLabel generates the random-subdomain probe label (cache
// busting plus negative-response elicitation, §4.1).
func (s *Scanner) randomLabel() string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	s.mu.Lock()
	defer s.mu.Unlock()
	b := make([]byte, 16)
	for i := range b {
		b[i] = alphabet[s.rng.IntN(len(alphabet))]
	}
	return "zz-probe-" + string(b)
}

func (s *Scanner) id() uint16 {
	s.idMu.Lock()
	defer s.idMu.Unlock()
	s.nextID++
	return s.nextID
}

// query sends one recursive query (RD+CD+DO) through the resolver.
func (s *Scanner) query(ctx context.Context, qname dnswire.Name, qtype dnswire.Type) (*dnswire.Message, error) {
	if s.limiter != nil {
		if err := s.limiter.wait(ctx); err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithTimeout(ctx, s.cfg.Timeout)
	defer cancel()
	q := dnswire.NewQuery(s.id(), qname, qtype, true)
	q.Header.CheckingDisabled = true
	return s.cfg.Exchanger.Exchange(ctx, s.cfg.Resolver, q)
}

// ScanDomain runs the §4.1 probe sequence for one registered domain.
func (s *Scanner) ScanDomain(ctx context.Context, domain dnswire.Name) Result {
	res := Result{Facts: compliance.ZoneFacts{Domain: domain}}

	// 1. DNSKEY: the DNSSEC-enablement test.
	msg, err := s.query(ctx, domain, dnswire.TypeDNSKEY)
	if err != nil {
		res.Err = fmt.Errorf("scanner: DNSKEY query: %w", err)
		return res
	}
	res.Queries++
	for _, rr := range msg.Answers {
		if k, ok := rr.Data.(dnswire.DNSKEY); ok {
			res.Facts.DNSKEYs = append(res.Facts.DNSKEYs, k)
		}
	}
	if len(res.Facts.DNSKEYs) == 0 {
		return res // not DNSSEC-enabled: no further queries (§4.1)
	}

	// 2. NSEC3PARAM.
	msg, err = s.query(ctx, domain, dnswire.TypeNSEC3PARAM)
	if err != nil {
		res.Err = fmt.Errorf("scanner: NSEC3PARAM query: %w", err)
		return res
	}
	res.Queries++
	for _, rr := range msg.Answers {
		if p, ok := rr.Data.(dnswire.NSEC3PARAM); ok {
			res.Facts.NSEC3PARAMs = append(res.Facts.NSEC3PARAMs, p)
		}
	}

	// 3. NS (operator attribution).
	msg, err = s.query(ctx, domain, dnswire.TypeNS)
	if err != nil {
		res.Err = fmt.Errorf("scanner: NS query: %w", err)
		return res
	}
	res.Queries++
	for _, rr := range msg.Answers {
		if ns, ok := rr.Data.(dnswire.NS); ok {
			res.Facts.NSHosts = append(res.Facts.NSHosts, ns.Host)
		}
	}

	// 4. Random subdomain: elicit NSEC3 (or NSEC) from the negative
	// response (or from a wildcard expansion's proof).
	probe, err := domain.Child(s.randomLabel())
	if err != nil {
		res.Err = err
		return res
	}
	msg, err = s.query(ctx, probe, dnswire.TypeA)
	if err != nil {
		res.Err = fmt.Errorf("scanner: probe query: %w", err)
		return res
	}
	res.Queries++
	for _, rr := range msg.Authority {
		switch d := rr.Data.(type) {
		case dnswire.NSEC3:
			res.Facts.NSEC3s = append(res.Facts.NSEC3s, d)
		case dnswire.NSEC:
			res.Facts.NSECSeen = true
		}
	}
	return res
}

// ScanAll scans domains concurrently and invokes emit for every result
// (emit is called from multiple goroutines; it must be safe or the
// caller serializes with a channel).
func (s *Scanner) ScanAll(ctx context.Context, domains []dnswire.Name, emit func(Result)) error {
	jobs := make(chan dnswire.Name)
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range jobs {
				emit(s.ScanDomain(ctx, d))
			}
		}()
	}
	var err error
feed:
	for _, d := range domains {
		select {
		case jobs <- d:
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return err
}

// tokenBucket is a simple QPS limiter.
type tokenBucket struct {
	tick *time.Ticker
}

func newTokenBucket(qps int) *tokenBucket {
	return &tokenBucket{tick: time.NewTicker(time.Second / time.Duration(qps))}
}

func (b *tokenBucket) wait(ctx context.Context) error {
	select {
	case <-b.tick.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// resultJSON is the NDJSON encoding of a Result (zdns-style output).
type resultJSON struct {
	Domain      string   `json:"domain"`
	DNSSEC      bool     `json:"dnssec_enabled"`
	NSEC3Params []string `json:"nsec3param,omitempty"`
	NSEC3Count  int      `json:"nsec3_records,omitempty"`
	NSECSeen    bool     `json:"nsec_seen,omitempty"`
	NSHosts     []string `json:"ns,omitempty"`
	Queries     int      `json:"queries"`
	Error       string   `json:"error,omitempty"`
}

// Encode writes one result as a JSON line.
func Encode(w io.Writer, r Result) error {
	out := resultJSON{
		Domain:     r.Facts.Domain.String(),
		DNSSEC:     len(r.Facts.DNSKEYs) > 0,
		NSEC3Count: len(r.Facts.NSEC3s),
		NSECSeen:   r.Facts.NSECSeen,
		Queries:    r.Queries,
	}
	for _, p := range r.Facts.NSEC3PARAMs {
		out.NSEC3Params = append(out.NSEC3Params, p.String())
	}
	for _, h := range r.Facts.NSHosts {
		out.NSHosts = append(out.NSHosts, h.String())
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
