package scanner

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrClosed is returned for queries that were waiting on the rate
// limiter when the scanner was closed.
var ErrClosed = errors.New("scanner: closed")

// tokenBucket is a burstable QPS limiter. Tokens accrue at rate per
// second up to burst; each query takes one token, sleeping when the
// bucket runs dry. There is no background goroutine or ticker to leak:
// refill happens arithmetically on each reservation, and Stop only
// wakes blocked waiters on shutdown.
type tokenBucket struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	tokens  float64
	last    time.Time
	done    chan struct{}
	stopped bool
}

func newTokenBucket(qps, burst int) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{
		rate:   float64(qps),
		burst:  float64(burst),
		tokens: float64(burst),
		done:   make(chan struct{}),
	}
}

// reserve takes one token and returns how long the caller must sleep
// before using it. Tokens may go negative — that is the reservation of
// a future token, which keeps the long-run rate exact while allowing
// bursts up to the bucket capacity.
func (b *tokenBucket) reserve(now time.Time) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	b.tokens--
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}

// wait blocks until a token is available, the context is done, or the
// bucket is stopped.
func (b *tokenBucket) wait(ctx context.Context) error {
	d := b.reserve(time.Now())
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-b.done:
		return ErrClosed
	}
}

// Stop wakes every blocked waiter; subsequent waits fail with
// ErrClosed. Safe to call more than once.
func (b *tokenBucket) Stop() {
	b.mu.Lock()
	if !b.stopped {
		b.stopped = true
		close(b.done)
	}
	b.mu.Unlock()
}
