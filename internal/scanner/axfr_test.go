package scanner

import (
	"context"
	"errors"
	"net/netip"
	"testing"

	"repro/internal/authserver"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/zone"
)

func axfrWorld(t *testing.T) (*netsim.Network, *authserver.Server, netip.AddrPort, *zone.Signed) {
	t.Helper()
	apex := dnswire.MustParseName("se")
	z := zone.New(apex, 300)
	z.MustAdd(dnswire.RR{Name: apex, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.SOA{
		MName: apex.MustChild("ns"), RName: apex.MustChild("hostmaster"),
		Serial: 7, Refresh: 1, Retry: 1, Expire: 1, Minimum: 300,
	}})
	z.MustAdd(dnswire.RR{Name: apex, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NS{Host: apex.MustChild("ns")}})
	z.MustAdd(dnswire.RR{Name: apex.MustChild("ns"), Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.53")}})
	// Three delegated registered domains, one with two NS records.
	for _, child := range []string{"alpha", "beta", "gamma"} {
		cApex := apex.MustChild(child)
		z.MustAdd(dnswire.RR{Name: cApex, Class: dnswire.ClassIN, TTL: 3600,
			Data: dnswire.NS{Host: dnswire.MustParseName("ns1.op.example")}})
	}
	z.MustAdd(dnswire.RR{Name: apex.MustChild("alpha"), Class: dnswire.ClassIN, TTL: 3600,
		Data: dnswire.NS{Host: dnswire.MustParseName("ns2.op.example")}})
	signed, err := z.Sign(zone.SignConfig{
		Denial: zone.DenialNSEC3, OptOut: true,
		Inception: 1709251200, Expiration: 1717200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := authserver.New()
	srv.AddZone(signed)
	net := netsim.NewNetwork(1)
	addr := netsim.Addr4(192, 6, 0, 1)
	net.Register(addr, srv)
	return net, srv, addr, signed
}

func TestTransferRefusedByDefault(t *testing.T) {
	net, _, addr, _ := axfrWorld(t)
	_, err := Transfer(context.Background(), net, addr, dnswire.MustParseName("se"))
	if !errors.Is(err, ErrTransferRefused) {
		t.Fatalf("err = %v", err)
	}
}

func TestTransferOpenZone(t *testing.T) {
	net, srv, addr, signed := axfrWorld(t)
	srv.SetTransferPolicy(dnswire.MustParseName("se"), zone.TransferOpen)
	rrs, err := Transfer(context.Background(), net, addr, dnswire.MustParseName("se"))
	if err != nil {
		t.Fatal(err)
	}
	// The transfer carries the full signed zone minus the SOA markers.
	want := len(signed.AllRecords()) - 2
	if len(rrs) != want {
		t.Fatalf("transferred %d records, want %d", len(rrs), want)
	}
	// No SOA inside the body.
	for _, rr := range rrs {
		if rr.Type() == dnswire.TypeSOA {
			t.Fatal("SOA inside transfer body")
		}
	}
	// Delegation counting: three registered domains (alpha counted
	// once despite two NS records).
	if got := CountDelegations(dnswire.MustParseName("se"), rrs); got != 3 {
		t.Fatalf("CountDelegations = %d, want 3", got)
	}
}

func TestTransferNonApexNotImplemented(t *testing.T) {
	net, srv, addr, _ := axfrWorld(t)
	srv.SetTransferPolicy(dnswire.MustParseName("se"), zone.TransferOpen)
	_, err := Transfer(context.Background(), net, addr, dnswire.MustParseName("alpha.se"))
	if err == nil {
		t.Fatal("non-apex AXFR accepted")
	}
}

func TestAllRecordsSOADelimited(t *testing.T) {
	_, _, _, signed := axfrWorld(t)
	all := signed.AllRecords()
	if all[0].Type() != dnswire.TypeSOA || all[len(all)-1].Type() != dnswire.TypeSOA {
		t.Fatal("AllRecords not SOA-delimited")
	}
	// The body contains the NSEC3 chain and RRSIGs.
	var n3, sig int
	for _, rr := range all {
		switch rr.Type() {
		case dnswire.TypeNSEC3:
			n3++
		case dnswire.TypeRRSIG:
			sig++
		}
	}
	if n3 == 0 || sig == 0 {
		t.Fatalf("transfer body incomplete: nsec3=%d rrsig=%d", n3, sig)
	}
}
