package scanner

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/compliance"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/nsec3"
	"repro/internal/population"
	"repro/internal/resolver"
	"repro/internal/respop"
	"repro/internal/testbed"
	"repro/internal/zone"
)

// scanWorld builds a tiny universe, deploys it, installs a recursive
// resolver at 1.1.1.1, and returns (network, resolver addr, universe).
func scanWorld(t testing.TB, n int) (*netsim.Network, *population.Universe) {
	t.Helper()
	u, err := population.Generate(population.Config{Registered: n, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(9)
	dep, err := population.Deploy(u, net, 1709251200, 1717200000)
	if err != nil {
		t.Fatal(err)
	}
	res := resolver.New(resolver.Config{
		Roots:           dep.Hierarchy.Roots,
		TrustAnchor:     dep.Hierarchy.TrustAnchor,
		Exchanger:       net,
		Policy:          respop.Cloudflare.Policy,
		Now:             func() uint32 { return 1712000000 },
		MaxCacheEntries: 1 << 16,
	})
	net.Register(netsim.Addr4(1, 1, 1, 1), res)
	return net, u
}

func newScanner(net *netsim.Network, qps int) *Scanner {
	return New(Config{
		Exchanger: net,
		Resolver:  netsim.Addr4(1, 1, 1, 1),
		Workers:   8,
		QPS:       qps,
		Seed:      7,
	})
}

func TestScanDomainClassifications(t *testing.T) {
	net, u := scanWorld(t, 400)
	sc := newScanner(net, 0)
	// Find one NSEC3, one NSEC-signed, and one unsigned domain.
	var nsec3Spec, nsecSpec, unsignedSpec *population.DomainSpec
	for i := range u.Domains {
		d := &u.Domains[i]
		switch {
		case d.NSEC3 && nsec3Spec == nil:
			nsec3Spec = d
		case d.DNSSEC && !d.NSEC3 && nsecSpec == nil:
			nsecSpec = d
		case !d.DNSSEC && unsignedSpec == nil:
			unsignedSpec = d
		}
	}
	if nsec3Spec == nil || nsecSpec == nil || unsignedSpec == nil {
		t.Fatal("universe too small to cover all classes")
	}

	r := sc.ScanDomain(context.Background(), nsec3Spec.Name)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	c := compliance.Classify(r.Facts)
	if !c.NSEC3Enabled {
		t.Fatalf("NSEC3 domain not detected: %+v", r.Facts)
	}
	if c.Iterations != nsec3Spec.Iterations || c.SaltLen != nsec3Spec.SaltLen {
		t.Fatalf("params %d/%d, spec %d/%d", c.Iterations, c.SaltLen,
			nsec3Spec.Iterations, nsec3Spec.SaltLen)
	}
	if len(r.Facts.NSHosts) == 0 {
		t.Fatal("no NS hosts scanned")
	}
	if r.Queries != 4 {
		t.Fatalf("NSEC3 domain used %d queries, want 4", r.Queries)
	}

	r = sc.ScanDomain(context.Background(), nsecSpec.Name)
	c = compliance.Classify(r.Facts)
	if !c.DNSSECEnabled || c.NSEC3Enabled || !r.Facts.NSECSeen {
		t.Fatalf("NSEC domain misclassified: %+v", c)
	}

	r = sc.ScanDomain(context.Background(), unsignedSpec.Name)
	c = compliance.Classify(r.Facts)
	if c.DNSSECEnabled {
		t.Fatalf("unsigned domain classified as DNSSEC: %+v", r.Facts)
	}
	if r.Queries != 1 {
		t.Fatalf("unsigned domain used %d queries, want 1 (early exit)", r.Queries)
	}
}

func TestScanAllConcurrent(t *testing.T) {
	net, u := scanWorld(t, 300)
	sc := newScanner(net, 0)
	names := make([]dnswire.Name, 0, 100)
	for i := range u.Domains[:100] {
		names = append(names, u.Domains[i].Name)
	}
	var mu sync.Mutex
	var got []Result
	err := sc.ScanAll(context.Background(), names, func(r Result) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("emitted %d results", len(got))
	}
	for _, r := range got {
		if r.Err != nil {
			t.Fatalf("scan error for %s: %v", r.Facts.Domain, r.Err)
		}
	}
}

func TestScanAllHonorsContext(t *testing.T) {
	net, u := scanWorld(t, 300)
	sc := newScanner(net, 1) // 1 qps: guaranteed to outlive the context
	names := make([]dnswire.Name, 0, 50)
	for i := range u.Domains[:50] {
		names = append(names, u.Domains[i].Name)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := sc.ScanAll(ctx, names, func(Result) {})
	if err == nil {
		t.Fatal("cancelled scan returned nil error")
	}
}

func TestRandomLabelsUnique(t *testing.T) {
	sc := newScanner(netsim.NewNetwork(1), 0)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		l := sc.randomLabel()
		if seen[l] {
			t.Fatalf("duplicate label %s", l)
		}
		if !strings.HasPrefix(l, "zz-probe-") {
			t.Fatalf("label %q misses prefix", l)
		}
		seen[l] = true
	}
}

func TestEncodeNDJSON(t *testing.T) {
	r := Result{
		Facts: compliance.ZoneFacts{
			Domain:  dnswire.MustParseName("a.example"),
			DNSKEYs: []dnswire.DNSKEY{{Flags: 256, Protocol: 3}},
			NSEC3PARAMs: []dnswire.NSEC3PARAM{{
				HashAlg: 1, Iterations: 5, Salt: []byte{0xAB},
			}},
			NSEC3s:  []dnswire.NSEC3{{HashAlg: 1}},
			NSHosts: []dnswire.Name{dnswire.MustParseName("ns1.op.example")},
		},
		Queries: 4,
	}
	var buf bytes.Buffer
	if err := Encode(&buf, r); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["domain"] != "a.example." || decoded["dnssec_enabled"] != true {
		t.Fatalf("decoded %v", decoded)
	}
	if decoded["nsec3param"].([]any)[0] != "1 0 5 AB" {
		t.Fatalf("nsec3param = %v", decoded["nsec3param"])
	}
}

// TestScanHighIterationDomainViaCD verifies the scanner retrieves NSEC3
// records even from zones a validating resolver would SERVFAIL on —
// the CD bit at work.
func TestScanHighIterationDomainViaCD(t *testing.T) {
	// Build a dedicated world with one 500-iteration domain behind a
	// Cloudflare-policy resolver (SERVFAIL above 150 without CD).
	b := testbed.NewBuilder(1709251200, 1717200000)
	b.AddZone(testbed.ZoneSpec{
		Apex: dnswire.Root, Sign: zone.SignConfig{Denial: zone.DenialNSEC},
		Server: netsim.Addr4(198, 41, 0, 4),
	})
	b.AddZone(testbed.ZoneSpec{
		Apex: dnswire.MustParseName("test"), Sign: zone.SignConfig{Denial: zone.DenialNSEC},
		Server: netsim.Addr4(192, 5, 6, 30),
	})
	b.AddZone(testbed.ZoneSpec{
		Apex: dnswire.MustParseName("heavy.test"),
		Sign: zone.SignConfig{
			Denial: zone.DenialNSEC3,
			NSEC3:  nsec3.Params{Iterations: 500, Salt: []byte{1, 2}},
		},
		Server: netsim.Addr4(203, 0, 113, 50),
	})
	net := netsim.NewNetwork(3)
	h, err := b.Build(net)
	if err != nil {
		t.Fatal(err)
	}
	res := resolver.New(resolver.Config{
		Roots: h.Roots, TrustAnchor: h.TrustAnchor, Exchanger: net,
		Policy: respop.Cloudflare.Policy,
		Now:    func() uint32 { return 1712000000 },
	})
	net.Register(netsim.Addr4(1, 1, 1, 1), res)
	sc := newScanner(net, 0)
	r := sc.ScanDomain(context.Background(), dnswire.MustParseName("heavy.test"))
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	c := compliance.Classify(r.Facts)
	if !c.NSEC3Enabled || c.Iterations != 500 || c.SaltLen != 2 {
		t.Fatalf("heavy domain misread: %+v", c)
	}
}
