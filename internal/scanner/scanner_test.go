package scanner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/compliance"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/nsec3"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/resolver"
	"repro/internal/respop"
	"repro/internal/testbed"
	"repro/internal/zone"
)

// scanWorld builds a tiny universe, deploys it, installs a recursive
// resolver at 1.1.1.1, and returns (network, resolver addr, universe).
func scanWorld(t testing.TB, n int) (*netsim.Network, *population.Universe) {
	t.Helper()
	u, err := population.Generate(population.Config{Registered: n, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(9)
	dep, err := population.Deploy(u, net, 1709251200, 1717200000)
	if err != nil {
		t.Fatal(err)
	}
	res := resolver.New(resolver.Config{
		Roots:           dep.Hierarchy.Roots,
		TrustAnchor:     dep.Hierarchy.TrustAnchor,
		Exchanger:       net,
		Policy:          respop.Cloudflare.Policy,
		Now:             func() uint32 { return 1712000000 },
		MaxCacheEntries: 1 << 16,
	})
	net.Register(netsim.Addr4(1, 1, 1, 1), res)
	return net, u
}

func newScanner(net *netsim.Network, qps int) *Scanner {
	return New(Config{
		Exchanger: net,
		Resolver:  netsim.Addr4(1, 1, 1, 1),
		Workers:   8,
		QPS:       qps,
		Seed:      7,
	})
}

func TestScanDomainClassifications(t *testing.T) {
	net, u := scanWorld(t, 400)
	sc := newScanner(net, 0)
	// Find one NSEC3, one NSEC-signed, and one unsigned domain.
	var nsec3Spec, nsecSpec, unsignedSpec *population.DomainSpec
	for i := range u.Domains {
		d := &u.Domains[i]
		switch {
		case d.NSEC3 && nsec3Spec == nil:
			nsec3Spec = d
		case d.DNSSEC && !d.NSEC3 && nsecSpec == nil:
			nsecSpec = d
		case !d.DNSSEC && unsignedSpec == nil:
			unsignedSpec = d
		}
	}
	if nsec3Spec == nil || nsecSpec == nil || unsignedSpec == nil {
		t.Fatal("universe too small to cover all classes")
	}

	r := sc.ScanDomain(context.Background(), nsec3Spec.Name)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	c := compliance.Classify(r.Facts)
	if !c.NSEC3Enabled {
		t.Fatalf("NSEC3 domain not detected: %+v", r.Facts)
	}
	if c.Iterations != nsec3Spec.Iterations || c.SaltLen != nsec3Spec.SaltLen {
		t.Fatalf("params %d/%d, spec %d/%d", c.Iterations, c.SaltLen,
			nsec3Spec.Iterations, nsec3Spec.SaltLen)
	}
	if len(r.Facts.NSHosts) == 0 {
		t.Fatal("no NS hosts scanned")
	}
	if r.Queries != 4 {
		t.Fatalf("NSEC3 domain used %d queries, want 4", r.Queries)
	}

	r = sc.ScanDomain(context.Background(), nsecSpec.Name)
	c = compliance.Classify(r.Facts)
	if !c.DNSSECEnabled || c.NSEC3Enabled || !r.Facts.NSECSeen {
		t.Fatalf("NSEC domain misclassified: %+v", c)
	}

	r = sc.ScanDomain(context.Background(), unsignedSpec.Name)
	c = compliance.Classify(r.Facts)
	if c.DNSSECEnabled {
		t.Fatalf("unsigned domain classified as DNSSEC: %+v", r.Facts)
	}
	if r.Queries != 1 {
		t.Fatalf("unsigned domain used %d queries, want 1 (early exit)", r.Queries)
	}
}

// countingSink is one worker's private result store — no mutex needed,
// the point of the per-worker sink API.
type countingSink struct {
	results []Result
}

func (c *countingSink) Consume(r Result) { c.results = append(c.results, r) }

func TestScanAllPerWorkerSinks(t *testing.T) {
	net, u := scanWorld(t, 300)
	sc := newScanner(net, 0)
	defer sc.Close()
	names := make([]dnswire.Name, 0, 100)
	for i := range u.Domains[:100] {
		names = append(names, u.Domains[i].Name)
	}
	var sinks []*countingSink
	err := sc.ScanAll(context.Background(), Names(names), func(worker int) Sink {
		if worker != len(sinks) {
			t.Errorf("sink factory called with worker %d, want %d", worker, len(sinks))
		}
		s := &countingSink{}
		sinks = append(sinks, s)
		return s
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sinks) != 8 {
		t.Fatalf("%d sinks created, want one per worker", len(sinks))
	}
	total := 0
	seen := map[dnswire.Name]bool{}
	for _, s := range sinks {
		for _, r := range s.results {
			if r.Err != nil {
				t.Fatalf("scan error for %s: %v", r.Facts.Domain, r.Err)
			}
			if seen[r.Facts.Domain] {
				t.Fatalf("domain %s scanned twice", r.Facts.Domain)
			}
			seen[r.Facts.Domain] = true
			total++
		}
	}
	if total != 100 {
		t.Fatalf("emitted %d results across sinks", total)
	}
}

func TestScanAllHonorsContext(t *testing.T) {
	net, u := scanWorld(t, 300)
	sc := New(Config{
		Exchanger: net, Resolver: netsim.Addr4(1, 1, 1, 1),
		Workers: 8, QPS: 1, Burst: 1, Seed: 7, // 1 qps: outlives the context
	})
	defer sc.Close()
	names := make([]dnswire.Name, 0, 50)
	for i := range u.Domains[:50] {
		names = append(names, u.Domains[i].Name)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := sc.ScanAll(ctx, Names(names), func(int) Sink { return SinkFunc(func(Result) {}) })
	if err == nil {
		t.Fatal("cancelled scan returned nil error")
	}
}

// TestScanAllMidScanCancellation cancels from inside a sink — the
// shape of a consumer aborting a shard mid-stream. The feed must stop,
// in-flight work must drain, and the context error must surface.
func TestScanAllMidScanCancellation(t *testing.T) {
	net, u := scanWorld(t, 300)
	sc := newScanner(net, 0)
	defer sc.Close()
	names := make([]dnswire.Name, 0, 200)
	for i := range u.Domains[:200] {
		names = append(names, u.Domains[i].Name)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	consumed := 0
	err := sc.ScanAll(ctx, Names(names), func(int) Sink {
		return SinkFunc(func(Result) {
			mu.Lock()
			consumed++
			if consumed == 5 {
				cancel()
			}
			mu.Unlock()
		})
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if consumed < 5 || consumed == 200 {
		t.Fatalf("consumed %d results, want partial drain", consumed)
	}
}

// flakyExchanger fails a fixed prefix of every query's attempts: calls
// succeed only on every (failures+1)-th global attempt. With a single
// worker the per-query attempt pattern is deterministic.
type flakyExchanger struct {
	inner    netsim.Exchanger
	failures int
	calls    int
	fails    int
}

func (f *flakyExchanger) Exchange(ctx context.Context, srv netip.AddrPort, q *dnswire.Message) (*dnswire.Message, error) {
	f.calls++
	if f.calls%(f.failures+1) != 0 {
		f.fails++
		return nil, errors.New("flaky transport")
	}
	return f.inner.Exchange(ctx, srv, q)
}

func TestRetryBackoffRecoversTransientFailures(t *testing.T) {
	net, u := scanWorld(t, 300)
	flaky := &flakyExchanger{inner: net, failures: 2}
	sc := New(Config{
		Exchanger: flaky, Resolver: netsim.Addr4(1, 1, 1, 1),
		Workers: 1, Seed: 7,
		Retries: 2, RetryBackoff: time.Millisecond,
	})
	defer sc.Close()
	var spec *population.DomainSpec
	for i := range u.Domains {
		if u.Domains[i].NSEC3 {
			spec = &u.Domains[i]
			break
		}
	}
	r := sc.ScanDomain(context.Background(), spec.Name)
	if r.Err != nil {
		t.Fatalf("retries did not mask transient loss: %v", r.Err)
	}
	if !compliance.Classify(r.Facts).NSEC3Enabled {
		t.Fatal("retried scan misclassified")
	}
	if flaky.fails == 0 {
		t.Fatal("flaky transport never failed — test is vacuous")
	}
}

func TestRetryGivesUpAfterBudget(t *testing.T) {
	alwaysDown := &flakyExchanger{inner: nil, failures: 1 << 30}
	sc := New(Config{
		Exchanger: alwaysDown, Resolver: netsim.Addr4(1, 1, 1, 1),
		Workers: 1, Seed: 7,
		Retries: 3, RetryBackoff: time.Millisecond,
	})
	defer sc.Close()
	r := sc.ScanDomain(context.Background(), dnswire.MustParseName("down.example"))
	if r.Err == nil {
		t.Fatal("scan of a dead transport succeeded")
	}
	// The first probe (DNSKEY) is the only query: 1 try + 3 retries.
	if alwaysDown.calls != 4 {
		t.Fatalf("%d transport calls, want 4 (1 try + 3 retries)", alwaysDown.calls)
	}
}

func TestTokenBucketBurstAndRefill(t *testing.T) {
	b := newTokenBucket(100, 5)
	start := time.Unix(1712000000, 0)
	for i := 0; i < 5; i++ {
		if d := b.reserve(start); d != 0 {
			t.Fatalf("burst token %d delayed by %v", i, d)
		}
	}
	// Bucket dry: the next reservation waits one token period (10ms).
	if d := b.reserve(start); d < 9*time.Millisecond || d > 11*time.Millisecond {
		t.Fatalf("dry-bucket delay %v, want ~10ms", d)
	}
	// After a second of idling the bucket refills to its burst cap —
	// not to one token per elapsed tick.
	later := start.Add(time.Second)
	for i := 0; i < 5; i++ {
		if d := b.reserve(later); d > 0 {
			t.Fatalf("refilled token %d delayed by %v", i, d)
		}
	}
	if d := b.reserve(later); d <= 0 {
		t.Fatal("bucket exceeded burst capacity after refill")
	}
}

func TestTokenBucketStopWakesWaiters(t *testing.T) {
	b := newTokenBucket(1, 1)
	if err := b.wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- b.wait(context.Background()) }() // blocks ~1s
	time.Sleep(10 * time.Millisecond)
	b.Stop()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Fatalf("stopped wait returned %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Stop did not wake the blocked waiter")
	}
	b.Stop() // idempotent
}

func TestRandomLabelsUnique(t *testing.T) {
	sc := newScanner(netsim.NewNetwork(1), 0)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		l := sc.randomLabel()
		if seen[l] {
			t.Fatalf("duplicate label %s", l)
		}
		if !strings.HasPrefix(l, "zz-probe-") {
			t.Fatalf("label %q misses prefix", l)
		}
		seen[l] = true
	}
}

func TestEncodeNDJSON(t *testing.T) {
	r := Result{
		Facts: compliance.ZoneFacts{
			Domain:  dnswire.MustParseName("a.example"),
			DNSKEYs: []dnswire.DNSKEY{{Flags: 256, Protocol: 3}},
			NSEC3PARAMs: []dnswire.NSEC3PARAM{{
				HashAlg: 1, Iterations: 5, Salt: []byte{0xAB},
			}},
			NSEC3s:  []dnswire.NSEC3{{HashAlg: 1}},
			NSHosts: []dnswire.Name{dnswire.MustParseName("ns1.op.example")},
		},
		Queries: 4,
	}
	var buf bytes.Buffer
	if err := Encode(&buf, r); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["domain"] != "a.example." || decoded["dnssec_enabled"] != true {
		t.Fatalf("decoded %v", decoded)
	}
	if decoded["nsec3param"].([]any)[0] != "1 0 5 AB" {
		t.Fatalf("nsec3param = %v", decoded["nsec3param"])
	}
}

// TestEncoderReuse: one Encoder shared across writes (as the per-worker
// sinks in cmd/nsec3scan share it) emits one valid JSON object per line.
func TestEncoderReuse(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	domains := []string{"a.example", "b.example", "c.example"}
	for _, d := range domains {
		r := Result{Facts: compliance.ZoneFacts{Domain: dnswire.MustParseName(d)}, Queries: 1}
		if err := enc.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != len(domains) {
		t.Fatalf("%d NDJSON lines, want %d", len(lines), len(domains))
	}
	for i, line := range lines {
		var decoded map[string]any
		if err := json.Unmarshal([]byte(line), &decoded); err != nil {
			t.Fatalf("line %d invalid: %v", i, err)
		}
		if decoded["domain"] != domains[i]+"." {
			t.Fatalf("line %d domain %v, want %s.", i, decoded["domain"], domains[i])
		}
	}
}

// TestJitterDeterministicAndBounded: equal jitter must stay inside
// [d/2, d) and, under a fixed seed, reproduce the same sequence — the
// property that keeps retry schedules replayable.
func TestJitterDeterministicAndBounded(t *testing.T) {
	mk := func() *Scanner {
		return New(Config{Exchanger: netsim.NewNetwork(1), Seed: 42})
	}
	a, b := mk(), mk()
	base := 80 * time.Millisecond
	for i := 0; i < 200; i++ {
		ja := a.jitter(base)
		if ja < base/2 || ja >= base {
			t.Fatalf("jitter %v outside [%v, %v)", ja, base/2, base)
		}
		if jb := b.jitter(base); jb != ja {
			t.Fatalf("draw %d: same seed diverged: %v vs %v", i, ja, jb)
		}
	}
	if d := a.jitter(1); d != 1 {
		t.Fatalf("degenerate backoff mangled: %v", d)
	}
}

// TestScannerMetrics drives a flaky transport with an instrumented
// scanner and checks the counters account for every attempt, retry,
// and backoff sleep.
func TestScannerMetrics(t *testing.T) {
	net, u := scanWorld(t, 300)
	flaky := &flakyExchanger{inner: net, failures: 2}
	reg := obs.NewRegistry()
	sc := New(Config{
		Exchanger: flaky, Resolver: netsim.Addr4(1, 1, 1, 1),
		Workers: 1, Seed: 7,
		Retries: 2, RetryBackoff: time.Millisecond,
		Obs: reg,
	})
	defer sc.Close()
	var spec *population.DomainSpec
	for i := range u.Domains {
		if u.Domains[i].NSEC3 {
			spec = &u.Domains[i]
			break
		}
	}
	r := sc.ScanDomain(context.Background(), spec.Name)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	queries := reg.Counter("scanner_queries_total", "").Value()
	if queries != uint64(flaky.calls) {
		t.Errorf("scanner_queries_total %d, transport saw %d calls", queries, flaky.calls)
	}
	retries := reg.Counter("scanner_retries_total", "").Value()
	if retries != uint64(flaky.fails) {
		t.Errorf("scanner_retries_total %d, want %d (one retry per failure)", retries, flaky.fails)
	}
	if v := reg.Counter("scanner_retry_backoff_nanoseconds_total", "").Value(); v == 0 {
		t.Error("no backoff time recorded despite retries")
	}
	rtt := reg.Histogram("scanner_query_rtt_seconds", "", obs.DurationBuckets())
	if rtt.Count() != queries {
		t.Errorf("RTT histogram saw %d observations, want %d", rtt.Count(), queries)
	}
}

// TestScannerLimiterWaitMetric: a starved token bucket must show up in
// the limiter-wait counter.
func TestScannerLimiterWaitMetric(t *testing.T) {
	net, u := scanWorld(t, 300)
	reg := obs.NewRegistry()
	sc := New(Config{
		Exchanger: net, Resolver: netsim.Addr4(1, 1, 1, 1),
		Workers: 2, QPS: 200, Burst: 1, Seed: 7,
		Obs: reg,
	})
	defer sc.Close()
	for i := 0; i < 3; i++ {
		if r := sc.ScanDomain(context.Background(), u.Domains[i].Name); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if v := reg.Counter("scanner_limiter_wait_nanoseconds_total", "").Value(); v == 0 {
		t.Error("limiter wait not recorded despite a dry bucket")
	}
}

// TestEncoderWriteAnyInterleaves: scan results and tracer spans share
// one Encoder, each line staying valid standalone JSON.
func TestEncoderWriteAnyInterleaves(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	tr := obs.NewTracer(enc)
	sp := tr.Start("scan", 1)
	r := Result{Facts: compliance.ZoneFacts{Domain: dnswire.MustParseName("a.example")}, Queries: 1}
	if err := enc.Write(r); err != nil {
		t.Fatal(err)
	}
	sp.End()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2 (result + span)", len(lines))
	}
	var res struct {
		Domain string `json:"domain"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &res); err != nil || res.Domain != "a.example." {
		t.Fatalf("result line: %v / %+v", err, res)
	}
	var span struct {
		Span  string `json:"span"`
		Shard int    `json:"shard"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &span); err != nil || span.Span != "scan" || span.Shard != 1 {
		t.Fatalf("span line: %v / %+v", err, span)
	}
}

// TestScanHighIterationDomainViaCD verifies the scanner retrieves NSEC3
// records even from zones a validating resolver would SERVFAIL on —
// the CD bit at work.
func TestScanHighIterationDomainViaCD(t *testing.T) {
	// Build a dedicated world with one 500-iteration domain behind a
	// Cloudflare-policy resolver (SERVFAIL above 150 without CD).
	b := testbed.NewBuilder(1709251200, 1717200000)
	b.AddZone(testbed.ZoneSpec{
		Apex: dnswire.Root, Sign: zone.SignConfig{Denial: zone.DenialNSEC},
		Server: netsim.Addr4(198, 41, 0, 4),
	})
	b.AddZone(testbed.ZoneSpec{
		Apex: dnswire.MustParseName("test"), Sign: zone.SignConfig{Denial: zone.DenialNSEC},
		Server: netsim.Addr4(192, 5, 6, 30),
	})
	b.AddZone(testbed.ZoneSpec{
		Apex: dnswire.MustParseName("heavy.test"),
		Sign: zone.SignConfig{
			Denial: zone.DenialNSEC3,
			NSEC3:  nsec3.Params{Iterations: 500, Salt: []byte{1, 2}},
		},
		Server: netsim.Addr4(203, 0, 113, 50),
	})
	net := netsim.NewNetwork(3)
	h, err := b.Build(net)
	if err != nil {
		t.Fatal(err)
	}
	res := resolver.New(resolver.Config{
		Roots: h.Roots, TrustAnchor: h.TrustAnchor, Exchanger: net,
		Policy: respop.Cloudflare.Policy,
		Now:    func() uint32 { return 1712000000 },
	})
	net.Register(netsim.Addr4(1, 1, 1, 1), res)
	sc := newScanner(net, 0)
	r := sc.ScanDomain(context.Background(), dnswire.MustParseName("heavy.test"))
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	c := compliance.Classify(r.Facts)
	if !c.NSEC3Enabled || c.Iterations != 500 || c.SaltLen != 2 {
		t.Fatalf("heavy domain misread: %+v", c)
	}
}
