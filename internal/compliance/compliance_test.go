package compliance

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/dnswire"
	"repro/internal/testbed"
)

func facts(params []dnswire.NSEC3PARAM, nsec3s []dnswire.NSEC3, keys int) ZoneFacts {
	f := ZoneFacts{Domain: "example.com.", NSEC3PARAMs: params, NSEC3s: nsec3s}
	for i := 0; i < keys; i++ {
		f.DNSKEYs = append(f.DNSKEYs, dnswire.DNSKEY{Flags: dnswire.DNSKEYFlagZone, Protocol: 3})
	}
	return f
}

func n3(iters uint16, salt []byte, optOut bool) dnswire.NSEC3 {
	var flags uint8
	if optOut {
		flags = dnswire.NSEC3FlagOptOut
	}
	return dnswire.NSEC3{HashAlg: 1, Flags: flags, Iterations: iters, Salt: salt,
		NextHashedOwner: make([]byte, 20)}
}

func p3(iters uint16, salt []byte) dnswire.NSEC3PARAM {
	return dnswire.NSEC3PARAM{HashAlg: 1, Iterations: iters, Salt: salt}
}

func TestCheckRFC5155(t *testing.T) {
	salt := []byte{0xAB}
	cases := []struct {
		name string
		f    ZoneFacts
		want error
	}{
		{"ok", facts([]dnswire.NSEC3PARAM{p3(5, salt)}, []dnswire.NSEC3{n3(5, salt, false), n3(5, salt, false)}, 1), nil},
		{"no param", facts(nil, []dnswire.NSEC3{n3(5, salt, false)}, 1), ErrNoNSEC3Param},
		{"two params", facts([]dnswire.NSEC3PARAM{p3(5, salt), p3(6, salt)}, []dnswire.NSEC3{n3(5, salt, false)}, 1), ErrMultipleParams},
		{"no records", facts([]dnswire.NSEC3PARAM{p3(5, salt)}, nil, 1), ErrNoNSEC3Records},
		{"records disagree", facts([]dnswire.NSEC3PARAM{p3(5, salt)}, []dnswire.NSEC3{n3(5, salt, false), n3(6, salt, false)}, 1), ErrNSEC3Mismatch},
		{"param mismatch", facts([]dnswire.NSEC3PARAM{p3(4, salt)}, []dnswire.NSEC3{n3(5, salt, false)}, 1), ErrParamMismatch},
		{"salt mismatch", facts([]dnswire.NSEC3PARAM{p3(5, nil)}, []dnswire.NSEC3{n3(5, salt, false)}, 1), ErrParamMismatch},
	}
	for _, c := range cases {
		if err := c.f.CheckRFC5155(); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestClassifyZone(t *testing.T) {
	salt := []byte{1, 2, 3}
	// Fully compliant (0 iterations, no salt).
	c := Classify(facts([]dnswire.NSEC3PARAM{p3(0, nil)}, []dnswire.NSEC3{n3(0, nil, false)}, 2))
	if !c.DNSSECEnabled || !c.NSEC3Enabled || !c.Item2OK || !c.Item3OK || !c.BothOK {
		t.Fatalf("compliant: %+v", c)
	}
	// Non-compliant iterations and salt, with opt-out.
	c = Classify(facts([]dnswire.NSEC3PARAM{p3(100, salt)}, []dnswire.NSEC3{n3(100, salt, true)}, 1))
	if c.Item2OK || c.Item3OK || c.BothOK || !c.OptOut {
		t.Fatalf("non-compliant: %+v", c)
	}
	if c.Iterations != 100 || c.SaltLen != 3 {
		t.Fatalf("params: %+v", c)
	}
	// No DNSKEYs: not DNSSEC-enabled regardless of records.
	c = Classify(facts([]dnswire.NSEC3PARAM{p3(0, nil)}, []dnswire.NSEC3{n3(0, nil, false)}, 0))
	if c.DNSSECEnabled || c.NSEC3Enabled {
		t.Fatalf("unsigned: %+v", c)
	}
	// DNSSEC with NSEC only.
	f := facts(nil, nil, 1)
	f.NSECSeen = true
	c = Classify(f)
	if !c.DNSSECEnabled || c.NSEC3Enabled || !c.NSECUsed {
		t.Fatalf("nsec: %+v", c)
	}
}

func TestAggregate(t *testing.T) {
	a := NewAggregate()
	salt := []byte{1}
	a.Add(Classify(facts(nil, nil, 0)))                                                                // unsigned
	a.Add(Classify(facts([]dnswire.NSEC3PARAM{p3(0, nil)}, []dnswire.NSEC3{n3(0, nil, false)}, 1)))    // compliant
	a.Add(Classify(facts([]dnswire.NSEC3PARAM{p3(10, salt)}, []dnswire.NSEC3{n3(10, salt, true)}, 1))) // non-compliant
	f := facts(nil, nil, 1)
	f.NSECSeen = true
	a.Add(Classify(f)) // NSEC-signed
	if a.Total != 4 || a.DNSSECEnabled != 3 || a.NSEC3Enabled != 2 || a.NSECUsed != 1 {
		t.Fatalf("agg: %+v", a)
	}
	if a.Item2OK != 1 || a.Item3OK != 1 || a.BothOK != 1 || a.OptOut != 1 {
		t.Fatalf("agg items: %+v", a)
	}
	if a.MaxIterations != 10 || a.MaxSaltLen != 1 {
		t.Fatalf("agg max: %+v", a)
	}
	if Pct(a.NSEC3Enabled, a.DNSSECEnabled) < 66 {
		t.Fatal("pct wrong")
	}
	if Pct(1, 0) != 0 {
		t.Fatal("Pct(_, 0) must be 0")
	}
}

func TestGuidelinesTable(t *testing.T) {
	g := Guidelines()
	if len(g) != 12 {
		t.Fatalf("%d guidelines, want 12", len(g))
	}
	for i, item := range g {
		if item.Item != i+1 {
			t.Fatalf("item %d at index %d", item.Item, i)
		}
	}
	// Audience split: 1–5 authoritative, 6–12 resolver (Table 1).
	for _, item := range g {
		wantAud := AudienceAuthoritative
		if item.Item >= 6 {
			wantAud = AudienceResolver
		}
		if item.Audience != wantAud {
			t.Errorf("item %d audience %v", item.Item, item.Audience)
		}
	}
	if g[1].Keyword != Must { // Item 2
		t.Error("Item 2 must be MUST")
	}
	if g[6].Keyword != Must { // Item 7
		t.Error("Item 7 must be MUST")
	}
	if g[10].Keyword != MustNot { // Item 11
		t.Error("Item 11 must be MUST NOT")
	}
}

// mkTranscript fabricates a transcript from per-subdomain outcomes.
type outcome struct {
	rcode dnswire.RCode
	ad    bool
	ede   []dnswire.EDECode
}

func mkTranscript(t *testing.T, f func(sub testbed.Subdomain) outcome) *testbed.Transcript {
	t.Helper()
	tr := &testbed.Transcript{Unique: "synthetic"}
	for _, sub := range testbed.Subdomains() {
		o := f(sub)
		obs := testbed.Observation{
			Label: sub.Label, Iterations: sub.Iterations, NXProbe: sub.WantNXDOMAIN,
			RCode: o.rcode, AD: o.ad, RA: true,
		}
		for _, c := range o.ede {
			obs.EDE = append(obs.EDE, dnswire.EDE{Code: c})
		}
		tr.Observations = append(tr.Observations, obs)
	}
	return tr
}

// bindLike simulates an insecure-above-150 validator with EDE 27.
func bindLike(sub testbed.Subdomain) outcome {
	switch sub.Label {
	case "valid":
		return outcome{rcode: dnswire.RCodeNoError, ad: true}
	case "expired", "it-2501-expired":
		return outcome{rcode: dnswire.RCodeServFail}
	}
	if sub.Iterations <= 150 {
		return outcome{rcode: dnswire.RCodeNXDomain, ad: true}
	}
	return outcome{rcode: dnswire.RCodeNXDomain, ede: []dnswire.EDECode{dnswire.EDEUnsupportedNSEC3Iter}}
}

func TestClassifyResolverBindLike(t *testing.T) {
	c := ClassifyResolver(mkTranscript(t, bindLike))
	if !c.IsValidator {
		t.Fatal("not a validator")
	}
	if !c.ImplementsItem6 || c.InsecureLimit != 150 {
		t.Fatalf("item6: %+v", c)
	}
	if c.ImplementsItem8 {
		t.Fatal("item8 wrongly detected")
	}
	if c.Item7Violation {
		t.Fatal("item7 violation wrongly detected")
	}
	if !c.EDE27 || !c.SupportsEDE() {
		t.Fatal("EDE 27 missed")
	}
	if c.ThreePhase {
		t.Fatal("three-phase wrongly detected")
	}
}

func TestClassifyResolverCloudflareLike(t *testing.T) {
	c := ClassifyResolver(mkTranscript(t, func(sub testbed.Subdomain) outcome {
		switch sub.Label {
		case "valid":
			return outcome{rcode: dnswire.RCodeNoError, ad: true}
		case "expired", "it-2501-expired":
			return outcome{rcode: dnswire.RCodeServFail}
		}
		if sub.Iterations <= 150 {
			return outcome{rcode: dnswire.RCodeNXDomain, ad: true}
		}
		return outcome{rcode: dnswire.RCodeServFail, ede: []dnswire.EDECode{dnswire.EDEUnsupportedNSEC3Iter}}
	}))
	if !c.IsValidator || !c.ImplementsItem8 || c.ServfailFrom != 175 {
		// The probed values jump 150 → 151; SERVFAIL starts at 151.
		if c.ServfailFrom != 151 {
			t.Fatalf("cloudflare: %+v", c)
		}
	}
	if c.ThreePhase {
		t.Fatal("three-phase wrongly detected (no insecure band)")
	}
}

func TestClassifyResolverItem7Violator(t *testing.T) {
	c := ClassifyResolver(mkTranscript(t, func(sub testbed.Subdomain) outcome {
		switch sub.Label {
		case "valid":
			return outcome{rcode: dnswire.RCodeNoError, ad: true}
		case "expired":
			return outcome{rcode: dnswire.RCodeServFail}
		case "it-2501-expired":
			// Accepts the expired over-limit proof: the violation.
			return outcome{rcode: dnswire.RCodeNXDomain}
		}
		if sub.Iterations <= 150 {
			return outcome{rcode: dnswire.RCodeNXDomain, ad: true}
		}
		return outcome{rcode: dnswire.RCodeNXDomain}
	}))
	if !c.Item7Violation {
		t.Fatalf("violation missed: %+v", c)
	}
}

func TestClassifyResolverThreePhase(t *testing.T) {
	c := ClassifyResolver(mkTranscript(t, func(sub testbed.Subdomain) outcome {
		switch sub.Label {
		case "valid":
			return outcome{rcode: dnswire.RCodeNoError, ad: true}
		case "expired", "it-2501-expired":
			return outcome{rcode: dnswire.RCodeServFail}
		}
		switch {
		case sub.Iterations <= 100:
			return outcome{rcode: dnswire.RCodeNXDomain, ad: true}
		case sub.Iterations <= 150:
			return outcome{rcode: dnswire.RCodeNXDomain}
		default:
			return outcome{rcode: dnswire.RCodeServFail}
		}
	}))
	if !c.ThreePhase || c.InsecureLimit != 100 || c.ServfailFrom != 151 {
		t.Fatalf("three-phase: %+v", c)
	}
}

func TestClassifyResolverNonValidator(t *testing.T) {
	c := ClassifyResolver(mkTranscript(t, func(sub testbed.Subdomain) outcome {
		if sub.WantNXDOMAIN {
			return outcome{rcode: dnswire.RCodeNXDomain}
		}
		return outcome{rcode: dnswire.RCodeNoError}
	}))
	if c.IsValidator {
		t.Fatal("non-validator classified as validator")
	}
	agg := NewResolverAggregate()
	agg.Add(c)
	if agg.Probed != 1 || agg.Validators != 0 {
		t.Fatalf("agg: %+v", agg)
	}
}

func TestClassifyResolverStrictZero(t *testing.T) {
	c := ClassifyResolver(mkTranscript(t, func(sub testbed.Subdomain) outcome {
		switch sub.Label {
		case "valid":
			return outcome{rcode: dnswire.RCodeNoError, ad: true}
		case "expired":
			return outcome{rcode: dnswire.RCodeServFail}
		}
		return outcome{rcode: dnswire.RCodeServFail}
	}))
	if !c.IsValidator || !c.ImplementsItem8 || c.ServfailFrom != 1 {
		t.Fatalf("strict-zero: %+v", c)
	}
}

func TestResolverAggregate(t *testing.T) {
	agg := NewResolverAggregate()
	agg.Add(ClassifyResolver(mkTranscript(t, bindLike)))
	agg.Add(ClassifyResolver(mkTranscript(t, bindLike)))
	if agg.Validators != 2 || agg.Item6 != 2 || agg.InsecureLimits[150] != 2 {
		t.Fatalf("agg: %+v", agg)
	}
	if agg.EDE27 != 2 || agg.EDEAny != 2 {
		t.Fatalf("EDE agg: %+v", agg)
	}
}

// TestAggregateMergeEquivalence: splitting a classification stream
// across N private aggregates and merging must equal one aggregate
// fed sequentially — the invariant the sharded survey relies on.
func TestAggregateMergeEquivalence(t *testing.T) {
	classes := []ZoneClass{
		{DNSSECEnabled: true, NSEC3Enabled: true, Iterations: 0, SaltLen: 0,
			Item2OK: true, Item3OK: true, BothOK: true},
		{DNSSECEnabled: true, NSEC3Enabled: true, Iterations: 10, SaltLen: 8, OptOut: true},
		{DNSSECEnabled: true, NSECUsed: true},
		{},
		{DNSSECEnabled: true, NSEC3Enabled: true, Iterations: 500, SaltLen: 160},
		{DNSSECEnabled: true, NSEC3Enabled: true, Iterations: 1, SaltLen: 8},
	}
	whole := NewAggregate()
	for _, c := range classes {
		whole.Add(c)
	}
	parts := []*Aggregate{NewAggregate(), NewAggregate(), NewAggregate()}
	for i, c := range classes {
		parts[i%len(parts)].Add(c)
	}
	merged := NewAggregate()
	for _, p := range parts {
		merged.Merge(p)
	}
	if !reflect.DeepEqual(whole, merged) {
		t.Fatalf("merged aggregate differs:\nwhole:  %+v\nmerged: %+v", whole, merged)
	}
	// Merging nil is a no-op.
	before := *merged
	merged.Merge(nil)
	if merged.Total != before.Total {
		t.Fatal("nil merge changed the aggregate")
	}
}
