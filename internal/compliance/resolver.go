package compliance

import (
	"sort"

	"repro/internal/dnswire"
	"repro/internal/testbed"
)

// ResolverClass is the behavioural classification of one resolver from
// its testbed transcript — the per-resolver facts behind Figure 3 and
// the §5.2 statistics.
type ResolverClass struct {
	// IsValidator: NOERROR+AD for valid and SERVFAIL for expired
	// (the paper's validator test).
	IsValidator bool

	// InsecureLimit is the largest iteration count still answered with
	// the AD bit; above it responses turn insecure (Item 6). -1 when
	// the resolver never cleared AD within the probed range.
	InsecureLimit int
	// ImplementsItem6 is true when an AD→no-AD transition was seen.
	ImplementsItem6 bool

	// ServfailFrom is the smallest probed iteration count answered
	// SERVFAIL (Item 8); -1 if none.
	ServfailFrom int
	// ImplementsItem8 is true when a SERVFAIL region exists.
	ImplementsItem8 bool

	// Item7Violation: returns insecure responses above its limit but
	// accepted the it-2501-expired proof (no SERVFAIL) — it did not
	// verify the NSEC3 RRSIGs.
	Item7Violation bool

	// ThreePhase: an NXDOMAIN-without-AD band sits strictly between
	// the authenticated band and the SERVFAIL band (Item 12 violation).
	ThreePhase bool

	// EDESeen lists distinct EDE INFO-CODEs observed.
	EDESeen []dnswire.EDECode
	// EDE27 is true when INFO-CODE 27 accompanied a limit response
	// (Item 10).
	EDE27 bool

	// EchoRA: the resolver left RA clear in responses to RA-clear
	// queries (the broken forwarder signature from §5.2).
	EchoRA bool
}

// SupportsEDE reports whether any EDE was attached.
func (c ResolverClass) SupportsEDE() bool { return len(c.EDESeen) > 0 }

// ClassifyResolver derives the classification from a probe transcript.
func ClassifyResolver(tr *testbed.Transcript) ResolverClass {
	var c ResolverClass
	c.InsecureLimit = -1
	c.ServfailFrom = -1

	valid, _ := tr.Find("valid")
	expired, _ := tr.Find("expired")
	c.IsValidator = valid.Err == nil && expired.Err == nil &&
		valid.RCode == dnswire.RCodeNoError && valid.AD &&
		expired.RCode == dnswire.RCodeServFail

	series := tr.ItSeries()
	sort.Slice(series, func(i, j int) bool { return series[i].Iterations < series[j].Iterations })

	lastAD := -1
	firstNoAD := -1
	firstServfail := -1
	for _, o := range series {
		if o.Err != nil {
			continue
		}
		n := int(o.Iterations)
		switch {
		case o.RCode == dnswire.RCodeServFail:
			if firstServfail == -1 {
				firstServfail = n
			}
		case o.RCode == dnswire.RCodeNXDomain && o.AD:
			lastAD = n
		case o.RCode == dnswire.RCodeNXDomain && !o.AD:
			if firstNoAD == -1 {
				firstNoAD = n
			}
		}
		for _, e := range o.EDE {
			if !containsCode(c.EDESeen, e.Code) {
				c.EDESeen = append(c.EDESeen, e.Code)
			}
			if e.Code == dnswire.EDEUnsupportedNSEC3Iter {
				c.EDE27 = true
			}
		}
		if !o.RA {
			c.EchoRA = true
		}
	}

	// Item 6 requires an observable transition: "there exists a
	// delimiting value N such that subdomains with up to N additional
	// iterations result in NXDOMAIN responses with the AD bit set,
	// while iteration counts above N result in NXDOMAIN only" (§5.2).
	// A validator that never sets AD on any it-N (an AD-stripping
	// forwarder) exhibits no such N and is counted under neither item.
	if firstNoAD != -1 && lastAD != -1 && firstNoAD > lastAD {
		c.ImplementsItem6 = true
		c.InsecureLimit = lastAD
	}

	// Item 8: a SERVFAIL region.
	if firstServfail != -1 {
		c.ImplementsItem8 = true
		c.ServfailFrom = firstServfail
	}

	// Item 12: both implemented with an insecure band in between.
	if c.ImplementsItem6 && c.ImplementsItem8 &&
		firstNoAD != -1 && firstNoAD < firstServfail {
		c.ThreePhase = true
	}

	// Item 7: insecure responders must still reject the expired-RRSIG
	// high-iteration proof.
	if c.ImplementsItem6 {
		if o, ok := tr.Find("it-2501-expired"); ok && o.Err == nil {
			if o.RCode == dnswire.RCodeNXDomain {
				c.Item7Violation = true
			}
		}
	}
	return c
}

func containsCode(codes []dnswire.EDECode, c dnswire.EDECode) bool {
	for _, have := range codes {
		if have == c {
			return true
		}
	}
	return false
}

// ResolverAggregate accumulates classifications into the §5.2 shares.
type ResolverAggregate struct {
	Probed     int
	Validators int

	Item6 int // insecure above some limit
	Item8 int // SERVFAIL above some limit

	// InsecureLimits and ServfailFroms histogram the observed
	// thresholds (e.g. 150 vs 100 vs 50; SERVFAIL from 151 vs 1 vs 101).
	InsecureLimits map[int]int
	ServfailFroms  map[int]int

	Item7Violations int
	ThreePhase      int
	EDEAny          int
	EDE27           int
	EchoRA          int
}

// NewResolverAggregate prepares an empty aggregate.
func NewResolverAggregate() *ResolverAggregate {
	return &ResolverAggregate{
		InsecureLimits: make(map[int]int),
		ServfailFroms:  make(map[int]int),
	}
}

// Add folds one classification in. Only validators contribute to the
// per-item statistics, matching the paper's denominators.
func (a *ResolverAggregate) Add(c ResolverClass) {
	a.Probed++
	if !c.IsValidator {
		return
	}
	a.Validators++
	if c.ImplementsItem6 {
		a.Item6++
		a.InsecureLimits[c.InsecureLimit]++
	}
	if c.ImplementsItem8 {
		a.Item8++
		a.ServfailFroms[c.ServfailFrom]++
	}
	if c.Item7Violation {
		a.Item7Violations++
	}
	if c.ThreePhase {
		a.ThreePhase++
	}
	if c.SupportsEDE() {
		a.EDEAny++
	}
	if c.EDE27 {
		a.EDE27++
	}
	if c.EchoRA {
		a.EchoRA++
	}
}

// Merge folds another aggregate into a. Because every field is a sum
// or a histogram of sums, merging shard aggregates in any order yields
// the same result as classifying the union directly.
func (a *ResolverAggregate) Merge(b *ResolverAggregate) {
	if b == nil {
		return
	}
	a.Probed += b.Probed
	a.Validators += b.Validators
	a.Item6 += b.Item6
	a.Item8 += b.Item8
	for v, n := range b.InsecureLimits {
		a.InsecureLimits[v] += n
	}
	for v, n := range b.ServfailFroms {
		a.ServfailFroms[v] += n
	}
	a.Item7Violations += b.Item7Violations
	a.ThreePhase += b.ThreePhase
	a.EDEAny += b.EDEAny
	a.EDE27 += b.EDE27
	a.EchoRA += b.EchoRA
}
