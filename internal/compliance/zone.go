package compliance

import (
	"bytes"
	"errors"

	"repro/internal/dnswire"
)

// ZoneFacts is what the scanner observed for one registered domain:
// the raw material of the §4.1 methodology.
type ZoneFacts struct {
	Domain dnswire.Name
	// DNSKEYs returned for the domain; non-empty means DNSSEC-enabled
	// under the paper's definition.
	DNSKEYs []dnswire.DNSKEY
	// NSEC3PARAMs at the apex (RFC 5155 requires exactly one for a
	// usable chain; the paper drops domains with more).
	NSEC3PARAMs []dnswire.NSEC3PARAM
	// NSEC3s seen in the negative response to a random-subdomain probe.
	NSEC3s []dnswire.NSEC3
	// NSECSeen reports plain NSEC records in the negative response.
	NSECSeen bool
	// NSHosts are the authoritative name server names.
	NSHosts []dnswire.Name
}

// Consistency errors (RFC 5155 checks from §4.1).
var (
	ErrNoNSEC3Param   = errors.New("compliance: no NSEC3PARAM record")
	ErrMultipleParams = errors.New("compliance: more than one NSEC3PARAM record")
	ErrNSEC3Mismatch  = errors.New("compliance: NSEC3 records disagree among themselves")
	ErrParamMismatch  = errors.New("compliance: NSEC3 and NSEC3PARAM parameters disagree")
	ErrNoNSEC3Records = errors.New("compliance: no NSEC3 records observed")
)

// CheckRFC5155 verifies the two §4.1 consistency conditions: i) all
// NSEC3 records carry identical parameters, and ii) they match the
// single NSEC3PARAM. Only domains passing this are "NSEC3-enabled".
func (f ZoneFacts) CheckRFC5155() error {
	switch len(f.NSEC3PARAMs) {
	case 0:
		return ErrNoNSEC3Param
	case 1:
	default:
		return ErrMultipleParams
	}
	if len(f.NSEC3s) == 0 {
		return ErrNoNSEC3Records
	}
	first := f.NSEC3s[0]
	for _, n := range f.NSEC3s[1:] {
		if n.HashAlg != first.HashAlg || n.Iterations != first.Iterations ||
			!bytes.Equal(n.Salt, first.Salt) {
			return ErrNSEC3Mismatch
		}
	}
	p := f.NSEC3PARAMs[0]
	if p.HashAlg != first.HashAlg || p.Iterations != first.Iterations ||
		!bytes.Equal(p.Salt, first.Salt) {
		return ErrParamMismatch
	}
	return nil
}

// ZoneClass is the per-domain classification feeding §5.1.
type ZoneClass struct {
	Domain        dnswire.Name
	DNSSECEnabled bool
	NSEC3Enabled  bool // DNSSEC-enabled + RFC 5155-consistent NSEC3
	NSECUsed      bool // plain NSEC observed instead
	// NSEC3 parameters (valid when NSEC3Enabled).
	Iterations uint16
	SaltLen    int
	OptOut     bool
	// RFC 9276 compliance verdicts.
	Item2OK bool // zero additional iterations
	Item3OK bool // no salt
	BothOK  bool
}

// Classify derives the zone classification from scan facts.
func Classify(f ZoneFacts) ZoneClass {
	c := ZoneClass{
		Domain:        f.Domain,
		DNSSECEnabled: len(f.DNSKEYs) > 0,
		NSECUsed:      f.NSECSeen,
	}
	if !c.DNSSECEnabled {
		return c
	}
	if err := f.CheckRFC5155(); err != nil {
		return c
	}
	c.NSEC3Enabled = true
	p := f.NSEC3PARAMs[0]
	c.Iterations = p.Iterations
	c.SaltLen = len(p.Salt)
	for _, n := range f.NSEC3s {
		if n.OptOut() {
			c.OptOut = true
		}
	}
	c.Item2OK = c.Iterations == 0
	c.Item3OK = c.SaltLen == 0
	c.BothOK = c.Item2OK && c.Item3OK
	return c
}

// Aggregate summarizes many zone classifications into the §5.1 numbers.
type Aggregate struct {
	Total         int
	DNSSECEnabled int
	NSEC3Enabled  int
	NSECUsed      int
	Item2OK       int
	Item3OK       int
	BothOK        int
	OptOut        int
	// IterationsHist and SaltLenHist feed the Figure 1 CDFs.
	IterationsHist map[uint16]int
	SaltLenHist    map[int]int
	MaxIterations  uint16
	MaxSaltLen     int
}

// NewAggregate prepares an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{
		IterationsHist: make(map[uint16]int),
		SaltLenHist:    make(map[int]int),
	}
}

// Add folds one classification into the aggregate.
func (a *Aggregate) Add(c ZoneClass) {
	a.Total++
	if !c.DNSSECEnabled {
		return
	}
	a.DNSSECEnabled++
	if c.NSECUsed && !c.NSEC3Enabled {
		a.NSECUsed++
	}
	if !c.NSEC3Enabled {
		return
	}
	a.NSEC3Enabled++
	a.IterationsHist[c.Iterations]++
	a.SaltLenHist[c.SaltLen]++
	if c.Iterations > a.MaxIterations {
		a.MaxIterations = c.Iterations
	}
	if c.SaltLen > a.MaxSaltLen {
		a.MaxSaltLen = c.SaltLen
	}
	if c.Item2OK {
		a.Item2OK++
	}
	if c.Item3OK {
		a.Item3OK++
	}
	if c.BothOK {
		a.BothOK++
	}
	if c.OptOut {
		a.OptOut++
	}
}

// Merge folds another aggregate into a. Each scan worker owns a
// private Aggregate and the survey merges them once at the end, so the
// hot path needs no locking; merging in any order yields the same
// result (all fields are sums, histograms, or maxima).
func (a *Aggregate) Merge(b *Aggregate) {
	if b == nil {
		return
	}
	a.Total += b.Total
	a.DNSSECEnabled += b.DNSSECEnabled
	a.NSEC3Enabled += b.NSEC3Enabled
	a.NSECUsed += b.NSECUsed
	a.Item2OK += b.Item2OK
	a.Item3OK += b.Item3OK
	a.BothOK += b.BothOK
	a.OptOut += b.OptOut
	for v, n := range b.IterationsHist {
		a.IterationsHist[v] += n
	}
	for v, n := range b.SaltLenHist {
		a.SaltLenHist[v] += n
	}
	if b.MaxIterations > a.MaxIterations {
		a.MaxIterations = b.MaxIterations
	}
	if b.MaxSaltLen > a.MaxSaltLen {
		a.MaxSaltLen = b.MaxSaltLen
	}
}

// Pct returns 100*num/den, 0 when den is 0.
func Pct(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}
