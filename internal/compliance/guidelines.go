// Package compliance encodes RFC 9276 ("Guidance for NSEC3 Parameter
// Settings in DNSSEC"): the twelve guideline items of the paper's
// Table 1, the zone-side compliance checks (Items 1–5) applied to
// scanned domains, and the resolver-side behavioural classifier
// (Items 6–12) applied to testbed probe transcripts.
package compliance

// Requirement is the RFC 2119 keyword attached to a guideline.
type Requirement string

// RFC 2119 keywords used in RFC 9276.
const (
	Should         Requirement = "SHOULD"
	ShouldNot      Requirement = "SHOULD NOT"
	Must           Requirement = "MUST"
	MustNot        Requirement = "MUST NOT"
	May            Requirement = "MAY"
	NotRecommended Requirement = "NOT RECOMMENDED"
)

// Audience is who a guideline addresses.
type Audience int

// Audiences.
const (
	AudienceAuthoritative Audience = iota // Items 1–5
	AudienceResolver                      // Items 6–12
)

// Guideline is one row of the paper's Table 1.
type Guideline struct {
	Item     int
	Keyword  Requirement
	Audience Audience
	Guidance string
}

// Guidelines returns the twelve RFC 9276 items exactly as the paper's
// Table 1 summarizes them.
func Guidelines() []Guideline {
	return []Guideline{
		{1, Should, AudienceAuthoritative,
			"prefer NSEC over NSEC3, if the NSEC3 operational or security features are not needed"},
		{2, Must, AudienceAuthoritative,
			"set the number of additional iterations to 0"},
		{3, ShouldNot, AudienceAuthoritative,
			"use a salt"},
		{4, NotRecommended, AudienceAuthoritative,
			"set the opt-out flag for small zones"},
		{5, May, AudienceAuthoritative,
			"set the opt-out flag for very large and sparsely signed zones with the majority of records insecure delegations"},
		{6, May, AudienceResolver,
			"return an insecure response if a queried name server returns NSEC3 RRs not complying with Item 2"},
		{7, Must, AudienceResolver,
			"verify the RRSIG RRs for NSEC3 RRs in the answer of the authoritative server to ensure integrity of the number of additional iterations, if Item 6 is implemented"},
		{8, May, AudienceResolver,
			"set RCODE to SERVFAIL in the response to the client, if a queried name server returns NSEC3 RRs not complying with Item 2"},
		{9, May, AudienceResolver,
			"ignore the response of the queried name server, if it returns NSEC3 RRs not complying with Item 2, likely resulting in setting RCODE to SERVFAIL in the response to the client"},
		{10, Should, AudienceResolver,
			"return EDE information with INFO-CODE set to 27, if Item 6 or Item 8 are implemented"},
		{11, MustNot, AudienceResolver,
			"return EDE information as in Item 10, if Item 9 is implemented"},
		{12, Should, AudienceResolver,
			"set the number of iterations starting from which Item 6 and Item 8 are implemented to the same value if both are implemented"},
	}
}
