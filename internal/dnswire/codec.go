package dnswire

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// encoder accumulates a wire-format message. When compress is set,
// eligible names are compressed with pointers into the already-written
// prefix of buf (offsets must fit 14 bits).
//
// Encoders are pooled: packCounts checks one out per message and
// releaseEncoder returns it with the compression table cleared, so the
// steady-state encode path allocates neither the struct nor the map.
type encoder struct {
	buf      []byte
	table    map[Name]int // name -> absolute offset of its first encoding
	compress bool
}

var encPool = sync.Pool{
	New: func() any { return &encoder{table: make(map[Name]int, 16)} },
}

// releaseEncoder returns a checked-out encoder to the pool. The buffer
// is caller memory and must not survive the Put; the table is cleared
// so a recycled encoder never compresses against a previous message.
func releaseEncoder(e *encoder) {
	e.buf = nil
	clear(e.table)
	e.compress = false
	encPool.Put(e)
}

func (e *encoder) u16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }

// name encodes n, compressing when allowed and profitable. Compression
// works per-suffix: each tail of the name may independently point at an
// earlier occurrence. A suffix of a normalized Name starting at a label
// boundary is itself a normalized Name, so suffixes are string slices
// of n — no label splitting, no per-suffix rebuild.
//
//repro:allocok the compression table write is the one unavoidable map insert of the encode path; the table itself is pooled
func (e *encoder) name(n Name, compressible bool) {
	if !e.compress || !compressible {
		e.buf = appendName(e.buf, n)
		return
	}
	s := string(n)
	for pos := 0; pos < len(s); {
		end := pos + labelEnd(s[pos:])
		if end == pos {
			pos = end + 1 // the root has no labels
			continue
		}
		suffix := Name(s[pos:])
		if off, ok := e.table[suffix]; ok && off < 0x4000 {
			e.u16(0xC000 | uint16(off))
			return
		}
		if len(e.buf) < 0x4000 {
			e.table[suffix] = len(e.buf)
		}
		e.buf = appendLabelWire(e.buf, s[pos:end])
		pos = end + 1
	}
	e.buf = append(e.buf, 0)
}

// decoder walks a wire-format message.
type decoder struct {
	msg []byte
	off int
	end int // exclusive bound for RDATA-scoped decoding (len(msg) otherwise)
}

func (d *decoder) remaining() int { return d.end - d.off }

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.off+n > d.end {
		return nil, fmt.Errorf("dnswire: need %d octets, have %d", n, d.remaining())
	}
	out := make([]byte, n)
	copy(out, d.msg[d.off:d.off+n])
	d.off += n
	return out, nil
}

func (d *decoder) u8() (uint8, error) {
	if d.off >= d.end {
		return 0, fmt.Errorf("dnswire: truncated u8")
	}
	v := d.msg[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u16() (uint16, error) {
	if d.off+2 > d.end {
		return 0, fmt.Errorf("dnswire: truncated u16")
	}
	v := binary.BigEndian.Uint16(d.msg[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.off+4 > d.end {
		return 0, fmt.Errorf("dnswire: truncated u32")
	}
	v := binary.BigEndian.Uint32(d.msg[d.off:])
	d.off += 4
	return v, nil
}

// name decodes a possibly-compressed name; pointers may refer anywhere
// earlier in the full message, even outside the current RDATA bounds.
func (d *decoder) name() (Name, error) {
	n, next, err := readName(d.msg, d.off)
	if err != nil {
		return "", err
	}
	if next > d.end {
		return "", fmt.Errorf("dnswire: name overruns field")
	}
	d.off = next
	return n, nil
}

// charString decodes a length-prefixed <character-string>.
func (d *decoder) charString() (string, error) {
	l, err := d.u8()
	if err != nil {
		return "", err
	}
	b, err := d.bytes(int(l))
	return string(b), err
}

// lenPrefixed decodes a one-octet-length-prefixed byte field
// (NSEC3 salt and hash fields).
func (d *decoder) lenPrefixed() ([]byte, error) {
	l, err := d.u8()
	if err != nil {
		return nil, err
	}
	return d.bytes(int(l))
}
