package dnswire

import (
	"encoding/binary"
	"fmt"
)

// encoder accumulates a wire-format message. When table is non-nil,
// eligible names are compressed with pointers into the already-written
// prefix of buf (offsets must fit 14 bits).
type encoder struct {
	buf   []byte
	table map[Name]int // name -> absolute offset of its first encoding
}

func (e *encoder) u16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }

// name encodes n, compressing when allowed and profitable. Compression
// works per-suffix: each tail of the name may independently point at an
// earlier occurrence.
func (e *encoder) name(n Name, compressible bool) {
	if e.table == nil || !compressible {
		e.buf = appendName(e.buf, n)
		return
	}
	labels := n.Labels()
	for i := range labels {
		suffix, err := fromLabels(labels[i:])
		if err != nil {
			panic(err) // labels came from a valid Name
		}
		if off, ok := e.table[suffix]; ok && off < 0x4000 {
			e.u16(0xC000 | uint16(off))
			return
		}
		if len(e.buf) < 0x4000 {
			e.table[suffix] = len(e.buf)
		}
		e.buf = append(e.buf, byte(len(labels[i])))
		e.buf = append(e.buf, labels[i]...)
	}
	e.buf = append(e.buf, 0)
}

// decoder walks a wire-format message.
type decoder struct {
	msg []byte
	off int
	end int // exclusive bound for RDATA-scoped decoding (len(msg) otherwise)
}

func (d *decoder) remaining() int { return d.end - d.off }

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.off+n > d.end {
		return nil, fmt.Errorf("dnswire: need %d octets, have %d", n, d.remaining())
	}
	out := make([]byte, n)
	copy(out, d.msg[d.off:d.off+n])
	d.off += n
	return out, nil
}

func (d *decoder) u8() (uint8, error) {
	if d.off >= d.end {
		return 0, fmt.Errorf("dnswire: truncated u8")
	}
	v := d.msg[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u16() (uint16, error) {
	if d.off+2 > d.end {
		return 0, fmt.Errorf("dnswire: truncated u16")
	}
	v := binary.BigEndian.Uint16(d.msg[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.off+4 > d.end {
		return 0, fmt.Errorf("dnswire: truncated u32")
	}
	v := binary.BigEndian.Uint32(d.msg[d.off:])
	d.off += 4
	return v, nil
}

// name decodes a possibly-compressed name; pointers may refer anywhere
// earlier in the full message, even outside the current RDATA bounds.
func (d *decoder) name() (Name, error) {
	n, next, err := readName(d.msg, d.off)
	if err != nil {
		return "", err
	}
	if next > d.end {
		return "", fmt.Errorf("dnswire: name overruns field")
	}
	d.off = next
	return n, nil
}

// charString decodes a length-prefixed <character-string>.
func (d *decoder) charString() (string, error) {
	l, err := d.u8()
	if err != nil {
		return "", err
	}
	b, err := d.bytes(int(l))
	return string(b), err
}

// lenPrefixed decodes a one-octet-length-prefixed byte field
// (NSEC3 salt and hash fields).
func (d *decoder) lenPrefixed() ([]byte, error) {
	l, err := d.u8()
	if err != nil {
		return nil, err
	}
	return d.bytes(int(l))
}
