package dnswire

import (
	"encoding/base32"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"net/netip"
	"strings"
)

// RData is the type-specific payload of a resource record.
//
// Implementations encode themselves with appendRData; encoding with a
// nil compression table produces the canonical form of RFC 4034 §6.2
// (names in this package are always lowercase, and DNSSEC-era types are
// never compressed).
type RData interface {
	// Type returns the RR type this payload belongs to.
	Type() Type
	// String returns the RDATA in master-file presentation format.
	String() string
	// appendRData appends the wire form to e.buf.
	appendRData(e *encoder)
}

// AppendRData appends the canonical (uncompressed, lowercase) wire
// encoding of rd to dst. This is the form hashed and signed by DNSSEC.
func AppendRData(dst []byte, rd RData) []byte {
	e := &encoder{buf: dst}
	rd.appendRData(e)
	return e.buf
}

// base32Hex is the unpadded Base32 "extended hex" alphabet used by
// NSEC3 owner names and next-hashed-owner fields (RFC 5155 §1.3).
var base32Hex = base32.HexEncoding.WithPadding(base32.NoPadding)

// ---------------------------------------------------------------- A

// A is an IPv4 address record (RFC 1035 §3.4.1).
type A struct{ Addr netip.Addr }

// Type implements RData.
func (A) Type() Type { return TypeA }

// String implements RData.
func (r A) String() string { return r.Addr.String() }

func (r A) appendRData(e *encoder) {
	a4 := r.Addr.As4()
	e.buf = append(e.buf, a4[:]...)
}

// ------------------------------------------------------------- AAAA

// AAAA is an IPv6 address record (RFC 3596).
type AAAA struct{ Addr netip.Addr }

// Type implements RData.
func (AAAA) Type() Type { return TypeAAAA }

// String implements RData.
func (r AAAA) String() string { return r.Addr.String() }

func (r AAAA) appendRData(e *encoder) {
	a16 := r.Addr.As16()
	e.buf = append(e.buf, a16[:]...)
}

// --------------------------------------------------------------- NS

// NS delegates a zone to a name server (RFC 1035 §3.3.11).
type NS struct{ Host Name }

// Type implements RData.
func (NS) Type() Type { return TypeNS }

// String implements RData.
func (r NS) String() string { return r.Host.String() }

func (r NS) appendRData(e *encoder) { e.name(r.Host, true) }

// ------------------------------------------------------------ CNAME

// CNAME is a canonical-name alias (RFC 1035 §3.3.1).
type CNAME struct{ Target Name }

// Type implements RData.
func (CNAME) Type() Type { return TypeCNAME }

// String implements RData.
func (r CNAME) String() string { return r.Target.String() }

func (r CNAME) appendRData(e *encoder) { e.name(r.Target, true) }

// -------------------------------------------------------------- PTR

// PTR is a pointer record (RFC 1035 §3.3.12).
type PTR struct{ Target Name }

// Type implements RData.
func (PTR) Type() Type { return TypePTR }

// String implements RData.
func (r PTR) String() string { return r.Target.String() }

func (r PTR) appendRData(e *encoder) { e.name(r.Target, true) }

// --------------------------------------------------------------- MX

// MX is a mail exchanger record (RFC 1035 §3.3.9).
type MX struct {
	Preference uint16
	Host       Name
}

// Type implements RData.
func (MX) Type() Type { return TypeMX }

// String implements RData.
func (r MX) String() string { return fmt.Sprintf("%d %s", r.Preference, r.Host) }

func (r MX) appendRData(e *encoder) {
	e.u16(r.Preference)
	e.name(r.Host, true)
}

// -------------------------------------------------------------- TXT

// TXT carries one or more character strings (RFC 1035 §3.3.14).
type TXT struct{ Strings []string }

// Type implements RData.
func (TXT) Type() Type { return TypeTXT }

// String implements RData.
func (r TXT) String() string {
	parts := make([]string, len(r.Strings))
	for i, s := range r.Strings {
		parts[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(parts, " ")
}

func (r TXT) appendRData(e *encoder) {
	for _, s := range r.Strings {
		if len(s) > 255 {
			s = s[:255]
		}
		e.buf = append(e.buf, byte(len(s)))
		e.buf = append(e.buf, s...)
	}
}

// -------------------------------------------------------------- SOA

// SOA marks the start of a zone of authority (RFC 1035 §3.3.13).
type SOA struct {
	MName   Name // primary name server
	RName   Name // responsible mailbox
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32 // also the negative-caching TTL (RFC 2308)
}

// Type implements RData.
func (SOA) Type() Type { return TypeSOA }

// String implements RData.
func (r SOA) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		r.MName, r.RName, r.Serial, r.Refresh, r.Retry, r.Expire, r.Minimum)
}

func (r SOA) appendRData(e *encoder) {
	e.name(r.MName, true)
	e.name(r.RName, true)
	e.u32(r.Serial)
	e.u32(r.Refresh)
	e.u32(r.Retry)
	e.u32(r.Expire)
	e.u32(r.Minimum)
}

// ------------------------------------------------------------ DNSKEY

// DNSKEY holds a zone's public key (RFC 4034 §2).
type DNSKEY struct {
	Flags     uint16
	Protocol  uint8 // always 3
	Algorithm SecAlgorithm
	PublicKey []byte
}

// Type implements RData.
func (DNSKEY) Type() Type { return TypeDNSKEY }

// String implements RData.
func (r DNSKEY) String() string {
	return fmt.Sprintf("%d %d %d %s",
		r.Flags, r.Protocol, uint8(r.Algorithm),
		base64.StdEncoding.EncodeToString(r.PublicKey))
}

// IsZoneKey reports whether the ZONE flag bit is set.
func (r DNSKEY) IsZoneKey() bool { return r.Flags&DNSKEYFlagZone != 0 }

// IsSEP reports whether the Secure Entry Point bit (conventionally the
// KSK marker) is set.
func (r DNSKEY) IsSEP() bool { return r.Flags&DNSKEYFlagSEP != 0 }

func (r DNSKEY) appendRData(e *encoder) {
	e.u16(r.Flags)
	e.buf = append(e.buf, r.Protocol, byte(r.Algorithm))
	e.buf = append(e.buf, r.PublicKey...)
}

// ------------------------------------------------------------- RRSIG

// RRSIG is a DNSSEC signature over an RRset (RFC 4034 §3).
type RRSIG struct {
	TypeCovered Type
	Algorithm   SecAlgorithm
	Labels      uint8
	OrigTTL     uint32
	Expiration  uint32 // seconds since epoch, serial-number arithmetic
	Inception   uint32
	KeyTag      uint16
	SignerName  Name
	Signature   []byte
}

// Type implements RData.
func (RRSIG) Type() Type { return TypeRRSIG }

// String implements RData.
func (r RRSIG) String() string {
	return fmt.Sprintf("%s %d %d %d %d %d %d %s %s",
		r.TypeCovered, uint8(r.Algorithm), r.Labels, r.OrigTTL,
		r.Expiration, r.Inception, r.KeyTag, r.SignerName,
		base64.StdEncoding.EncodeToString(r.Signature))
}

func (r RRSIG) appendRData(e *encoder) {
	e.u16(uint16(r.TypeCovered))
	e.buf = append(e.buf, byte(r.Algorithm), r.Labels)
	e.u32(r.OrigTTL)
	e.u32(r.Expiration)
	e.u32(r.Inception)
	e.u16(r.KeyTag)
	e.name(r.SignerName, false) // never compressed (RFC 4034 §3.1.7)
	e.buf = append(e.buf, r.Signature...)
}

// AppendSignedPart appends the RRSIG RDATA with the Signature field
// omitted — the prefix covered by the signature (RFC 4034 §3.1.8.1).
func (r RRSIG) AppendSignedPart(dst []byte) []byte {
	withoutSig := r
	withoutSig.Signature = nil
	return AppendRData(dst, withoutSig)
}

// ---------------------------------------------------------------- DS

// DS is a delegation signer record published in the parent zone
// (RFC 4034 §5).
type DS struct {
	KeyTag     uint16
	Algorithm  SecAlgorithm
	DigestType DigestType
	Digest     []byte
}

// Type implements RData.
func (DS) Type() Type { return TypeDS }

// String implements RData.
func (r DS) String() string {
	return fmt.Sprintf("%d %d %d %s",
		r.KeyTag, uint8(r.Algorithm), uint8(r.DigestType),
		strings.ToUpper(hex.EncodeToString(r.Digest)))
}

func (r DS) appendRData(e *encoder) {
	e.u16(r.KeyTag)
	e.buf = append(e.buf, byte(r.Algorithm), byte(r.DigestType))
	e.buf = append(e.buf, r.Digest...)
}

// -------------------------------------------------------------- NSEC

// NSEC proves the non-existence of names and types between its owner
// and NextName in canonical order (RFC 4034 §4).
type NSEC struct {
	NextName Name
	Types    TypeBitmap
}

// Type implements RData.
func (NSEC) Type() Type { return TypeNSEC }

// String implements RData.
func (r NSEC) String() string { return fmt.Sprintf("%s %s", r.NextName, r.Types) }

func (r NSEC) appendRData(e *encoder) {
	e.name(r.NextName, false) // never compressed (RFC 4034 §4.1.1)
	e.buf = appendBitmap(e.buf, r.Types)
}

// ------------------------------------------------------------- NSEC3

// NSEC3 proves non-existence through hashed owner names (RFC 5155 §3).
// The owner name of an NSEC3 RR is the Base32hex hash of an original
// name prepended to the zone name; NextHashedOwner is the raw hash of
// the next name in hash order.
type NSEC3 struct {
	HashAlg         NSEC3HashAlg
	Flags           uint8
	Iterations      uint16
	Salt            []byte
	NextHashedOwner []byte
	Types           TypeBitmap
}

// Type implements RData.
func (NSEC3) Type() Type { return TypeNSEC3 }

// OptOut reports whether the Opt-Out flag is set (RFC 5155 §3.1.2.1).
func (r NSEC3) OptOut() bool { return r.Flags&NSEC3FlagOptOut != 0 }

// SaltString renders the salt as hex, or "-" when empty (RFC 5155 §3.3).
func (r NSEC3) SaltString() string { return saltString(r.Salt) }

// NextString renders the next hashed owner in Base32hex.
func (r NSEC3) NextString() string {
	return strings.ToUpper(base32Hex.EncodeToString(r.NextHashedOwner))
}

// String implements RData.
func (r NSEC3) String() string {
	return fmt.Sprintf("%d %d %d %s %s %s",
		uint8(r.HashAlg), r.Flags, r.Iterations, r.SaltString(),
		r.NextString(), r.Types)
}

func (r NSEC3) appendRData(e *encoder) {
	e.buf = append(e.buf, byte(r.HashAlg), r.Flags)
	e.u16(r.Iterations)
	e.buf = append(e.buf, byte(len(r.Salt)))
	e.buf = append(e.buf, r.Salt...)
	e.buf = append(e.buf, byte(len(r.NextHashedOwner)))
	e.buf = append(e.buf, r.NextHashedOwner...)
	e.buf = appendBitmap(e.buf, r.Types)
}

// --------------------------------------------------------- NSEC3PARAM

// NSEC3PARAM publishes the NSEC3 parameters a zone's chain was built
// with (RFC 5155 §4). Flags are always zero in this record.
type NSEC3PARAM struct {
	HashAlg    NSEC3HashAlg
	Flags      uint8
	Iterations uint16
	Salt       []byte
}

// Type implements RData.
func (NSEC3PARAM) Type() Type { return TypeNSEC3PARAM }

// SaltString renders the salt as hex, or "-" when empty.
func (r NSEC3PARAM) SaltString() string { return saltString(r.Salt) }

// String implements RData.
func (r NSEC3PARAM) String() string {
	return fmt.Sprintf("%d %d %d %s",
		uint8(r.HashAlg), r.Flags, r.Iterations, r.SaltString())
}

func (r NSEC3PARAM) appendRData(e *encoder) {
	e.buf = append(e.buf, byte(r.HashAlg), r.Flags)
	e.u16(r.Iterations)
	e.buf = append(e.buf, byte(len(r.Salt)))
	e.buf = append(e.buf, r.Salt...)
}

func saltString(salt []byte) string {
	if len(salt) == 0 {
		return "-"
	}
	return strings.ToUpper(hex.EncodeToString(salt))
}

// ------------------------------------------------------------ Generic

// Generic is an RDATA of a type this package has no structured codec
// for, kept as opaque octets (RFC 3597).
type Generic struct {
	T    Type
	Data []byte
}

// Type implements RData.
func (r Generic) Type() Type { return r.T }

// String implements RData in the RFC 3597 \# form.
func (r Generic) String() string {
	return fmt.Sprintf("\\# %d %s", len(r.Data), hex.EncodeToString(r.Data))
}

func (r Generic) appendRData(e *encoder) { e.buf = append(e.buf, r.Data...) }

// parseRData decodes the RDATA of type t occupying msg[off:off+rdlen].
// Compressed names inside RDATA (legal only for the classic types) are
// resolved against the whole message.
func parseRData(t Type, msg []byte, off, rdlen int) (RData, error) {
	end := off + rdlen
	if end > len(msg) {
		return nil, fmt.Errorf("dnswire: RDATA overruns message")
	}
	d := &decoder{msg: msg, off: off, end: end}
	var rd RData
	var err error
	switch t {
	case TypeA:
		var raw []byte
		if raw, err = d.bytes(4); err == nil {
			rd = A{Addr: netip.AddrFrom4([4]byte(raw))}
		}
	case TypeAAAA:
		var raw []byte
		if raw, err = d.bytes(16); err == nil {
			rd = AAAA{Addr: netip.AddrFrom16([16]byte(raw))}
		}
	case TypeNS:
		var n Name
		if n, err = d.name(); err == nil {
			rd = NS{Host: n}
		}
	case TypeCNAME:
		var n Name
		if n, err = d.name(); err == nil {
			rd = CNAME{Target: n}
		}
	case TypePTR:
		var n Name
		if n, err = d.name(); err == nil {
			rd = PTR{Target: n}
		}
	case TypeMX:
		var r MX
		if r.Preference, err = d.u16(); err == nil {
			if r.Host, err = d.name(); err == nil {
				rd = r
			}
		}
	case TypeTXT:
		var r TXT
		for d.off < d.end {
			var s string
			if s, err = d.charString(); err != nil {
				break
			}
			r.Strings = append(r.Strings, s)
		}
		if err == nil {
			rd = r
		}
	case TypeSOA:
		rd, err = parseSOA(d)
	case TypeDNSKEY:
		rd, err = parseDNSKEY(d)
	case TypeRRSIG:
		rd, err = parseRRSIG(d)
	case TypeDS:
		rd, err = parseDS(d)
	case TypeNSEC:
		rd, err = parseNSEC(d)
	case TypeNSEC3:
		rd, err = parseNSEC3(d)
	case TypeNSEC3PARAM:
		rd, err = parseNSEC3PARAM(d)
	default:
		raw, _ := d.bytes(end - d.off)
		rd = Generic{T: t, Data: raw}
	}
	if err != nil {
		return nil, fmt.Errorf("dnswire: parsing %s RDATA: %w", t, err)
	}
	if d.off != end {
		return nil, fmt.Errorf("dnswire: %s RDATA has %d trailing octets", t, end-d.off)
	}
	return rd, nil
}

func parseSOA(d *decoder) (RData, error) {
	var r SOA
	var err error
	if r.MName, err = d.name(); err != nil {
		return nil, err
	}
	if r.RName, err = d.name(); err != nil {
		return nil, err
	}
	for _, p := range []*uint32{&r.Serial, &r.Refresh, &r.Retry, &r.Expire, &r.Minimum} {
		if *p, err = d.u32(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func parseDNSKEY(d *decoder) (RData, error) {
	var r DNSKEY
	var err error
	if r.Flags, err = d.u16(); err != nil {
		return nil, err
	}
	if r.Protocol, err = d.u8(); err != nil {
		return nil, err
	}
	alg, err := d.u8()
	if err != nil {
		return nil, err
	}
	r.Algorithm = SecAlgorithm(alg)
	r.PublicKey, err = d.bytes(d.end - d.off)
	return r, err
}

func parseRRSIG(d *decoder) (RData, error) {
	var r RRSIG
	tc, err := d.u16()
	if err != nil {
		return nil, err
	}
	r.TypeCovered = Type(tc)
	alg, err := d.u8()
	if err != nil {
		return nil, err
	}
	r.Algorithm = SecAlgorithm(alg)
	if r.Labels, err = d.u8(); err != nil {
		return nil, err
	}
	if r.OrigTTL, err = d.u32(); err != nil {
		return nil, err
	}
	if r.Expiration, err = d.u32(); err != nil {
		return nil, err
	}
	if r.Inception, err = d.u32(); err != nil {
		return nil, err
	}
	if r.KeyTag, err = d.u16(); err != nil {
		return nil, err
	}
	if r.SignerName, err = d.name(); err != nil {
		return nil, err
	}
	r.Signature, err = d.bytes(d.end - d.off)
	return r, err
}

func parseDS(d *decoder) (RData, error) {
	var r DS
	var err error
	if r.KeyTag, err = d.u16(); err != nil {
		return nil, err
	}
	alg, err := d.u8()
	if err != nil {
		return nil, err
	}
	r.Algorithm = SecAlgorithm(alg)
	dt, err := d.u8()
	if err != nil {
		return nil, err
	}
	r.DigestType = DigestType(dt)
	r.Digest, err = d.bytes(d.end - d.off)
	return r, err
}

func parseNSEC(d *decoder) (RData, error) {
	var r NSEC
	var err error
	if r.NextName, err = d.name(); err != nil {
		return nil, err
	}
	raw, err := d.bytes(d.end - d.off)
	if err != nil {
		return nil, err
	}
	r.Types, err = readBitmap(raw)
	return r, err
}

func parseNSEC3(d *decoder) (RData, error) {
	var r NSEC3
	alg, err := d.u8()
	if err != nil {
		return nil, err
	}
	r.HashAlg = NSEC3HashAlg(alg)
	if r.Flags, err = d.u8(); err != nil {
		return nil, err
	}
	if r.Iterations, err = d.u16(); err != nil {
		return nil, err
	}
	if r.Salt, err = d.lenPrefixed(); err != nil {
		return nil, err
	}
	if r.NextHashedOwner, err = d.lenPrefixed(); err != nil {
		return nil, err
	}
	raw, err := d.bytes(d.end - d.off)
	if err != nil {
		return nil, err
	}
	r.Types, err = readBitmap(raw)
	return r, err
}

func parseNSEC3PARAM(d *decoder) (RData, error) {
	var r NSEC3PARAM
	alg, err := d.u8()
	if err != nil {
		return nil, err
	}
	r.HashAlg = NSEC3HashAlg(alg)
	if r.Flags, err = d.u8(); err != nil {
		return nil, err
	}
	if r.Iterations, err = d.u16(); err != nil {
		return nil, err
	}
	r.Salt, err = d.lenPrefixed()
	return r, err
}
