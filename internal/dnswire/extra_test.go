package dnswire

import (
	"strings"
	"testing"
)

func TestTypeStringsAndParse(t *testing.T) {
	for _, tc := range []struct {
		typ  Type
		want string
	}{
		{TypeA, "A"}, {TypeNSEC3, "NSEC3"}, {TypeNSEC3PARAM, "NSEC3PARAM"},
		{TypeRRSIG, "RRSIG"}, {Type(4242), "TYPE4242"},
	} {
		if got := tc.typ.String(); got != tc.want {
			t.Errorf("%d.String() = %q", tc.typ, got)
		}
		back, err := ParseType(tc.want)
		if err != nil || back != tc.typ {
			t.Errorf("ParseType(%q) = %v, %v", tc.want, back, err)
		}
	}
	if _, err := ParseType("NOPE"); err == nil {
		t.Error("ParseType accepted garbage")
	}
}

func TestRCodeOpcodeClassStrings(t *testing.T) {
	if RCodeNXDomain.String() != "NXDOMAIN" || RCodeServFail.String() != "SERVFAIL" {
		t.Error("rcode strings")
	}
	if RCode(200).String() != "RCODE200" {
		t.Error("unknown rcode")
	}
	if OpcodeQuery.String() != "QUERY" || Opcode(9).String() != "OPCODE9" {
		t.Error("opcode strings")
	}
	if ClassIN.String() != "IN" || Class(9).String() != "CLASS9" {
		t.Error("class strings")
	}
	if AlgECDSAP256SHA256.String() != "ECDSAP256SHA256" || SecAlgorithm(99).String() != "ALG99" {
		t.Error("algorithm strings")
	}
}

func TestEDECodeStrings(t *testing.T) {
	cases := map[EDECode]string{
		EDEUnsupportedNSEC3Iter: "Unsupported NSEC3 Iterations Value",
		EDEDNSSECIndeterminate:  "DNSSEC Indeterminate",
		EDENSECMissing:          "NSEC Missing",
		EDECode(99):             "EDE99",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	e := EDE{Code: EDEUnsupportedNSEC3Iter, Text: "151 > 150"}
	if !strings.Contains(e.String(), "27") || !strings.Contains(e.String(), "151 > 150") {
		t.Errorf("EDE.String() = %q", e)
	}
}

func TestRRSIGAppendSignedPart(t *testing.T) {
	sig := RRSIG{
		TypeCovered: TypeA, Algorithm: AlgEd25519, Labels: 2, OrigTTL: 300,
		Expiration: 2000, Inception: 1000, KeyTag: 42,
		SignerName: MustParseName("example.com"),
		Signature:  []byte{1, 2, 3, 4},
	}
	part := sig.AppendSignedPart(nil)
	full := AppendRData(nil, sig)
	if len(part) != len(full)-len(sig.Signature) {
		t.Fatalf("signed part %d, full %d", len(part), len(full))
	}
	// The prefix must be identical.
	for i := range part {
		if part[i] != full[i] {
			t.Fatalf("prefix mismatch at %d", i)
		}
	}
}

func TestNSEC3StringForms(t *testing.T) {
	r := NSEC3{
		HashAlg: NSEC3HashSHA1, Flags: NSEC3FlagOptOut, Iterations: 10,
		Salt:            []byte{0xAA, 0xBB},
		NextHashedOwner: make([]byte, 20),
		Types:           NewTypeBitmap(TypeA),
	}
	s := r.String()
	if !strings.Contains(s, "AABB") || !strings.Contains(s, " 10 ") {
		t.Errorf("NSEC3 string %q", s)
	}
	r.Salt = nil
	if !strings.Contains(r.String(), " - ") {
		t.Errorf("empty salt not dashed: %q", r.String())
	}
	p := NSEC3PARAM{HashAlg: 1, Iterations: 0}
	if p.String() != "1 0 0 -" {
		t.Errorf("NSEC3PARAM string %q", p.String())
	}
}

func TestNewQueryShape(t *testing.T) {
	q := NewQuery(7, MustParseName("x.example"), TypeAAAA, true)
	if !q.Header.RecursionDesired || q.Header.Response {
		t.Error("query flags wrong")
	}
	if q.Question().Type != TypeAAAA || q.Question().Class != ClassIN {
		t.Error("question wrong")
	}
	opt, ok := q.OPT()
	if !ok || !opt.DO || opt.UDPSize != DefaultUDPSize {
		t.Error("OPT wrong")
	}
	q2 := NewQuery(8, MustParseName("x.example"), TypeA, false)
	if opt2, _ := q2.OPT(); opt2.DO {
		t.Error("DO set without dnssec")
	}
}

func TestQuestionOnEmptyMessage(t *testing.T) {
	var m Message
	if q := m.Question(); q.Name != "" || q.Type != TypeNone {
		t.Errorf("zero question = %+v", q)
	}
}

func TestNameChildValidation(t *testing.T) {
	long := MustParseName(strings.Repeat("abcdefghij.", 22) + "com") // ~242 octets
	if _, err := long.Child(strings.Repeat("x", 60)); err == nil {
		t.Error("overlong child accepted")
	}
	if _, err := Root.Child(strings.Repeat("x", 64)); err == nil {
		t.Error("overlong label accepted")
	}
}

func TestFromLabelsExported(t *testing.T) {
	n, err := FromLabels("WWW", "Example", "COM")
	if err != nil || n != "www.example.com." {
		t.Fatalf("FromLabels = %q, %v", n, err)
	}
	root, err := FromLabels()
	if err != nil || root != Root {
		t.Fatalf("FromLabels() = %q", root)
	}
	if _, err := FromLabels(""); err == nil {
		t.Fatal("empty label accepted")
	}
}
