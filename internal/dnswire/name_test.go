package dnswire

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseNameBasics(t *testing.T) {
	cases := []struct {
		in      string
		want    Name
		wantErr bool
	}{
		{"", Root, false},
		{".", Root, false},
		{"example.com", "example.com.", false},
		{"example.com.", "example.com.", false},
		{"ExAmPlE.CoM.", "example.com.", false},
		{"www.example.com", "www.example.com.", false},
		{"*.example.com", "*.example.com.", false},
		{`a\.b.example.com`, `a\.b.example.com.`, false},
		{`a\046b.example.com`, `a\.b.example.com.`, false},
		{"a..b", "", true},
		{"..", "", true},
		{strings.Repeat("a", 64) + ".com", "", true},
		{`bad\`, "", true},
		{`bad\25`, "", true},
		{`bad\999`, "", true},
	}
	for _, c := range cases {
		got, err := ParseName(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseName(%q): want error, got %q", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseName(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNameTooLong(t *testing.T) {
	// 128 labels of 1 char = 2*128+1 = 257 > 255.
	long := strings.Repeat("a.", 128)
	if _, err := ParseName(long); err == nil {
		t.Fatalf("expected ErrNameTooLong for %d-octet name", len(long)+1)
	}
}

func TestLabelsAndParent(t *testing.T) {
	n := MustParseName("www.example.com")
	if got := n.Labels(); !reflect.DeepEqual(got, []string{"www", "example", "com"}) {
		t.Fatalf("Labels = %v", got)
	}
	if p := n.Parent(); p != "example.com." {
		t.Fatalf("Parent = %q", p)
	}
	if p := Root.Parent(); p != Root {
		t.Fatalf("Parent(root) = %q", p)
	}
	if n.CountLabels() != 3 || Root.CountLabels() != 0 {
		t.Fatal("CountLabels wrong")
	}
}

func TestChildAndWildcard(t *testing.T) {
	z := MustParseName("example.com")
	c, err := z.Child("API")
	if err != nil || c != "api.example.com." {
		t.Fatalf("Child = %q, %v", c, err)
	}
	w := z.Wildcard()
	if w != "*.example.com." || !w.IsWildcard() {
		t.Fatalf("Wildcard = %q", w)
	}
	if z.IsWildcard() {
		t.Fatal("z should not be wildcard")
	}
}

func TestIsSubdomainOf(t *testing.T) {
	cases := []struct {
		n, zone string
		want    bool
	}{
		{"www.example.com", "example.com", true},
		{"example.com", "example.com", true},
		{"example.com", ".", true},
		{"example.com", "com", true},
		{"example.org", "example.com", false},
		{"anexample.com", "example.com", false}, // label boundary matters
		{"com", "example.com", false},
	}
	for _, c := range cases {
		got := MustParseName(c.n).IsSubdomainOf(MustParseName(c.zone))
		if got != c.want {
			t.Errorf("IsSubdomainOf(%q, %q) = %v, want %v", c.n, c.zone, got, c.want)
		}
	}
}

func TestCanonicalCompareRFC4034Example(t *testing.T) {
	// The canonically ordered list from RFC 4034 §6.1.
	ordered := []Name{
		MustParseName("example"),
		MustParseName("a.example"),
		MustParseName("yljkjljk.a.example"),
		MustParseName("z.a.example"),
		MustParseName(`zabc.a.example`),
		MustParseName("z.example"),
		MustParseName(`\001.z.example`),
		MustParseName("*.z.example"),
		MustParseName(`\200.z.example`),
	}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := CanonicalCompare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("CanonicalCompare(%q,%q) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCanonicalCompareSortStability(t *testing.T) {
	names := []Name{
		MustParseName("b.com"), MustParseName("a.com"), MustParseName("com"),
		MustParseName("z.a.com"), MustParseName("a.b.com"),
	}
	sort.Slice(names, func(i, j int) bool { return CanonicalCompare(names[i], names[j]) < 0 })
	want := []Name{"com.", "a.com.", "z.a.com.", "b.com.", "a.b.com."}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("sorted = %v, want %v", names, want)
	}
}

func TestNameWireRoundTrip(t *testing.T) {
	for _, s := range []string{".", "com", "example.com", "www.a.very.deep.example.com", `q\.x.example.`} {
		n := MustParseName(s)
		wire := n.AppendWire(nil)
		got, off, err := readName(wire, 0)
		if err != nil {
			t.Fatalf("readName(%q): %v", s, err)
		}
		if got != n || off != len(wire) {
			t.Fatalf("round trip %q: got %q, off %d of %d", s, got, off, len(wire))
		}
		if n.WireLen() != len(wire) {
			t.Fatalf("WireLen(%q) = %d, wire is %d", s, n.WireLen(), len(wire))
		}
	}
}

func TestReadNameCompressed(t *testing.T) {
	// Manually build: at offset 0: "example.com." ; at offset 13: "www" + ptr->0.
	var msg []byte
	msg = MustParseName("example.com").AppendWire(msg)
	start := len(msg)
	msg = append(msg, 3, 'w', 'w', 'w', 0xC0, 0x00)
	n, off, err := readName(msg, start)
	if err != nil {
		t.Fatal(err)
	}
	if n != "www.example.com." {
		t.Fatalf("got %q", n)
	}
	if off != len(msg) {
		t.Fatalf("off = %d, want %d", off, len(msg))
	}
}

func TestReadNamePointerLoops(t *testing.T) {
	// Self-pointer must be rejected (forward/self pointers are invalid).
	msg := []byte{0xC0, 0x00}
	if _, _, err := readName(msg, 0); err == nil {
		t.Fatal("self-pointer accepted")
	}
	// Forward pointer.
	msg2 := []byte{0xC0, 0x04, 0, 0, 3, 'a', 'b', 'c', 0}
	if _, _, err := readName(msg2, 0); err == nil {
		t.Fatal("forward pointer accepted")
	}
	// Truncated label.
	msg3 := []byte{5, 'a', 'b'}
	if _, _, err := readName(msg3, 0); err == nil {
		t.Fatal("truncated label accepted")
	}
	// Reserved label type.
	msg4 := []byte{0x80, 0x01}
	if _, _, err := readName(msg4, 0); err == nil {
		t.Fatal("reserved label type accepted")
	}
}

// randomName generates a structurally valid random name for property tests.
func randomName(r *rand.Rand) Name {
	nLabels := r.Intn(5)
	labels := make([]string, nLabels)
	for i := range labels {
		l := make([]byte, 1+r.Intn(12))
		for j := range l {
			// Mix printable and binary octets.
			if r.Intn(4) == 0 {
				l[j] = byte(r.Intn(256))
			} else {
				l[j] = "abcdefghijklmnopqrstuvwxyz0123456789-"[r.Intn(37)]
			}
		}
		labels[i] = string(l)
	}
	n, err := fromLabels(labels)
	if err != nil {
		return Root
	}
	return n
}

func TestPropNamePresentationRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomName(r)
		back, err := ParseName(n.String())
		return err == nil && back == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropNameWireRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomName(r)
		wire := n.AppendWire(nil)
		back, off, err := readName(wire, 0)
		return err == nil && back == n && off == len(wire)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropCanonicalCompareIsOrdering(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomName(r), randomName(r), randomName(r)
		// Antisymmetry.
		if CanonicalCompare(a, b) != -CanonicalCompare(b, a) {
			return false
		}
		// Reflexivity.
		if CanonicalCompare(a, a) != 0 {
			return false
		}
		// Transitivity (a<=b && b<=c => a<=c).
		if CanonicalCompare(a, b) <= 0 && CanonicalCompare(b, c) <= 0 &&
			CanonicalCompare(a, c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestEscapeRoundTripBinaryLabel(t *testing.T) {
	n, err := fromLabels([]string{string([]byte{0, 1, '.', '\\', 255, 'a'}), "example"})
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseName(n.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != n {
		t.Fatalf("escape round trip: %q != %q", back, n)
	}
}
