// Package dnswire implements the DNS wire format: domain names with
// compression, message headers, EDNS(0) including Extended DNS Errors
// (RFC 8914), and a full resource-record codec covering every type the
// NSEC3 measurement pipeline needs (A, AAAA, NS, SOA, CNAME, TXT, MX,
// PTR, DNSKEY, RRSIG, DS, NSEC, NSEC3, NSEC3PARAM, OPT).
//
// The package is self-contained (standard library only) and is the base
// substrate for everything else in this repository: the DNSSEC signer,
// the NSEC3 chain builder, the authoritative server, the validating
// resolver, and the scanner all speak through these types.
package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Name is a fully-qualified domain name in normalized presentation form:
// lowercase, with a trailing dot. The root is ".". Binary label octets
// outside [!-~] or special characters are escaped \DDD / \c as in master
// files, so every Name round-trips through its string form losslessly.
//
// All constructors in this package normalize to this form, so Name values
// are directly comparable with == for case-insensitive DNS name equality.
type Name string

// Root is the DNS root name.
const Root Name = "."

// MaxNameWireLen is the maximum length of a domain name on the wire
// (RFC 1035 §3.1).
const MaxNameWireLen = 255

// MaxLabelLen is the maximum length of a single label (RFC 1035 §3.1).
const MaxLabelLen = 63

// Errors returned by name parsing and packing.
var (
	ErrNameTooLong  = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel   = errors.New("dnswire: empty label")
	ErrBadEscape    = errors.New("dnswire: bad escape sequence")
	ErrBadPointer   = errors.New("dnswire: bad compression pointer")
	ErrNameTrunc    = errors.New("dnswire: truncated name")
)

// ParseName parses a domain name in presentation format. Both absolute
// ("example.com.") and relative ("example.com") inputs are accepted;
// relative names are made absolute by appending the root. The empty
// string and "." both denote the root. Escapes \DDD and \c are honored.
func ParseName(s string) (Name, error) {
	labels, err := splitPresentation(s)
	if err != nil {
		return "", err
	}
	return fromLabels(labels)
}

// FromLabels assembles a Name from raw (unescaped) labels, leftmost
// first. Labels are lowercased and validated; no labels yields the root.
func FromLabels(labels ...string) (Name, error) { return fromLabels(labels) }

// MustParseName is ParseName that panics on error, for constants in tests
// and examples.
func MustParseName(s string) Name {
	n, err := ParseName(s)
	if err != nil {
		panic(err)
	}
	return n
}

// fromLabels assembles a normalized Name from raw (unescaped) label
// byte strings, lowercasing ASCII letters and validating lengths.
func fromLabels(labels []string) (Name, error) {
	if len(labels) == 0 {
		return Root, nil
	}
	wireLen := 1 // root byte
	var b strings.Builder
	for _, l := range labels {
		if len(l) == 0 {
			return "", ErrEmptyLabel
		}
		if len(l) > MaxLabelLen {
			return "", ErrLabelTooLong
		}
		wireLen += 1 + len(l)
		if wireLen > MaxNameWireLen {
			return "", ErrNameTooLong
		}
		b.WriteString(escapeLabel(lowerLabel(l)))
		b.WriteByte('.')
	}
	return Name(b.String()), nil
}

// lowerLabel lowercases ASCII letters in a raw label.
func lowerLabel(l string) string {
	for i := 0; i < len(l); i++ {
		if c := l[i]; c >= 'A' && c <= 'Z' {
			lb := []byte(l)
			for j := i; j < len(lb); j++ {
				lb[j] = lowerByte(lb[j])
			}
			return string(lb)
		}
	}
	return l
}

// splitPresentation splits a presentation-format name into raw label
// strings, decoding escapes and lowercasing ASCII letters.
func splitPresentation(s string) ([]string, error) {
	if s == "" || s == "." {
		return nil, nil
	}
	var labels []string
	var cur []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\':
			if i+1 >= len(s) {
				return nil, ErrBadEscape
			}
			next := s[i+1]
			if next >= '0' && next <= '9' {
				if i+3 >= len(s) || s[i+2] < '0' || s[i+2] > '9' || s[i+3] < '0' || s[i+3] > '9' {
					return nil, ErrBadEscape
				}
				v := int(next-'0')*100 + int(s[i+2]-'0')*10 + int(s[i+3]-'0')
				if v > 255 {
					return nil, ErrBadEscape
				}
				cur = append(cur, lowerByte(byte(v)))
				i += 3
			} else {
				cur = append(cur, lowerByte(next))
				i++
			}
		case c == '.':
			if len(cur) == 0 {
				return nil, ErrEmptyLabel
			}
			labels = append(labels, string(cur))
			cur = cur[:0]
		default:
			cur = append(cur, lowerByte(c))
		}
	}
	if len(cur) > 0 {
		labels = append(labels, string(cur))
	}
	return labels, nil
}

func lowerByte(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}

// escapeLabel renders a raw label in presentation form, escaping '.',
// '\' and non-printable octets.
func escapeLabel(l string) string {
	needs := false
	for i := 0; i < len(l); i++ {
		c := l[i]
		if c == '.' || c == '\\' || c < '!' || c > '~' {
			needs = true
			break
		}
	}
	if !needs {
		return l
	}
	var b strings.Builder
	for i := 0; i < len(l); i++ {
		c := l[i]
		switch {
		case c == '.' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < '!' || c > '~':
			fmt.Fprintf(&b, "\\%03d", c)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Labels returns the raw (unescaped) labels of n, leftmost first.
// The root has no labels.
func (n Name) Labels() []string {
	labels, err := splitPresentation(string(n))
	if err != nil {
		// A Name constructed through this package cannot fail here.
		panic(fmt.Sprintf("dnswire: corrupt Name %q: %v", string(n), err))
	}
	return labels
}

// String returns the presentation form ("." for the root).
func (n Name) String() string {
	if n == "" {
		return "."
	}
	return string(n)
}

// IsRoot reports whether n is the DNS root.
func (n Name) IsRoot() bool { return n == Root || n == "" }

// labelEnd returns the length of the first label of a normalized
// presentation string: the offset of the first unescaped '.', or
// len(s) if there is none. Escapes are skipped whole (\c is two bytes,
// \DDD is four), so a dot inside an escape never terminates the label.
func labelEnd(s string) int {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\\':
			if i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9' {
				i += 3
			} else {
				i++
			}
		case c == '.':
			return i
		}
	}
	return len(s)
}

// labelWireLen returns the number of raw octets a presentation-form
// label decodes to (each \c and \DDD escape is one octet).
func labelWireLen(lab string) int {
	n := 0
	for i := 0; i < len(lab); i++ {
		if lab[i] == '\\' {
			if i+1 < len(lab) && lab[i+1] >= '0' && lab[i+1] <= '9' {
				i += 3
			} else {
				i++
			}
		}
		n++
	}
	return n
}

// appendLabelWire appends the wire encoding of one presentation-form
// label to dst: a length octet followed by the raw label bytes, with
// \c and \DDD escapes decoded.
func appendLabelWire(dst []byte, lab string) []byte {
	lenOff := len(dst)
	dst = append(dst, 0)
	for i := 0; i < len(lab); i++ {
		c := lab[i]
		if c == '\\' && i+1 < len(lab) {
			next := lab[i+1]
			if next >= '0' && next <= '9' && i+3 < len(lab) {
				c = byte(int(next-'0')*100 + int(lab[i+2]-'0')*10 + int(lab[i+3]-'0'))
				i += 3
			} else {
				c = next
				i++
			}
		}
		dst = append(dst, c)
	}
	dst[lenOff] = byte(len(dst) - lenOff - 1)
	return dst
}

// CountLabels returns the number of labels (0 for the root).
func (n Name) CountLabels() int {
	s := string(n)
	count := 0
	for pos := 0; pos < len(s); {
		end := pos + labelEnd(s[pos:])
		if end > pos {
			count++
		}
		pos = end + 1
	}
	return count
}

// Parent returns the name with the leftmost label removed. The parent of
// the root is the root. A suffix of a normalized Name starting at a
// label boundary is itself a normalized Name, so this is a slice, not a
// rebuild.
func (n Name) Parent() Name {
	if n.IsRoot() {
		return Root
	}
	s := string(n)
	end := labelEnd(s)
	if end+1 >= len(s) {
		return Root
	}
	return Name(s[end+1:])
}

// Child returns label + "." + n, validating the result.
func (n Name) Child(label string) (Name, error) {
	labels := append([]string{strings.ToLower(label)}, n.Labels()...)
	return fromLabels(labels)
}

// MustChild is Child that panics on error.
func (n Name) MustChild(label string) Name {
	c, err := n.Child(label)
	if err != nil {
		panic(err)
	}
	return c
}

// IsSubdomainOf reports whether n is equal to or a descendant of zone.
// Both names are normalized, so n is under zone exactly when zone is a
// suffix of n starting at one of n's label boundaries.
func (n Name) IsSubdomainOf(zone Name) bool {
	if zone.IsRoot() {
		return true
	}
	s, z := string(n), string(zone)
	for pos := 0; pos < len(s); {
		rest := len(s) - pos
		if rest == len(z) {
			return s[pos:] == z
		}
		if rest < len(z) {
			return false
		}
		pos += labelEnd(s[pos:]) + 1
	}
	return false
}

// Wildcard returns "*." + n.
func (n Name) Wildcard() Name { return n.MustChild("*") }

// IsWildcard reports whether the leftmost label of n is "*".
func (n Name) IsWildcard() bool {
	s := string(n)
	return len(s) >= 2 && s[0] == '*' && s[1] == '.'
}

// CanonicalCompare implements the canonical DNS name ordering of
// RFC 4034 §6.1: names are compared right-to-left label by label, each
// label as a left-justified octet string with uppercase US-ASCII mapped
// to lowercase (our labels are already lowercase). It returns -1, 0, or
// +1.
func CanonicalCompare(a, b Name) int {
	al, bl := a.Labels(), b.Labels()
	i, j := len(al)-1, len(bl)-1
	for i >= 0 && j >= 0 {
		if c := strings.Compare(al[i], bl[j]); c != 0 {
			return c
		}
		i--
		j--
	}
	switch {
	case i >= 0:
		return 1
	case j >= 0:
		return -1
	}
	return 0
}

// WireLen returns the encoded length of n without compression.
func (n Name) WireLen() int {
	s := string(n)
	l := 1
	for pos := 0; pos < len(s); {
		end := pos + labelEnd(s[pos:])
		if end > pos {
			l += 1 + labelWireLen(s[pos:end])
		}
		pos = end + 1
	}
	return l
}

// appendName appends the uncompressed wire encoding of n to dst,
// decoding presentation escapes directly into dst without splitting n
// into label strings.
func appendName(dst []byte, n Name) []byte {
	s := string(n)
	for pos := 0; pos < len(s); {
		end := pos + labelEnd(s[pos:])
		if end > pos {
			dst = appendLabelWire(dst, s[pos:end])
		}
		pos = end + 1
	}
	return append(dst, 0)
}

// AppendWire appends the uncompressed wire encoding of n to dst. This is
// the canonical (lowercase, uncompressed) form used by DNSSEC signing
// and by NSEC3 hashing.
func (n Name) AppendWire(dst []byte) []byte { return appendName(dst, n) }

// presBufLen bounds the presentation form of any wire-legal name: at
// most 254 raw label octets (wireLen <= 255), each rendered as at most
// four presentation bytes (\DDD), plus one dot per label. 4*254 = 1016.
const presBufLen = 1024

// appendPresByte writes one raw label octet into the presentation
// buffer at offset w, escaping '.', '\' and non-printable octets the
// same way escapeLabel does, and returns the new offset.
func appendPresByte(pres *[presBufLen]byte, w int, c byte) int {
	switch {
	case c == '.' || c == '\\':
		pres[w] = '\\'
		pres[w+1] = c
		return w + 2
	case c < '!' || c > '~':
		pres[w] = '\\'
		pres[w+1] = '0' + c/100
		pres[w+2] = '0' + c/10%10
		pres[w+3] = '0' + c%10
		return w + 4
	default:
		pres[w] = c
		return w + 1
	}
}

// internName converts an assembled presentation buffer into a Name.
// This is the single allocation of the name decode path: a Name must
// own its bytes, so the stack buffer is copied into a fresh string.
//
//repro:allocok a decoded Name owns its memory by contract; one string per decoded name is the floor
func internName(pres []byte) Name { return Name(pres) }

// readName decodes a possibly-compressed name starting at off in msg.
// It returns the name and the offset just past the name's first
// occurrence (i.e. past the pointer if the name was compressed).
// The presentation form is assembled in a stack buffer; the only
// allocation is the final string conversion in internName.
func readName(msg []byte, off int) (Name, int, error) {
	var pres [presBufLen]byte
	w := 0          // bytes of presentation form written
	ptrBudget := 64 // generous loop guard; real messages chain a few at most
	end := -1       // offset to return (set at first pointer)
	wireLen := 1
	for {
		if off < 0 || off >= len(msg) {
			return "", 0, ErrNameTrunc
		}
		c := msg[off]
		switch {
		case c == 0:
			if end < 0 {
				end = off + 1
			}
			if w == 0 {
				return Root, end, nil
			}
			return internName(pres[:w]), end, nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrNameTrunc
			}
			if ptrBudget--; ptrBudget < 0 {
				return "", 0, ErrBadPointer
			}
			ptr := int(c&0x3F)<<8 | int(msg[off+1])
			if end < 0 {
				end = off + 2
			}
			if ptr >= off {
				return "", 0, ErrBadPointer
			}
			off = ptr
		case c&0xC0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type 0x%02x", c&0xC0)
		default:
			if off+1+int(c) > len(msg) {
				return "", 0, ErrNameTrunc
			}
			wireLen += 1 + int(c)
			if wireLen > MaxNameWireLen {
				return "", 0, ErrNameTooLong
			}
			for i := 0; i < int(c); i++ {
				w = appendPresByte(&pres, w, lowerByte(msg[off+1+i]))
			}
			pres[w] = '.'
			w++
			off += 1 + int(c)
		}
	}
}
