// Package dnswire implements the DNS wire format: domain names with
// compression, message headers, EDNS(0) including Extended DNS Errors
// (RFC 8914), and a full resource-record codec covering every type the
// NSEC3 measurement pipeline needs (A, AAAA, NS, SOA, CNAME, TXT, MX,
// PTR, DNSKEY, RRSIG, DS, NSEC, NSEC3, NSEC3PARAM, OPT).
//
// The package is self-contained (standard library only) and is the base
// substrate for everything else in this repository: the DNSSEC signer,
// the NSEC3 chain builder, the authoritative server, the validating
// resolver, and the scanner all speak through these types.
package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Name is a fully-qualified domain name in normalized presentation form:
// lowercase, with a trailing dot. The root is ".". Binary label octets
// outside [!-~] or special characters are escaped \DDD / \c as in master
// files, so every Name round-trips through its string form losslessly.
//
// All constructors in this package normalize to this form, so Name values
// are directly comparable with == for case-insensitive DNS name equality.
type Name string

// Root is the DNS root name.
const Root Name = "."

// MaxNameWireLen is the maximum length of a domain name on the wire
// (RFC 1035 §3.1).
const MaxNameWireLen = 255

// MaxLabelLen is the maximum length of a single label (RFC 1035 §3.1).
const MaxLabelLen = 63

// Errors returned by name parsing and packing.
var (
	ErrNameTooLong  = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel   = errors.New("dnswire: empty label")
	ErrBadEscape    = errors.New("dnswire: bad escape sequence")
	ErrBadPointer   = errors.New("dnswire: bad compression pointer")
	ErrNameTrunc    = errors.New("dnswire: truncated name")
)

// ParseName parses a domain name in presentation format. Both absolute
// ("example.com.") and relative ("example.com") inputs are accepted;
// relative names are made absolute by appending the root. The empty
// string and "." both denote the root. Escapes \DDD and \c are honored.
func ParseName(s string) (Name, error) {
	labels, err := splitPresentation(s)
	if err != nil {
		return "", err
	}
	return fromLabels(labels)
}

// FromLabels assembles a Name from raw (unescaped) labels, leftmost
// first. Labels are lowercased and validated; no labels yields the root.
func FromLabels(labels ...string) (Name, error) { return fromLabels(labels) }

// MustParseName is ParseName that panics on error, for constants in tests
// and examples.
func MustParseName(s string) Name {
	n, err := ParseName(s)
	if err != nil {
		panic(err)
	}
	return n
}

// fromLabels assembles a normalized Name from raw (unescaped) label
// byte strings, lowercasing ASCII letters and validating lengths.
func fromLabels(labels []string) (Name, error) {
	if len(labels) == 0 {
		return Root, nil
	}
	wireLen := 1 // root byte
	var b strings.Builder
	for _, l := range labels {
		if len(l) == 0 {
			return "", ErrEmptyLabel
		}
		if len(l) > MaxLabelLen {
			return "", ErrLabelTooLong
		}
		wireLen += 1 + len(l)
		if wireLen > MaxNameWireLen {
			return "", ErrNameTooLong
		}
		b.WriteString(escapeLabel(lowerLabel(l)))
		b.WriteByte('.')
	}
	return Name(b.String()), nil
}

// lowerLabel lowercases ASCII letters in a raw label.
func lowerLabel(l string) string {
	for i := 0; i < len(l); i++ {
		if c := l[i]; c >= 'A' && c <= 'Z' {
			lb := []byte(l)
			for j := i; j < len(lb); j++ {
				lb[j] = lowerByte(lb[j])
			}
			return string(lb)
		}
	}
	return l
}

// splitPresentation splits a presentation-format name into raw label
// strings, decoding escapes and lowercasing ASCII letters.
func splitPresentation(s string) ([]string, error) {
	if s == "" || s == "." {
		return nil, nil
	}
	var labels []string
	var cur []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\':
			if i+1 >= len(s) {
				return nil, ErrBadEscape
			}
			next := s[i+1]
			if next >= '0' && next <= '9' {
				if i+3 >= len(s) || s[i+2] < '0' || s[i+2] > '9' || s[i+3] < '0' || s[i+3] > '9' {
					return nil, ErrBadEscape
				}
				v := int(next-'0')*100 + int(s[i+2]-'0')*10 + int(s[i+3]-'0')
				if v > 255 {
					return nil, ErrBadEscape
				}
				cur = append(cur, lowerByte(byte(v)))
				i += 3
			} else {
				cur = append(cur, lowerByte(next))
				i++
			}
		case c == '.':
			if len(cur) == 0 {
				return nil, ErrEmptyLabel
			}
			labels = append(labels, string(cur))
			cur = cur[:0]
		default:
			cur = append(cur, lowerByte(c))
		}
	}
	if len(cur) > 0 {
		labels = append(labels, string(cur))
	}
	return labels, nil
}

func lowerByte(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}

// escapeLabel renders a raw label in presentation form, escaping '.',
// '\' and non-printable octets.
func escapeLabel(l string) string {
	needs := false
	for i := 0; i < len(l); i++ {
		c := l[i]
		if c == '.' || c == '\\' || c < '!' || c > '~' {
			needs = true
			break
		}
	}
	if !needs {
		return l
	}
	var b strings.Builder
	for i := 0; i < len(l); i++ {
		c := l[i]
		switch {
		case c == '.' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < '!' || c > '~':
			fmt.Fprintf(&b, "\\%03d", c)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Labels returns the raw (unescaped) labels of n, leftmost first.
// The root has no labels.
func (n Name) Labels() []string {
	labels, err := splitPresentation(string(n))
	if err != nil {
		// A Name constructed through this package cannot fail here.
		panic(fmt.Sprintf("dnswire: corrupt Name %q: %v", string(n), err))
	}
	return labels
}

// String returns the presentation form ("." for the root).
func (n Name) String() string {
	if n == "" {
		return "."
	}
	return string(n)
}

// IsRoot reports whether n is the DNS root.
func (n Name) IsRoot() bool { return n == Root || n == "" }

// CountLabels returns the number of labels (0 for the root).
func (n Name) CountLabels() int { return len(n.Labels()) }

// Parent returns the name with the leftmost label removed. The parent of
// the root is the root.
func (n Name) Parent() Name {
	labels := n.Labels()
	if len(labels) == 0 {
		return Root
	}
	m, err := fromLabels(labels[1:])
	if err != nil {
		panic(err)
	}
	return m
}

// Child returns label + "." + n, validating the result.
func (n Name) Child(label string) (Name, error) {
	labels := append([]string{strings.ToLower(label)}, n.Labels()...)
	return fromLabels(labels)
}

// MustChild is Child that panics on error.
func (n Name) MustChild(label string) Name {
	c, err := n.Child(label)
	if err != nil {
		panic(err)
	}
	return c
}

// IsSubdomainOf reports whether n is equal to or a descendant of zone.
func (n Name) IsSubdomainOf(zone Name) bool {
	if zone.IsRoot() {
		return true
	}
	nl, zl := n.Labels(), zone.Labels()
	if len(nl) < len(zl) {
		return false
	}
	off := len(nl) - len(zl)
	for i := range zl {
		if nl[off+i] != zl[i] {
			return false
		}
	}
	return true
}

// Wildcard returns "*." + n.
func (n Name) Wildcard() Name { return n.MustChild("*") }

// IsWildcard reports whether the leftmost label of n is "*".
func (n Name) IsWildcard() bool {
	l := n.Labels()
	return len(l) > 0 && l[0] == "*"
}

// CanonicalCompare implements the canonical DNS name ordering of
// RFC 4034 §6.1: names are compared right-to-left label by label, each
// label as a left-justified octet string with uppercase US-ASCII mapped
// to lowercase (our labels are already lowercase). It returns -1, 0, or
// +1.
func CanonicalCompare(a, b Name) int {
	al, bl := a.Labels(), b.Labels()
	i, j := len(al)-1, len(bl)-1
	for i >= 0 && j >= 0 {
		if c := strings.Compare(al[i], bl[j]); c != 0 {
			return c
		}
		i--
		j--
	}
	switch {
	case i >= 0:
		return 1
	case j >= 0:
		return -1
	}
	return 0
}

// WireLen returns the encoded length of n without compression.
func (n Name) WireLen() int {
	l := 1
	for _, lab := range n.Labels() {
		l += 1 + len(lab)
	}
	return l
}

// appendName appends the uncompressed wire encoding of n to dst.
func appendName(dst []byte, n Name) []byte {
	for _, lab := range n.Labels() {
		dst = append(dst, byte(len(lab)))
		dst = append(dst, lab...)
	}
	return append(dst, 0)
}

// AppendWire appends the uncompressed wire encoding of n to dst. This is
// the canonical (lowercase, uncompressed) form used by DNSSEC signing
// and by NSEC3 hashing.
func (n Name) AppendWire(dst []byte) []byte { return appendName(dst, n) }

// readName decodes a possibly-compressed name starting at off in msg.
// It returns the name and the offset just past the name's first
// occurrence (i.e. past the pointer if the name was compressed).
func readName(msg []byte, off int) (Name, int, error) {
	var labels []string
	ptrBudget := 64 // generous loop guard; real messages chain a few at most
	end := -1       // offset to return (set at first pointer)
	wireLen := 1
	for {
		if off < 0 || off >= len(msg) {
			return "", 0, ErrNameTrunc
		}
		c := msg[off]
		switch {
		case c == 0:
			if end < 0 {
				end = off + 1
			}
			name, err := fromLabels(labels)
			if err != nil {
				return "", 0, err
			}
			return name, end, nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrNameTrunc
			}
			if ptrBudget--; ptrBudget < 0 {
				return "", 0, ErrBadPointer
			}
			ptr := int(c&0x3F)<<8 | int(msg[off+1])
			if end < 0 {
				end = off + 2
			}
			if ptr >= off {
				return "", 0, ErrBadPointer
			}
			off = ptr
		case c&0xC0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type 0x%02x", c&0xC0)
		default:
			if off+1+int(c) > len(msg) {
				return "", 0, ErrNameTrunc
			}
			wireLen += 1 + int(c)
			if wireLen > MaxNameWireLen {
				return "", 0, ErrNameTooLong
			}
			lab := make([]byte, c)
			for i := range lab {
				lab[i] = lowerByte(msg[off+1+i])
			}
			labels = append(labels, string(lab))
			off += 1 + int(c)
		}
	}
}
