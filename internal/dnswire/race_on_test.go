//go:build race

package dnswire

// raceEnabled reports whether the race detector is active. Allocation
// pin tests that depend on sync.Pool reuse skip under -race: the
// detector deliberately drops pooled items to widen its search, which
// makes steady-state allocation counts nondeterministic.
const raceEnabled = true
