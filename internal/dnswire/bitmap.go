package dnswire

import (
	"fmt"
	"sort"
	"strings"
)

// TypeBitmap is the set of RR types present at a name, as carried in the
// NSEC and NSEC3 "Type Bit Maps" field (RFC 4034 §4.1.2, RFC 5155 §3.2.1).
type TypeBitmap []Type

// NewTypeBitmap builds a normalized (sorted, deduplicated) bitmap.
func NewTypeBitmap(types ...Type) TypeBitmap {
	tb := make(TypeBitmap, 0, len(types))
	seen := make(map[Type]bool, len(types))
	for _, t := range types {
		if !seen[t] {
			seen[t] = true
			tb = append(tb, t)
		}
	}
	sort.Slice(tb, func(i, j int) bool { return tb[i] < tb[j] })
	return tb
}

// Contains reports whether t is present in the bitmap.
func (tb TypeBitmap) Contains(t Type) bool {
	i := sort.Search(len(tb), func(i int) bool { return tb[i] >= t })
	return i < len(tb) && tb[i] == t
}

// String renders the bitmap in presentation form ("A NS SOA RRSIG …").
func (tb TypeBitmap) String() string {
	parts := make([]string, len(tb))
	for i, t := range tb {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}

// appendBitmap appends the window-block wire encoding of the bitmap.
// The bitmap must be normalized (sorted ascending); NewTypeBitmap
// guarantees this.
func appendBitmap(dst []byte, tb TypeBitmap) []byte {
	if len(tb) == 0 {
		return dst
	}
	// Gather types per 256-type window.
	i := 0
	for i < len(tb) {
		window := byte(tb[i] >> 8)
		var bits [32]byte
		maxOctet := 0
		for i < len(tb) && byte(tb[i]>>8) == window {
			low := byte(tb[i])
			octet := int(low / 8)
			bits[octet] |= 0x80 >> (low % 8)
			if octet > maxOctet {
				maxOctet = octet
			}
			i++
		}
		dst = append(dst, window, byte(maxOctet+1))
		dst = append(dst, bits[:maxOctet+1]...)
	}
	return dst
}

// readBitmap decodes a window-block bitmap occupying data entirely.
func readBitmap(data []byte) (TypeBitmap, error) {
	var tb TypeBitmap
	lastWindow := -1
	for len(data) > 0 {
		if len(data) < 2 {
			return nil, fmt.Errorf("dnswire: truncated type bitmap")
		}
		window := int(data[0])
		length := int(data[1])
		if length == 0 || length > 32 {
			return nil, fmt.Errorf("dnswire: bad bitmap window length %d", length)
		}
		if window <= lastWindow {
			return nil, fmt.Errorf("dnswire: bitmap windows out of order")
		}
		lastWindow = window
		data = data[2:]
		if len(data) < length {
			return nil, fmt.Errorf("dnswire: truncated bitmap window")
		}
		for octet := 0; octet < length; octet++ {
			for bit := 0; bit < 8; bit++ {
				if data[octet]&(0x80>>bit) != 0 {
					tb = append(tb, Type(window<<8|octet*8+bit))
				}
			}
		}
		data = data[length:]
	}
	return tb, nil
}
