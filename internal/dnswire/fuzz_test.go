package dnswire

import (
	"bytes"
	"net/netip"
	"testing"
)

// fuzzSeedMessages packs a few representative messages so the fuzzer
// starts from structurally valid wire data instead of pure noise.
func fuzzSeedMessages(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	q := &Message{
		Header:    Header{ID: 0x1234, RecursionDesired: true},
		Questions: []Question{{Name: MustParseName("example.com"), Type: TypeNSEC3PARAM, Class: ClassIN}},
	}
	if wire, err := q.Pack(); err == nil {
		seeds = append(seeds, wire)
	}
	resp := &Message{
		Header:    Header{ID: 0x1234, Response: true, Authoritative: true},
		Questions: []Question{{Name: MustParseName("example.com"), Type: TypeA, Class: ClassIN}},
		Answers: []RR{
			{Name: MustParseName("example.com"), Class: ClassIN, TTL: 300, Data: A{Addr: netip.MustParseAddr("192.0.2.1")}},
			{Name: MustParseName("example.com"), Class: ClassIN, Data: NSEC3PARAM{HashAlg: NSEC3HashSHA1, Iterations: 10, Salt: []byte{0xAA, 0xBB}}},
		},
	}
	if wire, err := resp.Pack(); err == nil {
		seeds = append(seeds, wire)
	}
	return seeds
}

// FuzzDecodeMessage asserts the codec's core robustness contract: no
// input, however malformed, may panic the decoder, and any message it
// accepts must survive re-encoding.
func FuzzDecodeMessage(f *testing.F) {
	for _, wire := range fuzzSeedMessages(f) {
		f.Add(wire)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xC0}, 32)) // compression-pointer soup
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		if _, err := m.Pack(); err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
	})
}

// FuzzDecodeName targets the name decompressor directly, including
// arbitrary (negative, huge) start offsets and pointer cycles.
func FuzzDecodeName(f *testing.F) {
	for _, wire := range fuzzSeedMessages(f) {
		f.Add(wire, 12) // first name in a message starts after the header
	}
	f.Add([]byte{3, 'w', 'w', 'w', 0}, 0)
	f.Add([]byte{0xC0, 0x00}, 0) // self-pointing compression pointer
	f.Add([]byte{1, 'a', 0}, -5)
	f.Fuzz(func(t *testing.T, data []byte, off int) {
		name, _, err := readName(data, off)
		if err != nil {
			return
		}
		// A name the decoder accepts must be encodable again.
		if got := name.AppendWire(nil); len(got) == 0 {
			t.Fatalf("decoded name %q re-encoded to nothing", name)
		}
	})
}
