package dnswire

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// DefaultUDPSize is the EDNS(0) UDP payload size this stack advertises.
const DefaultUDPSize = 1232

// EDECode is an Extended DNS Error INFO-CODE (RFC 8914 §5.2).
type EDECode uint16

// Extended DNS Error codes relevant to the NSEC3 study.
const (
	EDEOther                EDECode = 0
	EDEDNSSECIndeterminate  EDECode = 5 // returned by Google Public DNS for high iterations
	EDEDNSSECBogus          EDECode = 6
	EDESignatureExpired     EDECode = 7
	EDENSECMissing          EDECode = 12 // returned by Cisco OpenDNS for high iterations
	EDEUnsupportedNSEC3Iter EDECode = 27 // "Unsupported NSEC3 iterations value" (RFC 9276 Items 10–11)
)

// String returns the code mnemonic.
func (c EDECode) String() string {
	switch c {
	case EDEOther:
		return "Other"
	case EDEDNSSECIndeterminate:
		return "DNSSEC Indeterminate"
	case EDEDNSSECBogus:
		return "DNSSEC Bogus"
	case EDESignatureExpired:
		return "Signature Expired"
	case EDENSECMissing:
		return "NSEC Missing"
	case EDEUnsupportedNSEC3Iter:
		return "Unsupported NSEC3 Iterations Value"
	}
	return fmt.Sprintf("EDE%d", uint16(c))
}

// EDE is one Extended DNS Error option (RFC 8914).
type EDE struct {
	Code EDECode
	Text string // EXTRA-TEXT, optional human-readable detail
}

// String renders the option as RFC 8914 suggests in comments.
func (e EDE) String() string {
	if e.Text == "" {
		return fmt.Sprintf("EDE: %d (%s)", uint16(e.Code), e.Code)
	}
	return fmt.Sprintf("EDE: %d (%s): %q", uint16(e.Code), e.Code, e.Text)
}

// EDNS option codes.
const (
	optCodeEDE = 15 // RFC 8914
)

// OPT is the EDNS(0) pseudo-RR (RFC 6891). On the wire its class field
// carries the requester's UDP payload size and its TTL carries the
// extended RCODE high bits, version, and the DO flag.
type OPT struct {
	UDPSize      uint16
	ExtRCodeHigh uint8
	Version      uint8
	DO           bool // DNSSEC OK (RFC 3225)
	EDEs         []EDE
	Unknown      []OptOption // options this package has no codec for
}

// OptOption is an opaque EDNS option.
type OptOption struct {
	Code uint16
	Data []byte
}

// Type implements RData.
func (*OPT) Type() Type { return TypeOPT }

// String implements RData.
func (o *OPT) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "OPT: udp=%d version=%d", o.UDPSize, o.Version)
	if o.DO {
		b.WriteString(" do")
	}
	for _, e := range o.EDEs {
		b.WriteString("; ")
		b.WriteString(e.String())
	}
	return b.String()
}

func (o *OPT) appendRData(e *encoder) {
	for _, ede := range o.EDEs {
		e.u16(optCodeEDE)
		e.u16(uint16(2 + len(ede.Text)))
		e.u16(uint16(ede.Code))
		e.buf = append(e.buf, ede.Text...)
	}
	for _, u := range o.Unknown {
		e.u16(u.Code)
		e.u16(uint16(len(u.Data)))
		e.buf = append(e.buf, u.Data...)
	}
}

// ttl packs the OPT TTL field.
func (o *OPT) ttl() uint32 {
	t := uint32(o.ExtRCodeHigh)<<24 | uint32(o.Version)<<16
	if o.DO {
		t |= 1 << 15
	}
	return t
}

// AsRR wraps the OPT into a pseudo resource record ready to append to
// the additional section.
func (o *OPT) AsRR() RR {
	return RR{Name: Root, Class: Class(o.UDPSize), TTL: o.ttl(), Data: o}
}

// parseOPT decodes an OPT pseudo-RR given the already-read class and TTL.
func parseOPT(d *decoder, class Class, ttl uint32, rdlen int) (*OPT, error) {
	o := &OPT{
		UDPSize:      uint16(class),
		ExtRCodeHigh: uint8(ttl >> 24),
		Version:      uint8(ttl >> 16),
		DO:           ttl&(1<<15) != 0,
	}
	end := d.off + rdlen
	if end > d.end {
		return nil, fmt.Errorf("dnswire: OPT RDATA overruns message")
	}
	for d.off < end {
		code, err := d.u16()
		if err != nil {
			return nil, err
		}
		olen, err := d.u16()
		if err != nil {
			return nil, err
		}
		data, err := d.bytes(int(olen))
		if err != nil {
			return nil, err
		}
		switch code {
		case optCodeEDE:
			if len(data) < 2 {
				return nil, fmt.Errorf("dnswire: EDE option shorter than 2 octets")
			}
			o.EDEs = append(o.EDEs, EDE{
				Code: EDECode(binary.BigEndian.Uint16(data)),
				Text: string(data[2:]),
			})
		default:
			o.Unknown = append(o.Unknown, OptOption{Code: code, Data: data})
		}
	}
	return o, nil
}

// NewQuery builds a standard recursive query for (name, type) with
// EDNS(0) and the DO bit set when dnssec is true.
func NewQuery(id uint16, name Name, t Type, dnssec bool) *Message {
	m := &Message{
		Header: Header{
			ID:               id,
			Opcode:           OpcodeQuery,
			RecursionDesired: true,
		},
		Questions: []Question{{Name: name, Type: t, Class: ClassIN}},
	}
	opt := &OPT{UDPSize: DefaultUDPSize, DO: dnssec}
	m.Additional = append(m.Additional, opt.AsRR())
	return m
}
