package dnswire

import (
	"bytes"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func mkA(name string, ip string) RR {
	return RR{
		Name: MustParseName(name), Class: ClassIN, TTL: 300,
		Data: A{Addr: netip.MustParseAddr(ip)},
	}
}

func sampleMessage() *Message {
	return &Message{
		Header: Header{
			ID: 0x1234, Response: true, Authoritative: true,
			RecursionDesired: true, RecursionAvailable: true,
			AuthenticatedData: true, RCode: RCodeNoError,
		},
		Questions: []Question{{Name: MustParseName("www.example.com"), Type: TypeA, Class: ClassIN}},
		Answers:   []RR{mkA("www.example.com", "192.0.2.1")},
		Authority: []RR{
			{
				Name: MustParseName("example.com"), Class: ClassIN, TTL: 3600,
				Data: NS{Host: MustParseName("ns1.example.com")},
			},
			{
				Name: MustParseName("example.com"), Class: ClassIN, TTL: 3600,
				Data: SOA{
					MName: MustParseName("ns1.example.com"), RName: MustParseName("hostmaster.example.com"),
					Serial: 2024030501, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
				},
			},
		},
		Additional: []RR{mkA("ns1.example.com", "192.0.2.53")},
	}
}

func TestMessagePackUnpackRoundTrip(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestCompressionShrinksMessage(t *testing.T) {
	m := sampleMessage()
	compressed, err := m.PackBuffer(nil, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := m.PackBuffer(nil, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(compressed) >= len(plain) {
		t.Fatalf("compression did not help: %d >= %d", len(compressed), len(plain))
	}
	// Both decode to the same message.
	a, err := Unpack(compressed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Unpack(plain)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("compressed and plain decode differently")
	}
}

func TestTruncationDropsRecordsAndSetsTC(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 1, Response: true},
		Questions: []Question{{Name: MustParseName("example.com"), Type: TypeTXT, Class: ClassIN}},
	}
	for i := 0; i < 64; i++ {
		m.Answers = append(m.Answers, RR{
			Name: MustParseName("example.com"), Class: ClassIN, TTL: 60,
			Data: TXT{Strings: []string{string(bytes.Repeat([]byte{'x'}, 200))}},
		})
	}
	wire, err := m.PackBuffer(nil, 512, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) > 512 {
		t.Fatalf("packed %d > 512", len(wire))
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Header.Truncated {
		t.Fatal("TC bit not set")
	}
	if len(got.Answers) >= 64 {
		t.Fatal("no records dropped")
	}
}

func TestAllRDataTypesRoundTrip(t *testing.T) {
	owner := MustParseName("test.example.com")
	rrs := []RR{
		{Name: owner, Class: ClassIN, TTL: 1, Data: A{Addr: netip.MustParseAddr("203.0.113.7")}},
		{Name: owner, Class: ClassIN, TTL: 2, Data: AAAA{Addr: netip.MustParseAddr("2001:db8::1")}},
		{Name: owner, Class: ClassIN, TTL: 3, Data: NS{Host: MustParseName("ns.example.net")}},
		{Name: owner, Class: ClassIN, TTL: 4, Data: CNAME{Target: MustParseName("alias.example.org")}},
		{Name: owner, Class: ClassIN, TTL: 5, Data: PTR{Target: MustParseName("host.example.com")}},
		{Name: owner, Class: ClassIN, TTL: 6, Data: MX{Preference: 10, Host: MustParseName("mail.example.com")}},
		{Name: owner, Class: ClassIN, TTL: 7, Data: TXT{Strings: []string{"hello", "world"}}},
		{Name: owner, Class: ClassIN, TTL: 8, Data: SOA{
			MName: MustParseName("ns.example.com"), RName: MustParseName("root.example.com"),
			Serial: 1, Refresh: 2, Retry: 3, Expire: 4, Minimum: 5,
		}},
		{Name: owner, Class: ClassIN, TTL: 9, Data: DNSKEY{
			Flags: DNSKEYFlagZone | DNSKEYFlagSEP, Protocol: 3,
			Algorithm: AlgECDSAP256SHA256, PublicKey: bytes.Repeat([]byte{0xAB}, 64),
		}},
		{Name: owner, Class: ClassIN, TTL: 10, Data: RRSIG{
			TypeCovered: TypeA, Algorithm: AlgECDSAP256SHA256, Labels: 3,
			OrigTTL: 300, Expiration: 1700000000, Inception: 1690000000,
			KeyTag: 12345, SignerName: MustParseName("example.com"),
			Signature: bytes.Repeat([]byte{0xCD}, 64),
		}},
		{Name: owner, Class: ClassIN, TTL: 11, Data: DS{
			KeyTag: 4242, Algorithm: AlgECDSAP256SHA256, DigestType: DigestSHA256,
			Digest: bytes.Repeat([]byte{0xEF}, 32),
		}},
		{Name: owner, Class: ClassIN, TTL: 12, Data: NSEC{
			NextName: MustParseName("next.example.com"),
			Types:    NewTypeBitmap(TypeA, TypeAAAA, TypeRRSIG, TypeNSEC),
		}},
		{Name: owner, Class: ClassIN, TTL: 13, Data: NSEC3{
			HashAlg: NSEC3HashSHA1, Flags: NSEC3FlagOptOut, Iterations: 100,
			Salt:            []byte{0xAA, 0xBB},
			NextHashedOwner: bytes.Repeat([]byte{0x11}, 20),
			Types:           NewTypeBitmap(TypeA, TypeRRSIG),
		}},
		{Name: owner, Class: ClassIN, TTL: 14, Data: NSEC3PARAM{
			HashAlg: NSEC3HashSHA1, Iterations: 5, Salt: []byte{0x01, 0x02, 0x03},
		}},
		{Name: owner, Class: ClassIN, TTL: 15, Data: Generic{T: Type(4242), Data: []byte{1, 2, 3}}},
	}
	m := &Message{
		Header:    Header{ID: 7, Response: true},
		Questions: []Question{{Name: owner, Type: TypeANY, Class: ClassIN}},
		Answers:   rrs,
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != len(rrs) {
		t.Fatalf("got %d answers, want %d", len(got.Answers), len(rrs))
	}
	for i := range rrs {
		if !reflect.DeepEqual(got.Answers[i], rrs[i]) {
			t.Errorf("answer %d (%s): got %+v want %+v",
				i, rrs[i].Type(), got.Answers[i], rrs[i])
		}
	}
}

func TestEDNSAndEDERoundTrip(t *testing.T) {
	m := NewQuery(99, MustParseName("it-151.rfc9276-in-the-wild.com"), TypeA, true)
	opt, ok := m.OPT()
	if !ok {
		t.Fatal("no OPT")
	}
	if !opt.DO {
		t.Fatal("DO not set")
	}
	// Simulate a Technitium-style SERVFAIL with EDE 27.
	resp := &Message{
		Header:    Header{ID: 99, Response: true, RCode: RCodeServFail},
		Questions: m.Questions,
	}
	rOpt := &OPT{UDPSize: 1232, DO: true, EDEs: []EDE{{
		Code: EDEUnsupportedNSEC3Iter,
		Text: "NSEC3 iterations 151 exceeds limit 150",
	}}}
	resp.Additional = append(resp.Additional, rOpt.AsRR())
	wire, err := resp.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	gOpt, ok := got.OPT()
	if !ok {
		t.Fatal("no OPT in decoded response")
	}
	if len(gOpt.EDEs) != 1 || gOpt.EDEs[0].Code != EDEUnsupportedNSEC3Iter {
		t.Fatalf("EDE = %+v", gOpt.EDEs)
	}
	if gOpt.EDEs[0].Text != "NSEC3 iterations 151 exceeds limit 150" {
		t.Fatalf("EDE text = %q", gOpt.EDEs[0].Text)
	}
}

func TestExtendedRCode(t *testing.T) {
	m := &Message{Header: Header{ID: 1, Response: true}}
	m.SetExtendedRCode(RCode(23)) // BADCOOKIE, needs 5 bits
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ExtendedRCode() != RCode(23) {
		t.Fatalf("ExtendedRCode = %d", got.ExtendedRCode())
	}
}

func TestUnpackRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x00},
		bytes.Repeat([]byte{0xFF}, 11),
		// Valid header claiming 1 question but no body.
		{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0},
	}
	for i, c := range cases {
		if _, err := Unpack(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestUnpackRejectsTrailingBytes(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unpack(append(wire, 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestPropMessageRoundTripFuzzedNames(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := &Message{
			Header:    Header{ID: uint16(r.Uint32()), Response: r.Intn(2) == 0},
			Questions: []Question{{Name: randomName(r), Type: TypeA, Class: ClassIN}},
		}
		for i := 0; i < r.Intn(4); i++ {
			m.Answers = append(m.Answers, RR{
				Name: randomName(r), Class: ClassIN, TTL: r.Uint32(),
				Data: NS{Host: randomName(r)},
			})
		}
		wire, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropUnpackNeverPanics(t *testing.T) {
	// Unpack arbitrary mutations of a valid message; must never panic.
	base, err := sampleMessage().Pack()
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fuzz := append([]byte(nil), base...)
		for i := 0; i < 1+r.Intn(8); i++ {
			fuzz[r.Intn(len(fuzz))] = byte(r.Intn(256))
		}
		_, _ = Unpack(fuzz) // errors fine, panics not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeBitmap(t *testing.T) {
	tb := NewTypeBitmap(TypeRRSIG, TypeA, TypeA, TypeNSEC3, Type(1234))
	if len(tb) != 4 {
		t.Fatalf("dedup failed: %v", tb)
	}
	for _, typ := range []Type{TypeA, TypeRRSIG, TypeNSEC3, Type(1234)} {
		if !tb.Contains(typ) {
			t.Errorf("missing %s", typ)
		}
	}
	if tb.Contains(TypeSOA) {
		t.Error("false positive")
	}
	wire := appendBitmap(nil, tb)
	back, err := readBitmap(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, tb) {
		t.Fatalf("bitmap round trip: %v != %v", back, tb)
	}
}

func TestPropTypeBitmapRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		types := make([]Type, len(raw))
		for i, v := range raw {
			types[i] = Type(v)
		}
		tb := NewTypeBitmap(types...)
		back, err := readBitmap(appendBitmap(nil, tb))
		if err != nil {
			return false
		}
		if len(tb) == 0 {
			return len(back) == 0
		}
		return reflect.DeepEqual(back, tb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReadBitmapRejectsMalformed(t *testing.T) {
	cases := [][]byte{
		{0x00},                               // truncated header
		{0x00, 0x00},                         // zero-length window
		{0x00, 0x21},                         // window length > 32
		{0x00, 0x02, 0xFF},                   // truncated window data
		{0x01, 0x01, 0x80, 0x00, 0x01, 0x80}, // windows out of order
	}
	for i, c := range cases {
		if _, err := readBitmap(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMessageStringSmoke(t *testing.T) {
	s := sampleMessage().String()
	for _, want := range []string{"NOERROR", "QUESTION", "ANSWER", "AUTHORITY", "192.0.2.1"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
