//go:build !race

package dnswire

// raceEnabled is false in a normal build; see race_on_test.go.
const raceEnabled = false
