package dnswire

import (
	"net/netip"
	"testing"
)

// TestNameEncodeAllocFree pins the hot encode path: AppendWire into a
// buffer with spare capacity must not allocate. The //repro:hotpath
// annotation on PackBuffer is enforced statically by hotpathalloc;
// this test enforces the same contract dynamically, so a regression
// the analyzer's conservative rules happen to miss still fails here.
func TestNameEncodeAllocFree(t *testing.T) {
	name := MustParseName("a.long-ish.label.chain.example.org.")
	buf := make([]byte, 0, MaxNameWireLen)
	if n := testing.AllocsPerRun(200, func() {
		buf = name.AppendWire(buf[:0])
	}); n != 0 {
		t.Errorf("Name.AppendWire into spare capacity allocates %.1f times per run, want 0", n)
	}
}

// TestNameDecodeSingleAlloc pins the decode floor: a decoded Name owns
// its memory by contract, so readName pays exactly one allocation —
// the interned string — and nothing else (the presentation form is
// built in a stack buffer).
func TestNameDecodeSingleAlloc(t *testing.T) {
	name := MustParseName("a.long-ish.label.chain.example.org.")
	wire := name.AppendWire(nil)
	if n := testing.AllocsPerRun(200, func() {
		if _, _, err := readName(wire, 0); err != nil {
			t.Fatal(err)
		}
	}); n != 1 {
		t.Errorf("readName allocates %.1f times per run, want exactly 1 (the interned Name)", n)
	}

	// The root name is the Root constant: zero allocations.
	rootWire := Root.AppendWire(nil)
	if n := testing.AllocsPerRun(200, func() {
		if _, _, err := readName(rootWire, 0); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("readName of the root allocates %.1f times per run, want 0", n)
	}
}

// TestPackBufferAllocFree pins the full message encode path: rendering
// a response into a caller-provided buffer with a warmed encoder pool
// must not allocate.
func TestPackBufferAllocFree(t *testing.T) {
	q := MustParseName("www.example.org.")
	msg := &Message{
		Header:    Header{ID: 1, Response: true},
		Questions: []Question{{Name: q, Type: TypeA, Class: ClassIN}},
		Answers: []RR{{
			Name: q, Class: ClassIN, TTL: 300,
			Data: &A{Addr: netip.MustParseAddr("192.0.2.1")},
		}},
	}
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; steady-state alloc counts are nondeterministic")
	}
	dst := make([]byte, 0, 512)
	// Warm the encoder pool so the measurement sees steady state.
	if _, err := msg.PackBuffer(dst, 0, true); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := msg.PackBuffer(dst[:0], 0, true); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("PackBuffer into a caller-provided buffer allocates %.1f times per run, want 0", n)
	}
}

// TestUnpackOwnsItsMemory pins the contract the pooled UDP read loop
// depends on: no field of an unpacked Message aliases the input
// buffer, so the serve loop may return the read buffer to its pool the
// moment Unpack returns — even while the handler, running on another
// goroutine, still holds the Message. The scribble below simulates the
// pool handing the buffer to the next packet.
func TestUnpackOwnsItsMemory(t *testing.T) {
	name := MustParseName("alias.check.example.org.")
	msg := &Message{
		Header:    Header{ID: 42, Response: true},
		Questions: []Question{{Name: name, Type: TypeTXT, Class: ClassIN}},
		Answers: []RR{
			{Name: name, Class: ClassIN, TTL: 300, Data: TXT{Strings: []string{"payload"}}},
			{Name: name, Class: ClassIN, TTL: 300, Data: NSEC3PARAM{
				HashAlg: NSEC3HashSHA1, Iterations: 5, Salt: []byte{0xde, 0xad, 0xbe, 0xef},
			}},
		},
	}
	wire, err := msg.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wire {
		wire[i] = 0xFF
	}
	if got.Question().Name != name {
		t.Errorf("question name aliased the read buffer: %q", got.Question().Name)
	}
	if got.Answers[0].Name != name {
		t.Errorf("answer owner aliased the read buffer: %q", got.Answers[0].Name)
	}
	if s := got.Answers[0].Data.(TXT).Strings[0]; s != "payload" {
		t.Errorf("TXT payload aliased the read buffer: %q", s)
	}
	p := got.Answers[1].Data.(NSEC3PARAM)
	if len(p.Salt) != 4 || p.Salt[0] != 0xde || p.Salt[3] != 0xef {
		t.Errorf("NSEC3PARAM salt aliased the read buffer: %x", p.Salt)
	}
}
