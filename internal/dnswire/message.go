package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Header flag bits within the third/fourth header octets, as a uint16.
const (
	flagQR = 1 << 15
	flagAA = 1 << 10
	flagTC = 1 << 9
	flagRD = 1 << 8
	flagRA = 1 << 7
	flagAD = 1 << 5
	flagCD = 1 << 4
)

// Header is the fixed 12-octet DNS message header (RFC 1035 §4.1.1)
// with the DNSSEC AD/CD bits (RFC 4035 §3.1.6, §3.2.2).
type Header struct {
	ID                 uint16
	Response           bool // QR
	Opcode             Opcode
	Authoritative      bool  // AA
	Truncated          bool  // TC
	RecursionDesired   bool  // RD
	RecursionAvailable bool  // RA
	AuthenticatedData  bool  // AD
	CheckingDisabled   bool  // CD
	RCode              RCode // low 4 bits; extended bits live in OPT
}

func (h Header) flags() uint16 {
	var f uint16
	if h.Response {
		f |= flagQR
	}
	f |= uint16(h.Opcode&OpcodeMask) << 11
	if h.Authoritative {
		f |= flagAA
	}
	if h.Truncated {
		f |= flagTC
	}
	if h.RecursionDesired {
		f |= flagRD
	}
	if h.RecursionAvailable {
		f |= flagRA
	}
	if h.AuthenticatedData {
		f |= flagAD
	}
	if h.CheckingDisabled {
		f |= flagCD
	}
	f |= uint16(h.RCode & RCodeMask)
	return f
}

func headerFromFlags(f uint16) Header {
	return Header{
		Response:           f&flagQR != 0,
		Opcode:             Opcode(f>>11) & OpcodeMask,
		Authoritative:      f&flagAA != 0,
		Truncated:          f&flagTC != 0,
		RecursionDesired:   f&flagRD != 0,
		RecursionAvailable: f&flagRA != 0,
		AuthenticatedData:  f&flagAD != 0,
		CheckingDisabled:   f&flagCD != 0,
		RCode:              RCode(f) & RCodeMask,
	}
}

// Question is a query tuple (RFC 1035 §4.1.2).
type Question struct {
	Name  Name
	Type  Type
	Class Class
}

// String renders the question in dig-like form.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// RR is a resource record: owner name, class, TTL and typed payload.
// The Type lives on the payload (RR.Type() delegates to Data).
type RR struct {
	Name  Name
	Class Class
	TTL   uint32
	Data  RData
}

// Type returns the record type from the payload.
func (r RR) Type() Type { return r.Data.Type() }

// String renders the record in master-file form.
func (r RR) String() string {
	return fmt.Sprintf("%s %d %s %s %s", r.Name, r.TTL, r.Class, r.Type(), r.Data)
}

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR // includes the OPT pseudo-RR, if any
}

// Question returns the first question, or a zero Question if none.
func (m *Message) Question() Question {
	if len(m.Questions) == 0 {
		return Question{}
	}
	return m.Questions[0]
}

// OPT returns the OPT pseudo-RR from the additional section, if present.
func (m *Message) OPT() (*OPT, bool) {
	for i := range m.Additional {
		if o, ok := m.Additional[i].Data.(*OPT); ok {
			return o, true
		}
	}
	return nil, false
}

// ExtendedRCode combines the 4-bit header RCODE with the high bits from
// the OPT TTL field (RFC 6891 §6.1.3).
func (m *Message) ExtendedRCode() RCode {
	rc := m.Header.RCode
	if o, ok := m.OPT(); ok {
		rc |= RCode(o.ExtRCodeHigh) << 4
	}
	return rc
}

// SetExtendedRCode splits rc into the header and OPT high bits. If rc
// needs more than 4 bits and no OPT is present, an OPT is added.
func (m *Message) SetExtendedRCode(rc RCode) {
	m.Header.RCode = rc & RCodeMask
	high := uint8(rc >> 4)
	o, ok := m.OPT()
	if !ok {
		if high == 0 {
			return
		}
		o = &OPT{UDPSize: DefaultUDPSize}
		m.Additional = append(m.Additional, RR{Name: Root, Class: Class(o.UDPSize), Data: o})
	}
	o.ExtRCodeHigh = high
}

// errTruncate signals that packing exceeded the size budget.
var errTruncate = errors.New("dnswire: message exceeds size limit")

// errQuestionTooBig reports a question section that alone exceeds the
// caller's size budget; nothing can be dropped to make it fit.
var errQuestionTooBig = errors.New("dnswire: question alone exceeds size limit")

// errRDataTooLong reports an RDATA payload that cannot be described by
// the 16-bit RDLENGTH field.
var errRDataTooLong = errors.New("dnswire: RDATA exceeds 65535 octets")

// Pack encodes the message with name compression and no size limit.
func (m *Message) Pack() ([]byte, error) { return m.PackBuffer(nil, 0, true) }

// PackBuffer encodes the message into dst (may be nil). If maxSize > 0
// and the encoding would exceed it, records are dropped section by
// section from the tail, the TC bit is set, and the shortened message is
// returned (standard UDP truncation behaviour). compress toggles name
// compression (the ablation benches flip it).
//
//repro:hotpath every outbound message — authserver answers, scanner probes — is rendered here; with a caller-provided dst it must not allocate
func (m *Message) PackBuffer(dst []byte, maxSize int, compress bool) ([]byte, error) {
	counts := [3]int{len(m.Answers), len(m.Authority), len(m.Additional)}
	for {
		buf, err := m.packCounts(dst, counts, compress)
		if err == nil {
			if maxSize > 0 && len(buf) > maxSize {
				err = errTruncate
			} else {
				return buf, nil
			}
		}
		if !errors.Is(err, errTruncate) {
			return nil, err
		}
		// Drop one record from the last non-empty section and retry
		// with TC set.
		switch {
		case counts[2] > 0:
			counts[2]--
		case counts[1] > 0:
			counts[1]--
		case counts[0] > 0:
			counts[0]--
		default:
			return nil, errQuestionTooBig
		}
		m.Header.Truncated = true
	}
}

func (m *Message) packCounts(dst []byte, counts [3]int, compress bool) ([]byte, error) {
	e := encPool.Get().(*encoder)
	defer releaseEncoder(e)
	e.buf = dst[:0]
	e.compress = compress
	e.u16(m.Header.ID)
	e.u16(m.Header.flags())
	e.u16(uint16(len(m.Questions)))
	e.u16(uint16(counts[0]))
	e.u16(uint16(counts[1]))
	e.u16(uint16(counts[2]))
	for _, q := range m.Questions {
		e.name(q.Name, true)
		e.u16(uint16(q.Type))
		e.u16(uint16(q.Class))
	}
	sections := [3][]RR{
		m.Answers[:counts[0]],
		m.Authority[:counts[1]],
		m.Additional[:counts[2]],
	}
	for _, sec := range sections {
		for _, rr := range sec {
			if err := packRR(e, rr); err != nil {
				return nil, err
			}
		}
	}
	return e.buf, nil
}

func packRR(e *encoder, rr RR) error {
	e.name(rr.Name, true)
	e.u16(uint16(rr.Type()))
	if o, ok := rr.Data.(*OPT); ok {
		// The OPT struct is authoritative for the fields the pseudo-RR
		// smuggles through class and TTL (RFC 6891 §6.1.2–6.1.3).
		e.u16(o.UDPSize)
		e.u32(o.ttl())
	} else {
		e.u16(uint16(rr.Class))
		e.u32(rr.TTL)
	}
	lenOff := len(e.buf)
	e.u16(0) // RDLENGTH placeholder
	start := len(e.buf)
	rr.Data.appendRData(e)
	rdlen := len(e.buf) - start
	if rdlen > 0xFFFF {
		return errRDataTooLong
	}
	e.buf[lenOff] = byte(rdlen >> 8)
	e.buf[lenOff+1] = byte(rdlen)
	return nil
}

// Unpack decodes a wire-format message. The returned Message owns all
// of its memory: no field aliases msg, so callers may recycle the read
// buffer the moment Unpack returns (the UDP serve loop does).
//
//repro:allocok decoding materializes a fresh Message by contract; the serve path amortizes it by recycling read buffers, not messages
func Unpack(msg []byte) (*Message, error) {
	d := &decoder{msg: msg, end: len(msg)}
	var m Message
	id, err := d.u16()
	if err != nil {
		return nil, err
	}
	flags, err := d.u16()
	if err != nil {
		return nil, err
	}
	m.Header = headerFromFlags(flags)
	m.Header.ID = id
	var counts [4]uint16
	for i := range counts {
		if counts[i], err = d.u16(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < int(counts[0]); i++ {
		var q Question
		if q.Name, err = d.name(); err != nil {
			return nil, fmt.Errorf("dnswire: question %d: %w", i, err)
		}
		t, err := d.u16()
		if err != nil {
			return nil, err
		}
		c, err := d.u16()
		if err != nil {
			return nil, err
		}
		q.Type, q.Class = Type(t), Class(c)
		m.Questions = append(m.Questions, q)
	}
	for s, dstp := range []*[]RR{&m.Answers, &m.Authority, &m.Additional} {
		for i := 0; i < int(counts[s+1]); i++ {
			rr, err := unpackRR(d)
			if err != nil {
				return nil, fmt.Errorf("dnswire: section %d record %d: %w", s, i, err)
			}
			*dstp = append(*dstp, rr)
		}
	}
	if d.off != len(msg) {
		return nil, fmt.Errorf("dnswire: %d trailing octets after message", len(msg)-d.off)
	}
	return &m, nil
}

func unpackRR(d *decoder) (RR, error) {
	var rr RR
	var err error
	if rr.Name, err = d.name(); err != nil {
		return rr, err
	}
	t16, err := d.u16()
	if err != nil {
		return rr, err
	}
	t := Type(t16)
	c, err := d.u16()
	if err != nil {
		return rr, err
	}
	rr.Class = Class(c)
	if rr.TTL, err = d.u32(); err != nil {
		return rr, err
	}
	rdlen, err := d.u16()
	if err != nil {
		return rr, err
	}
	if t == TypeOPT {
		opt, err := parseOPT(d, rr.Class, rr.TTL, int(rdlen))
		if err != nil {
			return rr, err
		}
		rr.Data = opt
		return rr, nil
	}
	rr.Data, err = parseRData(t, d.msg, d.off, int(rdlen))
	if err != nil {
		return rr, err
	}
	d.off += int(rdlen)
	return rr, nil
}

// String renders the message in a dig-like multi-section dump,
// convenient in tests and the example programs.
func (m *Message) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, ";; opcode: %s, status: %s, id: %d\n",
		m.Header.Opcode, m.ExtendedRCode(), m.Header.ID)
	fmt.Fprintf(&b, ";; flags:")
	for _, f := range []struct {
		on   bool
		name string
	}{
		{m.Header.Response, "qr"}, {m.Header.Authoritative, "aa"},
		{m.Header.Truncated, "tc"}, {m.Header.RecursionDesired, "rd"},
		{m.Header.RecursionAvailable, "ra"}, {m.Header.AuthenticatedData, "ad"},
		{m.Header.CheckingDisabled, "cd"},
	} {
		if f.on {
			b.WriteByte(' ')
			b.WriteString(f.name)
		}
	}
	b.WriteByte('\n')
	if len(m.Questions) > 0 {
		b.WriteString(";; QUESTION:\n")
		for _, q := range m.Questions {
			fmt.Fprintf(&b, ";%s\n", q)
		}
	}
	for _, sec := range []struct {
		name string
		rrs  []RR
	}{{"ANSWER", m.Answers}, {"AUTHORITY", m.Authority}, {"ADDITIONAL", m.Additional}} {
		if len(sec.rrs) == 0 {
			continue
		}
		fmt.Fprintf(&b, ";; %s:\n", sec.name)
		for _, rr := range sec.rrs {
			if _, isOPT := rr.Data.(*OPT); isOPT {
				fmt.Fprintf(&b, ";; %s\n", rr.Data)
				continue
			}
			fmt.Fprintf(&b, "%s\n", rr)
		}
	}
	return b.String()
}
