package dnswire

import "fmt"

// Type is a DNS resource record type code.
type Type uint16

// Resource record types used by the pipeline.
const (
	TypeNone       Type = 0
	TypeA          Type = 1
	TypeNS         Type = 2
	TypeCNAME      Type = 5
	TypeSOA        Type = 6
	TypePTR        Type = 12
	TypeMX         Type = 15
	TypeTXT        Type = 16
	TypeAAAA       Type = 28
	TypeOPT        Type = 41
	TypeDS         Type = 43
	TypeRRSIG      Type = 46
	TypeNSEC       Type = 47
	TypeDNSKEY     Type = 48
	TypeNSEC3      Type = 50
	TypeNSEC3PARAM Type = 51
	TypeAXFR       Type = 252
	TypeANY        Type = 255
)

var typeNames = map[Type]string{
	TypeA:          "A",
	TypeNS:         "NS",
	TypeCNAME:      "CNAME",
	TypeSOA:        "SOA",
	TypePTR:        "PTR",
	TypeMX:         "MX",
	TypeTXT:        "TXT",
	TypeAAAA:       "AAAA",
	TypeOPT:        "OPT",
	TypeDS:         "DS",
	TypeRRSIG:      "RRSIG",
	TypeNSEC:       "NSEC",
	TypeDNSKEY:     "DNSKEY",
	TypeNSEC3:      "NSEC3",
	TypeNSEC3PARAM: "NSEC3PARAM",
	TypeAXFR:       "AXFR",
	TypeANY:        "ANY",
}

// String returns the mnemonic ("A", "NSEC3", …) or "TYPEn" (RFC 3597).
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// ParseType parses a type mnemonic or RFC 3597 "TYPEn" form.
func ParseType(s string) (Type, error) {
	for t, n := range typeNames {
		if n == s {
			return t, nil
		}
	}
	var v uint16
	if _, err := fmt.Sscanf(s, "TYPE%d", &v); err == nil {
		return Type(v), nil
	}
	return 0, fmt.Errorf("dnswire: unknown RR type %q", s)
}

// Class is a DNS class code.
type Class uint16

// Classes. Only IN matters in practice; ClassNone and ClassANY appear in
// dynamic update, and OPT abuses the class field for UDP payload size.
const (
	ClassIN   Class = 1
	ClassNone Class = 254
	ClassANY  Class = 255
)

// String returns the class mnemonic or "CLASSn".
func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassNone:
		return "NONE"
	case ClassANY:
		return "ANY"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// RCode is a DNS response code, including extended codes carried in OPT.
type RCode uint16

// Response codes (RFC 1035 §4.1.1, RFC 6895).
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5

	// RCodeMask selects the 4 header bits of an RCODE; the high bits
	// travel in the OPT TTL field (RFC 6891 §6.1.3).
	RCodeMask RCode = 0xF
)

var rcodeNames = map[RCode]string{
	RCodeNoError:  "NOERROR",
	RCodeFormErr:  "FORMERR",
	RCodeServFail: "SERVFAIL",
	RCodeNXDomain: "NXDOMAIN",
	RCodeNotImp:   "NOTIMP",
	RCodeRefused:  "REFUSED",
}

// String returns the RCODE mnemonic or "RCODEn".
func (r RCode) String() string {
	if s, ok := rcodeNames[r]; ok {
		return s
	}
	return fmt.Sprintf("RCODE%d", uint16(r))
}

// Opcode is a DNS operation code.
type Opcode uint8

// Opcodes.
const (
	OpcodeQuery  Opcode = 0
	OpcodeNotify Opcode = 4
	OpcodeUpdate Opcode = 5

	// OpcodeMask selects the 4-bit OPCODE header field (RFC 1035 §4.1.1).
	OpcodeMask Opcode = 0xF
)

// String returns the opcode mnemonic.
func (o Opcode) String() string {
	switch o {
	case OpcodeQuery:
		return "QUERY"
	case OpcodeNotify:
		return "NOTIFY"
	case OpcodeUpdate:
		return "UPDATE"
	}
	return fmt.Sprintf("OPCODE%d", uint8(o))
}

// SecAlgorithm is a DNSSEC signing algorithm number (RFC 4034 App. A,
// updated by RFCs 5702, 6605, 8080).
type SecAlgorithm uint8

// DNSSEC algorithms implemented by internal/dnssec.
const (
	AlgRSASHA256       SecAlgorithm = 8
	AlgECDSAP256SHA256 SecAlgorithm = 13
	AlgEd25519         SecAlgorithm = 15
)

// String returns the algorithm mnemonic.
func (a SecAlgorithm) String() string {
	switch a {
	case AlgRSASHA256:
		return "RSASHA256"
	case AlgECDSAP256SHA256:
		return "ECDSAP256SHA256"
	case AlgEd25519:
		return "ED25519"
	}
	return fmt.Sprintf("ALG%d", uint8(a))
}

// DigestType is a DS digest algorithm (RFC 4034 §5.1.3 registry).
type DigestType uint8

// DS digest types.
const (
	DigestSHA1   DigestType = 1
	DigestSHA256 DigestType = 2
	DigestSHA384 DigestType = 4
)

// NSEC3HashAlg is an NSEC3 hash algorithm number (RFC 5155 §11).
// SHA-1 is the only value ever assigned.
type NSEC3HashAlg uint8

// NSEC3HashSHA1 is the sole defined NSEC3 hash algorithm.
const NSEC3HashSHA1 NSEC3HashAlg = 1

// DNSKEY flag bits (RFC 4034 §2.1.1).
const (
	DNSKEYFlagZone = 0x0100 // ZONE: key may sign zone data
	DNSKEYFlagSEP  = 0x0001 // SEP: secure entry point (conventionally the KSK)
)

// NSEC3 flag bits (RFC 5155 §3.1.2).
const (
	NSEC3FlagOptOut = 0x01 // Opt-Out: span may cover unsigned delegations
)
