package distsurvey

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/respop"
)

// The smallest resolver study worth distributing: ScaleDen 2000 gives
// ~200 resolvers across the four quadrants, split over two shards.
const (
	rsScaleDen = 2000
	rsSeed     = 5
	rsShards   = 2
)

func resolverSpec(t *testing.T) core.ResolverStudySpec {
	t.Helper()
	spec, err := core.ResolverStudyConfig{
		ScaleDen: rsScaleDen, Seed: rsSeed, Shards: rsShards,
	}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// renderResolverReport turns a resolver-study report into user-visible
// bytes, the byte-identical half of the equivalence contract.
func renderResolverReport(r *core.ResolverStudyReport) string {
	var b bytes.Buffer
	for _, q := range respop.Quadrants() {
		if s := r.Series[q]; s != nil {
			analysis.RenderRCodeSeries(&b, s)
		}
	}
	return b.String()
}

// TestDistributedResolverStudyEquivalence is the resolver-study twin of
// TestDistributedGoldenEquivalence: a coordinator with two workers
// produces the byte-identical §4.2 report and the same structural
// metrics as the in-process RunResolverStudy — and a survey worker (a
// different study kind entirely) is refused at the handshake.
func TestDistributedResolverStudyEquivalence(t *testing.T) {
	ctx := context.Background()
	spec := resolverSpec(t)

	inReg := obs.NewRegistry()
	inproc, err := core.RunResolverStudy(ctx, core.ResolverStudyConfig{
		ScaleDen: rsScaleDen, Seed: rsSeed, Shards: rsShards, Obs: inReg,
	})
	if err != nil {
		t.Fatal(err)
	}

	sn := netsim.NewStreamNet()
	ln, err := sn.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coord, err := NewResolverCoordinator(ResolverConfig{Spec: spec, Obs: reg, LeaseTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	type serveRes struct {
		report *core.ResolverStudyReport
		err    error
	}
	serveCh := make(chan serveRes, 1)
	go func() {
		report, err := coord.ServeResolverStudy(ctx, ln)
		serveCh <- serveRes{report, err}
	}()

	// A survey worker — same seed, wrong study kind — must be refused at
	// the handshake: the hash preimages are disjoint by construction.
	surveySpec, err := core.SurveyConfig{Registered: 240, Seed: rsSeed, Shards: rsShards}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	conn, err := sn.DialStream(ctx, "coord")
	if err != nil {
		t.Fatal(err)
	}
	var hs *HandshakeError
	if err := RunWorker(ctx, conn, surveySpec, WorkerConfig{Name: "wrong-kind"}); !errors.As(err, &hs) {
		t.Fatalf("survey worker on a resolver-study coordinator returned %v, want *HandshakeError", err)
	}

	workers := make([]chan error, 2)
	for i := range workers {
		ch := make(chan error, 1)
		workers[i] = ch
		go func() {
			conn, err := sn.DialStream(ctx, "coord")
			if err != nil {
				ch <- err
				return
			}
			ch <- RunResolverWorker(ctx, conn, spec, WorkerConfig{})
		}()
	}
	res := <-serveCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	for _, ch := range workers {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}

	if !reflect.DeepEqual(res.report, inproc) {
		t.Errorf("distributed resolver-study report differs from in-process run")
	}
	if got, want := renderResolverReport(res.report), renderResolverReport(inproc); got != want {
		t.Errorf("rendered report differs:\n%s\nvs\n%s", got, want)
	}
	// The probe-path counters must merge to the in-process totals; the
	// sign counters legitimately differ (one cache per worker process).
	for _, name := range []string{
		"resolverstudy_probed_open_ipv4_total",
		"resolverstudy_probed_open_ipv6_total",
		"resolverstudy_probed_closed_ipv4_total",
		"resolverstudy_probed_closed_ipv6_total",
		"resolverstudy_probe_failures_total",
		"resolverstudy_shards_completed_total",
	} {
		if got, want := counterValue(reg, name), counterValue(inReg, name); got != want {
			t.Errorf("%s = %d distributed, %d in-process", name, got, want)
		}
	}
	if got := counterValue(reg, "distsurvey_leases_granted_total"); got != rsShards {
		t.Errorf("leases_granted = %d, want %d", got, rsShards)
	}
}

// TestResolverStoreRoundTrip pins the resolver-study checkpoint path:
// a written shard survives reopen, and a survey store never resumes
// from a resolver-study directory (disjoint hashes).
func TestResolverStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := resolverSpec(t)
	store, cps, _, err := OpenResolverStore(dir, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 0 {
		t.Fatalf("fresh store returned %d checkpoints", len(cps))
	}
	out := &core.ResolverShardOutcome{Index: 1, ProbeFailures: 3}
	if err := store.Write(&Checkpoint{ROutcome: out}); err != nil {
		t.Fatal(err)
	}
	if err := store.Write(&Checkpoint{}); err == nil {
		t.Fatal("empty checkpoint accepted")
	}

	_, cps, skipped, err := OpenResolverStore(dir, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(cps) != 1 {
		t.Fatalf("resume returned %d checkpoints (%d skipped), want 1 (0)", len(cps), skipped)
	}
	if cps[0].ROutcome == nil || cps[0].ROutcome.Index != 1 || cps[0].ROutcome.ProbeFailures != 3 {
		t.Fatalf("resumed checkpoint = %+v", cps[0].ROutcome)
	}

	surveySpec, err := core.SurveyConfig{Registered: 240, Seed: rsSeed}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	var mismatch *StateMismatchError
	if _, _, _, err := OpenStore(dir, surveySpec, true); !errors.As(err, &mismatch) {
		t.Fatalf("survey resume over resolver-study state returned %v, want *StateMismatchError", err)
	}
}
