package distsurvey

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/testbed"
)

// Every test runs the same small survey so the two in-process golden
// runs (Shards=1 and Shards=3) are computed once per test binary.
const (
	goldenRegistered = 240
	goldenSeed       = 7
	goldenShards     = 3
)

var (
	goldenOnce sync.Once
	goldenErr  error
	// goldenR1 is the Shards=1 report — the strongest equivalence
	// target. goldenR3/goldenReg3 are the Shards=3 in-process run,
	// whose per-shard structure matches the distributed run exactly,
	// making its structural counters directly comparable.
	goldenR1, goldenR3 *core.SurveyReport
	goldenReg3         *obs.Registry
)

func golden(t *testing.T) (*core.SurveyReport, *core.SurveyReport, *obs.Registry) {
	t.Helper()
	goldenOnce.Do(func() {
		ctx := context.Background()
		goldenR1, goldenErr = core.RunSurvey(ctx, core.SurveyConfig{
			Registered: goldenRegistered, Seed: goldenSeed, Shards: 1,
		})
		if goldenErr != nil {
			return
		}
		goldenReg3 = obs.NewRegistry()
		goldenR3, goldenErr = core.RunSurvey(ctx, core.SurveyConfig{
			Registered: goldenRegistered, Seed: goldenSeed, Shards: goldenShards, Obs: goldenReg3,
		})
	})
	if goldenErr != nil {
		t.Fatal(goldenErr)
	}
	return goldenR1, goldenR3, goldenReg3
}

func goldenSpec(t *testing.T) core.SurveySpec {
	t.Helper()
	spec, err := core.SurveyConfig{
		Registered: goldenRegistered, Seed: goldenSeed, Shards: goldenShards,
	}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// renderReport turns a report into the user-visible bytes, the
// "byte-identical" half of the golden equivalence contract.
func renderReport(r *core.SurveyReport) string {
	var b bytes.Buffer
	analysis.RenderCDF(&b, "iter", r.IterCDF, []int{0, 25, 500})
	analysis.RenderCDF(&b, "salt", r.SaltCDF, []int{0, 8, 16})
	analysis.RenderOperatorTable(&b, r.Operators.Top(10))
	fmt.Fprintf(&b, "errors=%d under_id=%d axfr=%d\n",
		r.ScanErrors, r.DomainsUnderIDTLDs, r.TLDZonesTransferred)
	return b.String()
}

func counterValue(reg *obs.Registry, name string) uint64 {
	return reg.Counter(name, "").Value()
}

// structuralCounters are the metrics that must merge to the same
// totals whether shards run in one process or many. (Sign-cache
// counters legitimately differ: each process has its own cache.)
var structuralCounters = []string{
	"survey_domains_scanned_total",
	"survey_nsec3_iteration_work_total",
	"scanner_queries_total",
	"survey_shards_completed_total",
}

type serveResult struct {
	report *core.SurveyReport
	err    error
}

func serveAsync(ctx context.Context, c *Coordinator, ln *netsim.StreamListener) chan serveResult {
	ch := make(chan serveResult, 1)
	go func() {
		report, err := c.Serve(ctx, ln)
		ch <- serveResult{report, err}
	}()
	return ch
}

func runWorkerAsync(ctx context.Context, sn *netsim.StreamNet, spec core.SurveySpec, name string) chan error {
	ch := make(chan error, 1)
	go func() {
		conn, err := sn.DialStream(ctx, "coord")
		if err != nil {
			ch <- err
			return
		}
		ch <- RunWorker(ctx, conn, spec, WorkerConfig{Name: name})
	}()
	return ch
}

// dialHello dials the coordinator and completes the handshake,
// returning the wire for manual protocol driving.
func dialHello(ctx context.Context, t *testing.T, sn *netsim.StreamNet, spec core.SurveySpec, opts ...netsim.StreamDialOption) *wireConn {
	t.Helper()
	conn, err := sn.DialStream(ctx, "coord", opts...)
	if err != nil {
		t.Fatal(err)
	}
	w := &wireConn{conn: conn}
	if err := w.write(ctx, &Frame{
		Type: TypeHello, Version: ProtocolVersion, ConfigHash: spec.Hash(), Worker: "test-worker",
	}); err != nil {
		t.Fatal(err)
	}
	ok, err := w.read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ok.Type != TypeHelloOK {
		t.Fatalf("handshake answered %+v", ok)
	}
	return w
}

// leaseJob requests and returns one lease.
func leaseJob(ctx context.Context, t *testing.T, w *wireConn) *Frame {
	t.Helper()
	if err := w.write(ctx, &Frame{Type: TypeLease}); err != nil {
		t.Fatal(err)
	}
	f, err := w.read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != TypeJob || f.Job == nil {
		t.Fatalf("lease answered %+v", f)
	}
	return f
}

// executeShardAsWorker runs one leased shard exactly the way RunWorker
// does — fresh per-job registry, shared cache — and streams the result.
func executeShardAsWorker(ctx context.Context, t *testing.T, w *wireConn, f *Frame, cache *testbed.SignCache) int {
	t.Helper()
	reg := obs.NewRegistry()
	out, err := core.NewShardRunner(reg, nil, cache).Execute(ctx, *f.Job)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.write(ctx, &Frame{
		Type: TypeResult, Shard: out.Index, Lease: f.Lease, Outcome: out, Obs: reg.Snapshot(),
	}); err != nil {
		t.Fatal(err)
	}
	ack, err := w.read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Type != TypeResultOK || !ack.Accepted {
		t.Fatalf("result answered %+v", ack)
	}
	return out.Index
}

// TestDistributedGoldenEquivalence is the tentpole contract: a
// coordinator with two workers produces the byte-identical report and
// the same structural metrics as the in-process pipeline — and a
// worker from a different survey is refused at the handshake.
func TestDistributedGoldenEquivalence(t *testing.T) {
	r1, r3, reg3 := golden(t)
	spec := goldenSpec(t)
	ctx := context.Background()

	sn := netsim.NewStreamNet()
	ln, err := sn.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coord, err := NewCoordinator(Config{Spec: spec, Obs: reg, LeaseTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	serveCh := serveAsync(ctx, coord, ln)

	// A worker running different survey flags must be turned away with
	// a typed handshake error before any lease is granted.
	foreign, err := core.SurveyConfig{Registered: goldenRegistered, Seed: goldenSeed + 1, Shards: goldenShards}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	conn, err := sn.DialStream(ctx, "coord")
	if err != nil {
		t.Fatal(err)
	}
	var hs *HandshakeError
	if err := RunWorker(ctx, conn, foreign, WorkerConfig{Name: "foreign"}); !errors.As(err, &hs) {
		t.Fatalf("mismatched worker returned %v, want *HandshakeError", err)
	}

	w1 := runWorkerAsync(ctx, sn, spec, "w1")
	w2 := runWorkerAsync(ctx, sn, spec, "w2")
	res := <-serveCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	for _, ch := range []chan error{w1, w2} {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}

	if !reflect.DeepEqual(res.report, r1) {
		t.Errorf("distributed report differs from single-process Shards=1:\nwant %+v\ngot  %+v", r1, res.report)
	}
	if !reflect.DeepEqual(res.report, r3) {
		t.Errorf("distributed report differs from in-process Shards=%d", goldenShards)
	}
	if got, want := renderReport(res.report), renderReport(r1); got != want {
		t.Errorf("rendered report differs:\n%s\nvs\n%s", got, want)
	}
	for _, name := range structuralCounters {
		if got, want := counterValue(reg, name), counterValue(reg3, name); got != want {
			t.Errorf("%s = %d distributed, %d in-process", name, got, want)
		}
	}
	if got := counterValue(reg, "survey_shards_completed_total"); got != goldenShards {
		t.Errorf("survey_shards_completed_total = %d, want %d", got, goldenShards)
	}
	if got := counterValue(reg, "distsurvey_workers_connected_total"); got != 2 {
		t.Errorf("workers_connected = %d, want 2 (the foreign worker must not count)", got)
	}
	if got := counterValue(reg, "distsurvey_leases_granted_total"); got != goldenShards {
		t.Errorf("leases_granted = %d, want %d", got, goldenShards)
	}
	if got := counterValue(reg, "distsurvey_results_rejected_total"); got != 0 {
		t.Errorf("results_rejected = %d, want 0", got)
	}
}

// TestWorkerDeathReLease kills a worker that holds a lease (conn drop
// mid-shard) and requires the coordinator to re-lease the shard and
// still produce the identical report.
func TestWorkerDeathReLease(t *testing.T) {
	r1, _, _ := golden(t)
	spec := goldenSpec(t)
	ctx := context.Background()

	sn := netsim.NewStreamNet()
	ln, err := sn.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coord, err := NewCoordinator(Config{Spec: spec, Obs: reg, LeaseTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	serveCh := serveAsync(ctx, coord, ln)

	// The doomed worker leases shard 0, then dies without a word.
	doomed := dialHello(ctx, t, sn, spec)
	f := leaseJob(ctx, t, doomed)
	if f.Job.Plan.Index != 0 {
		t.Fatalf("first lease granted shard %d, want 0", f.Job.Plan.Index)
	}
	if err := doomed.conn.Close(); err != nil {
		t.Fatal(err)
	}

	wch := runWorkerAsync(ctx, sn, spec, "survivor")
	res := <-serveCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	if err := <-wch; err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.report, r1) {
		t.Errorf("report after worker death differs from single-process run")
	}
	if got, want := renderReport(res.report), renderReport(r1); got != want {
		t.Errorf("rendered report differs:\n%s\nvs\n%s", got, want)
	}
	if got := counterValue(reg, "distsurvey_leases_expired_total"); got != 1 {
		t.Errorf("leases_expired = %d, want 1", got)
	}
	if got := counterValue(reg, "distsurvey_leases_granted_total"); got != goldenShards+1 {
		t.Errorf("leases_granted = %d, want %d (one re-lease)", got, goldenShards+1)
	}
}

// TestPartialResultFrameReLease cuts a worker's connection partway
// through its result frame — the torn-write case — and requires the
// coordinator to discard the partial frame, re-lease the shard, and
// never double-merge.
func TestPartialResultFrameReLease(t *testing.T) {
	r1, _, _ := golden(t)
	spec := goldenSpec(t)
	ctx := context.Background()

	sn := netsim.NewStreamNet()
	ln, err := sn.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coord, err := NewCoordinator(Config{Spec: spec, Obs: reg, LeaseTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	serveCh := serveAsync(ctx, coord, ln)

	// Budget the doomed worker's writes so the hello and lease frames
	// go through whole and the result frame is cut 10 bytes in.
	frameBytes := func(f *Frame) int {
		data, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		return 4 + len(data) + 1
	}
	budget := frameBytes(&Frame{
		Type: TypeHello, Version: ProtocolVersion, ConfigHash: spec.Hash(), Worker: "test-worker",
	}) + frameBytes(&Frame{Type: TypeLease}) + 10

	cut := dialHello(ctx, t, sn, spec, netsim.WithWriteLimit(budget))
	f := leaseJob(ctx, t, cut)
	regCut := obs.NewRegistry()
	out, err := core.NewShardRunner(regCut, nil, nil).Execute(ctx, *f.Job)
	if err != nil {
		t.Fatal(err)
	}
	werr := cut.write(ctx, &Frame{
		Type: TypeResult, Shard: out.Index, Lease: f.Lease, Outcome: out, Obs: regCut.Snapshot(),
	})
	if werr == nil {
		t.Fatal("result write survived a 10-byte budget; the fault injection did not fire")
	}

	wch := runWorkerAsync(ctx, sn, spec, "survivor")
	res := <-serveCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	if err := <-wch; err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.report, r1) {
		t.Errorf("report after torn result frame differs from single-process run")
	}
	if got := counterValue(reg, "distsurvey_leases_granted_total"); got != goldenShards+1 {
		t.Errorf("leases_granted = %d, want %d (the torn shard re-leases)", got, goldenShards+1)
	}
	if got := counterValue(reg, "survey_shards_completed_total"); got != goldenShards {
		t.Errorf("survey_shards_completed_total = %d, want %d (no double merge)", got, goldenShards)
	}
}

// TestLeaseExpiryReLeasesSilentWorker exercises the slow re-lease
// path: a worker that holds its connection open but never heartbeats
// loses its lease after the TTL.
func TestLeaseExpiryReLeasesSilentWorker(t *testing.T) {
	r1, _, _ := golden(t)
	spec := goldenSpec(t)
	ctx := context.Background()

	sn := netsim.NewStreamNet()
	ln, err := sn.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coord, err := NewCoordinator(Config{Spec: spec, Obs: reg, LeaseTTL: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	serveCh := serveAsync(ctx, coord, ln)

	silent := dialHello(ctx, t, sn, spec)
	defer silent.conn.Close()
	leaseJob(ctx, t, silent) // shard 0, then silence: no heartbeat, no result

	wch := runWorkerAsync(ctx, sn, spec, "survivor")
	res := <-serveCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	if err := <-wch; err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.report, r1) {
		t.Errorf("report after lease expiry differs from single-process run")
	}
	if got := counterValue(reg, "distsurvey_leases_expired_total"); got != 1 {
		t.Errorf("leases_expired = %d, want 1", got)
	}
	if got := counterValue(reg, "distsurvey_leases_granted_total"); got != goldenShards+1 {
		t.Errorf("leases_granted = %d, want %d", got, goldenShards+1)
	}
}

// TestCoordinatorKilledAndResumed is the crash-safety half of the
// golden test: two shards complete and checkpoint, the coordinator is
// killed, and a resumed coordinator finishes only the remaining shard
// yet produces the byte-identical report and structural metrics.
func TestCoordinatorKilledAndResumed(t *testing.T) {
	r1, _, reg3 := golden(t)
	spec := goldenSpec(t)
	ctx := context.Background()
	state := filepath.Join(t.TempDir(), "state")

	// Phase 1: two shards checkpoint, then the coordinator dies.
	sn := netsim.NewStreamNet()
	ln, err := sn.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	coord1, err := NewCoordinator(Config{Spec: spec, Obs: obs.NewRegistry(), StateDir: state, LeaseTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, kill := context.WithCancel(ctx)
	serveCh := serveAsync(ctx1, coord1, ln)
	w := dialHello(ctx, t, sn, spec)
	cache := testbed.NewSignCache()
	for i := 0; i < 2; i++ {
		f := leaseJob(ctx, t, w)
		if got := executeShardAsWorker(ctx, t, w, f, cache); got != i {
			t.Fatalf("phase 1 executed shard %d, want %d", got, i)
		}
	}
	if err := w.conn.Close(); err != nil {
		t.Fatal(err)
	}
	kill()
	if res := <-serveCh; !errors.Is(res.err, context.Canceled) {
		t.Fatalf("killed coordinator returned %v, want context.Canceled", res.err)
	}

	// A fresh (non-resume) run over the same state dir must refuse.
	var exists *StateExistsError
	if _, err := NewCoordinator(Config{Spec: spec, StateDir: state}); !errors.As(err, &exists) {
		t.Fatalf("fresh run over live state returned %v, want *StateExistsError", err)
	}
	// So must a resume under different survey flags.
	foreign, err := core.SurveyConfig{Registered: goldenRegistered, Seed: goldenSeed + 1, Shards: goldenShards}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	var mismatch *StateMismatchError
	if _, err := NewCoordinator(Config{Spec: foreign, StateDir: state, Resume: true}); !errors.As(err, &mismatch) {
		t.Fatalf("foreign resume returned %v, want *StateMismatchError", err)
	}
	if mismatch.Got != spec.Hash() || mismatch.Want != foreign.Hash() {
		t.Fatalf("mismatch error carries %q/%q", mismatch.Got, mismatch.Want)
	}

	// Phase 2: resume recovers the checkpoints and a real worker
	// finishes the one remaining shard.
	sn2 := netsim.NewStreamNet()
	ln2, err := sn2.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	reg2 := obs.NewRegistry()
	coord2, err := NewCoordinator(Config{Spec: spec, Obs: reg2, StateDir: state, Resume: true, LeaseTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if got := coord2.CheckpointsLoaded(); got != 2 {
		t.Fatalf("resume loaded %d checkpoints, want 2", got)
	}
	serveCh2 := serveAsync(ctx, coord2, ln2)
	wch := runWorkerAsync(ctx, sn2, spec, "finisher")
	res := <-serveCh2
	if res.err != nil {
		t.Fatal(res.err)
	}
	if err := <-wch; err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.report, r1) {
		t.Errorf("resumed report differs from single-process run")
	}
	if got, want := renderReport(res.report), renderReport(r1); got != want {
		t.Errorf("rendered resumed report differs:\n%s\nvs\n%s", got, want)
	}
	for _, name := range structuralCounters {
		if got, want := counterValue(reg2, name), counterValue(reg3, name); got != want {
			t.Errorf("%s = %d resumed, %d in-process", name, got, want)
		}
	}
	if got := counterValue(reg2, "distsurvey_checkpoints_loaded_total"); got != 2 {
		t.Errorf("checkpoints_loaded = %d, want 2", got)
	}
	if got := counterValue(reg2, "distsurvey_leases_granted_total"); got != 1 {
		t.Errorf("leases_granted = %d, want 1 (only the unfinished shard)", got)
	}
}

// TestResumeSkipsCorruptCheckpoints: truncated or garbage checkpoint
// files are skipped — their shards simply re-run — and the report is
// still identical.
func TestResumeSkipsCorruptCheckpoints(t *testing.T) {
	r1, _, _ := golden(t)
	spec := goldenSpec(t)
	ctx := context.Background()
	state := filepath.Join(t.TempDir(), "state")

	sn := netsim.NewStreamNet()
	ln, err := sn.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	coord1, err := NewCoordinator(Config{Spec: spec, Obs: obs.NewRegistry(), StateDir: state, LeaseTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, kill := context.WithCancel(ctx)
	serveCh := serveAsync(ctx1, coord1, ln)
	w := dialHello(ctx, t, sn, spec)
	cache := testbed.NewSignCache()
	for i := 0; i < 2; i++ {
		executeShardAsWorker(ctx, t, w, leaseJob(ctx, t, w), cache)
	}
	if err := w.conn.Close(); err != nil {
		t.Fatal(err)
	}
	kill()
	<-serveCh

	// Tear one checkpoint mid-file and replace the other with garbage.
	truncated := filepath.Join(state, "shard-0000.json")
	data, err := os.ReadFile(truncated)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(truncated, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(state, "shard-0001.json"), []byte("{definitely not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	sn2 := netsim.NewStreamNet()
	ln2, err := sn2.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	reg2 := obs.NewRegistry()
	coord2, err := NewCoordinator(Config{Spec: spec, Obs: reg2, StateDir: state, Resume: true, LeaseTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if got := coord2.CheckpointsLoaded(); got != 0 {
		t.Fatalf("resume loaded %d corrupt checkpoints, want 0", got)
	}
	serveCh2 := serveAsync(ctx, coord2, ln2)
	wch := runWorkerAsync(ctx, sn2, spec, "redo")
	res := <-serveCh2
	if res.err != nil {
		t.Fatal(res.err)
	}
	if err := <-wch; err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.report, r1) {
		t.Errorf("report after corrupt-checkpoint redo differs from single-process run")
	}
	if got := counterValue(reg2, "distsurvey_checkpoints_skipped_total"); got != 2 {
		t.Errorf("checkpoints_skipped = %d, want 2", got)
	}
	if got := counterValue(reg2, "distsurvey_leases_granted_total"); got != goldenShards {
		t.Errorf("leases_granted = %d, want %d (every shard redone)", got, goldenShards)
	}
	if got := counterValue(reg2, "survey_shards_completed_total"); got != goldenShards {
		t.Errorf("survey_shards_completed_total = %d, want %d (skip-and-redo, never double-merge)", got, goldenShards)
	}
}
