package distsurvey

import (
	"context"
	"encoding/binary"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

// TestFrameRoundTrip: a frame crosses a real conn intact.
func TestFrameRoundTrip(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	ctx := context.Background()

	want := &Frame{
		Type:       TypeJob,
		Lease:      42,
		ConfigHash: "abc",
		Job:        &core.ShardJob{ConfigHash: "abc"},
	}
	errCh := make(chan error, 1)
	go func() { errCh <- writeFrame(ctx, cli, want) }()
	got, err := readFrame(ctx, srv)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("frame drifted: sent %+v, received %+v", want, got)
	}
}

// TestFrameRejectsHostileLengths: the length word is untrusted input;
// oversized and zero lengths are refused before any allocation, and a
// typeless frame is refused after decode.
func TestFrameRejectsHostileLengths(t *testing.T) {
	ctx := context.Background()
	send := func(hdr uint32, payload []byte) error {
		cli, srv := net.Pipe()
		defer cli.Close()
		defer srv.Close()
		go func() {
			buf := make([]byte, 4+len(payload))
			binary.BigEndian.PutUint32(buf, hdr)
			copy(buf[4:], payload)
			_, _ = cli.Write(buf) // the reader's verdict is the test's subject
		}()
		if err := srv.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
			t.Fatal(err)
		}
		_, err := readFrame(ctx, srv)
		return err
	}
	if err := send(MaxFrame+1, nil); err == nil {
		t.Error("oversized frame length accepted")
	}
	if err := send(0, nil); err == nil {
		t.Error("zero frame length accepted")
	}
	if err := send(3, []byte("{}\n")); err == nil {
		t.Error("typeless frame accepted")
	}
	if err := send(9, []byte("not json\n")); err == nil {
		t.Error("undecodable frame accepted")
	}
}

// TestReadFrameHonorsCancelledContext: a dead context short-circuits
// before touching the conn.
func TestReadFrameHonorsCancelledContext(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := readFrame(ctx, srv); err == nil {
		t.Fatal("read with cancelled context succeeded")
	}
	if err := writeFrame(ctx, cli, &Frame{Type: TypeLease}); err == nil {
		t.Fatal("write with cancelled context succeeded")
	}
}
