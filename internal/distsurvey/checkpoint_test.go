package distsurvey

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func storeSpec(t *testing.T, seed uint64) core.SurveySpec {
	t.Helper()
	spec, err := core.SurveyConfig{Registered: 100, Seed: seed, Shards: 2}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestOpenStoreLifecycle pins the typed refusals around state
// directories: fresh-over-live needs -resume, resume-with-other-flags
// is a mismatch, resume-of-nothing is an error.
func TestOpenStoreLifecycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	spec := storeSpec(t, 1)

	if _, _, _, err := OpenStore(dir, spec, true); err == nil {
		t.Fatal("resume of a nonexistent state dir succeeded")
	}
	store, cps, skipped, err := OpenStore(dir, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 0 || skipped != 0 {
		t.Fatalf("fresh store reported %d checkpoints, %d skipped", len(cps), skipped)
	}
	var exists *StateExistsError
	if _, _, _, err := OpenStore(dir, spec, false); !errors.As(err, &exists) {
		t.Fatalf("second fresh open returned %v, want *StateExistsError", err)
	}
	var mismatch *StateMismatchError
	if _, _, _, err := OpenStore(dir, storeSpec(t, 2), true); !errors.As(err, &mismatch) {
		t.Fatalf("foreign resume returned %v, want *StateMismatchError", err)
	}

	// Round trip one checkpoint and resume it.
	if err := store.Write(&Checkpoint{Outcome: &core.ShardOutcome{Index: 1, ScanErrors: 3}}); err != nil {
		t.Fatal(err)
	}
	_, cps, skipped, err = OpenStore(dir, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(cps) != 1 || cps[0].Outcome.Index != 1 || cps[0].Outcome.ScanErrors != 3 {
		t.Fatalf("resume returned cps=%+v skipped=%d", cps, skipped)
	}

	// An empty checkpoint is refused at the source.
	if err := store.Write(nil); err == nil {
		t.Error("nil checkpoint accepted")
	}
	if err := store.Write(&Checkpoint{}); err == nil {
		t.Error("outcome-less checkpoint accepted")
	}
}

// TestLoadSkipsMisfiledCheckpoint: a checkpoint whose filename and
// recorded shard index disagree is skipped, not merged under the wrong
// shard.
func TestLoadSkipsMisfiledCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	spec := storeSpec(t, 1)
	store, _, _, err := OpenStore(dir, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Write(&Checkpoint{Outcome: &core.ShardOutcome{Index: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, "shard-0000.json"), filepath.Join(dir, "shard-0001.json")); err != nil {
		t.Fatal(err)
	}
	_, cps, skipped, err := OpenStore(dir, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 0 || skipped != 1 {
		t.Fatalf("misfiled checkpoint: cps=%d skipped=%d, want 0/1", len(cps), skipped)
	}
}
