package distsurvey

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/testbed"
)

// WorkerConfig configures one worker process.
type WorkerConfig struct {
	// Name identifies the worker in coordinator-side accounting.
	Name string
	// Obs accumulates the worker's own view of its shard metrics (the
	// coordinator gets per-shard snapshots either way). May be nil.
	Obs *obs.Registry
	// Trace receives the worker's phase spans. May be nil.
	Trace *obs.Tracer
}

// jobRunner erases the study kind from the worker loop. index rejects
// job frames of the wrong kind; run executes one leased job into reg
// and returns the result frame with Type, Shard, and the outcome set —
// the loop stamps the lease epoch and sends it.
type jobRunner interface {
	index(f *Frame) (int, error)
	run(ctx context.Context, f *Frame, reg *obs.Registry) (*Frame, error)
}

// surveyRunner executes §4.1 survey shards via core.ShardRunner.
type surveyRunner struct {
	trace *obs.Tracer
	cache *testbed.SignCache
}

func (r *surveyRunner) index(f *Frame) (int, error) {
	if f.Job == nil {
		return 0, fmt.Errorf("distsurvey: job frame without a survey job")
	}
	return f.Job.Plan.Index, nil
}

func (r *surveyRunner) run(ctx context.Context, f *Frame, reg *obs.Registry) (*Frame, error) {
	out, err := core.NewShardRunner(reg, r.trace, r.cache).Execute(ctx, *f.Job)
	if err != nil {
		return nil, err
	}
	return &Frame{Type: TypeResult, Shard: out.Index, Outcome: out}, nil
}

// resolverRunner executes §4.2 resolver-study shards via
// core.ResolverShardRunner.
type resolverRunner struct {
	trace *obs.Tracer
	cache *testbed.SignCache
}

func (r *resolverRunner) index(f *Frame) (int, error) {
	if f.RJob == nil {
		return 0, fmt.Errorf("distsurvey: job frame without a resolver-study job")
	}
	return f.RJob.Plan.Index, nil
}

func (r *resolverRunner) run(ctx context.Context, f *Frame, reg *obs.Registry) (*Frame, error) {
	out, err := core.NewResolverShardRunner(reg, r.trace, r.cache).Execute(ctx, *f.RJob)
	if err != nil {
		return nil, err
	}
	return &Frame{Type: TypeResult, Shard: out.Index, ROutcome: out}, nil
}

// RunWorker speaks the worker side of the protocol on conn: hello,
// then lease→execute→result until the coordinator says done. Each
// shard executes through the exact same core.ShardRunner path
// RunSurvey uses; a fresh per-job registry makes each result's obs
// snapshot the shard's own delta, while the sign cache is shared
// across jobs so repeated infrastructure zones sign once per process.
// RunWorker owns conn and closes it on the way out.
func RunWorker(ctx context.Context, conn net.Conn, spec core.SurveySpec, cfg WorkerConfig) error {
	return runWorkerLoop(ctx, conn, spec.Hash(), cfg,
		&surveyRunner{trace: cfg.Trace, cache: testbed.NewSignCache()})
}

// RunResolverWorker is RunWorker for a §4.2 resolver study: shards
// execute through the exact same core.ResolverShardRunner path
// RunResolverStudy uses, with the sign cache shared across jobs so the
// testbed's 52 zones sign once per worker process.
func RunResolverWorker(ctx context.Context, conn net.Conn, spec core.ResolverStudySpec, cfg WorkerConfig) error {
	return runWorkerLoop(ctx, conn, spec.Hash(), cfg,
		&resolverRunner{trace: cfg.Trace, cache: testbed.NewSignCache()})
}

func runWorkerLoop(ctx context.Context, conn net.Conn, hash string, cfg WorkerConfig, runner jobRunner) error {
	defer func() {
		// The coordinator treats conn death as lease release; closing is
		// the worker's own cleanup either way.
		_ = conn.Close()
	}()
	w := &wireConn{conn: conn}
	if err := w.write(ctx, &Frame{
		Type:       TypeHello,
		Version:    ProtocolVersion,
		ConfigHash: hash,
		Worker:     cfg.Name,
	}); err != nil {
		return err
	}
	ok, err := w.read(ctx)
	if err != nil {
		return err
	}
	switch ok.Type {
	case TypeHelloOK:
	case TypeError:
		return &HandshakeError{Reason: ok.Err}
	default:
		return fmt.Errorf("distsurvey: expected hello_ok, got %q", ok.Type)
	}
	heartbeat := time.Duration(ok.HeartbeatMS) * time.Millisecond
	if heartbeat <= 0 {
		heartbeat = DefaultLeaseTTL / 3
	}

	for {
		if err := w.write(ctx, &Frame{Type: TypeLease}); err != nil {
			return err
		}
		f, err := w.read(ctx)
		if err != nil {
			return err
		}
		switch f.Type {
		case TypeDone:
			return nil
		case TypeJob:
			if err := executeLease(ctx, w, f, heartbeat, cfg, runner); err != nil {
				return err
			}
		case TypeError:
			return &HandshakeError{Reason: f.Err}
		default:
			return fmt.Errorf("distsurvey: unexpected frame %q while awaiting a lease", f.Type)
		}
	}
}

// executeLease runs one leased shard, heartbeating while it executes,
// and streams the outcome plus the shard's metrics snapshot back.
func executeLease(ctx context.Context, w *wireConn, f *Frame, heartbeat time.Duration, cfg WorkerConfig, runner jobRunner) error {
	shard, err := runner.index(f)
	if err != nil {
		return err
	}
	// A fresh registry per job: its snapshot is exactly this shard's
	// metrics delta, so the coordinator's merge is order-independent.
	reg := obs.NewRegistry()

	hbDone := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(heartbeat)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				// A failed heartbeat is not fatal here: the result write
				// will surface the dead conn to the main loop.
				_ = w.write(ctx, &Frame{Type: TypeHeartbeat, Shard: shard, Lease: f.Lease})
			case <-hbDone:
				return
			case <-ctx.Done():
				return
			}
		}
	}()
	result, err := runner.run(ctx, f, reg)
	close(hbDone)
	hbWG.Wait()
	if err != nil {
		return err
	}

	result.Lease = f.Lease
	result.Obs = reg.Snapshot()
	if err := w.write(ctx, result); err != nil {
		return err
	}
	ack, err := w.read(ctx)
	if err != nil {
		return err
	}
	switch ack.Type {
	case TypeResultOK:
		// Accepted=false means the lease went stale (the shard was
		// re-leased and finished elsewhere); the work is simply discarded
		// and the worker moves on to the next lease.
	case TypeError:
		return &HandshakeError{Reason: ack.Err}
	default:
		return fmt.Errorf("distsurvey: expected result_ok, got %q", ack.Type)
	}
	// Fold the shard into the worker's own cumulative registry last, so
	// a shard whose result write failed is never half-counted locally.
	if err := cfg.Obs.AddSnapshot(reg.Snapshot()); err != nil {
		return err
	}
	return nil
}
