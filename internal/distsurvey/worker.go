package distsurvey

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/testbed"
)

// WorkerConfig configures one worker process.
type WorkerConfig struct {
	// Name identifies the worker in coordinator-side accounting.
	Name string
	// Obs accumulates the worker's own view of its shard metrics (the
	// coordinator gets per-shard snapshots either way). May be nil.
	Obs *obs.Registry
	// Trace receives the worker's phase spans. May be nil.
	Trace *obs.Tracer
}

// RunWorker speaks the worker side of the protocol on conn: hello,
// then lease→execute→result until the coordinator says done. Each
// shard executes through the exact same core.ShardRunner path
// RunSurvey uses; a fresh per-job registry makes each result's obs
// snapshot the shard's own delta, while the sign cache is shared
// across jobs so repeated infrastructure zones sign once per process.
// RunWorker owns conn and closes it on the way out.
func RunWorker(ctx context.Context, conn net.Conn, spec core.SurveySpec, cfg WorkerConfig) error {
	defer func() {
		// The coordinator treats conn death as lease release; closing is
		// the worker's own cleanup either way.
		_ = conn.Close()
	}()
	w := &wireConn{conn: conn}
	if err := w.write(ctx, &Frame{
		Type:       TypeHello,
		Version:    ProtocolVersion,
		ConfigHash: spec.Hash(),
		Worker:     cfg.Name,
	}); err != nil {
		return err
	}
	ok, err := w.read(ctx)
	if err != nil {
		return err
	}
	switch ok.Type {
	case TypeHelloOK:
	case TypeError:
		return &HandshakeError{Reason: ok.Err}
	default:
		return fmt.Errorf("distsurvey: expected hello_ok, got %q", ok.Type)
	}
	heartbeat := time.Duration(ok.HeartbeatMS) * time.Millisecond
	if heartbeat <= 0 {
		heartbeat = DefaultLeaseTTL / 3
	}

	cache := testbed.NewSignCache()
	for {
		if err := w.write(ctx, &Frame{Type: TypeLease}); err != nil {
			return err
		}
		f, err := w.read(ctx)
		if err != nil {
			return err
		}
		switch f.Type {
		case TypeDone:
			return nil
		case TypeJob:
			if f.Job == nil {
				return fmt.Errorf("distsurvey: job frame without a job")
			}
			if err := executeLease(ctx, w, f, heartbeat, cache, cfg); err != nil {
				return err
			}
		case TypeError:
			return &HandshakeError{Reason: f.Err}
		default:
			return fmt.Errorf("distsurvey: unexpected frame %q while awaiting a lease", f.Type)
		}
	}
}

// executeLease runs one leased shard, heartbeating while it executes,
// and streams the outcome plus the shard's metrics snapshot back.
func executeLease(ctx context.Context, w *wireConn, f *Frame, heartbeat time.Duration, cache *testbed.SignCache, cfg WorkerConfig) error {
	// A fresh registry per job: its snapshot is exactly this shard's
	// metrics delta, so the coordinator's merge is order-independent.
	reg := obs.NewRegistry()
	runner := core.NewShardRunner(reg, cfg.Trace, cache)

	hbDone := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(heartbeat)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				// A failed heartbeat is not fatal here: the result write
				// will surface the dead conn to the main loop.
				_ = w.write(ctx, &Frame{Type: TypeHeartbeat, Shard: f.Job.Plan.Index, Lease: f.Lease})
			case <-hbDone:
				return
			case <-ctx.Done():
				return
			}
		}
	}()
	out, err := runner.Execute(ctx, *f.Job)
	close(hbDone)
	hbWG.Wait()
	if err != nil {
		return err
	}

	if err := w.write(ctx, &Frame{
		Type:    TypeResult,
		Shard:   out.Index,
		Lease:   f.Lease,
		Outcome: out,
		Obs:     reg.Snapshot(),
	}); err != nil {
		return err
	}
	ack, err := w.read(ctx)
	if err != nil {
		return err
	}
	switch ack.Type {
	case TypeResultOK:
		// Accepted=false means the lease went stale (the shard was
		// re-leased and finished elsewhere); the work is simply discarded
		// and the worker moves on to the next lease.
	case TypeError:
		return &HandshakeError{Reason: ack.Err}
	default:
		return fmt.Errorf("distsurvey: expected result_ok, got %q", ack.Type)
	}
	// Fold the shard into the worker's own cumulative registry last, so
	// a shard whose result write failed is never half-counted locally.
	if err := cfg.Obs.AddSnapshot(reg.Snapshot()); err != nil {
		return err
	}
	return nil
}
