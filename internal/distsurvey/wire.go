// Package distsurvey runs the §4.1 survey as coordinator + worker
// processes over the plan/execute/merge engine in internal/core: the
// coordinator plans ShardJobs and leases them out, workers execute
// them through the exact same generate→deploy→scan path RunSurvey
// uses, and the coordinator merges the streamed-back outcomes and obs
// snapshots through the same ReportBuilder — so a distributed run's
// report is byte-identical to a single-process one. Heartbeats and
// lease epochs re-lease shards from dead workers; crash-safe per-shard
// checkpoints (checkpoint.go) make a survey resumable after
// coordinator or worker death without redoing completed shards.
package distsurvey

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// ProtocolVersion is bumped on incompatible frame changes; the hello
// exchange refuses a mismatch.
const ProtocolVersion = 1

// MaxFrame bounds one frame's payload: a shard outcome is aggregate
// histograms and counters, far below this even at full scale. The
// length word comes off the wire untrusted, so every decode checks it
// before allocating.
const MaxFrame = 64 << 20

// Frame types. The protocol is strictly worker-initiated
// request/response plus unsolicited worker heartbeats: hello→hello_ok,
// lease→job|done, result→result_ok; error terminates either direction.
const (
	TypeHello     = "hello"
	TypeHelloOK   = "hello_ok"
	TypeLease     = "lease"
	TypeJob       = "job"
	TypeDone      = "done"
	TypeHeartbeat = "heartbeat"
	TypeResult    = "result"
	TypeResultOK  = "result_ok"
	TypeError     = "error"
)

// Frame is one protocol message: a single NDJSON line, length-prefixed
// with a 4-byte big-endian count so a reader never scans an unbounded
// stream for the newline.
type Frame struct {
	Type string `json:"type"`
	// Version and ConfigHash identify the protocol and survey (hello);
	// the coordinator refuses workers running different flags.
	Version    int    `json:"version,omitempty"`
	ConfigHash string `json:"config_hash,omitempty"`
	// Worker names the worker for the coordinator's logs (hello).
	Worker string `json:"worker,omitempty"`
	// HeartbeatMS tells the worker how often to heartbeat (hello_ok).
	HeartbeatMS int `json:"heartbeat_ms,omitempty"`
	// Job carries the leased survey shard (job). Exactly one of Job
	// and RJob is set on a job frame; the config hashes of the two
	// study kinds have disjoint preimages, so a worker can never hold
	// a lease of the wrong kind past the hello exchange.
	Job *core.ShardJob `json:"job,omitempty"`
	// RJob carries the leased resolver-study shard (job).
	RJob *core.ResolverShardJob `json:"rjob,omitempty"`
	// Lease is the lease epoch (job, heartbeat, result): a re-leased
	// shard gets a new epoch, so results from the dead lease are
	// recognizably stale.
	Lease uint64 `json:"lease,omitempty"`
	// Shard is the shard index (heartbeat, result, result_ok).
	Shard int `json:"shard,omitempty"`
	// Accepted reports whether a result was merged (result_ok); false
	// means the lease was stale or the shard already done — not an
	// error, the worker just moves on.
	Accepted bool `json:"accepted,omitempty"`
	// Outcome / ROutcome and Obs carry the shard's aggregates (exactly
	// one, matching the job kind) and the worker's per-shard metrics
	// snapshot (result).
	Outcome  *core.ShardOutcome         `json:"outcome,omitempty"`
	ROutcome *core.ResolverShardOutcome `json:"routcome,omitempty"`
	Obs      *obs.Snapshot              `json:"obs,omitempty"`
	// Err carries the peer's refusal (error).
	Err string `json:"err,omitempty"`
}

// HandshakeError is the typed rejection a worker gets when the
// coordinator refuses its hello (version or config-hash mismatch), or
// either side receives an error frame.
type HandshakeError struct {
	Reason string
}

func (e *HandshakeError) Error() string {
	return fmt.Sprintf("distsurvey: handshake refused: %s", e.Reason)
}

// readFrame decodes one length-prefixed frame. The length word is
// untrusted wire input: it is bounds-checked before any allocation.
// Cancellation reaches the blocking reads through the conn itself —
// callers arm read deadlines or close the conn from a context hook.
func readFrame(ctx context.Context, conn net.Conn) (*Frame, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(conn, hdr); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("distsurvey: frame length %d outside (0, %d]", n, MaxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return nil, err
	}
	f := &Frame{}
	if err := json.Unmarshal(buf, f); err != nil {
		return nil, fmt.Errorf("distsurvey: undecodable frame: %w", err)
	}
	if f.Type == "" {
		return nil, fmt.Errorf("distsurvey: frame without a type")
	}
	return f, nil
}

// writeFrame encodes f as one length-prefixed NDJSON line and writes
// it in a single conn.Write, so a frame is either fully queued or not
// sent at all from this side's perspective.
func writeFrame(ctx context.Context, conn net.Conn, f *Frame) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	payload, err := json.Marshal(f)
	if err != nil {
		return err
	}
	payload = append(payload, '\n')
	if len(payload) > MaxFrame {
		return fmt.Errorf("distsurvey: frame payload %d exceeds %d", len(payload), MaxFrame)
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	_, err = conn.Write(buf)
	return err
}

// wireConn serializes frame writes on a shared conn: the worker's
// heartbeat goroutine and its main loop must never interleave frames.
type wireConn struct {
	conn net.Conn
	wmu  sync.Mutex
}

func (w *wireConn) write(ctx context.Context, f *Frame) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeFrame(ctx, w.conn, f)
}

func (w *wireConn) read(ctx context.Context) (*Frame, error) {
	return readFrame(ctx, w.conn)
}
