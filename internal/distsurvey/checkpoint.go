package distsurvey

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/obs"
)

// Crash-safe survey state: a state directory holds one manifest.json
// naming the survey (config hash + spec) and one shard-NNNN.json per
// completed shard. Every file is written atomically — temp file,
// fsync, rename, directory fsync — so a file either exists complete or
// not at all; a checkpoint that is nevertheless truncated or corrupt
// (torn disk, manual edit) is skipped on load and the shard simply
// re-runs. The ReportBuilder's duplicate rejection guarantees a shard
// is merged exactly once no matter how a resume interleaves with
// re-leases.

// manifestName and the shard file pattern are the state directory's
// entire layout.
const manifestName = "manifest.json"

// manifest pins which study a state directory belongs to. Spec is set
// for §4.1 surveys, RSpec for §4.2 resolver studies; the config hash —
// whose preimages are disjoint between the two kinds — is what every
// integrity check compares.
type manifest struct {
	Version    int                     `json:"version"`
	ConfigHash string                  `json:"config_hash"`
	Spec       core.SurveySpec         `json:"spec"`
	Kind       string                  `json:"kind,omitempty"`
	RSpec      *core.ResolverStudySpec `json:"rspec,omitempty"`
}

// Checkpoint is one completed shard's durable record: the outcome the
// report needs plus the worker's metrics snapshot, hash-stamped so a
// file from a different study can never be merged. Exactly one of
// Outcome (survey) and ROutcome (resolver study) is set.
type Checkpoint struct {
	ConfigHash string                     `json:"config_hash"`
	Outcome    *core.ShardOutcome         `json:"outcome,omitempty"`
	ROutcome   *core.ResolverShardOutcome `json:"routcome,omitempty"`
	Obs        *obs.Snapshot              `json:"obs,omitempty"`
}

// shardIndex returns the checkpointed shard's index, refusing records
// that carry neither or both outcome kinds.
func (cp *Checkpoint) shardIndex() (int, bool) {
	switch {
	case cp.Outcome != nil && cp.ROutcome == nil:
		return cp.Outcome.Index, true
	case cp.ROutcome != nil && cp.Outcome == nil:
		return cp.ROutcome.Index, true
	}
	return 0, false
}

// StateMismatchError is the typed refusal for resuming (or starting
// over) a state directory recorded under a different config hash.
type StateMismatchError struct {
	Dir  string
	Want string // hash of the survey being run
	Got  string // hash recorded in the directory
}

func (e *StateMismatchError) Error() string {
	return fmt.Sprintf("distsurvey: state dir %s belongs to survey %s, not %s — delete it or rerun the original flags with -resume",
		e.Dir, e.Got, e.Want)
}

// StateExistsError is the typed refusal for starting a fresh run over
// a state directory that already holds a survey: without -resume that
// would silently orphan (or worse, later double-merge) its shards.
type StateExistsError struct {
	Dir string
}

func (e *StateExistsError) Error() string {
	return fmt.Sprintf("distsurvey: state dir %s already holds survey state — pass -resume to continue it or delete the directory",
		e.Dir)
}

// Store reads and writes one survey's state directory.
type Store struct {
	dir  string
	hash string
}

// OpenStore opens (or initializes) the state directory for the survey
// spec describes. With resume, the directory must already hold a
// matching manifest and the surviving checkpoints are returned;
// without it, the directory must not hold survey state yet. The
// skipped count reports checkpoints dropped as corrupt.
func OpenStore(dir string, spec core.SurveySpec, resume bool) (store *Store, cps []*Checkpoint, skipped int, err error) {
	return openStore(dir, spec.Hash(), manifest{Version: ProtocolVersion, ConfigHash: spec.Hash(), Spec: spec}, resume)
}

// OpenResolverStore is OpenStore for a §4.2 resolver study. The two
// kinds share the directory layout and crash-safety machinery; the
// disjoint config-hash preimages keep their state from ever mixing.
func OpenResolverStore(dir string, spec core.ResolverStudySpec, resume bool) (store *Store, cps []*Checkpoint, skipped int, err error) {
	m := manifest{Version: ProtocolVersion, ConfigHash: spec.Hash(), Kind: "resolverstudy", RSpec: &spec}
	return openStore(dir, spec.Hash(), m, resume)
}

func openStore(dir, hash string, mf manifest, resume bool) (store *Store, cps []*Checkpoint, skipped int, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, err
	}
	s := &Store{dir: dir, hash: hash}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case err == nil:
		var m manifest
		if jerr := json.Unmarshal(data, &m); jerr != nil || m.ConfigHash == "" {
			// A torn manifest means the initial run died before its first
			// checkpoint: nothing can be resumed, nothing can be lost.
			if resume {
				return nil, nil, 0, fmt.Errorf("distsurvey: state dir %s has an unreadable manifest; nothing to resume", dir)
			}
		} else {
			if !resume {
				return nil, nil, 0, &StateExistsError{Dir: dir}
			}
			if m.ConfigHash != hash {
				return nil, nil, 0, &StateMismatchError{Dir: dir, Want: hash, Got: m.ConfigHash}
			}
			cps, skipped = s.load()
			return s, cps, skipped, nil
		}
	case os.IsNotExist(err):
		if resume {
			return nil, nil, 0, fmt.Errorf("distsurvey: state dir %s has no manifest; nothing to resume", dir)
		}
	default:
		return nil, nil, 0, err
	}
	m, err := json.Marshal(mf)
	if err != nil {
		return nil, nil, 0, err
	}
	if err := writeFileAtomic(dir, manifestName, m); err != nil {
		return nil, nil, 0, err
	}
	return s, nil, 0, nil
}

// shardFile names shard index's checkpoint.
func shardFile(index int) string {
	return fmt.Sprintf("shard-%04d.json", index)
}

// Write durably records one completed shard. The write is atomic: a
// crash at any point leaves either the previous state or the complete
// new file, never a torn one.
func (s *Store) Write(cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("distsurvey: refusing to checkpoint an empty outcome")
	}
	index, ok := cp.shardIndex()
	if !ok {
		return fmt.Errorf("distsurvey: refusing to checkpoint an empty outcome")
	}
	cp.ConfigHash = s.hash
	data, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	return writeFileAtomic(s.dir, shardFile(index), data)
}

// load scans the directory for shard checkpoints, skipping (and
// counting) any that are corrupt, truncated, hash-mismatched, or
// misfiled — those shards just re-run.
func (s *Store) load() (cps []*Checkpoint, skipped int) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, 0
	}
	for _, e := range entries {
		var index int
		if n, err := fmt.Sscanf(e.Name(), "shard-%d.json", &index); n != 1 || err != nil {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, e.Name()))
		if err != nil {
			skipped++
			continue
		}
		cp := &Checkpoint{}
		if err := json.Unmarshal(data, cp); err != nil || cp.ConfigHash != s.hash {
			skipped++
			continue
		}
		if got, ok := cp.shardIndex(); !ok || got != index {
			skipped++
			continue
		}
		cps = append(cps, cp)
	}
	return cps, skipped
}

// writeFileAtomic writes name under dir via temp file + fsync + rename
// + directory fsync — the strongest crash-safety plain files offer.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()        // the write error is the one worth reporting
		_ = os.Remove(tmpName) // best-effort cleanup of the failed temp
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()        // the sync error is the one worth reporting
		_ = os.Remove(tmpName) // best-effort cleanup of the failed temp
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName) // best-effort cleanup of the failed temp
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		_ = os.Remove(tmpName) // best-effort cleanup of the failed temp
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	// A close error after the sync carries nothing the sync error
	// doesn't; the rename itself is already durable or not.
	_ = d.Close()
	return err
}
