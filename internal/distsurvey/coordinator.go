package distsurvey

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// DefaultLeaseTTL is how long a leased shard may go without a
// heartbeat before the coordinator re-leases it. Workers heartbeat at
// a third of this.
const DefaultLeaseTTL = 10 * time.Second

// Config describes one coordinated survey run.
type Config struct {
	// Spec is the resolved survey. Workers must present the same hash.
	Spec core.SurveySpec
	// Obs receives the merged metrics: worker shard snapshots plus the
	// coordinator's own lease counters. May be nil.
	Obs *obs.Registry
	// StateDir, when non-empty, holds crash-safe per-shard checkpoints;
	// Resume picks up a previous run's completed shards from it.
	StateDir string
	Resume   bool
	// LeaseTTL overrides DefaultLeaseTTL (tests use short TTLs).
	LeaseTTL time.Duration
}

// ResolverConfig describes one coordinated §4.2 resolver-study run —
// the resolver-study twin of Config.
type ResolverConfig struct {
	// Spec is the resolved study. Workers must present the same hash.
	Spec core.ResolverStudySpec
	// Obs receives the merged metrics. May be nil.
	Obs *obs.Registry
	// StateDir/Resume: crash-safe per-shard checkpoints, as for surveys.
	StateDir string
	Resume   bool
	// LeaseTTL overrides DefaultLeaseTTL.
	LeaseTTL time.Duration
}

// lease tracks one outstanding shard grant. Epochs make grants
// distinguishable: a result stamped with a superseded epoch is stale
// and rejected, so a re-leased shard can never merge twice.
type lease struct {
	epoch    uint64
	deadline time.Time
}

// shardMerger erases the study kind from the coordinator's merge path:
// both report builders reject duplicates and merge order-independently,
// which is all the lease machinery relies on. The typed report comes
// back out through Serve / ServeResolverStudy.
type shardMerger interface {
	Merged(index int) bool
	Add(cp *Checkpoint) error
}

// surveyMerger adapts core.ReportBuilder.
type surveyMerger struct{ b *core.ReportBuilder }

func (m surveyMerger) Merged(index int) bool { return m.b.Merged(index) }

func (m surveyMerger) Add(cp *Checkpoint) error {
	if cp.Outcome == nil {
		return fmt.Errorf("distsurvey: survey coordinator got a resolver-study outcome")
	}
	return m.b.Add(cp.Outcome)
}

// resolverMerger adapts core.ResolverReportBuilder.
type resolverMerger struct{ b *core.ResolverReportBuilder }

func (m resolverMerger) Merged(index int) bool { return m.b.Merged(index) }

func (m resolverMerger) Add(cp *Checkpoint) error {
	if cp.ROutcome == nil {
		return fmt.Errorf("distsurvey: resolver-study coordinator got a survey outcome")
	}
	return m.b.Add(cp.ROutcome)
}

// Coordinator leases shard jobs (survey or resolver-study) to workers,
// merges their results, and checkpoints every completed shard before
// acknowledging it.
type Coordinator struct {
	hash     string
	reg      *obs.Registry
	store    *Store
	leaseTTL time.Duration

	mu        sync.Mutex
	jobs      map[int]Frame  // job-frame templates, not yet merged
	leases    map[int]*lease // currently granted
	nextEpoch uint64
	merge     shardMerger
	survey    *core.ReportBuilder         // set for survey runs
	resolver  *core.ResolverReportBuilder // set for resolver-study runs
	loaded    int                         // shards recovered from checkpoints at startup
	wake      chan struct{}               // closed+replaced when a shard becomes grantable
	done      chan struct{}               // closed once every shard is merged

	mGranted  *obs.Counter
	mExpired  *obs.Counter
	mRejected *obs.Counter
	mLoaded   *obs.Counter
	mSkipped  *obs.Counter
	mWorkers  *obs.Counter
}

// CheckpointsLoaded reports how many completed shards the coordinator
// recovered from the state directory at startup.
func (c *Coordinator) CheckpointsLoaded() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.loaded
}

// NewCoordinator plans the survey, recovers any checkpointed shards,
// and prepares to serve workers. With a StateDir it refuses mixed
// state via *StateMismatchError / *StateExistsError.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	jobs, err := core.PlanJobs(cfg.Spec)
	if err != nil {
		return nil, err
	}
	frames := make([]Frame, len(jobs))
	for i := range jobs {
		frames[i] = Frame{Type: TypeJob, Job: &jobs[i]}
	}
	builder := core.NewReportBuilder(cfg.Spec)
	c, err := newCoordinator(cfg.Spec.Hash(), cfg.Obs, cfg.LeaseTTL, frames, surveyMerger{builder},
		storeOpener(cfg.StateDir, func() (*Store, []*Checkpoint, int, error) {
			return OpenStore(cfg.StateDir, cfg.Spec, cfg.Resume)
		}))
	if err != nil {
		return nil, err
	}
	c.survey = builder
	return c, nil
}

// NewResolverCoordinator plans the §4.2 resolver study and prepares to
// serve workers — NewCoordinator's resolver-study twin over the same
// lease, checkpoint, and merge machinery.
func NewResolverCoordinator(cfg ResolverConfig) (*Coordinator, error) {
	jobs, err := core.PlanResolverJobs(cfg.Spec)
	if err != nil {
		return nil, err
	}
	frames := make([]Frame, len(jobs))
	for i := range jobs {
		frames[i] = Frame{Type: TypeJob, RJob: &jobs[i]}
	}
	builder := core.NewResolverReportBuilder(cfg.Spec)
	c, err := newCoordinator(cfg.Spec.Hash(), cfg.Obs, cfg.LeaseTTL, frames, resolverMerger{builder},
		storeOpener(cfg.StateDir, func() (*Store, []*Checkpoint, int, error) {
			return OpenResolverStore(cfg.StateDir, cfg.Spec, cfg.Resume)
		}))
	if err != nil {
		return nil, err
	}
	c.resolver = builder
	return c, nil
}

// storeOpener returns open unchanged when a state dir is configured,
// nil otherwise — keeping newCoordinator's "is persistence on" check in
// one place.
func storeOpener(dir string, open func() (*Store, []*Checkpoint, int, error)) func() (*Store, []*Checkpoint, int, error) {
	if dir == "" {
		return nil
	}
	return open
}

// jobIndex returns the shard index a job-frame template describes.
func jobIndex(f Frame) int {
	if f.Job != nil {
		return f.Job.Plan.Index
	}
	return f.RJob.Plan.Index
}

// newCoordinator wires the kind-independent machinery: the job board,
// lease table, counters, and checkpoint replay.
func newCoordinator(hash string, reg *obs.Registry, ttl time.Duration, frames []Frame, merge shardMerger,
	open func() (*Store, []*Checkpoint, int, error)) (*Coordinator, error) {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	c := &Coordinator{
		hash:      hash,
		reg:       reg,
		leaseTTL:  ttl,
		jobs:      make(map[int]Frame, len(frames)),
		leases:    make(map[int]*lease),
		merge:     merge,
		wake:      make(chan struct{}),
		done:      make(chan struct{}),
		mGranted:  reg.Counter("distsurvey_leases_granted_total", "shard leases granted to workers (including re-leases)"),
		mExpired:  reg.Counter("distsurvey_leases_expired_total", "shard leases reclaimed after heartbeat timeout or worker disconnect"),
		mRejected: reg.Counter("distsurvey_results_rejected_total", "shard results refused as stale or duplicate"),
		mLoaded:   reg.Counter("distsurvey_checkpoints_loaded_total", "completed shards recovered from the state dir on startup"),
		mSkipped:  reg.Counter("distsurvey_checkpoints_skipped_total", "corrupt or mismatched checkpoint files ignored on startup"),
		mWorkers:  reg.Counter("distsurvey_workers_connected_total", "workers that completed the hello handshake"),
	}
	for _, f := range frames {
		c.jobs[jobIndex(f)] = f
	}
	if open != nil {
		store, cps, skipped, err := open()
		if err != nil {
			return nil, err
		}
		c.store = store
		c.mSkipped.Add(uint64(skipped))
		for _, cp := range cps {
			index, ok := cp.shardIndex()
			if !ok {
				c.mSkipped.Inc()
				continue
			}
			if _, live := c.jobs[index]; !live || c.merge.Merged(index) {
				c.mSkipped.Inc()
				continue
			}
			if err := c.merge.Add(cp); err != nil {
				return nil, fmt.Errorf("distsurvey: replaying checkpoint for shard %d: %w", index, err)
			}
			if err := c.reg.AddSnapshot(cp.Obs); err != nil {
				return nil, fmt.Errorf("distsurvey: replaying checkpoint metrics for shard %d: %w", index, err)
			}
			delete(c.jobs, index)
			c.loaded++
			c.mLoaded.Inc()
		}
	}
	if len(c.jobs) == 0 {
		close(c.done)
	}
	return c, nil
}

// Serve accepts worker connections on ln until every shard is merged
// (or ctx is cancelled), then returns the finished survey report. Serve
// owns the listener and closes it on the way out.
func (c *Coordinator) Serve(ctx context.Context, ln net.Listener) (*core.SurveyReport, error) {
	if c.survey == nil {
		return nil, fmt.Errorf("distsurvey: Serve on a resolver-study coordinator; use ServeResolverStudy")
	}
	if err := c.serve(ctx, ln); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.survey.Finish(), nil
}

// ServeResolverStudy is Serve for a resolver-study coordinator.
func (c *Coordinator) ServeResolverStudy(ctx context.Context, ln net.Listener) (*core.ResolverStudyReport, error) {
	if c.resolver == nil {
		return nil, fmt.Errorf("distsurvey: ServeResolverStudy on a survey coordinator; use Serve")
	}
	if err := c.serve(ctx, ln); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resolver.Finish(), nil
}

// serve runs the accept loop until every shard is merged (nil), ctx is
// cancelled, or the listener dies with shards outstanding.
func (c *Coordinator) serve(ctx context.Context, ln net.Listener) error {
	var wg sync.WaitGroup
	finished := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-ctx.Done():
		case <-c.done:
		case <-finished:
		}
		// Closing the listener is the one shutdown signal Accept obeys.
		_ = ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.handleConn(ctx, conn)
		}()
	}
	close(finished)
	wg.Wait()

	select {
	case <-c.done:
		return nil
	default:
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	remaining := len(c.jobs)
	c.mu.Unlock()
	return fmt.Errorf("distsurvey: listener closed with %d shard(s) unmerged", remaining)
}

// handleConn speaks the worker protocol on one connection. Every read
// is armed with a lease-TTL deadline, so a silent worker — no
// heartbeat, no result — unblocks the handler, which then releases any
// lease the worker still holds for re-granting.
func (c *Coordinator) handleConn(ctx context.Context, conn net.Conn) {
	defer func() {
		// Connection death is the fast re-lease path: no need to wait
		// for the TTL when the socket already told us the worker is gone.
		_ = conn.Close()
	}()
	w := &wireConn{conn: conn}
	heldShard, heldEpoch := -1, uint64(0)
	defer func() {
		if heldShard >= 0 {
			c.release(heldShard, heldEpoch)
		}
	}()

	hello, err := c.readDeadline(ctx, w)
	if err != nil || hello.Type != TypeHello {
		return
	}
	if hello.Version != ProtocolVersion {
		_ = w.write(ctx, &Frame{Type: TypeError, Err: fmt.Sprintf("protocol version %d, coordinator speaks %d", hello.Version, ProtocolVersion)}) // refusal best-effort: the conn is being dropped
		return
	}
	if hello.ConfigHash != c.hash {
		_ = w.write(ctx, &Frame{Type: TypeError, Err: fmt.Sprintf("config hash %s, coordinator runs %s — start the worker with the same survey flags", hello.ConfigHash, c.hash)}) // refusal best-effort: the conn is being dropped
		return
	}
	hbMS := int(c.leaseTTL.Milliseconds() / 3)
	if hbMS < 1 {
		hbMS = 1
	}
	if err := w.write(ctx, &Frame{Type: TypeHelloOK, Version: ProtocolVersion, HeartbeatMS: hbMS}); err != nil {
		return
	}
	c.mWorkers.Inc()

	for {
		f, err := c.readDeadline(ctx, w)
		if err != nil {
			return
		}
		switch f.Type {
		case TypeLease:
			job, epoch, finished, err := c.acquire(ctx)
			if err != nil {
				return
			}
			if finished {
				_ = w.write(ctx, &Frame{Type: TypeDone}) // worker is leaving either way
				return
			}
			job.Lease = epoch
			if err := w.write(ctx, &job); err != nil {
				return
			}
			heldShard, heldEpoch = jobIndex(job), epoch
		case TypeHeartbeat:
			c.extend(f.Shard, f.Lease)
		case TypeResult:
			accepted, err := c.complete(f)
			if heldShard == f.Shard {
				heldShard, heldEpoch = -1, 0
			}
			if err != nil {
				_ = w.write(ctx, &Frame{Type: TypeError, Err: err.Error()}) // coordinator-side failure; conn is dropped
				return
			}
			if err := w.write(ctx, &Frame{Type: TypeResultOK, Shard: f.Shard, Accepted: accepted}); err != nil {
				return
			}
		default:
			return
		}
	}
}

// readDeadline reads one frame with a lease-TTL deadline armed, so a
// dead-but-connected worker cannot pin its handler (or its lease)
// forever. Heartbeats arrive at a third of the TTL, keeping live
// workers comfortably inside it.
func (c *Coordinator) readDeadline(ctx context.Context, w *wireConn) (*Frame, error) {
	if err := w.conn.SetReadDeadline(time.Now().Add(c.leaseTTL)); err != nil {
		return nil, err
	}
	return w.read(ctx)
}

// acquire blocks until a shard is grantable, every shard is merged
// (finished=true), or ctx is cancelled. Grants go lowest-index-first
// so runs are easy to reason about. The granted value is a copy of the
// job-frame template, ready to send once stamped with the lease epoch.
func (c *Coordinator) acquire(ctx context.Context) (Frame, uint64, bool, error) {
	for {
		c.mu.Lock()
		now := time.Now()
		c.expireLocked(now)
		if job, epoch, ok := c.grantLocked(now); ok {
			c.mu.Unlock()
			return job, epoch, false, nil
		}
		if len(c.jobs) == 0 {
			c.mu.Unlock()
			return Frame{}, 0, true, nil
		}
		wake := c.wake
		wait := c.nextDeadlineLocked(now)
		c.mu.Unlock()

		timer := time.NewTimer(wait)
		select {
		case <-wake: // a release or merge changed the board
		case <-c.done:
			timer.Stop()
			return Frame{}, 0, true, nil
		case <-timer.C: // earliest lease deadline passed; re-scan
		case <-ctx.Done():
			timer.Stop()
			return Frame{}, 0, false, ctx.Err()
		}
		timer.Stop()
	}
}

// expireLocked reclaims leases whose deadline has passed. The lease
// row is deleted but its epoch stays burned: a result from the expired
// grant no longer matches any live lease and is rejected.
func (c *Coordinator) expireLocked(now time.Time) {
	for index, l := range c.leases {
		if now.After(l.deadline) {
			delete(c.leases, index)
			c.mExpired.Inc()
		}
	}
}

// grantLocked leases the lowest-index unleased, unmerged shard.
func (c *Coordinator) grantLocked(now time.Time) (Frame, uint64, bool) {
	indexes := make([]int, 0, len(c.jobs))
	for index := range c.jobs {
		if c.leases[index] == nil {
			indexes = append(indexes, index)
		}
	}
	if len(indexes) == 0 {
		return Frame{}, 0, false
	}
	sort.Ints(indexes)
	index := indexes[0]
	c.nextEpoch++
	c.leases[index] = &lease{epoch: c.nextEpoch, deadline: now.Add(c.leaseTTL)}
	c.mGranted.Inc()
	return c.jobs[index], c.nextEpoch, true
}

// nextDeadlineLocked returns how long acquire may sleep before a lease
// could expire. With no leases outstanding the wake channel is the
// only signal, so sleep a full TTL and re-scan.
func (c *Coordinator) nextDeadlineLocked(now time.Time) time.Duration {
	wait := c.leaseTTL
	for _, l := range c.leases {
		if d := l.deadline.Sub(now); d < wait {
			wait = d
		}
	}
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return wait
}

// extend pushes a live lease's deadline out by one TTL. Stale epochs
// (the shard was re-leased) and unknown shards are ignored.
func (c *Coordinator) extend(shard int, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if l := c.leases[shard]; l != nil && l.epoch == epoch {
		l.deadline = time.Now().Add(c.leaseTTL)
	}
}

// release returns a still-held lease to the pool (worker disconnected
// mid-shard). The epoch check means a release races safely with the
// same shard's re-lease to another worker.
func (c *Coordinator) release(shard int, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if l := c.leases[shard]; l != nil && l.epoch == epoch {
		delete(c.leases, shard)
		c.mExpired.Inc()
		c.wakeLocked()
	}
}

// complete checkpoints and merges one shard result. Ordering is the
// crash-safety contract: the checkpoint hits disk before the merge, so
// a coordinator that dies between the two replays the checkpoint on
// resume rather than losing the shard. Stale-epoch and duplicate
// results are rejected (accepted=false) without touching the report.
func (c *Coordinator) complete(f *Frame) (bool, error) {
	cp := &Checkpoint{Outcome: f.Outcome, ROutcome: f.ROutcome, Obs: f.Obs}
	if index, ok := cp.shardIndex(); !ok || index != f.Shard {
		return false, fmt.Errorf("distsurvey: result frame for shard %d carries no matching outcome", f.Shard)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.leases[f.Shard]
	if l == nil || l.epoch != f.Lease || c.merge.Merged(f.Shard) {
		c.mRejected.Inc()
		return false, nil
	}
	if c.store != nil {
		if err := c.store.Write(cp); err != nil {
			return false, err
		}
	}
	if err := c.merge.Add(cp); err != nil {
		return false, err
	}
	delete(c.leases, f.Shard)
	delete(c.jobs, f.Shard)
	c.wakeLocked()
	if len(c.jobs) == 0 {
		close(c.done)
	}
	if err := c.reg.AddSnapshot(f.Obs); err != nil {
		// The shard is merged and checkpointed; losing its metrics is a
		// loud error but must not strand the shard as forever-pending.
		return true, err
	}
	return true, nil
}

// wakeLocked broadcasts a board change to every blocked acquire.
func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}
