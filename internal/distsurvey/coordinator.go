package distsurvey

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// DefaultLeaseTTL is how long a leased shard may go without a
// heartbeat before the coordinator re-leases it. Workers heartbeat at
// a third of this.
const DefaultLeaseTTL = 10 * time.Second

// Config describes one coordinated survey run.
type Config struct {
	// Spec is the resolved survey. Workers must present the same hash.
	Spec core.SurveySpec
	// Obs receives the merged metrics: worker shard snapshots plus the
	// coordinator's own lease counters. May be nil.
	Obs *obs.Registry
	// StateDir, when non-empty, holds crash-safe per-shard checkpoints;
	// Resume picks up a previous run's completed shards from it.
	StateDir string
	Resume   bool
	// LeaseTTL overrides DefaultLeaseTTL (tests use short TTLs).
	LeaseTTL time.Duration
}

// lease tracks one outstanding shard grant. Epochs make grants
// distinguishable: a result stamped with a superseded epoch is stale
// and rejected, so a re-leased shard can never merge twice.
type lease struct {
	epoch    uint64
	deadline time.Time
}

// Coordinator leases ShardJobs to workers, merges their results, and
// checkpoints every completed shard before acknowledging it.
type Coordinator struct {
	spec     core.SurveySpec
	hash     string
	reg      *obs.Registry
	store    *Store
	leaseTTL time.Duration

	mu        sync.Mutex
	jobs      map[int]core.ShardJob // not yet merged
	leases    map[int]*lease        // currently granted
	nextEpoch uint64
	builder   *core.ReportBuilder
	loaded    int           // shards recovered from checkpoints at startup
	wake      chan struct{} // closed+replaced when a shard becomes grantable
	done      chan struct{} // closed once every shard is merged

	mGranted  *obs.Counter
	mExpired  *obs.Counter
	mRejected *obs.Counter
	mLoaded   *obs.Counter
	mSkipped  *obs.Counter
	mWorkers  *obs.Counter
}

// CheckpointsLoaded reports how many completed shards the coordinator
// recovered from the state directory at startup.
func (c *Coordinator) CheckpointsLoaded() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.loaded
}

// NewCoordinator plans the survey, recovers any checkpointed shards,
// and prepares to serve workers. With a StateDir it refuses mixed
// state via *StateMismatchError / *StateExistsError.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	jobs, err := core.PlanJobs(cfg.Spec)
	if err != nil {
		return nil, err
	}
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	c := &Coordinator{
		spec:      cfg.Spec,
		hash:      cfg.Spec.Hash(),
		reg:       cfg.Obs,
		leaseTTL:  ttl,
		jobs:      make(map[int]core.ShardJob, len(jobs)),
		leases:    make(map[int]*lease),
		builder:   core.NewReportBuilder(cfg.Spec),
		wake:      make(chan struct{}),
		done:      make(chan struct{}),
		mGranted:  cfg.Obs.Counter("distsurvey_leases_granted_total", "shard leases granted to workers (including re-leases)"),
		mExpired:  cfg.Obs.Counter("distsurvey_leases_expired_total", "shard leases reclaimed after heartbeat timeout or worker disconnect"),
		mRejected: cfg.Obs.Counter("distsurvey_results_rejected_total", "shard results refused as stale or duplicate"),
		mLoaded:   cfg.Obs.Counter("distsurvey_checkpoints_loaded_total", "completed shards recovered from the state dir on startup"),
		mSkipped:  cfg.Obs.Counter("distsurvey_checkpoints_skipped_total", "corrupt or mismatched checkpoint files ignored on startup"),
		mWorkers:  cfg.Obs.Counter("distsurvey_workers_connected_total", "workers that completed the hello handshake"),
	}
	for _, j := range jobs {
		c.jobs[j.Plan.Index] = j
	}
	if cfg.StateDir != "" {
		store, cps, skipped, err := OpenStore(cfg.StateDir, cfg.Spec, cfg.Resume)
		if err != nil {
			return nil, err
		}
		c.store = store
		c.mSkipped.Add(uint64(skipped))
		for _, cp := range cps {
			if _, live := c.jobs[cp.Outcome.Index]; !live || c.builder.Merged(cp.Outcome.Index) {
				c.mSkipped.Inc()
				continue
			}
			if err := c.builder.Add(cp.Outcome); err != nil {
				return nil, fmt.Errorf("distsurvey: replaying checkpoint for shard %d: %w", cp.Outcome.Index, err)
			}
			if err := c.reg.AddSnapshot(cp.Obs); err != nil {
				return nil, fmt.Errorf("distsurvey: replaying checkpoint metrics for shard %d: %w", cp.Outcome.Index, err)
			}
			delete(c.jobs, cp.Outcome.Index)
			c.loaded++
			c.mLoaded.Inc()
		}
	}
	if len(c.jobs) == 0 {
		close(c.done)
	}
	return c, nil
}

// Serve accepts worker connections on ln until every shard is merged
// (or ctx is cancelled), then returns the finished report. Serve owns
// the listener and closes it on the way out.
func (c *Coordinator) Serve(ctx context.Context, ln net.Listener) (*core.SurveyReport, error) {
	var wg sync.WaitGroup
	finished := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-ctx.Done():
		case <-c.done:
		case <-finished:
		}
		// Closing the listener is the one shutdown signal Accept obeys.
		_ = ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.handleConn(ctx, conn)
		}()
	}
	close(finished)
	wg.Wait()

	select {
	case <-c.done:
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.builder.Finish(), nil
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	remaining := len(c.jobs)
	c.mu.Unlock()
	return nil, fmt.Errorf("distsurvey: listener closed with %d shard(s) unmerged", remaining)
}

// handleConn speaks the worker protocol on one connection. Every read
// is armed with a lease-TTL deadline, so a silent worker — no
// heartbeat, no result — unblocks the handler, which then releases any
// lease the worker still holds for re-granting.
func (c *Coordinator) handleConn(ctx context.Context, conn net.Conn) {
	defer func() {
		// Connection death is the fast re-lease path: no need to wait
		// for the TTL when the socket already told us the worker is gone.
		_ = conn.Close()
	}()
	w := &wireConn{conn: conn}
	heldShard, heldEpoch := -1, uint64(0)
	defer func() {
		if heldShard >= 0 {
			c.release(heldShard, heldEpoch)
		}
	}()

	hello, err := c.readDeadline(ctx, w)
	if err != nil || hello.Type != TypeHello {
		return
	}
	if hello.Version != ProtocolVersion {
		_ = w.write(ctx, &Frame{Type: TypeError, Err: fmt.Sprintf("protocol version %d, coordinator speaks %d", hello.Version, ProtocolVersion)}) // refusal best-effort: the conn is being dropped
		return
	}
	if hello.ConfigHash != c.hash {
		_ = w.write(ctx, &Frame{Type: TypeError, Err: fmt.Sprintf("config hash %s, coordinator runs %s — start the worker with the same survey flags", hello.ConfigHash, c.hash)}) // refusal best-effort: the conn is being dropped
		return
	}
	hbMS := int(c.leaseTTL.Milliseconds() / 3)
	if hbMS < 1 {
		hbMS = 1
	}
	if err := w.write(ctx, &Frame{Type: TypeHelloOK, Version: ProtocolVersion, HeartbeatMS: hbMS}); err != nil {
		return
	}
	c.mWorkers.Inc()

	for {
		f, err := c.readDeadline(ctx, w)
		if err != nil {
			return
		}
		switch f.Type {
		case TypeLease:
			job, epoch, finished, err := c.acquire(ctx)
			if err != nil {
				return
			}
			if finished {
				_ = w.write(ctx, &Frame{Type: TypeDone}) // worker is leaving either way
				return
			}
			if err := w.write(ctx, &Frame{Type: TypeJob, Job: job, Lease: epoch}); err != nil {
				return
			}
			heldShard, heldEpoch = job.Plan.Index, epoch
		case TypeHeartbeat:
			c.extend(f.Shard, f.Lease)
		case TypeResult:
			accepted, err := c.complete(f)
			if heldShard == f.Shard {
				heldShard, heldEpoch = -1, 0
			}
			if err != nil {
				_ = w.write(ctx, &Frame{Type: TypeError, Err: err.Error()}) // coordinator-side failure; conn is dropped
				return
			}
			if err := w.write(ctx, &Frame{Type: TypeResultOK, Shard: f.Shard, Accepted: accepted}); err != nil {
				return
			}
		default:
			return
		}
	}
}

// readDeadline reads one frame with a lease-TTL deadline armed, so a
// dead-but-connected worker cannot pin its handler (or its lease)
// forever. Heartbeats arrive at a third of the TTL, keeping live
// workers comfortably inside it.
func (c *Coordinator) readDeadline(ctx context.Context, w *wireConn) (*Frame, error) {
	if err := w.conn.SetReadDeadline(time.Now().Add(c.leaseTTL)); err != nil {
		return nil, err
	}
	return w.read(ctx)
}

// acquire blocks until a shard is grantable, every shard is merged
// (finished=true), or ctx is cancelled. Grants go lowest-index-first
// so runs are easy to reason about.
func (c *Coordinator) acquire(ctx context.Context) (*core.ShardJob, uint64, bool, error) {
	for {
		c.mu.Lock()
		now := time.Now()
		c.expireLocked(now)
		if job, epoch, ok := c.grantLocked(now); ok {
			c.mu.Unlock()
			return job, epoch, false, nil
		}
		if len(c.jobs) == 0 {
			c.mu.Unlock()
			return nil, 0, true, nil
		}
		wake := c.wake
		wait := c.nextDeadlineLocked(now)
		c.mu.Unlock()

		timer := time.NewTimer(wait)
		select {
		case <-wake: // a release or merge changed the board
		case <-c.done:
			timer.Stop()
			return nil, 0, true, nil
		case <-timer.C: // earliest lease deadline passed; re-scan
		case <-ctx.Done():
			timer.Stop()
			return nil, 0, false, ctx.Err()
		}
		timer.Stop()
	}
}

// expireLocked reclaims leases whose deadline has passed. The lease
// row is deleted but its epoch stays burned: a result from the expired
// grant no longer matches any live lease and is rejected.
func (c *Coordinator) expireLocked(now time.Time) {
	for index, l := range c.leases {
		if now.After(l.deadline) {
			delete(c.leases, index)
			c.mExpired.Inc()
		}
	}
}

// grantLocked leases the lowest-index unleased, unmerged shard.
func (c *Coordinator) grantLocked(now time.Time) (*core.ShardJob, uint64, bool) {
	indexes := make([]int, 0, len(c.jobs))
	for index := range c.jobs {
		if c.leases[index] == nil {
			indexes = append(indexes, index)
		}
	}
	if len(indexes) == 0 {
		return nil, 0, false
	}
	sort.Ints(indexes)
	index := indexes[0]
	c.nextEpoch++
	c.leases[index] = &lease{epoch: c.nextEpoch, deadline: now.Add(c.leaseTTL)}
	c.mGranted.Inc()
	job := c.jobs[index]
	return &job, c.nextEpoch, true
}

// nextDeadlineLocked returns how long acquire may sleep before a lease
// could expire. With no leases outstanding the wake channel is the
// only signal, so sleep a full TTL and re-scan.
func (c *Coordinator) nextDeadlineLocked(now time.Time) time.Duration {
	wait := c.leaseTTL
	for _, l := range c.leases {
		if d := l.deadline.Sub(now); d < wait {
			wait = d
		}
	}
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return wait
}

// extend pushes a live lease's deadline out by one TTL. Stale epochs
// (the shard was re-leased) and unknown shards are ignored.
func (c *Coordinator) extend(shard int, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if l := c.leases[shard]; l != nil && l.epoch == epoch {
		l.deadline = time.Now().Add(c.leaseTTL)
	}
}

// release returns a still-held lease to the pool (worker disconnected
// mid-shard). The epoch check means a release races safely with the
// same shard's re-lease to another worker.
func (c *Coordinator) release(shard int, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if l := c.leases[shard]; l != nil && l.epoch == epoch {
		delete(c.leases, shard)
		c.mExpired.Inc()
		c.wakeLocked()
	}
}

// complete checkpoints and merges one shard result. Ordering is the
// crash-safety contract: the checkpoint hits disk before the merge, so
// a coordinator that dies between the two replays the checkpoint on
// resume rather than losing the shard. Stale-epoch and duplicate
// results are rejected (accepted=false) without touching the report.
func (c *Coordinator) complete(f *Frame) (bool, error) {
	if f.Outcome == nil || f.Outcome.Index != f.Shard {
		return false, fmt.Errorf("distsurvey: result frame for shard %d carries outcome %v", f.Shard, f.Outcome)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.leases[f.Shard]
	if l == nil || l.epoch != f.Lease || c.builder.Merged(f.Shard) {
		c.mRejected.Inc()
		return false, nil
	}
	if c.store != nil {
		if err := c.store.Write(&Checkpoint{Outcome: f.Outcome, Obs: f.Obs}); err != nil {
			return false, err
		}
	}
	if err := c.builder.Add(f.Outcome); err != nil {
		return false, err
	}
	delete(c.leases, f.Shard)
	delete(c.jobs, f.Shard)
	c.wakeLocked()
	if len(c.jobs) == 0 {
		close(c.done)
	}
	if err := c.reg.AddSnapshot(f.Obs); err != nil {
		// The shard is merged and checkpointed; losing its metrics is a
		// loud error but must not strand the shard as forever-pending.
		return true, err
	}
	return true, nil
}

// wakeLocked broadcasts a board change to every blocked acquire.
func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}
