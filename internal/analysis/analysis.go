// Package analysis turns raw measurement output into the paper's
// tables and figures: cumulative distributions (Figure 1 and 2),
// operator attribution tables (Table 2), response-code series across
// iteration counts (Figure 3), and plain-text renderings of all of
// them for the repro harness and EXPERIMENTS.md.
package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over integer values.
type CDF struct {
	// points are (value, cumulativeCount) sorted by value.
	values []int
	cum    []int
	total  int
}

// CDFFromHist builds a CDF from a value→count histogram.
func CDFFromHist(hist map[int]int) *CDF {
	c := &CDF{}
	for v := range hist {
		c.values = append(c.values, v)
	}
	sort.Ints(c.values)
	acc := 0
	for _, v := range c.values {
		acc += hist[v]
		c.cum = append(c.cum, acc)
	}
	c.total = acc
	return c
}

// Total returns the population size.
func (c *CDF) Total() int { return c.total }

// Hist reconstructs the value→count histogram the CDF was built from.
func (c *CDF) Hist() map[int]int {
	h := make(map[int]int, len(c.values))
	prev := 0
	for i, v := range c.values {
		h[v] = c.cum[i] - prev
		prev = c.cum[i]
	}
	return h
}

// Merge folds other's population into c, as if both CDFs had been
// built from one combined histogram.
func (c *CDF) Merge(other *CDF) {
	if other == nil || other.total == 0 {
		return
	}
	h := c.Hist()
	for v, n := range other.Hist() {
		h[v] += n
	}
	*c = *CDFFromHist(h)
}

// At returns the fraction of the population with value ≤ x, in [0,1].
func (c *CDF) At(x int) float64 {
	if c.total == 0 {
		return 0
	}
	i := sort.SearchInts(c.values, x+1) - 1
	if i < 0 {
		return 0
	}
	return float64(c.cum[i]) / float64(c.total)
}

// Percentile returns the smallest value v such that At(v) ≥ p (p in
// [0,1]).
func (c *CDF) Percentile(p float64) int {
	if c.total == 0 {
		return 0
	}
	need := int(p*float64(c.total) + 0.999999)
	for i, cc := range c.cum {
		if cc >= need {
			return c.values[i]
		}
	}
	return c.values[len(c.values)-1]
}

// Max returns the largest observed value.
func (c *CDF) Max() int {
	if len(c.values) == 0 {
		return 0
	}
	return c.values[len(c.values)-1]
}

// RenderCDF writes a fixed set of probe points of the CDF as a text
// table: the shape summary the repro harness compares against Figure 1.
func RenderCDF(w io.Writer, title string, c *CDF, probes []int) {
	fmt.Fprintf(w, "%s (n=%d)\n", title, c.total)
	fmt.Fprintf(w, "  %-10s %s\n", "value<=", "share")
	for _, p := range probes {
		fmt.Fprintf(w, "  %-10d %6.2f %%\n", p, 100*c.At(p))
	}
	fmt.Fprintf(w, "  %-10s %d\n", "max", c.Max())
}

// Bucket is one row of a share table.
type Bucket struct {
	Label string
	Count int
}

// ShareTable renders labeled counts with percentages of a denominator.
func ShareTable(w io.Writer, title string, buckets []Bucket, denom int) {
	fmt.Fprintln(w, title)
	for _, b := range buckets {
		fmt.Fprintf(w, "  %-44s %9d  (%5.1f %%)\n", b.Label, b.Count, pct(b.Count, denom))
	}
}

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// OperatorRow is one row of Table 2.
type OperatorRow struct {
	Operator string
	Domains  int
	Share    float64 // percent of all NSEC3-enabled domains
	// Settings are the distinct "iterations/saltlen" strings observed,
	// most frequent first.
	Settings []string
}

// OperatorStats accumulates per-operator observations for Table 2:
// NSEC3-enabled domains grouped by the registered domain of their
// (exclusive) name server operator, with the parameter settings seen.
type OperatorStats struct {
	total   int
	domains map[string]int            // operator -> exclusive domain count
	params  map[string]map[string]int // operator -> "it/salt" -> count
	mixed   int                       // domains served by multiple operators
}

// NewOperatorStats prepares an empty accumulator.
func NewOperatorStats() *OperatorStats {
	return &OperatorStats{
		domains: make(map[string]int),
		params:  make(map[string]map[string]int),
	}
}

// Add records one NSEC3-enabled domain: the registered domains of its
// NS hosts (operator keys), and its parameters. Domains whose NS set
// spans multiple operators are counted as mixed, not attributed — the
// paper's table covers exclusively served domains only.
func (s *OperatorStats) Add(operators []string, iterations uint16, saltLen int) {
	s.total++
	distinct := map[string]bool{}
	for _, op := range operators {
		distinct[op] = true
	}
	if len(distinct) != 1 {
		s.mixed++
		return
	}
	var op string
	for k := range distinct {
		op = k
	}
	s.domains[op]++
	if s.params[op] == nil {
		s.params[op] = make(map[string]int)
	}
	s.params[op][fmt.Sprintf("%d/%d", iterations, saltLen)]++
}

// Merge folds another accumulator into s. Scan workers each own a
// private OperatorStats merged once at the end of a shard; merge order
// does not affect the result.
func (s *OperatorStats) Merge(o *OperatorStats) {
	if o == nil {
		return
	}
	s.total += o.total
	s.mixed += o.mixed
	for op, n := range o.domains {
		s.domains[op] += n
	}
	for op, settings := range o.params {
		if s.params[op] == nil {
			s.params[op] = make(map[string]int, len(settings))
		}
		for k, v := range settings {
			s.params[op][k] += v
		}
	}
}

// operatorStatsJSON is the wire form of OperatorStats: the fields are
// unexported so shard outcomes crossing a process boundary need an
// explicit codec. encoding/json sorts map keys, so the encoding is
// deterministic.
type operatorStatsJSON struct {
	Total   int                       `json:"total"`
	Mixed   int                       `json:"mixed"`
	Domains map[string]int            `json:"domains"`
	Params  map[string]map[string]int `json:"params"`
}

// MarshalJSON encodes the accumulator for shard-outcome transport.
func (s *OperatorStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(operatorStatsJSON{
		Total:   s.total,
		Mixed:   s.mixed,
		Domains: s.domains,
		Params:  s.params,
	})
}

// UnmarshalJSON decodes an accumulator, guaranteeing non-nil maps so a
// decoded value is indistinguishable from a locally built one (Merge
// and reflect.DeepEqual both rely on that).
func (s *OperatorStats) UnmarshalJSON(data []byte) error {
	var w operatorStatsJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	s.total = w.Total
	s.mixed = w.Mixed
	s.domains = w.Domains
	s.params = w.Params
	if s.domains == nil {
		s.domains = make(map[string]int)
	}
	if s.params == nil {
		s.params = make(map[string]map[string]int)
	}
	return nil
}

// Top returns the n largest operators by exclusive domain count,
// Table 2 style.
func (s *OperatorStats) Top(n int) []OperatorRow {
	rows := make([]OperatorRow, 0, len(s.domains))
	for op, count := range s.domains {
		row := OperatorRow{
			Operator: op,
			Domains:  count,
			Share:    pct(count, s.total),
		}
		type kv struct {
			k string
			v int
		}
		var settings []kv
		for k, v := range s.params[op] {
			settings = append(settings, kv{k, v})
		}
		sort.Slice(settings, func(i, j int) bool {
			if settings[i].v != settings[j].v {
				return settings[i].v > settings[j].v
			}
			return settings[i].k < settings[j].k
		})
		for _, sv := range settings {
			// Table 2 lists the settings representing ≥99.9 % of the
			// operator's domains; drop one-off noise below 0.1 %.
			if pct(sv.v, count) < 0.1 && len(row.Settings) > 0 {
				continue
			}
			row.Settings = append(row.Settings, sv.k)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Domains != rows[j].Domains {
			return rows[i].Domains > rows[j].Domains
		}
		return rows[i].Operator < rows[j].Operator
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// Total returns the number of NSEC3-enabled domains added.
func (s *OperatorStats) Total() int { return s.total }

// RenderOperatorTable writes Table 2.
func RenderOperatorTable(w io.Writer, rows []OperatorRow) {
	fmt.Fprintf(w, "%-24s %12s %8s   %s\n", "Auth. NS operator", "# domains", "share", "iterations/salt (B)")
	topSum := 0
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %12d %7.1f%%   %s\n",
			r.Operator, r.Domains, r.Share, strings.Join(r.Settings, ", "))
		topSum += r.Domains
	}
	fmt.Fprintf(w, "%-24s %12d\n", "(top rows combined)", topSum)
}
