package analysis

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dnswire"
	"repro/internal/testbed"
)

func TestCDFBasics(t *testing.T) {
	c := CDFFromHist(map[int]int{0: 10, 1: 60, 8: 20, 100: 9, 500: 1})
	if c.Total() != 100 {
		t.Fatalf("total %d", c.Total())
	}
	cases := []struct {
		x    int
		want float64
	}{
		{-1, 0}, {0, 0.10}, {1, 0.70}, {7, 0.70}, {8, 0.90},
		{99, 0.90}, {100, 0.99}, {499, 0.99}, {500, 1.0}, {10000, 1.0},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("At(%d) = %f, want %f", cse.x, got, cse.want)
		}
	}
	if c.Max() != 500 {
		t.Fatalf("Max = %d", c.Max())
	}
	if c.Percentile(0.5) != 1 || c.Percentile(0.999) != 500 || c.Percentile(0.9) != 8 {
		t.Fatalf("percentiles: %d %d %d", c.Percentile(0.5), c.Percentile(0.999), c.Percentile(0.9))
	}
}

func TestCDFEmpty(t *testing.T) {
	c := CDFFromHist(nil)
	if c.At(5) != 0 || c.Max() != 0 || c.Percentile(0.5) != 0 {
		t.Fatal("empty CDF misbehaves")
	}
}

func TestPropCDFMonotone(t *testing.T) {
	f := func(raw map[uint8]uint8) bool {
		hist := map[int]int{}
		for k, v := range raw {
			if v > 0 {
				hist[int(k)] = int(v)
			}
		}
		c := CDFFromHist(hist)
		prev := 0.0
		for x := -1; x <= 260; x++ {
			cur := c.At(x)
			if cur < prev-1e-12 {
				return false
			}
			prev = cur
		}
		return len(hist) == 0 || math.Abs(c.At(256)-1.0) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOperatorStatsTop(t *testing.T) {
	s := NewOperatorStats()
	for i := 0; i < 60; i++ {
		s.Add([]string{"big-dns.com"}, 1, 8)
	}
	for i := 0; i < 30; i++ {
		s.Add([]string{"mid-dns.net", "mid-dns.net"}, 0, 0) // same op twice = exclusive
	}
	for i := 0; i < 10; i++ {
		s.Add([]string{"big-dns.com", "mid-dns.net"}, 5, 5) // mixed: dropped
	}
	rows := s.Top(10)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].Operator != "big-dns.com" || rows[0].Domains != 60 {
		t.Fatalf("top row %+v", rows[0])
	}
	if math.Abs(rows[0].Share-60.0) > 1e-9 {
		t.Fatalf("share %f (mixed domains count in the denominator)", rows[0].Share)
	}
	if rows[0].Settings[0] != "1/8" || rows[1].Settings[0] != "0/0" {
		t.Fatalf("settings %v / %v", rows[0].Settings, rows[1].Settings)
	}
	var sb strings.Builder
	RenderOperatorTable(&sb, rows)
	if !strings.Contains(sb.String(), "big-dns.com") {
		t.Fatal("render missing operator")
	}
}

func TestOperatorStatsSettingNoiseFiltered(t *testing.T) {
	s := NewOperatorStats()
	for i := 0; i < 2000; i++ {
		s.Add([]string{"op.example"}, 1, 8)
	}
	s.Add([]string{"op.example"}, 77, 3) // single outlier < 0.1 %
	rows := s.Top(1)
	for _, set := range rows[0].Settings {
		if set == "77/3" {
			t.Fatal("noise setting not filtered")
		}
	}
}

func mkSeries() *RCodeSeries {
	mk := func(label string, n uint16, rcode dnswire.RCode, ad bool) testbed.Observation {
		return testbed.Observation{Label: label, Iterations: n, NXProbe: true, RCode: rcode, AD: ad}
	}
	// Two validators: one insecure-above-2, one servfail-above-2.
	t1 := &testbed.Transcript{Observations: []testbed.Observation{
		mk("it-1", 1, dnswire.RCodeNXDomain, true),
		mk("it-2", 2, dnswire.RCodeNXDomain, true),
		mk("it-3", 3, dnswire.RCodeNXDomain, false),
	}}
	t2 := &testbed.Transcript{Observations: []testbed.Observation{
		mk("it-1", 1, dnswire.RCodeNXDomain, true),
		mk("it-2", 2, dnswire.RCodeNXDomain, true),
		mk("it-3", 3, dnswire.RCodeServFail, false),
	}}
	return BuildRCodeSeries("Test, IPv4", []*testbed.Transcript{t1, t2})
}

func TestBuildRCodeSeries(t *testing.T) {
	s := mkSeries()
	if s.Validators != 2 || len(s.Points()) != 3 {
		t.Fatalf("series %+v", s)
	}
	p1, ok := s.At(1)
	if !ok || p1.NXDOMAIN != 100 || p1.ADNXDOMAIN != 100 || p1.SERVFAIL != 0 {
		t.Fatalf("p1 = %+v", p1)
	}
	p3, _ := s.At(3)
	if p3.NXDOMAIN != 50 || p3.ADNXDOMAIN != 0 || p3.SERVFAIL != 50 {
		t.Fatalf("p3 = %+v", p3)
	}
	if _, ok := s.At(99); ok {
		t.Fatal("At(99) hallucinated")
	}
}

// TestRCodeSeriesMergeEquivalence: shard-local series merged in any
// order must equal observing every transcript in one series.
func TestRCodeSeriesMergeEquivalence(t *testing.T) {
	whole := mkSeries()
	mk := func(label string, n uint16, rcode dnswire.RCode, ad bool) testbed.Observation {
		return testbed.Observation{Label: label, Iterations: n, NXProbe: true, RCode: rcode, AD: ad}
	}
	t3 := &testbed.Transcript{Observations: []testbed.Observation{
		mk("it-1", 1, dnswire.RCodeNXDomain, true),
		mk("it-4", 4, dnswire.RCodeServFail, false),
	}}
	whole.Observe(t3)

	// Split: shard A = mkSeries' two transcripts, shard B = t3 alone,
	// merged in both orders.
	for _, reversed := range []bool{false, true} {
		a := mkSeries()
		b := NewRCodeSeries("Test, IPv4")
		b.Observe(t3)
		merged := NewRCodeSeries("Test, IPv4")
		if reversed {
			merged.Merge(b)
			merged.Merge(a)
		} else {
			merged.Merge(a)
			merged.Merge(b)
		}
		if merged.Validators != whole.Validators {
			t.Fatalf("reversed=%v: validators %d != %d", reversed, merged.Validators, whole.Validators)
		}
		if !reflect.DeepEqual(merged.Points(), whole.Points()) {
			t.Fatalf("reversed=%v: merged points %+v != whole %+v", reversed, merged.Points(), whole.Points())
		}
	}
}

func TestRenderers(t *testing.T) {
	var sb strings.Builder
	s := mkSeries()
	RenderRCodeSeries(&sb, s)
	out := sb.String()
	for _, want := range []string{"Test, IPv4", "NXDOMAIN", "SERVFAIL", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	SparkRender(&sb, s)
	if !strings.Contains(sb.String(), "AD+NXDOMAIN") {
		t.Fatal("spark render incomplete")
	}
	sb.Reset()
	RenderCDF(&sb, "iterations", CDFFromHist(map[int]int{0: 1, 25: 9}), []int{0, 25})
	if !strings.Contains(sb.String(), "10.00 %") {
		t.Fatalf("CDF render:\n%s", sb.String())
	}
	sb.Reset()
	ShareTable(&sb, "shares", []Bucket{{"compliant", 25}}, 100)
	if !strings.Contains(sb.String(), "25.0 %") {
		t.Fatalf("share table:\n%s", sb.String())
	}
}

// TestOperatorStatsMergeEquivalence: per-worker accumulators merged in
// any order must equal a single sequential accumulator.
func TestOperatorStatsMergeEquivalence(t *testing.T) {
	type obs struct {
		ops  []string
		iter uint16
		salt int
	}
	stream := []obs{
		{[]string{"a.net"}, 1, 8},
		{[]string{"a.net"}, 1, 8},
		{[]string{"b.com"}, 0, 0},
		{[]string{"a.net", "b.com"}, 5, 4}, // mixed
		{[]string{"c.org"}, 100, 8},
		{[]string{"b.com"}, 0, 4},
	}
	whole := NewOperatorStats()
	for _, o := range stream {
		whole.Add(o.ops, o.iter, o.salt)
	}
	parts := []*OperatorStats{NewOperatorStats(), NewOperatorStats()}
	for i, o := range stream {
		parts[i%2].Add(o.ops, o.iter, o.salt)
	}
	merged := NewOperatorStats()
	for _, p := range []*OperatorStats{parts[1], parts[0]} { // reversed order
		merged.Merge(p)
	}
	if !reflect.DeepEqual(whole, merged) {
		t.Fatalf("merged stats differ:\nwhole:  %+v\nmerged: %+v", whole, merged)
	}
	if merged.Total() != len(stream) {
		t.Fatalf("total %d, want %d", merged.Total(), len(stream))
	}
}

// TestCDFHistRoundTripAndMerge: Hist inverts CDFFromHist, and Merge
// equals building one CDF from the combined histogram.
func TestCDFHistRoundTripAndMerge(t *testing.T) {
	ha := map[int]int{0: 5, 1: 3, 10: 2}
	hb := map[int]int{1: 4, 10: 1, 500: 1}
	a := CDFFromHist(ha)
	if !reflect.DeepEqual(a.Hist(), ha) {
		t.Fatalf("Hist round trip: %v", a.Hist())
	}
	a.Merge(CDFFromHist(hb))
	combined := map[int]int{0: 5, 1: 7, 10: 3, 500: 1}
	if !reflect.DeepEqual(a, CDFFromHist(combined)) {
		t.Fatalf("merged CDF differs: %+v vs %+v", a, CDFFromHist(combined))
	}
	// Merging an empty or nil CDF is a no-op.
	a.Merge(CDFFromHist(nil))
	a.Merge(nil)
	if a.Total() != 16 || a.Max() != 500 {
		t.Fatalf("no-op merges changed the CDF: total=%d max=%d", a.Total(), a.Max())
	}
}

// TestOperatorStatsJSONRoundTrip pins the wire codec the distributed
// survey ships shard outcomes through: a decoded accumulator is
// DeepEqual to the original (non-nil maps included) and keeps merging.
func TestOperatorStatsJSONRoundTrip(t *testing.T) {
	s := NewOperatorStats()
	s.Add([]string{"ns.one.example"}, 5, 8)
	s.Add([]string{"ns.one.example"}, 5, 8)
	s.Add([]string{"a.example", "b.example"}, 0, 0) // mixed
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	got := NewOperatorStats()
	if err := json.Unmarshal(data, got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip drifted: %+v vs %+v", s, got)
	}
	// Empty accumulators must also round-trip to non-nil maps: a worker
	// that saw no NSEC3 domains still produces a mergeable outcome.
	empty := NewOperatorStats()
	data, err = json.Marshal(empty)
	if err != nil {
		t.Fatal(err)
	}
	got = &OperatorStats{}
	if err := json.Unmarshal(data, got); err != nil {
		t.Fatal(err)
	}
	if got.domains == nil || got.params == nil {
		t.Fatal("decoded accumulator has nil maps")
	}
	got.Merge(s)
	if got.Total() != s.Total() {
		t.Fatalf("merge after decode: total %d, want %d", got.Total(), s.Total())
	}
	if !reflect.DeepEqual(empty, NewOperatorStats()) {
		t.Fatal("marshal mutated the source accumulator")
	}
}
