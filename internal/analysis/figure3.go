package analysis

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/dnswire"
	"repro/internal/testbed"
)

// Figure 3: for each iteration count N, the share of validators
// answering the it-N probe with NXDOMAIN, NXDOMAIN+AD, or SERVFAIL.

// RCodePoint is one x-position of the Figure 3 series.
type RCodePoint struct {
	Iterations int
	// Shares in percent of validators probed.
	NXDOMAIN   float64 // all NXDOMAINs (the AD subset included, as in the paper)
	ADNXDOMAIN float64
	SERVFAIL   float64
}

// RCodeSeries is one subfigure (one resolver quadrant).
type RCodeSeries struct {
	Title      string
	Validators int
	Points     []RCodePoint
}

// BuildRCodeSeries aggregates transcripts (validators only — filter
// first) into the per-iteration response shares.
func BuildRCodeSeries(title string, transcripts []*testbed.Transcript) *RCodeSeries {
	s := &RCodeSeries{Title: title, Validators: len(transcripts)}
	type counts struct{ nx, adnx, sf int }
	byIter := map[int]*counts{}
	for _, tr := range transcripts {
		for _, o := range tr.ItSeries() {
			c := byIter[int(o.Iterations)]
			if c == nil {
				c = &counts{}
				byIter[int(o.Iterations)] = c
			}
			switch {
			case o.Err != nil:
			case o.RCode == dnswire.RCodeNXDomain:
				c.nx++
				if o.AD {
					c.adnx++
				}
			case o.RCode == dnswire.RCodeServFail:
				c.sf++
			}
		}
	}
	iters := make([]int, 0, len(byIter))
	for n := range byIter {
		iters = append(iters, n)
	}
	sort.Ints(iters)
	den := len(transcripts)
	for _, n := range iters {
		c := byIter[n]
		s.Points = append(s.Points, RCodePoint{
			Iterations: n,
			NXDOMAIN:   pct(c.nx, den),
			ADNXDOMAIN: pct(c.adnx, den),
			SERVFAIL:   pct(c.sf, den),
		})
	}
	return s
}

// At returns the point for iteration count n.
func (s *RCodeSeries) At(n int) (RCodePoint, bool) {
	for _, p := range s.Points {
		if p.Iterations == n {
			return p, true
		}
	}
	return RCodePoint{}, false
}

// RenderRCodeSeries writes the series as a table, one row per probed
// iteration count.
func RenderRCodeSeries(w io.Writer, s *RCodeSeries) {
	fmt.Fprintf(w, "Figure 3 — %s (validators=%d)\n", s.Title, s.Validators)
	fmt.Fprintf(w, "  %6s %10s %12s %10s\n", "it-N", "NXDOMAIN", "AD+NXDOMAIN", "SERVFAIL")
	for _, p := range s.Points {
		fmt.Fprintf(w, "  %6d %9.1f%% %11.1f%% %9.1f%%\n",
			p.Iterations, p.NXDOMAIN, p.ADNXDOMAIN, p.SERVFAIL)
	}
}

// SparkRender draws a compact ASCII chart of the three series across
// the probed iteration values, mimicking the visual shape of Figure 3.
func SparkRender(w io.Writer, s *RCodeSeries) {
	levels := []rune(" .:-=+*#%@")
	line := func(name string, get func(RCodePoint) float64) {
		fmt.Fprintf(w, "  %-12s ", name)
		for _, p := range s.Points {
			idx := int(get(p) / 100 * float64(len(levels)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(levels) {
				idx = len(levels) - 1
			}
			fmt.Fprintf(w, "%c", levels[idx])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%s — density over it-N (left→right: increasing N)\n", s.Title)
	line("NXDOMAIN", func(p RCodePoint) float64 { return p.NXDOMAIN })
	line("AD+NXDOMAIN", func(p RCodePoint) float64 { return p.ADNXDOMAIN })
	line("SERVFAIL", func(p RCodePoint) float64 { return p.SERVFAIL })
}
