package analysis

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/dnswire"
	"repro/internal/testbed"
)

// Figure 3: for each iteration count N, the share of validators
// answering the it-N probe with NXDOMAIN, NXDOMAIN+AD, or SERVFAIL.

// RCodePoint is one x-position of the Figure 3 series.
type RCodePoint struct {
	Iterations int
	// Shares in percent of validators probed.
	NXDOMAIN   float64 // all NXDOMAINs (the AD subset included, as in the paper)
	ADNXDOMAIN float64
	SERVFAIL   float64
}

// RCodeCounts are the raw per-iteration response tallies an RCodeSeries
// accumulates. Keeping counts (not percentages) is what makes the
// series mergeable: shard series sum field-by-field, and the percent
// view is derived on demand.
type RCodeCounts struct {
	NXDOMAIN   int `json:"nxdomain"`
	ADNXDOMAIN int `json:"ad_nxdomain"`
	SERVFAIL   int `json:"servfail"`
}

// RCodeSeries is one subfigure (one resolver quadrant), accumulated as
// raw counts so shard-local series merge exactly.
type RCodeSeries struct {
	Title      string
	Validators int
	// Counts maps iteration count → response tallies.
	Counts map[int]*RCodeCounts
}

// NewRCodeSeries prepares an empty series.
func NewRCodeSeries(title string) *RCodeSeries {
	return &RCodeSeries{Title: title, Counts: make(map[int]*RCodeCounts)}
}

// Observe folds one validator's transcript into the tallies.
func (s *RCodeSeries) Observe(tr *testbed.Transcript) {
	s.Validators++
	for _, o := range tr.ItSeries() {
		c := s.Counts[int(o.Iterations)]
		if c == nil {
			c = &RCodeCounts{}
			s.Counts[int(o.Iterations)] = c
		}
		switch {
		case o.Err != nil:
		case o.RCode == dnswire.RCodeNXDomain:
			c.NXDOMAIN++
			if o.AD {
				c.ADNXDOMAIN++
			}
		case o.RCode == dnswire.RCodeServFail:
			c.SERVFAIL++
		}
	}
}

// Merge folds another series' tallies into s. Every field is a sum, so
// merging shard series in any order equals observing the union.
func (s *RCodeSeries) Merge(b *RCodeSeries) {
	if b == nil {
		return
	}
	s.Validators += b.Validators
	for n, bc := range b.Counts {
		c := s.Counts[n]
		if c == nil {
			c = &RCodeCounts{}
			s.Counts[n] = c
		}
		c.NXDOMAIN += bc.NXDOMAIN
		c.ADNXDOMAIN += bc.ADNXDOMAIN
		c.SERVFAIL += bc.SERVFAIL
	}
}

// BuildRCodeSeries aggregates transcripts (validators only — filter
// first) into the per-iteration response shares.
func BuildRCodeSeries(title string, transcripts []*testbed.Transcript) *RCodeSeries {
	s := NewRCodeSeries(title)
	for _, tr := range transcripts {
		s.Observe(tr)
	}
	return s
}

// Points derives the percent view, one point per probed iteration
// count in increasing order.
func (s *RCodeSeries) Points() []RCodePoint {
	iters := make([]int, 0, len(s.Counts))
	for n := range s.Counts {
		iters = append(iters, n)
	}
	sort.Ints(iters)
	points := make([]RCodePoint, 0, len(iters))
	for _, n := range iters {
		c := s.Counts[n]
		points = append(points, RCodePoint{
			Iterations: n,
			NXDOMAIN:   pct(c.NXDOMAIN, s.Validators),
			ADNXDOMAIN: pct(c.ADNXDOMAIN, s.Validators),
			SERVFAIL:   pct(c.SERVFAIL, s.Validators),
		})
	}
	return points
}

// At returns the point for iteration count n.
func (s *RCodeSeries) At(n int) (RCodePoint, bool) {
	c, ok := s.Counts[n]
	if !ok {
		return RCodePoint{}, false
	}
	return RCodePoint{
		Iterations: n,
		NXDOMAIN:   pct(c.NXDOMAIN, s.Validators),
		ADNXDOMAIN: pct(c.ADNXDOMAIN, s.Validators),
		SERVFAIL:   pct(c.SERVFAIL, s.Validators),
	}, true
}

// RenderRCodeSeries writes the series as a table, one row per probed
// iteration count.
func RenderRCodeSeries(w io.Writer, s *RCodeSeries) {
	fmt.Fprintf(w, "Figure 3 — %s (validators=%d)\n", s.Title, s.Validators)
	fmt.Fprintf(w, "  %6s %10s %12s %10s\n", "it-N", "NXDOMAIN", "AD+NXDOMAIN", "SERVFAIL")
	for _, p := range s.Points() {
		fmt.Fprintf(w, "  %6d %9.1f%% %11.1f%% %9.1f%%\n",
			p.Iterations, p.NXDOMAIN, p.ADNXDOMAIN, p.SERVFAIL)
	}
}

// SparkRender draws a compact ASCII chart of the three series across
// the probed iteration values, mimicking the visual shape of Figure 3.
func SparkRender(w io.Writer, s *RCodeSeries) {
	levels := []rune(" .:-=+*#%@")
	points := s.Points()
	line := func(name string, get func(RCodePoint) float64) {
		fmt.Fprintf(w, "  %-12s ", name)
		for _, p := range points {
			idx := int(get(p) / 100 * float64(len(levels)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(levels) {
				idx = len(levels) - 1
			}
			fmt.Fprintf(w, "%c", levels[idx])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%s — density over it-N (left→right: increasing N)\n", s.Title)
	line("NXDOMAIN", func(p RCodePoint) float64 { return p.NXDOMAIN })
	line("AD+NXDOMAIN", func(p RCodePoint) float64 { return p.ADNXDOMAIN })
	line("SERVFAIL", func(p RCodePoint) float64 { return p.SERVFAIL })
}
