package resolver

import (
	"context"
	"net/netip"

	"repro/internal/dnswire"
)

// This file implements RFC 9156 QNAME minimization: instead of sending
// the full query name to every server on the delegation path, the
// resolver exposes one additional label per step, probing with NS
// queries until the full name (and real type) is reached.
//
// Minimization composes cleanly with DNSSEC validation: an NXDOMAIN
// received for a minimized ancestor m of qname carries a closest-
// encloser proof whose covered next-closer name is m itself — which is
// exactly qname's next closer below the same encloser, so
// nsec3.VerifyNXDOMAIN(qname) accepts the proof unchanged.

// iterateMinimized is the RFC 9156 variant of iterate.
func (r *Resolver) iterateMinimized(ctx context.Context, qname dnswire.Name, qtype dnswire.Type, depth int) (*authResponse, error) {
	if depth > maxDepth {
		return nil, ErrLoop
	}
	servers := append([]netip.AddrPort(nil), r.cfg.Roots...)
	zoneApex := dnswire.Root
	labels := qname.Labels()
	// known is the longest prefix name confirmed to exist (or be
	// delegated); the next probe exposes one more label than it.
	knownLabels := 0
	for hop := 0; hop < 2*maxReferrals; hop++ {
		var cur dnswire.Name
		var curType dnswire.Type
		if knownLabels+1 >= len(labels) {
			cur, curType = qname, qtype
		} else {
			var err error
			cur, err = dnswire.FromLabels(labels[len(labels)-knownLabels-1:]...)
			if err != nil {
				return nil, err
			}
			curType = dnswire.TypeNS
		}
		msg, err := r.queryAny(ctx, servers, cur, curType)
		if err != nil {
			return nil, err
		}
		if isReferral(msg) {
			cut, next, err := r.followReferral(ctx, msg, zoneApex, depth)
			if err != nil {
				return nil, err
			}
			zoneApex = cut
			servers = next
			if cut.CountLabels() > knownLabels {
				knownLabels = cut.CountLabels()
			}
			continue
		}
		// An NXDOMAIN for a minimized ancestor denies the whole
		// subtree (RFC 8020); return it as the final answer.
		if msg.Header.RCode == dnswire.RCodeNXDomain {
			return &authResponse{msg: msg, apex: zoneApex}, nil
		}
		if cur == qname {
			return &authResponse{msg: msg, apex: zoneApex}, nil
		}
		// The minimized name exists (NOERROR/NODATA or some data):
		// expose one more label against the same servers.
		knownLabels++
	}
	return nil, ErrLoop
}
