package resolver

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/dnswire"
)

func TestAggressiveNSEC3Synthesis(t *testing.T) {
	h := buildWorld(t)
	counter := &countingExchanger{inner: h.Net}
	p := compliantPolicy()
	p.AggressiveNSEC = true
	r := New(Config{
		Roots: h.Roots, TrustAnchor: h.TrustAnchor,
		Exchanger: counter, Policy: p,
		Now: func() uint32 { return tNow },
	})
	ctx := context.Background()
	// Prime the cache until the it-1 zone's complete 3-record chain
	// (apex, www, wildcard) has been learned: each NXDOMAIN response
	// carries the records its particular proof needs, so a few
	// distinct probes are required to harvest every span.
	zoneApex := dnswire.MustParseName("it-1.rfc9276-in-the-wild.com")
	for i := 0; i < 32; i++ {
		q := dnswire.MustParseName(fmt.Sprintf("agg-prime-%d.www.it-1.rfc9276-in-the-wild.com", i))
		res, err := r.Resolve(ctx, q, dnswire.TypeA)
		if err != nil || res.RCode != dnswire.RCodeNXDomain || !res.AD {
			t.Fatalf("prime %d: %v %+v", i, err, res)
		}
		r.aggressive.mu.Lock()
		n := len(r.aggressive.zones[zoneApex].records)
		r.aggressive.mu.Unlock()
		if n == 3 {
			break
		}
	}
	warm := counter.count
	// Any further non-existent name in the zone must synthesize from
	// cache: no upstream queries at all.
	q2 := dnswire.MustParseName("agg-two.www.it-1.rfc9276-in-the-wild.com")
	res, err := r.Resolve(ctx, q2, dnswire.TypeA)
	if err != nil || res.RCode != dnswire.RCodeNXDomain || !res.AD {
		t.Fatalf("synthesized: %v %+v", err, res)
	}
	if counter.count != warm {
		t.Fatalf("aggressive cache missed: %d new upstream queries", counter.count-warm)
	}
	if res.Status != StatusSecure {
		t.Fatalf("synthesized status %s", res.Status)
	}
}

func TestAggressiveNSEC3DisabledByDefault(t *testing.T) {
	h := buildWorld(t)
	counter := &countingExchanger{inner: h.Net}
	r := New(Config{
		Roots: h.Roots, TrustAnchor: h.TrustAnchor,
		Exchanger: counter, Policy: compliantPolicy(),
		Now: func() uint32 { return tNow },
	})
	ctx := context.Background()
	resolveA(t, r, "agg-a.www.it-1.rfc9276-in-the-wild.com")
	warm := counter.count
	_, err := r.Resolve(ctx, dnswire.MustParseName("agg-b.www.it-1.rfc9276-in-the-wild.com"), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if counter.count == warm {
		t.Fatal("upstream queries skipped without AggressiveNSEC")
	}
}

func TestAggressiveNSEC3DoesNotSynthesizeExistingNames(t *testing.T) {
	h := buildWorld(t)
	p := compliantPolicy()
	p.AggressiveNSEC = true
	r := newTestResolver(t, h, p)
	ctx := context.Background()
	// Prime with an NXDOMAIN from the it-1 zone.
	if _, err := r.Resolve(ctx, dnswire.MustParseName("zzz.www.it-1.rfc9276-in-the-wild.com"), dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	// www.it-1… exists; the cache must not deny it.
	res, err := r.Resolve(ctx, dnswire.MustParseName("www.it-1.rfc9276-in-the-wild.com"), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != dnswire.RCodeNoError || len(res.Answers) == 0 {
		t.Fatalf("existing name denied: %+v", res)
	}
}

func TestAggressiveNSEC3RespectsCD(t *testing.T) {
	h := buildWorld(t)
	p := compliantPolicy()
	p.AggressiveNSEC = true
	r := newTestResolver(t, h, p)
	ctx := context.Background()
	if _, err := r.Resolve(ctx, dnswire.MustParseName("cda.www.it-1.rfc9276-in-the-wild.com"), dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	// CD queries bypass synthesis (they must see upstream data).
	res, err := r.ResolveCD(ctx, dnswire.MustParseName("cdb.www.it-1.rfc9276-in-the-wild.com"), dnswire.TypeA, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.AD {
		t.Fatal("CD response claims AD")
	}
}

func TestAggressiveCacheScopedToZoneParams(t *testing.T) {
	// Spans learned from it-1 must not prove names in it-2 (different
	// zone apex), even though both chains cover the whole hash space.
	h := buildWorld(t)
	counter := &countingExchanger{inner: h.Net}
	p := compliantPolicy()
	p.AggressiveNSEC = true
	r := New(Config{
		Roots: h.Roots, TrustAnchor: h.TrustAnchor,
		Exchanger: counter, Policy: p,
		Now: func() uint32 { return tNow },
	})
	ctx := context.Background()
	if _, err := r.Resolve(ctx, dnswire.MustParseName("x.www.it-1.rfc9276-in-the-wild.com"), dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	warm := counter.count
	res, err := r.Resolve(ctx, dnswire.MustParseName("x.www.it-2.rfc9276-in-the-wild.com"), dnswire.TypeA)
	if err != nil || res.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("it-2: %v %+v", err, res)
	}
	if counter.count == warm {
		t.Fatal("cross-zone synthesis happened")
	}
}

func TestAggressiveCacheExpiry(t *testing.T) {
	h := buildWorld(t)
	now := uint32(tNow)
	p := compliantPolicy()
	p.AggressiveNSEC = true
	counter := &countingExchanger{inner: h.Net}
	r := New(Config{
		Roots: h.Roots, TrustAnchor: h.TrustAnchor,
		Exchanger: counter, Policy: p,
		Now: func() uint32 { return now },
	})
	ctx := context.Background()
	if _, err := r.Resolve(ctx, dnswire.MustParseName("exp-a.www.it-1.rfc9276-in-the-wild.com"), dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	// Jump far past every TTL: both message cache and aggressive cache
	// must expire, forcing a fresh resolution.
	now += 1 << 20
	warm := counter.count
	if _, err := r.Resolve(ctx, dnswire.MustParseName("exp-b.www.it-1.rfc9276-in-the-wild.com"), dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if counter.count == warm {
		t.Fatal("expired spans still used for synthesis")
	}
}

func TestAggressiveHonorsNoNegativeAD(t *testing.T) {
	h := buildWorld(t)
	p := compliantPolicy()
	p.AggressiveNSEC = true
	p.NoNegativeAD = true
	r := newTestResolver(t, h, p)
	ctx := context.Background()
	if _, err := r.Resolve(ctx, dnswire.MustParseName("na-a.www.it-1.rfc9276-in-the-wild.com"), dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	res, err := r.Resolve(ctx, dnswire.MustParseName("na-b.www.it-1.rfc9276-in-the-wild.com"), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.AD {
		t.Fatal("synthesized answer set AD despite NoNegativeAD")
	}
}
