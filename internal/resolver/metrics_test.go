package resolver

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/dnswire"
	"repro/internal/obs"
)

func TestNSEC3HashWorkModel(t *testing.T) {
	q := dnswire.MustParseName("a.b.example.com")
	apex := dnswire.MustParseName("example.com")
	// Two candidate labels below the apex, plus next closer and
	// wildcard → 4 hashed names, each 1+iterations applications.
	if got := nsec3HashWork(q, apex, 0); got != 4 {
		t.Errorf("0 iterations: work %d, want 4", got)
	}
	if got := nsec3HashWork(q, apex, 150); got != 4*151 {
		t.Errorf("150 iterations: work %d, want %d", got, 4*151)
	}
	// Degenerate inputs still charge at least one hashed name.
	if got := nsec3HashWork(apex, apex, 10); got != 3*11 {
		t.Errorf("apex query: work %d, want %d", got, 3*11)
	}
}

// TestResolverMetrics exercises a validating resolver with aggressive
// caching against the testbed and checks the counters: upstream
// queries match the transport's view, iterated-hash work accrues on
// every verified denial, and cache consults split into hits and
// misses.
func TestResolverMetrics(t *testing.T) {
	h := buildWorld(t)
	counter := &countingExchanger{inner: h.Net}
	reg := obs.NewRegistry()
	p := compliantPolicy()
	p.AggressiveNSEC = true
	r := New(Config{
		Roots: h.Roots, TrustAnchor: h.TrustAnchor,
		Exchanger: counter, Policy: p,
		Now: func() uint32 { return tNow },
		Obs: reg,
	})
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		q := dnswire.MustParseName(fmt.Sprintf("met-%d.www.it-1.rfc9276-in-the-wild.com", i))
		if res, err := r.Resolve(ctx, q, dnswire.TypeA); err != nil || res.RCode != dnswire.RCodeNXDomain {
			t.Fatalf("probe %d: %v %+v", i, err, res)
		}
	}

	upstream := reg.Counter("resolver_upstream_queries_total", "").Value()
	if upstream != uint64(counter.count) {
		t.Errorf("resolver_upstream_queries_total %d, transport saw %d", upstream, counter.count)
	}
	if upstream == 0 {
		t.Error("no upstream queries counted")
	}
	if v := reg.Counter("resolver_nsec3_hash_work_total", "").Value(); v == 0 {
		t.Error("no NSEC3 hash work counted despite validated denials")
	}
	hits := reg.Counter("resolver_aggressive_hits_total", "").Value()
	misses := reg.Counter("resolver_aggressive_misses_total", "").Value()
	if misses == 0 {
		t.Error("aggressive cache never consulted (no misses while priming)")
	}
	if hits == 0 {
		// The priming loop reuses proven spans, so at least one later
		// probe must synthesize from cache.
		t.Error("aggressive cache never hit despite repeated NXDOMAIN probes")
	}
}
