package resolver

import (
	"context"
	"errors"
	"fmt"
	"net/netip"

	"repro/internal/dnswire"
)

// Iteration limits.
const (
	maxReferrals = 32
	maxDepth     = 12
	maxCNAME     = 8
)

// Errors from iteration.
var (
	ErrNoServers = errors.New("resolver: no reachable name servers")
	ErrLoop      = errors.New("resolver: resolution depth exceeded")
	ErrLame      = errors.New("resolver: lame delegation")
)

// authResponse is the raw outcome of iterating to the authoritative
// zone for a query.
type authResponse struct {
	msg  *dnswire.Message
	apex dnswire.Name // deepest delegation followed (zone context)
}

// iterate walks the delegation tree from the roots to the zone
// authoritative for qname and returns its response.
func (r *Resolver) iterate(ctx context.Context, qname dnswire.Name, qtype dnswire.Type, depth int) (*authResponse, error) {
	if depth > maxDepth {
		return nil, ErrLoop
	}
	// DS queries keep the full-name walk: they are answered by the
	// parent, which a minimized NS probe would skip past.
	if r.cfg.Policy.QNameMinimization && qtype != dnswire.TypeDS {
		return r.iterateMinimized(ctx, qname, qtype, depth)
	}
	servers := append([]netip.AddrPort(nil), r.cfg.Roots...)
	apex := dnswire.Root
	for hop := 0; hop < maxReferrals; hop++ {
		msg, err := r.queryAny(ctx, servers, qname, qtype)
		if err != nil {
			return nil, err
		}
		if msg.Header.RCode != dnswire.RCodeNoError && msg.Header.RCode != dnswire.RCodeNXDomain {
			return nil, fmt.Errorf("%w: %s from zone %s", ErrLame, msg.Header.RCode, apex)
		}
		if isReferral(msg) {
			cut, nextServers, err := r.followReferral(ctx, msg, apex, depth)
			if err != nil {
				return nil, err
			}
			apex = cut
			servers = nextServers
			continue
		}
		return &authResponse{msg: msg, apex: apex}, nil
	}
	return nil, ErrLoop
}

// isReferral reports whether msg is a delegation: non-authoritative,
// empty answer, NS records in authority.
func isReferral(msg *dnswire.Message) bool {
	if msg.Header.Authoritative || len(msg.Answers) > 0 {
		return false
	}
	for _, rr := range msg.Authority {
		if rr.Type() == dnswire.TypeNS {
			return true
		}
	}
	return false
}

// followReferral extracts the cut and next server addresses, resolving
// glue-less NS hosts recursively.
func (r *Resolver) followReferral(ctx context.Context, msg *dnswire.Message, parent dnswire.Name, depth int) (dnswire.Name, []netip.AddrPort, error) {
	var cut dnswire.Name
	var hosts []dnswire.Name
	for _, rr := range msg.Authority {
		if ns, ok := rr.Data.(dnswire.NS); ok {
			cut = rr.Name
			hosts = append(hosts, ns.Host)
		}
	}
	if cut == "" {
		return "", nil, ErrLame
	}
	if !cut.IsSubdomainOf(parent) || cut == parent {
		return "", nil, fmt.Errorf("%w: referral %s not below %s", ErrLame, cut, parent)
	}
	var addrs []netip.AddrPort
	for _, rr := range msg.Additional {
		switch d := rr.Data.(type) {
		case dnswire.A:
			addrs = append(addrs, netip.AddrPortFrom(d.Addr, 53))
		case dnswire.AAAA:
			addrs = append(addrs, netip.AddrPortFrom(d.Addr, 53))
		}
	}
	if len(addrs) == 0 {
		// No glue: resolve the NS hosts ourselves.
		for _, h := range hosts {
			res, _, err := r.resolveUncached(ctx, h, dnswire.TypeA, depth+1, false)
			if err != nil {
				continue
			}
			for _, rr := range res.Answers {
				if a, ok := rr.Data.(dnswire.A); ok {
					addrs = append(addrs, netip.AddrPortFrom(a.Addr, 53))
				}
			}
			if len(addrs) > 0 {
				break
			}
		}
	}
	if len(addrs) == 0 {
		return "", nil, fmt.Errorf("%w: no addresses for %s NS", ErrNoServers, cut)
	}
	return cut, addrs, nil
}

// queryAny tries servers in order until one responds.
func (r *Resolver) queryAny(ctx context.Context, servers []netip.AddrPort, qname dnswire.Name, qtype dnswire.Type) (*dnswire.Message, error) {
	if len(servers) == 0 {
		return nil, ErrNoServers
	}
	dnssecOK := r.validating()
	var lastErr error
	for i, s := range servers {
		q := dnswire.NewQuery(uint16(0x8000|i<<8)^uint16(qnameHash(qname)), qname, qtype, dnssecOK)
		q.Header.RecursionDesired = false
		resp, err := r.exchange(ctx, s, q)
		if err != nil {
			lastErr = err
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}

// qnameHash derives a deterministic query ID component so simulated
// traces are reproducible.
func qnameHash(n dnswire.Name) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(n); i++ {
		h ^= uint32(n[i])
		h *= 16777619
	}
	return h
}

// validating reports whether the resolver performs DNSSEC validation.
func (r *Resolver) validating() bool {
	return r.cfg.Policy.Validate && len(r.cfg.TrustAnchor) > 0
}

// resolveUncached is the full pipeline for one query: iterate,
// validate, post-process (CNAME chase), and package the client result
// with its cache TTL.
func (r *Resolver) resolveUncached(ctx context.Context, qname dnswire.Name, qtype dnswire.Type, depth int, cd bool) (*Result, uint32, error) {
	if depth > maxDepth {
		return nil, 0, ErrLoop
	}
	// RFC 8198: synthesize the NXDOMAIN from cached validated NSEC3
	// spans when possible, skipping the network entirely.
	if !cd {
		if res, ok := r.tryAggressive(qname); ok {
			return res, 30, nil
		}
	}
	auth, err := r.iterate(ctx, qname, qtype, depth)
	if err != nil {
		// Unreachable/lame: SERVFAIL, cached briefly.
		return r.servfail(false), 30, nil
	}
	msg := auth.msg

	status := StatusIndeterminate
	limitHit := false
	if r.validating() && !cd {
		status, limitHit, err = r.validateResponse(ctx, qname, qtype, msg, auth.apex, depth)
		if err != nil || status == StatusBogus {
			res := r.servfail(limitHit)
			return res, 30, nil
		}
	}

	res := &Result{
		RCode:  msg.Header.RCode,
		Status: status,
		AD:     status == StatusSecure,
	}
	if r.cfg.Policy.NoNegativeAD && (msg.Header.RCode == dnswire.RCodeNXDomain || len(msg.Answers) == 0) {
		// Negative responses never carry AD for this profile: NXDOMAIN
		// and NODATA alike (the statewalk NODATA topologies caught the
		// NODATA half missing).
		res.AD = false
	}
	if status == StatusSecure && msg.Header.RCode == dnswire.RCodeNXDomain {
		r.learnAggressive(msg)
	}
	if limitHit && r.cfg.Policy.EDE != 0 {
		// Item 10: insecure responses caused by the limit carry EDE.
		res.EDE = append(res.EDE, dnswire.EDE{Code: r.cfg.Policy.EDE, Text: r.cfg.Policy.EDEText})
	}
	res.Answers = append(res.Answers, msg.Answers...)
	res.Authority = append(res.Authority, msg.Authority...)

	// CNAME chase: if the answer is an alias and the query wanted
	// something else, continue at the target.
	if cname, ok := answerCNAME(msg, qname); ok && qtype != dnswire.TypeCNAME && !hasType(msg.Answers, qname, qtype) {
		if depth >= maxCNAME {
			return r.servfail(false), 30, nil
		}
		chained, _, err := r.resolveUncached(ctx, cname, qtype, depth+1, cd)
		if err != nil {
			return r.servfail(false), 30, nil
		}
		res.RCode = chained.RCode
		res.Answers = append(res.Answers, chained.Answers...)
		res.Authority = chained.Authority
		if chained.Status == StatusBogus || chained.RCode == dnswire.RCodeServFail {
			// The alias owner cannot mask why the target failed: keep
			// the chained EDE (e.g. the iteration-limit code when the
			// target zone's denial exceeded ServfailLimit).
			sf := r.servfail(false)
			sf.EDE = append(sf.EDE, chained.EDE...)
			return sf, 30, nil
		}
		// The chain is only as secure as its weakest link.
		if chained.Status != StatusSecure {
			res.Status = chained.Status
			res.AD = false
		}
		// Re-apply the negative-AD policy to the post-chase RCODE: an
		// alias chain ending in NXDOMAIN is a negative answer even
		// though the first hop was positive.
		if r.cfg.Policy.NoNegativeAD && res.RCode == dnswire.RCodeNXDomain {
			res.AD = false
		}
		res.EDE = append(res.EDE, chained.EDE...)
	}

	return res, r.ttlFor(msg), nil
}

func answerCNAME(msg *dnswire.Message, qname dnswire.Name) (dnswire.Name, bool) {
	for _, rr := range msg.Answers {
		if rr.Name == qname {
			if c, ok := rr.Data.(dnswire.CNAME); ok {
				return c.Target, true
			}
		}
	}
	return "", false
}

func hasType(rrs []dnswire.RR, owner dnswire.Name, t dnswire.Type) bool {
	for _, rr := range rrs {
		if rr.Name == owner && rr.Type() == t {
			return true
		}
	}
	return false
}

// ttlFor derives the cache TTL for a response: minimum answer TTL, or
// the SOA minimum for negatives, floored at 1 and capped at a day.
func (r *Resolver) ttlFor(msg *dnswire.Message) uint32 {
	var ttl uint32 = 86400
	found := false
	for _, rr := range msg.Answers {
		if rr.TTL < ttl {
			ttl = rr.TTL
		}
		found = true
	}
	if !found {
		for _, rr := range msg.Authority {
			if soa, ok := rr.Data.(dnswire.SOA); ok {
				ttl = min(rr.TTL, soa.Minimum)
				found = true
			}
		}
	}
	if !found || ttl == 0 {
		return 1
	}
	return ttl
}
