package resolver

import (
	"context"
	"testing"

	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/nsec3"
	"repro/internal/testbed"
	"repro/internal/zone"
)

// buildCNAMEWorld stands up root + an "alias.test" zone holding a CNAME
// into "target.test", which signs NSEC3 at iters iterations — the
// statewalk cname-chain topology reduced to a regression fixture.
func buildCNAMEWorld(t testing.TB, iters uint16) *testbed.Hierarchy {
	t.Helper()
	b := testbed.NewBuilder(tInception, tExpiration)
	b.AddZone(testbed.ZoneSpec{
		Apex:   dnswire.Root,
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC},
		Server: netsim.Addr4(198, 41, 0, 4),
	})
	b.AddZone(testbed.ZoneSpec{
		Apex:   dnswire.MustParseName("test"),
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC3},
		Server: netsim.Addr4(192, 5, 6, 53),
	})
	leaf := netsim.Addr4(203, 0, 113, 99)
	b.AddZone(testbed.ZoneSpec{
		Apex: dnswire.MustParseName("alias.test"), Server: leaf,
		Sign: zone.SignConfig{Denial: zone.DenialNSEC3},
		Populate: func(z *zone.Zone) {
			z.MustAdd(dnswire.RR{Name: z.Apex.MustChild("www"), Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.CNAME{Target: dnswire.MustParseName("gone.www.target.test")}})
		},
	})
	b.AddZone(testbed.ZoneSpec{
		Apex: dnswire.MustParseName("target.test"), Server: leaf,
		Sign: zone.SignConfig{Denial: zone.DenialNSEC3, NSEC3: nsec3.Params{Iterations: iters}},
		Populate: func(z *zone.Zone) {
			z.MustAdd(dnswire.RR{Name: z.Apex.MustChild("www"), Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.A{Addr: leaf.Addr()}})
		},
	})
	h, err := b.Build(netsim.NewNetwork(1))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestCNAMEChaseServfailKeepsChainedEDE: when the chase target's denial
// exceeds the ServfailLimit, the SERVFAIL returned for the alias owner
// must still carry the iteration-limit EDE the target produced (found
// by statewalk's cname-chain × servfail-profile cells: the chase used
// to return a bare SERVFAIL, dropping the EDE).
func TestCNAMEChaseServfailKeepsChainedEDE(t *testing.T) {
	h := buildCNAMEWorld(t, 151)
	p := Policy{
		Name: "test-servfail", Validate: true,
		InsecureLimit: NoLimit, ServfailLimit: 150,
		VerifyInsecureNSEC3: true,
		EDE:                 dnswire.EDEUnsupportedNSEC3Iter,
	}
	res := resolveA(t, newTestResolver(t, h, p), "www.alias.test")
	if res.RCode != dnswire.RCodeServFail {
		t.Fatalf("rcode=%s, want SERVFAIL", res.RCode)
	}
	if len(res.EDE) == 0 || res.EDE[0].Code != dnswire.EDEUnsupportedNSEC3Iter {
		t.Fatalf("EDE=%v, want the chained unsupported-iterations code", res.EDE)
	}
}

// TestCNAMEChaseNXDOMAINRespectsNoNegativeAD: an alias chain ending in
// NXDOMAIN is a negative answer, so a NoNegativeAD profile must strip
// AD even though the first hop was a positive CNAME (found by
// statewalk: the strip only consulted the pre-chase RCODE).
func TestCNAMEChaseNXDOMAINRespectsNoNegativeAD(t *testing.T) {
	h := buildCNAMEWorld(t, 0)
	p := compliantPolicy()
	p.NoNegativeAD = true
	res := resolveA(t, newTestResolver(t, h, p), "www.alias.test")
	if res.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode=%s, want NXDOMAIN", res.RCode)
	}
	if res.AD {
		t.Fatal("AD set on a post-chase NXDOMAIN under NoNegativeAD")
	}
	// The same chain keeps AD when the profile doesn't strip it.
	res = resolveA(t, newTestResolver(t, h, compliantPolicy()), "www.alias.test")
	if res.RCode != dnswire.RCodeNXDomain || !res.AD {
		t.Fatalf("control: rcode=%s ad=%v, want authenticated NXDOMAIN", res.RCode, res.AD)
	}
}

// TestNodataRespectsNoNegativeAD: Policy.NoNegativeAD documents
// "negative responses", which includes NODATA, not just NXDOMAIN (found
// by statewalk's nodata × ad-stripping-forwarder cells).
func TestNodataRespectsNoNegativeAD(t *testing.T) {
	h := buildCNAMEWorld(t, 0)
	p := compliantPolicy()
	p.NoNegativeAD = true
	r := newTestResolver(t, h, p)
	res, err := r.Resolve(context.Background(), dnswire.MustParseName("www.target.test"), dnswire.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != dnswire.RCodeNoError || len(res.Answers) != 0 {
		t.Fatalf("rcode=%s answers=%d, want NODATA", res.RCode, len(res.Answers))
	}
	if res.AD {
		t.Fatal("AD set on NODATA under NoNegativeAD")
	}
	// Control: the validated NODATA keeps AD without the policy.
	res, err = newTestResolver(t, h, compliantPolicy()).Resolve(
		context.Background(), dnswire.MustParseName("www.target.test"), dnswire.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AD {
		t.Fatal("control: validated NODATA lost AD")
	}
}
