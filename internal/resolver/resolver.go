// Package resolver implements a DNSSEC-validating recursive resolver:
// iterative resolution from a configured root, full chain-of-trust
// validation (DS → DNSKEY → RRSIG), NSEC3 denial-of-existence
// verification, caching, and — the paper's subject — a pluggable policy
// for NSEC3 iteration limits covering RFC 9276 Items 6–12.
//
// Policy profiles in this package model the behaviours the paper
// measured in the wild: BIND/Knot/PowerDNS with the 2021 limit of 150,
// the CVE-2023-50868 patches at 50, Google Public DNS at 100 (EDE 5),
// Cloudflare and OpenDNS SERVFAILing above 150, Technitium SERVFAILing
// above 100 with EDE 27, strict-zero boxes, and broken three-phase
// resolvers violating Item 12.
package resolver

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// SecurityStatus is the RFC 4035 §4.3 classification of a response.
type SecurityStatus int

// Security statuses.
const (
	StatusIndeterminate SecurityStatus = iota
	StatusSecure
	StatusInsecure
	StatusBogus
)

// String returns the status name.
func (s SecurityStatus) String() string {
	switch s {
	case StatusSecure:
		return "SECURE"
	case StatusInsecure:
		return "INSECURE"
	case StatusBogus:
		return "BOGUS"
	}
	return "INDETERMINATE"
}

// NoLimit disables an iteration limit.
const NoLimit = -1

// Policy configures how the resolver treats NSEC3 iteration counts and
// what it reports to clients — the knobs RFC 9276 Items 6–12 describe.
type Policy struct {
	// Name labels the profile in experiment output.
	Name string
	// Validate enables DNSSEC validation; non-validating resolvers
	// never set AD and never SERVFAIL on bogus data.
	Validate bool
	// InsecureLimit implements Item 6: NSEC3 iteration counts strictly
	// above it make the zone's denial insecure (NXDOMAIN without AD).
	// NoLimit disables.
	InsecureLimit int
	// ServfailLimit implements Item 8: counts strictly above it yield
	// SERVFAIL. NoLimit disables.
	ServfailLimit int
	// VerifyInsecureNSEC3 implements Item 7: verify the RRSIGs over
	// NSEC3 records before trusting their iteration count even when
	// returning an insecure response. The 0.2 % of validators the
	// paper flags as non-compliant have this false.
	VerifyInsecureNSEC3 bool
	// EDE, when non-zero, is attached to insecure/SERVFAIL responses
	// caused by the iteration limit (Item 10). RFC 9276 wants 27;
	// Google returns 5 and OpenDNS 12 instead (§5.2).
	EDE dnswire.EDECode
	// EDEText is the EXTRA-TEXT accompanying EDE (Technitium-style).
	EDEText string
	// EchoRA models the broken forwarders the paper observed: the RA
	// bit is copied from the query instead of being asserted.
	EchoRA bool
	// NoNegativeAD models forwarders and validators that never set the
	// AD bit on negative responses even when the denial validated —
	// the large class of §5.2 validators with no observable Item 6
	// transition (they pass the valid/expired test but answer every
	// it-N probe with a plain NXDOMAIN).
	NoNegativeAD bool
	// AggressiveNSEC enables RFC 8198 aggressive use of the
	// DNSSEC-validated cache: NXDOMAINs are synthesized from cached
	// NSEC3 spans when they prove the queried name absent.
	AggressiveNSEC bool
	// QNameMinimization enables RFC 9156 minimized iteration: each
	// delegation level only sees one more label of the query name.
	// An NXDOMAIN for a minimized ancestor proves the full name
	// absent, and its NSEC3 closest-encloser proof validates for the
	// original qname unchanged.
	QNameMinimization bool
}

// Config assembles a resolver.
type Config struct {
	// Roots are the root name server addresses.
	Roots []netip.AddrPort
	// TrustAnchor is the DS set validating the root DNSKEY. Empty
	// disables validation regardless of Policy.Validate.
	TrustAnchor []dnswire.DS
	// Exchanger is the transport (simulated network or real sockets).
	Exchanger netsim.Exchanger
	// Policy is the NSEC3/validation behaviour profile.
	Policy Policy
	// Now supplies the validation clock (Unix seconds). Nil means
	// wall clock.
	Now func() uint32
	// MaxCacheEntries bounds each internal cache (default 4096).
	MaxCacheEntries int
	// Obs, when set, receives resolver metrics (upstream query count,
	// aggressive-cache hits/misses, NSEC3 hash work). Nil disables
	// instrumentation.
	Obs *obs.Registry
}

// Resolver is a validating recursive resolver. It implements
// netsim.Handler so it can serve clients inside the simulation, and
// exposes Resolve for direct library use.
type Resolver struct {
	cfg Config

	mu        sync.Mutex
	msgCache  map[cacheKey]*cacheEntry
	zoneCache map[dnswire.Name]*zoneTrust

	// aggressive is the RFC 8198 validated-denial cache (nil unless
	// the policy enables it).
	aggressive *aggressiveCache

	// met holds the observability counters (all no-op without
	// Config.Obs).
	met metrics
}

type cacheKey struct {
	name  dnswire.Name
	qtype dnswire.Type
	cd    bool
}

type cacheEntry struct {
	res    *Result
	expiry uint32
}

// zoneTrust caches the validated key state of one zone.
type zoneTrust struct {
	status SecurityStatus
	keys   []dnswire.DNSKEY
	expiry uint32
}

// Result is the outcome of one resolution as presented to a client.
type Result struct {
	RCode     dnswire.RCode
	Status    SecurityStatus
	AD        bool
	Answers   []dnswire.RR
	Authority []dnswire.RR
	EDE       []dnswire.EDE
}

// wallClock is the default Config.Now: serial-arithmetic seconds from
// the system clock, as RFC 4034 §3.1.5 validity checks expect.
//
//repro:nondeterministic default signature-validity clock; deterministic runs inject Config.Now
func wallClock() uint32 { return uint32(time.Now().Unix()) }

// New creates a resolver from cfg.
func New(cfg Config) *Resolver {
	if cfg.Now == nil {
		cfg.Now = wallClock
	}
	if cfg.MaxCacheEntries == 0 {
		cfg.MaxCacheEntries = 4096
	}
	r := &Resolver{
		cfg:       cfg,
		msgCache:  make(map[cacheKey]*cacheEntry),
		zoneCache: make(map[dnswire.Name]*zoneTrust),
		met:       newMetrics(cfg.Obs),
	}
	if cfg.Policy.AggressiveNSEC {
		r.aggressive = newAggressiveCache()
	}
	return r
}

// Policy returns the resolver's policy profile.
func (r *Resolver) Policy() Policy { return r.cfg.Policy }

// Resolve answers (qname, qtype) for a client, consulting the cache.
func (r *Resolver) Resolve(ctx context.Context, qname dnswire.Name, qtype dnswire.Type) (*Result, error) {
	return r.ResolveCD(ctx, qname, qtype, false)
}

// ResolveCD is Resolve with an explicit Checking Disabled flag: when cd
// is true, DNSSEC validation is skipped and the upstream data returned
// as-is (RFC 4035 §3.2.2) — how measurement scanners retrieve records
// from zones a validator would reject.
func (r *Resolver) ResolveCD(ctx context.Context, qname dnswire.Name, qtype dnswire.Type, cd bool) (*Result, error) {
	now := r.cfg.Now()
	key := cacheKey{qname, qtype, cd}
	r.mu.Lock()
	if e, ok := r.msgCache[key]; ok && serialLTE(now, e.expiry) {
		res := e.res
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()

	res, ttl, err := r.resolveUncached(ctx, qname, qtype, 0, cd)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if len(r.msgCache) >= r.cfg.MaxCacheEntries {
		r.msgCache = make(map[cacheKey]*cacheEntry) // simple full flush
	}
	r.msgCache[key] = &cacheEntry{res: res, expiry: now + ttl}
	r.mu.Unlock()
	return res, nil
}

// servfail builds a SERVFAIL result, attaching the policy EDE when the
// failure was caused by the iteration limit (limitHit).
func (r *Resolver) servfail(limitHit bool) *Result {
	res := &Result{RCode: dnswire.RCodeServFail, Status: StatusBogus}
	if limitHit && r.cfg.Policy.EDE != 0 {
		res.EDE = append(res.EDE, dnswire.EDE{Code: r.cfg.Policy.EDE, Text: r.cfg.Policy.EDEText})
	}
	return res
}

// Handle implements netsim.Handler: the resolver as a recursive server.
func (r *Resolver) Handle(ctx context.Context, from netip.AddrPort, query *dnswire.Message) *dnswire.Message {
	resp := &dnswire.Message{
		Header: dnswire.Header{
			ID:               query.Header.ID,
			Response:         true,
			Opcode:           query.Header.Opcode,
			RecursionDesired: query.Header.RecursionDesired,
		},
		Questions: query.Questions,
	}
	if r.cfg.Policy.EchoRA {
		// Broken boxes copy the query's RA bit (paper §5.2).
		resp.Header.RecursionAvailable = query.Header.RecursionAvailable
	} else {
		resp.Header.RecursionAvailable = true
	}
	var clientDO bool
	if opt, ok := query.OPT(); ok {
		clientDO = opt.DO
	}
	if query.Header.Opcode != dnswire.OpcodeQuery || len(query.Questions) != 1 {
		resp.Header.RCode = dnswire.RCodeNotImp
		return resp
	}
	q := query.Questions[0]
	res, err := r.ResolveCD(ctx, q.Name, q.Type, query.Header.CheckingDisabled)
	if err != nil {
		res = r.servfail(false)
	}
	resp.Header.RCode = res.RCode
	resp.Header.AuthenticatedData = res.AD
	resp.Answers = res.Answers
	resp.Authority = res.Authority
	if _, hasOPT := query.OPT(); hasOPT {
		opt := &dnswire.OPT{UDPSize: dnswire.DefaultUDPSize, DO: clientDO}
		opt.EDEs = append(opt.EDEs, res.EDE...)
		resp.Additional = append(resp.Additional, opt.AsRR())
	}
	if !clientDO {
		// Strip DNSSEC records the client did not ask for.
		resp.Answers = stripDNSSEC(resp.Answers)
		resp.Authority = stripDNSSEC(resp.Authority)
	}
	return resp
}

func stripDNSSEC(rrs []dnswire.RR) []dnswire.RR {
	out := rrs[:0:0]
	for _, rr := range rrs {
		switch rr.Type() {
		case dnswire.TypeRRSIG, dnswire.TypeNSEC, dnswire.TypeNSEC3:
			continue
		}
		out = append(out, rr)
	}
	return out
}

// serialLTE is RFC 1982 serial comparison, shared with dnssec.
func serialLTE(a, b uint32) bool { return int32(b-a) >= 0 }

// exchange sends query to server with small retries.
func (r *Resolver) exchange(ctx context.Context, server netip.AddrPort, q *dnswire.Message) (*dnswire.Message, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		r.met.upstream.Inc()
		resp, err := r.cfg.Exchanger.Exchange(ctx, server, q)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("resolver: exchange with %s: %w", server, lastErr)
}
