package resolver

import (
	"context"
	"net/netip"
	"testing"

	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/nsec3"
	"repro/internal/testbed"
	"repro/internal/zone"
)

// buildMixedWorld adds, next to the rfc9276 testbed, an NSEC-signed
// zone, an unsigned zone, and a CNAME-bearing zone under "com".
func buildMixedWorld(t testing.TB) *testbed.Hierarchy {
	t.Helper()
	b := testbed.NewBuilder(tInception, tExpiration)
	b.AddZone(testbed.ZoneSpec{
		Apex:   dnswire.Root,
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC},
		Server: netsim.Addr4(198, 41, 0, 4),
	})
	b.AddZone(testbed.ZoneSpec{
		Apex:   dnswire.MustParseName("com"),
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC3, OptOut: true},
		Server: netsim.Addr4(192, 5, 6, 30),
	})
	b.AddZone(testbed.ZoneSpec{
		Apex: dnswire.MustParseName("nsec-zone.com"),
		Populate: func(z *zone.Zone) {
			z.MustAdd(dnswire.RR{Name: z.Apex.MustChild("www"), Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.21")}})
		},
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC},
		Server: netsim.Addr4(203, 0, 113, 21),
	})
	b.AddZone(testbed.ZoneSpec{
		Apex: dnswire.MustParseName("unsigned.com"),
		Populate: func(z *zone.Zone) {
			z.MustAdd(dnswire.RR{Name: z.Apex.MustChild("www"), Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.22")}})
		},
		Unsigned: true,
		Server:   netsim.Addr4(203, 0, 113, 22),
	})
	b.AddZone(testbed.ZoneSpec{
		Apex: dnswire.MustParseName("alias.com"),
		Populate: func(z *zone.Zone) {
			z.MustAdd(dnswire.RR{Name: z.Apex.MustChild("cn"), Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.CNAME{Target: dnswire.MustParseName("www.nsec-zone.com")}})
			z.MustAdd(dnswire.RR{Name: z.Apex.MustChild("loop"), Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.CNAME{Target: dnswire.MustParseName("loop.alias.com")}})
		},
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC3, NSEC3: nsec3.Params{Iterations: 2}},
		Server: netsim.Addr4(203, 0, 113, 23),
	})
	testbed.InstallTestbed(b, netsim.Addr4(203, 0, 113, 10), netsim.Addr6(0x10))
	h, err := b.Build(netsim.NewNetwork(13))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestResolveNSECZoneSecure(t *testing.T) {
	h := buildMixedWorld(t)
	r := newTestResolver(t, h, compliantPolicy())
	// Positive.
	res := resolveA(t, r, "www.nsec-zone.com")
	if res.RCode != dnswire.RCodeNoError || !res.AD {
		t.Fatalf("positive: rcode=%s ad=%v status=%s", res.RCode, res.AD, res.Status)
	}
	// Negative, proven by NSEC.
	res = resolveA(t, r, "missing.nsec-zone.com")
	if res.RCode != dnswire.RCodeNXDomain || !res.AD {
		t.Fatalf("negative: rcode=%s ad=%v status=%s", res.RCode, res.AD, res.Status)
	}
}

func TestResolveUnsignedZoneInsecure(t *testing.T) {
	h := buildMixedWorld(t)
	r := newTestResolver(t, h, compliantPolicy())
	res := resolveA(t, r, "www.unsigned.com")
	if res.RCode != dnswire.RCodeNoError || res.AD {
		t.Fatalf("rcode=%s ad=%v", res.RCode, res.AD)
	}
	if res.Status != StatusInsecure {
		t.Fatalf("status=%s, want INSECURE (no DS at delegation)", res.Status)
	}
	// Negative answers from unsigned zones are insecure NXDOMAINs.
	res = resolveA(t, r, "nothing.unsigned.com")
	if res.RCode != dnswire.RCodeNXDomain || res.AD {
		t.Fatalf("negative: rcode=%s ad=%v", res.RCode, res.AD)
	}
}

func TestResolveCNAMEChase(t *testing.T) {
	h := buildMixedWorld(t)
	r := newTestResolver(t, h, compliantPolicy())
	res := resolveA(t, r, "cn.alias.com")
	if res.RCode != dnswire.RCodeNoError {
		t.Fatalf("rcode=%s", res.RCode)
	}
	var sawCNAME, sawA bool
	for _, rr := range res.Answers {
		switch rr.Data.(type) {
		case dnswire.CNAME:
			sawCNAME = true
		case dnswire.A:
			sawA = true
		}
	}
	if !sawCNAME || !sawA {
		t.Fatalf("chain incomplete: %v", res.Answers)
	}
	if !res.AD {
		t.Fatalf("secure chain lost AD (status=%s)", res.Status)
	}
}

func TestResolveCNAMELoopServfails(t *testing.T) {
	h := buildMixedWorld(t)
	r := newTestResolver(t, h, compliantPolicy())
	res := resolveA(t, r, "loop.alias.com")
	if res.RCode != dnswire.RCodeServFail {
		t.Fatalf("rcode=%s, want SERVFAIL on CNAME loop", res.RCode)
	}
}

func TestResolveCDBitSkipsValidation(t *testing.T) {
	h := buildMixedWorld(t)
	r := newTestResolver(t, h, compliantPolicy())
	// expired normally SERVFAILs; with CD the raw data flows through.
	qname := dnswire.MustParseName("probe.expired.rfc9276-in-the-wild.com")
	res, err := r.ResolveCD(context.Background(), qname, dnswire.TypeA, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != dnswire.RCodeNoError {
		t.Fatalf("CD query rcode=%s, want NOERROR", res.RCode)
	}
	if res.AD {
		t.Fatal("CD response must not claim AD")
	}
	// Without CD: SERVFAIL, cached independently.
	res2, err := r.Resolve(context.Background(), qname, dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res2.RCode != dnswire.RCodeServFail {
		t.Fatalf("non-CD rcode=%s", res2.RCode)
	}
}

func TestResolveSurvivesPacketLoss(t *testing.T) {
	h := buildMixedWorld(t)
	h.Net.LossRate = 0.15
	r := newTestResolver(t, h, compliantPolicy())
	// With per-exchange retries the resolution should usually succeed;
	// accept occasional SERVFAIL but require a majority of successes.
	ok := 0
	for i := 0; i < 10; i++ {
		res, err := r.Resolve(context.Background(),
			dnswire.MustParseName("www.nsec-zone.com"), dnswire.TypeA)
		if err == nil && res.RCode == dnswire.RCodeNoError {
			ok++
		}
	}
	if ok < 6 {
		t.Fatalf("only %d/10 successes at 15%% loss", ok)
	}
}

func TestResolveUnreachableRootsServfail(t *testing.T) {
	h := buildMixedWorld(t)
	r := New(Config{
		Roots:       []netip.AddrPort{netsim.Addr4(203, 0, 113, 99)},
		TrustAnchor: h.TrustAnchor,
		Exchanger:   h.Net,
		Policy:      compliantPolicy(),
		Now:         func() uint32 { return tNow },
	})
	res, err := r.Resolve(context.Background(), dnswire.MustParseName("www.nsec-zone.com"), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != dnswire.RCodeServFail {
		t.Fatalf("rcode=%s", res.RCode)
	}
}

func TestResolveDSQuery(t *testing.T) {
	h := buildMixedWorld(t)
	r := newTestResolver(t, h, compliantPolicy())
	res, err := r.Resolve(context.Background(), dnswire.MustParseName("nsec-zone.com"), dnswire.TypeDS)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != dnswire.RCodeNoError || !res.AD {
		t.Fatalf("DS query: rcode=%s ad=%v", res.RCode, res.AD)
	}
	var sawDS bool
	for _, rr := range res.Answers {
		if rr.Type() == dnswire.TypeDS {
			sawDS = true
		}
	}
	if !sawDS {
		t.Fatalf("no DS in answers: %v", res.Answers)
	}
}

func TestResolveNoNegativeADPolicy(t *testing.T) {
	h := buildMixedWorld(t)
	p := compliantPolicy()
	p.NoNegativeAD = true
	r := newTestResolver(t, h, p)
	// Positive answers keep AD…
	res := resolveA(t, r, "probe9.valid.rfc9276-in-the-wild.com")
	if !res.AD {
		t.Fatal("positive answer lost AD")
	}
	// …but validated NXDOMAINs are stripped.
	res = resolveA(t, r, "probe9.www.it-5.rfc9276-in-the-wild.com")
	if res.RCode != dnswire.RCodeNXDomain || res.AD {
		t.Fatalf("rcode=%s ad=%v", res.RCode, res.AD)
	}
	// And the zone is still treated as validated internally (expired
	// still SERVFAILs).
	res = resolveA(t, r, "probe9.expired.rfc9276-in-the-wild.com")
	if res.RCode != dnswire.RCodeServFail {
		t.Fatalf("expired rcode=%s", res.RCode)
	}
}

func TestOptOutInsecureDelegationUnderNSEC3Parent(t *testing.T) {
	// unsigned.com hangs off the opt-out NSEC3 "com" zone: the DS
	// denial travels through an opt-out span and the child must come
	// out insecure, not bogus.
	h := buildMixedWorld(t)
	r := newTestResolver(t, h, compliantPolicy())
	res := resolveA(t, r, "www.unsigned.com")
	if res.Status != StatusInsecure {
		t.Fatalf("status=%s", res.Status)
	}
}
