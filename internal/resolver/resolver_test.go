package resolver

import (
	"context"
	"net/netip"
	"testing"

	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/testbed"
	"repro/internal/zone"
)

const (
	tInception  = 1709251200
	tExpiration = 1717200000
	tNow        = 1712000000
)

// buildWorld stands up root + com + the rfc9276 testbed on a simulated
// network and returns the hierarchy.
func buildWorld(t testing.TB) *testbed.Hierarchy {
	t.Helper()
	b := testbed.NewBuilder(tInception, tExpiration)
	b.AddZone(testbed.ZoneSpec{
		Apex:   dnswire.Root,
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC},
		Server: netsim.Addr4(198, 41, 0, 4),
	})
	b.AddZone(testbed.ZoneSpec{
		Apex:   dnswire.MustParseName("com"),
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC3, OptOut: true},
		Server: netsim.Addr4(192, 5, 6, 30),
	})
	testbed.InstallTestbed(b, netsim.Addr4(203, 0, 113, 10), netsim.Addr6(0x10))
	h, err := b.Build(netsim.NewNetwork(1))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func newTestResolver(t testing.TB, h *testbed.Hierarchy, p Policy) *Resolver {
	t.Helper()
	return New(Config{
		Roots:       h.Roots,
		TrustAnchor: h.TrustAnchor,
		Exchanger:   h.Net,
		Policy:      p,
		Now:         func() uint32 { return tNow },
	})
}

// compliantPolicy is a modern RFC 9276-style validator: insecure above
// 150, Item 7 honored.
func compliantPolicy() Policy {
	return Policy{
		Name: "test-compliant", Validate: true,
		InsecureLimit: 150, ServfailLimit: NoLimit,
		VerifyInsecureNSEC3: true,
		EDE:                 dnswire.EDEUnsupportedNSEC3Iter,
	}
}

func resolveA(t testing.TB, r *Resolver, qname string) *Result {
	t.Helper()
	res, err := r.Resolve(context.Background(), dnswire.MustParseName(qname), dnswire.TypeA)
	if err != nil {
		t.Fatalf("resolve %s: %v", qname, err)
	}
	return res
}

func TestResolveValidSubdomainSecure(t *testing.T) {
	h := buildWorld(t)
	r := newTestResolver(t, h, compliantPolicy())
	res := resolveA(t, r, "probe1.valid.rfc9276-in-the-wild.com")
	if res.RCode != dnswire.RCodeNoError || !res.AD {
		t.Fatalf("valid: rcode=%s ad=%v status=%s", res.RCode, res.AD, res.Status)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers for wildcard expansion")
	}
}

func TestResolveExpiredSubdomainServfail(t *testing.T) {
	h := buildWorld(t)
	r := newTestResolver(t, h, compliantPolicy())
	res := resolveA(t, r, "probe1.expired.rfc9276-in-the-wild.com")
	if res.RCode != dnswire.RCodeServFail {
		t.Fatalf("expired: rcode=%s status=%s", res.RCode, res.Status)
	}
}

func TestResolveLowIterationsAuthenticatedNXDOMAIN(t *testing.T) {
	h := buildWorld(t)
	r := newTestResolver(t, h, compliantPolicy())
	for _, sub := range []string{"it-1", "it-5", "it-25", "it-150"} {
		res := resolveA(t, r, "probe1.www."+sub+".rfc9276-in-the-wild.com")
		if res.RCode != dnswire.RCodeNXDomain || !res.AD {
			t.Fatalf("%s: rcode=%s ad=%v status=%s", sub, res.RCode, res.AD, res.Status)
		}
	}
}

func TestResolveHighIterationsInsecureNXDOMAIN(t *testing.T) {
	h := buildWorld(t)
	r := newTestResolver(t, h, compliantPolicy())
	for _, sub := range []string{"it-151", "it-200", "it-500"} {
		res := resolveA(t, r, "probe1.www."+sub+".rfc9276-in-the-wild.com")
		if res.RCode != dnswire.RCodeNXDomain || res.AD {
			t.Fatalf("%s: rcode=%s ad=%v status=%s", sub, res.RCode, res.AD, res.Status)
		}
		if res.Status != StatusInsecure {
			t.Fatalf("%s: status=%s", sub, res.Status)
		}
		// Item 10: EDE 27 attached.
		if len(res.EDE) != 1 || res.EDE[0].Code != dnswire.EDEUnsupportedNSEC3Iter {
			t.Fatalf("%s: EDE=%v", sub, res.EDE)
		}
	}
}

func TestResolveServfailPolicy(t *testing.T) {
	h := buildWorld(t)
	// Cloudflare-style: SERVFAIL above 150, EDE 27.
	p := Policy{
		Name: "cloudflare-style", Validate: true,
		InsecureLimit: NoLimit, ServfailLimit: 150,
		VerifyInsecureNSEC3: true, EDE: dnswire.EDEUnsupportedNSEC3Iter,
	}
	r := newTestResolver(t, h, p)
	res := resolveA(t, r, "probe1.www.it-151.rfc9276-in-the-wild.com")
	if res.RCode != dnswire.RCodeServFail {
		t.Fatalf("it-151: rcode=%s", res.RCode)
	}
	if len(res.EDE) != 1 || res.EDE[0].Code != dnswire.EDEUnsupportedNSEC3Iter {
		t.Fatalf("EDE=%v", res.EDE)
	}
	// At the limit: validated NXDOMAIN.
	res = resolveA(t, r, "probe1.www.it-150.rfc9276-in-the-wild.com")
	if res.RCode != dnswire.RCodeNXDomain || !res.AD {
		t.Fatalf("it-150: rcode=%s ad=%v", res.RCode, res.AD)
	}
}

func TestResolveStrictZeroServfailsFromOne(t *testing.T) {
	h := buildWorld(t)
	p := Policy{
		Name: "strict-zero", Validate: true,
		InsecureLimit: NoLimit, ServfailLimit: 0,
		VerifyInsecureNSEC3: true, EchoRA: true,
	}
	r := newTestResolver(t, h, p)
	if res := resolveA(t, r, "probe1.www.it-1.rfc9276-in-the-wild.com"); res.RCode != dnswire.RCodeServFail {
		t.Fatalf("it-1: rcode=%s", res.RCode)
	}
	// Zero iterations still validates.
	if res := resolveA(t, r, "probe1.valid.rfc9276-in-the-wild.com"); res.RCode != dnswire.RCodeNoError || !res.AD {
		t.Fatalf("valid: rcode=%s ad=%v", res.RCode, res.AD)
	}
}

func TestItem7CompliantVsViolator(t *testing.T) {
	h := buildWorld(t)
	// it-2501-expired: iterations beyond every limit, but the NSEC3
	// RRSIGs are expired. A compliant validator (Item 7) notices and
	// SERVFAILs; a violator returns the insecure NXDOMAIN.
	compliant := newTestResolver(t, h, compliantPolicy())
	res := resolveA(t, compliant, "probe1.www.it-2501-expired.rfc9276-in-the-wild.com")
	if res.RCode != dnswire.RCodeServFail {
		t.Fatalf("compliant: rcode=%s status=%s", res.RCode, res.Status)
	}

	violator := compliantPolicy()
	violator.Name = "item7-violator"
	violator.VerifyInsecureNSEC3 = false
	r2 := newTestResolver(t, h, violator)
	res = resolveA(t, r2, "probe2.www.it-2501-expired.rfc9276-in-the-wild.com")
	if res.RCode != dnswire.RCodeNXDomain || res.AD {
		t.Fatalf("violator: rcode=%s ad=%v", res.RCode, res.AD)
	}
}

func TestThreePhaseItem12Violation(t *testing.T) {
	h := buildWorld(t)
	p := Policy{
		Name: "three-phase", Validate: true,
		InsecureLimit: 100, ServfailLimit: 150,
		VerifyInsecureNSEC3: true,
	}
	r := newTestResolver(t, h, p)
	cases := []struct {
		sub   string
		rcode dnswire.RCode
		ad    bool
	}{
		{"it-100", dnswire.RCodeNXDomain, true},
		{"it-101", dnswire.RCodeNXDomain, false},
		{"it-150", dnswire.RCodeNXDomain, false},
		{"it-151", dnswire.RCodeServFail, false},
	}
	for _, c := range cases {
		res := resolveA(t, r, "p.www."+c.sub+".rfc9276-in-the-wild.com")
		if res.RCode != c.rcode || res.AD != c.ad {
			t.Fatalf("%s: rcode=%s ad=%v (want %s/%v)", c.sub, res.RCode, res.AD, c.rcode, c.ad)
		}
	}
}

func TestNonValidatingResolver(t *testing.T) {
	h := buildWorld(t)
	p := Policy{Name: "non-validating", Validate: false, InsecureLimit: NoLimit, ServfailLimit: NoLimit}
	r := newTestResolver(t, h, p)
	res := resolveA(t, r, "probe1.www.it-500.rfc9276-in-the-wild.com")
	if res.RCode != dnswire.RCodeNXDomain || res.AD {
		t.Fatalf("rcode=%s ad=%v", res.RCode, res.AD)
	}
	res = resolveA(t, r, "probe1.expired.rfc9276-in-the-wild.com")
	if res.RCode != dnswire.RCodeNoError || res.AD {
		t.Fatalf("expired via non-validator: rcode=%s ad=%v", res.RCode, res.AD)
	}
}

func TestResolverCaching(t *testing.T) {
	h := buildWorld(t)
	counter := &countingExchanger{inner: h.Net}
	r := New(Config{
		Roots: h.Roots, TrustAnchor: h.TrustAnchor,
		Exchanger: counter, Policy: compliantPolicy(),
		Now: func() uint32 { return tNow },
	})
	resolveA(t, r, "probe1.valid.rfc9276-in-the-wild.com")
	first := counter.count
	if first == 0 {
		t.Fatal("no upstream queries")
	}
	resolveA(t, r, "probe1.valid.rfc9276-in-the-wild.com")
	if counter.count != first {
		t.Fatalf("cache miss: %d -> %d upstream queries", first, counter.count)
	}
	// A different name under the same zone reuses infrastructure
	// (delegations, keys): far fewer queries than the cold path.
	resolveA(t, r, "probe2.valid.rfc9276-in-the-wild.com")
	warm := counter.count - first
	if warm >= first {
		t.Fatalf("infrastructure cache ineffective: cold=%d warm=%d", first, warm)
	}
}

type countingExchanger struct {
	inner netsim.Exchanger
	count int
}

func (c *countingExchanger) Exchange(ctx context.Context, server netip.AddrPort, q *dnswire.Message) (*dnswire.Message, error) {
	c.count++
	return c.inner.Exchange(ctx, server, q)
}

func TestResolverHandleServesClients(t *testing.T) {
	h := buildWorld(t)
	r := newTestResolver(t, h, compliantPolicy())
	// Register the resolver as a host and query it through the network.
	raddr := netsim.Addr4(10, 53, 53, 53)
	h.Net.Register(raddr, r)
	q := dnswire.NewQuery(7, dnswire.MustParseName("x.valid.rfc9276-in-the-wild.com"), dnswire.TypeA, true)
	resp, err := h.Net.Exchange(context.Background(), raddr, q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeNoError || !resp.Header.AuthenticatedData {
		t.Fatalf("rcode=%s ad=%v", resp.Header.RCode, resp.Header.AuthenticatedData)
	}
	if !resp.Header.RecursionAvailable {
		t.Fatal("RA not set")
	}
	// Without DO, DNSSEC records are stripped and AD can still be set
	// (RFC 4035 allows AD to non-DO clients; we keep it).
	q2 := dnswire.NewQuery(8, dnswire.MustParseName("y.valid.rfc9276-in-the-wild.com"), dnswire.TypeA, false)
	resp2, err := h.Net.Exchange(context.Background(), raddr, q2)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range resp2.Answers {
		if rr.Type() == dnswire.TypeRRSIG {
			t.Fatal("RRSIG leaked to non-DO client")
		}
	}
}

func TestEchoRABehaviour(t *testing.T) {
	h := buildWorld(t)
	p := compliantPolicy()
	p.EchoRA = true
	r := newTestResolver(t, h, p)
	raddr := netsim.Addr4(10, 53, 53, 54)
	h.Net.Register(raddr, r)
	q := dnswire.NewQuery(9, dnswire.MustParseName("z.valid.rfc9276-in-the-wild.com"), dnswire.TypeA, true)
	resp, err := h.Net.Exchange(context.Background(), raddr, q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RecursionAvailable {
		t.Fatal("EchoRA box set RA without it in the query")
	}
}

func TestTestbedProbeTranscript(t *testing.T) {
	h := buildWorld(t)
	r := newTestResolver(t, h, compliantPolicy())
	raddr := netsim.Addr4(10, 53, 53, 55)
	h.Net.Register(raddr, r)
	tr, err := testbed.ProbeResolver(context.Background(), h.Net, raddr, "probe-xyz")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Observations) != 50 { // 49 + it-2501-expired
		t.Fatalf("observations = %d", len(tr.Observations))
	}
	valid, _ := tr.Find("valid")
	if valid.RCode != dnswire.RCodeNoError || !valid.AD {
		t.Fatalf("valid: %+v", valid)
	}
	expired, _ := tr.Find("expired")
	if expired.RCode != dnswire.RCodeServFail {
		t.Fatalf("expired: %+v", expired)
	}
	it150, _ := tr.Find("it-150")
	if it150.RCode != dnswire.RCodeNXDomain || !it150.AD {
		t.Fatalf("it-150: %+v", it150)
	}
	it151, _ := tr.Find("it-151")
	if it151.RCode != dnswire.RCodeNXDomain || it151.AD {
		t.Fatalf("it-151: %+v", it151)
	}
}

func TestSubdomainsCount(t *testing.T) {
	subs := testbed.Subdomains()
	if len(subs) != 50 {
		t.Fatalf("%d subdomains, want 50 (paper's 49 + it-2501-expired)", len(subs))
	}
	seen := map[string]bool{}
	for _, s := range subs {
		if seen[s.Label] {
			t.Fatalf("duplicate %s", s.Label)
		}
		seen[s.Label] = true
	}
	for _, want := range []string{"valid", "expired", "it-1", "it-25", "it-50", "it-500", "it-51", "it-101", "it-151", "it-2501-expired"} {
		if !seen[want] {
			t.Fatalf("missing %s", want)
		}
	}
}
