package resolver

import (
	"bytes"
	"sync"

	"repro/internal/dnswire"
	"repro/internal/nsec3"
)

// This file implements RFC 8198 aggressive use of DNSSEC-validated
// cache for NSEC3: validated NSEC3 records cached from earlier negative
// answers let the resolver synthesize NXDOMAIN responses for other
// names falling in the same hash spans, without asking the
// authoritative server.
//
// It is both a performance feature and a paper-relevant observation:
// synthesis still pays one iterated hash per closest-encloser
// candidate, so a zone with many additional iterations makes even
// cache hits expensive — another face of the cost RFC 9276 Item 2
// eliminates. BenchmarkAblationAggressiveNSEC quantifies the trade.

// aggressiveZone caches the validated denial material of one zone.
type aggressiveZone struct {
	params nsec3.Params
	// records are validated NSEC3 records, unordered (lookups are
	// linear; caches hold few spans per zone in practice).
	records []nsec3.Record
	expiry  uint32
}

// aggressiveCache maps zone apex → cached spans.
type aggressiveCache struct {
	mu    sync.Mutex
	zones map[dnswire.Name]*aggressiveZone
}

func newAggressiveCache() *aggressiveCache {
	return &aggressiveCache{zones: make(map[dnswire.Name]*aggressiveZone)}
}

// store records the validated NSEC3 set of a Secure negative response.
func (c *aggressiveCache) store(apex dnswire.Name, set *nsec3.ResponseSet, now, ttl uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	z, ok := c.zones[apex]
	if !ok || !serialLTE(now, z.expiry) ||
		z.params.Iterations != set.Params.Iterations ||
		!bytes.Equal(z.params.Salt, set.Params.Salt) {
		z = &aggressiveZone{params: set.Params, expiry: now + ttl}
		c.zones[apex] = z
	}
	for _, rec := range set.Records {
		dup := false
		for _, have := range z.records {
			if bytes.Equal(have.OwnerHash, rec.OwnerHash) {
				dup = true
				break
			}
		}
		if !dup {
			z.records = append(z.records, rec)
		}
	}
	if len(z.records) > 512 {
		z.records = z.records[len(z.records)-512:]
	}
}

// synthesize attempts to prove qname's non-existence from cached spans
// of any cached ancestor zone: a matching closest encloser plus covered
// next-closer and wildcard (RFC 8198 §5.1 applied to NSEC3). It
// returns the zone apex for reporting.
func (c *aggressiveCache) synthesize(qname dnswire.Name, now uint32) (dnswire.Name, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for apex := qname.Parent(); ; apex = apex.Parent() {
		if z, ok := c.zones[apex]; ok && serialLTE(now, z.expiry) {
			set := &nsec3.ResponseSet{Zone: apex, Params: z.params, Records: z.records}
			if _, _, err := set.VerifyNXDOMAIN(qname); err == nil {
				return apex, true
			}
		}
		if apex.IsRoot() {
			return "", false
		}
	}
}

// tryAggressive consults the cache before any network activity; on a
// hit it fabricates the Secure NXDOMAIN result.
func (r *Resolver) tryAggressive(qname dnswire.Name) (*Result, bool) {
	if !r.cfg.Policy.AggressiveNSEC || r.aggressive == nil || !r.validating() {
		return nil, false
	}
	if _, ok := r.aggressive.synthesize(qname, r.cfg.Now()); !ok {
		r.met.aggrMisses.Inc()
		return nil, false
	}
	r.met.aggrHits.Inc()
	res := &Result{
		RCode:  dnswire.RCodeNXDomain,
		Status: StatusSecure,
		AD:     !r.cfg.Policy.NoNegativeAD,
	}
	return res, true
}

// learnAggressive feeds a validated Secure negative answer's NSEC3
// records into the cache.
func (r *Resolver) learnAggressive(msg *dnswire.Message) {
	if !r.cfg.Policy.AggressiveNSEC || r.aggressive == nil {
		return
	}
	set, err := nsec3.ExtractResponseSet(msg.Authority)
	if err != nil {
		return
	}
	r.aggressive.store(set.Zone, set, r.cfg.Now(), r.ttlFor(msg))
}
