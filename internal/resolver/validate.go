package resolver

import (
	"context"

	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/nsec3"
)

// This file is the validation engine: chain-of-trust establishment
// (zoneKeys), RRset signature checking, and denial-of-existence
// verification with the NSEC3 iteration policy applied — the code path
// whose behaviour Figure 3 of the paper measures across resolvers.

// validateResponse classifies a response from zone fallbackApex.
// limitHit reports that the NSEC3 iteration policy (not a crypto
// failure) determined the outcome, so the caller can attach EDE.
func (r *Resolver) validateResponse(ctx context.Context, qname dnswire.Name, qtype dnswire.Type, msg *dnswire.Message, fallbackApex dnswire.Name, depth int) (SecurityStatus, bool, error) {
	apex := responseZone(msg, fallbackApex)
	zt, err := r.zoneKeys(ctx, apex, depth)
	if err != nil {
		return StatusBogus, false, nil
	}
	switch zt.status {
	case StatusInsecure:
		return StatusInsecure, false, nil
	case StatusBogus:
		return StatusBogus, false, nil
	}

	if len(msg.Answers) > 0 {
		return r.validatePositive(qname, msg, apex, zt)
	}
	return r.validateNegative(qname, qtype, msg, apex, zt)
}

// responseZone infers the answering zone: the SOA owner for negative
// answers, the RRSIG signer for positive ones, else the iteration apex.
func responseZone(msg *dnswire.Message, fallback dnswire.Name) dnswire.Name {
	for _, rr := range msg.Answers {
		if sig, ok := rr.Data.(dnswire.RRSIG); ok {
			return sig.SignerName
		}
	}
	for _, rr := range msg.Authority {
		if rr.Type() == dnswire.TypeSOA {
			return rr.Name
		}
	}
	return fallback
}

// validatePositive checks every answer RRset signature; wildcard
// expansions additionally need an NSEC3 proof, where the iteration
// policy applies.
func (r *Resolver) validatePositive(qname dnswire.Name, msg *dnswire.Message, apex dnswire.Name, zt *zoneTrust) (SecurityStatus, bool, error) {
	groups := groupRRsets(msg.Answers)
	if len(groups) == 0 {
		return StatusBogus, false, nil
	}
	wildcard := false
	var wildcardLabels int
	for _, g := range groups {
		sigs := g.sigs
		if len(sigs) == 0 {
			return StatusBogus, false, nil
		}
		set, err := dnssec.NewRRset(g.rrs)
		if err != nil {
			return StatusBogus, false, nil
		}
		if !r.verifyAnySig(set, sigs, apex, zt.keys) {
			return StatusBogus, false, nil
		}
		for _, sigRR := range sigs {
			sig := sigRR.Data.(dnswire.RRSIG)
			if int(sig.Labels) < set.Name.CountLabels() {
				wildcard = true
				wildcardLabels = int(sig.Labels)
			}
		}
	}
	if !wildcard {
		return StatusSecure, false, nil
	}
	// Wildcard answer: the NSEC3 (or NSEC) proof that qname itself does
	// not exist must accompany it (RFC 5155 §8.8). The iteration policy
	// applies to this proof.
	set3, err := nsec3.ExtractResponseSet(msg.Authority)
	if err == nil {
		verdict, limitHit := r.applyIterationPolicy(int(set3.Params.Iterations))
		switch verdict {
		case verdictServfail:
			return StatusBogus, true, nil
		case verdictInsecure:
			if r.cfg.Policy.VerifyInsecureNSEC3 && !r.verifyNSEC3Sigs(msg, apex, zt) {
				return StatusBogus, false, nil
			}
			return StatusInsecure, limitHit, nil
		}
		r.countNSEC3Work(qname, set3.Zone, int(set3.Params.Iterations))
		if !r.verifyNSEC3Sigs(msg, apex, zt) {
			return StatusBogus, false, nil
		}
		if err := set3.VerifyWildcardAnswer(qname, wildcardLabels); err != nil {
			return StatusBogus, false, nil
		}
		return StatusSecure, false, nil
	}
	// NSEC fallback.
	if r.verifyNSECDenialOfName(qname, msg, apex, zt) {
		return StatusSecure, false, nil
	}
	return StatusBogus, false, nil
}

// validateNegative checks NXDOMAIN and NODATA responses: the SOA RRSIG
// plus the denial proof, with the NSEC3 iteration policy applied before
// (or after, per Item 7) signature checking.
func (r *Resolver) validateNegative(qname dnswire.Name, qtype dnswire.Type, msg *dnswire.Message, apex dnswire.Name, zt *zoneTrust) (SecurityStatus, bool, error) {
	// The SOA RRset must be signed.
	if !r.verifySection(msg.Authority, dnswire.TypeSOA, apex, zt) {
		return StatusBogus, false, nil
	}

	set3, err := nsec3.ExtractResponseSet(msg.Authority)
	if err != nil {
		// No NSEC3 records: try NSEC, else the zone failed to prove
		// the denial.
		if r.verifyNSECDenialOfName(qname, msg, apex, zt) {
			return StatusSecure, false, nil
		}
		return StatusBogus, false, nil
	}

	verdict, limitHit := r.applyIterationPolicy(int(set3.Params.Iterations))
	switch verdict {
	case verdictServfail:
		// Item 8: SERVFAIL above the limit.
		return StatusBogus, true, nil
	case verdictInsecure:
		// Item 6: insecure above the limit. Item 7: a compliant
		// validator still authenticates the NSEC3 records before
		// trusting their iteration field.
		if r.cfg.Policy.VerifyInsecureNSEC3 && !r.verifyNSEC3Sigs(msg, apex, zt) {
			return StatusBogus, false, nil
		}
		return StatusInsecure, limitHit, nil
	}

	// Within limits: full validation. The denial proof is about to be
	// re-hashed, so charge its iteration cost to the work counter.
	r.countNSEC3Work(qname, set3.Zone, int(set3.Params.Iterations))
	if !r.verifyNSEC3Sigs(msg, apex, zt) {
		return StatusBogus, false, nil
	}
	if msg.Header.RCode == dnswire.RCodeNXDomain {
		if _, _, err := set3.VerifyNXDOMAIN(qname); err != nil {
			return StatusBogus, false, nil
		}
	} else {
		if err := set3.VerifyNODATA(qname, qtype); err != nil {
			// An insecure delegation excluded from an opt-out chain
			// answers DS queries with the RFC 5155 §8.6 proof: closest
			// provable encloser matched, next closer covered by an
			// Opt-Out span. That proves an unsigned delegation —
			// insecure, not bogus.
			if _, err2 := set3.VerifyNoDS(qname); err2 == nil {
				return StatusInsecure, false, nil
			}
			return StatusBogus, false, nil
		}
	}
	return StatusSecure, false, nil
}

// policyVerdict is the outcome of the iteration limit check.
type policyVerdict int

const (
	verdictValidate policyVerdict = iota // within limits: validate fully
	verdictInsecure                      // Item 6 region
	verdictServfail                      // Item 8 region
)

// applyIterationPolicy maps an NSEC3 iteration count to the resolver's
// configured behaviour. limitHit is true when a limit (rather than the
// default validate path) decided.
func (r *Resolver) applyIterationPolicy(iterations int) (policyVerdict, bool) {
	p := r.cfg.Policy
	if p.ServfailLimit != NoLimit && iterations > p.ServfailLimit {
		return verdictServfail, true
	}
	if p.InsecureLimit != NoLimit && iterations > p.InsecureLimit {
		return verdictInsecure, true
	}
	// RFC 5155 §10.3 always applies: beyond 2500 iterations even an
	// unlimited resolver treats the proof as insecure.
	if iterations > nsec3.RFC5155MaxIterations {
		return verdictInsecure, false
	}
	return verdictValidate, false
}

// rrGroup is an RRset with its covering signatures.
type rrGroup struct {
	rrs  []dnswire.RR
	sigs []dnswire.RR
}

// groupRRsets splits a section into RRsets and attaches RRSIGs.
func groupRRsets(rrs []dnswire.RR) []rrGroup {
	type key struct {
		name dnswire.Name
		t    dnswire.Type
	}
	idx := make(map[key]int)
	var out []rrGroup
	for _, rr := range rrs {
		if sig, ok := rr.Data.(dnswire.RRSIG); ok {
			k := key{rr.Name, sig.TypeCovered}
			if i, ok := idx[k]; ok {
				out[i].sigs = append(out[i].sigs, rr)
			} else {
				idx[k] = len(out)
				out = append(out, rrGroup{sigs: []dnswire.RR{rr}})
			}
			continue
		}
		k := key{rr.Name, rr.Type()}
		if i, ok := idx[k]; ok {
			out[i].rrs = append(out[i].rrs, rr)
		} else {
			idx[k] = len(out)
			out = append(out, rrGroup{rrs: []dnswire.RR{rr}})
		}
	}
	// Drop signature-only groups (their data lives elsewhere or is absent).
	kept := out[:0]
	for _, g := range out {
		if len(g.rrs) > 0 {
			kept = append(kept, g)
		}
	}
	return kept
}

// verifyAnySig reports whether any of sigs validates set with any key.
func (r *Resolver) verifyAnySig(set dnssec.RRset, sigs []dnswire.RR, apex dnswire.Name, keys []dnswire.DNSKEY) bool {
	now := r.cfg.Now()
	for _, sigRR := range sigs {
		sig, ok := sigRR.Data.(dnswire.RRSIG)
		if !ok {
			continue
		}
		for _, key := range keys {
			if dnssec.VerifyWithRRSIG(set, sig, key, apex, now) == nil {
				return true
			}
		}
	}
	return false
}

// verifySection verifies the RRset of type t (owner = any) within rrs.
func (r *Resolver) verifySection(rrs []dnswire.RR, t dnswire.Type, apex dnswire.Name, zt *zoneTrust) bool {
	for _, g := range groupRRsets(rrs) {
		if g.rrs[0].Type() != t {
			continue
		}
		set, err := dnssec.NewRRset(g.rrs)
		if err != nil {
			return false
		}
		if !r.verifyAnySig(set, g.sigs, apex, zt.keys) {
			return false
		}
		return true
	}
	return false
}

// verifyNSEC3Sigs verifies the RRSIG over every NSEC3 RRset in the
// authority section — the Item 7 integrity check over the iteration
// field itself.
func (r *Resolver) verifyNSEC3Sigs(msg *dnswire.Message, apex dnswire.Name, zt *zoneTrust) bool {
	found := false
	for _, g := range groupRRsets(msg.Authority) {
		if g.rrs[0].Type() != dnswire.TypeNSEC3 {
			continue
		}
		found = true
		set, err := dnssec.NewRRset(g.rrs)
		if err != nil {
			return false
		}
		if !r.verifyAnySig(set, g.sigs, apex, zt.keys) {
			return false
		}
	}
	return found
}

// verifyNSECDenialOfName validates a plain-NSEC denial: signatures over
// the NSEC records plus a covering or matching span for qname.
func (r *Resolver) verifyNSECDenialOfName(qname dnswire.Name, msg *dnswire.Message, apex dnswire.Name, zt *zoneTrust) bool {
	proven := false
	for _, g := range groupRRsets(msg.Authority) {
		if g.rrs[0].Type() != dnswire.TypeNSEC {
			continue
		}
		set, err := dnssec.NewRRset(g.rrs)
		if err != nil {
			return false
		}
		if !r.verifyAnySig(set, g.sigs, apex, zt.keys) {
			return false
		}
		for _, rr := range g.rrs {
			nsec := rr.Data.(dnswire.NSEC)
			if nsecCoversOrMatches(rr.Name, nsec.NextName, qname) {
				proven = true
			}
		}
	}
	return proven
}

// nsecCoversOrMatches implements the canonical-order span check for
// NSEC records (including the wrap at the end of the chain).
func nsecCoversOrMatches(owner, next, q dnswire.Name) bool {
	if owner == q {
		return true
	}
	oc := dnswire.CanonicalCompare(owner, q)
	qn := dnswire.CanonicalCompare(q, next)
	if dnswire.CanonicalCompare(owner, next) < 0 {
		return oc < 0 && qn < 0
	}
	return oc < 0 || qn < 0
}

// zoneKeys establishes (and caches) the chain of trust for a zone apex:
// Secure with its validated DNSKEYs, Insecure below an unsigned
// delegation, or Bogus.
func (r *Resolver) zoneKeys(ctx context.Context, apex dnswire.Name, depth int) (*zoneTrust, error) {
	now := r.cfg.Now()
	r.mu.Lock()
	if zt, ok := r.zoneCache[apex]; ok && serialLTE(now, zt.expiry) {
		r.mu.Unlock()
		return zt, nil
	}
	r.mu.Unlock()
	if depth > maxDepth {
		return nil, ErrLoop
	}

	zt, err := r.establishTrust(ctx, apex, depth)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if len(r.zoneCache) >= r.cfg.MaxCacheEntries {
		r.zoneCache = make(map[dnswire.Name]*zoneTrust)
	}
	r.zoneCache[apex] = zt
	r.mu.Unlock()
	return zt, nil
}

func (r *Resolver) establishTrust(ctx context.Context, apex dnswire.Name, depth int) (*zoneTrust, error) {
	now := r.cfg.Now()
	const trustTTL = 3600

	// Obtain the DS set authenticating this zone's KSK.
	var dsSet []dnswire.DS
	if apex.IsRoot() {
		dsSet = r.cfg.TrustAnchor
	} else {
		res, _, err := r.resolveDSInternal(ctx, apex, depth)
		if err != nil {
			return &zoneTrust{status: StatusBogus, expiry: now + 30}, nil
		}
		switch {
		case res.RCode == dnswire.RCodeServFail || res.Status == StatusBogus:
			return &zoneTrust{status: StatusBogus, expiry: now + 30}, nil
		case res.Status == StatusInsecure:
			// The parent zone itself is insecure (e.g. its own denial
			// exceeded the iteration limit): everything below is too.
			return &zoneTrust{status: StatusInsecure, expiry: now + trustTTL}, nil
		}
		for _, rr := range res.Answers {
			if ds, ok := rr.Data.(dnswire.DS); ok && rr.Name == apex {
				dsSet = append(dsSet, ds)
			}
		}
		if len(dsSet) == 0 {
			// Authenticated denial of DS: unsigned delegation.
			return &zoneTrust{status: StatusInsecure, expiry: now + trustTTL}, nil
		}
	}

	// Fetch and self-validate the DNSKEY RRset.
	auth, err := r.iterate(ctx, apex, dnswire.TypeDNSKEY, depth+1)
	if err != nil {
		return &zoneTrust{status: StatusBogus, expiry: now + 30}, nil
	}
	var keyRRs []dnswire.RR
	var sigRRs []dnswire.RR
	for _, rr := range auth.msg.Answers {
		switch d := rr.Data.(type) {
		case dnswire.DNSKEY:
			if rr.Name == apex {
				keyRRs = append(keyRRs, rr)
			}
			_ = d
		case dnswire.RRSIG:
			if rr.Name == apex && d.TypeCovered == dnswire.TypeDNSKEY {
				sigRRs = append(sigRRs, rr)
			}
		}
	}
	if len(keyRRs) == 0 {
		return &zoneTrust{status: StatusBogus, expiry: now + 30}, nil
	}
	set, err := dnssec.NewRRset(keyRRs)
	if err != nil {
		return &zoneTrust{status: StatusBogus, expiry: now + 30}, nil
	}
	// Find a KSK matching a DS and use it to verify the DNSKEY RRset.
	for _, rr := range keyRRs {
		key := rr.Data.(dnswire.DNSKEY)
		for _, ds := range dsSet {
			if dnssec.VerifyDS(apex, key, ds) != nil {
				continue
			}
			if r.verifyAnySig(set, sigRRs, apex, []dnswire.DNSKEY{key}) {
				keys := make([]dnswire.DNSKEY, 0, len(keyRRs))
				for _, krr := range keyRRs {
					keys = append(keys, krr.Data.(dnswire.DNSKEY))
				}
				return &zoneTrust{status: StatusSecure, keys: keys, expiry: now + trustTTL}, nil
			}
		}
	}
	return &zoneTrust{status: StatusBogus, expiry: now + 30}, nil
}

// resolveDSInternal resolves (apex, DS) through the normal cached path.
func (r *Resolver) resolveDSInternal(ctx context.Context, apex dnswire.Name, depth int) (*Result, uint32, error) {
	now := r.cfg.Now()
	key := cacheKey{apex, dnswire.TypeDS, false}
	r.mu.Lock()
	if e, ok := r.msgCache[key]; ok && serialLTE(now, e.expiry) {
		res := e.res
		r.mu.Unlock()
		return res, 0, nil
	}
	r.mu.Unlock()
	res, ttl, err := r.resolveUncached(ctx, apex, dnswire.TypeDS, depth+1, false)
	if err != nil {
		return nil, 0, err
	}
	r.mu.Lock()
	r.msgCache[key] = &cacheEntry{res: res, expiry: now + ttl}
	r.mu.Unlock()
	return res, ttl, nil
}
