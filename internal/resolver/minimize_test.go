package resolver

import (
	"context"
	"net/netip"
	"sync"
	"testing"

	"repro/internal/dnswire"
	"repro/internal/netsim"
)

// recordingExchanger captures which names each server was asked.
type recordingExchanger struct {
	inner netsim.Exchanger
	mu    sync.Mutex
	seen  map[netip.AddrPort][]dnswire.Name
}

func newRecordingExchanger(inner netsim.Exchanger) *recordingExchanger {
	return &recordingExchanger{inner: inner, seen: make(map[netip.AddrPort][]dnswire.Name)}
}

func (x *recordingExchanger) Exchange(ctx context.Context, server netip.AddrPort, q *dnswire.Message) (*dnswire.Message, error) {
	x.mu.Lock()
	x.seen[server] = append(x.seen[server], q.Question().Name)
	x.mu.Unlock()
	return x.inner.Exchange(ctx, server, q)
}

func (x *recordingExchanger) namesAt(server netip.AddrPort) []dnswire.Name {
	x.mu.Lock()
	defer x.mu.Unlock()
	return append([]dnswire.Name(nil), x.seen[server]...)
}

func TestQNameMinimizationHidesLabelsFromRoot(t *testing.T) {
	h := buildWorld(t)
	rec := newRecordingExchanger(h.Net)
	p := compliantPolicy()
	p.QNameMinimization = true
	r := New(Config{
		Roots: h.Roots, TrustAnchor: h.TrustAnchor,
		Exchanger: rec, Policy: p,
		Now: func() uint32 { return tNow },
	})
	qname := dnswire.MustParseName("secret-label.valid.rfc9276-in-the-wild.com")
	res, err := r.Resolve(context.Background(), qname, dnswire.TypeA)
	if err != nil || res.RCode != dnswire.RCodeNoError || !res.AD {
		t.Fatalf("resolve: %v %+v", err, res)
	}
	// The secret leaf label must never reach the root or TLD servers
	// (DS/DNSKEY sub-queries legitimately expose zone apexes, so the
	// guarantee is about the user's label, not a raw label count).
	leaked := func(n dnswire.Name) bool {
		l := n.Labels()
		return len(l) > 0 && l[0] == "secret-label"
	}
	for _, server := range []netip.AddrPort{h.Roots[0], netsim.Addr4(192, 5, 6, 30)} {
		for _, n := range rec.namesAt(server) {
			if leaked(n) {
				t.Fatalf("server %s saw the leaf label: %s", server, n)
			}
		}
	}
	// And the root never sees anything deeper than a zone apex it
	// delegates or is asked DS/DNSKEY for — in this world ≤ 3 labels.
	for _, n := range rec.namesAt(h.Roots[0]) {
		if n.CountLabels() > 3 {
			t.Fatalf("root saw %s (%d labels)", n, n.CountLabels())
		}
	}
}

func TestQNameMinimizationResultsMatchFullWalk(t *testing.T) {
	h := buildWorld(t)
	min := compliantPolicy()
	min.QNameMinimization = true
	rMin := newTestResolver(t, h, min)
	rFull := newTestResolver(t, h, compliantPolicy())
	cases := []struct {
		name  string
		rcode dnswire.RCode
		ad    bool
	}{
		{"q1.valid.rfc9276-in-the-wild.com", dnswire.RCodeNoError, true},
		{"q1.www.it-5.rfc9276-in-the-wild.com", dnswire.RCodeNXDomain, true},
		{"q1.www.it-200.rfc9276-in-the-wild.com", dnswire.RCodeNXDomain, false},
		{"q1.expired.rfc9276-in-the-wild.com", dnswire.RCodeServFail, false},
	}
	for _, c := range cases {
		for _, r := range []*Resolver{rMin, rFull} {
			res := resolveA(t, r, c.name)
			if res.RCode != c.rcode || res.AD != c.ad {
				t.Fatalf("%s (min=%v): rcode=%s ad=%v, want %s/%v",
					c.name, r.cfg.Policy.QNameMinimization, res.RCode, res.AD, c.rcode, c.ad)
			}
		}
	}
}

func TestQNameMinimizationNXDOMAINShortCircuit(t *testing.T) {
	// For a name under a nonexistent TLD-level label, minimization gets
	// the NXDOMAIN from the com zone without ever exposing the deeper
	// labels anywhere.
	h := buildWorld(t)
	rec := newRecordingExchanger(h.Net)
	p := compliantPolicy()
	p.QNameMinimization = true
	r := New(Config{
		Roots: h.Roots, TrustAnchor: h.TrustAnchor,
		Exchanger: rec, Policy: p,
		Now: func() uint32 { return tNow },
	})
	qname := dnswire.MustParseName("deep.hidden.label.does-not-exist.com")
	res, err := r.Resolve(context.Background(), qname, dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode=%s", res.RCode)
	}
	for server, names := range rec.seen {
		for _, n := range names {
			if n.CountLabels() > 2 && n.IsSubdomainOf("com.") {
				t.Fatalf("server %s saw %s — labels leaked past the NXDOMAIN", server, n)
			}
		}
	}
}
