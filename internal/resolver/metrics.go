package resolver

import (
	"repro/internal/dnswire"
	"repro/internal/obs"
)

// metrics holds the resolver's observability hooks. All fields are nil
// (and every method on them a no-op) when Config.Obs is unset, so the
// resolution path pays nothing for instrumentation it doesn't use.
type metrics struct {
	// upstream counts queries the resolver sent to authoritative
	// servers, including the small transport retry.
	upstream *obs.Counter
	// aggrHits / aggrMisses count RFC 8198 aggressive-cache consults
	// (only when the policy enables aggressive NSEC use).
	aggrHits   *obs.Counter
	aggrMisses *obs.Counter
	// hashWork accumulates the Gruza et al. cost model: every NSEC3
	// denial the resolver verifies costs iterated SHA-1 applications
	// proportional to (1 + iterations) per hashed candidate name.
	hashWork *obs.Counter
}

// newMetrics resolves the resolver's metrics from reg (nil reg: all
// no-op).
func newMetrics(reg *obs.Registry) metrics {
	if reg == nil {
		return metrics{}
	}
	return metrics{
		upstream: reg.Counter("resolver_upstream_queries_total",
			"queries sent by the resolver to authoritative servers"),
		aggrHits: reg.Counter("resolver_aggressive_hits_total",
			"negative answers synthesized from the RFC 8198 cache"),
		aggrMisses: reg.Counter("resolver_aggressive_misses_total",
			"aggressive-cache consults that found no covering span"),
		hashWork: reg.Counter("resolver_nsec3_hash_work_total",
			"SHA-1 applications spent verifying NSEC3 denials (Gruza et al. cost model)"),
	}
}

// nsec3HashWork estimates the SHA-1 applications needed to verify one
// NSEC3 denial for qname in the zone rooted at apex. The verifier runs
// the closest-encloser search: each candidate ancestor between the
// apex and qname may be hashed, plus the next-closer name and the
// source-of-synthesis wildcard, and every hash iterates 1+iterations
// times (RFC 5155 §5; the cost model of Gruza et al. / §6 of the
// paper). The estimate is deliberately an upper bound on candidates —
// it tracks how iteration settings multiply resolver work, which is
// the quantity the survey compares across parameter choices.
func nsec3HashWork(qname, apex dnswire.Name, iterations int) uint64 {
	candidates := qname.CountLabels() - apex.CountLabels()
	if candidates < 1 {
		candidates = 1
	}
	// + next closer + wildcard.
	return uint64(candidates+2) * uint64(1+iterations)
}

// countNSEC3Work records the hash work of one verified denial.
func (r *Resolver) countNSEC3Work(qname, apex dnswire.Name, iterations int) {
	r.met.hashWork.Add(nsec3HashWork(qname, apex, iterations))
}
