package statewalk

import (
	"fmt"

	"repro/internal/dnswire"
	"repro/internal/nsec3"
	"repro/internal/resolver"
	"repro/internal/respop"
)

// Triple is the remotely observable classification of one response —
// the (RCODE, AD bit, EDE code) triple Nosyk et al. probe validators
// with. EDE 0 means no EDE option was attached.
type Triple struct {
	RCode dnswire.RCode
	AD    bool
	EDE   dnswire.EDECode
}

// String renders the triple for divergence messages.
func (t Triple) String() string {
	return fmt.Sprintf("%s/ad=%v/ede=%d", t.RCode, t.AD, uint16(t.EDE))
}

// TripleJSON is the NDJSON rendering of a Triple.
type TripleJSON struct {
	RCode string `json:"rcode"`
	AD    bool   `json:"ad"`
	EDE   uint16 `json:"ede"`
}

// JSON converts for record emission.
func (t Triple) JSON() TripleJSON {
	return TripleJSON{RCode: t.RCode.String(), AD: t.AD, EDE: uint16(t.EDE)}
}

// limitOutcome is the model's reading of RFC 9276 Items 6/8 plus the
// RFC 5155 §10.3 cap, from a profile's documented limits alone.
type limitOutcome int

const (
	outcomeValidate limitOutcome = iota // within limits: full validation
	outcomeInsecure                     // Item 6 region (or the §10.3 cap)
	outcomeServfail                     // Item 8 region
)

// iterationOutcome classifies an iteration count under a policy.
// limitEDE reports whether a configured limit (not the always-on
// RFC 5155 cap) decided, i.e. whether Item 10 attaches the EDE.
func iterationOutcome(p resolver.Policy, iters int) (limitOutcome, bool) {
	if p.ServfailLimit != resolver.NoLimit && iters > p.ServfailLimit {
		return outcomeServfail, true
	}
	if p.InsecureLimit != resolver.NoLimit && iters > p.InsecureLimit {
		return outcomeInsecure, true
	}
	if iters > nsec3.RFC5155MaxIterations {
		return outcomeInsecure, false
	}
	return outcomeValidate, false
}

// Expect predicts the (RCODE, AD, EDE) triple for one cell from the
// profile's documented limits and validation mode — independently of
// the resolver implementation, so a divergence always means one of the
// two is wrong.
func Expect(t TopologySpec, p resolver.Policy) Triple {
	ede := func(limitEDE bool) dnswire.EDECode {
		if limitEDE && p.EDE != 0 {
			return p.EDE
		}
		return 0
	}
	servfail := func(limitEDE bool) Triple {
		return Triple{RCode: dnswire.RCodeServFail, EDE: ede(limitEDE)}
	}
	// The base response the zone serves, before any validation verdict.
	baseRCode := dnswire.RCodeNoError
	switch t.Shape {
	case ShapeSecureNX, ShapeNSECDenial, ShapeUnsignedDelegation, ShapeOmittedDS,
		ShapeExpiredDenial, ShapeInsecureIsland, ShapeCNAMEChain:
		baseRCode = dnswire.RCodeNXDomain
	}

	// Loops fail for everyone: resolution never reaches an answer, so
	// neither validation mode nor limits matter.
	switch t.Shape {
	case ShapeDelegationLoop, ShapeCNAMELoop:
		return Triple{RCode: dnswire.RCodeServFail}
	}

	if !p.Validate {
		// Non-validating resolvers relay the zone's answer, never set
		// AD, never SERVFAIL on bad DNSSEC data.
		return Triple{RCode: baseRCode}
	}

	outcome, limitEDE := iterationOutcome(p, int(t.Iterations))
	// negAD is the AD bit of a validated negative answer: true unless
	// the profile strips AD from negative responses.
	negAD := !p.NoNegativeAD

	switch t.Shape {
	case ShapeExists:
		// Positive answer, no denial proof: secure for every validator.
		return Triple{RCode: dnswire.RCodeNoError, AD: true}
	case ShapeNSECDenial:
		// Plain NSEC carries no iteration count; NSEC3 limits cannot
		// fire — even strict-zero boxes authenticate this denial.
		return Triple{RCode: dnswire.RCodeNXDomain, AD: negAD}
	case ShapeUnsignedDelegation, ShapeInsecureIsland:
		// Insecure zones answer without AD; nothing to validate.
		return Triple{RCode: dnswire.RCodeNXDomain}
	case ShapeOmittedDS:
		// Authenticated denial of DS makes the zone insecure, and an
		// insecure zone's NSEC3 parameters must never reach the
		// iteration policy — NXDOMAIN at any count, even above a
		// SERVFAIL limit.
		return Triple{RCode: dnswire.RCodeNXDomain}
	case ShapeBrokenDS, ShapeExpiredAll:
		// Verifiably broken chain / expired signatures: bogus, no EDE
		// (the limit did not decide).
		return Triple{RCode: dnswire.RCodeServFail}
	case ShapeSecureNX:
		switch outcome {
		case outcomeServfail:
			return servfail(limitEDE)
		case outcomeInsecure:
			return Triple{RCode: dnswire.RCodeNXDomain, EDE: ede(limitEDE)}
		}
		return Triple{RCode: dnswire.RCodeNXDomain, AD: negAD}
	case ShapeWildcard:
		// Positive RCODE, but the wildcard proof is a denial the
		// policy judges. A validated expansion keeps AD even for
		// negative-AD strippers (the answer is positive).
		switch outcome {
		case outcomeServfail:
			return servfail(limitEDE)
		case outcomeInsecure:
			return Triple{RCode: dnswire.RCodeNoError, EDE: ede(limitEDE)}
		}
		return Triple{RCode: dnswire.RCodeNoError, AD: true}
	case ShapeNodata:
		switch outcome {
		case outcomeServfail:
			return servfail(limitEDE)
		case outcomeInsecure:
			return Triple{RCode: dnswire.RCodeNoError, EDE: ede(limitEDE)}
		}
		return Triple{RCode: dnswire.RCodeNoError, AD: negAD}
	case ShapeExpiredDenial:
		// The NSEC3 RRSIGs are expired. Item 7 compliant validators
		// authenticate the records on every path that trusts them:
		// full validation and the insecure downgrade both discover the
		// expiry and go bogus (no EDE — the limit did not decide).
		// Item 7 violators skip the check in the insecure region and
		// serve the downgrade. Above a SERVFAIL limit the signatures
		// are never consulted, so the limit EDE survives.
		switch outcome {
		case outcomeServfail:
			return servfail(limitEDE)
		case outcomeInsecure:
			if p.VerifyInsecureNSEC3 {
				return Triple{RCode: dnswire.RCodeServFail}
			}
			return Triple{RCode: dnswire.RCodeNXDomain, EDE: ede(limitEDE)}
		}
		return Triple{RCode: dnswire.RCodeServFail}
	case ShapeCNAMEChain:
		// The alias hop is compliant; the policy judges the chase
		// target's denial, and the outcome must survive the chase
		// unchanged — SERVFAIL keeps its EDE, NXDOMAIN stays negative
		// for AD strippers.
		switch outcome {
		case outcomeServfail:
			return servfail(limitEDE)
		case outcomeInsecure:
			return Triple{RCode: dnswire.RCodeNXDomain, EDE: ede(limitEDE)}
		}
		return Triple{RCode: dnswire.RCodeNXDomain, AD: negAD}
	case ShapeOptOutNoDS:
		// NODATA for DS at an Opt-Out-excluded delegation: the proof
		// is a denial the policy judges first; within limits the §8.6
		// Opt-Out proof yields insecure (never AD).
		switch outcome {
		case outcomeServfail:
			return servfail(limitEDE)
		case outcomeInsecure:
			return Triple{RCode: dnswire.RCodeNoError, EDE: ede(limitEDE)}
		}
		return Triple{RCode: dnswire.RCodeNoError}
	}
	// Unreachable for enumerated shapes; fail loudly in the diff if a
	// new shape forgets its model.
	return Triple{RCode: dnswire.RCodeRefused}
}

// Explain returns the documented reason a divergence at this cell is
// expected (a model refinement under investigation) — empty when the
// divergence is unexplained and must fail the run. The table is empty:
// every divergence statewalk found so far was a resolver bug, fixed in
// tree (CNAME chases dropping the chained EDE and the negative-AD
// strip, NODATA keeping AD under NoNegativeAD).
func Explain(t TopologySpec, p respop.Profile, expected, observed Triple) string {
	return ""
}
