package statewalk

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/scanner"
)

// TestEnumerateIndexPure pins the enumerator's determinism contract:
// indices are positional, IDs unique, repeated calls identical.
func TestEnumerateIndexPure(t *testing.T) {
	a, b := Enumerate(), Enumerate()
	if len(a) != len(b) {
		t.Fatalf("Enumerate length changed between calls: %d vs %d", len(a), len(b))
	}
	ids := make(map[string]int)
	for i, tp := range a {
		if tp.Index != i {
			t.Errorf("Enumerate()[%d].Index = %d", i, tp.Index)
		}
		if a[i] != b[i] {
			t.Errorf("Enumerate()[%d] differs between calls: %+v vs %+v", i, a[i], b[i])
		}
		if prev, dup := ids[tp.ID()]; dup {
			t.Errorf("duplicate topology ID %q at indices %d and %d", tp.ID(), prev, i)
		}
		ids[tp.ID()] = i
	}
}

// TestStatewalkNoUnexplainedDivergences is the main differential gate:
// every (topology × profile) cell through the real resolver, zero
// divergences the model cannot explain. The ISSUE floor is 200 cells.
func TestStatewalkNoUnexplainedDivergences(t *testing.T) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	sum, err := Run(context.Background(), Config{
		Seed: 1,
		Out:  scanner.NewEncoder(&buf),
		Obs:  reg,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sum.Cells < 200 {
		t.Fatalf("ran %d cells, want >= 200", sum.Cells)
	}
	if sum.Cells != sum.Topologies*sum.Profiles {
		t.Errorf("cells %d != topologies %d × profiles %d", sum.Cells, sum.Topologies, sum.Profiles)
	}
	if sum.Unexplained != 0 {
		t.Errorf("%d unexplained divergences (of %d total):\n%s",
			sum.Unexplained, sum.Divergences, buf.String())
	}
	t.Logf("statewalk: %d topologies × %d profiles = %d cells, %d divergences (%d unexplained)",
		sum.Topologies, sum.Profiles, sum.Cells, sum.Divergences, sum.Unexplained)
}

// runRange executes [offset, offset+limit) with EmitCells and returns
// the NDJSON bytes.
func runRange(t *testing.T, offset, limit int) []byte {
	t.Helper()
	var buf bytes.Buffer
	_, err := Run(context.Background(), Config{
		Seed:      7,
		Offset:    offset,
		Limit:     limit,
		EmitCells: true,
		Out:       scanner.NewEncoder(&buf),
	})
	if err != nil {
		t.Fatalf("Run(offset=%d, limit=%d): %v", offset, limit, err)
	}
	return buf.Bytes()
}

// TestStatewalkSplitEquivalence is the statewalk twin of
// TestSurveyShardEquivalence: the report of [0,n) must be byte-identical
// to the concatenation of [0,k) and [k,n), proving emission order and
// record content are independent of range splits and worker scheduling.
func TestStatewalkSplitEquivalence(t *testing.T) {
	const n, k = 60, 23
	whole := runRange(t, 0, n)
	split := append(runRange(t, 0, k), runRange(t, k, n-k)...)
	if !bytes.Equal(whole, split) {
		t.Fatalf("split-range report differs from whole-range report:\nwhole:\n%s\nsplit:\n%s", whole, split)
	}
	if len(bytes.TrimSpace(whole)) == 0 {
		t.Fatal("EmitCells produced no records")
	}
	// A second whole-range run must also be byte-identical (same seed ⇒
	// same report).
	if again := runRange(t, 0, n); !bytes.Equal(whole, again) {
		t.Fatal("repeated run with the same seed produced different bytes")
	}
}

// corpusDirFor maps a fuzz target to the package testdata directory its
// seeds are committed under.
func corpusDirFor(target string) string {
	switch target {
	case "FuzzDecodeMessage":
		return filepath.Join("..", "dnswire", "testdata", "fuzz", "FuzzDecodeMessage")
	case "FuzzHash":
		return filepath.Join("..", "nsec3", "testdata", "fuzz", "FuzzHash")
	}
	return ""
}

// TestBoundaryCorpusSeedsCommitted pins the committed fuzz-corpus seeds
// to the minimizer's output: one FuzzDecodeMessage + one FuzzHash seed
// per iteration-limit boundary topology. Regenerate with
// STATEWALK_WRITE_CORPUS=1 after changing the minimizer.
func TestBoundaryCorpusSeedsCommitted(t *testing.T) {
	seeds, err := BoundarySeeds()
	if err != nil {
		t.Fatalf("BoundarySeeds: %v", err)
	}
	if want := 2 * len(BoundaryIterations); len(seeds) != want {
		t.Fatalf("got %d seeds, want %d", len(seeds), want)
	}
	if os.Getenv("STATEWALK_WRITE_CORPUS") == "1" {
		for _, s := range seeds {
			if err := WriteSeeds(filepath.Dir(corpusDirFor(s.Target)), []CorpusSeed{s}); err != nil {
				t.Fatalf("writing %s/%s: %v", s.Target, s.Name, err)
			}
		}
	}
	for _, s := range seeds {
		path := filepath.Join(corpusDirFor(s.Target), s.Name)
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("committed corpus seed missing (run with STATEWALK_WRITE_CORPUS=1 to generate): %v", err)
		}
		if !bytes.Equal(got, s.Body) {
			t.Errorf("%s drifted from the minimizer's output", path)
		}
	}
}

// TestSeedsForTopologyDeterministic guards the corpus encoder: seed
// bytes are a pure function of the topology.
func TestSeedsForTopologyDeterministic(t *testing.T) {
	for _, tp := range Enumerate() {
		if tp.Shape != ShapeSecureNX {
			continue
		}
		a, err := SeedsForTopology(tp)
		if err != nil {
			t.Fatalf("SeedsForTopology(%s): %v", tp.ID(), err)
		}
		b, _ := SeedsForTopology(tp)
		for i := range a {
			if a[i].Target != b[i].Target || a[i].Name != b[i].Name || !bytes.Equal(a[i].Body, b[i].Body) {
				t.Errorf("%s seed %d not deterministic", tp.ID(), i)
			}
			if !bytes.HasPrefix(a[i].Body, []byte("go test fuzz v1\n")) {
				t.Errorf("%s seed %d missing go-fuzz v1 header", tp.ID(), i)
			}
		}
	}
	if _, err := SeedsForTopology(TopologySpec{Index: 99, Shape: ShapeSecureNX, Iterations: 2501}); err != nil {
		t.Fatalf("seed for synthetic boundary topology: %v", err)
	}
}
