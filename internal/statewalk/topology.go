// Package statewalk treats the resolver as an explorable state machine
// (after Nevatia et al.'s DNS reachability analysis): a deterministic
// enumerator composes delegation/CNAME/DS corner topologies, a
// declarative expectation model predicts the (RCODE, AD, EDE) triple
// Nosyk et al. use to classify validators remotely, and a differential
// runner executes every (topology × respop profile) cell through the
// real resolver over netsim and reports every divergence. Scenario
// diversity comes from systematic enumeration instead of hand-written
// cases; each real divergence is either a resolver bug or a documented
// refinement of the model.
package statewalk

import (
	"fmt"
	"net/netip"

	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/nsec3"
	"repro/internal/testbed"
	"repro/internal/zone"
)

// Shape names one delegation/CNAME/DS corner topology family.
type Shape string

// The enumerated shapes.
const (
	// ShapeExists: signed zone, existing name — positive secure
	// baseline (no denial proof, so even strict-zero boxes validate).
	ShapeExists Shape = "exists"
	// ShapeSecureNX: signed NSEC3 zone at N iterations, nonexistent
	// name — the paper's it-N probe as an NXDOMAIN denial.
	ShapeSecureNX Shape = "secure-nx"
	// ShapeWildcard: signed zone with an apex wildcard — a positive
	// answer that still carries an NSEC3 proof (RFC 5155 §8.8), so the
	// iteration policy applies to a NOERROR response.
	ShapeWildcard Shape = "wildcard"
	// ShapeNodata: existing name, absent type — the NODATA denial.
	ShapeNodata Shape = "nodata"
	// ShapeNSECDenial: plain-NSEC zone — authenticated denial with no
	// iteration count at all; NSEC3 limits must not fire.
	ShapeNSECDenial Shape = "nsec-denial"
	// ShapeUnsignedDelegation: unsigned child of a signed parent — the
	// ordinary insecure delegation.
	ShapeUnsignedDelegation Shape = "unsigned-delegation"
	// ShapeBrokenDS: the parent publishes a DS matching no key in the
	// signed child — a verifiably broken chain (bogus, not insecure).
	ShapeBrokenDS Shape = "broken-ds"
	// ShapeOmittedDS: the child signs but the parent withholds the DS —
	// authenticated denial of DS makes the zone insecure, and its NSEC3
	// iteration count must never reach the policy.
	ShapeOmittedDS Shape = "omitted-ds"
	// ShapeExpiredAll: every RRSIG in the zone is expired.
	ShapeExpiredAll Shape = "expired-all"
	// ShapeExpiredDenial: only the NSEC3 RRSIGs are expired — the
	// Item 7 probe (it-2501-expired generalized across the limits).
	ShapeExpiredDenial Shape = "expired-denial"
	// ShapeInsecureIsland: a signed grandchild below an unsigned
	// middle zone — its own DNSSEC material is unreachable from the
	// trust anchor.
	ShapeInsecureIsland Shape = "insecure-island"
	// ShapeDelegationLoop: two zones whose glue-less NS records point
	// into each other — resolution can never bottom out.
	ShapeDelegationLoop Shape = "delegation-loop"
	// ShapeCNAMEChain: an alias in a compliant zone targeting a
	// nonexistent name in a zone at N iterations — the policy outcome
	// must survive the chase.
	ShapeCNAMEChain Shape = "cname-chain"
	// ShapeCNAMELoop: two aliases targeting each other.
	ShapeCNAMELoop Shape = "cname-loop"
	// ShapeOptOutNoDS: DS query at an insecure delegation excluded
	// from an Opt-Out NSEC3 chain (RFC 5155 §8.6) — a NODATA whose
	// proof the iteration policy still sees.
	ShapeOptOutNoDS Shape = "optout-nods"
)

// TopologySpec is one enumerated topology: index-pure (the spec is a
// function of its index alone), realized through testbed.Builder.
type TopologySpec struct {
	// Index is the topology's position in Enumerate's order.
	Index int
	// Shape selects the corner-case family.
	Shape Shape
	// Iterations is the NSEC3 iteration count of the zone whose denial
	// the policy judges (for ShapeCNAMEChain, the chase target's zone).
	// Zero for shapes where no NSEC3 proof is ever consulted.
	Iterations uint16
}

// iterationGrids lists, per shape, the iteration counts enumerated:
// both sides of every vendor limit (50/100/150), the RFC 5155 §10.3
// cap, and zero. Shapes absent here enumerate a single topology.
var iterationGrids = []struct {
	shape Shape
	iters []uint16
}{
	{ShapeExists, []uint16{0}},
	{ShapeSecureNX, []uint16{0, 50, 51, 100, 101, 150, 151, 2500, 2501}},
	{ShapeWildcard, []uint16{0, 51, 101, 151, 2501}},
	{ShapeNodata, []uint16{0, 151}},
	{ShapeNSECDenial, []uint16{0}},
	{ShapeUnsignedDelegation, []uint16{0}},
	{ShapeBrokenDS, []uint16{0}},
	{ShapeOmittedDS, []uint16{0, 151}},
	{ShapeExpiredAll, []uint16{0}},
	{ShapeExpiredDenial, []uint16{0, 151, 2501}},
	{ShapeInsecureIsland, []uint16{0}},
	{ShapeDelegationLoop, []uint16{0}},
	{ShapeCNAMEChain, []uint16{0, 151}},
	{ShapeCNAMELoop, []uint16{0}},
	{ShapeOptOutNoDS, []uint16{0, 151}},
}

// Enumerate returns every topology in its canonical order. The list is
// a pure function: Enumerate()[i].Index == i on every call, which the
// split-range golden test relies on.
func Enumerate() []TopologySpec {
	var out []TopologySpec
	for _, g := range iterationGrids {
		for _, it := range g.iters {
			out = append(out, TopologySpec{Index: len(out), Shape: g.shape, Iterations: it})
		}
	}
	return out
}

// hasIterations reports whether the shape's identity includes an
// iteration count (more than one grid entry).
func (t TopologySpec) hasIterations() bool {
	for _, g := range iterationGrids {
		if g.shape == t.Shape {
			return len(g.iters) > 1
		}
	}
	return false
}

// ID is the topology's stable identifier, carried in every record.
func (t TopologySpec) ID() string {
	if t.hasIterations() {
		return fmt.Sprintf("t%02d-%s-it%d", t.Index, t.Shape, t.Iterations)
	}
	return fmt.Sprintf("t%02d-%s", t.Index, t.Shape)
}

// Apex is the topology's primary zone under the test TLD.
func (t TopologySpec) Apex() dnswire.Name {
	return dnswire.MustParseName(fmt.Sprintf("swt%02d.test", t.Index))
}

// partnerApex is the auxiliary zone some shapes need (loop partner,
// CNAME chase target).
func (t TopologySpec) partnerApex() dnswire.Name {
	return dnswire.MustParseName(fmt.Sprintf("swt%02dx.test", t.Index))
}

// Probe returns the cell's single query. Names are fixed per topology:
// the runner gives every cell a fresh resolver, so no cache busting is
// needed and traces stay byte-identical across runs.
func (t TopologySpec) Probe() (dnswire.Name, dnswire.Type) {
	apex := t.Apex()
	switch t.Shape {
	case ShapeExists, ShapeBrokenDS, ShapeExpiredAll:
		return apex.MustChild("www"), dnswire.TypeA
	case ShapeWildcard:
		return apex.MustChild("probe"), dnswire.TypeA
	case ShapeNodata:
		return apex.MustChild("www"), dnswire.TypeTXT
	case ShapeInsecureIsland:
		return apex.MustChild("island").MustChild("www").MustChild("gone"), dnswire.TypeA
	case ShapeDelegationLoop:
		return apex.MustChild("www"), dnswire.TypeA
	case ShapeCNAMEChain:
		return apex.MustChild("alias"), dnswire.TypeA
	case ShapeCNAMELoop:
		return apex.MustChild("loop1"), dnswire.TypeA
	case ShapeOptOutNoDS:
		return apex.MustChild("ins"), dnswire.TypeDS
	default:
		// The NXDOMAIN probes: www exists, gone.www does not, and no
		// wildcard matches — an authenticated denial.
		return apex.MustChild("www").MustChild("gone"), dnswire.TypeA
	}
}

// install adds the topology's zones to the builder. All topology zones
// share one server so DS-at-apex queries route to the hosted parent
// (the authserver behaviour ShapeOptOutNoDS depends on).
func (t TopologySpec) install(b *testbed.Builder, server netip.AddrPort) {
	apex := t.Apex()
	www := func(z *zone.Zone) {
		z.MustAdd(dnswire.RR{Name: z.Apex.MustChild("www"), Class: dnswire.ClassIN, TTL: 300,
			Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.80")}})
	}
	nsec3Sign := func(iters uint16) zone.SignConfig {
		return zone.SignConfig{Denial: zone.DenialNSEC3, NSEC3: nsec3.Params{Iterations: iters}}
	}
	switch t.Shape {
	case ShapeWildcard:
		b.AddZone(testbed.ZoneSpec{Apex: apex, Server: server, Sign: nsec3Sign(t.Iterations),
			Populate: func(z *zone.Zone) {
				www(z)
				z.MustAdd(dnswire.RR{Name: z.Apex.Wildcard(), Class: dnswire.ClassIN, TTL: 300,
					Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.80")}})
			}})
	case ShapeNSECDenial:
		b.AddZone(testbed.ZoneSpec{Apex: apex, Server: server,
			Sign: zone.SignConfig{Denial: zone.DenialNSEC}, Populate: www})
	case ShapeUnsignedDelegation:
		b.AddZone(testbed.ZoneSpec{Apex: apex, Server: server, Unsigned: true, Populate: www})
	case ShapeBrokenDS:
		b.AddZone(testbed.ZoneSpec{Apex: apex, Server: server, BreakDS: true,
			Sign: nsec3Sign(0), Populate: www})
	case ShapeOmittedDS:
		b.AddZone(testbed.ZoneSpec{Apex: apex, Server: server, OmitDS: true,
			Sign: nsec3Sign(t.Iterations), Populate: www})
	case ShapeExpiredAll:
		cfg := nsec3Sign(0)
		cfg.ExpireAll = true
		b.AddZone(testbed.ZoneSpec{Apex: apex, Server: server, Sign: cfg, Populate: www})
	case ShapeExpiredDenial:
		cfg := nsec3Sign(t.Iterations)
		cfg.ExpireDenialSigs = true
		b.AddZone(testbed.ZoneSpec{Apex: apex, Server: server, Sign: cfg, Populate: www})
	case ShapeInsecureIsland:
		// Unsigned middle, signed leaf: the leaf's DS lives in a zone
		// that cannot authenticate it.
		b.AddZone(testbed.ZoneSpec{Apex: apex, Server: server, Unsigned: true})
		b.AddZone(testbed.ZoneSpec{Apex: apex.MustChild("island"), Server: server,
			Sign: nsec3Sign(0), Populate: www})
	case ShapeDelegationLoop:
		// Each zone's only NS host lives in the other zone, with no
		// glue anywhere: chasing either delegation recurses into the
		// other until the resolver's depth limit trips.
		partner := t.partnerApex()
		b.AddZone(testbed.ZoneSpec{Apex: apex, Server: server,
			NSHost: partner.MustChild("ns"), Sign: nsec3Sign(0)})
		b.AddZone(testbed.ZoneSpec{Apex: partner, Server: server,
			NSHost: apex.MustChild("ns"), Sign: nsec3Sign(0)})
	case ShapeCNAMEChain:
		target := t.partnerApex()
		b.AddZone(testbed.ZoneSpec{Apex: apex, Server: server, Sign: nsec3Sign(0),
			Populate: func(z *zone.Zone) {
				z.MustAdd(dnswire.RR{Name: z.Apex.MustChild("alias"), Class: dnswire.ClassIN, TTL: 300,
					Data: dnswire.CNAME{Target: target.MustChild("www").MustChild("gone")}})
			}})
		b.AddZone(testbed.ZoneSpec{Apex: target, Server: server,
			Sign: nsec3Sign(t.Iterations), Populate: www})
	case ShapeCNAMELoop:
		b.AddZone(testbed.ZoneSpec{Apex: apex, Server: server, Sign: nsec3Sign(0),
			Populate: func(z *zone.Zone) {
				z.MustAdd(dnswire.RR{Name: z.Apex.MustChild("loop1"), Class: dnswire.ClassIN, TTL: 300,
					Data: dnswire.CNAME{Target: z.Apex.MustChild("loop2")}})
				z.MustAdd(dnswire.RR{Name: z.Apex.MustChild("loop2"), Class: dnswire.ClassIN, TTL: 300,
					Data: dnswire.CNAME{Target: z.Apex.MustChild("loop1")}})
			}})
	case ShapeOptOutNoDS:
		cfg := nsec3Sign(t.Iterations)
		cfg.OptOut = true
		b.AddZone(testbed.ZoneSpec{Apex: apex, Server: server, Sign: cfg, Populate: www})
		// The insecure delegation the Opt-Out span skips; same server,
		// so its apex DS query is answered by the hosted parent.
		b.AddZone(testbed.ZoneSpec{Apex: apex.MustChild("ins"), Server: server, Unsigned: true})
	default: // ShapeExists, ShapeSecureNX, ShapeNodata
		b.AddZone(testbed.ZoneSpec{Apex: apex, Server: server,
			Sign: nsec3Sign(t.Iterations), Populate: www})
	}
}

// Simulation clock: the paper's scan window (2024-03 .. 2024-06), the
// probe in between — matching the core experiment constants so expired
// signatures are expired and everything else is valid.
const (
	simInception  = 1709251200
	simExpiration = 1717200000
	simNow        = 1712000000
)

// Fixed infrastructure addresses.
var (
	rootAddr = netsim.Addr4(198, 41, 0, 4)
	tldAddr  = netsim.Addr4(192, 5, 6, 53)
	leafAddr = netsim.Addr4(203, 0, 113, 66)
)

// World is a built hierarchy hosting every enumerated topology.
type World struct {
	Hierarchy  *testbed.Hierarchy
	Topologies []TopologySpec
}

// BuildWorld realizes every topology under a root + "test" TLD
// hierarchy on a fresh simulated network. The TLD signs NSEC3 at zero
// iterations so no profile's limit ever fires on infrastructure zones;
// seed only parameterizes the network (content is seed-independent).
func BuildWorld(seed uint64) (*World, error) {
	topos := Enumerate()
	b := testbed.NewBuilder(simInception, simExpiration)
	b.AddZone(testbed.ZoneSpec{
		Apex:   dnswire.Root,
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC},
		Server: rootAddr,
	})
	b.AddZone(testbed.ZoneSpec{
		Apex:   dnswire.MustParseName("test"),
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC3},
		Server: tldAddr,
	})
	for _, tp := range topos {
		tp.install(b, leafAddr)
	}
	h, err := b.Build(netsim.NewNetwork(seed))
	if err != nil {
		return nil, fmt.Errorf("statewalk: building world: %w", err)
	}
	return &World{Hierarchy: h, Topologies: topos}, nil
}
