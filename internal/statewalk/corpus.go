package statewalk

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dnswire"
	"repro/internal/nsec3"
)

// BoundaryIterations are the counts straddling every vendor limit the
// respop catalogue documents (50/100/150) plus the RFC 5155 §10.3 cap —
// the values whose off-by-one behaviour the fuzz corpus pins.
var BoundaryIterations = []uint16{50, 51, 100, 101, 150, 151, 2500, 2501}

// CorpusSeed is one go-fuzz corpus entry minimized from a divergent
// topology: Target names the fuzz function, Name the corpus file, Body
// its "go test fuzz v1" encoding.
type CorpusSeed struct {
	Target string
	Name   string
	Body   []byte
}

// fuzzV1 encodes values in the Go fuzz corpus v1 format.
func fuzzV1(vals ...any) []byte {
	out := []byte("go test fuzz v1\n")
	for _, v := range vals {
		switch x := v.(type) {
		case []byte:
			out = append(out, fmt.Sprintf("[]byte(%q)\n", x)...)
		case string:
			out = append(out, fmt.Sprintf("string(%q)\n", x)...)
		case uint16:
			out = append(out, fmt.Sprintf("uint16(%d)\n", x)...)
		default:
			panic(fmt.Sprintf("statewalk: unsupported fuzz seed type %T", v))
		}
	}
	return out
}

// denialMessage synthesizes the wire form of the NXDOMAIN denial a
// topology's zone serves: question, SOA, and the three NSEC3 records of
// a closest-encloser proof at the topology's iteration count, each with
// an (unverifiable, structurally valid) RRSIG. The owners are real
// iterated hashes so decoder fuzzing starts from data shaped exactly
// like the boundary topologies that diverged.
func denialMessage(t TopologySpec) (*dnswire.Message, error) {
	apex := t.Apex()
	qname, qtype := t.Probe()
	p := nsec3.Params{Alg: dnswire.NSEC3HashSHA1, Iterations: t.Iterations}
	msg := &dnswire.Message{
		Header: dnswire.Header{
			ID:            uint16(0x5A00) ^ uint16(t.Index),
			Response:      true,
			Authoritative: true,
			RCode:         dnswire.RCodeNXDomain,
		},
		Questions: []dnswire.Question{{Name: qname, Type: qtype, Class: dnswire.ClassIN}},
	}
	msg.Authority = append(msg.Authority, dnswire.RR{
		Name: apex, Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.SOA{
			MName: apex.MustChild("ns"), RName: apex.MustChild("hostmaster"),
			Serial: 1, Refresh: 7200, Retry: 3600, Expire: 86400, Minimum: 300,
		},
	})
	// Closest encloser, next closer, wildcard — the §8.4 proof set.
	for _, covered := range []dnswire.Name{apex, qname, apex.Wildcard()} {
		owner, err := nsec3.OwnerName(covered, apex, p)
		if err != nil {
			return nil, err
		}
		next, err := nsec3.Hash(covered.MustChild("next"), p)
		if err != nil {
			return nil, err
		}
		msg.Authority = append(msg.Authority,
			dnswire.RR{Name: owner, Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.NSEC3{
					HashAlg: dnswire.NSEC3HashSHA1, Iterations: t.Iterations,
					NextHashedOwner: next,
					Types:           dnswire.NewTypeBitmap(dnswire.TypeSOA, dnswire.TypeRRSIG),
				}},
			dnswire.RR{Name: owner, Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.RRSIG{
					TypeCovered: dnswire.TypeNSEC3, Algorithm: dnswire.AlgECDSAP256SHA256,
					Labels: 2, OrigTTL: 300,
					Expiration: simExpiration, Inception: simInception,
					KeyTag: 0x5A5A, SignerName: apex,
					Signature: []byte("statewalk-fixed-placeholder-signature-64-bytes-padding-xxxxxxxxx"),
				}})
	}
	return msg, nil
}

// SeedsForTopology minimizes one topology into corpus seeds for the two
// fuzz targets its wire data exercises: the packed denial message for
// FuzzDecodeMessage and the probe's (name, iterations, salt) tuple for
// FuzzHash. Seeds are byte-deterministic (fixed IDs, fixed signature
// placeholder), so committing them is reproducible.
func SeedsForTopology(t TopologySpec) ([]CorpusSeed, error) {
	msg, err := denialMessage(t)
	if err != nil {
		return nil, fmt.Errorf("statewalk: corpus for %s: %w", t.ID(), err)
	}
	wire, err := msg.Pack()
	if err != nil {
		return nil, fmt.Errorf("statewalk: corpus for %s: %w", t.ID(), err)
	}
	qname, _ := t.Probe()
	base := fmt.Sprintf("statewalk-%s", t.ID())
	return []CorpusSeed{
		{Target: "FuzzDecodeMessage", Name: base, Body: fuzzV1(wire)},
		{Target: "FuzzHash", Name: base, Body: fuzzV1(qname.String(), t.Iterations, []byte{})},
	}, nil
}

// BoundarySeeds are the committed corpus seeds: one pair per boundary
// iteration count, derived from the secure-NX topologies straddling the
// vendor limits (the topologies whose divergences motivated the fixes
// in this tree).
func BoundarySeeds() ([]CorpusSeed, error) {
	byIter := make(map[uint16]TopologySpec)
	for _, tp := range Enumerate() {
		if tp.Shape == ShapeSecureNX {
			byIter[tp.Iterations] = tp
		}
	}
	var out []CorpusSeed
	for _, it := range BoundaryIterations {
		tp, ok := byIter[it]
		if !ok {
			return nil, fmt.Errorf("statewalk: no secure-nx topology at %d iterations", it)
		}
		seeds, err := SeedsForTopology(tp)
		if err != nil {
			return nil, err
		}
		out = append(out, seeds...)
	}
	return out, nil
}

// WriteSeeds materializes seeds under dir using the go fuzz corpus
// layout (dir/<Target>/<Name>). Existing identical files are left
// untouched so repeated runs are idempotent.
func WriteSeeds(dir string, seeds []CorpusSeed) error {
	for _, s := range seeds {
		d := filepath.Join(dir, s.Target)
		if err := os.MkdirAll(d, 0o755); err != nil {
			return err
		}
		path := filepath.Join(d, s.Name)
		if old, err := os.ReadFile(path); err == nil && string(old) == string(s.Body) {
			continue
		}
		if err := os.WriteFile(path, s.Body, 0o644); err != nil {
			return err
		}
	}
	return nil
}
