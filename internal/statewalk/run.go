package statewalk

import (
	"context"
	"fmt"
	"net/netip"
	"sync"

	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/resolver"
	"repro/internal/respop"
	"repro/internal/scanner"
)

// Config parameterizes one differential run.
type Config struct {
	// Seed fixes the simulated network; enumeration and zone content
	// are seed-independent, so any seed yields the same cell grid.
	Seed uint64
	// Offset/Limit select the cell range [Offset, Offset+Limit) of the
	// topology-major × profile-minor grid; Limit <= 0 runs to the end.
	// Concatenating the reports of [0,k) and [k,n) is byte-identical
	// to one [0,n) run — the split-range golden property.
	Offset, Limit int
	// Workers bounds concurrent cells (default 8). Records are emitted
	// in cell order regardless, so worker count never changes output.
	Workers int
	// EmitCells writes a record for every cell, not just divergences —
	// the golden tests and EXPERIMENTS.md tables use this.
	EmitCells bool
	// Out receives NDJSON records; nil discards them.
	Out *scanner.Encoder
	// Obs, when set, receives statewalk_cells_total and
	// statewalk_divergences_total.
	Obs *obs.Registry
}

// Record is one cell's NDJSON line. Divergence records carry the
// topology ID, profile, both triples, and the minimized query trace.
type Record struct {
	Kind      string     `json:"kind"`
	Topology  string     `json:"topology"`
	Shape     string     `json:"shape"`
	Profile   string     `json:"profile"`
	QName     string     `json:"qname"`
	QType     string     `json:"qtype"`
	Expected  TripleJSON `json:"expected"`
	Observed  TripleJSON `json:"observed"`
	Diverged  bool       `json:"diverged"`
	Explained string     `json:"explained,omitempty"`
	Trace     []string   `json:"trace"`
}

// Summary aggregates one run.
type Summary struct {
	Topologies  int
	Profiles    int
	Cells       int
	Divergences int
	// Unexplained counts divergences Explain has no entry for — a
	// resolver bug or a model gap; CI fails on any.
	Unexplained int
	// Seeds are the fuzz-corpus seeds minimized from the topologies
	// that produced unexplained divergences (one set per topology).
	Seeds []CorpusSeed
}

// traceRecorder wraps the network to capture the resolver's upstream
// queries for the cell's minimized trace.
type traceRecorder struct {
	inner netsim.Exchanger

	mu     sync.Mutex
	events []string
}

// Exchange implements netsim.Exchanger.
func (t *traceRecorder) Exchange(ctx context.Context, server netip.AddrPort, q *dnswire.Message) (*dnswire.Message, error) {
	if len(q.Questions) == 1 {
		ev := fmt.Sprintf("%s %s @%s", q.Questions[0].Type, q.Questions[0].Name, server)
		t.mu.Lock()
		t.events = append(t.events, ev)
		t.mu.Unlock()
	}
	return t.inner.Exchange(ctx, server, q)
}

// minimized returns the trace with exact repeats removed (retries and
// cache-warm loops collapse), capped at max entries.
func (t *traceRecorder) minimized(max int) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[string]bool, len(t.events))
	out := make([]string, 0, len(t.events))
	dropped := 0
	for _, ev := range t.events {
		if seen[ev] {
			continue
		}
		seen[ev] = true
		if len(out) >= max {
			dropped++
			continue
		}
		out = append(out, ev)
	}
	if dropped > 0 {
		out = append(out, fmt.Sprintf("(+%d more)", dropped))
	}
	return out
}

// cellAddr is the client address cell i's resolver listens on.
func cellAddr(i int) netip.AddrPort {
	return netsim.Addr4(10, 99, byte(i>>8), byte(i))
}

// Run executes the selected cell range and returns the summary. The
// report (divergences, or every cell with EmitCells) is written to
// cfg.Out in cell order: same seed and range ⇒ byte-identical output.
func Run(ctx context.Context, cfg Config) (*Summary, error) {
	w, err := BuildWorld(cfg.Seed)
	if err != nil {
		return nil, err
	}
	profiles := respop.Profiles()
	total := len(w.Topologies) * len(profiles)
	lo := min(max(cfg.Offset, 0), total)
	hi := total
	if cfg.Limit > 0 && lo+cfg.Limit < total {
		hi = lo + cfg.Limit
	}
	n := hi - lo

	workers := cfg.Workers
	if workers <= 0 {
		workers = 8
	}
	records := make([]*Record, n)
	errs := make([]error, n)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
acquire:
	for i := 0; i < n; i++ {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break acquire
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			cell := lo + i
			records[i], errs[i] = runCell(ctx, w, cell, w.Topologies[cell/len(profiles)], profiles[cell%len(profiles)])
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var cellsC, divC *obs.Counter
	if cfg.Obs != nil {
		cellsC = cfg.Obs.Counter("statewalk_cells_total",
			"(topology × profile) cells executed by the statewalk differential runner")
		divC = cfg.Obs.Counter("statewalk_divergences_total",
			"statewalk cells whose observed triple differed from the expectation model")
	}
	sum := &Summary{Topologies: len(w.Topologies), Profiles: len(profiles)}
	seeded := make(map[int]bool)
	for _, rec := range records {
		sum.Cells++
		if cellsC != nil {
			cellsC.Inc()
		}
		if rec.Diverged {
			sum.Divergences++
			if divC != nil {
				divC.Inc()
			}
			if rec.Explained == "" {
				sum.Unexplained++
				// Minimize the divergence into corpus seeds, once per
				// topology (cells of one topology share the zone).
				ti := topologyIndexOf(w.Topologies, rec.Topology)
				if ti >= 0 && !seeded[ti] {
					seeded[ti] = true
					seeds, err := SeedsForTopology(w.Topologies[ti])
					if err != nil {
						return nil, err
					}
					sum.Seeds = append(sum.Seeds, seeds...)
				}
			}
		}
		if cfg.Out != nil && (rec.Diverged || cfg.EmitCells) {
			if err := cfg.Out.WriteAny(rec); err != nil {
				return nil, err
			}
		}
	}
	return sum, nil
}

// topologyIndexOf finds a topology by its record ID.
func topologyIndexOf(topos []TopologySpec, id string) int {
	for i, tp := range topos {
		if tp.ID() == id {
			return i
		}
	}
	return -1
}

// runCell probes one (topology × profile) cell: a fresh resolver with
// the profile's policy, registered on the shared network, queried over
// the wire so AD/EDE/extended-RCODE are observed exactly as a remote
// classifier would see them.
func runCell(ctx context.Context, w *World, cell int, topo TopologySpec, prof respop.Profile) (*Record, error) {
	h := w.Hierarchy
	tr := &traceRecorder{inner: h.Net}
	res := resolver.New(resolver.Config{
		Roots:       h.Roots,
		TrustAnchor: h.TrustAnchor,
		Exchanger:   tr,
		Policy:      prof.Policy,
		Now:         func() uint32 { return simNow },
	})
	addr := cellAddr(cell)
	h.Net.Register(addr, res)
	defer h.Net.Unregister(addr)

	qname, qtype := topo.Probe()
	q := dnswire.NewQuery(uint16(0x5A00)^uint16(cell), qname, qtype, true)
	resp, err := h.Net.Exchange(ctx, addr, q)
	if err != nil {
		return nil, fmt.Errorf("statewalk: cell %d (%s × %s): %w", cell, topo.ID(), prof.Policy.Name, err)
	}
	observed := Triple{
		RCode: resp.ExtendedRCode(),
		AD:    resp.Header.AuthenticatedData,
	}
	if opt, ok := resp.OPT(); ok && len(opt.EDEs) > 0 {
		observed.EDE = opt.EDEs[0].Code
	}
	expected := Expect(topo, prof.Policy)

	rec := &Record{
		Kind:     "statewalk_cell",
		Topology: topo.ID(),
		Shape:    string(topo.Shape),
		Profile:  prof.Policy.Name,
		QName:    qname.String(),
		QType:    qtype.String(),
		Expected: expected.JSON(),
		Observed: observed.JSON(),
		Trace:    tr.minimized(16),
	}
	if observed != expected {
		rec.Kind = "statewalk_divergence"
		rec.Diverged = true
		rec.Explained = Explain(topo, prof, expected, observed)
	}
	return rec, nil
}
