package dnssec

import (
	"errors"
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/dnswire"
)

const (
	testInception  = 1709251200 // 2024-03-01
	testExpiration = 1711843200 // 2024-03-31
	testNow        = 1710000000 // inside the window
)

var allAlgorithms = []dnswire.SecAlgorithm{
	dnswire.AlgECDSAP256SHA256,
	dnswire.AlgEd25519,
	dnswire.AlgRSASHA256,
}

func genKey(t testing.TB, alg dnswire.SecAlgorithm, ksk bool) *KeyPair {
	t.Helper()
	k, err := GenerateKey(alg, ksk, nil)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func sampleSet(t testing.TB) RRset {
	t.Helper()
	owner := dnswire.MustParseName("www.example.com")
	set, err := NewRRset([]dnswire.RR{
		{Name: owner, Class: dnswire.ClassIN, TTL: 300, Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}},
		{Name: owner, Class: dnswire.ClassIN, TTL: 300, Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.2")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestSignVerifyAllAlgorithms(t *testing.T) {
	zone := dnswire.MustParseName("example.com")
	set := sampleSet(t)
	for _, alg := range allAlgorithms {
		t.Run(alg.String(), func(t *testing.T) {
			if alg == dnswire.AlgRSASHA256 && testing.Short() {
				t.Skip("RSA keygen is slow")
			}
			key := genKey(t, alg, false)
			sig, err := Sign(set, key, zone, testInception, testExpiration)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyWithRRSIG(set, sig, key.DNSKEY(), zone, testNow); err != nil {
				t.Fatalf("verify: %v", err)
			}
			// Tampered RRset must fail.
			bad := set
			bad.Datas = append([]dnswire.RData(nil), set.Datas...)
			bad.Datas[0] = dnswire.A{Addr: netip.MustParseAddr("203.0.113.99")}
			if err := VerifyWithRRSIG(bad, sig, key.DNSKEY(), zone, testNow); err == nil {
				t.Fatal("tampered RRset verified")
			}
			// Tampered signature must fail.
			badSig := sig
			badSig.Signature = append([]byte(nil), sig.Signature...)
			badSig.Signature[0] ^= 0xFF
			if err := VerifyWithRRSIG(set, badSig, key.DNSKEY(), zone, testNow); err == nil {
				t.Fatal("tampered signature verified")
			}
		})
	}
}

func TestSignatureOrderIndependence(t *testing.T) {
	// Canonical ordering means the RR order at signing/verifying time
	// must not matter.
	zone := dnswire.MustParseName("example.com")
	key := genKey(t, dnswire.AlgECDSAP256SHA256, false)
	owner := dnswire.MustParseName("multi.example.com")
	rr1 := dnswire.RR{Name: owner, Class: dnswire.ClassIN, TTL: 60, Data: dnswire.TXT{Strings: []string{"bbb"}}}
	rr2 := dnswire.RR{Name: owner, Class: dnswire.ClassIN, TTL: 60, Data: dnswire.TXT{Strings: []string{"aaa"}}}
	setA, _ := NewRRset([]dnswire.RR{rr1, rr2})
	setB, _ := NewRRset([]dnswire.RR{rr2, rr1})
	sig, err := Sign(setA, key, zone, testInception, testExpiration)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyWithRRSIG(setB, sig, key.DNSKEY(), zone, testNow); err != nil {
		t.Fatalf("reordered RRset failed: %v", err)
	}
}

func TestValidityWindow(t *testing.T) {
	sig := dnswire.RRSIG{Inception: testInception, Expiration: testExpiration}
	if err := CheckValidity(sig, testNow); err != nil {
		t.Fatal(err)
	}
	if err := CheckValidity(sig, testInception-1); !errors.Is(err, ErrSigNotYetValid) {
		t.Fatalf("want ErrSigNotYetValid, got %v", err)
	}
	if err := CheckValidity(sig, testExpiration+1); !errors.Is(err, ErrSigExpired) {
		t.Fatalf("want ErrSigExpired, got %v", err)
	}
}

func TestValidityWindowSerialWraparound(t *testing.T) {
	// Window straddling the 2^32 wrap: inception near max, expiration
	// small. Serial arithmetic must keep it valid across the wrap.
	sig := dnswire.RRSIG{Inception: 0xFFFFFF00, Expiration: 0x100}
	if err := CheckValidity(sig, 0xFFFFFFF0); err != nil {
		t.Fatalf("pre-wrap: %v", err)
	}
	if err := CheckValidity(sig, 0x10); err != nil {
		t.Fatalf("post-wrap: %v", err)
	}
	if err := CheckValidity(sig, 0x80000000); err == nil {
		t.Fatal("far outside window accepted")
	}
}

func TestExpiredSignatureRejected(t *testing.T) {
	// The behaviour behind the paper's "expired" testbed subdomain.
	zone := dnswire.MustParseName("rfc9276-in-the-wild.com")
	key := genKey(t, dnswire.AlgECDSAP256SHA256, false)
	set := sampleSet(t)
	sig, err := Sign(set, key, zone, testInception-10000, testInception-100)
	if err != nil {
		t.Fatal(err)
	}
	// www.example.com is not under the signer zone; use a set inside it.
	owner := dnswire.MustParseName("expired.rfc9276-in-the-wild.com")
	set2, _ := NewRRset([]dnswire.RR{{Name: owner, Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}}})
	sig2, err := Sign(set2, key, zone, testInception-10000, testInception-100)
	if err != nil {
		t.Fatal(err)
	}
	err = VerifyWithRRSIG(set2, sig2, key.DNSKEY(), zone, testNow)
	if !errors.Is(err, ErrSigExpired) {
		t.Fatalf("want ErrSigExpired, got %v", err)
	}
	_ = sig
}

func TestWildcardExpansionSignature(t *testing.T) {
	// Sign the wildcard owner, verify against an expanded name with the
	// RRSIG Labels field mechanics of RFC 4035 §5.3.2.
	zone := dnswire.MustParseName("example.com")
	key := genKey(t, dnswire.AlgEd25519, false)
	wild := zone.Wildcard()
	set, _ := NewRRset([]dnswire.RR{{Name: wild, Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.7")}}})
	sig, err := Sign(set, key, zone, testInception, testExpiration)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Labels != 2 {
		t.Fatalf("Labels = %d, want 2", sig.Labels)
	}
	// The server expands *.example.com to q123.example.com; the RRSIG
	// travels unchanged.
	expanded := set
	expanded.Name = dnswire.MustParseName("q123.example.com")
	if err := VerifyWithRRSIG(expanded, sig, key.DNSKEY(), zone, testNow); err != nil {
		t.Fatalf("wildcard expansion failed: %v", err)
	}
	// Deeper expansions verify too.
	deeper := set
	deeper.Name = dnswire.MustParseName("a.b.example.com")
	if err := VerifyWithRRSIG(deeper, sig, key.DNSKEY(), zone, testNow); err != nil {
		t.Fatalf("deep wildcard expansion failed: %v", err)
	}
}

func TestVerifyStructuralChecks(t *testing.T) {
	zone := dnswire.MustParseName("example.com")
	key := genKey(t, dnswire.AlgECDSAP256SHA256, false)
	set := sampleSet(t)
	sig, err := Sign(set, key, zone, testInception, testExpiration)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong signer name.
	badSig := sig
	badSig.SignerName = dnswire.MustParseName("evil.com")
	if err := VerifyWithRRSIG(set, badSig, key.DNSKEY(), dnswire.MustParseName("evil.com"), testNow); err == nil {
		t.Fatal("owner outside signer zone accepted")
	}
	// Wrong key tag.
	other := genKey(t, dnswire.AlgECDSAP256SHA256, false)
	if err := VerifyWithRRSIG(set, sig, other.DNSKEY(), zone, testNow); err == nil {
		t.Fatal("verification with unrelated key accepted")
	}
	// Non-zone key.
	nzk := key.DNSKEY()
	nzk.Flags &^= dnswire.DNSKEYFlagZone
	if err := VerifyWithRRSIG(set, sig, nzk, zone, testNow); err == nil {
		t.Fatal("non-zone key accepted")
	}
	// Protocol != 3.
	badProto := key.DNSKEY()
	badProto.Protocol = 2
	if err := VerifyWithRRSIG(set, sig, badProto, zone, testNow); err == nil {
		t.Fatal("protocol 2 key accepted")
	}
}

func TestKeyTagStability(t *testing.T) {
	key := genKey(t, dnswire.AlgECDSAP256SHA256, true)
	tag1 := key.Tag()
	tag2 := KeyTag(key.DNSKEY())
	if tag1 != tag2 {
		t.Fatalf("tag mismatch %d != %d", tag1, tag2)
	}
	// KSK and ZSK flags produce different tags for the same key material.
	zskKey := key.DNSKEY()
	zskKey.Flags = dnswire.DNSKEYFlagZone
	if KeyTag(zskKey) == tag1 {
		t.Fatal("flag change did not affect tag")
	}
}

func TestDSGenerationAndVerification(t *testing.T) {
	owner := dnswire.MustParseName("child.example.com")
	key := genKey(t, dnswire.AlgECDSAP256SHA256, true)
	for _, dt := range []dnswire.DigestType{dnswire.DigestSHA1, dnswire.DigestSHA256} {
		ds, err := NewDS(owner, key.DNSKEY(), dt)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyDS(owner, key.DNSKEY(), ds); err != nil {
			t.Fatalf("digest %d: %v", dt, err)
		}
		// Wrong owner.
		if err := VerifyDS(dnswire.MustParseName("other.example.com"), key.DNSKEY(), ds); err == nil {
			t.Fatal("DS verified for wrong owner")
		}
		// Corrupted digest.
		bad := ds
		bad.Digest = append([]byte(nil), ds.Digest...)
		bad.Digest[0] ^= 1
		if err := VerifyDS(owner, key.DNSKEY(), bad); err == nil {
			t.Fatal("corrupted DS verified")
		}
	}
	if _, err := NewDS(owner, key.DNSKEY(), dnswire.DigestType(99)); err == nil {
		t.Fatal("unknown digest type accepted")
	}
}

func TestNewRRsetValidation(t *testing.T) {
	if _, err := NewRRset(nil); err == nil {
		t.Fatal("empty set accepted")
	}
	a := dnswire.RR{Name: "a.example.", Class: dnswire.ClassIN, TTL: 10,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}}
	b := dnswire.RR{Name: "b.example.", Class: dnswire.ClassIN, TTL: 10,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.2")}}
	if _, err := NewRRset([]dnswire.RR{a, b}); err == nil {
		t.Fatal("mixed owners accepted")
	}
	c := a
	c.Data = dnswire.TXT{Strings: []string{"x"}}
	if _, err := NewRRset([]dnswire.RR{a, c}); err == nil {
		t.Fatal("mixed types accepted")
	}
	// Lowest TTL wins.
	d := a
	d.TTL = 5
	set, err := NewRRset([]dnswire.RR{a, d})
	if err != nil {
		t.Fatal(err)
	}
	if set.TTL != 5 {
		t.Fatalf("TTL = %d, want 5", set.TTL)
	}
}

func TestGenerateKeyUnsupported(t *testing.T) {
	if _, err := GenerateKey(dnswire.SecAlgorithm(200), false, nil); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestPublicKeyWireRejectsGarbage(t *testing.T) {
	if _, err := ecdsaPublicFromWire(make([]byte, 63)); err == nil {
		t.Fatal("short ECDSA key accepted")
	}
	// 64 zero bytes: (0,0) is not on P-256.
	if _, err := ecdsaPublicFromWire(make([]byte, 64)); err == nil {
		t.Fatal("off-curve point accepted")
	}
	if _, err := rsaPublicFromWire([]byte{1}); err == nil {
		t.Fatal("truncated RSA key accepted")
	}
	if _, err := rsaPublicFromWire([]byte{1, 1, 0xFF}); err == nil {
		t.Fatal("RSA exponent 1 accepted")
	}
}

func TestPropSignVerifyRandomSets(t *testing.T) {
	zone := dnswire.MustParseName("prop.example")
	key := genKey(t, dnswire.AlgEd25519, false)
	f := func(label string, txts []string, ttl uint32) bool {
		if len(txts) == 0 {
			txts = []string{"x"}
		}
		for i := range txts {
			if len(txts[i]) > 200 {
				txts[i] = txts[i][:200]
			}
		}
		if len(label) == 0 || len(label) > 20 {
			label = "fallback"
		}
		owner, err := zone.Child(sanitizeLabel(label))
		if err != nil {
			return true // skip unbuildable labels
		}
		var rrs []dnswire.RR
		for _, s := range txts {
			rrs = append(rrs, dnswire.RR{Name: owner, Class: dnswire.ClassIN,
				TTL: ttl % 86400, Data: dnswire.TXT{Strings: []string{s}}})
		}
		set, err := NewRRset(rrs)
		if err != nil {
			return false
		}
		sig, err := Sign(set, key, zone, testInception, testExpiration)
		if err != nil {
			return false
		}
		return VerifyWithRRSIG(set, sig, key.DNSKEY(), zone, testNow) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func sanitizeLabel(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s) && i < 20; i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return "x"
	}
	return string(out)
}
