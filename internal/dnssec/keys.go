// Package dnssec implements the DNSSEC signing and validation
// primitives of RFCs 4033–4035: key pairs for algorithms 8 (RSA/SHA-256),
// 13 (ECDSA P-256/SHA-256), and 15 (Ed25519), the canonical RRset form,
// RRSIG generation and verification, key tags, and DS records.
//
// The zone signer and the validating resolver are both built on this
// package; the NSEC3 study depends on it because only domains that
// return DNSKEY records are considered DNSSEC-enabled in the paper's
// methodology (§4.1).
package dnssec

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/ed25519"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha1"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/dnswire"
)

// KeyPair is a DNSSEC signing key: the private key plus the DNSKEY
// record fields derived from its public half.
type KeyPair struct {
	Algorithm dnswire.SecAlgorithm
	Flags     uint16 // DNSKEYFlagZone, optionally |DNSKEYFlagSEP for a KSK
	priv      crypto.Signer
	publicKey []byte // DNSKEY Public Key field, wire format
}

// Errors from key handling.
var (
	ErrUnsupportedAlg = errors.New("dnssec: unsupported algorithm")
	ErrBadPublicKey   = errors.New("dnssec: malformed public key")
	ErrBadSignature   = errors.New("dnssec: signature verification failed")
)

// GenerateKey creates a fresh key pair for alg. ksk sets the SEP flag
// (the conventional KSK marker). rng may be nil, in which case
// crypto/rand.Reader is used; tests pass a deterministic reader.
func GenerateKey(alg dnswire.SecAlgorithm, ksk bool, rng io.Reader) (*KeyPair, error) {
	if rng == nil {
		rng = rand.Reader
	}
	flags := uint16(dnswire.DNSKEYFlagZone)
	if ksk {
		flags |= dnswire.DNSKEYFlagSEP
	}
	kp := &KeyPair{Algorithm: alg, Flags: flags}
	switch alg {
	case dnswire.AlgECDSAP256SHA256:
		priv, err := ecdsa.GenerateKey(elliptic.P256(), rng)
		if err != nil {
			return nil, err
		}
		kp.priv = priv
		kp.publicKey = ecdsaPublicWire(&priv.PublicKey)
	case dnswire.AlgEd25519:
		pub, priv, err := ed25519.GenerateKey(rng)
		if err != nil {
			return nil, err
		}
		kp.priv = priv
		kp.publicKey = append([]byte(nil), pub...)
	case dnswire.AlgRSASHA256:
		priv, err := rsa.GenerateKey(rng, 2048)
		if err != nil {
			return nil, err
		}
		kp.priv = priv
		kp.publicKey = rsaPublicWire(&priv.PublicKey)
	default:
		return nil, fmt.Errorf("%w: %s", ErrUnsupportedAlg, alg)
	}
	return kp, nil
}

// ecdsaPublicWire encodes Q = x || y, each coordinate left-padded to 32
// octets (RFC 6605 §4).
func ecdsaPublicWire(pub *ecdsa.PublicKey) []byte {
	out := make([]byte, 64)
	pub.X.FillBytes(out[:32])
	pub.Y.FillBytes(out[32:])
	return out
}

// rsaPublicWire encodes exponent-length, exponent, modulus (RFC 3110 §2).
func rsaPublicWire(pub *rsa.PublicKey) []byte {
	exp := big.NewInt(int64(pub.E)).Bytes()
	var out []byte
	if len(exp) <= 255 {
		out = append(out, byte(len(exp)))
	} else {
		out = append(out, 0)
		out = binary.BigEndian.AppendUint16(out, uint16(len(exp)))
	}
	out = append(out, exp...)
	return append(out, pub.N.Bytes()...)
}

// DNSKEY returns the public DNSKEY RDATA for the key.
func (k *KeyPair) DNSKEY() dnswire.DNSKEY {
	return dnswire.DNSKEY{
		Flags:     k.Flags,
		Protocol:  3,
		Algorithm: k.Algorithm,
		PublicKey: append([]byte(nil), k.publicKey...),
	}
}

// DNSKEYRR materializes the DNSKEY resource record at owner with ttl.
func (k *KeyPair) DNSKEYRR(owner dnswire.Name, ttl uint32) dnswire.RR {
	return dnswire.RR{Name: owner, Class: dnswire.ClassIN, TTL: ttl, Data: k.DNSKEY()}
}

// KeyTag computes the RFC 4034 Appendix B key tag over the DNSKEY RDATA.
func KeyTag(key dnswire.DNSKEY) uint16 {
	rdata := dnswire.AppendRData(nil, key)
	var acc uint32
	for i, b := range rdata {
		if i&1 == 0 {
			acc += uint32(b) << 8
		} else {
			acc += uint32(b)
		}
	}
	acc += acc >> 16 & 0xFFFF
	return uint16(acc)
}

// Tag returns the key tag of this key pair's DNSKEY.
func (k *KeyPair) Tag() uint16 { return KeyTag(k.DNSKEY()) }

// NewDS builds the DS record data for a child's DNSKEY at owner,
// digesting owner-wire || DNSKEY-RDATA (RFC 4034 §5.1.4).
func NewDS(owner dnswire.Name, key dnswire.DNSKEY, dt dnswire.DigestType) (dnswire.DS, error) {
	buf := owner.AppendWire(nil)
	buf = dnswire.AppendRData(buf, key)
	var digest []byte
	switch dt {
	case dnswire.DigestSHA1:
		d := sha1.Sum(buf)
		digest = d[:]
	case dnswire.DigestSHA256:
		d := sha256.Sum256(buf)
		digest = d[:]
	default:
		return dnswire.DS{}, fmt.Errorf("%w: digest type %d", ErrUnsupportedAlg, dt)
	}
	return dnswire.DS{
		KeyTag:     KeyTag(key),
		Algorithm:  key.Algorithm,
		DigestType: dt,
		Digest:     digest,
	}, nil
}

// VerifyDS checks that ds authenticates the DNSKEY at owner.
func VerifyDS(owner dnswire.Name, key dnswire.DNSKEY, ds dnswire.DS) error {
	if ds.KeyTag != KeyTag(key) || ds.Algorithm != key.Algorithm {
		return fmt.Errorf("dnssec: DS does not reference key %d/%s", KeyTag(key), key.Algorithm)
	}
	want, err := NewDS(owner, key, ds.DigestType)
	if err != nil {
		return err
	}
	if len(want.Digest) != len(ds.Digest) {
		return errors.New("dnssec: DS digest length mismatch")
	}
	for i := range want.Digest {
		if want.Digest[i] != ds.Digest[i] {
			return errors.New("dnssec: DS digest mismatch")
		}
	}
	return nil
}
