package dnssec

import (
	"bytes"
	"crypto"
	"crypto/ecdsa"
	"crypto/ed25519"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
	"sort"

	"repro/internal/dnswire"
)

// RRset is a group of records sharing owner, class, and type — the unit
// DNSSEC signs.
type RRset struct {
	Name  dnswire.Name
	Class dnswire.Class
	TTL   uint32
	Datas []dnswire.RData // all of the same Type
}

// NewRRset groups rrs (which must share name/class/type) into an RRset.
func NewRRset(rrs []dnswire.RR) (RRset, error) {
	if len(rrs) == 0 {
		return RRset{}, errors.New("dnssec: empty RRset")
	}
	set := RRset{Name: rrs[0].Name, Class: rrs[0].Class, TTL: rrs[0].TTL}
	t := rrs[0].Type()
	for _, rr := range rrs {
		if rr.Name != set.Name || rr.Class != set.Class || rr.Type() != t {
			return RRset{}, fmt.Errorf("dnssec: mixed RRset (%s/%s vs %s/%s)",
				rr.Name, rr.Type(), set.Name, t)
		}
		if rr.TTL < set.TTL {
			set.TTL = rr.TTL // RFC 2181 §5.2: use the lowest TTL
		}
		set.Datas = append(set.Datas, rr.Data)
	}
	return set, nil
}

// Type returns the RRset's record type.
func (s RRset) Type() dnswire.Type { return s.Datas[0].Type() }

// RRs materializes the set back into resource records.
func (s RRset) RRs() []dnswire.RR {
	out := make([]dnswire.RR, len(s.Datas))
	for i, d := range s.Datas {
		out[i] = dnswire.RR{Name: s.Name, Class: s.Class, TTL: s.TTL, Data: d}
	}
	return out
}

// canonicalOwner returns the owner name used in canonical form: if the
// RRSIG Labels field is smaller than the owner's label count, the name
// was synthesized from a wildcard and the canonical owner is
// "*.<last Labels labels>" (RFC 4035 §5.3.2).
func canonicalOwner(owner dnswire.Name, rrsigLabels uint8) (dnswire.Name, error) {
	labels := owner.Labels()
	if int(rrsigLabels) > len(labels) {
		return "", fmt.Errorf("dnssec: RRSIG labels %d exceeds owner %s", rrsigLabels, owner)
	}
	if int(rrsigLabels) == len(labels) {
		return owner, nil
	}
	suffix := labels[len(labels)-int(rrsigLabels):]
	return dnswire.FromLabels(append([]string{"*"}, suffix...)...)
}

// appendCanonicalRRset appends the canonical wire form of the RRset as
// covered by sig: each record as owner|type|class|OrigTTL|rdlen|rdata,
// records sorted by canonical RDATA (RFC 4034 §6.3).
func appendCanonicalRRset(dst []byte, set RRset, sig dnswire.RRSIG) ([]byte, error) {
	owner, err := canonicalOwner(set.Name, sig.Labels)
	if err != nil {
		return nil, err
	}
	rdatas := make([][]byte, len(set.Datas))
	for i, d := range set.Datas {
		rdatas[i] = dnswire.AppendRData(nil, d)
	}
	sort.Slice(rdatas, func(i, j int) bool { return bytes.Compare(rdatas[i], rdatas[j]) < 0 })
	// Duplicate RDATAs must be counted once (RFC 4034 §6.3).
	rdatas = dedupBytes(rdatas)
	ownerWire := owner.AppendWire(nil)
	for _, rd := range rdatas {
		dst = append(dst, ownerWire...)
		dst = append(dst, byte(set.Type()>>8), byte(set.Type()))
		dst = append(dst, byte(set.Class>>8), byte(set.Class))
		dst = append(dst, byte(sig.OrigTTL>>24), byte(sig.OrigTTL>>16), byte(sig.OrigTTL>>8), byte(sig.OrigTTL))
		dst = append(dst, byte(len(rd)>>8), byte(len(rd)))
		dst = append(dst, rd...)
	}
	return dst, nil
}

func dedupBytes(in [][]byte) [][]byte {
	out := in[:0]
	for i, b := range in {
		if i > 0 && bytes.Equal(in[i-1], b) {
			continue
		}
		out = append(out, b)
	}
	return out
}

// ownerLabelCount returns the RRSIG Labels value for an owner: the
// label count excluding a leading wildcard label (RFC 4034 §3.1.3).
func ownerLabelCount(owner dnswire.Name) uint8 {
	labels := owner.Labels()
	n := len(labels)
	if n > 0 && labels[0] == "*" {
		n--
	}
	return uint8(n)
}

// Sign produces an RRSIG over set using key, valid from inception to
// expiration (Unix seconds, serial arithmetic). The signer name is the
// zone apex the key belongs to.
func Sign(set RRset, key *KeyPair, signer dnswire.Name, inception, expiration uint32) (dnswire.RRSIG, error) {
	sig := dnswire.RRSIG{
		TypeCovered: set.Type(),
		Algorithm:   key.Algorithm,
		Labels:      ownerLabelCount(set.Name),
		OrigTTL:     set.TTL,
		Expiration:  expiration,
		Inception:   inception,
		KeyTag:      key.Tag(),
		SignerName:  signer,
	}
	msg := sig.AppendSignedPart(nil)
	msg, err := appendCanonicalRRset(msg, set, sig)
	if err != nil {
		return dnswire.RRSIG{}, err
	}
	digest := sha256.Sum256(msg)
	switch key.Algorithm {
	case dnswire.AlgECDSAP256SHA256:
		priv := key.priv.(*ecdsa.PrivateKey)
		r, s, err := ecdsa.Sign(rand.Reader, priv, digest[:])
		if err != nil {
			return dnswire.RRSIG{}, err
		}
		out := make([]byte, 64)
		r.FillBytes(out[:32])
		s.FillBytes(out[32:])
		sig.Signature = out
	case dnswire.AlgEd25519:
		// Ed25519 signs the message itself, not a digest (RFC 8080 §4).
		sig.Signature = ed25519.Sign(key.priv.(ed25519.PrivateKey), msg)
	case dnswire.AlgRSASHA256:
		priv := key.priv.(*rsa.PrivateKey)
		s, err := rsa.SignPKCS1v15(nil, priv, crypto.SHA256, digest[:])
		if err != nil {
			return dnswire.RRSIG{}, err
		}
		sig.Signature = s
	default:
		return dnswire.RRSIG{}, fmt.Errorf("%w: %s", ErrUnsupportedAlg, key.Algorithm)
	}
	return sig, nil
}

// SignRR is a convenience that signs the RRset formed by rrs and
// returns the RRSIG as a resource record.
func SignRR(rrs []dnswire.RR, key *KeyPair, signer dnswire.Name, inception, expiration uint32) (dnswire.RR, error) {
	set, err := NewRRset(rrs)
	if err != nil {
		return dnswire.RR{}, err
	}
	sig, err := Sign(set, key, signer, inception, expiration)
	if err != nil {
		return dnswire.RR{}, err
	}
	return dnswire.RR{Name: set.Name, Class: set.Class, TTL: set.TTL, Data: sig}, nil
}

// Validity errors, distinguished so the resolver can map them to the
// right observable behaviour (expired signatures are what the paper's
// "expired" and "it-2501-expired" subdomains exercise).
var (
	ErrSigExpired     = errors.New("dnssec: signature expired")
	ErrSigNotYetValid = errors.New("dnssec: signature not yet valid")
	ErrSigMismatch    = errors.New("dnssec: RRSIG does not match RRset")
)

// serialLTE compares 32-bit serial-arithmetic timestamps (RFC 1982):
// a <= b when the signed distance is non-negative.
func serialLTE(a, b uint32) bool { return int32(b-a) >= 0 }

// CheckValidity verifies the RRSIG temporal window at time now
// (Unix seconds).
func CheckValidity(sig dnswire.RRSIG, now uint32) error {
	if !serialLTE(sig.Inception, now) {
		return fmt.Errorf("%w: inception %d, now %d", ErrSigNotYetValid, sig.Inception, now)
	}
	if !serialLTE(now, sig.Expiration) {
		return fmt.Errorf("%w: expiration %d, now %d", ErrSigExpired, sig.Expiration, now)
	}
	return nil
}

// Verify checks sig over set with the given public key. The caller is
// responsible for temporal validity (CheckValidity) and for checking
// that the key is a zone key whose tag and algorithm match the RRSIG —
// VerifyWithRRSIG bundles all of it.
func Verify(set RRset, sig dnswire.RRSIG, key dnswire.DNSKEY) error {
	if sig.TypeCovered != set.Type() {
		return fmt.Errorf("%w: covers %s, set is %s", ErrSigMismatch, sig.TypeCovered, set.Type())
	}
	msg := sig.AppendSignedPart(nil)
	msg, err := appendCanonicalRRset(msg, set, sig)
	if err != nil {
		return err
	}
	digest := sha256.Sum256(msg)
	switch key.Algorithm {
	case dnswire.AlgECDSAP256SHA256:
		pub, err := ecdsaPublicFromWire(key.PublicKey)
		if err != nil {
			return err
		}
		if len(sig.Signature) != 64 {
			return fmt.Errorf("%w: ECDSA signature length %d", ErrBadSignature, len(sig.Signature))
		}
		r := new(big.Int).SetBytes(sig.Signature[:32])
		s := new(big.Int).SetBytes(sig.Signature[32:])
		if !ecdsa.Verify(pub, digest[:], r, s) {
			return ErrBadSignature
		}
	case dnswire.AlgEd25519:
		if len(key.PublicKey) != ed25519.PublicKeySize {
			return fmt.Errorf("%w: Ed25519 key length %d", ErrBadPublicKey, len(key.PublicKey))
		}
		if !ed25519.Verify(ed25519.PublicKey(key.PublicKey), msg, sig.Signature) {
			return ErrBadSignature
		}
	case dnswire.AlgRSASHA256:
		pub, err := rsaPublicFromWire(key.PublicKey)
		if err != nil {
			return err
		}
		if err := rsa.VerifyPKCS1v15(pub, crypto.SHA256, digest[:], sig.Signature); err != nil {
			return ErrBadSignature
		}
	default:
		return fmt.Errorf("%w: %s", ErrUnsupportedAlg, key.Algorithm)
	}
	return nil
}

// VerifyWithRRSIG performs the complete RFC 4035 §5.3 check of one
// RRSIG against one candidate DNSKEY: structural match (tag, algorithm,
// signer, zone-key flag, labels), temporal validity at now, and the
// cryptographic signature.
func VerifyWithRRSIG(set RRset, sig dnswire.RRSIG, key dnswire.DNSKEY, signer dnswire.Name, now uint32) error {
	if !key.IsZoneKey() {
		return errors.New("dnssec: DNSKEY is not a zone key")
	}
	if key.Protocol != 3 {
		return errors.New("dnssec: DNSKEY protocol is not 3")
	}
	if sig.Algorithm != key.Algorithm {
		return fmt.Errorf("%w: algorithm", ErrSigMismatch)
	}
	if sig.KeyTag != KeyTag(key) {
		return fmt.Errorf("%w: key tag", ErrSigMismatch)
	}
	if sig.SignerName != signer {
		return fmt.Errorf("%w: signer %s, zone %s", ErrSigMismatch, sig.SignerName, signer)
	}
	if !set.Name.IsSubdomainOf(signer) {
		return fmt.Errorf("%w: owner %s outside zone %s", ErrSigMismatch, set.Name, signer)
	}
	if int(sig.Labels) > set.Name.CountLabels() {
		return fmt.Errorf("%w: labels field", ErrSigMismatch)
	}
	if err := CheckValidity(sig, now); err != nil {
		return err
	}
	return Verify(set, sig, key)
}

func ecdsaPublicFromWire(w []byte) (*ecdsa.PublicKey, error) {
	if len(w) != 64 {
		return nil, fmt.Errorf("%w: ECDSA P-256 key length %d", ErrBadPublicKey, len(w))
	}
	x := new(big.Int).SetBytes(w[:32])
	y := new(big.Int).SetBytes(w[32:])
	pub := &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}
	if !pub.Curve.IsOnCurve(x, y) {
		return nil, fmt.Errorf("%w: point not on curve", ErrBadPublicKey)
	}
	return pub, nil
}

func rsaPublicFromWire(w []byte) (*rsa.PublicKey, error) {
	if len(w) < 3 {
		return nil, fmt.Errorf("%w: RSA key too short", ErrBadPublicKey)
	}
	expLen := int(w[0])
	off := 1
	if expLen == 0 {
		if len(w) < 3 {
			return nil, ErrBadPublicKey
		}
		expLen = int(w[1])<<8 | int(w[2])
		off = 3
	}
	if len(w) < off+expLen+1 {
		return nil, fmt.Errorf("%w: RSA exponent overruns key", ErrBadPublicKey)
	}
	exp := new(big.Int).SetBytes(w[off : off+expLen])
	if !exp.IsInt64() || exp.Int64() > 1<<31 || exp.Int64() < 3 {
		return nil, fmt.Errorf("%w: RSA exponent out of range", ErrBadPublicKey)
	}
	mod := new(big.Int).SetBytes(w[off+expLen:])
	return &rsa.PublicKey{N: mod, E: int(exp.Int64())}, nil
}
