package core

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/compliance"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/respop"
	"repro/internal/scanner"
)

// TestSurveyEndToEnd runs the full §4.1 pipeline at a small scale and
// checks the §5.1 shapes against the paper with generous tolerances
// (the universe is sampled, so small-n noise is expected).
func TestSurveyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end survey is slow")
	}
	report, err := RunSurvey(context.Background(), SurveyConfig{
		Registered: 4000,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.ScanErrors > 0 {
		t.Fatalf("%d scan errors", report.ScanErrors)
	}
	agg := report.Agg
	if agg.Total != 4000 {
		t.Fatalf("scanned %d domains", agg.Total)
	}
	// DNSSEC-enabled ≈ 8.8 %.
	dnssecPct := compliance.Pct(agg.DNSSECEnabled, agg.Total)
	if dnssecPct < 6 || dnssecPct > 12 {
		t.Errorf("DNSSEC-enabled %.1f %%, paper 8.8 %%", dnssecPct)
	}
	// NSEC3-enabled ≈ 58.9 % of DNSSEC-enabled.
	nsec3Pct := compliance.Pct(agg.NSEC3Enabled, agg.DNSSECEnabled)
	if nsec3Pct < 45 || nsec3Pct > 72 {
		t.Errorf("NSEC3 share %.1f %%, paper 58.9 %%", nsec3Pct)
	}
	// Item 2 (zero iterations) ≈ 12.2 % of NSEC3-enabled — i.e. 87.8 %
	// non-compliant, the headline result.
	zeroPct := compliance.Pct(agg.Item2OK, agg.NSEC3Enabled)
	if zeroPct < 6 || zeroPct > 20 {
		t.Errorf("zero-iteration share %.1f %%, paper 12.2 %%", zeroPct)
	}
	// Item 3 (no salt) ≈ 8.6 %.
	noSaltPct := compliance.Pct(agg.Item3OK, agg.NSEC3Enabled)
	if noSaltPct < 4 || noSaltPct > 16 {
		t.Errorf("no-salt share %.1f %%, paper 8.6 %%", noSaltPct)
	}
	// Figure 1 shape: ≥99 % of NSEC3-enabled domains at ≤25 iterations,
	// observed maximum 500 (injected specimens survive any scale).
	if report.IterCDF.At(25) < 0.98 {
		t.Errorf("CDF(25) = %.4f, paper 0.999", report.IterCDF.At(25))
	}
	if report.IterCDF.Max() != 500 {
		t.Errorf("max iterations %d, paper 500", report.IterCDF.Max())
	}
	if report.SaltCDF.Max() != 160 {
		t.Errorf("max salt %d, paper 160", report.SaltCDF.Max())
	}
	if report.SaltCDF.At(10) < 0.90 {
		t.Errorf("salt CDF(10) = %.4f, paper 0.972", report.SaltCDF.At(10))
	}
	// Opt-out ≈ 6.4 %.
	optPct := compliance.Pct(agg.OptOut, agg.NSEC3Enabled)
	if optPct < 2 || optPct > 12 {
		t.Errorf("opt-out share %.1f %%, paper 6.4 %%", optPct)
	}
	// Table 2: the largest operator is Squarespace at ≈39.4 %.
	rows := report.Operators.Top(10)
	if len(rows) < 10 {
		t.Fatalf("only %d operator rows", len(rows))
	}
	if rows[0].Operator != "squarespace-dns.com" {
		t.Errorf("top operator %s, paper Squarespace", rows[0].Operator)
	}
	if rows[0].Share < 30 || rows[0].Share > 50 {
		t.Errorf("top operator share %.1f %%, paper 39.4 %%", rows[0].Share)
	}
	// TLD registry scanned end-to-end: exact §5.1 registry numbers.
	if report.TLDs.Total != population.TotalTLDs {
		t.Fatalf("scanned %d TLDs", report.TLDs.Total)
	}
	if report.TLDs.DNSSECEnabled != population.DNSSECTLDs {
		t.Errorf("TLD DNSSEC %d, paper 1354", report.TLDs.DNSSECEnabled)
	}
	if report.TLDs.NSEC3Enabled != population.NSEC3TLDs {
		t.Errorf("TLD NSEC3 %d, paper 1302", report.TLDs.NSEC3Enabled)
	}
	if report.TLDs.Item2OK != population.ZeroIterTLDs {
		t.Errorf("TLD zero-iteration %d, paper 688", report.TLDs.Item2OK)
	}
	if got := report.TLDs.IterationsHist[100]; got != population.IdentityDigital {
		t.Errorf("TLDs at 100 iterations %d, paper 447", got)
	}
	// Registered domains under Identity Digital TLDs exist (the
	// ≥12.6 M lower-bound estimate).
	if report.DomainsUnderIDTLDs == 0 {
		t.Error("no domains under Identity Digital TLDs")
	}
}

// TestSurveyShardEquivalence is the golden test of the streaming
// refactor: RunSurvey with Shards=1 and Shards=3 at the same seed must
// produce byte-identical aggregates — Figure 1 CDFs, Table 2 operator
// stats, and the §5.1 TLD numbers all included.
func TestSurveyShardEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end survey is slow")
	}
	run := func(shards int) *SurveyReport {
		t.Helper()
		report, err := RunSurvey(context.Background(), SurveyConfig{
			Registered: 900,
			Seed:       5,
			Shards:     shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		return report
	}
	whole := run(1)
	sharded := run(3)
	if !reflect.DeepEqual(whole, sharded) {
		t.Errorf("sharded report differs from unsharded:\nwhole:   %+v\nsharded: %+v", whole, sharded)
	}
	// Belt and braces: the rendered deliverables must match byte for
	// byte (this is what the paper's figures and tables are built from).
	render := func(r *SurveyReport) string {
		var sb strings.Builder
		analysis.RenderCDF(&sb, "iterations", r.IterCDF, []int{0, 1, 5, 10, 25, 50, 100, 150, 500})
		analysis.RenderCDF(&sb, "salt", r.SaltCDF, []int{0, 1, 4, 8, 10, 40, 45, 160})
		analysis.RenderOperatorTable(&sb, r.Operators.Top(10))
		return sb.String()
	}
	if a, b := render(whole), render(sharded); a != b {
		t.Errorf("rendered outputs differ:\n--- shards=1\n%s\n--- shards=3\n%s", a, b)
	}
	if whole.Agg.Total != 900 || sharded.Agg.Total != 900 {
		t.Fatalf("totals %d/%d, want 900", whole.Agg.Total, sharded.Agg.Total)
	}
}

// TestSurveyMetricsShardMerge is the observability counterpart of
// TestSurveyShardEquivalence: the order-independent counters must be
// identical between an unsharded and a sharded run of the same
// universe, and the sign cache must show reuse across shards.
func TestSurveyMetricsShardMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end survey is slow")
	}
	run := func(shards int) *obs.Registry {
		t.Helper()
		reg := obs.NewRegistry()
		report, err := RunSurvey(context.Background(), SurveyConfig{
			Registered: 600,
			Seed:       5,
			Shards:     shards,
			Obs:        reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if report.ScanErrors > 0 {
			t.Fatalf("shards=%d: %d scan errors", shards, report.ScanErrors)
		}
		return reg
	}
	whole := run(1)
	sharded := run(3)
	counter := func(reg *obs.Registry, name string) uint64 {
		return reg.Counter(name, "").Value()
	}
	for _, name := range []string{
		"survey_domains_scanned_total",
		"survey_nsec3_iteration_work_total",
		"scanner_queries_total",
	} {
		w, s := counter(whole, name), counter(sharded, name)
		if w != s {
			t.Errorf("%s: shards=1 %d vs shards=3 %d", name, w, s)
		}
		if w == 0 {
			t.Errorf("%s never incremented", name)
		}
	}
	if got := counter(whole, "survey_domains_scanned_total"); got != 600 {
		t.Errorf("survey_domains_scanned_total %d, want 600", got)
	}
	// A single deployment signs everything fresh; three deployments
	// reuse the shard-independent zones (root, operator infra, empty
	// TLDs) from the sign cache.
	if counter(whole, "survey_zones_reused_total") != 0 {
		t.Error("unsharded run should not reuse zones")
	}
	if counter(sharded, "survey_zones_reused_total") == 0 {
		t.Error("sharded run never hit the sign cache")
	}
	// Upstream work happened and the throughput gauge moved.
	if counter(whole, "resolver_upstream_queries_total") == 0 {
		t.Error("resolver_upstream_queries_total never incremented")
	}
	if whole.Gauge("survey_domains_per_second", "").Value() <= 0 {
		t.Error("survey_domains_per_second gauge not set")
	}
}

// TestSurveyTraceSpans checks the tracer emits one generate/deploy/
// scan/merge span per shard over the scanner's NDJSON encoder.
func TestSurveyTraceSpans(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end survey is slow")
	}
	var buf strings.Builder
	enc := scanner.NewEncoder(&buf)
	_, err := RunSurvey(context.Background(), SurveyConfig{
		Registered: 300,
		Seed:       5,
		Shards:     2,
		Trace:      obs.NewTracer(enc),
	})
	if err != nil {
		t.Fatal(err)
	}
	type span struct {
		Span  string `json:"span"`
		Shard int    `json:"shard"`
	}
	got := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var sp span
		if err := json.Unmarshal([]byte(line), &sp); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		got[sp.Span]++
	}
	// generate runs once per cursor call including the exhausted one.
	if got["generate"] < 2 || got["deploy"] != 2 || got["scan"] != 2 || got["merge"] != 2 {
		t.Errorf("span counts: %v", got)
	}
}

// TestResolverStudyEndToEnd runs the §4.2 pipeline with a scaled fleet
// and checks the §5.2 shapes.
func TestResolverStudyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end resolver study is slow")
	}
	report, err := RunResolverStudy(context.Background(), ResolverStudyConfig{
		ScaleDen: 1000, // ≈105 open IPv4 + 50/50/50
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Overall.Probed == 0 || report.Overall.Validators == 0 {
		t.Fatalf("probed=%d validators=%d", report.Overall.Probed, report.Overall.Validators)
	}
	// All deployed resolvers are validators or non-validating per the
	// mix; every policy in the mix validates except NonValidating
	// (absent from quadrant mixes), so expect ≈100 % validators here.
	if report.Overall.Validators < report.Overall.Probed*9/10 {
		t.Errorf("validators %d of %d", report.Overall.Validators, report.Overall.Probed)
	}
	v := report.Overall.Validators
	item6 := compliance.Pct(report.Overall.Item6, v)
	if item6 < 40 || item6 > 85 {
		t.Errorf("Item 6 share %.1f %%, paper 59.9 %%", item6)
	}
	item8 := compliance.Pct(report.Overall.Item8, v)
	if item8 < 8 || item8 > 35 {
		t.Errorf("Item 8 share %.1f %%, paper 18.4 %%", item8)
	}
	// The dominant insecure limit is 150; 100 (Google) is common;
	// 50 (patched) much rarer than 150.
	if report.Overall.InsecureLimits[150] == 0 {
		t.Error("no validators with the 150 limit")
	}
	if report.Overall.InsecureLimits[100] == 0 {
		t.Error("no validators with the 100 limit (Google-like)")
	}
	if report.Overall.InsecureLimits[50] >= report.Overall.InsecureLimits[150] {
		t.Errorf("50-limit (%d) should be much rarer than 150-limit (%d)",
			report.Overall.InsecureLimits[50], report.Overall.InsecureLimits[150])
	}
	// SERVFAILs mostly start at 151.
	if report.Overall.ServfailFroms[151] == 0 {
		t.Error("no SERVFAIL-from-151 validators")
	}
	// Figure 3, open IPv4: at low N nearly all validators return
	// NXDOMAIN with AD; above 150 the AD share collapses and SERVFAIL
	// rises.
	s := report.Series[respop.OpenIPv4]
	if s == nil || len(s.Points()) == 0 {
		t.Fatal("no open IPv4 series")
	}
	p1, _ := s.At(1)
	if p1.ADNXDOMAIN < 60 {
		t.Errorf("it-1 AD+NXDOMAIN %.1f %%, expect high", p1.ADNXDOMAIN)
	}
	p150, _ := s.At(150)
	p151, _ := s.At(151)
	if !(p151.ADNXDOMAIN < p150.ADNXDOMAIN) {
		t.Errorf("AD share did not drop at 151: %.1f -> %.1f", p150.ADNXDOMAIN, p151.ADNXDOMAIN)
	}
	if !(p151.SERVFAIL > p150.SERVFAIL) {
		t.Errorf("SERVFAIL did not rise at 151: %.1f -> %.1f", p150.SERVFAIL, p151.SERVFAIL)
	}
	p500, _ := s.At(500)
	if p500.ADNXDOMAIN > 10 {
		t.Errorf("it-500 AD share %.1f %%, expect near zero", p500.ADNXDOMAIN)
	}
	// Google-like drop at 101 exists in open IPv4.
	p100, _ := s.At(100)
	p101, _ := s.At(101)
	if !(p101.ADNXDOMAIN < p100.ADNXDOMAIN) {
		t.Errorf("AD share did not drop at 101: %.1f -> %.1f", p100.ADNXDOMAIN, p101.ADNXDOMAIN)
	}
	// Closed quadrants exist and have validators.
	for _, q := range []respop.Quadrant{respop.ClosedIPv4, respop.ClosedIPv6} {
		if report.Series[q] == nil || report.Series[q].Validators == 0 {
			t.Errorf("quadrant %s empty", q)
		}
	}
	// Item 7 violations and three-phase boxes are rare but present.
	if report.Overall.Item7Violations == 0 {
		t.Error("no Item 7 violators in fleet")
	}
	if report.Overall.ThreePhase == 0 {
		t.Error("no three-phase boxes in fleet")
	}
	// Closed-resolver transcripts carry no EDE (Atlas strips them), so
	// EDE stats come from open resolvers only; some must exist.
	if report.Overall.EDE27 == 0 {
		t.Error("no EDE 27 observed among open validators")
	}
}

// TestResolverStudyCancelled pins the fix for the goleak finding in
// the open-resolver worker pool: a worker waiting for a semaphore slot
// watches ctx, so a cancelled study drains its pool and returns
// instead of parking goroutines on the send forever.
func TestResolverStudyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan struct{})
	var report *ResolverStudyReport
	var err error
	go func() {
		defer close(done)
		report, err = RunResolverStudy(ctx, ResolverStudyConfig{
			ScaleDen: 2000,
			Seed:     1,
			Workers:  2,
		})
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("RunResolverStudy did not return under a cancelled context")
	}
	if err != nil {
		return // an error return is a valid way to honor cancellation
	}
	if report == nil {
		t.Fatal("nil report without error")
	}
}

// TestResolverStudyShardEquivalence is the Figure 3 twin of
// TestSurveyShardEquivalence: the study with Shards=1 and Shards=3 at
// the same seed must produce byte-identical reports, the
// order-independent obs counters must match, and — because transcripts
// are now collected by fleet index, not goroutine completion order — a
// repeated sharded run must reproduce its report exactly.
func TestResolverStudyShardEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end resolver study is slow")
	}
	run := func(shards int) (*ResolverStudyReport, *obs.Registry) {
		t.Helper()
		reg := obs.NewRegistry()
		report, err := RunResolverStudy(context.Background(), ResolverStudyConfig{
			ScaleDen: 2000, // 52 + 50 + 50 + 50 resolvers
			Seed:     5,
			Shards:   shards,
			Obs:      reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return report, reg
	}
	whole, wreg := run(1)
	sharded, sreg := run(3)
	if !reflect.DeepEqual(whole, sharded) {
		t.Errorf("sharded report differs from unsharded:\nwhole:   %+v\nsharded: %+v", whole, sharded)
	}
	// Belt and braces: the rendered deliverables must match byte for
	// byte (this is what the Figure 3 subfigures are printed from).
	render := func(r *ResolverStudyReport) string {
		var sb strings.Builder
		for _, q := range respop.Quadrants() {
			if s := r.Series[q]; s != nil {
				analysis.RenderRCodeSeries(&sb, s)
				analysis.SparkRender(&sb, s)
			}
		}
		return sb.String()
	}
	if a, b := render(whole), render(sharded); a != b {
		t.Errorf("rendered outputs differ:\n--- shards=1\n%s\n--- shards=3\n%s", a, b)
	}
	if whole.ProbeFailures != 0 || sharded.ProbeFailures != 0 {
		t.Errorf("probe failures %d/%d, want 0", whole.ProbeFailures, sharded.ProbeFailures)
	}

	// Observability counterpart: order-independent counters equal.
	counter := func(reg *obs.Registry, name string) uint64 {
		return reg.Counter(name, "").Value()
	}
	for _, name := range []string{
		"resolverstudy_probed_open_ipv4_total",
		"resolverstudy_probed_open_ipv6_total",
		"resolverstudy_probed_closed_ipv4_total",
		"resolverstudy_probed_closed_ipv6_total",
		"resolverstudy_zones_signed_total",
	} {
		w, s := counter(wreg, name), counter(sreg, name)
		if w != s {
			t.Errorf("%s: shards=1 %d vs shards=3 %d", name, w, s)
		}
		if w == 0 {
			t.Errorf("%s never incremented", name)
		}
	}
	if got := counter(wreg, "resolverstudy_probe_failures_total"); got != 0 {
		t.Errorf("resolverstudy_probe_failures_total %d, want 0", got)
	}
	if got := counter(sreg, "resolverstudy_shards_completed_total"); got != 3 {
		t.Errorf("resolverstudy_shards_completed_total %d, want 3", got)
	}
	// A single world signs everything fresh; three shard worlds reuse
	// the shared testbed zones from the sign cache.
	if counter(wreg, "resolverstudy_zones_reused_total") != 0 {
		t.Error("unsharded study should not reuse zones")
	}
	if counter(sreg, "resolverstudy_zones_reused_total") == 0 {
		t.Error("sharded study never hit the sign cache")
	}

	// Determinism pin for the ordering fix: the same sharded run twice
	// is bit-for-bit reproducible.
	again, _ := run(3)
	if !reflect.DeepEqual(sharded, again) {
		t.Error("repeated sharded run differs — transcript ordering is nondeterministic")
	}
}
