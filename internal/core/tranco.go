package core

import (
	"context"
	"sync"

	"repro/internal/analysis"
	"repro/internal/compliance"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/population"
	"repro/internal/scanner"
)

// TrancoConfig sizes the Figure 2 popularity study.
type TrancoConfig struct {
	// ListSize is the ranked list length (paper: 1 M; default 1:100 =
	// 10,000).
	ListSize int
	Seed     uint64
	Workers  int
}

// TrancoReport is the Figure 2 output: how popular domains fare
// against Items 2 and 3.
type TrancoReport struct {
	ListSize      int
	DNSSECEnabled int
	NSEC3Enabled  int
	ZeroIter      int // Item 2 compliant among NSEC3-enabled
	NoSalt        int // Item 3 compliant
	Both          int
	// NSEC3Ranks are the popularity ranks of NSEC3-enabled domains —
	// Figure 2's x-axis (the paper's CDF rises uniformly).
	NSEC3Ranks []int
	// RankCDF is the CDF over those ranks.
	RankCDF *analysis.CDF
	// ScanErrors counts failed scans.
	ScanErrors int
}

// RunTrancoStudy deploys a ranked universe whose marginals match the
// paper's Tranco measurements and scans it end-to-end.
func RunTrancoStudy(ctx context.Context, cfg TrancoConfig) (*TrancoReport, error) {
	if cfg.ListSize == 0 {
		cfg.ListSize = 10000
	}
	if cfg.Workers == 0 {
		cfg.Workers = 64
	}
	// A dedicated universe where every domain is ranked: the ranked
	// marginals then drive all parameters.
	u, err := population.Generate(population.Config{
		Registered: cfg.ListSize,
		Seed:       cfg.Seed + 0x7714,
		RankedSize: cfg.ListSize,
	})
	if err != nil {
		return nil, err
	}
	dep, err := population.Deploy(u, netsim.NewNetwork(cfg.Seed+2), DefaultInception, DefaultExpiration)
	if err != nil {
		return nil, err
	}
	resolverAddr, err := installScanResolver(dep.Hierarchy)
	if err != nil {
		return nil, err
	}
	sc := scanner.New(scanner.Config{
		Exchanger: dep.Hierarchy.Net,
		Resolver:  resolverAddr,
		Workers:   cfg.Workers,
		Seed:      cfg.Seed + 3,
	})

	rankByName := make(map[dnswire.Name]int, len(u.Domains))
	names := make([]dnswire.Name, len(u.Domains))
	for i := range u.Domains {
		names[i] = u.Domains[i].Name
		rankByName[u.Domains[i].Name] = u.Domains[i].Rank
	}

	report := &TrancoReport{ListSize: cfg.ListSize}
	var mu sync.Mutex
	err = sc.ScanAll(ctx, names, func(r scanner.Result) {
		mu.Lock()
		defer mu.Unlock()
		if r.Err != nil {
			report.ScanErrors++
			return
		}
		c := compliance.Classify(r.Facts)
		if c.DNSSECEnabled {
			report.DNSSECEnabled++
		}
		if !c.NSEC3Enabled {
			return
		}
		report.NSEC3Enabled++
		report.NSEC3Ranks = append(report.NSEC3Ranks, rankByName[r.Facts.Domain])
		if c.Item2OK {
			report.ZeroIter++
		}
		if c.Item3OK {
			report.NoSalt++
		}
		if c.BothOK {
			report.Both++
		}
	})
	if err != nil {
		return nil, err
	}
	rankHist := make(map[int]int, len(report.NSEC3Ranks))
	for _, r := range report.NSEC3Ranks {
		rankHist[r]++
	}
	report.RankCDF = analysis.CDFFromHist(rankHist)
	return report, nil
}
