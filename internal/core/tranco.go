package core

import (
	"context"
	"sort"

	"repro/internal/analysis"
	"repro/internal/compliance"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/population"
	"repro/internal/scanner"
)

// TrancoConfig sizes the Figure 2 popularity study.
type TrancoConfig struct {
	// ListSize is the ranked list length (paper: 1 M; default 1:100 =
	// 10,000).
	ListSize int
	Seed     uint64
	Workers  int
}

// TrancoReport is the Figure 2 output: how popular domains fare
// against Items 2 and 3.
type TrancoReport struct {
	ListSize      int
	DNSSECEnabled int
	NSEC3Enabled  int
	ZeroIter      int // Item 2 compliant among NSEC3-enabled
	NoSalt        int // Item 3 compliant
	Both          int
	// NSEC3Ranks are the popularity ranks of NSEC3-enabled domains —
	// Figure 2's x-axis (the paper's CDF rises uniformly). Sorted
	// ascending, so the slice is deterministic across runs.
	NSEC3Ranks []int
	// RankCDF is the CDF over those ranks.
	RankCDF *analysis.CDF
	// ScanErrors counts failed scans.
	ScanErrors int
}

// RunTrancoStudy deploys a ranked universe whose marginals match the
// paper's Tranco measurements and scans it end-to-end.
func RunTrancoStudy(ctx context.Context, cfg TrancoConfig) (*TrancoReport, error) {
	if cfg.ListSize == 0 {
		cfg.ListSize = 10000
	}
	if cfg.Workers == 0 {
		cfg.Workers = 64
	}
	// A dedicated universe where every domain is ranked: the ranked
	// marginals then drive all parameters.
	u, err := population.Generate(population.Config{
		Registered: cfg.ListSize,
		Seed:       cfg.Seed + 0x7714,
		RankedSize: cfg.ListSize,
	})
	if err != nil {
		return nil, err
	}
	// Lazy signing: the ranked scan touches every domain zone but only
	// the TLDs those domains live under, so the rest of the 1,449-zone
	// registry never signs.
	dep, err := population.Deploy(u, netsim.NewNetwork(cfg.Seed+2), DefaultInception, DefaultExpiration,
		population.WithLazySigning())
	if err != nil {
		return nil, err
	}
	resolverAddr := installScanResolver(dep.Hierarchy, nil)
	sc := scanner.New(scanner.Config{
		Exchanger: dep.Hierarchy.Net,
		Resolver:  resolverAddr,
		Workers:   cfg.Workers,
		Seed:      cfg.Seed + 3,
	})

	defer sc.Close()

	rankByName := make(map[dnswire.Name]int, len(u.Domains))
	names := make([]dnswire.Name, len(u.Domains))
	for i := range u.Domains {
		names[i] = u.Domains[i].Name
		rankByName[u.Domains[i].Name] = u.Domains[i].Rank
	}

	// Per-worker sinks: each worker classifies into its own counters,
	// merged after the scan drains — the same lock-free shape as
	// RunSurvey.
	var sinks []*trancoSink
	err = sc.ScanAll(ctx, scanner.Names(names), func(int) scanner.Sink {
		s := &trancoSink{ranks: rankByName}
		sinks = append(sinks, s)
		return s
	})
	if err != nil {
		return nil, err
	}
	report := &TrancoReport{ListSize: cfg.ListSize}
	for _, s := range sinks {
		report.DNSSECEnabled += s.dnssec
		report.NSEC3Enabled += s.nsec3
		report.ZeroIter += s.zeroIter
		report.NoSalt += s.noSalt
		report.Both += s.both
		report.ScanErrors += s.scanErrors
		report.NSEC3Ranks = append(report.NSEC3Ranks, s.nsec3Ranks...)
	}
	sort.Ints(report.NSEC3Ranks)
	rankHist := make(map[int]int, len(report.NSEC3Ranks))
	for _, r := range report.NSEC3Ranks {
		rankHist[r]++
	}
	report.RankCDF = analysis.CDFFromHist(rankHist)
	return report, nil
}

// trancoSink is one worker's private Figure 2 accumulator.
type trancoSink struct {
	ranks      map[dnswire.Name]int // read-only rank lookup, shared
	dnssec     int
	nsec3      int
	zeroIter   int
	noSalt     int
	both       int
	scanErrors int
	nsec3Ranks []int
}

// Consume implements scanner.Sink.
func (s *trancoSink) Consume(r scanner.Result) {
	if r.Err != nil {
		s.scanErrors++
		return
	}
	c := compliance.Classify(r.Facts)
	if c.DNSSECEnabled {
		s.dnssec++
	}
	if !c.NSEC3Enabled {
		return
	}
	s.nsec3++
	s.nsec3Ranks = append(s.nsec3Ranks, s.ranks[r.Facts.Domain])
	if c.Item2OK {
		s.zeroIter++
	}
	if c.Item3OK {
		s.noSalt++
	}
	if c.BothOK {
		s.both++
	}
}
