package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/obs"
)

// SigningMode selects when a survey shard's zones are signed.
type SigningMode int

const (
	// SigningDefault resolves to SigningLazy: sharded runs want the
	// O(zones touched) memory envelope.
	SigningDefault SigningMode = iota
	// SigningLazy signs each deployed zone on the first query that
	// reaches it (per-zone singleflight in the authoritative server).
	// The report is byte-identical to an eager run — signing is
	// deterministic per zone, not per order of arrival.
	SigningLazy
	// SigningEager signs every zone at deploy time — the authd/AXFR
	// serving shape, and the reference behavior the eager-vs-lazy
	// golden test compares against.
	SigningEager
)

// ConfigError is the typed rejection Validate returns for a
// nonsensical config field.
type ConfigError struct {
	// Config names the configuration type the field belongs to; empty
	// means SurveyConfig.
	Config string
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	cfg := e.Config
	if cfg == "" {
		cfg = "SurveyConfig"
	}
	return fmt.Sprintf("core: invalid %s.%s: %s", cfg, e.Field, e.Reason)
}

// Validate rejects nonsensical configurations with a *ConfigError.
// The zero config is valid (withDefaults fills it in); what Validate
// refuses are fields that no defaulting can repair.
func (c SurveyConfig) Validate() error {
	if c.Registered < 0 {
		return &ConfigError{Field: "Registered", Reason: fmt.Sprintf("negative domain count %d", c.Registered)}
	}
	if c.Shards < 0 {
		return &ConfigError{Field: "Shards", Reason: fmt.Sprintf("negative shard count %d", c.Shards)}
	}
	if c.Registered == 0 && c.Shards != 0 {
		return &ConfigError{Field: "Shards", Reason: fmt.Sprintf(
			"%d shards over zero registered domains — a config that asks for explicit sharding must also size the universe", c.Shards)}
	}
	if c.Workers < 0 {
		return &ConfigError{Field: "Workers", Reason: fmt.Sprintf("negative worker count %d", c.Workers)}
	}
	if c.QPS < 0 {
		return &ConfigError{Field: "QPS", Reason: fmt.Sprintf("negative rate limit %d", c.QPS)}
	}
	if c.Signing < SigningDefault || c.Signing > SigningEager {
		return &ConfigError{Field: "Signing", Reason: fmt.Sprintf("unknown signing mode %d", int(c.Signing))}
	}
	return nil
}

// SurveySpec is the serializable subset of SurveyConfig: everything a
// worker process needs to execute a shard, nothing that cannot cross a
// socket (registries, tracers). All fields are fully resolved — a spec
// never carries zero-means-default values, so two processes holding
// the same spec make identical choices.
type SurveySpec struct {
	Registered int         `json:"registered"`
	Seed       uint64      `json:"seed"`
	Workers    int         `json:"workers"`
	QPS        int         `json:"qps"`
	Shards     int         `json:"shards"`
	Signing    SigningMode `json:"signing"`
}

// Resolve validates c and returns its fully defaulted serializable
// spec — the single entry point both the in-process and distributed
// engines go through.
func (c SurveyConfig) Resolve() (SurveySpec, error) {
	if err := c.Validate(); err != nil {
		return SurveySpec{}, err
	}
	d := c.withDefaults()
	return SurveySpec{
		Registered: d.Registered,
		Seed:       d.Seed,
		Workers:    d.Workers,
		QPS:        d.QPS,
		Shards:     d.Shards,
		Signing:    d.Signing,
	}, nil
}

// Config returns the in-process SurveyConfig equivalent of the spec,
// with the given process-local attachments.
func (s SurveySpec) Config(reg *obs.Registry, trace *obs.Tracer) SurveyConfig {
	return SurveyConfig{
		Registered: s.Registered,
		Seed:       s.Seed,
		Workers:    s.Workers,
		QPS:        s.QPS,
		Shards:     s.Shards,
		Signing:    s.Signing,
		Obs:        reg,
		Trace:      trace,
	}
}

// specHashVersion versions the hash preimage: bump it whenever the
// shard plan or outcome format changes incompatibly, so stale state
// directories are refused rather than misinterpreted.
const specHashVersion = 1

// Hash returns the hex config hash identifying which survey a shard
// job, checkpoint, or state directory belongs to. Only result- and
// plan-affecting fields participate: Registered, Seed, Shards, and
// Signing pin the shard decomposition and its outcomes, while Workers
// and QPS are runtime throttles a resumed run may legitimately change.
func (s SurveySpec) Hash() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("repro-survey-v%d:r=%d:s=%d:sh=%d:sg=%d",
		specHashVersion, s.Registered, s.Seed, s.Shards, int(s.Signing))))
	return hex.EncodeToString(h[:16])
}

// withDefaults returns a copy of c with zero fields resolved to their
// defaults. RunSurvey works on the copy — the caller's config is never
// mutated.
func (c SurveyConfig) withDefaults() SurveyConfig {
	out := c
	if out.Registered == 0 {
		out.Registered = 30200
	}
	if out.Workers == 0 {
		out.Workers = 64
	}
	if out.Shards == 0 {
		out.Shards = 1
	}
	if out.Signing == SigningDefault {
		out.Signing = SigningLazy
	}
	return out
}
