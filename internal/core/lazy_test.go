package core

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/obs"
)

// TestSurveyEagerLazyEquivalence is the golden guarantee of lazy
// signing: a sharded survey produces a byte-identical SurveyReport —
// and identical semantic obs counters — whether every zone is signed
// at deploy time or on the first query that reaches it. Signing is
// deterministic per zone (keys and records are fixed at build time),
// so order of arrival cannot leak into the results.
func TestSurveyEagerLazyEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end survey is slow")
	}
	run := func(mode SigningMode) (*SurveyReport, *obs.Registry) {
		t.Helper()
		reg := obs.NewRegistry()
		report, err := RunSurvey(context.Background(), SurveyConfig{
			Registered: 600,
			Seed:       5,
			Shards:     3,
			Signing:    mode,
			Obs:        reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return report, reg
	}
	eager, eagerReg := run(SigningEager)
	lazy, lazyReg := run(SigningLazy)
	if !reflect.DeepEqual(eager, lazy) {
		t.Errorf("lazy report differs from eager:\neager: %+v\nlazy:  %+v", eager, lazy)
	}
	// The rendered deliverables must match byte for byte — they are
	// what the paper's figures and tables are built from.
	render := func(r *SurveyReport) string {
		var sb strings.Builder
		analysis.RenderCDF(&sb, "iterations", r.IterCDF, []int{0, 1, 5, 10, 25, 50, 100, 150, 500})
		analysis.RenderCDF(&sb, "salt", r.SaltCDF, []int{0, 1, 4, 8, 10, 40, 45, 160})
		analysis.RenderOperatorTable(&sb, r.Operators.Top(10))
		return sb.String()
	}
	if a, b := render(eager), render(lazy); a != b {
		t.Errorf("rendered outputs differ:\n--- eager\n%s\n--- lazy\n%s", a, b)
	}

	counter := func(reg *obs.Registry, name string) uint64 {
		return reg.Counter(name, "").Value()
	}
	// Semantic counters — what was scanned and what it cost — are
	// equal across modes. (Signing-work counters legitimately differ:
	// that difference is the point of lazy signing.)
	for _, name := range []string{
		"survey_domains_scanned_total",
		"survey_nsec3_iteration_work_total",
		"scanner_queries_total",
	} {
		e, l := counter(eagerReg, name), counter(lazyReg, name)
		if e != l {
			t.Errorf("%s: eager %d vs lazy %d", name, e, l)
		}
		if e == 0 {
			t.Errorf("%s never incremented", name)
		}
	}

	// The lazy-only instrumentation moved in the lazy run and stayed
	// silent in the eager one.
	if got := counter(lazyReg, "survey_zones_signed_lazily_total"); got == 0 {
		t.Error("lazy run: survey_zones_signed_lazily_total never incremented")
	}
	if got := counter(eagerReg, "survey_zones_signed_lazily_total"); got != 0 {
		t.Errorf("eager run materialized %d zones lazily", got)
	}
	// Shards past the first skip the TLD scan, so most of their
	// 1,449-zone registry is never queried: the untouched counter is
	// where lazy signing's saved work becomes visible.
	if got := counter(lazyReg, "survey_zones_untouched_total"); got == 0 {
		t.Error("lazy run: survey_zones_untouched_total never incremented")
	}
	if got := counter(eagerReg, "survey_zones_untouched_total"); got != 0 {
		t.Errorf("eager run reported %d untouched zones", got)
	}
	// Sign-wait time was observed for every lazy materialization.
	if got := lazyReg.Histogram("authserver_sign_wait_ns", "", obs.NanosecondBuckets()).Count(); got == 0 {
		t.Error("lazy run: authserver_sign_wait_ns never observed")
	}
}
