package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/obs"
)

// ResolverStudyConfig sizes the §4.2 resolver measurement.
type ResolverStudyConfig struct {
	// ScaleDen divides the paper's validator counts (105.2 K open
	// IPv4, 6.8 K open IPv6, 1,236 closed IPv4, 689 closed IPv6) and
	// its probed-population totals (1.9 M open, 2.5 K closed).
	// Default 200; 1 is the paper's full scale.
	ScaleDen int
	Seed     uint64
	// Workers bounds concurrent probes per shard (default 32).
	Workers int
	// Shards splits the fleet into independently executable slices;
	// peak memory is O(one shard's resolvers), not O(fleet). Default 1.
	Shards int
	// Obs (nil ok) receives the study's metrics.
	Obs *obs.Registry
	// Trace (nil ok) receives per-shard phase spans.
	Trace *obs.Tracer
}

// Validate rejects nonsensical configurations with a *ConfigError.
// The zero config is valid (defaults fill it in); what Validate
// refuses are fields no defaulting can repair.
func (c ResolverStudyConfig) Validate() error {
	if c.ScaleDen < 0 {
		return &ConfigError{Config: "ResolverStudyConfig", Field: "ScaleDen",
			Reason: fmt.Sprintf("negative scale denominator %d", c.ScaleDen)}
	}
	if c.Workers < 0 {
		return &ConfigError{Config: "ResolverStudyConfig", Field: "Workers",
			Reason: fmt.Sprintf("negative worker count %d", c.Workers)}
	}
	if c.Shards < 0 {
		return &ConfigError{Config: "ResolverStudyConfig", Field: "Shards",
			Reason: fmt.Sprintf("negative shard count %d", c.Shards)}
	}
	return nil
}

// ResolverStudySpec is the serializable, fully resolved subset of
// ResolverStudyConfig: everything a worker process needs to execute a
// resolver shard, nothing that cannot cross a socket.
type ResolverStudySpec struct {
	ScaleDen int    `json:"scale_den"`
	Seed     uint64 `json:"seed"`
	Workers  int    `json:"workers"`
	Shards   int    `json:"shards"`
}

// Resolve validates c and returns its fully defaulted serializable
// spec — the single entry point both the in-process and distributed
// study engines go through.
func (c ResolverStudyConfig) Resolve() (ResolverStudySpec, error) {
	if err := c.Validate(); err != nil {
		return ResolverStudySpec{}, err
	}
	s := ResolverStudySpec{
		ScaleDen: c.ScaleDen,
		Seed:     c.Seed,
		Workers:  c.Workers,
		Shards:   c.Shards,
	}
	if s.ScaleDen == 0 {
		s.ScaleDen = 200
	}
	if s.Workers == 0 {
		s.Workers = 32
	}
	if s.Shards == 0 {
		s.Shards = 1
	}
	return s, nil
}

// Hash returns the hex config hash identifying which resolver study a
// shard job, checkpoint, or state directory belongs to. Only result-
// and plan-affecting fields participate: ScaleDen, Seed, and Shards
// pin the fleet and its decomposition, while Workers is a runtime
// throttle a resumed run may legitimately change. The preimage is
// disjoint from SurveySpec's, so survey and resolver-study state can
// never be confused for one another.
func (s ResolverStudySpec) Hash() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("repro-resolverstudy-v%d:sd=%d:s=%d:sh=%d",
		specHashVersion, s.ScaleDen, s.Seed, s.Shards)))
	return hex.EncodeToString(h[:16])
}

// Config returns the in-process ResolverStudyConfig equivalent of the
// spec, with the given process-local attachments.
func (s ResolverStudySpec) Config(reg *obs.Registry, trace *obs.Tracer) ResolverStudyConfig {
	return ResolverStudyConfig{
		ScaleDen: s.ScaleDen,
		Seed:     s.Seed,
		Workers:  s.Workers,
		Shards:   s.Shards,
		Obs:      reg,
		Trace:    trace,
	}
}
