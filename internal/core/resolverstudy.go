package core

import (
	"context"
	"fmt"
	"net/netip"
	"sync"

	"repro/internal/analysis"
	"repro/internal/atlas"
	"repro/internal/compliance"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/resolver"
	"repro/internal/respop"
	"repro/internal/testbed"
	"repro/internal/zone"
)

// installScanResolver registers a Cloudflare-like recursive resolver
// on a hierarchy's network (the measurement resolver of §4.1) and
// returns its address. reg (nil ok) receives the resolver's metrics.
func installScanResolver(h *testbed.Hierarchy, reg *obs.Registry) (netip.AddrPort, error) {
	addr := netsim.Addr4(1, 1, 1, 1)
	res := resolver.New(resolver.Config{
		Roots:           h.Roots,
		TrustAnchor:     h.TrustAnchor,
		Exchanger:       h.Net,
		Policy:          respop.Cloudflare.Policy,
		Now:             func() uint32 { return DefaultNow },
		MaxCacheEntries: 1 << 16,
		Obs:             reg,
	})
	h.Net.Register(addr, res)
	return addr, nil
}

// ResolverStudyConfig sizes the §4.2 resolver measurement.
type ResolverStudyConfig struct {
	// ScaleDen divides the paper's validator counts (105.2 K open
	// IPv4, 6.8 K open IPv6, 1,236 closed IPv4, 689 closed IPv6).
	// Default 200.
	ScaleDen int
	Seed     uint64
	// Workers bounds concurrent open-resolver probes (default 32).
	Workers int
}

// ResolverStudyReport is the §5.2 output.
type ResolverStudyReport struct {
	// Series holds one Figure 3 subfigure per quadrant.
	Series map[respop.Quadrant]*analysis.RCodeSeries
	// PerQuadrant aggregates the Items 6–12 statistics per quadrant.
	PerQuadrant map[respop.Quadrant]*compliance.ResolverAggregate
	// Overall aggregates across all quadrants.
	Overall *compliance.ResolverAggregate
	// Deployed counts resolvers per quadrant.
	Deployed map[respop.Quadrant]int
}

// RunResolverStudy builds the testbed world, deploys the resolver
// fleet, probes it, and classifies every transcript.
func RunResolverStudy(ctx context.Context, cfg ResolverStudyConfig) (*ResolverStudyReport, error) {
	if cfg.ScaleDen == 0 {
		cfg.ScaleDen = 200
	}
	if cfg.Workers == 0 {
		cfg.Workers = 32
	}
	h, err := BuildTestbedWorld(cfg.Seed)
	if err != nil {
		return nil, err
	}
	now := func() uint32 { return DefaultNow }
	instances, err := respop.Deploy(h, respop.DeployConfig{
		Counts: respop.DefaultCounts(cfg.ScaleDen),
		Seed:   cfg.Seed + 11,
		Now:    now,
	})
	if err != nil {
		return nil, err
	}

	report := &ResolverStudyReport{
		Series:      make(map[respop.Quadrant]*analysis.RCodeSeries),
		PerQuadrant: make(map[respop.Quadrant]*compliance.ResolverAggregate),
		Overall:     compliance.NewResolverAggregate(),
		Deployed:    make(map[respop.Quadrant]int),
	}
	quadTranscripts := make(map[respop.Quadrant][]*testbed.Transcript)
	var mu sync.Mutex

	// Open resolvers: probed directly over the network.
	var open []*respop.Instance
	platform := &atlas.Platform{Exchanger: h.Net, MaxConcurrent: cfg.Workers}
	probeID := 0
	instQuadrant := make(map[netip.AddrPort]respop.Quadrant)
	for _, inst := range instances {
		report.Deployed[inst.Quadrant]++
		instQuadrant[inst.Addr] = inst.Quadrant
		switch inst.Quadrant {
		case respop.OpenIPv4, respop.OpenIPv6:
			open = append(open, inst)
		default:
			// Closed resolvers are reachable only from their own
			// network: measured through the Atlas platform.
			probeID++
			platform.AddProbe(atlas.Probe{
				ID:       probeID,
				Resolver: inst.Addr,
				IPv6:     inst.Quadrant == respop.ClosedIPv6,
			})
		}
	}

	// Probe open resolvers with a worker pool.
	sem := make(chan struct{}, cfg.Workers)
	var wg sync.WaitGroup
	for i, inst := range open {
		wg.Add(1)
		go func(i int, inst *respop.Instance) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sem }()
			unique := fmt.Sprintf("open-%d", i)
			tr, err := testbed.ProbeResolver(ctx, h.Net, inst.Addr, unique)
			if err != nil {
				return
			}
			mu.Lock()
			quadTranscripts[inst.Quadrant] = append(quadTranscripts[inst.Quadrant], tr)
			mu.Unlock()
		}(i, inst)
	}
	wg.Wait()

	// Closed resolvers via the Atlas platform (EDE-less transcripts).
	for _, mr := range platform.MeasureTestbed(ctx, "closed") {
		if mr.Err != nil || mr.Transcript == nil {
			continue
		}
		q := instQuadrant[mr.Probe.Resolver]
		quadTranscripts[q] = append(quadTranscripts[q], mr.Transcript)
	}

	// Classify and aggregate.
	for q, trs := range quadTranscripts {
		agg := compliance.NewResolverAggregate()
		var validators []*testbed.Transcript
		for _, tr := range trs {
			c := compliance.ClassifyResolver(tr)
			agg.Add(c)
			report.Overall.Add(c)
			if c.IsValidator {
				validators = append(validators, tr)
			}
		}
		report.PerQuadrant[q] = agg
		report.Series[q] = analysis.BuildRCodeSeries(q.String(), validators)
	}
	return report, nil
}

// BuildTestbedWorld assembles root + com + the rfc9276 testbed on a
// fresh simulated network — the §4.2 infrastructure.
func BuildTestbedWorld(seed uint64) (*testbed.Hierarchy, error) {
	b := testbed.NewBuilder(DefaultInception, DefaultExpiration)
	b.AddZone(testbed.ZoneSpec{
		Apex:   dnswire.Root,
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC},
		Server: netsim.Addr4(198, 41, 0, 4),
	})
	b.AddZone(testbed.ZoneSpec{
		Apex:   dnswire.MustParseName("com"),
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC3, OptOut: true},
		Server: netsim.Addr4(192, 5, 6, 30),
	})
	testbed.InstallTestbed(b, netsim.Addr4(203, 0, 113, 10), netsim.Addr6(0x10))
	return b.Build(netsim.NewNetwork(seed))
}
