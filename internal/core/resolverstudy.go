package core

import (
	"context"
	"fmt"
	"net/netip"
	"sync"

	"repro/internal/analysis"
	"repro/internal/atlas"
	"repro/internal/compliance"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/resolver"
	"repro/internal/respop"
	"repro/internal/testbed"
	"repro/internal/zone"
)

// This file is the §4.2 resolver-study engine, the Figure 3 twin of
// the survey engine (engine.go): the same plan/execute/merge split
// over a fleet of resolvers instead of a universe of domains.
//
//   - Plan: PlanResolverJobs turns a resolved ResolverStudySpec into
//     serializable ResolverShardJobs over index-pure respop.ShardPlans.
//   - Execute: ResolverShardRunner.Execute deploys one shard's slice
//     of the fleet on its own simulated network (testbed zones shared
//     through the sign cache), probes it, and classifies every
//     transcript into a serializable ResolverShardOutcome.
//   - Merge: ResolverReportBuilder folds outcomes — in any order,
//     each shard exactly once — into the final ResolverStudyReport.
//
// RunResolverStudy is the thin in-process client; internal/distsurvey
// leases the same jobs to worker processes. Because respop assignments
// are index-pure, peak memory is O(one shard's resolvers): the paper's
// full 105.2 K + 6.8 K + 1.2 K + 0.7 K validator fleet (ScaleDen=1)
// runs in the same footprint as the 1:200 default.

// installScanResolver registers a Cloudflare-like recursive resolver
// on a hierarchy's network (the measurement resolver of §4.1) and
// returns its address. reg (nil ok) receives the resolver's metrics.
func installScanResolver(h *testbed.Hierarchy, reg *obs.Registry) netip.AddrPort {
	addr := netsim.Addr4(1, 1, 1, 1)
	res := resolver.New(resolver.Config{
		Roots:           h.Roots,
		TrustAnchor:     h.TrustAnchor,
		Exchanger:       h.Net,
		Policy:          respop.Cloudflare.Policy,
		Now:             func() uint32 { return DefaultNow },
		MaxCacheEntries: 1 << 16,
		Obs:             reg,
	})
	h.Net.Register(addr, res)
	return addr
}

// ResolverShardJob is the pure, serializable description of one unit
// of resolver-study work: which study (Spec + ConfigHash) and which
// slice of its fleet (Plan).
type ResolverShardJob struct {
	Spec ResolverStudySpec `json:"spec"`
	Plan respop.ShardPlan  `json:"plan"`
	// ConfigHash is Spec.Hash(), carried explicitly so executors can
	// refuse jobs from a different study without recomputing.
	ConfigHash string `json:"config_hash"`
}

// deployConfig is the respop configuration the spec pins. Every layer
// derives it through here, so planner and jobs can never disagree.
func (s ResolverStudySpec) deployConfig() respop.DeployConfig {
	return respop.DeployConfig{
		Counts: respop.DefaultCounts(s.ScaleDen),
		Seed:   s.Seed + 11,
		Now:    func() uint32 { return DefaultNow },
	}
}

// PlanResolverJobs splits the study described by spec into one
// ResolverShardJob per shard. Jobs are independent: each can be
// executed by any process, in any order.
func PlanResolverJobs(spec ResolverStudySpec) ([]ResolverShardJob, error) {
	p, err := respop.NewPlanner(spec.deployConfig())
	if err != nil {
		return nil, err
	}
	hash := spec.Hash()
	plans := p.Plan(spec.Shards)
	jobs := make([]ResolverShardJob, len(plans))
	for i, pl := range plans {
		jobs[i] = ResolverShardJob{Spec: spec, Plan: pl, ConfigHash: hash}
	}
	return jobs, nil
}

// ResolverShardOutcome is the serializable result of executing one
// ResolverShardJob. All fields round-trip through JSON unchanged, so a
// distributed run's report is byte-identical to an in-process one.
type ResolverShardOutcome struct {
	// Index is the shard ordinal the outcome belongs to.
	Index int `json:"index"`
	// Series holds the shard-local Figure 3 tallies per quadrant
	// (raw counts — they merge exactly).
	Series map[respop.Quadrant]*analysis.RCodeSeries `json:"series"`
	// PerQuadrant aggregates the Items 6–12 statistics per quadrant.
	PerQuadrant map[respop.Quadrant]*compliance.ResolverAggregate `json:"per_quadrant"`
	// Deployed counts resolvers per quadrant in this shard.
	Deployed map[respop.Quadrant]int `json:"deployed"`
	// ProbeFailures counts probes that yielded no transcript.
	ProbeFailures int `json:"probe_failures"`
}

// ResolverShardRunner executes ResolverShardJobs: the per-process
// machinery shared by every shard it runs — the sign cache
// deduplicating testbed signing across shard worlds, and the obs
// counters (all no-op without a registry). Execute is sequential; a
// runner is not safe for concurrent Execute calls.
type ResolverShardRunner struct {
	reg   *obs.Registry
	trace *obs.Tracer
	cache *testbed.SignCache

	mProbeFail *obs.Counter
	mProbed    map[respop.Quadrant]*obs.Counter
	mShards    *obs.Counter
	mSigned    *obs.Counter
	mReused    *obs.Counter

	// The planner is cached across Execute calls for one study; a job
	// for a different spec rebuilds it.
	planner     *respop.Planner
	plannerSpec ResolverStudySpec
}

// NewResolverShardRunner prepares a runner whose metrics land in reg
// and whose phase spans land in trace (both may be nil). The cache may
// be nil for a fresh sign cache.
func NewResolverShardRunner(reg *obs.Registry, trace *obs.Tracer, cache *testbed.SignCache) *ResolverShardRunner {
	if cache == nil {
		cache = testbed.NewSignCache()
	}
	return &ResolverShardRunner{
		reg:        reg,
		trace:      trace,
		cache:      cache,
		mProbeFail: reg.Counter("resolverstudy_probe_failures_total", "resolver probes that yielded no transcript (cancelled or errored)"),
		mProbed: map[respop.Quadrant]*obs.Counter{
			respop.OpenIPv4:   reg.Counter("resolverstudy_probed_open_ipv4_total", "open IPv4 resolvers probed to a transcript"),
			respop.OpenIPv6:   reg.Counter("resolverstudy_probed_open_ipv6_total", "open IPv6 resolvers probed to a transcript"),
			respop.ClosedIPv4: reg.Counter("resolverstudy_probed_closed_ipv4_total", "closed IPv4 resolvers probed to a transcript via Atlas"),
			respop.ClosedIPv6: reg.Counter("resolverstudy_probed_closed_ipv6_total", "closed IPv6 resolvers probed to a transcript via Atlas"),
		},
		mShards: reg.Counter("resolverstudy_shards_completed_total", "resolver-study shards executed to completion"),
		mSigned: reg.Counter("resolverstudy_zones_signed_total", "testbed zones signed fresh across shard worlds"),
		mReused: reg.Counter("resolverstudy_zones_reused_total", "testbed zones served from the sign cache"),
	}
}

// ensurePlanner returns the cached planner for the job's study,
// rebuilding it when the study changes.
func (run *ResolverShardRunner) ensurePlanner(spec ResolverStudySpec) (*respop.Planner, error) {
	if run.planner == nil || run.plannerSpec != spec {
		p, err := respop.NewPlanner(spec.deployConfig())
		if err != nil {
			return nil, err
		}
		run.planner, run.plannerSpec = p, spec
	}
	return run.planner, nil
}

// probeSlot collects one probe's result by its fleet index, so the
// classification order below is the fleet order — never goroutine
// completion order.
type probeSlot struct {
	tr  *testbed.Transcript
	err error
}

// Execute runs one ResolverShardJob end to end — build the testbed
// world on its own network, deploy the shard's slice of the fleet,
// probe it, classify — and returns the shard's serializable outcome.
// The outcome depends only on the job, never on which process or in
// which order shards execute.
func (run *ResolverShardRunner) Execute(ctx context.Context, job ResolverShardJob) (*ResolverShardOutcome, error) {
	if want := job.Spec.Hash(); job.ConfigHash != "" && job.ConfigHash != want {
		return nil, fmt.Errorf("core: resolver shard job %d carries config hash %s, spec hashes to %s",
			job.Plan.Index, job.ConfigHash, want)
	}
	planner, err := run.ensurePlanner(job.Spec)
	if err != nil {
		return nil, err
	}

	deploySpan := run.trace.Start("deploy", job.Plan.Index)
	// Each shard gets its own simulated network, so peak memory is one
	// shard's resolvers; the testbed zones are identical across shards
	// and signed once through the shared cache.
	h, err := BuildTestbedWorld(job.Spec.Seed+uint64(job.Plan.Index),
		testbed.WithLazySigning(), testbed.WithCache(run.cache))
	if err != nil {
		return nil, err
	}
	instances, err := respop.DeployShard(h, planner, job.Plan)
	if err != nil {
		return nil, err
	}
	deploySpan.End()

	out := &ResolverShardOutcome{
		Index:       job.Plan.Index,
		Series:      make(map[respop.Quadrant]*analysis.RCodeSeries),
		PerQuadrant: make(map[respop.Quadrant]*compliance.ResolverAggregate),
		Deployed:    make(map[respop.Quadrant]int),
	}
	var open, closed []*respop.Instance
	for _, inst := range instances {
		out.Deployed[inst.Quadrant]++
		switch inst.Quadrant {
		case respop.OpenIPv4, respop.OpenIPv6:
			open = append(open, inst)
		default:
			// Closed resolvers are reachable only from their own
			// network: measured through the Atlas platform.
			closed = append(closed, inst)
		}
	}

	probeSpan := run.trace.Start("probe", job.Plan.Index)
	// Open resolvers: probed directly, results collected by index.
	slots := make([]probeSlot, len(open))
	sem := make(chan struct{}, job.Spec.Workers)
	var wg sync.WaitGroup
	for i, inst := range open {
		wg.Add(1)
		go func(i int, inst *respop.Instance) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				slots[i] = probeSlot{err: ctx.Err()}
				return
			}
			defer func() { <-sem }()
			// The fleet index makes the cache-busting label unique
			// across shards and processes.
			unique := fmt.Sprintf("open-%d", inst.Index)
			tr, err := testbed.ProbeResolver(ctx, h.Net, inst.Addr, unique)
			slots[i] = probeSlot{tr: tr, err: err}
		}(i, inst)
	}
	wg.Wait()

	// Closed resolvers via the Atlas platform (EDE-less transcripts),
	// probe IDs pinned to fleet indexes so labels and result order are
	// shard-independent.
	platform := &atlas.Platform{Exchanger: h.Net, MaxConcurrent: job.Spec.Workers}
	probes := make([]atlas.Probe, len(closed))
	for i, inst := range closed {
		probes[i] = atlas.Probe{
			ID:       inst.Index,
			Resolver: inst.Addr,
			IPv6:     inst.Quadrant == respop.ClosedIPv6,
		}
	}
	measured := platform.Measure(ctx, probes, "closed")
	probeSpan.End()

	mergeSpan := run.trace.Start("merge", job.Plan.Index)
	defer mergeSpan.End()
	classify := func(inst *respop.Instance, tr *testbed.Transcript, err error) {
		if err != nil || tr == nil {
			out.ProbeFailures++
			run.mProbeFail.Inc()
			return
		}
		run.mProbed[inst.Quadrant].Inc()
		agg := out.PerQuadrant[inst.Quadrant]
		if agg == nil {
			agg = compliance.NewResolverAggregate()
			out.PerQuadrant[inst.Quadrant] = agg
		}
		c := compliance.ClassifyResolver(tr)
		agg.Add(c)
		if !c.IsValidator {
			return
		}
		s := out.Series[inst.Quadrant]
		if s == nil {
			s = analysis.NewRCodeSeries(inst.Quadrant.String())
			out.Series[inst.Quadrant] = s
		}
		s.Observe(tr)
	}
	for i, inst := range open {
		classify(inst, slots[i].tr, slots[i].err)
	}
	for i, inst := range closed {
		classify(inst, measured[i].Transcript, measured[i].Err)
	}

	// Signing-work accounting once the shard's traffic has drained:
	// lazy thunks run from query-handling goroutines, so totals are
	// only final here.
	signed, reused := h.SignStats()
	run.mSigned.Add(uint64(signed))
	run.mReused.Add(uint64(reused))
	run.mShards.Inc()
	return out, nil
}

// ResolverStudyReport is the §5.2 output.
type ResolverStudyReport struct {
	// Series holds one Figure 3 subfigure per quadrant.
	Series map[respop.Quadrant]*analysis.RCodeSeries
	// PerQuadrant aggregates the Items 6–12 statistics per quadrant.
	PerQuadrant map[respop.Quadrant]*compliance.ResolverAggregate
	// Overall aggregates across all quadrants.
	Overall *compliance.ResolverAggregate
	// Deployed counts resolvers per quadrant.
	Deployed map[respop.Quadrant]int
	// Population is the plan-layer probed population per quadrant at
	// the study's scale: the paper's 1.9 M open + 2.5 K closed
	// resolvers, of which the deployed fleet is the validator subset.
	Population map[respop.Quadrant]int
	// ProbeFailures counts probes that yielded no transcript.
	ProbeFailures int
}

// ResolverReportBuilder folds ResolverShardOutcomes into the final
// ResolverStudyReport. Add accepts outcomes in any order but each
// shard index exactly once.
type ResolverReportBuilder struct {
	report *ResolverStudyReport
	merged map[int]bool
}

// NewResolverReportBuilder prepares an empty report for the study
// described by spec.
func NewResolverReportBuilder(spec ResolverStudySpec) *ResolverReportBuilder {
	return &ResolverReportBuilder{
		report: &ResolverStudyReport{
			Series:      make(map[respop.Quadrant]*analysis.RCodeSeries),
			PerQuadrant: make(map[respop.Quadrant]*compliance.ResolverAggregate),
			Overall:     compliance.NewResolverAggregate(),
			Deployed:    make(map[respop.Quadrant]int),
			Population:  respop.PopulationCounts(spec.ScaleDen),
		},
		merged: make(map[int]bool),
	}
}

// Add merges one shard's outcome. A second outcome for the same shard
// returns *DuplicateShardError and changes nothing.
func (b *ResolverReportBuilder) Add(o *ResolverShardOutcome) error {
	if o == nil {
		return fmt.Errorf("core: nil resolver shard outcome")
	}
	if b.merged[o.Index] {
		return &DuplicateShardError{Index: o.Index}
	}
	b.merged[o.Index] = true
	for q, s := range o.Series {
		dst := b.report.Series[q]
		if dst == nil {
			dst = analysis.NewRCodeSeries(q.String())
			b.report.Series[q] = dst
		}
		dst.Merge(s)
	}
	for q, agg := range o.PerQuadrant {
		dst := b.report.PerQuadrant[q]
		if dst == nil {
			dst = compliance.NewResolverAggregate()
			b.report.PerQuadrant[q] = dst
		}
		dst.Merge(agg)
		b.report.Overall.Merge(agg)
	}
	for q, n := range o.Deployed {
		b.report.Deployed[q] += n
	}
	b.report.ProbeFailures += o.ProbeFailures
	return nil
}

// Merged reports whether the shard's outcome has already been added.
func (b *ResolverReportBuilder) Merged(index int) bool { return b.merged[index] }

// MergedCount returns how many distinct shards have been added.
func (b *ResolverReportBuilder) MergedCount() int { return len(b.merged) }

// Finish returns the report.
func (b *ResolverReportBuilder) Finish() *ResolverStudyReport { return b.report }

// RunResolverStudy runs the whole study in-process: plan the shard
// jobs, execute each sequentially (testbed signing shared through one
// cache), merge. Peak memory is O(one shard's resolvers).
func RunResolverStudy(ctx context.Context, cfg ResolverStudyConfig) (*ResolverStudyReport, error) {
	spec, err := cfg.Resolve()
	if err != nil {
		return nil, err
	}
	jobs, err := PlanResolverJobs(spec)
	if err != nil {
		return nil, err
	}
	builder := NewResolverReportBuilder(spec)
	run := NewResolverShardRunner(cfg.Obs, cfg.Trace, nil)
	for _, job := range jobs {
		out, err := run.Execute(ctx, job)
		if err != nil {
			return nil, err
		}
		if err := builder.Add(out); err != nil {
			return nil, err
		}
	}
	return builder.Finish(), nil
}

// BuildTestbedWorld assembles root + com + the rfc9276 testbed on a
// fresh simulated network — the §4.2 infrastructure. The zones are
// identical across builds for the same constants, so they are marked
// Shared: with a sign cache attached (WithCache), repeated shard
// worlds reuse one signing of each zone.
func BuildTestbedWorld(seed uint64, opts ...testbed.BuilderOption) (*testbed.Hierarchy, error) {
	b := testbed.NewBuilder(DefaultInception, DefaultExpiration, opts...)
	b.AddZone(testbed.ZoneSpec{
		Apex:   dnswire.Root,
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC},
		Server: netsim.Addr4(198, 41, 0, 4),
		Shared: true,
	})
	b.AddZone(testbed.ZoneSpec{
		Apex:   dnswire.MustParseName("com"),
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC3, OptOut: true},
		Server: netsim.Addr4(192, 5, 6, 30),
		Shared: true,
	})
	testbed.InstallTestbed(b, netsim.Addr4(203, 0, 113, 10), netsim.Addr6(0x10))
	return b.Build(netsim.NewNetwork(seed))
}
