package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/population"
)

// The timeline experiment implements the paper's §6 future work:
// tracking NSEC3 parameter compliance over the documented migrations
// (Identity Digital 2020 and 2024, TransIP 2021, the RFC 9276
// publication). Each sample generates the same fixed domain set with
// era-appropriate operator profiles and reports the Item 2 compliance
// share and the Identity Digital TLD setting.

// TimelineSample is one dated observation.
type TimelineSample struct {
	Date          time.Time
	Label         string
	ZeroIterShare float64 // % of NSEC3-enabled domains at 0 iterations
	IDTLDIters    uint16  // Identity Digital cohort's iteration count
}

// TimelineConfig sizes the longitudinal run.
type TimelineConfig struct {
	Registered int
	Seed       uint64
}

// RunTimeline samples the universe at the story's milestones.
func RunTimeline(ctx context.Context, cfg TimelineConfig) ([]TimelineSample, error) {
	if cfg.Registered == 0 {
		cfg.Registered = 30200
	}
	points := []struct {
		date  time.Time
		label string
	}{
		{population.DateIDRaise.AddDate(0, -3, 0), "pre-2020 (before the Identity Digital raise)"},
		{population.DateIDRaise.AddDate(0, 3, 0), "late 2020 (ID TLDs at 100 iterations)"},
		{population.DateTransIPZero.AddDate(0, 3, 0), "late 2021 (TransIP at 0; vendor defaults changed)"},
		{population.DateRFC9276.AddDate(0, 3, 0), "late 2022 (RFC 9276 published)"},
		{population.DatePaperScan, "March 2024 (the paper's measurement)"},
		{population.DateIDZero.AddDate(0, 3, 0), "late 2024 (ID TLDs back to 0)"},
	}
	out := make([]TimelineSample, 0, len(points))
	for _, p := range points {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		u, err := population.GenerateAt(population.Config{
			Registered: cfg.Registered, Seed: cfg.Seed,
		}, p.date)
		if err != nil {
			return nil, err
		}
		out = append(out, TimelineSample{
			Date:          p.date,
			Label:         p.label,
			ZeroIterShare: population.ZeroIterShareAt(u),
			IDTLDIters:    population.TLDIterationsAt(p.date),
		})
	}
	return out, nil
}

// RenderTimeline writes the longitudinal table.
func RenderTimeline(w io.Writer, samples []TimelineSample) {
	fmt.Fprintln(w, "==== Timeline (§6 future work): Item 2 compliance across the documented migrations")
	fmt.Fprintf(w, "  %-12s %-52s %18s %12s\n", "date", "era", "0-iter domains", "ID TLD iters")
	for _, s := range samples {
		fmt.Fprintf(w, "  %-12s %-52s %17.1f%% %12d\n",
			s.Date.Format("2006-01-02"), s.Label, s.ZeroIterShare, s.IDTLDIters)
	}
}
