package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/compliance"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/scanner"
	"repro/internal/testbed"
)

// This file is the survey engine proper, split into the three layers
// the distributed runner is built from:
//
//   - Plan: PlanJobs turns a resolved SurveySpec into serializable
//     ShardJobs — any process holding a job can execute that shard.
//   - Execute: ShardRunner.Execute runs one job through the existing
//     generate→deploy→scan path and folds the results into a
//     serializable ShardOutcome.
//   - Merge: ReportBuilder folds outcomes — in any order, each shard
//     exactly once — into the final SurveyReport.
//
// RunSurvey (core.go) is the thin in-process client: plan, execute
// each job sequentially, merge. internal/distsurvey is the
// multi-process client of the same three layers.

// ShardJob is the pure, serializable description of one unit of survey
// work: which survey (Spec + ConfigHash) and which slice of it (Plan).
type ShardJob struct {
	Spec SurveySpec           `json:"spec"`
	Plan population.ShardPlan `json:"plan"`
	// ConfigHash is Spec.Hash(), carried explicitly so executors can
	// refuse jobs from a different survey without recomputing.
	ConfigHash string `json:"config_hash"`
}

// PlanJobs splits the survey described by spec into one ShardJob per
// shard. Jobs are independent: each can be executed by any process, in
// any order.
func PlanJobs(spec SurveySpec) ([]ShardJob, error) {
	p, err := population.NewShardPlanner(population.Config{
		Registered: spec.Registered,
		Seed:       spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	hash := spec.Hash()
	plans := p.Plan(spec.Shards)
	jobs := make([]ShardJob, len(plans))
	for i, pl := range plans {
		jobs[i] = ShardJob{Spec: spec, Plan: pl, ConfigHash: hash}
	}
	return jobs, nil
}

// ShardOutcome is the serializable result of executing one ShardJob:
// every per-shard aggregate the merge layer needs, nothing else. All
// fields round-trip through JSON unchanged, so a distributed run's
// report is byte-identical to an in-process one.
type ShardOutcome struct {
	// Index is the shard ordinal the outcome belongs to.
	Index int `json:"index"`
	// Agg summarizes the shard's scanned domain classifications.
	Agg *compliance.Aggregate `json:"agg"`
	// Operators feeds Table 2.
	Operators *analysis.OperatorStats `json:"operators"`
	// TLDs is the end-to-end TLD registry scan; only shard 0 carries it
	// (every shard signs the same registry zones, so once is enough).
	TLDs *compliance.Aggregate `json:"tlds,omitempty"`
	// ScanErrors counts domains (and, on shard 0, TLDs) whose scan
	// failed.
	ScanErrors int `json:"scan_errors"`
	// DomainsUnderIDTLDs counts this shard's registered domains under
	// Identity Digital TLDs (AXFR where open, list fallback otherwise).
	DomainsUnderIDTLDs int `json:"domains_under_id_tlds"`
	// TransferredTLDs names the Identity Digital TLD zones this shard
	// obtained via AXFR, sorted.
	TransferredTLDs []string `json:"transferred_tlds,omitempty"`
}

// ShardRunner executes ShardJobs: the per-process machinery shared by
// every shard it runs — the sign cache deduplicating infrastructure
// signing across shard deployments, and the obs counters (all no-op
// without a registry). Execute is sequential; a runner is not safe for
// concurrent Execute calls.
type ShardRunner struct {
	reg   *obs.Registry
	trace *obs.Tracer
	cache *testbed.SignCache

	mScanned  *obs.Counter
	mIterWork *obs.Counter
	mSigned   *obs.Counter
	mReused   *obs.Counter
	mLazy     *obs.Counter
	mUntouch  *obs.Counter
	mShards   *obs.Counter
	mRate     *obs.Gauge

	// Scan-throughput bookkeeping sums span durations so the tracer
	// stays the run's only clock.
	scannedDomains int
	scanSeconds    float64

	// The planner is cached across Execute calls for one survey; a job
	// for a different (Registered, Seed) rebuilds it.
	planner    *population.ShardPlanner
	plannerCfg population.Config
}

// NewShardRunner prepares a runner whose metrics land in reg and whose
// phase spans land in trace (both may be nil). The cache may be nil
// for a fresh sign cache.
func NewShardRunner(reg *obs.Registry, trace *obs.Tracer, cache *testbed.SignCache) *ShardRunner {
	if cache == nil {
		cache = testbed.NewSignCache()
	}
	return &ShardRunner{
		reg:       reg,
		trace:     trace,
		cache:     cache,
		mScanned:  reg.Counter("survey_domains_scanned_total", "registered domains scanned successfully"),
		mIterWork: reg.Counter("survey_nsec3_iteration_work_total", "cumulative 1+iterations over scanned NSEC3 zones (Gruza et al. verification cost)"),
		mSigned:   reg.Counter("survey_zones_signed_total", "zones signed fresh (deploy-time or lazily on first query)"),
		mReused:   reg.Counter("survey_zones_reused_total", "zones served from the sign cache"),
		mLazy:     reg.Counter("survey_zones_signed_lazily_total", "zones materialized by their first query instead of at deploy time"),
		mUntouch:  reg.Counter("survey_zones_untouched_total", "deployed zones never queried during their shard — work lazy signing skipped entirely"),
		mShards:   reg.Counter("survey_shards_completed_total", "survey shards executed to completion"),
		mRate:     reg.Gauge("survey_domains_per_second", "cumulative registered-domain scan throughput"),
	}
}

// ensurePlanner returns the cached planner for the job's survey,
// rebuilding it when the survey changes.
func (run *ShardRunner) ensurePlanner(spec SurveySpec) (*population.ShardPlanner, error) {
	cfg := population.Config{Registered: spec.Registered, Seed: spec.Seed}
	if run.planner == nil || run.plannerCfg != cfg {
		p, err := population.NewShardPlanner(cfg)
		if err != nil {
			return nil, err
		}
		run.planner, run.plannerCfg = p, cfg
	}
	return run.planner, nil
}

// Execute runs one ShardJob end to end — generate, deploy onto its own
// simulated network, scan, fold — and returns the shard's serializable
// outcome. The outcome depends only on the job, never on which process
// or in which order shards execute.
func (run *ShardRunner) Execute(ctx context.Context, job ShardJob) (*ShardOutcome, error) {
	if want := job.Spec.Hash(); job.ConfigHash != "" && job.ConfigHash != want {
		return nil, fmt.Errorf("core: shard job %d carries config hash %s, spec hashes to %s",
			job.Plan.Index, job.ConfigHash, want)
	}
	planner, err := run.ensurePlanner(job.Spec)
	if err != nil {
		return nil, err
	}
	cfg := job.Spec.Config(run.reg, run.trace)

	gen := run.trace.Start("generate", job.Plan.Index)
	shard, err := planner.GenerateShard(job.Plan)
	gen.End()
	if err != nil {
		return nil, err
	}

	u := shard.Universe
	out := &ShardOutcome{
		Index:     shard.Index,
		Agg:       compliance.NewAggregate(),
		Operators: analysis.NewOperatorStats(),
	}

	deploySpan := run.trace.Start("deploy", shard.Index)
	opts := []population.DeployOption{population.WithSignCache(run.cache)}
	if cfg.Signing != SigningEager {
		opts = append(opts, population.WithLazySigning())
	}
	dep, err := population.Deploy(u, netsim.NewNetwork(cfg.Seed+uint64(shard.Index)), DefaultInception, DefaultExpiration, opts...)
	if err != nil {
		return nil, err
	}
	dep.Hierarchy.Net.Instrument(run.reg)
	dep.Hierarchy.Instrument(run.reg)
	resolverAddr := installScanResolver(dep.Hierarchy, run.reg)
	sc := scanner.New(scanner.Config{
		Exchanger: dep.Hierarchy.Net,
		Resolver:  resolverAddr,
		Workers:   cfg.Workers,
		QPS:       cfg.QPS,
		Seed:      cfg.Seed + 1 + uint64(shard.Index),
		Obs:       run.reg,
	})
	defer sc.Close()
	deploySpan.End()

	// Scan this shard's registered domains into per-worker sinks.
	names := make([]dnswire.Name, len(u.Domains))
	for i := range u.Domains {
		names[i] = u.Domains[i].Name
	}
	scanSpan := run.trace.Start("scan", shard.Index)
	sinks := make([]*surveySink, 0, cfg.Workers)
	err = sc.ScanAll(ctx, scanner.Names(names), func(int) scanner.Sink {
		s := &surveySink{
			agg: compliance.NewAggregate(), ops: analysis.NewOperatorStats(),
			mScanned: run.mScanned, mIterWork: run.mIterWork,
		}
		sinks = append(sinks, s)
		return s
	})
	if err != nil {
		return nil, err
	}
	if shard.Index == 0 {
		if err := run.scanTLDs(ctx, sc, u.TLDs, out); err != nil {
			return nil, err
		}
	}

	// The ≥12.6 M-domains estimate: count delegations in Identity
	// Digital TLD zones obtained via AXFR where the registry opens its
	// zone data (the paper's CZDS/AXFR path), and fall back to our
	// registered-domain list — "necessarily incomplete and therefore
	// only a lower bound" (§5.1) — for the rest.
	idTLD := make(map[string]bool)
	for _, t := range planner.TLDs() {
		if t.Registry == population.IdentityDigitalName {
			idTLD[t.Name] = true
		}
	}
	listCounts := make(map[string]int)
	for i := range u.Domains {
		if idTLD[u.Domains[i].TLD] {
			listCounts[u.Domains[i].TLD]++
		}
	}
	for _, t := range u.TLDs {
		if !idTLD[t.Name] {
			continue
		}
		counted := false
		// A shard-local zone delegates exactly the shard's domains, so
		// for a TLD with none of them the transfer is vacuous: it
		// counts zero delegations and would only force-sign a zone
		// nothing else touches. Shard 0 still transfers every open
		// zone, keeping the transferred set — and the report — exactly
		// what a single-shard run produces.
		if t.OpenZoneData && (shard.Index == 0 || listCounts[t.Name] > 0) {
			apex, err := dnswire.FromLabels(t.Name)
			if err != nil {
				return nil, err
			}
			// The AXFR path force-signs its zone explicitly: under lazy
			// signing a transfer must serve the complete signed zone, so
			// materialize it rather than relying on the query to do it.
			if _, err := dep.Hierarchy.Materialize(ctx, apex); err != nil {
				return nil, err
			}
			rrs, err := scanner.Transfer(ctx, dep.Hierarchy.Net, dep.TLDServers[t.Name], apex)
			if err == nil {
				out.DomainsUnderIDTLDs += scanner.CountDelegations(apex, rrs)
				out.TransferredTLDs = append(out.TransferredTLDs, t.Name)
				counted = true
			}
		}
		if !counted {
			out.DomainsUnderIDTLDs += listCounts[t.Name]
		}
	}
	sort.Strings(out.TransferredTLDs)

	// Signing-work accounting happens once the shard's traffic has
	// drained: lazy thunks run from query-handling goroutines, so the
	// totals are only final here. SignStats folds eager build-time and
	// lazy post-build work together, keeping the signed/reused counters
	// comparable across signing modes.
	signed, reused := dep.Hierarchy.SignStats()
	run.mSigned.Add(uint64(signed))
	run.mReused.Add(uint64(reused))
	materialized, untouched := dep.Hierarchy.LazyStats()
	run.mLazy.Add(uint64(materialized))
	run.mUntouch.Add(uint64(untouched))

	// The tracer owns the wall clock: throughput is derived from span
	// durations rather than read directly, keeping core deterministic.
	run.scannedDomains += len(u.Domains)
	run.scanSeconds += scanSpan.End().Seconds()
	if run.scanSeconds > 0 {
		run.mRate.Set(float64(run.scannedDomains) / run.scanSeconds)
	}

	mergeSpan := run.trace.Start("merge", shard.Index)
	defer mergeSpan.End()
	for _, s := range sinks {
		out.Agg.Merge(s.agg)
		out.Operators.Merge(s.ops)
		out.ScanErrors += s.scanErrors
	}
	run.mShards.Inc()
	return out, nil
}

// scanTLDs pushes the TLD registry through the same scan pipeline,
// folding into the shard-0 outcome.
func (run *ShardRunner) scanTLDs(ctx context.Context, sc *scanner.Scanner, tlds []population.TLDSpec, out *ShardOutcome) error {
	names := make([]dnswire.Name, 0, len(tlds))
	for _, t := range tlds {
		n, err := dnswire.FromLabels(t.Name)
		if err != nil {
			return err
		}
		names = append(names, n)
	}
	var sinks []*surveySink
	err := sc.ScanAll(ctx, scanner.Names(names), func(int) scanner.Sink {
		// TLD scans charge iteration work but not the domain counter —
		// survey_domains_scanned_total means registered domains.
		s := &surveySink{agg: compliance.NewAggregate(), mIterWork: run.mIterWork}
		sinks = append(sinks, s)
		return s
	})
	if err != nil {
		return err
	}
	agg := compliance.NewAggregate()
	for _, s := range sinks {
		agg.Merge(s.agg)
		out.ScanErrors += s.scanErrors
	}
	out.TLDs = agg
	return nil
}

// DuplicateShardError is the typed rejection ReportBuilder.Add returns
// when a shard's outcome arrives twice — the enforcement point that a
// resumed or re-leased survey never double-merges.
type DuplicateShardError struct {
	Index int
}

func (e *DuplicateShardError) Error() string {
	return fmt.Sprintf("core: shard %d already merged into the report", e.Index)
}

// ReportBuilder folds ShardOutcomes into the final SurveyReport. Add
// accepts outcomes in any order but each shard index exactly once;
// Finish computes the derived figures. The registry-side aggregates
// (TLDAgg) come from the spec, not the outcomes — they are generated,
// not scanned.
type ReportBuilder struct {
	report      *SurveyReport
	transferred map[string]bool
	merged      map[int]bool
}

// NewReportBuilder prepares an empty report for the survey described
// by spec.
func NewReportBuilder(spec SurveySpec) *ReportBuilder {
	return &ReportBuilder{
		report: &SurveyReport{
			Agg:       compliance.NewAggregate(),
			Operators: analysis.NewOperatorStats(),
			TLDAgg:    population.AggregateTLDs(population.GenerateTLDs(spec.Seed)),
		},
		transferred: make(map[string]bool),
		merged:      make(map[int]bool),
	}
}

// Add merges one shard's outcome. A second outcome for the same shard
// returns *DuplicateShardError and changes nothing.
func (b *ReportBuilder) Add(o *ShardOutcome) error {
	if o == nil {
		return fmt.Errorf("core: nil shard outcome")
	}
	if b.merged[o.Index] {
		return &DuplicateShardError{Index: o.Index}
	}
	b.merged[o.Index] = true
	b.report.Agg.Merge(o.Agg)
	b.report.Operators.Merge(o.Operators)
	b.report.ScanErrors += o.ScanErrors
	b.report.DomainsUnderIDTLDs += o.DomainsUnderIDTLDs
	if o.TLDs != nil {
		b.report.TLDs = *o.TLDs
	}
	for _, name := range o.TransferredTLDs {
		b.transferred[name] = true
	}
	return nil
}

// Merged reports whether the shard's outcome has already been added.
func (b *ReportBuilder) Merged(index int) bool { return b.merged[index] }

// MergedCount returns how many distinct shards have been added.
func (b *ReportBuilder) MergedCount() int { return len(b.merged) }

// Finish computes the derived figures and returns the report.
func (b *ReportBuilder) Finish() *SurveyReport {
	b.report.TLDZonesTransferred = len(b.transferred)
	// Figure 1 CDFs from the merged histograms.
	iterHist := make(map[int]int, len(b.report.Agg.IterationsHist))
	for v, c := range b.report.Agg.IterationsHist {
		iterHist[int(v)] = c
	}
	b.report.IterCDF = analysis.CDFFromHist(iterHist)
	b.report.SaltCDF = analysis.CDFFromHist(b.report.Agg.SaltLenHist)
	return b.report
}
