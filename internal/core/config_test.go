package core

import (
	"context"
	"errors"
	"testing"
)

func TestSurveyConfigValidate(t *testing.T) {
	cases := []struct {
		name  string
		cfg   SurveyConfig
		field string // empty = valid
	}{
		{"zero config", SurveyConfig{}, ""},
		{"typical", SurveyConfig{Registered: 600, Shards: 3}, ""},
		{"explicit modes", SurveyConfig{Registered: 10, Signing: SigningEager}, ""},
		{"negative registered", SurveyConfig{Registered: -1}, "Registered"},
		{"negative shards", SurveyConfig{Registered: 10, Shards: -2}, "Shards"},
		{"shards without registered", SurveyConfig{Shards: 4}, "Shards"},
		{"negative workers", SurveyConfig{Registered: 10, Workers: -1}, "Workers"},
		{"negative qps", SurveyConfig{Registered: 10, QPS: -5}, "QPS"},
		{"unknown signing mode", SurveyConfig{Registered: 10, Signing: SigningMode(99)}, "Signing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("Validate() = %v, want *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("ConfigError.Field = %q, want %q", ce.Field, tc.field)
			}
		})
	}
}

// TestRunSurveyRejectsInvalidConfig pins that validation happens before
// any work: RunSurvey surfaces the typed error as-is.
func TestRunSurveyRejectsInvalidConfig(t *testing.T) {
	_, err := RunSurvey(context.Background(), SurveyConfig{Registered: -3})
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("RunSurvey error = %v, want *ConfigError", err)
	}
}

func TestSurveyConfigWithDefaults(t *testing.T) {
	got := SurveyConfig{}.withDefaults()
	if got.Registered != 30200 || got.Workers != 64 || got.Shards != 1 || got.Signing != SigningLazy {
		t.Fatalf("withDefaults() = %+v", got)
	}
	// Explicit values survive; the input is not mutated.
	in := SurveyConfig{Registered: 7, Workers: 2, Shards: 3, Signing: SigningEager}
	if got := in.withDefaults(); got != in {
		t.Fatalf("withDefaults() rewrote explicit fields: %+v", got)
	}
}
