// Package core ties the substrates into the paper's two experiments and
// is the library's main entry point:
//
//   - RunSurvey (§4.1/§5.1): generate a calibrated synthetic domain
//     universe, materialize it into real signed zones served on a
//     simulated Internet, scan every domain through a recursive
//     resolver with a zdns-style scanner, and aggregate RFC 9276
//     compliance — Figure 1, Table 2, and the TLD statistics.
//
//   - RunTrancoStudy (§5.1, Figure 2): the same pipeline over a
//     Tranco-style ranked universe.
//
//   - RunResolverStudy (§4.2/§5.2): stand up rfc9276-in-the-wild.com
//     with its 49 crafted subdomains, deploy a resolver fleet modeled
//     on the measured vendor mix, probe every resolver (open ones
//     directly, closed ones through a simulated RIPE Atlas), classify
//     Items 6–12 behaviour, and build the Figure 3 series.
package core

import (
	"context"
	"sync"

	"repro/internal/analysis"
	"repro/internal/compliance"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/population"
	"repro/internal/scanner"
)

// Default simulation clock: signatures valid around this instant.
const (
	DefaultInception  = 1709251200 // 2024-03-01, the paper's scan month
	DefaultExpiration = 1717200000 // 2024-06-01
	DefaultNow        = 1712000000 // 2024-04-01, inside the window
)

// SurveyConfig sizes the §4.1 domain measurement.
type SurveyConfig struct {
	// Registered is the number of registered domains (paper: 302 M;
	// default 1:10,000 scale = 30,200).
	Registered int
	// Seed drives every random choice.
	Seed uint64
	// Workers is the scanner concurrency.
	Workers int
	// QPS rate-limits the scanner (0 = unlimited; the paper used
	// 14.7 K qps against 1.1.1.1).
	QPS int
}

// SurveyReport is the evaluated §5.1 output.
type SurveyReport struct {
	Universe *population.Universe
	// Agg summarizes the scanned domain classifications.
	Agg *compliance.Aggregate
	// IterCDF and SaltCDF feed Figure 1.
	IterCDF, SaltCDF *analysis.CDF
	// Operators feeds Table 2.
	Operators *analysis.OperatorStats
	// TLDs summarizes the TLD registry (scanned end-to-end).
	TLDs compliance.Aggregate
	// TLDAgg is the registry-side aggregate (opt-out, Identity
	// Digital cohort, open zone data).
	TLDAgg population.TLDAggregate
	// DomainsUnderIDTLDs counts registered domains under Identity
	// Digital TLDs (the paper's ≥12.6 M lower bound).
	DomainsUnderIDTLDs int
	// ScanErrors counts domains whose scan failed.
	ScanErrors int
	// TLDZonesTransferred counts Identity Digital TLD zones obtained
	// via AXFR (vs. estimated from the registered-domain list).
	TLDZonesTransferred int
}

// RunSurvey executes the full domain-side experiment.
func RunSurvey(ctx context.Context, cfg SurveyConfig) (*SurveyReport, error) {
	if cfg.Registered == 0 {
		cfg.Registered = 30200
	}
	if cfg.Workers == 0 {
		cfg.Workers = 64
	}
	u, err := population.Generate(population.Config{
		Registered: cfg.Registered,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	dep, err := population.Deploy(u, netsim.NewNetwork(cfg.Seed), DefaultInception, DefaultExpiration)
	if err != nil {
		return nil, err
	}
	resolverAddr, err := installScanResolver(dep.Hierarchy)
	if err != nil {
		return nil, err
	}
	sc := scanner.New(scanner.Config{
		Exchanger: dep.Hierarchy.Net,
		Resolver:  resolverAddr,
		Workers:   cfg.Workers,
		QPS:       cfg.QPS,
		Seed:      cfg.Seed + 1,
	})

	report := &SurveyReport{
		Universe:  u,
		Agg:       compliance.NewAggregate(),
		Operators: analysis.NewOperatorStats(),
		TLDAgg:    population.AggregateTLDs(u.TLDs),
	}

	// Scan every registered domain.
	var mu sync.Mutex
	names := make([]dnswire.Name, len(u.Domains))
	for i := range u.Domains {
		names[i] = u.Domains[i].Name
	}
	err = sc.ScanAll(ctx, names, func(r scanner.Result) {
		mu.Lock()
		defer mu.Unlock()
		if r.Err != nil {
			report.ScanErrors++
			return
		}
		c := compliance.Classify(r.Facts)
		report.Agg.Add(c)
		if c.NSEC3Enabled {
			report.Operators.Add(operatorKeys(r.Facts.NSHosts), c.Iterations, c.SaltLen)
		}
	})
	if err != nil {
		return nil, err
	}

	// Scan the TLDs end-to-end through the same pipeline.
	tldAgg := compliance.NewAggregate()
	tldNames := make([]dnswire.Name, 0, len(u.TLDs))
	for _, t := range u.TLDs {
		n, err := dnswire.FromLabels(t.Name)
		if err != nil {
			return nil, err
		}
		tldNames = append(tldNames, n)
	}
	err = sc.ScanAll(ctx, tldNames, func(r scanner.Result) {
		mu.Lock()
		defer mu.Unlock()
		if r.Err != nil {
			report.ScanErrors++
			return
		}
		tldAgg.Add(compliance.Classify(r.Facts))
	})
	if err != nil {
		return nil, err
	}
	report.TLDs = *tldAgg

	// Figure 1 CDFs from the scanned histograms.
	iterHist := make(map[int]int, len(report.Agg.IterationsHist))
	for v, c := range report.Agg.IterationsHist {
		iterHist[int(v)] = c
	}
	report.IterCDF = analysis.CDFFromHist(iterHist)
	report.SaltCDF = analysis.CDFFromHist(report.Agg.SaltLenHist)

	// The ≥12.6 M-domains estimate: count delegations in Identity
	// Digital TLD zones obtained via AXFR where the registry opens its
	// zone data (the paper's CZDS/AXFR path), and fall back to our
	// registered-domain list — "necessarily incomplete and therefore
	// only a lower bound" (§5.1) — for the rest.
	idTLD := make(map[string]bool)
	for _, t := range u.TLDs {
		if t.Registry == population.IdentityDigitalName {
			idTLD[t.Name] = true
		}
	}
	listCounts := make(map[string]int)
	for i := range u.Domains {
		if idTLD[u.Domains[i].TLD] {
			listCounts[u.Domains[i].TLD]++
		}
	}
	for _, t := range u.TLDs {
		if !idTLD[t.Name] {
			continue
		}
		counted := false
		if t.OpenZoneData {
			apex, err := dnswire.FromLabels(t.Name)
			if err != nil {
				return nil, err
			}
			rrs, err := scanner.Transfer(ctx, dep.Hierarchy.Net, dep.TLDServers[t.Name], apex)
			if err == nil {
				report.DomainsUnderIDTLDs += scanner.CountDelegations(apex, rrs)
				report.TLDZonesTransferred++
				counted = true
			}
		}
		if !counted {
			report.DomainsUnderIDTLDs += listCounts[t.Name]
		}
	}
	return report, nil
}

// operatorKeys maps NS host names to operator keys: the registered
// domain (last two labels) of each host, the paper's §5.1 aggregation.
func operatorKeys(hosts []dnswire.Name) []string {
	out := make([]string, 0, len(hosts))
	for _, h := range hosts {
		labels := h.Labels()
		if len(labels) >= 2 {
			out = append(out, labels[len(labels)-2]+"."+labels[len(labels)-1])
		} else {
			out = append(out, h.String())
		}
	}
	return out
}
