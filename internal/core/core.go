// Package core ties the substrates into the paper's two experiments and
// is the library's main entry point:
//
//   - RunSurvey (§4.1/§5.1): generate a calibrated synthetic domain
//     universe, materialize it into real signed zones served on a
//     simulated Internet, scan every domain through a recursive
//     resolver with a zdns-style scanner, and aggregate RFC 9276
//     compliance — Figure 1, Table 2, and the TLD statistics. The
//     pipeline streams: the universe is generated, deployed, scanned,
//     and merged one shard at a time, so peak memory is bounded by the
//     shard size rather than the universe size, and the shard count
//     never changes the results.
//
//   - RunTrancoStudy (§5.1, Figure 2): the same pipeline over a
//     Tranco-style ranked universe.
//
//   - RunResolverStudy (§4.2/§5.2): stand up rfc9276-in-the-wild.com
//     with its 49 crafted subdomains, deploy a resolver fleet modeled
//     on the measured vendor mix, probe every resolver (open ones
//     directly, closed ones through a simulated RIPE Atlas), classify
//     Items 6–12 behaviour, and build the Figure 3 series.
package core

import (
	"context"

	"repro/internal/analysis"
	"repro/internal/compliance"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/scanner"
	"repro/internal/testbed"
)

// Default simulation clock: signatures valid around this instant.
const (
	DefaultInception  = 1709251200 // 2024-03-01, the paper's scan month
	DefaultExpiration = 1717200000 // 2024-06-01
	DefaultNow        = 1712000000 // 2024-04-01, inside the window
)

// SurveyConfig sizes the §4.1 domain measurement.
type SurveyConfig struct {
	// Registered is the number of registered domains (paper: 302 M;
	// default 1:10,000 scale = 30,200).
	Registered int
	// Seed drives every random choice.
	Seed uint64
	// Workers is the scanner concurrency.
	Workers int
	// QPS rate-limits the scanner (0 = unlimited; the paper used
	// 14.7 K qps against 1.1.1.1).
	QPS int
	// Shards splits the run into bounded generate→deploy→scan→merge
	// batches: peak memory is O(Registered/Shards) instead of
	// O(Registered). The shard decomposition never changes the report
	// — every domain is generated from its own index-derived stream
	// (default 1).
	Shards int
	// Signing selects when a shard's zones are signed: lazily on first
	// query (the default — deployment registers sign thunks and the
	// scanner's traffic materializes only what it touches) or eagerly
	// at deploy time. The report is identical either way.
	Signing SigningMode
	// Obs, when set, receives pipeline metrics: survey progress
	// counters plus the scanner's, resolver's, and network's own
	// instrumentation. The registry never feeds back into the report,
	// so results are identical with or without it.
	Obs *obs.Registry
	// Trace, when set, receives one NDJSON span per pipeline phase
	// per shard (generate, deploy, scan, merge).
	Trace *obs.Tracer
}

// SurveyReport is the evaluated §5.1 output. Every field is a merged
// aggregate; the per-shard universes are discarded as the pipeline
// streams past them.
type SurveyReport struct {
	// Agg summarizes the scanned domain classifications.
	Agg *compliance.Aggregate
	// IterCDF and SaltCDF feed Figure 1.
	IterCDF, SaltCDF *analysis.CDF
	// Operators feeds Table 2.
	Operators *analysis.OperatorStats
	// TLDs summarizes the TLD registry (scanned end-to-end).
	TLDs compliance.Aggregate
	// TLDAgg is the registry-side aggregate (opt-out, Identity
	// Digital cohort, open zone data).
	TLDAgg population.TLDAggregate
	// DomainsUnderIDTLDs counts registered domains under Identity
	// Digital TLDs (the paper's ≥12.6 M lower bound).
	DomainsUnderIDTLDs int
	// ScanErrors counts domains whose scan failed.
	ScanErrors int
	// TLDZonesTransferred counts Identity Digital TLD zones obtained
	// via AXFR (vs. estimated from the registered-domain list).
	TLDZonesTransferred int
}

// surveySink is one scanner worker's private accumulator. Workers
// classify into their own sink lock-free; the shard loop merges the
// sinks once the scan drains.
type surveySink struct {
	agg        *compliance.Aggregate
	ops        *analysis.OperatorStats // nil for the TLD scan
	scanErrors int
	// mScanned / mIterWork are shared across sinks (atomic, nil-safe):
	// domains scanned and the Gruza et al. per-domain verification
	// cost 1+iterations — both order-independent totals.
	mScanned  *obs.Counter
	mIterWork *obs.Counter
}

// Consume implements scanner.Sink.
func (s *surveySink) Consume(r scanner.Result) {
	if r.Err != nil {
		s.scanErrors++
		return
	}
	s.mScanned.Inc()
	c := compliance.Classify(r.Facts)
	s.agg.Add(c)
	if c.NSEC3Enabled {
		s.mIterWork.Add(uint64(1 + c.Iterations))
	}
	if s.ops != nil && c.NSEC3Enabled {
		s.ops.Add(operatorKeys(r.Facts.NSHosts), c.Iterations, c.SaltLen)
	}
}

// RunSurvey executes the full domain-side experiment as a sharded
// stream: each shard is generated, deployed onto its own simulated
// network, scanned, and merged into the report before the next shard
// is touched.
func RunSurvey(ctx context.Context, cfg SurveyConfig) (*SurveyReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	cur, err := population.NewShardCursor(population.Config{
		Registered: cfg.Registered,
		Seed:       cfg.Seed,
	}, cfg.Shards)
	if err != nil {
		return nil, err
	}
	tlds := cur.TLDs()
	report := &SurveyReport{
		Agg:       compliance.NewAggregate(),
		Operators: analysis.NewOperatorStats(),
		TLDAgg:    population.AggregateTLDs(tlds),
	}
	idTLD := make(map[string]bool)
	for _, t := range tlds {
		if t.Registry == population.IdentityDigitalName {
			idTLD[t.Name] = true
		}
	}
	transferred := make(map[string]bool)
	run := &surveyRun{
		cfg:       cfg,
		cache:     testbed.NewSignCache(),
		mScanned:  cfg.Obs.Counter("survey_domains_scanned_total", "registered domains scanned successfully"),
		mIterWork: cfg.Obs.Counter("survey_nsec3_iteration_work_total", "cumulative 1+iterations over scanned NSEC3 zones (Gruza et al. verification cost)"),
		mSigned:   cfg.Obs.Counter("survey_zones_signed_total", "zones signed fresh (deploy-time or lazily on first query)"),
		mReused:   cfg.Obs.Counter("survey_zones_reused_total", "zones served from the sign cache"),
		mLazy:     cfg.Obs.Counter("survey_zones_signed_lazily_total", "zones materialized by their first query instead of at deploy time"),
		mUntouch:  cfg.Obs.Counter("survey_zones_untouched_total", "deployed zones never queried during their shard — work lazy signing skipped entirely"),
		mRate:     cfg.Obs.Gauge("survey_domains_per_second", "cumulative registered-domain scan throughput"),
	}
	for index := 0; ; index++ {
		gen := cfg.Trace.Start("generate", index)
		shard, err := cur.Next()
		gen.End()
		if err != nil {
			return nil, err
		}
		if shard == nil {
			break
		}
		if err := run.scanShard(ctx, shard, report, idTLD, transferred); err != nil {
			return nil, err
		}
	}
	report.TLDZonesTransferred = len(transferred)

	// Figure 1 CDFs from the merged histograms.
	iterHist := make(map[int]int, len(report.Agg.IterationsHist))
	for v, c := range report.Agg.IterationsHist {
		iterHist[int(v)] = c
	}
	report.IterCDF = analysis.CDFFromHist(iterHist)
	report.SaltCDF = analysis.CDFFromHist(report.Agg.SaltLenHist)
	return report, nil
}

// surveyRun carries the per-run machinery shared by every shard: the
// sign cache that deduplicates infrastructure signing across shard
// deployments, and the obs counters (all no-op without Config.Obs).
// Scan-throughput bookkeeping sums span durations so the tracer stays
// the run's only clock.
type surveyRun struct {
	cfg       SurveyConfig
	cache     *testbed.SignCache
	mScanned  *obs.Counter
	mIterWork *obs.Counter
	mSigned   *obs.Counter
	mReused   *obs.Counter
	mLazy     *obs.Counter
	mUntouch  *obs.Counter
	mRate     *obs.Gauge

	scannedDomains int
	scanSeconds    float64
}

// scanShard deploys one shard, scans it, and merges its aggregates
// into the report. The TLD registry is scanned end-to-end only on
// shard 0 — every shard's deployment signs the TLD zones with the same
// registry parameters, so once is enough. The AXFR delegation count
// runs per shard: a shard's TLD zones delegate exactly that shard's
// domains, so the per-shard counts sum to the whole-universe total.
func (run *surveyRun) scanShard(ctx context.Context, shard *population.Shard, report *SurveyReport, idTLD, transferred map[string]bool) error {
	cfg := run.cfg
	u := shard.Universe
	deploySpan := cfg.Trace.Start("deploy", shard.Index)
	opts := []population.DeployOption{population.WithSignCache(run.cache)}
	if cfg.Signing != SigningEager {
		opts = append(opts, population.WithLazySigning())
	}
	dep, err := population.Deploy(u, netsim.NewNetwork(cfg.Seed+uint64(shard.Index)), DefaultInception, DefaultExpiration, opts...)
	if err != nil {
		return err
	}
	dep.Hierarchy.Net.Instrument(cfg.Obs)
	dep.Hierarchy.Instrument(cfg.Obs)
	resolverAddr, err := installScanResolver(dep.Hierarchy, cfg.Obs)
	if err != nil {
		return err
	}
	sc := scanner.New(scanner.Config{
		Exchanger: dep.Hierarchy.Net,
		Resolver:  resolverAddr,
		Workers:   cfg.Workers,
		QPS:       cfg.QPS,
		Seed:      cfg.Seed + 1 + uint64(shard.Index),
		Obs:       cfg.Obs,
	})
	defer sc.Close()
	deploySpan.End()

	// Scan this shard's registered domains into per-worker sinks.
	names := make([]dnswire.Name, len(u.Domains))
	for i := range u.Domains {
		names[i] = u.Domains[i].Name
	}
	scanSpan := cfg.Trace.Start("scan", shard.Index)
	sinks := make([]*surveySink, 0, cfg.Workers)
	err = sc.ScanAll(ctx, scanner.Names(names), func(int) scanner.Sink {
		s := &surveySink{
			agg: compliance.NewAggregate(), ops: analysis.NewOperatorStats(),
			mScanned: run.mScanned, mIterWork: run.mIterWork,
		}
		sinks = append(sinks, s)
		return s
	})
	if err != nil {
		return err
	}
	if shard.Index == 0 {
		if err := run.scanTLDs(ctx, sc, u.TLDs, report); err != nil {
			return err
		}
	}

	// The ≥12.6 M-domains estimate: count delegations in Identity
	// Digital TLD zones obtained via AXFR where the registry opens its
	// zone data (the paper's CZDS/AXFR path), and fall back to our
	// registered-domain list — "necessarily incomplete and therefore
	// only a lower bound" (§5.1) — for the rest.
	listCounts := make(map[string]int)
	for i := range u.Domains {
		if idTLD[u.Domains[i].TLD] {
			listCounts[u.Domains[i].TLD]++
		}
	}
	for _, t := range u.TLDs {
		if !idTLD[t.Name] {
			continue
		}
		counted := false
		// A shard-local zone delegates exactly the shard's domains, so
		// for a TLD with none of them the transfer is vacuous: it
		// counts zero delegations and would only force-sign a zone
		// nothing else touches. Shard 0 still transfers every open
		// zone, keeping the transferred set — and the report — exactly
		// what a single-shard run produces.
		if t.OpenZoneData && (shard.Index == 0 || listCounts[t.Name] > 0) {
			apex, err := dnswire.FromLabels(t.Name)
			if err != nil {
				return err
			}
			// The AXFR path force-signs its zone explicitly: under lazy
			// signing a transfer must serve the complete signed zone, so
			// materialize it rather than relying on the query to do it.
			if _, err := dep.Hierarchy.Materialize(ctx, apex); err != nil {
				return err
			}
			rrs, err := scanner.Transfer(ctx, dep.Hierarchy.Net, dep.TLDServers[t.Name], apex)
			if err == nil {
				report.DomainsUnderIDTLDs += scanner.CountDelegations(apex, rrs)
				transferred[t.Name] = true
				counted = true
			}
		}
		if !counted {
			report.DomainsUnderIDTLDs += listCounts[t.Name]
		}
	}

	// Signing-work accounting happens once the shard's traffic has
	// drained: lazy thunks run from query-handling goroutines, so the
	// totals are only final here. SignStats folds eager build-time and
	// lazy post-build work together, keeping the signed/reused counters
	// comparable across signing modes.
	signed, reused := dep.Hierarchy.SignStats()
	run.mSigned.Add(uint64(signed))
	run.mReused.Add(uint64(reused))
	materialized, untouched := dep.Hierarchy.LazyStats()
	run.mLazy.Add(uint64(materialized))
	run.mUntouch.Add(uint64(untouched))

	// The tracer owns the wall clock: throughput is derived from span
	// durations rather than read directly, keeping core deterministic.
	run.scannedDomains += len(u.Domains)
	run.scanSeconds += scanSpan.End().Seconds()
	if run.scanSeconds > 0 {
		run.mRate.Set(float64(run.scannedDomains) / run.scanSeconds)
	}

	mergeSpan := cfg.Trace.Start("merge", shard.Index)
	defer mergeSpan.End()
	for _, s := range sinks {
		report.Agg.Merge(s.agg)
		report.Operators.Merge(s.ops)
		report.ScanErrors += s.scanErrors
	}
	return nil
}

// scanTLDs pushes the TLD registry through the same scan pipeline.
func (run *surveyRun) scanTLDs(ctx context.Context, sc *scanner.Scanner, tlds []population.TLDSpec, report *SurveyReport) error {
	names := make([]dnswire.Name, 0, len(tlds))
	for _, t := range tlds {
		n, err := dnswire.FromLabels(t.Name)
		if err != nil {
			return err
		}
		names = append(names, n)
	}
	var sinks []*surveySink
	err := sc.ScanAll(ctx, scanner.Names(names), func(int) scanner.Sink {
		// TLD scans charge iteration work but not the domain counter —
		// survey_domains_scanned_total means registered domains.
		s := &surveySink{agg: compliance.NewAggregate(), mIterWork: run.mIterWork}
		sinks = append(sinks, s)
		return s
	})
	if err != nil {
		return err
	}
	agg := compliance.NewAggregate()
	for _, s := range sinks {
		agg.Merge(s.agg)
		report.ScanErrors += s.scanErrors
	}
	report.TLDs = *agg
	return nil
}

// operatorKeys maps NS host names to operator keys: the registered
// domain (last two labels) of each host, the paper's §5.1 aggregation.
func operatorKeys(hosts []dnswire.Name) []string {
	out := make([]string, 0, len(hosts))
	for _, h := range hosts {
		labels := h.Labels()
		if len(labels) >= 2 {
			out = append(out, labels[len(labels)-2]+"."+labels[len(labels)-1])
		} else {
			out = append(out, h.String())
		}
	}
	return out
}
