// Package core ties the substrates into the paper's two experiments and
// is the library's main entry point:
//
//   - RunSurvey (§4.1/§5.1): generate a calibrated synthetic domain
//     universe, materialize it into real signed zones served on a
//     simulated Internet, scan every domain through a recursive
//     resolver with a zdns-style scanner, and aggregate RFC 9276
//     compliance — Figure 1, Table 2, and the TLD statistics. The
//     pipeline streams: the universe is generated, deployed, scanned,
//     and merged one shard at a time, so peak memory is bounded by the
//     shard size rather than the universe size, and the shard count
//     never changes the results.
//
//   - RunTrancoStudy (§5.1, Figure 2): the same pipeline over a
//     Tranco-style ranked universe.
//
//   - RunResolverStudy (§4.2/§5.2): stand up rfc9276-in-the-wild.com
//     with its 49 crafted subdomains, deploy a resolver fleet modeled
//     on the measured vendor mix, probe every resolver (open ones
//     directly, closed ones through a simulated RIPE Atlas), classify
//     Items 6–12 behaviour, and build the Figure 3 series.
package core

import (
	"context"

	"repro/internal/analysis"
	"repro/internal/compliance"
	"repro/internal/dnswire"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/scanner"
)

// Default simulation clock: signatures valid around this instant.
const (
	DefaultInception  = 1709251200 // 2024-03-01, the paper's scan month
	DefaultExpiration = 1717200000 // 2024-06-01
	DefaultNow        = 1712000000 // 2024-04-01, inside the window
)

// SurveyConfig sizes the §4.1 domain measurement.
type SurveyConfig struct {
	// Registered is the number of registered domains (paper: 302 M;
	// default 1:10,000 scale = 30,200).
	Registered int
	// Seed drives every random choice.
	Seed uint64
	// Workers is the scanner concurrency.
	Workers int
	// QPS rate-limits the scanner (0 = unlimited; the paper used
	// 14.7 K qps against 1.1.1.1).
	QPS int
	// Shards splits the run into bounded generate→deploy→scan→merge
	// batches: peak memory is O(Registered/Shards) instead of
	// O(Registered). The shard decomposition never changes the report
	// — every domain is generated from its own index-derived stream
	// (default 1).
	Shards int
	// Signing selects when a shard's zones are signed: lazily on first
	// query (the default — deployment registers sign thunks and the
	// scanner's traffic materializes only what it touches) or eagerly
	// at deploy time. The report is identical either way.
	Signing SigningMode
	// Obs, when set, receives pipeline metrics: survey progress
	// counters plus the scanner's, resolver's, and network's own
	// instrumentation. The registry never feeds back into the report,
	// so results are identical with or without it.
	Obs *obs.Registry
	// Trace, when set, receives one NDJSON span per pipeline phase
	// per shard (generate, deploy, scan, merge).
	Trace *obs.Tracer
}

// SurveyReport is the evaluated §5.1 output. Every field is a merged
// aggregate; the per-shard universes are discarded as the pipeline
// streams past them.
type SurveyReport struct {
	// Agg summarizes the scanned domain classifications.
	Agg *compliance.Aggregate
	// IterCDF and SaltCDF feed Figure 1.
	IterCDF, SaltCDF *analysis.CDF
	// Operators feeds Table 2.
	Operators *analysis.OperatorStats
	// TLDs summarizes the TLD registry (scanned end-to-end).
	TLDs compliance.Aggregate
	// TLDAgg is the registry-side aggregate (opt-out, Identity
	// Digital cohort, open zone data).
	TLDAgg population.TLDAggregate
	// DomainsUnderIDTLDs counts registered domains under Identity
	// Digital TLDs (the paper's ≥12.6 M lower bound).
	DomainsUnderIDTLDs int
	// ScanErrors counts domains whose scan failed.
	ScanErrors int
	// TLDZonesTransferred counts Identity Digital TLD zones obtained
	// via AXFR (vs. estimated from the registered-domain list).
	TLDZonesTransferred int
}

// surveySink is one scanner worker's private accumulator. Workers
// classify into their own sink lock-free; the shard loop merges the
// sinks once the scan drains.
type surveySink struct {
	agg        *compliance.Aggregate
	ops        *analysis.OperatorStats // nil for the TLD scan
	scanErrors int
	// mScanned / mIterWork are shared across sinks (atomic, nil-safe):
	// domains scanned and the Gruza et al. per-domain verification
	// cost 1+iterations — both order-independent totals.
	mScanned  *obs.Counter
	mIterWork *obs.Counter
}

// Consume implements scanner.Sink.
func (s *surveySink) Consume(r scanner.Result) {
	if r.Err != nil {
		s.scanErrors++
		return
	}
	s.mScanned.Inc()
	c := compliance.Classify(r.Facts)
	s.agg.Add(c)
	if c.NSEC3Enabled {
		s.mIterWork.Add(uint64(1 + c.Iterations))
	}
	if s.ops != nil && c.NSEC3Enabled {
		s.ops.Add(operatorKeys(r.Facts.NSHosts), c.Iterations, c.SaltLen)
	}
}

// RunSurvey executes the full domain-side experiment as a sharded
// stream: plan the shards, execute each one (generate, deploy onto its
// own simulated network, scan), and merge its outcome into the report
// before the next shard is touched. It is the thin in-process client
// of the plan/execute/merge engine in engine.go — the distributed
// coordinator/worker runner (internal/distsurvey) drives the exact
// same layers, so both modes produce byte-identical reports.
func RunSurvey(ctx context.Context, cfg SurveyConfig) (*SurveyReport, error) {
	spec, err := cfg.Resolve()
	if err != nil {
		return nil, err
	}
	jobs, err := PlanJobs(spec)
	if err != nil {
		return nil, err
	}
	builder := NewReportBuilder(spec)
	runner := NewShardRunner(cfg.Obs, cfg.Trace, nil)
	for _, job := range jobs {
		out, err := runner.Execute(ctx, job)
		if err != nil {
			return nil, err
		}
		if err := builder.Add(out); err != nil {
			return nil, err
		}
	}
	return builder.Finish(), nil
}

// operatorKeys maps NS host names to operator keys: the registered
// domain (last two labels) of each host, the paper's §5.1 aggregation.
func operatorKeys(hosts []dnswire.Name) []string {
	out := make([]string, 0, len(hosts))
	for _, h := range hosts {
		labels := h.Labels()
		if len(labels) >= 2 {
			out = append(out, labels[len(labels)-2]+"."+labels[len(labels)-1])
		} else {
			out = append(out, h.String())
		}
	}
	return out
}
