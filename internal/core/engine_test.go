package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/analysis"
)

// TestEngineOutcomeJSONRoundTrip drives the plan/execute/merge layers
// the way the distributed runner does — every ShardOutcome through a
// JSON round trip, merged out of order — and requires the exact report
// the in-process RunSurvey produces. This is the in-memory half of the
// distributed golden equivalence test.
func TestEngineOutcomeJSONRoundTrip(t *testing.T) {
	cfg := SurveyConfig{Registered: 600, Seed: 5, Shards: 3}
	want, err := RunSurvey(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	spec, err := cfg.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := PlanJobs(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("planned %d jobs, want 3", len(jobs))
	}
	// A job itself must survive the wire: the coordinator sends it to
	// workers as JSON.
	var decodedJobs []ShardJob
	for _, job := range jobs {
		data, err := json.Marshal(job)
		if err != nil {
			t.Fatal(err)
		}
		var dj ShardJob
		if err := json.Unmarshal(data, &dj); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(job, dj) {
			t.Fatalf("job drifted through JSON: %+v vs %+v", job, dj)
		}
		decodedJobs = append(decodedJobs, dj)
	}

	runner := NewShardRunner(nil, nil, nil)
	outcomes := make([]*ShardOutcome, len(decodedJobs))
	for i, job := range decodedJobs {
		out, err := runner.Execute(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		decoded := &ShardOutcome{}
		if err := json.Unmarshal(data, decoded); err != nil {
			t.Fatal(err)
		}
		outcomes[i] = decoded
	}

	builder := NewReportBuilder(spec)
	for i := len(outcomes) - 1; i >= 0; i-- { // merge out of order
		if err := builder.Add(outcomes[i]); err != nil {
			t.Fatal(err)
		}
	}
	got := builder.Finish()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("decoded+reordered report differs from RunSurvey:\nwant %+v\ngot  %+v", want, got)
	}
	// Rendered bytes too: DeepEqual can miss nothing here, but the
	// render path is the user-visible contract.
	var a, b bytes.Buffer
	analysis.RenderCDF(&a, "iter", want.IterCDF, []int{0, 25, 500})
	analysis.RenderCDF(&b, "iter", got.IterCDF, []int{0, 25, 500})
	analysis.RenderOperatorTable(&a, want.Operators.Top(10))
	analysis.RenderOperatorTable(&b, got.Operators.Top(10))
	if a.String() != b.String() {
		t.Fatalf("rendered output differs:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestReportBuilderRejectsDuplicate pins the never-double-merge
// enforcement point re-leased and resumed shards rely on.
func TestReportBuilderRejectsDuplicate(t *testing.T) {
	spec, err := SurveyConfig{Registered: 100, Seed: 1}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	b := NewReportBuilder(spec)
	out := &ShardOutcome{Index: 2, Agg: nil, Operators: nil}
	if err := b.Add(out); err != nil {
		t.Fatal(err)
	}
	err = b.Add(out)
	var dup *DuplicateShardError
	if !errors.As(err, &dup) || dup.Index != 2 {
		t.Fatalf("second Add returned %v, want *DuplicateShardError{2}", err)
	}
	if b.MergedCount() != 1 || !b.Merged(2) || b.Merged(0) {
		t.Fatalf("merged bookkeeping wrong: count=%d", b.MergedCount())
	}
}

// TestSurveySpecHash: the hash pins exactly the result-affecting
// fields — runtime throttles may change across a resume.
func TestSurveySpecHash(t *testing.T) {
	base, err := SurveyConfig{Registered: 600, Seed: 5, Shards: 4}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	same := base
	same.Workers = 3
	same.QPS = 99
	if base.Hash() != same.Hash() {
		t.Error("Workers/QPS changed the config hash; resumes with different throttles would be refused")
	}
	for _, mut := range []func(*SurveySpec){
		func(s *SurveySpec) { s.Registered++ },
		func(s *SurveySpec) { s.Seed++ },
		func(s *SurveySpec) { s.Shards++ },
		func(s *SurveySpec) { s.Signing = SigningEager },
	} {
		changed := base
		mut(&changed)
		if base.Hash() == changed.Hash() {
			t.Errorf("hash blind to a result-affecting field: %+v vs %+v", base, changed)
		}
	}
}

// TestShardRunnerRejectsForeignJob: an executor must refuse a job
// whose carried hash disagrees with its spec — the wire can feed it
// anything.
func TestShardRunnerRejectsForeignJob(t *testing.T) {
	spec, err := SurveyConfig{Registered: 100, Seed: 1}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := PlanJobs(spec)
	if err != nil {
		t.Fatal(err)
	}
	job := jobs[0]
	job.ConfigHash = "not-the-hash"
	if _, err := NewShardRunner(nil, nil, nil).Execute(context.Background(), job); err == nil {
		t.Fatal("mismatched config hash accepted")
	}
}
