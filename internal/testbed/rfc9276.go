package testbed

import (
	"context"
	"fmt"
	"net/netip"

	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/nsec3"
	"repro/internal/zone"
)

// TestbedDomain is the measurement domain the paper registered.
const TestbedDomain = "rfc9276-in-the-wild.com"

// Subdomain describes one of the crafted test subdomains.
type Subdomain struct {
	// Label under rfc9276-in-the-wild.com ("valid", "expired", "it-5",
	// "it-2501-expired").
	Label string
	// Iterations is the NSEC3 additional-iteration count of the zone.
	Iterations uint16
	// ExpireAll marks the fully expired zone ("expired").
	ExpireAll bool
	// ExpireDenial marks the zone whose NSEC3 RRSIGs are expired
	// ("it-2501-expired", probing Item 7).
	ExpireDenial bool
	// WantNXDOMAIN: the probe queries a non-existent name (the it-N
	// series); otherwise it queries a wildcard-synthesized name
	// (valid/expired).
	WantNXDOMAIN bool
}

// Subdomains returns the paper's 49 test subdomains (§4.2) plus
// it-2501-expired: valid, expired, it-1…it-25, it-50…it-500 in steps of
// 25, and the limit successors it-51, it-101, it-151.
func Subdomains() []Subdomain {
	out := []Subdomain{
		{Label: "valid", Iterations: 0},
		{Label: "expired", Iterations: 0, ExpireAll: true},
	}
	add := func(n uint16) {
		out = append(out, Subdomain{
			Label:        fmt.Sprintf("it-%d", n),
			Iterations:   n,
			WantNXDOMAIN: true,
		})
	}
	for n := uint16(1); n <= 25; n++ {
		add(n)
	}
	for n := uint16(50); n <= 500; n += 25 {
		add(n)
	}
	for _, n := range []uint16{51, 101, 151} {
		add(n)
	}
	out = append(out, Subdomain{
		Label: "it-2501-expired", Iterations: 2501,
		ExpireDenial: true, WantNXDOMAIN: true,
	})
	return out
}

// QName returns the uniquely identifiable probe name for this
// subdomain: NXDOMAIN probes ask for <unique>.www.<label>.<domain>
// (www exists, so neither it nor the apex wildcard matches — an
// authenticated NXDOMAIN carrying the zone's NSEC3 parameters), while
// wildcard probes ask for <unique>.<label>.<domain> (synthesized from
// the apex wildcard, as the paper's cache-busting wildcard records
// provide).
func (s Subdomain) QName(unique string) dnswire.Name {
	base := dnswire.MustParseName(s.Label + "." + TestbedDomain)
	if s.WantNXDOMAIN {
		return base.MustChild("www").MustChild(unique)
	}
	return base.MustChild(unique)
}

// Apex returns the subdomain's zone apex.
func (s Subdomain) Apex() dnswire.Name {
	return dnswire.MustParseName(s.Label + "." + TestbedDomain)
}

// InstallTestbed adds the testbed's zones to a hierarchy builder:
// the rfc9276-in-the-wild.com zone itself plus one delegated,
// separately-signed child zone per subdomain (NSEC3 parameters are
// per-zone state, so each iteration count needs its own zone).
// serverAddr/serverV6 host every testbed zone ("reachable over both
// IPv4 and IPv6", §4.2). The parent "com" and the root must be added
// by the caller.
func InstallTestbed(b *Builder, serverAddr, serverV6 netip.AddrPort) {
	website := dnswire.A{Addr: netip.MustParseAddr("192.0.2.80")}
	b.AddZone(ZoneSpec{
		Apex: dnswire.MustParseName(TestbedDomain),
		Populate: func(z *zone.Zone) {
			// The opt-out/ethics website.
			z.MustAdd(dnswire.RR{Name: z.Apex.MustChild("www"), Class: dnswire.ClassIN, TTL: 300, Data: website})
		},
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC3},
		Server: serverAddr, ServerV6: serverV6,
		// Identical across repeated builds: a sign cache (when the
		// builder has one) reuses the signed zone across shard worlds.
		Shared: true,
	})
	for _, sub := range Subdomains() {
		sub := sub
		b.AddZone(ZoneSpec{
			Apex: sub.Apex(),
			Populate: func(z *zone.Zone) {
				// The website record, an existing leaf for NXDOMAIN
				// probes, and the per-resolver cache-busting wildcard.
				z.MustAdd(dnswire.RR{Name: z.Apex.MustChild("www"), Class: dnswire.ClassIN, TTL: 300, Data: website})
				z.MustAdd(dnswire.RR{Name: z.Apex.Wildcard(), Class: dnswire.ClassIN, TTL: 300, Data: website})
			},
			Sign: zone.SignConfig{
				Denial:           zone.DenialNSEC3,
				NSEC3:            nsec3.Params{Iterations: sub.Iterations}, // never a salt (§4.2)
				ExpireAll:        sub.ExpireAll,
				ExpireDenialSigs: sub.ExpireDenial,
			},
			Server: serverAddr, ServerV6: serverV6,
			Shared: true,
		})
	}
}

// Observation is what the prober saw for one subdomain through one
// resolver — the raw material of Figure 3.
type Observation struct {
	Label      string
	Iterations uint16
	NXProbe    bool
	RCode      dnswire.RCode
	AD         bool
	RA         bool
	EDE        []dnswire.EDE
	Err        error
}

// Transcript is a resolver's complete probe run.
type Transcript struct {
	Resolver     netip.AddrPort
	Unique       string
	Observations []Observation
}

// ProbeResolver queries every test subdomain through the resolver at
// addr, using unique as the per-resolver cache-busting label, and
// records RCODE, AD, RA, and EDE for each — the client side of §4.2.
func ProbeResolver(ctx context.Context, ex netsim.Exchanger, addr netip.AddrPort, unique string) (*Transcript, error) {
	tr := &Transcript{Resolver: addr, Unique: unique}
	for i, sub := range Subdomains() {
		q := dnswire.NewQuery(uint16(0x4000+i), sub.QName(unique), dnswire.TypeA, true)
		resp, err := ex.Exchange(ctx, addr, q)
		obs := Observation{
			Label:      sub.Label,
			Iterations: sub.Iterations,
			NXProbe:    sub.WantNXDOMAIN,
		}
		if err != nil {
			obs.Err = err
		} else {
			obs.RCode = resp.ExtendedRCode()
			obs.AD = resp.Header.AuthenticatedData
			obs.RA = resp.Header.RecursionAvailable
			if opt, ok := resp.OPT(); ok {
				obs.EDE = opt.EDEs
			}
		}
		tr.Observations = append(tr.Observations, obs)
	}
	return tr, nil
}

// Find returns the observation for a label.
func (t *Transcript) Find(label string) (Observation, bool) {
	for _, o := range t.Observations {
		if o.Label == label {
			return o, true
		}
	}
	return Observation{}, false
}

// ItSeries returns the it-N observations sorted by N (excluding
// it-2501-expired).
func (t *Transcript) ItSeries() []Observation {
	var out []Observation
	for _, o := range t.Observations {
		if o.NXProbe && o.Label != "it-2501-expired" {
			out = append(out, o)
		}
	}
	return out
}
