package testbed

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/zone"
)

// SignCache makes repeated hierarchy builds cheap by reusing signing
// work across them — the sharded survey's deployment loop re-creates
// the root, all 1,449 TLD zones, and every operator infrastructure
// zone once per shard, and without a cache re-signs each from scratch.
//
// The cache operates at two levels:
//
//  1. Per-apex key reuse: the first build of a zone generates its
//     KSK/ZSK; later builds of the same apex sign with the same keys.
//     Because a DS record depends only on the child's KSK, this makes
//     delegation DS sets stable across builds, which in turn makes
//     parents of unchanged children byte-identical.
//  2. Content-addressed signed zones: a zone whose apex, signing
//     config, keys, and full record set fingerprint-match a previous
//     build is served from cache without any signing at all.
//
// Only zones marked Shared in their ZoneSpec consult the cache, so
// per-shard leaf zones don't accumulate (memory stays O(shared set)).
// The cache is safe for concurrent signers: lazy hierarchies sign
// shared zones from query-handling goroutines, so sign runs as a
// singleflight — the mutex only guards the maps, never a Sign call,
// and concurrent requests for the same content block on one signer
// while different zones sign in parallel.
type SignCache struct {
	mu       sync.Mutex
	keys     map[dnswire.Name]cachedKeys
	zones    map[[sha256.Size]byte]*zone.Signed
	inflight map[[sha256.Size]byte]*signFlight

	signed int
	reused int
}

type cachedKeys struct {
	ksk, zsk *dnssec.KeyPair
}

// signFlight is one in-progress signing: waiters block on done and
// read sz/err afterwards (written before close, so reads are ordered).
type signFlight struct {
	done chan struct{}
	sz   *zone.Signed
	err  error
}

// NewSignCache creates an empty cache.
func NewSignCache() *SignCache {
	return &SignCache{
		keys:     make(map[dnswire.Name]cachedKeys),
		zones:    make(map[[sha256.Size]byte]*zone.Signed),
		inflight: make(map[[sha256.Size]byte]*signFlight),
	}
}

// Stats reports how many shared zones were signed fresh and how many
// were served from cache since the cache was created.
func (c *SignCache) Stats() (signed, reused int) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.signed, c.reused
}

// keysFor returns the cached key pair for apex, generating (and
// caching) one when absent or when the algorithm changed. The builder
// calls this eagerly even for lazily-signed zones: a delegation's DS
// depends only on the child's KSK, so keys must exist at build time
// while signing itself can wait for the first query.
func (c *SignCache) keysFor(apex dnswire.Name, alg dnswire.SecAlgorithm, rnd io.Reader) (cachedKeys, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys, ok := c.keys[apex]
	if ok && keys.ksk.DNSKEY().Algorithm == alg {
		return keys, nil
	}
	var err error
	if keys.ksk, err = dnssec.GenerateKey(alg, true, rnd); err != nil {
		return cachedKeys{}, err
	}
	if keys.zsk, err = dnssec.GenerateKey(alg, false, rnd); err != nil {
		return cachedKeys{}, err
	}
	c.keys[apex] = keys
	return keys, nil
}

// signAlg resolves the effective algorithm of a config (mirroring
// zone.Sign's default).
func signAlg(cfg zone.SignConfig) dnswire.SecAlgorithm {
	if cfg.Algorithm == 0 {
		return dnswire.AlgECDSAP256SHA256
	}
	return cfg.Algorithm
}

// sign signs z under cfg, reusing cached keys for the apex and a
// cached signed zone when the content fingerprint matches a previous
// build. The returned hit reports whether signing was skipped (either
// a cache hit or a wait on another goroutine's in-flight signing of
// the same content).
//
//repro:ctxexempt the singleflight wait is bounded by the in-flight signer, which is CPU-bound ECDSA over a finite zone, not I/O
func (c *SignCache) sign(z *zone.Zone, cfg zone.SignConfig) (*zone.Signed, bool, error) {
	keys, err := c.keysFor(z.Apex, signAlg(cfg), cfg.Rand)
	if err != nil {
		return nil, false, err
	}
	cfg.KSK, cfg.ZSK = keys.ksk, keys.zsk

	// Fingerprint before Sign: signing mutates the raw zone.
	fp := fingerprint(z, cfg)

	c.mu.Lock()
	if s, ok := c.zones[fp]; ok {
		c.reused++
		c.mu.Unlock()
		return s, true, nil
	}
	if fl, ok := c.inflight[fp]; ok {
		// Another goroutine is signing identical content right now:
		// wait for it rather than signing twice.
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, false, fl.err
		}
		c.mu.Lock()
		c.reused++
		c.mu.Unlock()
		return fl.sz, true, nil
	}
	fl := &signFlight{done: make(chan struct{})}
	c.inflight[fp] = fl
	c.mu.Unlock()

	// Sign outside the lock so distinct zones sign in parallel.
	fl.sz, fl.err = z.Sign(cfg)

	c.mu.Lock()
	delete(c.inflight, fp)
	if fl.err == nil {
		c.zones[fp] = fl.sz
		c.signed++
	}
	c.mu.Unlock()
	close(fl.done)
	if fl.err != nil {
		return nil, false, fl.err
	}
	return fl.sz, false, nil
}

// fingerprint hashes everything that determines a signed zone's bytes:
// the apex, the full signing config (keys included — they decide every
// RRSIG and the DS), and the canonical record set of the raw zone.
// It must run before Sign, which mutates the raw zone.
func fingerprint(z *zone.Zone, cfg zone.SignConfig) [sha256.Size]byte {
	h := sha256.New()
	put := func(b []byte) {
		_, _ = h.Write(b) // sha256.Hash.Write never fails (hash.Hash contract)
	}
	write := func(s string) {
		put([]byte(s))
		put([]byte{0}) // NUL separator so "a"+"bc" != "ab"+"c"
	}
	write(string(z.Apex))
	write(fmt.Sprintf("alg=%d denial=%d optout=%t expall=%t expden=%t",
		cfg.Algorithm, cfg.Denial, cfg.OptOut, cfg.ExpireAll, cfg.ExpireDenialSigs))
	write(fmt.Sprintf("n3=%d/%d/%x", cfg.NSEC3.Alg, cfg.NSEC3.Iterations, cfg.NSEC3.Salt))
	var window [8]byte
	binary.BigEndian.PutUint32(window[:4], cfg.Inception)
	binary.BigEndian.PutUint32(window[4:], cfg.Expiration)
	put(window[:])
	if cfg.KSK != nil {
		put(cfg.KSK.DNSKEY().PublicKey)
	}
	if cfg.ZSK != nil {
		put(cfg.ZSK.DNSKEY().PublicKey)
	}
	for _, rr := range z.Records() {
		write(rr.String())
	}
	var fp [sha256.Size]byte
	h.Sum(fp[:0])
	return fp
}
