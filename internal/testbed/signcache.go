package testbed

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/zone"
)

// SignCache makes repeated hierarchy builds cheap by reusing signing
// work across them — the sharded survey's deployment loop re-creates
// the root, all 1,449 TLD zones, and every operator infrastructure
// zone once per shard, and without a cache re-signs each from scratch.
//
// The cache operates at two levels:
//
//  1. Per-apex key reuse: the first build of a zone generates its
//     KSK/ZSK; later builds of the same apex sign with the same keys.
//     Because a DS record depends only on the child's KSK, this makes
//     delegation DS sets stable across builds, which in turn makes
//     parents of unchanged children byte-identical.
//  2. Content-addressed signed zones: a zone whose apex, signing
//     config, keys, and full record set fingerprint-match a previous
//     build is served from cache without any signing at all.
//
// Only zones marked Shared in their ZoneSpec consult the cache, so
// per-shard leaf zones don't accumulate (memory stays O(shared set)).
// The cache is safe for concurrent builders.
type SignCache struct {
	mu    sync.Mutex
	keys  map[dnswire.Name]cachedKeys
	zones map[[sha256.Size]byte]*zone.Signed

	signed int
	reused int
}

type cachedKeys struct {
	ksk, zsk *dnssec.KeyPair
}

// NewSignCache creates an empty cache.
func NewSignCache() *SignCache {
	return &SignCache{
		keys:  make(map[dnswire.Name]cachedKeys),
		zones: make(map[[sha256.Size]byte]*zone.Signed),
	}
}

// Stats reports how many shared zones were signed fresh and how many
// were served from cache since the cache was created.
func (c *SignCache) Stats() (signed, reused int) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.signed, c.reused
}

// sign signs z under cfg, reusing cached keys for the apex and a
// cached signed zone when the content fingerprint matches a previous
// build. The returned hit reports whether signing was skipped.
func (c *SignCache) sign(z *zone.Zone, cfg zone.SignConfig) (signed *zone.Signed, hit bool, err error) {
	alg := cfg.Algorithm
	if alg == 0 {
		alg = dnswire.AlgECDSAP256SHA256 // mirror zone.Sign's default
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	keys, ok := c.keys[z.Apex]
	if !ok || keys.ksk.DNSKEY().Algorithm != alg {
		if keys.ksk, err = dnssec.GenerateKey(alg, true, cfg.Rand); err != nil {
			return nil, false, err
		}
		if keys.zsk, err = dnssec.GenerateKey(alg, false, cfg.Rand); err != nil {
			return nil, false, err
		}
		c.keys[z.Apex] = keys
	}
	cfg.KSK, cfg.ZSK = keys.ksk, keys.zsk

	fp := fingerprint(z, cfg)
	if s, ok := c.zones[fp]; ok {
		c.reused++
		return s, true, nil
	}
	// Builds run sequentially in the survey loop, so signing under the
	// lock costs nothing and keeps the double-sign race trivial.
	s, err := z.Sign(cfg)
	if err != nil {
		return nil, false, err
	}
	c.zones[fp] = s
	c.signed++
	return s, false, nil
}

// fingerprint hashes everything that determines a signed zone's bytes:
// the apex, the full signing config (keys included — they decide every
// RRSIG and the DS), and the canonical record set of the raw zone.
// It must run before Sign, which mutates the raw zone.
func fingerprint(z *zone.Zone, cfg zone.SignConfig) [sha256.Size]byte {
	h := sha256.New()
	put := func(b []byte) {
		_, _ = h.Write(b) // sha256.Hash.Write never fails (hash.Hash contract)
	}
	write := func(s string) {
		put([]byte(s))
		put([]byte{0}) // NUL separator so "a"+"bc" != "ab"+"c"
	}
	write(string(z.Apex))
	write(fmt.Sprintf("alg=%d denial=%d optout=%t expall=%t expden=%t",
		cfg.Algorithm, cfg.Denial, cfg.OptOut, cfg.ExpireAll, cfg.ExpireDenialSigs))
	write(fmt.Sprintf("n3=%d/%d/%x", cfg.NSEC3.Alg, cfg.NSEC3.Iterations, cfg.NSEC3.Salt))
	var window [8]byte
	binary.BigEndian.PutUint32(window[:4], cfg.Inception)
	binary.BigEndian.PutUint32(window[4:], cfg.Expiration)
	put(window[:])
	if cfg.KSK != nil {
		put(cfg.KSK.DNSKEY().PublicKey)
	}
	if cfg.ZSK != nil {
		put(cfg.ZSK.DNSKEY().PublicKey)
	}
	for _, rr := range z.Records() {
		write(rr.String())
	}
	var fp [sha256.Size]byte
	h.Sum(fp[:0])
	return fp
}
