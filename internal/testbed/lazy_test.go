package testbed

import (
	"context"
	"testing"

	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/nsec3"
	"repro/internal/zone"
)

// buildLazyWorld builds a three-level hierarchy (root eager, com and a
// shared domain zone lazy) with WithLazySigning.
func buildLazyWorld(t *testing.T, opts ...BuilderOption) *Hierarchy {
	t.Helper()
	b := NewBuilder(tInception, tExpiration, append([]BuilderOption{WithLazySigning()}, opts...)...)
	b.AddZone(ZoneSpec{
		Apex:   dnswire.Root,
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC},
		Server: netsim.Addr4(198, 41, 0, 4),
	})
	b.AddZone(ZoneSpec{
		Apex:   dnswire.MustParseName("com"),
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC3, OptOut: true},
		Server: netsim.Addr4(192, 5, 6, 30),
	})
	b.AddZone(ZoneSpec{
		Apex:   dnswire.MustParseName("shared.com"),
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC3, NSEC3: nsec3.Params{Iterations: 5}},
		Shared: true,
		Server: netsim.Addr4(192, 0, 2, 53),
	})
	h, err := b.Build(netsim.NewNetwork(2))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestBuildLazySigning(t *testing.T) {
	h := buildLazyWorld(t)
	// Only the root (trust anchor) is signed eagerly.
	if len(h.Zones) != 1 {
		t.Fatalf("eager zones = %d, want 1 (root only)", len(h.Zones))
	}
	root, ok := h.Zones[dnswire.Root]
	if !ok {
		t.Fatal("root zone not signed eagerly")
	}
	// Keys are generated eagerly even for lazy zones, so the parent's
	// DS records exist before any child is materialized.
	com := dnswire.MustParseName("com")
	if len(root.Zone.Lookup(com, dnswire.TypeDS)) == 0 {
		t.Fatal("root has no DS for lazy com zone")
	}
	if signed, reused := h.SignStats(); signed != 1 || reused != 0 {
		t.Fatalf("SignStats before touch = %d/%d, want 1/0", signed, reused)
	}
	if m, u := h.LazyStats(); m != 0 || u != 2 {
		t.Fatalf("LazyStats before touch = %d/%d, want 0/2", m, u)
	}

	sz, err := h.Materialize(context.Background(), com)
	if err != nil {
		t.Fatal(err)
	}
	if got := sz.Zone.Lookup(com, dnswire.TypeNSEC3PARAM); len(got) != 1 {
		t.Fatalf("materialized com has %d NSEC3PARAMs, want 1", len(got))
	}
	if m, u := h.LazyStats(); m != 1 || u != 1 {
		t.Fatalf("LazyStats after com = %d/%d, want 1/1", m, u)
	}
	if signed, _ := h.SignStats(); signed != 2 {
		t.Fatalf("SignStats after com = %d signed, want 2", signed)
	}
	// Idempotent: a second Materialize is a lookup, not a re-sign.
	if _, err := h.Materialize(context.Background(), com); err != nil {
		t.Fatal(err)
	}
	if signed, _ := h.SignStats(); signed != 2 {
		t.Fatal("second Materialize re-signed the zone")
	}
	// Eager zones materialize as a plain lookup; unknown apexes error.
	if got, err := h.Materialize(context.Background(), dnswire.Root); err != nil || got != root {
		t.Fatalf("Materialize(root) = %v, %v", got, err)
	}
	if _, err := h.Materialize(context.Background(), dnswire.MustParseName("nope.example")); err == nil {
		t.Fatal("Materialize of unknown apex should error")
	}
}

// TestBuildLazySharedUsesCache: a Shared lazy zone materialized in two
// hierarchies built from one SignCache signs once and reuses once.
func TestBuildLazySharedUsesCache(t *testing.T) {
	cache := NewSignCache()
	shared := dnswire.MustParseName("shared.com")

	h1 := buildLazyWorld(t, WithCache(cache))
	if _, err := h1.Materialize(context.Background(), shared); err != nil {
		t.Fatal(err)
	}
	if signed, reused := h1.SignStats(); signed != 2 || reused != 0 {
		t.Fatalf("first build SignStats = %d/%d, want 2/0", signed, reused)
	}

	h2 := buildLazyWorld(t, WithCache(cache))
	if _, err := h2.Materialize(context.Background(), shared); err != nil {
		t.Fatal(err)
	}
	if signed, reused := h2.SignStats(); signed != 1 || reused != 1 {
		t.Fatalf("second build SignStats = %d/%d, want 1/1 (shared zone from cache)", signed, reused)
	}
}
