package testbed

import (
	"context"
	"testing"

	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/nsec3"
	"repro/internal/zone"
)

const (
	tInception  = 1709251200
	tExpiration = 1717200000
)

func buildWorld(t testing.TB) *Hierarchy {
	t.Helper()
	b := NewBuilder(tInception, tExpiration)
	b.AddZone(ZoneSpec{
		Apex:   dnswire.Root,
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC},
		Server: netsim.Addr4(198, 41, 0, 4),
	})
	b.AddZone(ZoneSpec{
		Apex:   dnswire.MustParseName("com"),
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC3, OptOut: true},
		Server: netsim.Addr4(192, 5, 6, 30),
	})
	InstallTestbed(b, netsim.Addr4(203, 0, 113, 10), netsim.Addr6(0x10))
	h, err := b.Build(netsim.NewNetwork(2))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestBuilderRequiresRoot(t *testing.T) {
	b := NewBuilder(tInception, tExpiration)
	b.AddZone(ZoneSpec{
		Apex: dnswire.MustParseName("com"),
		Sign: zone.SignConfig{Denial: zone.DenialNSEC}, Server: netsim.Addr4(1, 2, 3, 4),
	})
	if _, err := b.Build(netsim.NewNetwork(1)); err == nil {
		t.Fatal("rootless hierarchy accepted")
	}
}

func TestHierarchyStructure(t *testing.T) {
	h := buildWorld(t)
	if len(h.TrustAnchor) != 1 {
		t.Fatalf("trust anchor = %v", h.TrustAnchor)
	}
	// The parent com zone must carry a DS for the testbed domain and
	// each subdomain zone is separately signed.
	comZone := h.Zones[dnswire.MustParseName("com")]
	tb := dnswire.MustParseName(TestbedDomain)
	if len(comZone.Zone.Lookup(tb, dnswire.TypeDS)) == 0 {
		t.Fatal("no DS for testbed domain in com")
	}
	parent := h.Zones[tb]
	for _, sub := range Subdomains() {
		apex := sub.Apex()
		sz, ok := h.Zones[apex]
		if !ok {
			t.Fatalf("zone %s missing", apex)
		}
		params := sz.Zone.Lookup(apex, dnswire.TypeNSEC3PARAM)
		if len(params) != 1 {
			t.Fatalf("%s: %d NSEC3PARAMs", apex, len(params))
		}
		p := params[0].Data.(dnswire.NSEC3PARAM)
		if p.Iterations != sub.Iterations {
			t.Fatalf("%s: iterations %d, want %d", apex, p.Iterations, sub.Iterations)
		}
		if len(p.Salt) != 0 {
			t.Fatalf("%s: salt present (testbed is salt-free, §4.2)", apex)
		}
		if len(parent.Zone.Lookup(apex, dnswire.TypeDS)) == 0 {
			t.Fatalf("no DS for %s in parent", apex)
		}
	}
}

func TestQNameShapes(t *testing.T) {
	subs := Subdomains()
	for _, s := range subs {
		q := s.QName("u123")
		if !q.IsSubdomainOf(s.Apex()) {
			t.Fatalf("%s: qname %s outside apex", s.Label, q)
		}
		if s.WantNXDOMAIN {
			// <unique>.www.<apex>: the www leaf exists, so the apex
			// wildcard cannot match and the answer is NXDOMAIN.
			if q.Labels()[1] != "www" {
				t.Fatalf("%s: NXDOMAIN probe %s not under www", s.Label, q)
			}
		} else if q.CountLabels() != s.Apex().CountLabels()+1 {
			t.Fatalf("%s: wildcard probe %s has wrong depth", s.Label, q)
		}
	}
}

// TestAuthServerAnswersMatchProbeDesign verifies at the authoritative
// level (no resolver) that the probe names produce the intended answer
// shapes: wildcard NOERROR for valid, NXDOMAIN with N-iteration NSEC3
// proofs for it-N.
func TestAuthServerAnswersMatchProbeDesign(t *testing.T) {
	h := buildWorld(t)
	srv := h.Servers[netsim.Addr4(203, 0, 113, 10)]
	ctx := context.Background()
	for _, sub := range Subdomains() {
		q := dnswire.NewQuery(1, sub.QName("probe-a"), dnswire.TypeA, true)
		q.Header.RecursionDesired = false
		resp := srv.Handle(ctx, netsim.Addr4(10, 0, 0, 1), q)
		if sub.WantNXDOMAIN {
			if resp.Header.RCode != dnswire.RCodeNXDomain {
				t.Fatalf("%s: rcode %s, want NXDOMAIN", sub.Label, resp.Header.RCode)
			}
			set, err := nsec3.ExtractResponseSet(resp.Authority)
			if err != nil {
				t.Fatalf("%s: %v", sub.Label, err)
			}
			if set.Params.Iterations != sub.Iterations {
				t.Fatalf("%s: proof iterations %d", sub.Label, set.Params.Iterations)
			}
			if _, _, err := set.VerifyNXDOMAIN(sub.QName("probe-a")); err != nil {
				t.Fatalf("%s: proof invalid: %v", sub.Label, err)
			}
		} else {
			if resp.Header.RCode != dnswire.RCodeNoError || len(resp.Answers) == 0 {
				t.Fatalf("%s: rcode %s answers %d", sub.Label, resp.Header.RCode, len(resp.Answers))
			}
		}
	}
}

func TestUniqueLabelsBustCaches(t *testing.T) {
	// Distinct unique labels must produce distinct probe names.
	s := Subdomains()[2] // an it-N subdomain
	if s.QName("a") == s.QName("b") {
		t.Fatal("probe names collide")
	}
}

func TestTranscriptHelpers(t *testing.T) {
	tr := &Transcript{Observations: []Observation{
		{Label: "valid"},
		{Label: "it-1", NXProbe: true, Iterations: 1},
		{Label: "it-2501-expired", NXProbe: true, Iterations: 2501},
	}}
	if _, ok := tr.Find("valid"); !ok {
		t.Fatal("Find failed")
	}
	if _, ok := tr.Find("nope"); ok {
		t.Fatal("Find hallucinated")
	}
	series := tr.ItSeries()
	if len(series) != 1 || series[0].Label != "it-1" {
		t.Fatalf("ItSeries = %v (must exclude it-2501-expired)", series)
	}
}

func TestServerSideQueryLogIdentifiesSources(t *testing.T) {
	// The §4.2 forwarder-detection mechanism: the shared query log
	// records which source asked for which unique label.
	h := buildWorld(t)
	srv := h.Servers[netsim.Addr4(203, 0, 113, 10)]
	from := netsim.Addr4(10, 9, 9, 9)
	q := dnswire.NewQuery(9, Subdomains()[5].QName("forwardee-42"), dnswire.TypeA, true)
	srv.Handle(context.Background(), from, q)
	srcs := h.Log.SourcesFor(func(n dnswire.Name) bool {
		for _, l := range n.Labels() {
			if l == "forwardee-42" {
				return true
			}
		}
		return false
	})
	if len(srcs) != 1 || srcs[0] != from {
		t.Fatalf("sources = %v", srcs)
	}
}

func TestIPv6Reachability(t *testing.T) {
	h := buildWorld(t)
	// The testbed server answers on its IPv6 address too (§4.2: "All
	// subdomains are reachable over both IPv4 and IPv6").
	q := dnswire.NewQuery(3, dnswire.MustParseName("www.valid."+TestbedDomain), dnswire.TypeA, false)
	resp, err := h.Net.Exchange(context.Background(), netsim.Addr6(0x10), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("rcode = %s", resp.Header.RCode)
	}
}
