package testbed

import (
	"testing"

	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/zone"
)

// buildShared stands up root + com + a leaf, all Shared, against cache.
func buildShared(t *testing.T, cache *SignCache) *Hierarchy {
	t.Helper()
	b := NewBuilder(tInception, tExpiration, WithCache(cache))
	b.AddZone(ZoneSpec{
		Apex: dnswire.Root, Shared: true,
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC},
		Server: netsim.Addr4(198, 41, 0, 4),
	})
	b.AddZone(ZoneSpec{
		Apex: dnswire.MustParseName("com"), Shared: true,
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC3, OptOut: true},
		Server: netsim.Addr4(192, 5, 6, 30),
	})
	b.AddZone(ZoneSpec{
		Apex: dnswire.MustParseName("stable.com"), Shared: true,
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC3},
		Server: netsim.Addr4(203, 0, 113, 77),
	})
	h, err := b.Build(netsim.NewNetwork(1))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestSignCacheReusesIdenticalBuilds(t *testing.T) {
	cache := NewSignCache()
	h1 := buildShared(t, cache)
	if h1.ZonesSigned != 3 || h1.ZonesReused != 0 {
		t.Fatalf("first build: signed %d reused %d, want 3/0", h1.ZonesSigned, h1.ZonesReused)
	}
	h2 := buildShared(t, cache)
	if h2.ZonesSigned != 0 || h2.ZonesReused != 3 {
		t.Fatalf("second build: signed %d reused %d, want 0/3", h2.ZonesSigned, h2.ZonesReused)
	}
	signed, reused := cache.Stats()
	if signed != 3 || reused != 3 {
		t.Fatalf("cache stats: %d/%d, want 3/3", signed, reused)
	}
	// Key reuse makes the trust anchors (root KSK digest) identical,
	// so a resolver configured against build 1 validates build 2.
	if len(h1.TrustAnchor) != 1 || h1.TrustAnchor[0].String() != h2.TrustAnchor[0].String() {
		t.Fatalf("trust anchors diverged: %v vs %v", h1.TrustAnchor, h2.TrustAnchor)
	}
}

// TestSignCacheMissesOnContentChange: a zone whose record set differs
// must be re-signed, while unchanged zones still hit. The parent chain
// stays consistent because DS depends only on the cached KSK.
func TestSignCacheMissesOnContentChange(t *testing.T) {
	cache := NewSignCache()
	build := func(extra bool) *Hierarchy {
		b := NewBuilder(tInception, tExpiration, WithCache(cache))
		b.AddZone(ZoneSpec{
			Apex: dnswire.Root, Shared: true,
			Sign:   zone.SignConfig{Denial: zone.DenialNSEC},
			Server: netsim.Addr4(198, 41, 0, 4),
		})
		b.AddZone(ZoneSpec{
			Apex: dnswire.MustParseName("com"), Shared: true,
			Sign: zone.SignConfig{Denial: zone.DenialNSEC3},
			Populate: func(z *zone.Zone) {
				if extra {
					z.MustAdd(dnswire.RR{Name: z.Apex.MustChild("added"), Class: dnswire.ClassIN,
						TTL: 300, Data: dnswire.TXT{Strings: []string{"new"}}})
				}
			},
			Server: netsim.Addr4(192, 5, 6, 30),
		})
		h, err := b.Build(netsim.NewNetwork(1))
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	build(false)
	h2 := build(true)
	// com changed (re-signed); root is unchanged because com's DS is
	// derived from its cached KSK.
	if h2.ZonesSigned != 1 || h2.ZonesReused != 1 {
		t.Fatalf("changed build: signed %d reused %d, want 1/1", h2.ZonesSigned, h2.ZonesReused)
	}
}
