// Package testbed assembles complete simulated DNS hierarchies — root,
// TLDs, and leaf zones wired to authoritative servers on a netsim
// network — and reproduces the paper's measurement infrastructure: the
// rfc9276-in-the-wild.com domain with its 49 specially crafted
// subdomains (valid, expired, it-1 … it-500, it-2501-expired) and the
// prober that queries them through a resolver to classify its RFC 9276
// behaviour.
package testbed

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/authserver"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/zone"
)

// ZoneSpec describes one zone to build into a hierarchy.
type ZoneSpec struct {
	// Apex is the zone name.
	Apex dnswire.Name
	// Populate adds the zone's records (SOA/NS/glue are added by the
	// builder; add only data records).
	Populate func(*zone.Zone)
	// Sign configures DNSSEC for the zone. Inception/Expiration are
	// filled from the builder defaults when zero.
	Sign zone.SignConfig
	// Unsigned, when true, leaves the zone without DNSSEC (its
	// delegation gets no DS — an insecure delegation).
	Unsigned bool
	// NSHost overrides the conventional in-bailiwick "ns.<apex>" name
	// server host. An out-of-bailiwick NSHost produces a glue-less
	// delegation that resolvers chase by resolving the host themselves
	// (how operator-run name servers appear in the real DNS).
	NSHost dnswire.Name
	// Shared marks the zone as identical across repeated builds (its
	// content does not depend on the build's shard or seed), making it
	// eligible for the builder's SignCache: keys are reused per apex
	// and signing is skipped entirely on a content match.
	Shared bool
	// Server is the address the zone's authoritative server listens
	// on. Zones may share a server.
	Server netip.AddrPort
	// ServerV6, when valid, adds an IPv6 address for the same server.
	ServerV6 netip.AddrPort
}

// Hierarchy is a built, signed, served DNS tree.
type Hierarchy struct {
	Net         *netsim.Network
	Roots       []netip.AddrPort
	TrustAnchor []dnswire.DS
	// Zones maps apex to its signed zone (nil for unsigned zones).
	Zones map[dnswire.Name]*zone.Signed
	// Servers maps listen address to the server instance.
	Servers map[netip.AddrPort]*authserver.Server
	// Log records queries on every server (shared).
	Log *authserver.QueryLog
	// ZonesSigned and ZonesReused count signing work: zones signed
	// fresh during this build versus served from the builder's
	// SignCache.
	ZonesSigned, ZonesReused int
}

// Builder accumulates zone specs and wires them together.
type Builder struct {
	specs map[dnswire.Name]*ZoneSpec
	// Inception/Expiration default the RRSIG window of every zone.
	Inception, Expiration uint32
	// TTL is the default record TTL.
	TTL uint32
	// Cache, when set, reuses keys and signed zones for specs marked
	// Shared across repeated builds (the sharded survey's deployment
	// loop).
	Cache *SignCache
}

// NewBuilder creates a builder with the given default signing window.
func NewBuilder(inception, expiration uint32) *Builder {
	return &Builder{
		specs:     make(map[dnswire.Name]*ZoneSpec),
		Inception: inception, Expiration: expiration,
		TTL: 300,
	}
}

// AddZone registers a zone spec. The root zone (".") must be included.
func (b *Builder) AddZone(spec ZoneSpec) *Builder {
	s := spec
	b.specs[spec.Apex] = &s
	return b
}

// nsHost returns the zone's name server host: the spec override or the
// conventional in-bailiwick "ns.<apex>".
func (s *ZoneSpec) nsHost() dnswire.Name {
	if s.NSHost != "" {
		return s.NSHost
	}
	if s.Apex.IsRoot() {
		return dnswire.MustParseName("ns.root-servers.invalid")
	}
	return s.Apex.MustChild("ns")
}

// parentOf finds the deepest registered proper ancestor of apex by
// walking up the name, so building stays O(zones × depth).
func (b *Builder) parentOf(apex dnswire.Name) (*ZoneSpec, bool) {
	for cur := apex.Parent(); ; cur = cur.Parent() {
		if spec, ok := b.specs[cur]; ok {
			return spec, true
		}
		if cur.IsRoot() {
			return nil, false
		}
	}
}

// Build signs every zone bottom-up, inserts delegations (NS + glue +
// DS) into parents, registers authoritative servers on net, and returns
// the hierarchy with the root trust anchor.
func (b *Builder) Build(net *netsim.Network) (*Hierarchy, error) {
	rootSpec, ok := b.specs[dnswire.Root]
	if !ok {
		return nil, fmt.Errorf("testbed: hierarchy needs a root zone")
	}
	// Deepest zones first so DS records exist before parents sign.
	order := make([]*ZoneSpec, 0, len(b.specs))
	for _, s := range b.specs {
		order = append(order, s)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := order[i].Apex.CountLabels(), order[j].Apex.CountLabels()
		if di != dj {
			return di > dj
		}
		return order[i].Apex < order[j].Apex
	})

	h := &Hierarchy{
		Net:     net,
		Zones:   make(map[dnswire.Name]*zone.Signed),
		Servers: make(map[netip.AddrPort]*authserver.Server),
		Log:     authserver.NewQueryLog(1 << 16),
	}
	raw := make(map[dnswire.Name]*zone.Zone)

	// First pass: materialize raw zones with SOA, apex NS, glue, data.
	for _, spec := range order {
		z := zone.New(spec.Apex, b.TTL)
		ns := spec.nsHost()
		z.MustAdd(dnswire.RR{Name: spec.Apex, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.SOA{
			MName: ns, RName: spec.Apex.MustChild("hostmaster"),
			Serial: 2024030501, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
		}})
		z.MustAdd(dnswire.RR{Name: spec.Apex, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NS{Host: ns}})
		if ns.IsSubdomainOf(spec.Apex) {
			z.MustAdd(dnswire.RR{Name: ns, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.A{Addr: spec.Server.Addr()}})
			if spec.ServerV6.IsValid() {
				z.MustAdd(dnswire.RR{Name: ns, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.AAAA{Addr: spec.ServerV6.Addr()}})
			}
		}
		if spec.Populate != nil {
			spec.Populate(z)
		}
		raw[spec.Apex] = z
	}

	// Second pass (deepest first): sign, then install delegation + DS
	// into the parent's raw zone.
	for _, spec := range order {
		z := raw[spec.Apex]
		var signed *zone.Signed
		if !spec.Unsigned {
			cfg := spec.Sign
			if cfg.Inception == 0 {
				cfg.Inception, cfg.Expiration = b.Inception, b.Expiration
			}
			var err error
			if b.Cache != nil && spec.Shared {
				var hit bool
				signed, hit, err = b.Cache.sign(z, cfg)
				if hit {
					h.ZonesReused++
				} else if err == nil {
					h.ZonesSigned++
				}
			} else {
				signed, err = z.Sign(cfg)
				h.ZonesSigned++
			}
			if err != nil {
				return nil, fmt.Errorf("testbed: signing %s: %w", spec.Apex, err)
			}
			h.Zones[spec.Apex] = signed
		}
		if parent, ok := b.parentOf(spec.Apex); ok {
			pz := raw[parent.Apex]
			ns := spec.nsHost()
			pz.MustAdd(dnswire.RR{Name: spec.Apex, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NS{Host: ns}})
			if ns.IsSubdomainOf(spec.Apex) {
				// In-bailiwick host: publish glue in the parent.
				pz.MustAdd(dnswire.RR{Name: ns, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.A{Addr: spec.Server.Addr()}})
				if spec.ServerV6.IsValid() {
					pz.MustAdd(dnswire.RR{Name: ns, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.AAAA{Addr: spec.ServerV6.Addr()}})
				}
			}
			if signed != nil {
				ds, err := signed.DSForChild()
				if err != nil {
					return nil, err
				}
				pz.MustAdd(dnswire.RR{Name: spec.Apex, Class: dnswire.ClassIN, TTL: 3600, Data: ds})
			}
		}
	}

	// Third pass: attach zones to servers and register on the network.
	for _, spec := range order {
		srv, ok := h.Servers[spec.Server]
		if !ok {
			srv = authserver.New()
			srv.Log = h.Log
			h.Servers[spec.Server] = srv
			net.Register(spec.Server, srv)
			if spec.ServerV6.IsValid() {
				net.Register(spec.ServerV6, srv)
			}
		} else if spec.ServerV6.IsValid() {
			net.Register(spec.ServerV6, srv)
		}
		if signed, ok := h.Zones[spec.Apex]; ok {
			srv.AddZone(signed)
		} else {
			// Serve the unsigned zone without any DNSSEC material:
			// no DNSKEYs, no RRSIGs, no denial records.
			unsigned, err := raw[spec.Apex].Sign(zone.SignConfig{Denial: zone.DenialNone})
			if err != nil {
				return nil, fmt.Errorf("testbed: serving unsigned %s: %w", spec.Apex, err)
			}
			srv.AddZone(unsigned)
		}
	}

	rootSigned := h.Zones[dnswire.Root]
	if rootSigned == nil {
		return nil, fmt.Errorf("testbed: root must be signed")
	}
	ds, err := rootSigned.DSForChild()
	if err != nil {
		return nil, err
	}
	h.TrustAnchor = []dnswire.DS{ds}
	h.Roots = []netip.AddrPort{rootSpec.Server}
	if rootSpec.ServerV6.IsValid() {
		h.Roots = append(h.Roots, rootSpec.ServerV6)
	}
	return h, nil
}
