// Package testbed assembles complete simulated DNS hierarchies — root,
// TLDs, and leaf zones wired to authoritative servers on a netsim
// network — and reproduces the paper's measurement infrastructure: the
// rfc9276-in-the-wild.com domain with its 49 specially crafted
// subdomains (valid, expired, it-1 … it-500, it-2501-expired) and the
// prober that queries them through a resolver to classify its RFC 9276
// behaviour.
package testbed

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"sync/atomic"

	"repro/internal/authserver"
	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/zone"
)

// ZoneSpec describes one zone to build into a hierarchy.
type ZoneSpec struct {
	// Apex is the zone name.
	Apex dnswire.Name
	// Populate adds the zone's records (SOA/NS/glue are added by the
	// builder; add only data records).
	Populate func(*zone.Zone)
	// Sign configures DNSSEC for the zone. Inception/Expiration are
	// filled from the builder defaults when zero.
	Sign zone.SignConfig
	// Unsigned, when true, leaves the zone without DNSSEC (its
	// delegation gets no DS — an insecure delegation).
	Unsigned bool
	// NSHost overrides the conventional in-bailiwick "ns.<apex>" name
	// server host. An out-of-bailiwick NSHost produces a glue-less
	// delegation that resolvers chase by resolving the host themselves
	// (how operator-run name servers appear in the real DNS).
	NSHost dnswire.Name
	// Shared marks the zone as identical across repeated builds (its
	// content does not depend on the build's shard or seed), making it
	// eligible for the builder's SignCache: keys are reused per apex
	// and signing is skipped entirely on a content match.
	Shared bool
	// BreakDS corrupts the DS digest the parent publishes for this
	// (signed) zone: the delegation points at a key that does not
	// exist, so the chain of trust is verifiably broken — validators
	// must go bogus, not insecure.
	BreakDS bool
	// OmitDS withholds the DS from the parent even though the zone is
	// signed: the parent's authenticated denial of DS makes the
	// delegation provably insecure and the child's DNSSEC material is
	// never validated (an "insecure island" when the child has secure
	// descendants of its own).
	OmitDS bool
	// Server is the address the zone's authoritative server listens
	// on. Zones may share a server.
	Server netip.AddrPort
	// ServerV6, when valid, adds an IPv6 address for the same server.
	ServerV6 netip.AddrPort
}

// Hierarchy is a built, signed, served DNS tree.
type Hierarchy struct {
	Net         *netsim.Network
	Roots       []netip.AddrPort
	TrustAnchor []dnswire.DS
	// Zones maps apex to its signed zone for zones signed eagerly at
	// build time. Lazily-registered zones appear here never — query
	// them through the network or force them with Materialize.
	Zones map[dnswire.Name]*zone.Signed
	// Servers maps listen address to the server instance.
	Servers map[netip.AddrPort]*authserver.Server
	// Log records queries on every server (shared).
	Log *authserver.QueryLog
	// ZonesSigned and ZonesReused count build-time signing work: zones
	// signed fresh during this build versus served from the builder's
	// SignCache. Lazy signing is counted separately (SignStats folds
	// both together).
	ZonesSigned, ZonesReused int

	// hosts maps every apex to its serving server, so Materialize can
	// reach a zone without knowing the topology.
	hosts map[dnswire.Name]*authserver.Server
	// lazySigned/lazyReused count post-build signing work done by lazy
	// thunks: fresh signs versus sign-cache hits. Atomic — thunks run
	// on query-handling goroutines.
	lazySigned, lazyReused atomic.Int64
}

// Materialize forces signing of the zone with the given apex —
// idempotent, and a cheap lookup for zones signed eagerly. AXFR setup
// and tests use it to force-sign a lazy zone without synthesizing a
// query. ctx bounds the wait when another goroutine is already signing
// the apex. The materialized zone is NOT added to h.Zones (which is a
// plain map, read concurrently); it is installed on the serving
// server.
func (h *Hierarchy) Materialize(ctx context.Context, apex dnswire.Name) (*zone.Signed, error) {
	if sz, ok := h.Zones[apex]; ok {
		return sz, nil
	}
	srv, ok := h.hosts[apex]
	if !ok {
		return nil, fmt.Errorf("testbed: no zone %s in hierarchy", apex)
	}
	return srv.Materialize(ctx, apex)
}

// SignStats reports total signing work — eager build-time and lazy
// post-build combined — as fresh signs versus sign-cache hits.
func (h *Hierarchy) SignStats() (signed, reused int) {
	return h.ZonesSigned + int(h.lazySigned.Load()),
		h.ZonesReused + int(h.lazyReused.Load())
}

// LazyStats reports how many lazily-registered zones were materialized
// by queries (or Materialize) and how many were never touched — the
// zones whose raw-zone construction and signing this hierarchy never
// paid for.
func (h *Hierarchy) LazyStats() (materialized, untouched int) {
	for _, srv := range h.Servers {
		m, p := srv.LazyStats()
		materialized += m
		untouched += p
	}
	return materialized, untouched
}

// Instrument attaches an obs registry to every server in the
// hierarchy (lazy sign-wait histogram + lazily-signed counter). Call
// before serving queries.
func (h *Hierarchy) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for _, srv := range h.Servers {
		srv.Instrument(reg)
	}
}

// Builder accumulates zone specs and wires them together.
type Builder struct {
	specs map[dnswire.Name]*ZoneSpec
	// Inception/Expiration default the RRSIG window of every zone.
	Inception, Expiration uint32
	// TTL is the default record TTL.
	TTL uint32

	cache *SignCache
	lazy  bool
}

// BuilderOption configures a Builder at construction.
type BuilderOption func(*Builder)

// WithCache reuses keys and signed zones for specs marked Shared
// across repeated builds (the sharded survey's deployment loop).
func WithCache(c *SignCache) BuilderOption {
	return func(b *Builder) { b.cache = c }
}

// WithLazySigning defers non-root zone signing to first query: Build
// registers each zone as a spec plus a sign thunk on its server, and
// the first query to reach the zone materializes it under a per-zone
// singleflight. Keys are still resolved (and DS records published) at
// build time — a delegation's DS depends only on the child's KSK — so
// the hierarchy validates identically to an eager build. Peak memory
// becomes O(zones touched) instead of O(zones hosted).
func WithLazySigning() BuilderOption {
	return func(b *Builder) { b.lazy = true }
}

// NewBuilder creates a builder with the given default signing window.
func NewBuilder(inception, expiration uint32, opts ...BuilderOption) *Builder {
	b := &Builder{
		specs:     make(map[dnswire.Name]*ZoneSpec),
		Inception: inception, Expiration: expiration,
		TTL: 300,
	}
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// AddZone registers a zone spec. The root zone (".") must be included.
func (b *Builder) AddZone(spec ZoneSpec) *Builder {
	s := spec
	b.specs[spec.Apex] = &s
	return b
}

// nsHost returns the zone's name server host: the spec override or the
// conventional in-bailiwick "ns.<apex>".
func (s *ZoneSpec) nsHost() dnswire.Name {
	if s.NSHost != "" {
		return s.NSHost
	}
	if s.Apex.IsRoot() {
		return dnswire.MustParseName("ns.root-servers.invalid")
	}
	return s.Apex.MustChild("ns")
}

// parentOf finds the deepest registered proper ancestor of apex by
// walking up the name, so building stays O(zones × depth).
func (b *Builder) parentOf(apex dnswire.Name) (*ZoneSpec, bool) {
	for cur := apex.Parent(); ; cur = cur.Parent() {
		if spec, ok := b.specs[cur]; ok {
			return spec, true
		}
		if cur.IsRoot() {
			return nil, false
		}
	}
}

// rawZone materializes a spec's unsigned zone: SOA, apex NS,
// in-bailiwick glue, then the spec's own data records.
func (b *Builder) rawZone(spec *ZoneSpec) *zone.Zone {
	z := zone.New(spec.Apex, b.TTL)
	ns := spec.nsHost()
	z.MustAdd(dnswire.RR{Name: spec.Apex, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.SOA{
		MName: ns, RName: spec.Apex.MustChild("hostmaster"),
		Serial: 2024030501, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
	}})
	z.MustAdd(dnswire.RR{Name: spec.Apex, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NS{Host: ns}})
	if ns.IsSubdomainOf(spec.Apex) {
		z.MustAdd(dnswire.RR{Name: ns, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.A{Addr: spec.Server.Addr()}})
		if spec.ServerV6.IsValid() {
			z.MustAdd(dnswire.RR{Name: ns, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.AAAA{Addr: spec.ServerV6.Addr()}})
		}
	}
	if spec.Populate != nil {
		spec.Populate(z)
	}
	return z
}

// signConfig resolves a spec's signing config against the builder's
// default validity window.
func (b *Builder) signConfig(spec *ZoneSpec) zone.SignConfig {
	cfg := spec.Sign
	if cfg.Inception == 0 {
		cfg.Inception, cfg.Expiration = b.Inception, b.Expiration
	}
	return cfg
}

// publishedDS applies the spec's delegation-sabotage options to the DS
// the parent would publish: OmitDS withholds it, BreakDS flips a digest
// byte so it matches no real key. The child's own keys and signatures
// are untouched — only the parent's view of them changes.
func (s *ZoneSpec) publishedDS(ds *dnswire.DS) *dnswire.DS {
	if ds == nil || s.Unsigned {
		return ds
	}
	if s.OmitDS {
		return nil
	}
	if s.BreakDS {
		broken := *ds
		broken.Digest = append([]byte(nil), ds.Digest...)
		if len(broken.Digest) > 0 {
			broken.Digest[0] ^= 0xFF
		}
		return &broken
	}
	return ds
}

// delegationRRs builds the records the parent publishes for a child:
// NS, in-bailiwick glue, and (for signed children) the DS.
func delegationRRs(spec *ZoneSpec, ds *dnswire.DS) []dnswire.RR {
	ns := spec.nsHost()
	rrs := []dnswire.RR{{Name: spec.Apex, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NS{Host: ns}}}
	if ns.IsSubdomainOf(spec.Apex) {
		// In-bailiwick host: publish glue in the parent.
		rrs = append(rrs, dnswire.RR{Name: ns, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.A{Addr: spec.Server.Addr()}})
		if spec.ServerV6.IsValid() {
			rrs = append(rrs, dnswire.RR{Name: ns, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.AAAA{Addr: spec.ServerV6.Addr()}})
		}
	}
	if ds != nil {
		rrs = append(rrs, dnswire.RR{Name: spec.Apex, Class: dnswire.ClassIN, TTL: 3600, Data: *ds})
	}
	return rrs
}

// lazyRec is a zone registered for on-demand signing: its keys are
// already resolved (the DS in the parent came from them), its raw zone
// and signatures don't exist until the thunk runs.
type lazyRec struct {
	spec *ZoneSpec
	cfg  zone.SignConfig
	// delegations are the child NS/glue/DS sets installed by
	// deeper zones during the build, applied when the raw zone is
	// finally constructed.
	delegations []dnswire.RR
}

// Build signs every zone bottom-up, inserts delegations (NS + glue +
// DS) into parents, registers authoritative servers on net, and returns
// the hierarchy with the root trust anchor. With WithLazySigning, only
// the root is signed here; every other zone is registered as a thunk
// its server runs on first query.
func (b *Builder) Build(net *netsim.Network) (*Hierarchy, error) {
	rootSpec, ok := b.specs[dnswire.Root]
	if !ok {
		return nil, fmt.Errorf("testbed: hierarchy needs a root zone")
	}
	// Deepest zones first so DS records exist before parents sign.
	order := make([]*ZoneSpec, 0, len(b.specs))
	for _, s := range b.specs {
		order = append(order, s)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := order[i].Apex.CountLabels(), order[j].Apex.CountLabels()
		if di != dj {
			return di > dj
		}
		return order[i].Apex < order[j].Apex
	})

	h := &Hierarchy{
		Net:     net,
		Zones:   make(map[dnswire.Name]*zone.Signed),
		Servers: make(map[netip.AddrPort]*authserver.Server),
		Log:     authserver.NewQueryLog(1 << 16),
		hosts:   make(map[dnswire.Name]*authserver.Server, len(b.specs)),
	}
	raw := make(map[dnswire.Name]*zone.Zone)
	lazyRecs := make(map[dnswire.Name]*lazyRec)
	// The root stays eager even under WithLazySigning: the trust
	// anchor must exist before the first query.
	isLazy := func(spec *ZoneSpec) bool { return b.lazy && !spec.Apex.IsRoot() }

	// First pass: materialize raw zones for eager specs; register a
	// lazy record for the rest (their raw zones are built on demand).
	for _, spec := range order {
		if isLazy(spec) {
			lazyRecs[spec.Apex] = &lazyRec{spec: spec}
			continue
		}
		raw[spec.Apex] = b.rawZone(spec)
	}

	// Second pass (deepest first): sign — or, for lazy zones, resolve
	// keys and compute the DS without signing — then install the
	// delegation + DS into the parent's raw zone or pending list.
	for _, spec := range order {
		var ds *dnswire.DS
		if rec, ok := lazyRecs[spec.Apex]; ok {
			cfg := b.signConfig(spec)
			if !spec.Unsigned {
				// Keys now, signatures later: the delegation DS depends
				// only on the child's KSK (RFC 4034 §5), so the chain of
				// trust is complete before the zone ever signs.
				var err error
				if b.cache != nil && spec.Shared {
					var keys cachedKeys
					if keys, err = b.cache.keysFor(spec.Apex, signAlg(cfg), cfg.Rand); err != nil {
						return nil, fmt.Errorf("testbed: keys for %s: %w", spec.Apex, err)
					}
					cfg.KSK, cfg.ZSK = keys.ksk, keys.zsk
				} else {
					if cfg.KSK, err = dnssec.GenerateKey(signAlg(cfg), true, cfg.Rand); err != nil {
						return nil, fmt.Errorf("testbed: keys for %s: %w", spec.Apex, err)
					}
					if cfg.ZSK, err = dnssec.GenerateKey(signAlg(cfg), false, cfg.Rand); err != nil {
						return nil, fmt.Errorf("testbed: keys for %s: %w", spec.Apex, err)
					}
				}
				d, err := dnssec.NewDS(spec.Apex, cfg.KSK.DNSKEY(), dnswire.DigestSHA256)
				if err != nil {
					return nil, fmt.Errorf("testbed: DS for %s: %w", spec.Apex, err)
				}
				ds = &d
			}
			rec.cfg = cfg
		} else if !spec.Unsigned {
			z := raw[spec.Apex]
			cfg := b.signConfig(spec)
			var signed *zone.Signed
			var err error
			if b.cache != nil && spec.Shared {
				var hit bool
				signed, hit, err = b.cache.sign(z, cfg)
				if hit {
					h.ZonesReused++
				} else if err == nil {
					h.ZonesSigned++
				}
			} else {
				signed, err = z.Sign(cfg)
				h.ZonesSigned++
			}
			if err != nil {
				return nil, fmt.Errorf("testbed: signing %s: %w", spec.Apex, err)
			}
			h.Zones[spec.Apex] = signed
			d, err := signed.DSForChild()
			if err != nil {
				return nil, err
			}
			ds = &d
		}
		ds = spec.publishedDS(ds)
		if parent, ok := b.parentOf(spec.Apex); ok {
			rrs := delegationRRs(spec, ds)
			if prec, ok := lazyRecs[parent.Apex]; ok {
				prec.delegations = append(prec.delegations, rrs...)
			} else {
				pz := raw[parent.Apex]
				for _, rr := range rrs {
					pz.MustAdd(rr)
				}
			}
		}
	}

	// Third pass: attach zones (or thunks) to servers and register on
	// the network.
	for _, spec := range order {
		srv, ok := h.Servers[spec.Server]
		if !ok {
			srv = authserver.New()
			srv.Log = h.Log
			h.Servers[spec.Server] = srv
			net.Register(spec.Server, srv)
			if spec.ServerV6.IsValid() {
				net.Register(spec.ServerV6, srv)
			}
		} else if spec.ServerV6.IsValid() {
			net.Register(spec.ServerV6, srv)
		}
		h.hosts[spec.Apex] = srv
		if rec, ok := lazyRecs[spec.Apex]; ok {
			rec := rec
			srv.AddLazyZone(spec.Apex, func() (*zone.Signed, error) {
				return b.materializeLazy(h, rec)
			})
		} else if signed, ok := h.Zones[spec.Apex]; ok {
			srv.AddZone(signed)
		} else {
			// Serve the unsigned zone without any DNSSEC material:
			// no DNSKEYs, no RRSIGs, no denial records.
			unsigned, err := raw[spec.Apex].Sign(zone.SignConfig{Denial: zone.DenialNone})
			if err != nil {
				return nil, fmt.Errorf("testbed: serving unsigned %s: %w", spec.Apex, err)
			}
			srv.AddZone(unsigned)
		}
	}

	rootSigned := h.Zones[dnswire.Root]
	if rootSigned == nil {
		return nil, fmt.Errorf("testbed: root must be signed")
	}
	ds, err := rootSigned.DSForChild()
	if err != nil {
		return nil, err
	}
	h.TrustAnchor = []dnswire.DS{ds}
	h.Roots = []netip.AddrPort{rootSpec.Server}
	if rootSpec.ServerV6.IsValid() {
		h.Roots = append(h.Roots, rootSpec.ServerV6)
	}
	return h, nil
}

// materializeLazy is a lazy zone's sign thunk: build the raw zone now
// (including the delegations deeper zones installed during Build),
// then sign it with the keys resolved at build time — through the
// SignCache for Shared specs, so identical content across shards still
// signs once. Signing determinism is per zone, not per order of
// arrival: the keys and records were fixed at build time, so a lazy
// hierarchy serves byte-identical zones to an eager one.
func (b *Builder) materializeLazy(h *Hierarchy, rec *lazyRec) (*zone.Signed, error) {
	z := b.rawZone(rec.spec)
	for _, rr := range rec.delegations {
		z.MustAdd(rr)
	}
	if rec.spec.Unsigned {
		unsigned, err := z.Sign(zone.SignConfig{Denial: zone.DenialNone})
		if err != nil {
			return nil, fmt.Errorf("testbed: serving unsigned %s: %w", rec.spec.Apex, err)
		}
		return unsigned, nil
	}
	if b.cache != nil && rec.spec.Shared {
		signed, hit, err := b.cache.sign(z, rec.cfg)
		if err != nil {
			return nil, fmt.Errorf("testbed: signing %s: %w", rec.spec.Apex, err)
		}
		if hit {
			h.lazyReused.Add(1)
		} else {
			h.lazySigned.Add(1)
		}
		return signed, nil
	}
	signed, err := z.Sign(rec.cfg)
	if err != nil {
		return nil, fmt.Errorf("testbed: signing %s: %w", rec.spec.Apex, err)
	}
	h.lazySigned.Add(1)
	return signed, nil
}
