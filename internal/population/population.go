package population

import (
	"math/rand/v2"

	"repro/internal/dnswire"
)

// Paper-scale constants (§5.1): the full measurement covered 302 M
// registered domains, 26.6 M DNSSEC-enabled (8.8 %), and 15.5 M
// NSEC3-enabled (58.9 % of DNSSEC-enabled).
const (
	FullRegistered = 302_000_000
	FullNSEC3      = 15_500_000

	dnssecRate       = 0.088 // DNSSEC-enabled fraction of registered domains
	nsec3GivenDNSSEC = 0.589 // NSEC3 fraction of DNSSEC-enabled domains
	optOutRate       = 0.064 // opt-out fraction of NSEC3-enabled domains (§5.1)
)

// Config sizes a universe.
type Config struct {
	// Registered is the number of registered domains to generate.
	Registered int
	// Seed drives all sampling.
	Seed uint64
	// RankedSize is the length of the Tranco-style popularity list
	// generated alongside (0 disables).
	RankedSize int
}

// DomainSpec is one synthetic registered domain: everything needed to
// materialize and later scan it.
type DomainSpec struct {
	Name     dnswire.Name
	TLD      string
	Operator string // operator Name (Table 2 attribution key)
	// DNSSEC marks the domain as signed; NSEC3 selects hashed denial
	// (else plain NSEC).
	DNSSEC bool
	NSEC3  bool
	// Iterations and SaltLen are the NSEC3 parameters.
	Iterations uint16
	SaltLen    int
	OptOut     bool
	// Rank is the Tranco-style popularity rank (0 = unranked).
	Rank int
}

// Universe is a generated population.
type Universe struct {
	Config  Config
	Domains []DomainSpec
	// Operators indexes the operator table by name.
	Operators map[string]Operator
	// TLDs is the simulated TLD registry (always full-size, §5.1).
	TLDs []TLDSpec
}

// tldTable spreads domains over TLDs with rough real-world weights.
// The names must exist in the TLD registry.
var tldTable = []struct {
	name   string
	weight float64
}{
	{"com", 0.42}, {"net", 0.08}, {"org", 0.07}, {"de", 0.07},
	{"nl", 0.05}, {"se", 0.04}, {"ch", 0.04}, {"fr", 0.04},
	{"ru", 0.03}, {"uk-co", 0.03}, {"io", 0.02}, {"info", 0.04},
	{"shop", 0.03}, {"online", 0.02}, {"site", 0.02},
}

// newUniverseRNG seeds the generator's PCG stream.
func newUniverseRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xD1B54A32D192ED03))
}

// Generate builds the universe deterministically from cfg — the
// collect-all wrapper over the shard cursor. The sharded pipeline
// (core.RunSurvey with Shards > 1) consumes the cursor directly and
// produces exactly the domains returned here.
func Generate(cfg Config) (*Universe, error) {
	cur, err := NewShardCursor(Config{Registered: cfg.Registered, Seed: cfg.Seed}, 1)
	if err != nil {
		return nil, err
	}
	shard, err := cur.Next()
	if err != nil {
		return nil, err
	}
	u := shard.Universe
	u.Config = cfg
	if cfg.RankedSize > 0 {
		assignRanks(u, newUniverseRNG(cfg.Seed^0x52414E4B45440A01))
	}
	return u, nil
}

// assignRanks builds the Tranco-style list: RankedSize ranked domains
// whose DNSSEC/NSEC3/parameter distribution matches Figure 2's
// measurements (6.66 % DNSSEC-enabled; 40.8 % of those NSEC3; of the
// NSEC3 ones 22.8 % zero-iteration, 23.6 % no-salt, 12.7 % both),
// uniformly across ranks.
func assignRanks(u *Universe, rng *rand.Rand) {
	n := u.Config.RankedSize
	if n > len(u.Domains) {
		n = len(u.Domains)
	}
	// Ranked-domain conditional parameter cells:
	//   both compliant            12.7 %
	//   zero-iter, salted         22.8 − 12.7 = 10.1 %
	//   iterated, no salt         23.6 − 12.7 = 10.9 %
	//   iterated, salted          remainder   = 66.3 %
	perm := rng.Perm(len(u.Domains))[:n]
	for rank, idx := range perm {
		d := &u.Domains[idx]
		d.Rank = rank + 1
		d.DNSSEC = rng.Float64() < 0.0666
		d.NSEC3 = false
		d.Iterations, d.SaltLen = 0, 0
		if !d.DNSSEC {
			continue
		}
		if rng.Float64() >= 0.408 {
			continue // NSEC-signed popular domain
		}
		d.NSEC3 = true
		u01 := rng.Float64()
		var iter uint16
		var salt int
		switch {
		case u01 < 0.127:
			// fully compliant
		case u01 < 0.228:
			salt = 4 + 4*rng.IntN(2)
		case u01 < 0.337:
			iter = []uint16{1, 5, 8}[rng.IntN(3)]
		default:
			iter = []uint16{1, 1, 5, 8, 10}[rng.IntN(5)]
			salt = []int{2, 4, 8, 8}[rng.IntN(4)]
		}
		d.Iterations, d.SaltLen = iter, salt
		d.OptOut = rng.Float64() < optOutRate
	}
}

func operatorCumulative(ops []Operator) []float64 {
	total := 0.0
	for _, op := range ops {
		total += op.Share
	}
	cum := make([]float64, len(ops))
	acc := 0.0
	for i, op := range ops {
		acc += op.Share / total
		cum[i] = acc
	}
	return cum
}

func pickOperator(ops []Operator, cum []float64, u float64) Operator {
	for i, c := range cum {
		if u <= c {
			return ops[i]
		}
	}
	return ops[len(ops)-1]
}

func pickProfile(profiles []ParamProfile, u float64) ParamProfile {
	total := 0.0
	for _, p := range profiles {
		total += p.Weight
	}
	acc := 0.0
	for _, p := range profiles {
		acc += p.Weight / total
		if u <= acc {
			return p
		}
	}
	return profiles[len(profiles)-1]
}

func tldCumulative() []float64 {
	total := 0.0
	for _, t := range tldTable {
		total += t.weight
	}
	cum := make([]float64, len(tldTable))
	acc := 0.0
	for i, t := range tldTable {
		acc += t.weight / total
		cum[i] = acc
	}
	return cum
}

func pickTLD(cum []float64, u float64) string {
	for i, c := range cum {
		if u <= c {
			return tldTable[i].name
		}
	}
	return tldTable[len(tldTable)-1].name
}

// NSEC3Count returns how many domains in the universe are NSEC3-enabled.
func (u *Universe) NSEC3Count() int {
	n := 0
	for i := range u.Domains {
		if u.Domains[i].NSEC3 {
			n++
		}
	}
	return n
}
