package population

import (
	"testing"
	"time"
)

func TestTLDIterationsAtMilestones(t *testing.T) {
	cases := []struct {
		date time.Time
		want uint16
	}{
		{DateIDRaise.AddDate(0, -1, 0), 1},
		{DateIDRaise.AddDate(0, 1, 0), 100},
		{DatePaperScan, 100},
		{DateIDZero.AddDate(0, 1, 0), 0},
	}
	for _, c := range cases {
		if got := TLDIterationsAt(c.date); got != c.want {
			t.Errorf("TLDIterationsAt(%s) = %d, want %d", c.date.Format("2006-01"), got, c.want)
		}
	}
}

func TestOperatorsAtTransIPMigration(t *testing.T) {
	pre := OperatorsAt(DateTransIPZero.AddDate(0, -6, 0))
	post := OperatorsAt(DateTransIPZero.AddDate(3, 0, 0))
	find := func(ops []Operator, name string) Operator {
		for _, op := range ops {
			if op.Name == name {
				return op
			}
		}
		t.Fatalf("operator %s missing", name)
		return Operator{}
	}
	if p := find(pre, "TransIP").Profiles; len(p) != 1 || p[0].Iterations != 100 {
		t.Fatalf("pre-migration TransIP profiles %v", p)
	}
	if p := find(post, "TransIP").Profiles; len(p) != 1 || p[0].Iterations != 0 {
		t.Fatalf("post-migration TransIP profiles %v", p)
	}
}

func TestGenerateAtComplianceGrowsOverTime(t *testing.T) {
	cfg := Config{Registered: 40000, Seed: 3}
	shares := make([]float64, 0, 3)
	for _, date := range []time.Time{
		DateIDRaise.AddDate(0, -3, 0),
		DateTransIPZero.AddDate(0, 6, 0),
		DatePaperScan,
	} {
		u, err := GenerateAt(cfg, date)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, ZeroIterShareAt(u))
	}
	// Compliance must be monotone non-decreasing across the
	// migrations: pre-2020 < post-TransIP ≤ 2024.
	if !(shares[0] < shares[1] && shares[1] <= shares[2]+0.5) {
		t.Fatalf("shares not improving: %v", shares)
	}
	// The March 2024 share sits near the paper's 12.2 %.
	if shares[2] < 9 || shares[2] > 16 {
		t.Fatalf("2024 share %.1f %%, paper 12.2 %%", shares[2])
	}
}

func TestGenerateAtKeepsDomainSetFixed(t *testing.T) {
	cfg := Config{Registered: 3000, Seed: 4}
	a, err := GenerateAt(cfg, DateIDRaise)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateAt(cfg, DatePaperScan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Domains {
		if a.Domains[i].Name != b.Domains[i].Name ||
			a.Domains[i].Operator != b.Domains[i].Operator ||
			a.Domains[i].NSEC3 != b.Domains[i].NSEC3 {
			t.Fatalf("domain set drifted at %d: %+v vs %+v", i, a.Domains[i], b.Domains[i])
		}
	}
}
