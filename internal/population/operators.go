// Package population generates the synthetic registered-domain universe
// the measurement pipeline scans: operators with their real-world NSEC3
// parameter profiles (Table 2 of the paper), a long-tail operator mix
// calibrated so the aggregate marginals reproduce Figure 1 (12.2 %
// zero-iteration domains, 99.9 % ≤ 25 iterations, max 500; 8.6 % no
// salt, 97.2 % ≤ 10 bytes, max 160), the TLD registry of §5.1
// (including the Identity Digital cohort at 100 iterations), and a
// Tranco-style ranked list for Figure 2.
//
// Everything is generated deterministically from a seed at a
// configurable scale; the same specs are then materialized into real
// signed zones and scanned end-to-end over the wire.
package population

import (
	"repro/internal/dnswire"
	"repro/internal/nsec3"
)

// ParamProfile is one (iterations, salt length) setting with a weight.
type ParamProfile struct {
	Iterations uint16
	SaltLen    int
	Weight     float64
}

// Operator is an authoritative DNS operator: its infrastructure domain
// (NS host names live under it), its share of NSEC3-enabled domains,
// and its parameter profiles.
type Operator struct {
	// Name is the display name used in Table 2.
	Name string
	// InfraDomain is the registered domain of its name servers
	// (e.g. all Squarespace-hosted domains use ns*.squarespace-dns.com).
	InfraDomain string
	// Share is the fraction of NSEC3-enabled domains served
	// exclusively by this operator.
	Share float64
	// Profiles are the parameter settings and their within-operator
	// weights (Table 2 column 3).
	Profiles []ParamProfile
}

// Operators returns the paper's Table 2 operators plus the calibrated
// long tail. Shares of the named ten sum to 0.777 (77.7 % of
// NSEC3-enabled domains, §5.1); the synthetic long-tail operators carry
// the remaining 22.3 %.
func Operators() []Operator {
	ops := []Operator{
		{Name: "Squarespace", InfraDomain: "squarespace-dns.com", Share: 0.394,
			Profiles: []ParamProfile{{1, 8, 1.0}}},
		{Name: "one.com", InfraDomain: "one-dns.net", Share: 0.095,
			Profiles: []ParamProfile{{5, 5, 0.40}, {5, 4, 0.30}, {1, 2, 0.15}, {1, 4, 0.15}}},
		{Name: "OVHcloud", InfraDomain: "ovh.net", Share: 0.084,
			Profiles: []ParamProfile{{8, 8, 1.0}}},
		{Name: "Wix.com", InfraDomain: "wixdns.net", Share: 0.050,
			Profiles: []ParamProfile{{1, 8, 1.0}}},
		{Name: "TransIP", InfraDomain: "transip.nl", Share: 0.042,
			// 0.3 % still on the pre-2021 setting of 100 iterations (§5.1).
			Profiles: []ParamProfile{{0, 8, 0.997}, {100, 8, 0.003}}},
		{Name: "Loopia", InfraDomain: "loopia.se", Share: 0.036,
			Profiles: []ParamProfile{{1, 1, 1.0}}},
		{Name: "domainname.shop", InfraDomain: "domainnameshop.com", Share: 0.027,
			Profiles: []ParamProfile{{0, 0, 1.0}}},
		{Name: "TimeWeb", InfraDomain: "timeweb.ru", Share: 0.021,
			Profiles: []ParamProfile{{3, 0, 1.0}}},
		{Name: "Hostnet", InfraDomain: "hostnet.nl", Share: 0.015,
			Profiles: []ParamProfile{{1, 4, 0.60}, {0, 0, 0.40}}},
		{Name: "Hostpoint", InfraDomain: "hostpoint.ch", Share: 0.013,
			Profiles: []ParamProfile{{1, 40, 1.0}}},
	}
	ops = append(ops, longTailOperators()...)
	return ops
}

// longTailOperators spreads the remaining 22.3 % over synthetic
// operators whose combined profile mixture brings the global marginals
// to the Figure 1 targets.
func longTailOperators() []Operator {
	// Within-long-tail mixture (weights sum to 1):
	mixture := []ParamProfile{
		{0, 0, 0.100}, // no iterations, no salt (fully compliant)
		{0, 8, 0.111}, // zero iterations with a salt
		{1, 8, 0.250},
		{1, 0, 0.043},
		{2, 4, 0.150},
		{5, 8, 0.100},
		{6, 2, 0.0361},
		{10, 4, 0.100},
		{1, 16, 0.040}, // salts beyond 10 bytes (the 2.8 % tail)
		{2, 24, 0.020},
		{3, 40, 0.007},
		{12, 4, 0.020},
		{15, 8, 0.010},
		{20, 4, 0.005},
		{25, 8, 0.004},
		{30, 8, 0.0015}, // the >25 iterations tail (0.1 % overall)
		{50, 8, 0.0010},
		{100, 8, 0.0008},
		{150, 8, 0.0006},
	}
	// Split the tail across several operators so Table 2's "top 10"
	// aggregation has a realistic remainder; each gets the same
	// mixture (what matters for Figure 1 is the blended marginal).
	const tailOps = 8
	const tailShare = 0.223
	out := make([]Operator, tailOps)
	for i := range out {
		out[i] = Operator{
			Name:        tailOpName(i),
			InfraDomain: tailOpName(i) + "-dns.net",
			Share:       tailShare / tailOps,
			Profiles:    mixture,
		}
	}
	return out
}

func tailOpName(i int) string {
	names := [...]string{
		"registrarone", "hostomatic", "dnsfarm", "zonemasters",
		"cheapdomains", "webparkers", "eurohost", "nordicdns",
	}
	return names[i]
}

// RareSpecimens returns the fixed long-tail oddities the paper reports
// as absolute counts, to be injected at any scale so the observed
// maxima survive: 43 domains above 150 iterations (12 of them at 500,
// §5.1) and 170 domains with salts longer than 45 bytes (9 of them at
// 160 bytes, all under one operator).
type RareSpecimen struct {
	Iterations uint16
	SaltLen    int
	Count      int // count at the paper's full 15.5 M scale
	Operator   string
}

// RareSpecimens lists the injected tail. Iteration specimens use an
// 8-byte salt; salt specimens use 1 iteration (arbitrary but fixed).
func RareSpecimens() []RareSpecimen {
	return []RareSpecimen{
		{Iterations: 500, SaltLen: 8, Count: 12, Operator: "dnsfarm"},
		{Iterations: 300, SaltLen: 8, Count: 16, Operator: "dnsfarm"},
		{Iterations: 200, SaltLen: 8, Count: 15, Operator: "dnsfarm"},
		{Iterations: 1, SaltLen: 160, Count: 9, Operator: "zonemasters"},
		{Iterations: 1, SaltLen: 64, Count: 60, Operator: "zonemasters"},
		{Iterations: 1, SaltLen: 48, Count: 101, Operator: "zonemasters"},
	}
}

// Params converts a profile to hash parameters with a deterministic
// salt of the right length (the salt bytes themselves are irrelevant
// to every analysis; only the length is reported).
func (p ParamProfile) Params(saltSeed uint64) nsec3.Params {
	return nsec3.Params{
		Alg:        dnswire.NSEC3HashSHA1,
		Iterations: p.Iterations,
		Salt:       deterministicSalt(p.SaltLen, saltSeed),
	}
}

func deterministicSalt(n int, seed uint64) []byte {
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	x := seed | 1
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x)
	}
	return out
}
