package population

import (
	"testing"
)

// collectShards drains a cursor and returns the concatenated domains
// plus the per-shard (offset, size) layout.
func collectShards(t *testing.T, cfg Config, shards int) ([]DomainSpec, []*Shard) {
	t.Helper()
	cur, err := NewShardCursor(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	var all []DomainSpec
	var got []*Shard
	for {
		shard, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if shard == nil {
			break
		}
		all = append(all, shard.Universe.Domains...)
		got = append(got, shard)
	}
	return all, got
}

// TestShardDecompositionInvariant is the core guarantee of the
// streaming refactor: any shard count concatenates to the exact same
// universe Generate materializes.
func TestShardDecompositionInvariant(t *testing.T) {
	cfg := Config{Registered: 2377, Seed: 17} // prime size: uneven splits
	want, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 3, 7, 64} {
		all, layout := collectShards(t, cfg, shards)
		if len(all) != len(want.Domains) {
			t.Fatalf("shards=%d: %d domains, want %d", shards, len(all), len(want.Domains))
		}
		for i := range all {
			if all[i] != want.Domains[i] {
				t.Fatalf("shards=%d: domain %d differs: %+v vs %+v",
					shards, i, all[i], want.Domains[i])
			}
		}
		// Layout: contiguous offsets covering the whole universe.
		off := 0
		for i, s := range layout {
			if s.Index != i || s.Offset != off {
				t.Fatalf("shards=%d: shard %d has index %d offset %d, want offset %d",
					shards, i, s.Index, s.Offset, off)
			}
			if len(s.Universe.Domains) == 0 {
				t.Fatalf("shards=%d: empty shard %d", shards, i)
			}
			off += len(s.Universe.Domains)
		}
		if off != cfg.Registered {
			t.Fatalf("shards=%d: layout covers %d of %d domains", shards, off, cfg.Registered)
		}
	}
}

// TestShardSpecimensSurviveSharding: the rare tail lands at the same
// stream positions regardless of decomposition, so the observed maxima
// exist in every sharded run too.
func TestShardSpecimensSurviveSharding(t *testing.T) {
	all, _ := collectShards(t, Config{Registered: 3000, Seed: 42}, 5)
	has500, has160 := false, false
	for i := range all {
		if all[i].Iterations == 500 {
			has500 = true
		}
		if all[i].SaltLen == 160 {
			has160 = true
		}
	}
	if !has500 || !has160 {
		t.Fatalf("specimens missing under sharding (500:%v 160B:%v)", has500, has160)
	}
}

func TestShardCursorSharesRegistry(t *testing.T) {
	cur, err := NewShardCursor(Config{Registered: 100, Seed: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(cur.TLDs()); n != TotalTLDs {
		t.Fatalf("cursor registry has %d TLDs, want %d", n, TotalTLDs)
	}
	if len(cur.Operators()) == 0 {
		t.Fatal("cursor has no operator table")
	}
	a, err := cur.Next()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cur.Next()
	if err != nil {
		t.Fatal(err)
	}
	// The registry and operator table are shared, not copied per shard.
	if &a.Universe.TLDs[0] != &b.Universe.TLDs[0] {
		t.Error("TLD registry copied per shard")
	}
	if a.Universe.Operators == nil || len(a.Universe.Operators) != len(b.Universe.Operators) {
		t.Error("operator table not shared")
	}
}

func TestShardCursorRejectsBadConfig(t *testing.T) {
	if _, err := NewShardCursor(Config{Registered: 0}, 1); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewShardCursor(Config{Registered: 10, RankedSize: 5}, 2); err == nil {
		t.Error("ranked universe accepted for sharding")
	}
	// Shard counts above the universe clamp instead of erroring.
	cur, err := NewShardCursor(Config{Registered: 3, Seed: 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Shards() != 3 {
		t.Errorf("shards = %d, want clamp to 3", cur.Shards())
	}
}
