package population

import (
	"testing"
)

// collectShards drains a cursor and returns the concatenated domains
// plus the per-shard (offset, size) layout.
func collectShards(t *testing.T, cfg Config, shards int) ([]DomainSpec, []*Shard) {
	t.Helper()
	cur, err := NewShardCursor(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	var all []DomainSpec
	var got []*Shard
	for {
		shard, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if shard == nil {
			break
		}
		all = append(all, shard.Universe.Domains...)
		got = append(got, shard)
	}
	return all, got
}

// TestShardDecompositionInvariant is the core guarantee of the
// streaming refactor: any shard count concatenates to the exact same
// universe Generate materializes.
func TestShardDecompositionInvariant(t *testing.T) {
	cfg := Config{Registered: 2377, Seed: 17} // prime size: uneven splits
	want, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 3, 7, 64} {
		all, layout := collectShards(t, cfg, shards)
		if len(all) != len(want.Domains) {
			t.Fatalf("shards=%d: %d domains, want %d", shards, len(all), len(want.Domains))
		}
		for i := range all {
			if all[i] != want.Domains[i] {
				t.Fatalf("shards=%d: domain %d differs: %+v vs %+v",
					shards, i, all[i], want.Domains[i])
			}
		}
		// Layout: contiguous offsets covering the whole universe.
		off := 0
		for i, s := range layout {
			if s.Index != i || s.Offset != off {
				t.Fatalf("shards=%d: shard %d has index %d offset %d, want offset %d",
					shards, i, s.Index, s.Offset, off)
			}
			if len(s.Universe.Domains) == 0 {
				t.Fatalf("shards=%d: empty shard %d", shards, i)
			}
			off += len(s.Universe.Domains)
		}
		if off != cfg.Registered {
			t.Fatalf("shards=%d: layout covers %d of %d domains", shards, off, cfg.Registered)
		}
	}
}

// TestShardSpecimensSurviveSharding: the rare tail lands at the same
// stream positions regardless of decomposition, so the observed maxima
// exist in every sharded run too.
func TestShardSpecimensSurviveSharding(t *testing.T) {
	all, _ := collectShards(t, Config{Registered: 3000, Seed: 42}, 5)
	has500, has160 := false, false
	for i := range all {
		if all[i].Iterations == 500 {
			has500 = true
		}
		if all[i].SaltLen == 160 {
			has160 = true
		}
	}
	if !has500 || !has160 {
		t.Fatalf("specimens missing under sharding (500:%v 160B:%v)", has500, has160)
	}
}

func TestShardCursorSharesRegistry(t *testing.T) {
	cur, err := NewShardCursor(Config{Registered: 100, Seed: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(cur.TLDs()); n != TotalTLDs {
		t.Fatalf("cursor registry has %d TLDs, want %d", n, TotalTLDs)
	}
	if len(cur.Operators()) == 0 {
		t.Fatal("cursor has no operator table")
	}
	a, err := cur.Next()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cur.Next()
	if err != nil {
		t.Fatal(err)
	}
	// The registry and operator table are shared, not copied per shard.
	if &a.Universe.TLDs[0] != &b.Universe.TLDs[0] {
		t.Error("TLD registry copied per shard")
	}
	if a.Universe.Operators == nil || len(a.Universe.Operators) != len(b.Universe.Operators) {
		t.Error("operator table not shared")
	}
}

// TestShardPlannerMatchesCursor pins the plan/execute split: executing
// every ShardPlan standalone — and out of order — reproduces exactly
// what the ordered cursor streams. This is the property that lets a
// worker process generate shard N from its plan alone.
func TestShardPlannerMatchesCursor(t *testing.T) {
	cfg := Config{Registered: 1777, Seed: 23}
	p, err := NewShardPlanner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plans := p.Plan(5)
	if len(plans) != 5 {
		t.Fatalf("planned %d shards, want 5", len(plans))
	}
	// Plans tile the universe contiguously and carry monotone ordinals.
	off := 0
	for i, pl := range plans {
		if pl.Index != i || pl.Offset != off || pl.Size <= 0 {
			t.Fatalf("plan %d = %+v, want index %d offset %d", i, pl, i, off)
		}
		off += pl.Size
	}
	if off != cfg.Registered {
		t.Fatalf("plans cover %d of %d domains", off, cfg.Registered)
	}

	want, _ := collectShards(t, cfg, 5)
	// Execute in reverse order: shard generation must not depend on its
	// siblings having run.
	got := make([]DomainSpec, cfg.Registered)
	for i := len(plans) - 1; i >= 0; i-- {
		shard, err := p.GenerateShard(plans[i])
		if err != nil {
			t.Fatal(err)
		}
		copy(got[shard.Offset:], shard.Universe.Domains)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("domain %d differs under out-of-order execution: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestShardPlannerNSEC3Ordinals cross-checks the planner's replayed
// NSEC3 ordinal against the domains actually generated.
func TestShardPlannerNSEC3Ordinals(t *testing.T) {
	cfg := Config{Registered: 900, Seed: 5}
	p, err := NewShardPlanner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plans := p.Plan(4)
	seen := 0
	for _, pl := range plans {
		if pl.NSEC3Start != seen {
			t.Fatalf("plan %d NSEC3Start = %d, want %d", pl.Index, pl.NSEC3Start, seen)
		}
		shard, err := p.GenerateShard(pl)
		if err != nil {
			t.Fatal(err)
		}
		for i := range shard.Universe.Domains {
			if shard.Universe.Domains[i].NSEC3 {
				seen++
			}
		}
	}
	if seen == 0 {
		t.Fatal("universe generated no NSEC3 domains; test is vacuous")
	}
}

// TestShardPlannerRejectsBadPlan: a plan outside the universe is a
// typed refusal, not a panic — the distributed path feeds plans in
// from the wire.
func TestShardPlannerRejectsBadPlan(t *testing.T) {
	p, err := NewShardPlanner(Config{Registered: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []ShardPlan{
		{Index: 0, Offset: -1, Size: 10},
		{Index: 0, Offset: 90, Size: 20},
		{Index: 0, Offset: 0, Size: -1},
	} {
		if _, err := p.GenerateShard(bad); err == nil {
			t.Errorf("plan %+v accepted", bad)
		}
	}
}

func TestShardCursorRejectsBadConfig(t *testing.T) {
	if _, err := NewShardCursor(Config{Registered: 0}, 1); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewShardCursor(Config{Registered: 10, RankedSize: 5}, 2); err == nil {
		t.Error("ranked universe accepted for sharding")
	}
	// Shard counts above the universe clamp instead of erroring.
	cur, err := NewShardCursor(Config{Registered: 3, Seed: 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Shards() != 3 {
		t.Errorf("shards = %d, want clamp to 3", cur.Shards())
	}
}
