package population

import "time"

// This file implements the paper's first future-work direction (§6):
// "analyze the prevalence of NSEC3 with respect to all the signed
// domains over time" and "examine NSEC3 parameters used to sign domain
// names" across the documented parameter migrations:
//
//   - September 2020: Identity Digital raises its 447 TLDs from 1 to
//     100 additional iterations [Woolf 2020].
//   - ~2021: TransIP migrates from 100 to 0 iterations [Dukhovni 2021];
//     BIND/PowerDNS/Knot authoritative defaults move to 0 iterations
//     and no salt at the end of 2021.
//   - August 2022: RFC 9276 published.
//   - February 2024: CVE-2023-50868 disclosed; March 2024: the paper's
//     measurement.
//   - Mid 2024: Identity Digital drops its TLDs from 100 back to 0, as
//     the paper's §1 notes ("subsequently reduced to 0").

// Milestone dates in the NSEC3 parameter story.
var (
	DateIDRaise     = time.Date(2020, 9, 1, 0, 0, 0, 0, time.UTC)  // ID: 1 → 100
	DateTransIPZero = time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)  // TransIP: 100 → 0
	DateRFC9276     = time.Date(2022, 8, 1, 0, 0, 0, 0, time.UTC)  // BCP published
	DateCVE         = time.Date(2024, 2, 13, 0, 0, 0, 0, time.UTC) // CVE-2023-50868
	DatePaperScan   = time.Date(2024, 3, 15, 0, 0, 0, 0, time.UTC) // the measurement
	DateIDZero      = time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)  // ID: 100 → 0
)

// OperatorsAt returns the operator table as of date, applying the
// documented migrations. The default Operators() table models the
// paper's March 2024 snapshot.
func OperatorsAt(date time.Time) []Operator {
	ops := Operators()
	for i := range ops {
		switch ops[i].Name {
		case "TransIP":
			if date.Before(DateTransIPZero) {
				// Pre-migration: everything at the old 100/8 setting.
				ops[i].Profiles = []ParamProfile{{100, 8, 1.0}}
			} else if date.After(DateTransIPZero.AddDate(2, 0, 0)) {
				// Long after the migration the 0.3 % residue is gone.
				ops[i].Profiles = []ParamProfile{{0, 8, 1.0}}
			}
		case "domainname.shop", "Hostnet":
			if date.Before(DateRFC9276) {
				// Before the BCP these operators still salted with a
				// small iteration count, like the rest of the field.
				ops[i].Profiles = []ParamProfile{{1, 8, 1.0}}
			}
		}
	}
	return ops
}

// TLDIterationsAt returns the Identity Digital cohort's iteration count
// as of date: 1 before September 2020, 100 until mid-2024, 0 after.
func TLDIterationsAt(date time.Time) uint16 {
	switch {
	case date.Before(DateIDRaise):
		return 1
	case date.Before(DateIDZero):
		return 100
	default:
		return 0
	}
}

// GenerateAt builds a universe whose operator profiles and TLD registry
// reflect the state at date. The domain set itself (names, operators,
// enablement) is held fixed across dates for a given seed, so
// longitudinal comparisons isolate the parameter migrations.
func GenerateAt(cfg Config, date time.Time) (*Universe, error) {
	u, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	ops := OperatorsAt(date)
	opByName := make(map[string]Operator, len(ops))
	for _, op := range ops {
		opByName[op.Name] = op
	}
	u.Operators = opByName
	// Re-sample parameters for NSEC3 domains whose operator's profile
	// set changed, deterministically from the domain index.
	for i := range u.Domains {
		d := &u.Domains[i]
		if !d.NSEC3 {
			continue
		}
		op, ok := opByName[d.Operator]
		if !ok {
			continue
		}
		u01 := float64(splitmix(uint64(i)^cfg.Seed)%1_000_000) / 1_000_000
		prof := pickProfile(op.Profiles, u01)
		d.Iterations = prof.Iterations
		d.SaltLen = prof.SaltLen
	}
	// Re-inject the fixed rare tail (it exists in every era).
	injectRareSpecimens(u)
	// TLD registry: swap the ID cohort's iterations for the era.
	iters := TLDIterationsAt(date)
	for i := range u.TLDs {
		if u.TLDs[i].Registry == IdentityDigitalName {
			u.TLDs[i].Iterations = iters
		}
	}
	return u, nil
}

// ZeroIterShareAt computes the Item 2 compliance share of NSEC3-enabled
// domains in a universe — the longitudinal metric of the timeline
// experiment.
func ZeroIterShareAt(u *Universe) float64 {
	nsec3, zero := 0, 0
	for i := range u.Domains {
		if !u.Domains[i].NSEC3 {
			continue
		}
		nsec3++
		if u.Domains[i].Iterations == 0 {
			zero++
		}
	}
	if nsec3 == 0 {
		return 0
	}
	return 100 * float64(zero) / float64(nsec3)
}

// splitmix is SplitMix64, used for per-domain deterministic re-sampling.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}
