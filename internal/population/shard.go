package population

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/dnswire"
)

// This file implements the streaming side of universe generation: a
// deterministic shard cursor that yields the universe in bounded
// slices. Every domain is generated from its own index-derived PCG
// stream, and the rare-specimen tail is applied from a precomputed
// plan keyed by each domain's NSEC3 ordinal, so the concatenation of
// any shard decomposition is byte-identical to a single-shard run —
// the property core.RunSurvey's sharded pipeline relies on.

// Shard is one contiguous slice of the universe.
type Shard struct {
	// Index is the shard ordinal, 0-based.
	Index int
	// Offset is the global index of Universe.Domains[0].
	Offset int
	// Universe holds this shard's domains plus the (shared) operator
	// table and TLD registry, ready for Deploy.
	Universe *Universe
}

// ShardCursor streams a universe shard by shard. Shards must be
// consumed in order via Next (the cursor carries the NSEC3 ordinal
// across shard boundaries); the decomposition into shards never
// changes the generated domains.
type ShardCursor struct {
	cfg    Config
	shards int
	next   int // next shard index
	offset int // global index of the next shard's first domain

	nsec3Seen int            // NSEC3 ordinal carried across shards
	plan      []RareSpecimen // per-NSEC3-ordinal overrides

	ops       []Operator
	operators map[string]Operator
	opCum     []float64
	tldCum    []float64
	tlds      []TLDSpec
}

// NewShardCursor prepares a cursor that generates cfg.Registered
// domains across the given number of shards. Ranked universes are not
// shardable (rank assignment is a whole-universe permutation); use
// Generate for those. A shard count above cfg.Registered is clamped.
func NewShardCursor(cfg Config, shards int) (*ShardCursor, error) {
	if cfg.Registered <= 0 {
		return nil, fmt.Errorf("population: Registered must be positive")
	}
	if cfg.RankedSize > 0 {
		return nil, fmt.Errorf("population: ranked universes cannot be sharded")
	}
	if shards <= 0 {
		shards = 1
	}
	if shards > cfg.Registered {
		shards = cfg.Registered
	}
	ops := Operators()
	operators := make(map[string]Operator, len(ops))
	for _, op := range ops {
		operators[op.Name] = op
	}
	return &ShardCursor{
		cfg:       cfg,
		shards:    shards,
		plan:      specimenPlan(cfg.Registered),
		ops:       ops,
		operators: operators,
		opCum:     operatorCumulative(ops),
		tldCum:    tldCumulative(),
		tlds:      GenerateTLDs(cfg.Seed),
	}, nil
}

// Shards returns the shard count.
func (c *ShardCursor) Shards() int { return c.shards }

// TLDs returns the shared TLD registry (read-only).
func (c *ShardCursor) TLDs() []TLDSpec { return c.tlds }

// Operators returns the shared operator table (read-only).
func (c *ShardCursor) Operators() map[string]Operator { return c.operators }

// Next generates and returns the next shard, or (nil, nil) when every
// shard has been yielded.
func (c *ShardCursor) Next() (*Shard, error) {
	if c.next >= c.shards {
		return nil, nil
	}
	size := c.cfg.Registered / c.shards
	if c.next < c.cfg.Registered%c.shards {
		size++
	}
	shard := &Shard{
		Index:  c.next,
		Offset: c.offset,
		Universe: &Universe{
			Config:    c.cfg,
			Domains:   make([]DomainSpec, 0, size),
			Operators: c.operators,
			TLDs:      c.tlds,
		},
	}
	for i := c.offset; i < c.offset+size; i++ {
		spec, err := c.domainAt(i)
		if err != nil {
			return nil, err
		}
		if spec.NSEC3 {
			if c.nsec3Seen < len(c.plan) {
				s := c.plan[c.nsec3Seen]
				spec.Iterations = s.Iterations
				spec.SaltLen = s.SaltLen
				spec.Operator = s.Operator
			}
			c.nsec3Seen++
		}
		shard.Universe.Domains = append(shard.Universe.Domains, spec)
	}
	c.next++
	c.offset += size
	return shard, nil
}

// domainAt generates domain i from its own index-derived stream, so
// the result depends only on (Seed, i) — never on shard boundaries.
func (c *ShardCursor) domainAt(i int) (DomainSpec, error) {
	rng := domainRNG(c.cfg.Seed, i)
	spec := DomainSpec{TLD: pickTLD(c.tldCum, rng.Float64())}
	name, err := dnswire.FromLabels(fmt.Sprintf("d%07d", i), spec.TLD)
	if err != nil {
		return DomainSpec{}, err
	}
	spec.Name = name
	op := pickOperator(c.ops, c.opCum, rng.Float64())
	spec.Operator = op.Name
	spec.DNSSEC = rng.Float64() < dnssecRate
	if spec.DNSSEC {
		spec.NSEC3 = rng.Float64() < nsec3GivenDNSSEC
	}
	if spec.NSEC3 {
		prof := pickProfile(op.Profiles, rng.Float64())
		spec.Iterations = prof.Iterations
		spec.SaltLen = prof.SaltLen
		spec.OptOut = rng.Float64() < optOutRate
	}
	return spec, nil
}

// domainRNG seeds domain i's private PCG stream.
func domainRNG(seed uint64, i int) *rand.Rand {
	s := splitmix(seed ^ splitmix(uint64(i)+0x6C62272E07BB0142))
	return rand.New(rand.NewPCG(s, splitmix(s)))
}

// expectedNSEC3 is the calibration-expected NSEC3-enabled count at a
// scale — the streaming stand-in for the materialized count (which is
// unknowable until the whole stream has been generated).
func expectedNSEC3(registered int) int {
	return int(float64(registered)*dnssecRate*nsec3GivenDNSSEC + 0.5)
}

// specimenPlan expands RareSpecimens into one override per affected
// NSEC3 ordinal: the j-th NSEC3-enabled domain of the stream receives
// plan[j]. Counts scale with the expected NSEC3 population but every
// specimen row keeps at least one slot, so the observed maxima (500
// iterations, 160-byte salt) survive any scale.
func specimenPlan(registered int) []RareSpecimen {
	scale := float64(expectedNSEC3(registered)) / float64(FullNSEC3)
	var plan []RareSpecimen
	for _, spec := range RareSpecimens() {
		n := int(float64(spec.Count)*scale + 0.5)
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			plan = append(plan, spec)
		}
	}
	return plan
}

// injectRareSpecimens applies the specimen plan to a materialized
// universe — the same overrides, at the same NSEC3 ordinals, as the
// streaming cursor applies (GenerateAt re-runs this after re-sampling
// parameters for a different era).
func injectRareSpecimens(u *Universe) {
	plan := specimenPlan(len(u.Domains))
	ord := 0
	for i := range u.Domains {
		if !u.Domains[i].NSEC3 {
			continue
		}
		if ord >= len(plan) {
			break
		}
		d := &u.Domains[i]
		d.Iterations = plan[ord].Iterations
		d.SaltLen = plan[ord].SaltLen
		d.Operator = plan[ord].Operator
		ord++
	}
}
