package population

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/dnswire"
)

// This file implements the streaming side of universe generation,
// split into a plan/execute pair so shard generation can cross process
// boundaries:
//
//   - ShardPlanner precomputes the shared tables (operators, TLD
//     registry, rare-specimen plan) and turns a shard count into pure,
//     serializable ShardPlan descriptions.
//   - GenerateShard materializes one shard from its plan alone — no
//     cursor state, no ordering requirement — so any process holding
//     (Config, ShardPlan) produces byte-identical domains.
//
// Every domain is generated from its own index-derived PCG stream, and
// the rare-specimen tail is applied from a precomputed plan keyed by
// each domain's NSEC3 ordinal. The plan carries that ordinal across
// shard boundaries (ShardPlan.NSEC3Start), so the concatenation of any
// shard decomposition is byte-identical to a single-shard run — the
// property core.RunSurvey's sharded pipeline relies on.

// Shard is one contiguous slice of the universe.
type Shard struct {
	// Index is the shard ordinal, 0-based.
	Index int
	// Offset is the global index of Universe.Domains[0].
	Offset int
	// Universe holds this shard's domains plus the (shared) operator
	// table and TLD registry, ready for Deploy.
	Universe *Universe
}

// ShardPlan is the pure, serializable description of one shard: any
// process holding the survey Config can execute shard Index from the
// plan alone, in any order relative to its siblings.
type ShardPlan struct {
	// Index is the shard ordinal, 0-based.
	Index int `json:"index"`
	// Offset is the global index of the shard's first domain.
	Offset int `json:"offset"`
	// Size is the number of domains in the shard.
	Size int `json:"size"`
	// NSEC3Start is the shard's starting NSEC3 ordinal: how many
	// NSEC3-enabled domains precede Offset in the stream. The
	// rare-specimen plan is keyed by this ordinal, so it is the one
	// piece of cross-shard state a standalone executor needs.
	NSEC3Start int `json:"nsec3_start"`
}

// ShardPlanner holds the shared generation tables and plans shards.
// Plans and shards are pure functions of (Config, shard count); the
// planner itself is read-only after construction and safe to reuse
// across GenerateShard calls.
type ShardPlanner struct {
	cfg  Config
	plan []RareSpecimen // per-NSEC3-ordinal overrides

	ops       []Operator
	operators map[string]Operator
	opCum     []float64
	tldCum    []float64
	tlds      []TLDSpec
}

// NewShardPlanner prepares the shared tables for cfg. Ranked universes
// are not shardable (rank assignment is a whole-universe permutation);
// use Generate for those.
func NewShardPlanner(cfg Config) (*ShardPlanner, error) {
	if cfg.Registered <= 0 {
		return nil, fmt.Errorf("population: Registered must be positive")
	}
	if cfg.RankedSize > 0 {
		return nil, fmt.Errorf("population: ranked universes cannot be sharded")
	}
	ops := Operators()
	operators := make(map[string]Operator, len(ops))
	for _, op := range ops {
		operators[op.Name] = op
	}
	return &ShardPlanner{
		cfg:       cfg,
		plan:      specimenPlan(cfg.Registered),
		ops:       ops,
		operators: operators,
		opCum:     operatorCumulative(ops),
		tldCum:    tldCumulative(),
		tlds:      GenerateTLDs(cfg.Seed),
	}, nil
}

// TLDs returns the shared TLD registry (read-only).
func (p *ShardPlanner) TLDs() []TLDSpec { return p.tlds }

// Operators returns the shared operator table (read-only).
func (p *ShardPlanner) Operators() map[string]Operator { return p.operators }

// Plan splits the universe into the given number of shards and returns
// one ShardPlan per shard. A shard count above cfg.Registered is
// clamped; counts ≤ 0 mean one shard. The single pass over the stream
// counts NSEC3 draws so every plan carries its starting ordinal.
func (p *ShardPlanner) Plan(shards int) []ShardPlan {
	if shards <= 0 {
		shards = 1
	}
	if shards > p.cfg.Registered {
		shards = p.cfg.Registered
	}
	plans := make([]ShardPlan, shards)
	offset, nsec3 := 0, 0
	for s := 0; s < shards; s++ {
		size := p.cfg.Registered / shards
		if s < p.cfg.Registered%shards {
			size++
		}
		plans[s] = ShardPlan{Index: s, Offset: offset, Size: size, NSEC3Start: nsec3}
		for i := offset; i < offset+size; i++ {
			if p.nsec3At(i) {
				nsec3++
			}
		}
		offset += size
	}
	return plans
}

// GenerateShard materializes one shard from its plan. The result
// depends only on (Config, plan) — never on which process runs it or
// which shards were generated before.
func (p *ShardPlanner) GenerateShard(plan ShardPlan) (*Shard, error) {
	if plan.Offset < 0 || plan.Size < 0 || plan.Offset+plan.Size > p.cfg.Registered {
		return nil, fmt.Errorf("population: shard plan %d spans [%d,%d) outside the %d-domain universe",
			plan.Index, plan.Offset, plan.Offset+plan.Size, p.cfg.Registered)
	}
	shard := &Shard{
		Index:  plan.Index,
		Offset: plan.Offset,
		Universe: &Universe{
			Config:    p.cfg,
			Domains:   make([]DomainSpec, 0, plan.Size),
			Operators: p.operators,
			TLDs:      p.tlds,
		},
	}
	nsec3Seen := plan.NSEC3Start
	for i := plan.Offset; i < plan.Offset+plan.Size; i++ {
		spec, err := p.domainAt(i)
		if err != nil {
			return nil, err
		}
		if spec.NSEC3 {
			if nsec3Seen < len(p.plan) {
				s := p.plan[nsec3Seen]
				spec.Iterations = s.Iterations
				spec.SaltLen = s.SaltLen
				spec.Operator = s.Operator
			}
			nsec3Seen++
		}
		shard.Universe.Domains = append(shard.Universe.Domains, spec)
	}
	return shard, nil
}

// domainAt generates domain i from its own index-derived stream, so
// the result depends only on (Seed, i) — never on shard boundaries.
func (p *ShardPlanner) domainAt(i int) (DomainSpec, error) {
	rng := domainRNG(p.cfg.Seed, i)
	spec := DomainSpec{TLD: pickTLD(p.tldCum, rng.Float64())}
	name, err := dnswire.FromLabels(fmt.Sprintf("d%07d", i), spec.TLD)
	if err != nil {
		return DomainSpec{}, err
	}
	spec.Name = name
	op := pickOperator(p.ops, p.opCum, rng.Float64())
	spec.Operator = op.Name
	spec.DNSSEC = rng.Float64() < dnssecRate
	if spec.DNSSEC {
		spec.NSEC3 = rng.Float64() < nsec3GivenDNSSEC
	}
	if spec.NSEC3 {
		prof := pickProfile(op.Profiles, rng.Float64())
		spec.Iterations = prof.Iterations
		spec.SaltLen = prof.SaltLen
		spec.OptOut = rng.Float64() < optOutRate
	}
	return spec, nil
}

// nsec3At replays just enough of domain i's private stream to answer
// "is this domain NSEC3-enabled?" — the draws must mirror domainAt's
// order exactly (TLD, operator, DNSSEC, then NSEC3 only when DNSSEC
// hit), because each draw advances the same PCG stream.
func (p *ShardPlanner) nsec3At(i int) bool {
	rng := domainRNG(p.cfg.Seed, i)
	rng.Float64() // TLD pick
	rng.Float64() // operator pick
	if rng.Float64() >= dnssecRate {
		return false
	}
	return rng.Float64() < nsec3GivenDNSSEC
}

// ShardCursor streams a universe shard by shard — the in-process
// convenience wrapper over ShardPlanner for callers that consume the
// decomposition in order.
type ShardCursor struct {
	p     *ShardPlanner
	plans []ShardPlan
	next  int
}

// NewShardCursor prepares a cursor that generates cfg.Registered
// domains across the given number of shards. A shard count above
// cfg.Registered is clamped.
func NewShardCursor(cfg Config, shards int) (*ShardCursor, error) {
	p, err := NewShardPlanner(cfg)
	if err != nil {
		return nil, err
	}
	return &ShardCursor{p: p, plans: p.Plan(shards)}, nil
}

// Shards returns the shard count.
func (c *ShardCursor) Shards() int { return len(c.plans) }

// TLDs returns the shared TLD registry (read-only).
func (c *ShardCursor) TLDs() []TLDSpec { return c.p.TLDs() }

// Operators returns the shared operator table (read-only).
func (c *ShardCursor) Operators() map[string]Operator { return c.p.Operators() }

// Next generates and returns the next shard, or (nil, nil) when every
// shard has been yielded.
func (c *ShardCursor) Next() (*Shard, error) {
	if c.next >= len(c.plans) {
		return nil, nil
	}
	shard, err := c.p.GenerateShard(c.plans[c.next])
	if err != nil {
		return nil, err
	}
	c.next++
	return shard, nil
}

// domainRNG seeds domain i's private PCG stream.
func domainRNG(seed uint64, i int) *rand.Rand {
	s := splitmix(seed ^ splitmix(uint64(i)+0x6C62272E07BB0142))
	return rand.New(rand.NewPCG(s, splitmix(s)))
}

// expectedNSEC3 is the calibration-expected NSEC3-enabled count at a
// scale — the streaming stand-in for the materialized count (which is
// unknowable until the whole stream has been generated).
func expectedNSEC3(registered int) int {
	return int(float64(registered)*dnssecRate*nsec3GivenDNSSEC + 0.5)
}

// specimenPlan expands RareSpecimens into one override per affected
// NSEC3 ordinal: the j-th NSEC3-enabled domain of the stream receives
// plan[j]. Counts scale with the expected NSEC3 population but every
// specimen row keeps at least one slot, so the observed maxima (500
// iterations, 160-byte salt) survive any scale.
func specimenPlan(registered int) []RareSpecimen {
	scale := float64(expectedNSEC3(registered)) / float64(FullNSEC3)
	var plan []RareSpecimen
	for _, spec := range RareSpecimens() {
		n := int(float64(spec.Count)*scale + 0.5)
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			plan = append(plan, spec)
		}
	}
	return plan
}

// injectRareSpecimens applies the specimen plan to a materialized
// universe — the same overrides, at the same NSEC3 ordinals, as the
// streaming cursor applies (GenerateAt re-runs this after re-sampling
// parameters for a different era).
func injectRareSpecimens(u *Universe) {
	plan := specimenPlan(len(u.Domains))
	ord := 0
	for i := range u.Domains {
		if !u.Domains[i].NSEC3 {
			continue
		}
		if ord >= len(plan) {
			break
		}
		d := &u.Domains[i]
		d.Iterations = plan[ord].Iterations
		d.SaltLen = plan[ord].SaltLen
		d.Operator = plan[ord].Operator
		ord++
	}
}
