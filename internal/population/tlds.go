package population

import (
	"fmt"
	"math/rand/v2"
)

// Paper-scale TLD constants (§5.1): 1,449 delegated TLDs, 1,354
// DNSSEC-enabled, 1,302 NSEC3-enabled; 688 with zero additional
// iterations and 447 at 100 (all Identity Digital); salts: 672 none,
// 558 of 8 bytes, 7 of 10 bytes; 85.4 % opt-out; 84.9 % with openly
// available zone data.
const (
	TotalTLDs        = 1449
	DNSSECTLDs       = 1354
	NSEC3TLDs        = 1302
	ZeroIterTLDs     = 688
	IdentityDigital  = 447 // TLDs at 100 iterations in March 2024
	saltNoneTLDs     = 672
	salt8TLDs        = 558
	salt10TLDs       = 7
	optOutTLDs       = 1112 // 85.4 % of 1302
	openZoneDataTLDs = 1105 // 84.9 % of 1302
)

// IdentityDigitalName is the registry services provider operating the
// 447 TLDs that used 100 additional iterations until 2024.
const IdentityDigitalName = "Identity Digital"

// TLDSpec is one top-level domain's configuration.
type TLDSpec struct {
	Name       string
	DNSSEC     bool
	NSEC3      bool // vs NSEC when DNSSEC
	Iterations uint16
	SaltLen    int
	OptOut     bool
	// Registry is the registry services provider ("Identity Digital"
	// for the 100-iteration cohort).
	Registry string
	// OpenZoneData: zone content available via CZDS/AXFR (relevant to
	// the paper's Item 1 discussion).
	OpenZoneData bool
}

// identityDigitalNamed are tldTable members modeled as Identity
// Digital-operated, so registered domains accumulate under ID TLDs
// (the "at least 12.6 M domains" estimate of §5.1).
var identityDigitalNamed = map[string]bool{"shop": true, "online": true, "site": true}

// GenerateTLDs builds the full 1,449-entry TLD registry. The named
// TLDs of tldTable come first (they host the generated domains); the
// rest are synthetic. Bucket counts follow §5.1 exactly.
func GenerateTLDs(seed uint64) []TLDSpec {
	rng := rand.New(rand.NewPCG(seed^0xBEEF, seed|1))
	specs := make([]TLDSpec, 0, TotalTLDs)
	for _, t := range tldTable {
		specs = append(specs, TLDSpec{Name: t.name})
	}
	for i := len(specs); i < TotalTLDs; i++ {
		specs = append(specs, TLDSpec{Name: fmt.Sprintf("xn--synth%04d", i)})
	}

	// Tag the Identity Digital cohort: the named ID TLDs plus enough
	// synthetic ones to reach 447.
	idLeft := IdentityDigital
	for i := range specs {
		if identityDigitalNamed[specs[i].Name] {
			specs[i].Registry = IdentityDigitalName
			idLeft--
		}
	}
	for i := len(tldTable); i < len(specs) && idLeft > 0; i++ {
		if specs[i].Registry == "" {
			specs[i].Registry = IdentityDigitalName
			idLeft--
		}
	}

	// Every ID TLD: DNSSEC + NSEC3, 100 iterations, 8-byte salt,
	// opt-out (they are large delegation zones).
	salt8Left := salt8TLDs
	for i := range specs {
		if specs[i].Registry == IdentityDigitalName {
			specs[i].DNSSEC, specs[i].NSEC3 = true, true
			specs[i].Iterations = 100
			specs[i].SaltLen = 8
			specs[i].OptOut = true
			salt8Left--
		}
	}

	// Remaining NSEC3 TLDs: 688 zero-iteration + 167 small values.
	nsec3Left := NSEC3TLDs - IdentityDigital
	zeroLeft := ZeroIterTLDs
	saltNoneLeft := saltNoneTLDs
	salt10Left := salt10TLDs
	var nonIDNSEC3 []int
	for i := range specs {
		if specs[i].Registry == IdentityDigitalName {
			continue
		}
		if nsec3Left == 0 {
			break
		}
		specs[i].DNSSEC, specs[i].NSEC3 = true, true
		nonIDNSEC3 = append(nonIDNSEC3, i)
		nsec3Left--
	}
	for _, i := range nonIDNSEC3 {
		s := &specs[i]
		if zeroLeft > 0 {
			s.Iterations = 0
			zeroLeft--
		} else {
			s.Iterations = []uint16{1, 2, 5, 10}[rng.IntN(4)]
		}
		switch {
		case s.Iterations == 0 && saltNoneLeft > 0:
			s.SaltLen = 0
			saltNoneLeft--
		case salt8Left > 0:
			s.SaltLen = 8
			salt8Left--
		case salt10Left > 0:
			s.SaltLen = 10
			salt10Left--
		default:
			s.SaltLen = 4
		}
	}

	// NSEC TLDs (DNSSEC without NSEC3) and unsigned TLDs.
	nsecLeft := DNSSECTLDs - NSEC3TLDs
	for i := range specs {
		if specs[i].DNSSEC {
			continue
		}
		if nsecLeft > 0 {
			specs[i].DNSSEC = true
			nsecLeft--
		}
	}

	// Opt-out and open zone data across the NSEC3 TLDs.
	optLeft := optOutTLDs
	openLeft := openZoneDataTLDs
	for i := range specs {
		if !specs[i].NSEC3 {
			continue
		}
		if specs[i].OptOut {
			optLeft-- // ID cohort already opted out
		}
	}
	for i := range specs {
		if !specs[i].NSEC3 || specs[i].OptOut {
			continue
		}
		if optLeft > 0 {
			specs[i].OptOut = true
			optLeft--
		}
	}
	for i := range specs {
		if !specs[i].NSEC3 {
			continue
		}
		if openLeft > 0 {
			specs[i].OpenZoneData = true
			openLeft--
		}
	}
	return specs
}

// TLDAggregate summarizes the registry the way §5.1 reports it.
type TLDAggregate struct {
	Total, DNSSEC, NSEC3      int
	ZeroIterations, AtHundred int
	SaltNone, Salt8, Salt10   int
	OptOut, OpenZoneData      int
	IdentityDigitalTLDs       int
}

// AggregateTLDs computes the registry summary.
func AggregateTLDs(specs []TLDSpec) TLDAggregate {
	var a TLDAggregate
	for _, s := range specs {
		a.Total++
		if s.DNSSEC {
			a.DNSSEC++
		}
		if !s.NSEC3 {
			continue
		}
		a.NSEC3++
		switch s.Iterations {
		case 0:
			a.ZeroIterations++
		case 100:
			a.AtHundred++
		}
		switch s.SaltLen {
		case 0:
			a.SaltNone++
		case 8:
			a.Salt8++
		case 10:
			a.Salt10++
		}
		if s.OptOut {
			a.OptOut++
		}
		if s.OpenZoneData {
			a.OpenZoneData++
		}
		if s.Registry == IdentityDigitalName {
			a.IdentityDigitalTLDs++
		}
	}
	return a
}
