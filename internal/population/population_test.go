package population

import (
	"math"
	"testing"
	"testing/quick"
)

func genUniverse(t testing.TB, n int, ranked int) *Universe {
	t.Helper()
	u, err := Generate(Config{Registered: n, Seed: 42, RankedSize: ranked})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestGenerateDeterministic(t *testing.T) {
	a := genUniverse(t, 5000, 0)
	b := genUniverse(t, 5000, 0)
	if len(a.Domains) != len(b.Domains) {
		t.Fatal("sizes differ")
	}
	for i := range a.Domains {
		if a.Domains[i] != b.Domains[i] {
			t.Fatalf("domain %d differs: %+v vs %+v", i, a.Domains[i], b.Domains[i])
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{Registered: 0}); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestGlobalMarginalsMatchPaper(t *testing.T) {
	// At 100 K domains the sampled marginals must sit close to the
	// calibration targets (§5.1 / Figure 1).
	u := genUniverse(t, 100000, 0)
	var dnssec, nsec3, zeroIter, noSalt, le25, saltLE10, optOut int
	maxIter, maxSalt := 0, 0
	for i := range u.Domains {
		d := &u.Domains[i]
		if d.DNSSEC {
			dnssec++
		}
		if !d.NSEC3 {
			continue
		}
		nsec3++
		if d.Iterations == 0 {
			zeroIter++
		}
		if d.Iterations <= 25 {
			le25++
		}
		if d.SaltLen == 0 {
			noSalt++
		}
		if d.SaltLen <= 10 {
			saltLE10++
		}
		if d.OptOut {
			optOut++
		}
		if int(d.Iterations) > maxIter {
			maxIter = int(d.Iterations)
		}
		if d.SaltLen > maxSalt {
			maxSalt = d.SaltLen
		}
	}
	approx := func(name string, got, want, tolPct float64) {
		t.Helper()
		if math.Abs(got-want) > tolPct {
			t.Errorf("%s = %.2f %%, want %.2f ± %.1f", name, got, want, tolPct)
		}
	}
	approx("DNSSEC rate", 100*float64(dnssec)/float64(len(u.Domains)), 8.8, 1.0)
	approx("NSEC3|DNSSEC", 100*float64(nsec3)/float64(dnssec), 58.9, 3.0)
	approx("zero iterations", 100*float64(zeroIter)/float64(nsec3), 12.2, 2.5)
	approx("no salt", 100*float64(noSalt)/float64(nsec3), 8.6, 2.5)
	approx("iterations<=25", 100*float64(le25)/float64(nsec3), 99.9, 0.5)
	approx("salt<=10B", 100*float64(saltLE10)/float64(nsec3), 97.2, 1.5)
	approx("opt-out", 100*float64(optOut)/float64(nsec3), 6.4, 2.0)
	if maxIter != 500 {
		t.Errorf("max iterations %d, want 500 (injected)", maxIter)
	}
	if maxSalt != 160 {
		t.Errorf("max salt %d, want 160 (injected)", maxSalt)
	}
}

func TestRareSpecimensSurviveAnyScale(t *testing.T) {
	for _, n := range []int{300, 3000} {
		u := genUniverse(t, n, 0)
		if u.NSEC3Count() == 0 {
			continue
		}
		has500, has160 := false, false
		for i := range u.Domains {
			if u.Domains[i].Iterations == 500 {
				has500 = true
			}
			if u.Domains[i].SaltLen == 160 {
				has160 = true
			}
		}
		if !has500 || !has160 {
			t.Errorf("n=%d: specimens missing (500:%v 160B:%v)", n, has500, has160)
		}
	}
}

func TestOperatorSharesSumToOne(t *testing.T) {
	total := 0.0
	for _, op := range Operators() {
		total += op.Share
		wsum := 0.0
		for _, p := range op.Profiles {
			wsum += p.Weight
		}
		if math.Abs(wsum-1.0) > 1e-6 {
			t.Errorf("%s profile weights sum to %f", op.Name, wsum)
		}
	}
	if math.Abs(total-1.0) > 1e-9 {
		t.Errorf("operator shares sum to %f", total)
	}
}

func TestTable2OperatorAssignment(t *testing.T) {
	u := genUniverse(t, 100000, 0)
	counts := map[string]int{}
	nsec3 := 0
	for i := range u.Domains {
		if u.Domains[i].NSEC3 {
			counts[u.Domains[i].Operator]++
			nsec3++
		}
	}
	sq := 100 * float64(counts["Squarespace"]) / float64(nsec3)
	if math.Abs(sq-39.4) > 4 {
		t.Errorf("Squarespace share %.1f %%, paper 39.4 %%", sq)
	}
	one := 100 * float64(counts["one.com"]) / float64(nsec3)
	if math.Abs(one-9.5) > 2.5 {
		t.Errorf("one.com share %.1f %%, paper 9.5 %%", one)
	}
}

func TestTLDRegistryExactBuckets(t *testing.T) {
	tlds := GenerateTLDs(1)
	agg := AggregateTLDs(tlds)
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"total", agg.Total, TotalTLDs},
		{"dnssec", agg.DNSSEC, DNSSECTLDs},
		{"nsec3", agg.NSEC3, NSEC3TLDs},
		{"zero-iter", agg.ZeroIterations, ZeroIterTLDs},
		{"at-100", agg.AtHundred, IdentityDigital},
		{"salt-none", agg.SaltNone, saltNoneTLDs},
		{"salt-8", agg.Salt8, salt8TLDs},
		{"salt-10", agg.Salt10, salt10TLDs},
		{"opt-out", agg.OptOut, optOutTLDs},
		{"open-zone-data", agg.OpenZoneData, openZoneDataTLDs},
		{"identity-digital", agg.IdentityDigitalTLDs, IdentityDigital},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	// Every ID TLD uses exactly 100 iterations.
	for _, s := range tlds {
		if s.Registry == IdentityDigitalName && s.Iterations != 100 {
			t.Errorf("%s: ID TLD with %d iterations", s.Name, s.Iterations)
		}
	}
	// All named TLDs that domains live under exist.
	names := map[string]bool{}
	for _, s := range tlds {
		names[s.Name] = true
	}
	for _, tt := range tldTable {
		if !names[tt.name] {
			t.Errorf("TLD table entry %s missing from registry", tt.name)
		}
	}
}

func TestRankedUniverseMarginals(t *testing.T) {
	u := genUniverse(t, 30000, 30000) // fully ranked universe
	var dnssec, nsec3, zero, nosalt, both int
	ranks := map[int]bool{}
	for i := range u.Domains {
		d := &u.Domains[i]
		if d.Rank == 0 {
			t.Fatal("unranked domain in fully ranked universe")
		}
		if ranks[d.Rank] {
			t.Fatalf("duplicate rank %d", d.Rank)
		}
		ranks[d.Rank] = true
		if d.DNSSEC {
			dnssec++
		}
		if !d.NSEC3 {
			continue
		}
		nsec3++
		if d.Iterations == 0 {
			zero++
		}
		if d.SaltLen == 0 {
			nosalt++
		}
		if d.Iterations == 0 && d.SaltLen == 0 {
			both++
		}
	}
	approx := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %.1f %%, want %.1f ± %.1f", name, got, want, tol)
		}
	}
	approx("ranked DNSSEC", 100*float64(dnssec)/float64(len(u.Domains)), 6.66, 1.0)
	approx("ranked NSEC3|DNSSEC", 100*float64(nsec3)/float64(dnssec), 40.8, 5.0)
	approx("ranked zero-iter", 100*float64(zero)/float64(nsec3), 22.8, 6.0)
	approx("ranked no-salt", 100*float64(nosalt)/float64(nsec3), 23.6, 6.0)
	approx("ranked both", 100*float64(both)/float64(nsec3), 12.7, 5.0)
}

func TestPropDeterministicSalt(t *testing.T) {
	f := func(n uint8, seed uint64) bool {
		want := int(n % 64)
		a := deterministicSalt(want, seed)
		b := deterministicSalt(want, seed)
		if len(a) != want || len(b) != want {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParamProfileParams(t *testing.T) {
	p := ParamProfile{Iterations: 7, SaltLen: 12}
	params := p.Params(99)
	if params.Iterations != 7 || len(params.Salt) != 12 {
		t.Fatalf("params = %+v", params)
	}
	if params.RFC9276Compliant() {
		t.Fatal("non-compliant profile marked compliant")
	}
}
