package population

import (
	"fmt"
	"net/netip"

	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/nsec3"
	"repro/internal/testbed"
	"repro/internal/zone"
)

// Deployment records where the universe was materialized.
type Deployment struct {
	Universe  *Universe
	Hierarchy *testbed.Hierarchy
	// OperatorServers maps operator name to its shared server address.
	OperatorServers map[string]netip.AddrPort
	// TLDServers maps TLD name to its authoritative server address.
	TLDServers map[string]netip.AddrPort
}

// DeployOption tunes a deployment.
type DeployOption func(*deployOptions)

type deployOptions struct {
	cache    *testbed.SignCache
	lazy     bool
	transfer func(TLDSpec) zone.TransferPolicy
}

// WithSignCache reuses signing keys and signed zones for the
// shard-independent infrastructure (root, TLD registry, operator
// zones) across repeated deployments — the sharded survey's loop.
// Domain zones are never cached.
func WithSignCache(c *testbed.SignCache) DeployOption {
	return func(o *deployOptions) { o.cache = c }
}

// WithLazySigning defers all non-root zone signing to first query
// (testbed.WithLazySigning): each zone is registered on its server as
// a spec plus a sign thunk, so a deployment's peak memory is O(zones
// the scanner actually touches) instead of O(universe). Transfer-open
// TLD zones stay lazy too — an AXFR request materializes its zone on
// demand, and callers that want a zone pre-signed (the authd serving
// path) force it with Hierarchy.Materialize.
func WithLazySigning() DeployOption {
	return func(o *deployOptions) { o.lazy = true }
}

// WithTransferPolicy overrides the per-TLD AXFR policy. The default
// mirrors the paper's methodology: zones whose registry publishes zone
// data (CZDS/AXFR) are TransferOpen, everything else refuses.
func WithTransferPolicy(pol func(TLDSpec) zone.TransferPolicy) DeployOption {
	return func(o *deployOptions) { o.transfer = pol }
}

// Deploy materializes the universe into real zones on a simulated
// network: the root, every TLD (all 1,449), one zone per registered
// domain hosted on its operator's shared name server, and one
// infrastructure zone per operator (ns1.<infra-domain> lives there, so
// delegations are glue-less and operator attribution via NS records
// works the way the paper's §5.1 aggregation does).
//
// Every domain zone gets: apex A, "www" A, and an MX — enough surface
// that a random-subdomain probe triggers a genuine negative response.
func Deploy(u *Universe, net *netsim.Network, inception, expiration uint32, opts ...DeployOption) (*Deployment, error) {
	var o deployOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.transfer == nil {
		o.transfer = func(t TLDSpec) zone.TransferPolicy {
			if t.OpenZoneData {
				return zone.TransferOpen
			}
			return zone.TransferRefused
		}
	}
	bopts := []testbed.BuilderOption{testbed.WithCache(o.cache)}
	if o.lazy {
		bopts = append(bopts, testbed.WithLazySigning())
	}
	b := testbed.NewBuilder(inception, expiration, bopts...)
	b.AddZone(testbed.ZoneSpec{
		Apex:   dnswire.Root,
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC},
		Shared: true,
		Server: netsim.Addr4(198, 41, 0, 4),
	})

	// TLD zones. Addresses 192.6.x.y.
	tldAddrs := make(map[string]netip.AddrPort, len(u.TLDs))
	for i, tld := range u.TLDs {
		addr := netsim.Addr4(192, 6, byte(i>>8), byte(i))
		tldAddrs[tld.Name] = addr
		apex, err := dnswire.FromLabels(tld.Name)
		if err != nil {
			return nil, err
		}
		cfg := zone.SignConfig{}
		switch {
		case !tld.DNSSEC:
			cfg.Denial = zone.DenialNone
		case tld.NSEC3:
			cfg.Denial = zone.DenialNSEC3
			cfg.NSEC3 = nsec3.Params{
				Iterations: tld.Iterations,
				Salt:       deterministicSalt(tld.SaltLen, uint64(i)+1),
			}
			cfg.OptOut = tld.OptOut
		default:
			cfg.Denial = zone.DenialNSEC
		}
		b.AddZone(testbed.ZoneSpec{
			Apex: apex, Sign: cfg, Unsigned: !tld.DNSSEC, Shared: true, Server: addr,
		})
	}

	// Operator infrastructure zones and shared servers. 203.0.x.y.
	opServers := make(map[string]netip.AddrPort, len(u.Operators))
	idx := 0
	for _, op := range Operators() {
		addr := netsim.Addr4(203, 0, byte(idx>>8), byte(idx))
		idx++
		opServers[op.Name] = addr
		infraApex, err := dnswire.ParseName(op.InfraDomain)
		if err != nil {
			return nil, err
		}
		b.AddZone(testbed.ZoneSpec{
			Apex: infraApex,
			Populate: func(z *zone.Zone) {
				// The operator's name server host, resolvable by the
				// recursive resolver when chasing glue-less NS.
				z.MustAdd(dnswire.RR{Name: z.Apex.MustChild("ns1"), Class: dnswire.ClassIN,
					TTL: 3600, Data: dnswire.A{Addr: addr.Addr()}})
			},
			Sign:   zone.SignConfig{Denial: zone.DenialNSEC},
			Shared: true,
			Server: addr,
		})
	}
	// Infra TLDs that are not in the universe's TLD table must still
	// resolve; ensure every infra domain's TLD exists as a zone.
	for _, op := range Operators() {
		infraApex := dnswire.MustParseName(op.InfraDomain)
		tld := infraApex.Parent()
		if _, ok := tldAddrs[tld.Labels()[0]]; !ok && !tld.IsRoot() {
			addr := netsim.Addr4(192, 7, 0, byte(len(tldAddrs)))
			tldAddrs[tld.Labels()[0]] = addr
			b.AddZone(testbed.ZoneSpec{
				Apex: tld, Sign: zone.SignConfig{Denial: zone.DenialNSEC}, Shared: true, Server: addr,
			})
		}
	}

	// Domain zones, one per spec, on the operator's server, with the
	// operator's NS host (glue-less, out-of-bailiwick).
	for i := range u.Domains {
		spec := &u.Domains[i]
		op := u.Operators[spec.Operator]
		nsHost := dnswire.MustParseName("ns1." + op.InfraDomain)
		cfg := zone.SignConfig{}
		switch {
		case !spec.DNSSEC:
			cfg.Denial = zone.DenialNone
		case spec.NSEC3:
			cfg.Denial = zone.DenialNSEC3
			cfg.NSEC3 = nsec3.Params{
				Iterations: spec.Iterations,
				Salt:       deterministicSalt(spec.SaltLen, uint64(i)+7),
			}
			cfg.OptOut = spec.OptOut
		default:
			cfg.Denial = zone.DenialNSEC
		}
		b.AddZone(testbed.ZoneSpec{
			Apex:   spec.Name,
			NSHost: nsHost,
			Populate: func(z *zone.Zone) {
				webIP := dnswire.A{Addr: netip.AddrFrom4([4]byte{198, 51, byte(i >> 8), byte(i)})}
				z.MustAdd(dnswire.RR{Name: z.Apex, Class: dnswire.ClassIN, TTL: 300, Data: webIP})
				z.MustAdd(dnswire.RR{Name: z.Apex.MustChild("www"), Class: dnswire.ClassIN, TTL: 300, Data: webIP})
				z.MustAdd(dnswire.RR{Name: z.Apex, Class: dnswire.ClassIN, TTL: 300,
					Data: dnswire.MX{Preference: 10, Host: z.Apex.MustChild("www")}})
			},
			Sign:     cfg,
			Unsigned: !spec.DNSSEC,
			Server:   opServers[spec.Operator],
		})
	}

	h, err := b.Build(net)
	if err != nil {
		return nil, fmt.Errorf("population: deploying universe: %w", err)
	}
	// Apply the AXFR policy (default: open on the TLDs that publish
	// their zone data — CZDS/AXFR in the paper's methodology;
	// everything else refuses transfers).
	for _, tld := range u.TLDs {
		pol := o.transfer(tld)
		if pol != zone.TransferOpen {
			continue
		}
		addr := tldAddrs[tld.Name]
		if srv, ok := h.Servers[addr]; ok {
			apex, err := dnswire.FromLabels(tld.Name)
			if err != nil {
				return nil, err
			}
			srv.SetTransferPolicy(apex, pol)
		}
	}
	return &Deployment{Universe: u, Hierarchy: h, OperatorServers: opServers, TLDServers: tldAddrs}, nil
}
