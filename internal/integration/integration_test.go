// Package integration runs the full measurement pipeline over real
// loopback sockets: authoritative servers and a validating resolver
// listening on 127.0.0.1 UDP/TCP, a scanner and testbed prober talking
// to them with the real client — the same binaries' data path, in-proc.
package integration

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"repro/internal/authserver"
	"repro/internal/compliance"
	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/resolver"
	"repro/internal/respop"
	"repro/internal/scanner"
	"repro/internal/testbed"
)

// TestRealSocketResolverAgainstTestbed runs the full rfc9276 testbed on
// one real UDP/TCP listener (all zones on one server) and drives a
// validating resolver and the probe client over real sockets.
func TestRealSocketResolverAgainstTestbed(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket integration")
	}
	// Build the simulated hierarchy once to obtain the signed zones.
	h, err := core.BuildTestbedWorld(21)
	if err != nil {
		t.Fatal(err)
	}
	// Re-host every zone on a single real listener.
	as := authserver.New()
	for _, sz := range h.Zones {
		as.AddZone(sz)
	}
	authSrv := &netsim.Server{Handler: as}
	authAddr, err := authSrv.Listen(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer authSrv.Close()

	// A resolver over real sockets: every delegation's glue points at
	// simulated addresses, so rewrite all upstream exchanges to the
	// single real listener (it is authoritative for every zone).
	upstream := &rewriteAllExchanger{inner: &netsim.UDPExchanger{Timeout: 2 * time.Second}, to: authAddr}
	res := resolver.New(resolver.Config{
		Roots:       []netip.AddrPort{authAddr},
		TrustAnchor: h.TrustAnchor,
		Exchanger:   upstream,
		Policy:      respop.BIND2021.Policy,
		Now:         func() uint32 { return core.DefaultNow },
	})
	resSrv := &netsim.Server{Handler: res}
	resAddr, err := resSrv.Listen(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer resSrv.Close()

	// Probe it with the real client.
	client := &netsim.UDPExchanger{Timeout: 2 * time.Second}
	tr, err := testbed.ProbeResolver(context.Background(), client, resAddr, "realsock")
	if err != nil {
		t.Fatal(err)
	}
	c := compliance.ClassifyResolver(tr)
	if !c.IsValidator {
		t.Fatalf("not a validator over real sockets: %+v", c)
	}
	if !c.ImplementsItem6 || c.InsecureLimit != 150 {
		t.Fatalf("classification: %+v", c)
	}
}

// rewriteAllExchanger redirects every upstream query to one address —
// valid because that server is authoritative for the whole test tree.
type rewriteAllExchanger struct {
	inner netsim.Exchanger
	to    netip.AddrPort
}

func (r *rewriteAllExchanger) Exchange(ctx context.Context, _ netip.AddrPort, q *dnswire.Message) (*dnswire.Message, error) {
	return r.inner.Exchange(ctx, r.to, q)
}

// TestRealSocketScanner drives the zdns-style scanner over real sockets
// against the same single-listener world through the real resolver.
func TestRealSocketScanner(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket integration")
	}
	h, err := core.BuildTestbedWorld(22)
	if err != nil {
		t.Fatal(err)
	}
	as := authserver.New()
	for _, sz := range h.Zones {
		as.AddZone(sz)
	}
	authSrv := &netsim.Server{Handler: as}
	authAddr, err := authSrv.Listen(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer authSrv.Close()
	res := resolver.New(resolver.Config{
		Roots:       []netip.AddrPort{authAddr},
		TrustAnchor: h.TrustAnchor,
		Exchanger:   &rewriteAllExchanger{inner: &netsim.UDPExchanger{Timeout: 2 * time.Second}, to: authAddr},
		Policy:      respop.Cloudflare.Policy,
		Now:         func() uint32 { return core.DefaultNow },
	})
	resSrv := &netsim.Server{Handler: res}
	resAddr, err := resSrv.Listen(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer resSrv.Close()

	sc := scanner.New(scanner.Config{
		Exchanger: &netsim.UDPExchanger{Timeout: 2 * time.Second},
		Resolver:  resAddr,
		Workers:   4,
		Seed:      2,
	})
	// Scan the it-100 testbed zone: NSEC3-enabled with 100 iterations.
	r := sc.ScanDomain(context.Background(), dnswire.MustParseName("it-100."+testbed.TestbedDomain))
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	c := compliance.Classify(r.Facts)
	if !c.NSEC3Enabled || c.Iterations != 100 || c.SaltLen != 0 {
		t.Fatalf("scan over real sockets misread: %+v", c)
	}
}
