package netsim

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/dnswire"
)

// TestPooledBuffersConcurrentQueries is the regression test for the
// pooled UDP read loop: read buffers are recycled through a sync.Pool
// the moment Unpack returns, and write buffers the moment WriteTo
// does. If either window were wrong — a buffer Put while a packet
// goroutine still reads it, or a response rendered into a buffer
// another packet already claimed — concurrent queries would bleed into
// each other's names and payloads. Every response must match its own
// query exactly; run under -race (CI does) this also catches the
// textbook use-after-Put data race.
func TestPooledBuffersConcurrentQueries(t *testing.T) {
	h := HandlerFunc(func(ctx context.Context, from netip.AddrPort, q *dnswire.Message) *dnswire.Message {
		return &dnswire.Message{
			Header:    dnswire.Header{ID: q.Header.ID, Response: true},
			Questions: q.Questions,
			Answers: []dnswire.RR{{
				Name: q.Question().Name, Class: dnswire.ClassIN, TTL: 1,
				Data: dnswire.TXT{Strings: []string{q.Question().Name.String()}},
			}},
		}
	})
	srv := &Server{Handler: h}
	addr, err := srv.Listen(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const workers = 8
	const perWorker = 25
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &UDPExchanger{Timeout: 5 * time.Second}
			for i := 0; i < perWorker; i++ {
				name := dnswire.MustParseName(fmt.Sprintf("w%d-q%d.pool.example.", w, i))
				q := dnswire.NewQuery(uint16(w*perWorker+i), name, dnswire.TypeTXT, false)
				resp, err := client.Exchange(context.Background(), addr, q)
				if err != nil {
					errs <- fmt.Errorf("worker %d query %d: %v", w, i, err)
					return
				}
				if resp.Header.ID != q.Header.ID {
					errs <- fmt.Errorf("worker %d query %d: ID %d, want %d", w, i, resp.Header.ID, q.Header.ID)
					return
				}
				if got := resp.Question().Name; got != name {
					errs <- fmt.Errorf("worker %d query %d: question %q bled from another packet, want %q", w, i, got, name)
					return
				}
				if len(resp.Answers) != 1 || resp.Answers[0].Data.(dnswire.TXT).Strings[0] != name.String() {
					errs <- fmt.Errorf("worker %d query %d: answer %v, want TXT %q", w, i, resp.Answers, name)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
