package netsim

import (
	"context"
	"errors"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/obs"
)

// echoHandler answers every query with NOERROR and a fixed TXT record.
type echoHandler struct{ txt string }

func (h echoHandler) Handle(ctx context.Context, from netip.AddrPort, q *dnswire.Message) *dnswire.Message {
	resp := &dnswire.Message{
		Header: dnswire.Header{
			ID: q.Header.ID, Response: true, Authoritative: true,
			RecursionDesired: q.Header.RecursionDesired,
		},
		Questions: q.Questions,
	}
	resp.Answers = append(resp.Answers, dnswire.RR{
		Name: q.Question().Name, Class: dnswire.ClassIN, TTL: 60,
		Data: dnswire.TXT{Strings: []string{h.txt}},
	})
	if opt, ok := q.OPT(); ok {
		resp.Additional = append(resp.Additional, (&dnswire.OPT{UDPSize: dnswire.DefaultUDPSize, DO: opt.DO}).AsRR())
	}
	return resp
}

func TestNetworkExchange(t *testing.T) {
	n := NewNetwork(1)
	addr := Addr4(192, 0, 2, 1)
	n.Register(addr, echoHandler{txt: "hello"})
	q := dnswire.NewQuery(42, dnswire.MustParseName("test.example"), dnswire.TypeTXT, false)
	resp, err := n.Exchange(context.Background(), addr, q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.ID != 42 || len(resp.Answers) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if got := resp.Answers[0].Data.(dnswire.TXT).Strings[0]; got != "hello" {
		t.Fatalf("txt = %q", got)
	}
}

func TestNetworkUnreachable(t *testing.T) {
	n := NewNetwork(1)
	q := dnswire.NewQuery(1, dnswire.MustParseName("x."), dnswire.TypeA, false)
	_, err := n.Exchange(context.Background(), Addr4(203, 0, 113, 99), q)
	if !errors.Is(err, ErrHostUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestNetworkUnregister(t *testing.T) {
	n := NewNetwork(1)
	addr := Addr4(192, 0, 2, 2)
	n.Register(addr, echoHandler{})
	if n.NumHosts() != 1 {
		t.Fatal("host not registered")
	}
	n.Unregister(addr)
	if n.NumHosts() != 0 {
		t.Fatal("host not unregistered")
	}
}

func TestNetworkLoss(t *testing.T) {
	n := NewNetwork(7)
	n.LossRate = 1.0
	addr := Addr4(192, 0, 2, 3)
	n.Register(addr, echoHandler{})
	q := dnswire.NewQuery(1, dnswire.MustParseName("x."), dnswire.TypeA, false)
	if _, err := n.Exchange(context.Background(), addr, q); !errors.Is(err, ErrPacketLost) {
		t.Fatalf("err = %v", err)
	}
	// Statistical loss: about half at 0.5.
	n.LossRate = 0.5
	lost := 0
	for i := 0; i < 400; i++ {
		if _, err := n.Exchange(context.Background(), addr, q); err != nil {
			lost++
		}
	}
	if lost < 120 || lost > 280 {
		t.Fatalf("lost %d/400 at 50 %% loss", lost)
	}
}

func TestNetworkFaultInjectionMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	n := NewNetwork(7)
	n.Instrument(reg)
	n.LossRate = 1.0
	addr := Addr4(192, 0, 2, 9)
	n.Register(addr, echoHandler{})
	q := dnswire.NewQuery(1, dnswire.MustParseName("x."), dnswire.TypeA, false)
	for i := 0; i < 3; i++ {
		if _, err := n.Exchange(context.Background(), addr, q); !errors.Is(err, ErrPacketLost) {
			t.Fatalf("err = %v", err)
		}
	}
	if got := reg.Counter("netsim_packets_lost_total", "").Value(); got != 3 {
		t.Errorf("netsim_packets_lost_total %d, want 3", got)
	}
	n.LossRate = 0
	n.Latency = time.Millisecond
	if _, err := n.Exchange(context.Background(), addr, q); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("netsim_latency_injections_total", "").Value(); got != 1 {
		t.Errorf("netsim_latency_injections_total %d, want 1", got)
	}
}

func TestNetworkLatencyAndCancellation(t *testing.T) {
	n := NewNetwork(1)
	n.Latency = 50 * time.Millisecond
	addr := Addr4(192, 0, 2, 4)
	n.Register(addr, echoHandler{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	q := dnswire.NewQuery(1, dnswire.MustParseName("x."), dnswire.TypeA, false)
	if _, err := n.Exchange(ctx, addr, q); err == nil {
		t.Fatal("latency did not respect context")
	}
}

func TestNetworkTruncationFallsBackToTCPPath(t *testing.T) {
	// A handler returning an oversized answer; the simulated exchange
	// must deliver the full (TCP-path) message, not a truncated one.
	big := strings.Repeat("x", 200)
	h := HandlerFunc(func(ctx context.Context, from netip.AddrPort, q *dnswire.Message) *dnswire.Message {
		resp := &dnswire.Message{
			Header:    dnswire.Header{ID: q.Header.ID, Response: true},
			Questions: q.Questions,
		}
		for i := 0; i < 20; i++ {
			resp.Answers = append(resp.Answers, dnswire.RR{
				Name: q.Question().Name, Class: dnswire.ClassIN, TTL: 1,
				Data: dnswire.TXT{Strings: []string{big}},
			})
		}
		return resp
	})
	n := NewNetwork(1)
	addr := Addr4(192, 0, 2, 5)
	n.Register(addr, h)
	q := dnswire.NewQuery(5, dnswire.MustParseName("big.example"), dnswire.TypeTXT, false)
	// Client advertises a small UDP size.
	opt, _ := q.OPT()
	opt.UDPSize = 512
	resp, err := n.Exchange(context.Background(), addr, q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Truncated {
		t.Fatal("got truncated response after fallback")
	}
	if len(resp.Answers) != 20 {
		t.Fatalf("answers = %d, want 20", len(resp.Answers))
	}
}

func TestAddrHelpers(t *testing.T) {
	a := Addr4(10, 1, 2, 3)
	if a.Addr().String() != "10.1.2.3" || a.Port() != 53 {
		t.Fatalf("Addr4 = %s", a)
	}
	b := Addr6(0x1234)
	if !b.Addr().Is6() || b.Port() != 53 {
		t.Fatalf("Addr6 = %s", b)
	}
	if Addr6(1) == Addr6(2) {
		t.Fatal("Addr6 not unique")
	}
}

// TestRealUDPServerAndClient exercises the real-socket path on
// loopback: UDP round trip plus TCP fallback on truncation.
func TestRealUDPServerAndClient(t *testing.T) {
	srv := &Server{Handler: echoHandler{txt: "real-socket"}}
	addr, err := srv.Listen(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &UDPExchanger{Timeout: 2 * time.Second}
	q := dnswire.NewQuery(77, dnswire.MustParseName("udp.example"), dnswire.TypeTXT, true)
	resp, err := client.Exchange(context.Background(), addr, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Data.(dnswire.TXT).Strings[0] != "real-socket" {
		t.Fatalf("resp = %v", resp)
	}
}

func TestRealUDPTruncationTCPFallback(t *testing.T) {
	big := strings.Repeat("y", 200)
	h := HandlerFunc(func(ctx context.Context, from netip.AddrPort, q *dnswire.Message) *dnswire.Message {
		resp := &dnswire.Message{
			Header:    dnswire.Header{ID: q.Header.ID, Response: true},
			Questions: q.Questions,
		}
		for i := 0; i < 30; i++ {
			resp.Answers = append(resp.Answers, dnswire.RR{
				Name: q.Question().Name, Class: dnswire.ClassIN, TTL: 1,
				Data: dnswire.TXT{Strings: []string{big}},
			})
		}
		return resp
	})
	srv := &Server{Handler: h, UDPSize: 512}
	addr, err := srv.Listen(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &UDPExchanger{Timeout: 2 * time.Second}
	q := dnswire.NewQuery(78, dnswire.MustParseName("big.example"), dnswire.TypeTXT, false)
	resp, err := client.Exchange(context.Background(), addr, q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Truncated {
		t.Fatal("client did not fall back to TCP")
	}
	if len(resp.Answers) != 30 {
		t.Fatalf("answers = %d, want 30", len(resp.Answers))
	}
}

func TestRealServerRejectsDoubleListen(t *testing.T) {
	srv := &Server{Handler: echoHandler{}}
	_, err := srv.Listen(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Listen(context.Background(), "127.0.0.1:0"); err == nil {
		t.Fatal("double listen accepted")
	}
}

func TestRealServerIgnoresGarbage(t *testing.T) {
	srv := &Server{Handler: echoHandler{txt: "ok"}}
	addr, err := srv.Listen(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Send garbage first; the server must survive and keep answering.
	conn, err := netDialUDP(addr)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = conn.Write([]byte{0xde, 0xad})
	conn.Close()
	client := &UDPExchanger{Timeout: 2 * time.Second}
	q := dnswire.NewQuery(79, dnswire.MustParseName("ok.example"), dnswire.TypeTXT, false)
	if _, err := client.Exchange(context.Background(), addr, q); err != nil {
		t.Fatal(err)
	}
}

// netDialUDP dials a UDP socket to addr (test helper).
func netDialUDP(addr netip.AddrPort) (net.Conn, error) {
	return net.Dial("udp", addr.String())
}

// sendRawQuery fires one query datagram at addr without waiting for a
// response (test helper for in-flight-handler tests).
func sendRawQuery(t *testing.T, addr netip.AddrPort, id uint16) {
	t.Helper()
	conn, err := netDialUDP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnswire.NewQuery(id, dnswire.MustParseName("block.example"), dnswire.TypeTXT, false)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
}

// blockingHandler parks in the handler until its context is cancelled,
// reporting the observed error.
func blockingHandler(entered chan<- struct{}, done chan<- error) HandlerFunc {
	return func(ctx context.Context, from netip.AddrPort, q *dnswire.Message) *dnswire.Message {
		entered <- struct{}{}
		select {
		case <-ctx.Done():
			done <- ctx.Err()
		case <-time.After(5 * time.Second):
			done <- errors.New("handler context was never cancelled")
		}
		return nil
	}
}

// TestRealServerCloseCancelsHandlerCtx pins the shutdown contract:
// Close cancels the context every handler invocation runs under, so an
// in-flight handler blocked on ctx.Done() unblocks instead of pinning
// Close's WaitGroup for its full deadline.
func TestRealServerCloseCancelsHandlerCtx(t *testing.T) {
	entered := make(chan struct{}, 1)
	done := make(chan error, 1)
	srv := &Server{Handler: blockingHandler(entered, done)}
	addr, err := srv.Listen(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sendRawQuery(t, addr, 80)
	<-entered
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("handler observed %v, want context.Canceled", err)
	}
}

// TestRealServerParentCtxReachesHandlers pins the other half of the
// Listen contract: cancelling the caller's context — without Close —
// also reaches in-flight handlers, because every invocation derives
// from it.
func TestRealServerParentCtxReachesHandlers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	entered := make(chan struct{}, 1)
	done := make(chan error, 1)
	srv := &Server{Handler: blockingHandler(entered, done)}
	addr, err := srv.Listen(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sendRawQuery(t, addr, 81)
	<-entered
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("handler observed %v, want context.Canceled", err)
	}
}
