package netsim

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"repro/internal/dnswire"
)

// This file is the real-socket implementation of the same Exchanger /
// Handler contracts: a UDP+TCP DNS server and a UDP client with TCP
// fallback on truncation. The cmd/ binaries and the loopback
// integration tests run on it; everything else is transport-agnostic.

// Server serves a Handler over UDP and TCP on the same address.
type Server struct {
	Handler Handler
	// UDPSize caps UDP responses; TCP responses are unlimited.
	// Zero means dnswire.DefaultUDPSize.
	UDPSize int

	mu       sync.Mutex
	pc       net.PacketConn
	ln       net.Listener
	wg       sync.WaitGroup
	shutdown chan struct{}
	cancel   context.CancelFunc
}

// Listen binds UDP and TCP on addr ("127.0.0.1:0" for an ephemeral
// loopback port) and starts serving until Close or ctx cancellation.
// ctx is the root context of every handler invocation: cancelling it
// (or calling Close, which cancels the derived context) reaches
// in-flight handlers.
func (s *Server) Listen(ctx context.Context, addr string) (netip.AddrPort, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shutdown != nil {
		return netip.AddrPort{}, errors.New("netsim: server already listening")
	}
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return netip.AddrPort{}, err
	}
	bound := pc.LocalAddr().(*net.UDPAddr).AddrPort()
	ln, err := net.Listen("tcp", bound.String())
	if err != nil {
		_ = pc.Close() // best-effort cleanup on the error path
		return netip.AddrPort{}, err
	}
	s.pc, s.ln = pc, ln
	s.shutdown = make(chan struct{})
	ctx, s.cancel = context.WithCancel(ctx)
	s.wg.Add(2)
	go s.serveUDP(ctx)
	go s.serveTCP(ctx)
	return bound, nil
}

// Close stops the server and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.shutdown == nil {
		s.mu.Unlock()
		return nil
	}
	close(s.shutdown)
	s.cancel()
	// Shutdown path: the goroutines below are unblocked by the close
	// itself; a close error has nothing left to abort.
	_ = s.pc.Close()
	_ = s.ln.Close() // same shutdown rationale as above
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	s.shutdown = nil
	s.mu.Unlock()
	return nil
}

func (s *Server) udpSize() int {
	if s.UDPSize > 0 {
		return s.UDPSize
	}
	return dnswire.DefaultUDPSize
}

// pktPool recycles 65535-octet packet buffers between UDP reads and
// response writes. Each datagram is read into a pooled buffer which is
// handed whole to the handling goroutine (ownership transfer, no copy)
// and returned to the pool the moment Unpack has materialized the query
// — dnswire.Unpack guarantees the Message aliases none of its input.
var pktPool = sync.Pool{
	New: func() any {
		b := make([]byte, 65535)
		return &b
	},
}

// serveUDP is the datagram accept loop: read into a pooled buffer,
// hand it to a per-packet goroutine, repeat. Handlers may block on
// lazy zone signing or cross-server queries, so packets must not be
// handled serially here.
//
//repro:hotpath every real-socket UDP query is read, decoded, dispatched, and answered through this loop
func (s *Server) serveUDP(ctx context.Context) {
	defer s.wg.Done()
	for {
		bp := pktPool.Get().(*[]byte)
		n, from, err := s.pc.ReadFrom(*bp)
		if err != nil {
			pktPool.Put(bp)
			select {
			case <-s.shutdown:
				return
			default:
				continue
			}
		}
		s.wg.Add(1)
		go s.servePacket(ctx, bp, n, from)
	}
}

// servePacket decodes one datagram, dispatches it to the handler, and
// writes the response, recycling pooled buffers at both ends. It owns
// bp from the moment it is spawned and must Put it exactly once.
func (s *Server) servePacket(ctx context.Context, bp *[]byte, n int, from net.Addr) {
	defer s.wg.Done()
	query, err := dnswire.Unpack((*bp)[:n])
	// The Message owns all its memory (no aliasing into *bp), so the
	// read buffer can recycle before the handler runs.
	pktPool.Put(bp)
	if err != nil || len(query.Questions) == 0 || query.Header.Response {
		return // garbage: drop, like most servers
	}
	fromAP := from.(*net.UDPAddr).AddrPort()
	resp := s.Handler.Handle(ctx, fromAP, query)
	if resp == nil {
		return
	}
	size := s.udpSize()
	if opt, ok := query.OPT(); ok && int(opt.UDPSize) < size {
		size = int(opt.UDPSize)
	}
	if size < 512 {
		size = 512
	}
	wbp := pktPool.Get().(*[]byte)
	wire, err := resp.PackBuffer((*wbp)[:0], size, true)
	if err != nil {
		pktPool.Put(wbp)
		return
	}
	// A dropped response is indistinguishable from UDP loss;
	// the client's retry logic covers it. wire may alias *wbp, hence
	// the Put strictly after the write.
	_, _ = s.pc.WriteTo(wire, from)
	pktPool.Put(wbp)
}

func (s *Server) serveTCP(ctx context.Context) {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.shutdown:
				return
			default:
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close() // response already sent; close error is moot
			// SetDeadline on a live TCP conn cannot fail; a stale conn
			// surfaces as a read error on the next loop iteration.
			_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
			for {
				query, err := readTCPMessage(conn)
				if err != nil {
					return
				}
				from := conn.RemoteAddr().(*net.TCPAddr).AddrPort()
				resp := s.Handler.Handle(ctx, from, query)
				if resp == nil {
					return
				}
				if err := writeTCPMessage(conn, resp); err != nil {
					return
				}
			}
		}()
	}
}

//repro:ctxexempt framed reads are deadline-armed by every caller (serveTCP and exchangeTCP set conn deadlines before the first read)
func readTCPMessage(r io.Reader) (*dnswire.Message, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	msgLen := binary.BigEndian.Uint16(lenBuf[:])
	buf := make([]byte, msgLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return dnswire.Unpack(buf)
}

func writeTCPMessage(w io.Writer, m *dnswire.Message) error {
	wire, err := m.Pack()
	if err != nil {
		return err
	}
	if len(wire) > 65535 {
		return fmt.Errorf("netsim: message too large for TCP framing")
	}
	out := make([]byte, 2+len(wire))
	binary.BigEndian.PutUint16(out, uint16(len(wire)))
	copy(out[2:], wire)
	_, err = w.Write(out)
	return err
}

// UDPExchanger is the real-socket client: UDP with retry and TCP
// fallback when the response arrives truncated.
type UDPExchanger struct {
	// Timeout per attempt; zero means 3s.
	Timeout time.Duration
	// Retries after the first attempt; default 1.
	Retries int
}

func (u *UDPExchanger) timeout() time.Duration {
	if u.Timeout > 0 {
		return u.Timeout
	}
	return 3 * time.Second
}

// Exchange implements Exchanger.
//
//repro:nondeterministic clock reads set real-socket I/O deadlines, not response content
func (u *UDPExchanger) Exchange(ctx context.Context, server netip.AddrPort, query *dnswire.Message) (*dnswire.Message, error) {
	wire, err := query.Pack()
	if err != nil {
		return nil, err
	}
	attempts := 1 + u.Retries
	if u.Retries == 0 {
		attempts = 2
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		resp, err := u.exchangeUDPOnce(ctx, server, query, wire)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Header.Truncated {
			return u.exchangeTCP(ctx, server, query)
		}
		return resp, nil
	}
	return nil, lastErr
}

func (u *UDPExchanger) exchangeUDPOnce(ctx context.Context, server netip.AddrPort, query *dnswire.Message, wire []byte) (*dnswire.Message, error) {
	d := net.Dialer{Timeout: u.timeout()}
	conn, err := d.DialContext(ctx, "udp", server.String())
	if err != nil {
		return nil, err
	}
	// The exchange outcome is decided by the read; close errors on the
	// drained socket carry no signal.
	defer conn.Close()
	deadline := time.Now().Add(u.timeout())
	if ctxDL, ok := ctx.Deadline(); ok && ctxDL.Before(deadline) {
		deadline = ctxDL
	}
	// SetDeadline on a fresh conn cannot fail; a dead conn surfaces
	// as an error on the write below.
	_ = conn.SetDeadline(deadline)
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	buf := make([]byte, 65535)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		resp, err := dnswire.Unpack(buf[:n])
		if err != nil {
			continue // garbage datagram; keep waiting
		}
		if resp.Header.ID != query.Header.ID || !resp.Header.Response {
			continue // mismatched transaction
		}
		return resp, nil
	}
}

func (u *UDPExchanger) exchangeTCP(ctx context.Context, server netip.AddrPort, query *dnswire.Message) (*dnswire.Message, error) {
	d := net.Dialer{Timeout: u.timeout()}
	conn, err := d.DialContext(ctx, "tcp", server.String())
	if err != nil {
		return nil, err
	}
	// The exchange outcome is decided by the read; close errors on the
	// drained socket carry no signal.
	defer conn.Close()
	deadline := time.Now().Add(u.timeout())
	if ctxDL, ok := ctx.Deadline(); ok && ctxDL.Before(deadline) {
		deadline = ctxDL
	}
	// SetDeadline on a fresh conn cannot fail; a dead conn surfaces
	// as an error on the write below.
	_ = conn.SetDeadline(deadline)
	if err := writeTCPMessage(conn, query); err != nil {
		return nil, err
	}
	return readTCPMessage(conn)
}
