package netsim

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
)

// This file adds a byte-stream fabric to the simulated network: named
// in-memory listeners over net.Pipe, implementing net.Listener /
// net.Conn so code written against real loopback TCP (the distributed
// survey's coordinator and workers) runs unchanged. Its reason to
// exist is deterministic fault injection — cut a connection after
// exactly N client-written bytes, or kill it outright — failures real
// sockets only produce probabilistically.

// StreamNet is a registry of named in-memory stream listeners.
type StreamNet struct {
	mu        sync.Mutex
	listeners map[string]*StreamListener
}

// NewStreamNet creates an empty stream fabric.
func NewStreamNet() *StreamNet {
	return &StreamNet{listeners: make(map[string]*StreamListener)}
}

// Listen claims name and returns its listener. A second claim of a
// live name fails; closing the listener releases it.
func (n *StreamNet) Listen(name string) (*StreamListener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[name]; ok {
		return nil, fmt.Errorf("netsim: stream listener %q already bound", name)
	}
	l := &StreamListener{
		net:  n,
		name: name,
		ch:   make(chan net.Conn),
		done: make(chan struct{}),
	}
	n.listeners[name] = l
	return l, nil
}

// DialStream connects to the named listener. The returned conn is the
// client end; opts arm fault injection on it.
func (n *StreamNet) DialStream(ctx context.Context, name string, opts ...StreamDialOption) (net.Conn, error) {
	n.mu.Lock()
	l := n.listeners[name]
	n.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("netsim: no stream listener %q", name)
	}
	cli, srv := net.Pipe()
	select {
	case l.ch <- srv:
	case <-l.done:
		_ = cli.Close() // refused: nothing was exchanged yet
		_ = srv.Close()
		return nil, net.ErrClosed
	case <-ctx.Done():
		_ = cli.Close() // refused: nothing was exchanged yet
		_ = srv.Close()
		return nil, ctx.Err()
	}
	conn := net.Conn(cli)
	for _, opt := range opts {
		conn = opt(conn)
	}
	return conn, nil
}

// StreamDialOption wraps the client end of a dialed stream conn.
type StreamDialOption func(net.Conn) net.Conn

// WithWriteLimit cuts the connection after exactly n client-written
// bytes: the nth byte is delivered, everything after is lost and both
// ends see a dead conn — a process dying mid-frame, deterministically.
func WithWriteLimit(n int) StreamDialOption {
	return func(c net.Conn) net.Conn {
		return &limitConn{Conn: c, remaining: n}
	}
}

// limitConn enforces a total write budget, closing the underlying pipe
// the moment the budget is exhausted.
type limitConn struct {
	net.Conn
	mu        sync.Mutex
	remaining int
}

// Write delivers at most the remaining budget, then kills the conn.
//
//repro:ctxexempt net.Conn implementation: cancellation reaches pipes via deadlines/Close, not parameters
func (c *limitConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	remaining := c.remaining
	c.mu.Unlock()
	if remaining <= 0 {
		_ = c.Conn.Close() // budget spent: the conn is already dead
		return 0, io.ErrClosedPipe
	}
	if len(p) > remaining {
		n, err := c.Conn.Write(p[:remaining])
		c.mu.Lock()
		c.remaining = 0
		c.mu.Unlock()
		_ = c.Conn.Close() // cut mid-frame: the peer sees EOF
		if err == nil {
			err = io.ErrClosedPipe
		}
		return n, err
	}
	n, err := c.Conn.Write(p)
	c.mu.Lock()
	c.remaining -= n
	c.mu.Unlock()
	return n, err
}

// StreamListener implements net.Listener over the fabric.
type StreamListener struct {
	net  *StreamNet
	name string
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

// Accept waits for the next dialed connection.
func (l *StreamListener) Accept() (net.Conn, error) {
	select {
	case conn := <-l.ch:
		return conn, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close releases the name and unblocks Accept and pending dials.
func (l *StreamListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.name)
		l.net.mu.Unlock()
	})
	return nil
}

// Addr returns the listener's name as a synthetic address.
func (l *StreamListener) Addr() net.Addr { return streamAddr(l.name) }

type streamAddr string

func (a streamAddr) Network() string { return "netsim-stream" }
func (a streamAddr) String() string  { return string(a) }
