// Package netsim provides the transport layer shared by every DNS
// component in this repository: an Exchanger interface for clients, a
// Handler interface for servers, an in-memory simulated Internet
// (deterministic, loss/latency injectable) for hermetic large-scale
// experiments, and a real UDP/TCP implementation for loopback
// integration tests and the cmd/ binaries.
//
// The paper ran over the real Internet; the simulation preserves the
// property that matters for the study — which bytes each resolver and
// authoritative server returns — while making a 15.5 M-domain-scale
// methodology runnable on one machine.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/netip"
	"sync"
	"time"

	"repro/internal/dnswire"
	"repro/internal/obs"
)

// Exchanger sends one DNS query to a server and returns its response.
// It is the client-side abstraction used by the resolver's iterative
// logic, the scanner, and the testbed prober.
type Exchanger interface {
	Exchange(ctx context.Context, server netip.AddrPort, query *dnswire.Message) (*dnswire.Message, error)
}

// Handler answers DNS queries. Implementations must be safe for
// concurrent use.
type Handler interface {
	Handle(ctx context.Context, from netip.AddrPort, query *dnswire.Message) *dnswire.Message
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, from netip.AddrPort, query *dnswire.Message) *dnswire.Message

// Handle implements Handler.
func (f HandlerFunc) Handle(ctx context.Context, from netip.AddrPort, q *dnswire.Message) *dnswire.Message {
	return f(ctx, from, q)
}

// Errors surfaced by the simulated network.
var (
	ErrHostUnreachable = errors.New("netsim: no host at address")
	ErrPacketLost      = errors.New("netsim: packet lost")
)

// Network is an in-memory Internet: a registry of addressed hosts with
// optional latency and loss. The zero value is usable.
type Network struct {
	mu    sync.RWMutex
	hosts map[netip.AddrPort]Handler

	// Latency is the one-way delivery delay applied twice per exchange.
	Latency time.Duration
	// LossRate in [0,1) drops queries (and their retries) randomly.
	LossRate float64

	rngMu sync.Mutex
	rng   *rand.Rand

	// mLost / mLatency count fault injections (nil without Instrument).
	mLost    *obs.Counter
	mLatency *obs.Counter
}

// NewNetwork creates a lossless, zero-latency network with a seeded RNG
// for deterministic loss experiments.
func NewNetwork(seed uint64) *Network {
	return &Network{
		hosts: make(map[netip.AddrPort]Handler),
		rng:   rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15)),
	}
}

// Instrument attaches fault-injection counters from reg: every
// dropped packet and every injected latency delay is counted. A nil
// registry leaves the network uninstrumented.
func (n *Network) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	n.mLost = reg.Counter("netsim_packets_lost_total",
		"queries dropped by the simulated network's loss injection")
	n.mLatency = reg.Counter("netsim_latency_injections_total",
		"exchanges delayed by the simulated network's latency injection")
}

// Register attaches a handler at addr, replacing any previous one.
func (n *Network) Register(addr netip.AddrPort, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.hosts == nil {
		n.hosts = make(map[netip.AddrPort]Handler)
	}
	n.hosts[addr] = h
}

// Unregister removes the handler at addr.
func (n *Network) Unregister(addr netip.AddrPort) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.hosts, addr)
}

// Lookup returns the handler at addr.
func (n *Network) Lookup(addr netip.AddrPort) (Handler, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	h, ok := n.hosts[addr]
	return h, ok
}

// NumHosts returns the number of registered hosts.
func (n *Network) NumHosts() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.hosts)
}

// Exchange implements Exchanger: the query round-trips through the wire
// codec (so size limits, truncation, and parse errors behave like real
// packets), honoring loss, latency, and context cancellation.
func (n *Network) Exchange(ctx context.Context, server netip.AddrPort, query *dnswire.Message) (*dnswire.Message, error) {
	h, ok := n.Lookup(server)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrHostUnreachable, server)
	}
	if n.LossRate > 0 {
		n.rngMu.Lock()
		lost := n.rng.Float64() < n.LossRate
		n.rngMu.Unlock()
		if lost {
			n.mLost.Inc()
			return nil, fmt.Errorf("%w: to %s", ErrPacketLost, server)
		}
	}
	if n.Latency > 0 {
		n.mLatency.Inc()
		t := time.NewTimer(2 * n.Latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	} else if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Serialize and reparse the query: the server must see exactly what
	// the wire would carry.
	wire, err := query.Pack()
	if err != nil {
		return nil, fmt.Errorf("netsim: packing query: %w", err)
	}
	parsed, err := dnswire.Unpack(wire)
	if err != nil {
		return nil, fmt.Errorf("netsim: query corrupt: %w", err)
	}
	// The "source address" of a simulated client is synthesized from
	// the query ID; servers use it only for logging.
	from := netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, byte(query.Header.ID >> 8), byte(query.Header.ID)}), 53000)
	resp := h.Handle(ctx, from, parsed)
	if resp == nil {
		return nil, fmt.Errorf("%w: %s dropped query", ErrPacketLost, server)
	}
	// Round-trip the response too, honoring the client's UDP budget.
	size := 512
	if opt, ok := parsed.OPT(); ok {
		size = int(opt.UDPSize)
	}
	rwire, err := resp.PackBuffer(nil, size, true)
	if err != nil {
		return nil, fmt.Errorf("netsim: packing response: %w", err)
	}
	out, err := dnswire.Unpack(rwire)
	if err != nil {
		return nil, fmt.Errorf("netsim: response corrupt: %w", err)
	}
	if out.Header.Truncated {
		// Retry over simulated TCP: no size limit. PackBuffer set the
		// TC bit on the handler's message; clear it for the full copy.
		resp.Header.Truncated = false
		rwire, err = resp.PackBuffer(nil, 0, true)
		if err != nil {
			return nil, err
		}
		if out, err = dnswire.Unpack(rwire); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Addr4 builds an IPv4 address:53 endpoint from four octets — a helper
// for assembling simulated topologies.
func Addr4(a, b, c, d byte) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{a, b, c, d}), 53)
}

// Addr6 builds an IPv6 endpoint in 2001:db8::/32 from a host suffix.
func Addr6(suffix uint32) netip.AddrPort {
	var a [16]byte
	a[0], a[1], a[2], a[3] = 0x20, 0x01, 0x0d, 0xb8
	a[12] = byte(suffix >> 24)
	a[13] = byte(suffix >> 16)
	a[14] = byte(suffix >> 8)
	a[15] = byte(suffix)
	return netip.AddrPortFrom(netip.AddrFrom16(a), 53)
}
