package netsim

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// TestStreamDialAndEcho: the fabric behaves like a net.Listener pair.
func TestStreamDialAndEcho(t *testing.T) {
	sn := NewStreamNet()
	ln, err := sn.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		_, _ = conn.Write(buf)
	}()

	conn, err := sn.DialStream(context.Background(), "coord")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("echoed %q", buf)
	}
}

// TestStreamWriteLimit pins the fault-injection contract: the peer
// receives exactly the budgeted bytes, then reads EOF — a partial
// frame, deterministically.
func TestStreamWriteLimit(t *testing.T) {
	sn := NewStreamNet()
	ln, err := sn.Listen("coord")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	got := make(chan []byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		data, _ := io.ReadAll(conn)
		got <- data
	}()

	conn, err := sn.DialStream(context.Background(), "coord", WithWriteLimit(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("hello")); err == nil {
		t.Fatal("over-budget write reported success")
	}
	data := <-got
	if string(data) != "hel" {
		t.Fatalf("peer received %q, want the 3-byte budget", data)
	}
	// The conn is dead for good: further writes fail immediately.
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Fatal("write on a cut conn succeeded")
	}
}

// TestStreamLifecycle: duplicate names are refused, closed listeners
// refuse dials and unblock Accept, and a dial with a cancelled context
// returns promptly.
func TestStreamLifecycle(t *testing.T) {
	sn := NewStreamNet()
	ln, err := sn.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sn.Listen("a"); err == nil {
		t.Fatal("duplicate name accepted")
	}

	accepted := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		accepted <- err
	}()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-accepted; !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Accept after Close returned %v", err)
	}
	if _, err := sn.DialStream(context.Background(), "a"); err == nil {
		t.Fatal("dial to a closed listener succeeded")
	}

	// The name is released: it can be rebound.
	ln2, err := sn.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sn.DialStream(ctx, "a"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled dial returned %v", err)
	}
}
