package authserver

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dnswire"
	"repro/internal/nsec3"
	"repro/internal/obs"
	"repro/internal/zone"
)

// signTestZone builds and signs a minimal zone without a *testing.T:
// sign thunks run on query-handling goroutines, where t.Fatal is
// off-limits. Errors surface as SERVFAIL and fail the assertions.
func signTestZone(apex string) (*zone.Signed, error) {
	apexN := dnswire.MustParseName(apex)
	z := zone.New(apexN, 300)
	z.MustAdd(dnswire.RR{Name: apexN, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.SOA{
		MName: apexN.MustChild("ns"), RName: apexN.MustChild("hostmaster"),
		Serial: 1, Refresh: 1, Retry: 1, Expire: 1, Minimum: 300,
	}})
	z.MustAdd(dnswire.RR{Name: apexN, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NS{Host: apexN.MustChild("ns")}})
	z.MustAdd(dnswire.RR{Name: apexN.MustChild("www"), Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}})
	return z.Sign(zone.SignConfig{
		Denial: zone.DenialNSEC3, NSEC3: nsec3.Params{Iterations: 3},
		Inception: tInception, Expiration: tExpiration,
	})
}

// lazySignFunc wraps signTestZone in a SignFunc that counts invocations.
func lazySignFunc(apex string, calls *atomic.Int64) SignFunc {
	return func() (*zone.Signed, error) {
		calls.Add(1)
		return signTestZone(apex)
	}
}

func TestLazyZoneSignsOnFirstQuery(t *testing.T) {
	s := New()
	var calls atomic.Int64
	s.AddLazyZone(dnswire.MustParseName("example.com"), lazySignFunc("example.com", &calls))
	if m, p := s.LazyStats(); m != 0 || p != 1 {
		t.Fatalf("before query: materialized=%d pending=%d, want 0/1", m, p)
	}
	for i := 0; i < 3; i++ {
		resp := query(t, s, "www.example.com", dnswire.TypeA, true)
		if resp.Header.RCode != dnswire.RCodeNoError {
			t.Fatalf("query %d: rcode %s", i, resp.Header.RCode)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("sign func ran %d times, want 1", got)
	}
	if m, p := s.LazyStats(); m != 1 || p != 0 {
		t.Fatalf("after query: materialized=%d pending=%d, want 1/0", m, p)
	}
}

// TestLazyZoneConcurrentFirstQueries hammers the singleflight under
// -race: many goroutines race the first query against one lazy zone
// and across distinct lazy zones. Every signer must run exactly once,
// every response must be complete.
func TestLazyZoneConcurrentFirstQueries(t *testing.T) {
	const zones, perZone = 8, 16
	s := New()
	reg := obs.NewRegistry()
	s.Instrument(reg)
	calls := make([]atomic.Int64, zones)
	for i := 0; i < zones; i++ {
		apex := fmt.Sprintf("zone-%d.example", i)
		s.AddLazyZone(dnswire.MustParseName(apex), lazySignFunc(apex, &calls[i]))
	}
	var wg sync.WaitGroup
	errs := make(chan string, zones*perZone)
	for i := 0; i < zones; i++ {
		for j := 0; j < perZone; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				// Not query(t, ...): t.Fatal is off-limits outside the
				// test goroutine, so report through the channel instead.
				q := dnswire.NewQuery(1, dnswire.MustParseName(fmt.Sprintf("www.zone-%d.example", i)), dnswire.TypeA, true)
				resp := s.Handle(context.Background(), netip.MustParseAddrPort("10.0.0.1:5353"), q)
				if resp == nil {
					errs <- fmt.Sprintf("zone %d query %d: nil response", i, j)
					return
				}
				if resp.Header.RCode != dnswire.RCodeNoError {
					errs <- fmt.Sprintf("zone %d query %d: rcode %s", i, j, resp.Header.RCode)
				}
			}(i, j)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	for i := range calls {
		if got := calls[i].Load(); got != 1 {
			t.Errorf("zone %d signed %d times, want exactly 1", i, got)
		}
	}
	if m, p := s.LazyStats(); m != zones || p != 0 {
		t.Errorf("materialized=%d pending=%d, want %d/0", m, p, zones)
	}
	if got := reg.Counter("authserver_zones_signed_lazily_total", "").Value(); got != zones {
		t.Errorf("authserver_zones_signed_lazily_total = %d, want %d", got, zones)
	}
	// Every signer observes the histogram; waiters do too, but queries
	// arriving after AddZone take the fast path and skip it — so the
	// floor is one observation per zone, not one per query.
	if got := reg.Histogram("authserver_sign_wait_ns", "", obs.NanosecondBuckets()).Count(); got < zones {
		t.Errorf("authserver_sign_wait_ns observed %d waits, want >= %d", got, zones)
	}
}

// TestLazyZoneSignFailure: a zone whose signing fails keeps answering
// SERVFAIL from the memoized error — the signer is never retried, and
// queries for other names still get REFUSED.
func TestLazyZoneSignFailure(t *testing.T) {
	s := New()
	var calls atomic.Int64
	s.AddLazyZone(dnswire.MustParseName("broken.example"), func() (*zone.Signed, error) {
		calls.Add(1)
		return nil, errors.New("keys unavailable")
	})
	for i := 0; i < 2; i++ {
		resp := query(t, s, "www.broken.example", dnswire.TypeA, true)
		if resp.Header.RCode != dnswire.RCodeServFail {
			t.Fatalf("query %d: rcode %s, want SERVFAIL", i, resp.Header.RCode)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("failing sign func ran %d times, want 1", got)
	}
	if resp := query(t, s, "elsewhere.test", dnswire.TypeA, false); resp.Header.RCode != dnswire.RCodeRefused {
		t.Fatalf("unhosted name: rcode %s, want REFUSED", resp.Header.RCode)
	}
}

// TestMaterializeForcesSigning: Materialize signs without a query (the
// AXFR setup path) and is idempotent; unknown apexes error.
func TestMaterializeForcesSigning(t *testing.T) {
	s := New()
	var calls atomic.Int64
	apex := dnswire.MustParseName("forced.example")
	s.AddLazyZone(apex, lazySignFunc("forced.example", &calls))
	sz, err := s.Materialize(context.Background(), apex)
	if err != nil || sz == nil {
		t.Fatalf("Materialize: %v", err)
	}
	if _, err := s.Materialize(context.Background(), apex); err != nil {
		t.Fatalf("second Materialize: %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("sign func ran %d times, want 1", got)
	}
	// Eagerly-installed zones materialize as a no-op lookup.
	s.AddZone(buildZone(t, "eager.example", zone.DenialNSEC))
	if _, err := s.Materialize(context.Background(), dnswire.MustParseName("eager.example")); err != nil {
		t.Fatalf("eager Materialize: %v", err)
	}
	if _, err := s.Materialize(context.Background(), dnswire.MustParseName("nope.example")); err == nil {
		t.Fatal("Materialize of unhosted apex should error")
	}
}

// TestMaterializeCancelledWaiter pins the cancellation contract added
// with ctx threading: a waiter blocked behind an in-flight signer
// returns ctx.Err() when its context is cancelled, while the signer
// itself runs to completion and memoizes the zone for later callers.
func TestMaterializeCancelledWaiter(t *testing.T) {
	s := New()
	apex := dnswire.MustParseName("slow.example")
	signing := make(chan struct{})
	release := make(chan struct{})
	s.AddLazyZone(apex, func() (*zone.Signed, error) {
		close(signing)
		<-release
		return signTestZone("slow.example")
	})

	signerDone := make(chan error, 1)
	go func() {
		_, err := s.Materialize(context.Background(), apex)
		signerDone <- err
	}()
	<-signing // the signer goroutine now owns the singleflight

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := s.Materialize(ctx, apex)
		waiterDone <- err
	}()
	cancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}

	close(release)
	if err := <-signerDone; err != nil {
		t.Fatalf("signer failed: %v", err)
	}
	// The abandoned wait did not poison the memoized result.
	sz, err := s.Materialize(context.Background(), apex)
	if err != nil || sz == nil {
		t.Fatalf("post-cancel Materialize: sz=%v err=%v", sz, err)
	}
}
