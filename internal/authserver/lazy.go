package authserver

import (
	"context"
	"fmt"
	"time"

	"repro/internal/dnswire"
	"repro/internal/obs"
	"repro/internal/zone"
)

// SignFunc produces the signed zone for a lazily-registered apex. It
// runs at most once per apex (on the first query that reaches the
// zone, or on an explicit Materialize) and must be safe to call from
// any goroutine; the server serializes it through the zone's
// singleflight.
type SignFunc func() (*zone.Signed, error)

// lazyZone is an apex registered without its signed zone: the first
// query materializes it under done — a singleflight channel so
// concurrent first queries for the same apex block on one signer while
// other apexes sign in parallel. sz/err are written before close(done)
// and only read after <-done, which orders the accesses.
type lazyZone struct {
	apex dnswire.Name
	done chan struct{}
	sign SignFunc
	sz   *zone.Signed
	err  error
}

// AddLazyZone registers an apex whose signed zone is produced by sign
// on first demand. Until then the server routes queries for the apex
// exactly as if the zone were installed, paying the signing cost only
// when traffic actually arrives — a hierarchy's peak memory stays
// O(zones touched) instead of O(zones hosted).
func (s *Server) AddLazyZone(apex dnswire.Name, sign SignFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lazy[apex] = &lazyZone{apex: apex, sign: sign}
	s.lazyTotal.Add(1)
}

// Instrument attaches observability: a histogram of nanoseconds
// queries spend blocked on lazy signing (signer and waiters both
// observe), and a counter of zones signed lazily. Call it before
// serving; the fields are read concurrently afterwards. Metrics are
// registered by name, so every server of a hierarchy shares them.
func (s *Server) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mSignWait = reg.Histogram("authserver_sign_wait_ns",
		"nanoseconds a query spent blocked on lazy zone signing", obs.NanosecondBuckets())
	s.mLazySigned = reg.Counter("authserver_zones_signed_lazily_total",
		"zones materialized by their first query instead of at deploy time")
}

// Materialize forces lazy signing of the hosted zone with the given
// apex (idempotent; a no-op for eagerly-installed zones). AXFR setup
// and tests use it to pre-sign a zone without synthesizing a query.
// ctx bounds the wait on a signer already in flight; the signing work
// itself is never abandoned (the memoized result must exist for later
// queries).
func (s *Server) Materialize(ctx context.Context, apex dnswire.Name) (*zone.Signed, error) {
	s.mu.RLock()
	sz, ok := s.zones[apex]
	lz := s.lazy[apex]
	s.mu.RUnlock()
	if ok {
		return sz, nil
	}
	if lz == nil {
		return nil, fmt.Errorf("authserver: no zone %s", apex)
	}
	return s.materialize(ctx, lz)
}

// LazyStats reports how many lazily-registered zones have been
// materialized and how many are still pending (registered but never
// queried, or failed to sign).
func (s *Server) LazyStats() (materialized, pending int) {
	materialized = int(s.lazyMat.Load())
	return materialized, int(s.lazyTotal.Load()) - materialized
}

// materialize runs the zone's singleflight: the first caller signs,
// concurrent callers block until the signer finishes, later callers
// return the memoized result (including a memoized error — a zone that
// failed to sign keeps answering ServFail rather than retrying).
//
//repro:nondeterministic sign-wait timing is telemetry (authserver_sign_wait_ns), never response content
//repro:allocok first-query zone materialization is the lazy-signing cold path; every later query takes the eager-map hit-free route
func (s *Server) materialize(ctx context.Context, lz *lazyZone) (*zone.Signed, error) {
	var start time.Time
	if s.mSignWait != nil {
		start = time.Now()
	}
	observe := func() {
		if s.mSignWait != nil {
			s.mSignWait.Observe(float64(time.Since(start).Nanoseconds()))
		}
	}
	s.mu.Lock()
	if lz.done == nil {
		// First query: this goroutine is the signer. Signing runs to
		// completion even if ctx is cancelled mid-way: waiters and later
		// queries depend on the memoized result existing.
		lz.done = make(chan struct{})
		s.mu.Unlock()
		lz.sz, lz.err = lz.sign()
		if lz.err == nil {
			// Promote to the eager map and drop the lazy entry, so
			// later queries route without rescanning a stale lazy map.
			// (A failed zone stays registered: its memoized error keeps
			// answering SERVFAIL.)
			s.mu.Lock()
			s.zones[lz.sz.Zone.Apex] = lz.sz
			delete(s.lazy, lz.apex)
			s.mu.Unlock()
			s.lazyMat.Add(1)
			s.mLazySigned.Inc()
		}
		close(lz.done)
	} else {
		done := lz.done
		s.mu.Unlock()
		select {
		case <-done:
		case <-ctx.Done():
			// The wait — not the signing — is cancelled; the time spent
			// blocked is still sign-wait the caller experienced.
			observe()
			return nil, ctx.Err()
		}
	}
	observe()
	return lz.sz, lz.err
}
