// Package authserver implements an authoritative DNS server over the
// netsim Handler contract: it owns a set of signed zones, routes each
// query to the deepest matching zone, evaluates it (positive answers,
// referrals, NSEC/NSEC3-proven negatives, wildcard expansion), and
// shapes the wire response (AA bit, EDNS echo, DO-conditional DNSSEC
// records).
//
// It plays the role the paper's own name servers played for
// rfc9276-in-the-wild.com, including the server-side query log used to
// identify forwarders (§4.2: "We enable server-side logging to track
// source IP addresses interacting with our name server").
package authserver

import (
	"context"
	"errors"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dnswire"
	"repro/internal/obs"
	"repro/internal/zone"
)

// Server is an authoritative name server for one or more signed zones.
// Zones are installed either eagerly (AddZone) or lazily (AddLazyZone:
// an apex plus a SignFunc that the first query runs under a per-zone
// singleflight).
type Server struct {
	mu       sync.RWMutex
	zones    map[dnswire.Name]*zone.Signed
	lazy     map[dnswire.Name]*lazyZone
	transfer map[dnswire.Name]zone.TransferPolicy

	lazyTotal atomic.Int64 // lazy zones ever registered
	lazyMat   atomic.Int64 // lazy zones materialized so far

	// Instrumentation (nil without Instrument; obs types are nil-safe).
	mSignWait   *obs.Histogram
	mLazySigned *obs.Counter

	// Log, when non-nil, records every query source (forwarder
	// detection in the resolver experiment).
	Log *QueryLog
}

// errNoZone reports a query for a name this server hosts no zone for
// (answered with REFUSED, unlike a signing failure's SERVFAIL).
var errNoZone = errors.New("authserver: no zone for qname")

// New creates an empty server.
func New() *Server {
	return &Server{
		zones:    make(map[dnswire.Name]*zone.Signed),
		lazy:     make(map[dnswire.Name]*lazyZone),
		transfer: make(map[dnswire.Name]zone.TransferPolicy),
	}
}

// SetTransferPolicy opens or closes AXFR for a hosted zone (default:
// refused, like most of the DNS; the paper's ccTLD sources allowed it).
func (s *Server) SetTransferPolicy(apex dnswire.Name, p zone.TransferPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.transfer[apex] = p
}

// AddZone installs a signed zone, replacing any zone with the same apex.
func (s *Server) AddZone(sz *zone.Signed) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zones[sz.Zone.Apex] = sz
}

// apexFor picks the deepest hosted apex — eagerly installed or lazily
// registered — that is an ancestor of (or equal to) qname.
func (s *Server) apexFor(qname dnswire.Name) (dnswire.Name, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best dnswire.Name
	bestDepth := -1
	for apex := range s.zones {
		if qname.IsSubdomainOf(apex) {
			if d := apex.CountLabels(); d > bestDepth {
				best, bestDepth = apex, d
			}
		}
	}
	for apex := range s.lazy {
		if qname.IsSubdomainOf(apex) {
			if d := apex.CountLabels(); d > bestDepth {
				best, bestDepth = apex, d
			}
		}
	}
	return best, bestDepth >= 0
}

// zoneAt returns the signed zone hosted at apex, materializing it
// first when the apex is lazily registered. The materialized zone is
// promoted into the eager map, so only the first query pays.
func (s *Server) zoneAt(ctx context.Context, apex dnswire.Name) (*zone.Signed, error) {
	s.mu.RLock()
	sz, ok := s.zones[apex]
	lz := s.lazy[apex]
	s.mu.RUnlock()
	if ok {
		return sz, nil
	}
	if lz == nil {
		return nil, errNoZone
	}
	return s.materialize(ctx, lz)
}

// ZoneFor returns the deepest zone whose apex is an ancestor of (or
// equal to) qname, materializing it when lazily registered. A zone
// whose lazy signing failed reports false. ctx bounds the wait on an
// in-flight lazy signer.
func (s *Server) ZoneFor(ctx context.Context, qname dnswire.Name) (*zone.Signed, bool) {
	apex, ok := s.apexFor(qname)
	if !ok {
		return nil, false
	}
	sz, err := s.zoneAt(ctx, apex)
	return sz, err == nil
}

// zoneForQuery routes a query to the right zone. DS records live in the
// parent zone, so a DS query for a hosted apex must be answered by the
// parent zone when this server hosts both (RFC 4035 §3.1.4.1). The
// returned error is errNoZone (nothing hosted → REFUSED) or a lazy
// signing failure (→ SERVFAIL).
func (s *Server) zoneForQuery(ctx context.Context, qname dnswire.Name, qtype dnswire.Type) (*zone.Signed, error) {
	apex, ok := s.apexFor(qname)
	if !ok {
		return nil, errNoZone
	}
	if qtype == dnswire.TypeDS && qname == apex && !qname.IsRoot() {
		if parent, ok := s.apexFor(qname.Parent()); ok && parent != apex {
			apex = parent
		}
	}
	return s.zoneAt(ctx, apex)
}

// Zones returns the hosted zone apexes — eager and lazy, queried or
// not — sorted canonically.
func (s *Server) Zones() []dnswire.Name {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[dnswire.Name]bool, len(s.zones)+len(s.lazy))
	out := make([]dnswire.Name, 0, len(s.zones)+len(s.lazy))
	for apex := range s.zones {
		seen[apex] = true
		out = append(out, apex)
	}
	for apex := range s.lazy {
		if !seen[apex] {
			out = append(out, apex)
		}
	}
	sort.Slice(out, func(i, j int) bool { return dnswire.CanonicalCompare(out[i], out[j]) < 0 })
	return out
}

// newResponse builds the response skeleton for a query: header echo,
// question echo, and the EDNS OPT reply when the query carried one.
// It reports whether the query requested DNSSEC records (DO).
//
//repro:allocok one response Message per query is the Handler contract; the ROADMAP answer cache replaces this with precompiled wire images
func (s *Server) newResponse(query *dnswire.Message) (*dnswire.Message, bool) {
	resp := &dnswire.Message{
		Header: dnswire.Header{
			ID:               query.Header.ID,
			Response:         true,
			Opcode:           query.Header.Opcode,
			RecursionDesired: query.Header.RecursionDesired,
		},
		Questions: query.Questions,
	}
	do := false
	if opt, ok := query.OPT(); ok {
		do = opt.DO
		resp.Additional = append(resp.Additional, (&dnswire.OPT{
			UDPSize: dnswire.DefaultUDPSize,
			DO:      do,
		}).AsRR())
	}
	return resp, do
}

// finishAnswer copies an evaluated zone answer into the response
// sections, keeping the OPT (already in resp.Additional) last. The
// section slices are handed over wholesale — the merge itself does not
// allocate; growth of ans.Additional is charged to the evaluator that
// built it.
func finishAnswer(resp *dnswire.Message, ans *zone.Answer) *dnswire.Message {
	resp.Header.RCode = ans.RCode
	resp.Header.Authoritative = ans.Kind != zone.KindDelegation && ans.Kind != zone.KindNotInZone
	resp.Answers = ans.Answer
	resp.Authority = ans.Authority
	resp.Additional = append(ans.Additional, resp.Additional...)
	return resp
}

// Handle implements netsim.Handler: validate, route to the deepest
// hosted zone, evaluate, shape the wire response. Everything on this
// path runs once per query, so routing itself must not allocate;
// answer assembly is explicitly waived pending the answer cache.
//
//repro:hotpath every authoritative answer — testbed surveys, resolver studies, authd — dispatches through here
func (s *Server) Handle(ctx context.Context, from netip.AddrPort, query *dnswire.Message) *dnswire.Message {
	resp, do := s.newResponse(query)
	if query.Header.Opcode != dnswire.OpcodeQuery || len(query.Questions) != 1 {
		resp.Header.RCode = dnswire.RCodeNotImp
		return resp
	}
	q := query.Questions[0]
	if q.Class != dnswire.ClassIN {
		resp.Header.RCode = dnswire.RCodeRefused
		return resp
	}
	if s.Log != nil {
		s.Log.Record(from, q.Name)
	}
	sz, err := s.zoneForQuery(ctx, q.Name, q.Type)
	if err != nil {
		if errors.Is(err, errNoZone) {
			resp.Header.RCode = dnswire.RCodeRefused
		} else {
			// Lazy signing failed: the zone exists but cannot be served.
			resp.Header.RCode = dnswire.RCodeServFail
		}
		return resp
	}
	if q.Type == dnswire.TypeAXFR {
		return s.handleAXFR(resp, sz, q.Name)
	}
	ans, err := sz.Evaluate(q.Name, q.Type, do)
	if err != nil {
		resp.Header.RCode = dnswire.RCodeServFail
		return resp
	}
	return finishAnswer(resp, ans)
}

// handleAXFR answers a zone transfer request (RFC 5936): the complete
// signed zone between two copies of the apex SOA, or REFUSED when the
// zone's transfer policy (the default) forbids it.
//
//repro:allocok AXFR materializes the whole zone by definition; bulk transfer is not the per-packet serving path
func (s *Server) handleAXFR(resp *dnswire.Message, sz *zone.Signed, qname dnswire.Name) *dnswire.Message {
	if qname != sz.Zone.Apex {
		resp.Header.RCode = dnswire.RCodeNotImp
		return resp
	}
	s.mu.RLock()
	pol := s.transfer[sz.Zone.Apex]
	s.mu.RUnlock()
	if pol != zone.TransferOpen {
		resp.Header.RCode = dnswire.RCodeRefused
		return resp
	}
	resp.Header.Authoritative = true
	resp.Answers = sz.AllRecords()
	return resp
}

// QueryLog is a bounded, concurrency-safe log of query sources — the
// simulated equivalent of the paper's server-side logging.
type QueryLog struct {
	mu      sync.Mutex
	max     int
	entries []LogEntry
}

// LogEntry is one observed query.
type LogEntry struct {
	From  netip.AddrPort
	QName dnswire.Name
}

// NewQueryLog creates a log keeping at most max entries (oldest dropped).
func NewQueryLog(max int) *QueryLog {
	return &QueryLog{max: max}
}

// Record appends an entry.
func (l *QueryLog) Record(from netip.AddrPort, qname dnswire.Name) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) >= l.max && l.max > 0 {
		copy(l.entries, l.entries[1:])
		l.entries = l.entries[:len(l.entries)-1]
	}
	l.entries = append(l.entries, LogEntry{From: from, QName: qname})
}

// Entries returns a snapshot of the log.
func (l *QueryLog) Entries() []LogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LogEntry, len(l.entries))
	copy(out, l.entries)
	return out
}

// SourcesFor returns the distinct source addresses that queried names
// containing the given label — how the paper maps a per-resolver unique
// subdomain back to the addresses that actually hit the name server.
func (l *QueryLog) SourcesFor(match func(dnswire.Name) bool) []netip.AddrPort {
	l.mu.Lock()
	defer l.mu.Unlock()
	seen := make(map[netip.AddrPort]bool)
	var out []netip.AddrPort
	for _, e := range l.entries {
		if match(e.QName) && !seen[e.From] {
			seen[e.From] = true
			out = append(out, e.From)
		}
	}
	return out
}
