package authserver

import (
	"context"
	"net/netip"
	"testing"

	"repro/internal/dnswire"
	"repro/internal/nsec3"
	"repro/internal/zone"
)

const (
	tInception  = 1709251200
	tExpiration = 1711843200
)

func buildZone(t *testing.T, apex string, denial zone.DenialMode) *zone.Signed {
	t.Helper()
	apexN := dnswire.MustParseName(apex)
	z := zone.New(apexN, 300)
	z.MustAdd(dnswire.RR{Name: apexN, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.SOA{
		MName: apexN.MustChild("ns"), RName: apexN.MustChild("hostmaster"),
		Serial: 1, Refresh: 1, Retry: 1, Expire: 1, Minimum: 300,
	}})
	z.MustAdd(dnswire.RR{Name: apexN, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NS{Host: apexN.MustChild("ns")}})
	z.MustAdd(dnswire.RR{Name: apexN.MustChild("ns"), Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.53")}})
	z.MustAdd(dnswire.RR{Name: apexN.MustChild("www"), Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}})
	s, err := z.Sign(zone.SignConfig{
		Denial: denial, NSEC3: nsec3.Params{Iterations: 3},
		Inception: tInception, Expiration: tExpiration,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func query(t *testing.T, s *Server, name string, qt dnswire.Type, do bool) *dnswire.Message {
	t.Helper()
	q := dnswire.NewQuery(1, dnswire.MustParseName(name), qt, do)
	resp := s.Handle(context.Background(), netip.MustParseAddrPort("10.0.0.1:5353"), q)
	if resp == nil {
		t.Fatal("nil response")
	}
	return resp
}

func TestHandlePositive(t *testing.T) {
	s := New()
	s.AddZone(buildZone(t, "example.com", zone.DenialNSEC3))
	resp := query(t, s, "www.example.com", dnswire.TypeA, true)
	if resp.Header.RCode != dnswire.RCodeNoError || !resp.Header.Authoritative {
		t.Fatalf("rcode=%s aa=%v", resp.Header.RCode, resp.Header.Authoritative)
	}
	var hasA, hasSig bool
	for _, rr := range resp.Answers {
		switch rr.Type() {
		case dnswire.TypeA:
			hasA = true
		case dnswire.TypeRRSIG:
			hasSig = true
		}
	}
	if !hasA || !hasSig {
		t.Fatalf("answers = %v", resp.Answers)
	}
	// Same query without DO: no DNSSEC records anywhere.
	resp = query(t, s, "www.example.com", dnswire.TypeA, false)
	for _, rr := range append(resp.Answers, resp.Authority...) {
		switch rr.Type() {
		case dnswire.TypeRRSIG, dnswire.TypeNSEC3, dnswire.TypeNSEC:
			t.Fatalf("DNSSEC record %s without DO", rr.Type())
		}
	}
}

func TestHandleNXDOMAINWithProof(t *testing.T) {
	s := New()
	s.AddZone(buildZone(t, "example.com", zone.DenialNSEC3))
	resp := query(t, s, "missing.example.com", dnswire.TypeA, true)
	if resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %s", resp.Header.RCode)
	}
	set, err := nsec3.ExtractResponseSet(resp.Authority)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := set.VerifyNXDOMAIN(dnswire.MustParseName("missing.example.com")); err != nil {
		t.Fatal(err)
	}
}

func TestHandleRefusedOutOfZone(t *testing.T) {
	s := New()
	s.AddZone(buildZone(t, "example.com", zone.DenialNSEC3))
	resp := query(t, s, "www.other.net", dnswire.TypeA, true)
	if resp.Header.RCode != dnswire.RCodeRefused {
		t.Fatalf("rcode = %s", resp.Header.RCode)
	}
}

func TestHandleNotImp(t *testing.T) {
	s := New()
	s.AddZone(buildZone(t, "example.com", zone.DenialNSEC3))
	q := dnswire.NewQuery(1, dnswire.MustParseName("www.example.com"), dnswire.TypeA, false)
	q.Header.Opcode = dnswire.OpcodeUpdate
	resp := s.Handle(context.Background(), netip.MustParseAddrPort("10.0.0.1:1"), q)
	if resp.Header.RCode != dnswire.RCodeNotImp {
		t.Fatalf("rcode = %s", resp.Header.RCode)
	}
	// Non-IN class refused.
	q2 := dnswire.NewQuery(2, dnswire.MustParseName("www.example.com"), dnswire.TypeA, false)
	q2.Questions[0].Class = dnswire.ClassANY
	resp = s.Handle(context.Background(), netip.MustParseAddrPort("10.0.0.1:1"), q2)
	if resp.Header.RCode != dnswire.RCodeRefused {
		t.Fatalf("rcode = %s", resp.Header.RCode)
	}
}

func TestZoneForPicksDeepest(t *testing.T) {
	s := New()
	parent := buildZone(t, "example.com", zone.DenialNSEC3)
	child := buildZone(t, "sub.example.com", zone.DenialNSEC3)
	s.AddZone(parent)
	s.AddZone(child)
	sz, ok := s.ZoneFor(context.Background(), dnswire.MustParseName("www.sub.example.com"))
	if !ok || sz.Zone.Apex != "sub.example.com." {
		t.Fatalf("ZoneFor = %v, %v", sz, ok)
	}
	if got := s.Zones(); len(got) != 2 {
		t.Fatalf("Zones = %v", got)
	}
}

func TestDSQueryRoutedToParentZone(t *testing.T) {
	// When one server hosts both parent and child, a DS query for the
	// child apex must be answered from the parent.
	apexN := dnswire.MustParseName("example.com")
	z := zone.New(apexN, 300)
	z.MustAdd(dnswire.RR{Name: apexN, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.SOA{
		MName: apexN.MustChild("ns"), RName: apexN.MustChild("hostmaster"),
		Serial: 1, Refresh: 1, Retry: 1, Expire: 1, Minimum: 300,
	}})
	z.MustAdd(dnswire.RR{Name: apexN, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NS{Host: apexN.MustChild("ns")}})
	z.MustAdd(dnswire.RR{Name: apexN.MustChild("ns"), Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.53")}})
	// Delegation with DS for the child.
	sub := dnswire.MustParseName("sub.example.com")
	z.MustAdd(dnswire.RR{Name: sub, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NS{Host: sub.MustChild("ns")}})
	z.MustAdd(dnswire.RR{Name: sub.MustChild("ns"), Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.54")}})
	z.MustAdd(dnswire.RR{Name: sub, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.DS{
		KeyTag: 1, Algorithm: dnswire.AlgECDSAP256SHA256,
		DigestType: dnswire.DigestSHA256, Digest: make([]byte, 32),
	}})
	parent, err := z.Sign(zone.SignConfig{Denial: zone.DenialNSEC3, Inception: tInception, Expiration: tExpiration})
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.AddZone(parent)
	s.AddZone(buildZone(t, "sub.example.com", zone.DenialNSEC3))
	resp := query(t, s, "sub.example.com", dnswire.TypeDS, true)
	if resp.Header.RCode != dnswire.RCodeNoError || len(resp.Answers) == 0 {
		t.Fatalf("DS query: rcode=%s answers=%d", resp.Header.RCode, len(resp.Answers))
	}
	if resp.Answers[0].Type() != dnswire.TypeDS {
		t.Fatalf("first answer %s", resp.Answers[0].Type())
	}
}

func TestQueryLog(t *testing.T) {
	s := New()
	s.AddZone(buildZone(t, "example.com", zone.DenialNSEC3))
	s.Log = NewQueryLog(3)
	for i := 0; i < 5; i++ {
		from := netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 0, byte(i)}), 1000)
		q := dnswire.NewQuery(uint16(i), dnswire.MustParseName("www.example.com"), dnswire.TypeA, false)
		s.Handle(context.Background(), from, q)
	}
	entries := s.Log.Entries()
	if len(entries) != 3 {
		t.Fatalf("log kept %d entries, want 3 (bounded)", len(entries))
	}
	// The newest entries survive.
	if entries[2].From.Addr().As4()[3] != 4 {
		t.Fatalf("last entry from %s", entries[2].From)
	}
	srcs := s.Log.SourcesFor(func(n dnswire.Name) bool { return n == "www.example.com." })
	if len(srcs) != 3 {
		t.Fatalf("SourcesFor = %v", srcs)
	}
}
