package respop

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/compliance"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/resolver"
	"repro/internal/testbed"
	"repro/internal/zone"
)

func TestProfilesAreDistinctAndNamed(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Profiles() {
		if p.Policy.Name == "" || p.Vendor == "" || p.Note == "" {
			t.Errorf("profile %q incompletely documented", p.Policy.Name)
		}
		if seen[p.Policy.Name] {
			t.Errorf("duplicate profile %q", p.Policy.Name)
		}
		seen[p.Policy.Name] = true
	}
}

func TestVendorLimitsMatchPaper(t *testing.T) {
	cases := []struct {
		p              Profile
		insecure, fail int
	}{
		{BIND2021, 150, resolver.NoLimit},
		{BINDPatched, 50, resolver.NoLimit},
		{Unbound2021, 150, resolver.NoLimit},
		{GooglePublicDNS, 100, resolver.NoLimit},
		{Quad9, 150, resolver.NoLimit},
		{Cloudflare, resolver.NoLimit, 150},
		{OpenDNS, resolver.NoLimit, 150},
		{Technitium, resolver.NoLimit, 100},
		{StrictZero, resolver.NoLimit, 0},
	}
	for _, c := range cases {
		if c.p.Policy.InsecureLimit != c.insecure || c.p.Policy.ServfailLimit != c.fail {
			t.Errorf("%s: limits %d/%d, want %d/%d", c.p.Policy.Name,
				c.p.Policy.InsecureLimit, c.p.Policy.ServfailLimit, c.insecure, c.fail)
		}
	}
	// EDE codes: Google 5, OpenDNS 12, Cloudflare/Technitium 27,
	// Quad9/Unbound none (§5.2).
	if GooglePublicDNS.Policy.EDE != dnswire.EDEDNSSECIndeterminate {
		t.Error("Google EDE")
	}
	if OpenDNS.Policy.EDE != dnswire.EDENSECMissing {
		t.Error("OpenDNS EDE")
	}
	if Cloudflare.Policy.EDE != dnswire.EDEUnsupportedNSEC3Iter {
		t.Error("Cloudflare EDE")
	}
	if Quad9.Policy.EDE != 0 || Unbound2021.Policy.EDE != 0 {
		t.Error("Quad9/Unbound must not attach EDE")
	}
	if Technitium.Policy.EDEText == "" {
		t.Error("Technitium must carry EXTRA-TEXT")
	}
}

func TestMixesNormalize(t *testing.T) {
	for _, q := range []Quadrant{OpenIPv4, OpenIPv6, ClosedIPv4, ClosedIPv6} {
		mix := Mix(q)
		total := 0.0
		for _, s := range mix {
			if s.Weight <= 0 {
				t.Errorf("%s: non-positive weight for %s", q, s.Profile.Policy.Name)
			}
			total += s.Weight
		}
		if total <= 0.5 || total > 1.2 {
			t.Errorf("%s: mix total %.3f out of sane range", q, total)
		}
	}
}

func TestAllocateLargestRemainder(t *testing.T) {
	mix := []Share{
		{Profile: BIND2021, Weight: 0.7},
		{Profile: GooglePublicDNS, Weight: 0.25},
		{Profile: Item7Violator, Weight: 0.05},
	}
	out := allocateCounts(mix, 100)
	total := 0
	for _, c := range out {
		total += c
	}
	if total != 100 {
		t.Fatalf("allocated %d", total)
	}
	if out[0] != 70 || out[1] != 25 || out[2] != 5 {
		t.Fatalf("allocation %v", out)
	}
	// Rare profiles get at least one slot when n >= len(mix).
	rare := []Share{
		{Profile: BIND2021, Weight: 0.999},
		{Profile: Item7Violator, Weight: 0.001},
	}
	out = allocateCounts(rare, 10)
	if out[1] != 1 {
		t.Fatalf("rare profile missing: %v", out)
	}
}

// TestAllocateFullScaleCalibration pins the paper's absolute counts:
// at the full 105,200-validator open-IPv4 scale, the calibrated mix
// must yield exactly 92 Technitium boxes and 418 strict-zero boxes
// (§5.2).
func TestAllocateFullScaleCalibration(t *testing.T) {
	mix := Mix(OpenIPv4)
	counts := allocateCounts(mix, 105200)
	byName := map[string]int{}
	for i, c := range counts {
		byName[mix[i].Profile.Policy.Name] = c
	}
	if byName["technitium"] != 92 {
		t.Errorf("technitium = %d, want 92", byName["technitium"])
	}
	if byName["strict-zero"] != 418 {
		t.Errorf("strict-zero = %d, want 418", byName["strict-zero"])
	}
}

func TestDefaultCountsScaling(t *testing.T) {
	c := DefaultCounts(200)
	if c[OpenIPv4] != 526 {
		t.Errorf("OpenIPv4 = %d", c[OpenIPv4])
	}
	// Small quadrants floor at 50.
	if c[ClosedIPv6] != 50 {
		t.Errorf("ClosedIPv6 = %d", c[ClosedIPv6])
	}
	// den=1: full paper counts.
	full := DefaultCounts(1)
	if full[OpenIPv4] != 105200 || full[ClosedIPv4] != 1236 || full[ClosedIPv6] != 689 {
		t.Errorf("full counts: %v", full)
	}
}

// buildSmallWorld constructs a minimal hierarchy for deployment tests.
func buildSmallWorld(t testing.TB) *testbed.Hierarchy {
	t.Helper()
	b := testbed.NewBuilder(1709251200, 1717200000)
	b.AddZone(testbed.ZoneSpec{
		Apex:   dnswire.Root,
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC},
		Server: netsim.Addr4(198, 41, 0, 4),
	})
	b.AddZone(testbed.ZoneSpec{
		Apex:   dnswire.MustParseName("com"),
		Sign:   zone.SignConfig{Denial: zone.DenialNSEC3, OptOut: true},
		Server: netsim.Addr4(192, 5, 6, 30),
	})
	testbed.InstallTestbed(b, netsim.Addr4(203, 0, 113, 10), netsim.Addr6(0x10))
	h, err := b.Build(netsim.NewNetwork(5))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestDeployCreatesWorkingResolvers(t *testing.T) {
	h := buildSmallWorld(t)
	counts := map[Quadrant]int{OpenIPv4: 20, OpenIPv6: 5, ClosedIPv4: 5, ClosedIPv6: 5}
	p, err := NewPlanner(DeployConfig{
		Counts: counts, Seed: 3,
		Now: func() uint32 { return 1712000000 },
	})
	if err != nil {
		t.Fatal(err)
	}
	instances, err := DeployShard(h, p, p.Plan(1)[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != 35 {
		t.Fatalf("deployed %d", len(instances))
	}
	// Addresses unique, registered, and quadrant-correct.
	seen := map[string]bool{}
	for _, inst := range instances {
		key := inst.Addr.String()
		if seen[key] {
			t.Fatalf("duplicate address %s", key)
		}
		seen[key] = true
		if _, ok := h.Net.Lookup(inst.Addr); !ok {
			t.Fatalf("resolver %s not registered", key)
		}
		is6 := inst.Addr.Addr().Is6()
		want6 := inst.Quadrant == OpenIPv6 || inst.Quadrant == ClosedIPv6
		if is6 != want6 {
			t.Fatalf("%s: IPv6=%v for quadrant %s", key, is6, inst.Quadrant)
		}
	}
	// One of them answers a real probe.
	tr, err := testbed.ProbeResolver(context.Background(), h.Net, instances[0].Addr, "smoke")
	if err != nil {
		t.Fatal(err)
	}
	c := compliance.ClassifyResolver(tr)
	if !c.IsValidator {
		t.Fatalf("first instance (%s) is not a validator", instances[0].Profile.Policy.Name)
	}
}

func TestDeployShareAccuracy(t *testing.T) {
	n := 1000
	p, err := NewPlanner(DeployConfig{
		Counts: map[Quadrant]int{OpenIPv4: n}, Seed: 3,
		Now: func() uint32 { return 1712000000 },
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		a, err := p.At(i)
		if err != nil {
			t.Fatal(err)
		}
		counts[a.Profile.Policy.Name]++
	}
	for _, s := range Mix(OpenIPv4) {
		got := float64(counts[s.Profile.Policy.Name]) / float64(n)
		if math.Abs(got-s.Weight) > 0.01 {
			t.Errorf("%s: share %.3f, want %.3f", s.Profile.Policy.Name, got, s.Weight)
		}
	}
}

func TestDeployEmptyFails(t *testing.T) {
	_, err := NewPlanner(DeployConfig{Counts: map[Quadrant]int{}})
	if err == nil {
		t.Fatal("empty deployment accepted")
	}
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Field != "Counts" {
		t.Fatalf("want *ConfigError on Counts, got %v", err)
	}
}

func TestQuadrantStrings(t *testing.T) {
	want := map[Quadrant]string{
		OpenIPv4: "Open, IPv4", OpenIPv6: "Open, IPv6",
		ClosedIPv4: "Closed, IPv4", ClosedIPv6: "Closed, IPv6",
	}
	for q, s := range want {
		if q.String() != s {
			t.Errorf("%d.String() = %q", q, q.String())
		}
	}
}
