// Package respop models the resolver populations of the paper's §4.2
// and §5.2: vendor policy profiles (BIND, Unbound, Knot, PowerDNS —
// pre- and post-CVE-2023-50868 patch — Google Public DNS, Cloudflare,
// Cisco OpenDNS, Quad9, Technitium), broken boxes (strict-zero
// SERVFAILers, Item 7 violators, three-phase Item 12 violators), and
// non-validating resolvers, plus population mixes per measurement
// quadrant (open/closed × IPv4/IPv6) calibrated so the classification
// pipeline reproduces the shares reported in Figure 3 and §5.2.
package respop

import (
	"repro/internal/dnswire"
	"repro/internal/resolver"
)

// Profile couples a resolver policy with its modeled real-world origin.
type Profile struct {
	// Policy is the behaviour handed to the resolver.
	Policy resolver.Policy
	// Vendor documents which implementation/service the profile models.
	Vendor string
	// Note records the source of the behaviour (release notes, the
	// paper's own observations).
	Note string
}

// The vendor profiles the paper names. Iteration limits are the values
// documented in §4.2: BIND9, Knot Resolver, PowerDNS Recursor, and
// Unbound moved to insecure-above-150 in 2021; all but Unbound lowered
// to 50 by end of 2023 (CVE-2023-50868); Google Public DNS goes
// insecure above 100; Quad9 above 150; Cloudflare and Cisco OpenDNS
// SERVFAIL above 150; Technitium SERVFAILs above 100 with EDE 27 and
// EXTRA-TEXT.
var (
	BIND2021 = Profile{
		Vendor: "BIND 9.16.16+", Note: "insecure above 150 iterations (2021); predates EDE support",
		Policy: resolver.Policy{
			Name: "bind9-2021", Validate: true,
			InsecureLimit: 150, ServfailLimit: resolver.NoLimit,
			VerifyInsecureNSEC3: true,
		},
	}
	BINDPatched = Profile{
		Vendor: "BIND 9.19.19+", Note: "CVE-2023-50868 patch: limit lowered to 50",
		Policy: resolver.Policy{
			Name: "bind9-cve-patched", Validate: true,
			InsecureLimit: 50, ServfailLimit: resolver.NoLimit,
			VerifyInsecureNSEC3: true,
			EDE:                 dnswire.EDEUnsupportedNSEC3Iter,
		},
	}
	Unbound2021 = Profile{
		Vendor: "Unbound 1.13.2+", Note: "kept the 150 limit; no EDE",
		Policy: resolver.Policy{
			Name: "unbound-2021", Validate: true,
			InsecureLimit: 150, ServfailLimit: resolver.NoLimit,
			VerifyInsecureNSEC3: true,
		},
	}
	GooglePublicDNS = Profile{
		Vendor: "Google Public DNS", Note: "insecure above 100; EDE 5 (DNSSEC Indeterminate)",
		Policy: resolver.Policy{
			Name: "google-public-dns", Validate: true,
			InsecureLimit: 100, ServfailLimit: resolver.NoLimit,
			VerifyInsecureNSEC3: true,
			EDE:                 dnswire.EDEDNSSECIndeterminate,
		},
	}
	Quad9 = Profile{
		Vendor: "Quad9", Note: "insecure above 150; no EDE",
		Policy: resolver.Policy{
			Name: "quad9", Validate: true,
			InsecureLimit: 150, ServfailLimit: resolver.NoLimit,
			VerifyInsecureNSEC3: true,
		},
	}
	Cloudflare = Profile{
		Vendor: "Cloudflare Resolver", Note: "SERVFAIL above 150; EDE 27",
		Policy: resolver.Policy{
			Name: "cloudflare", Validate: true,
			InsecureLimit: resolver.NoLimit, ServfailLimit: 150,
			VerifyInsecureNSEC3: true,
			EDE:                 dnswire.EDEUnsupportedNSEC3Iter,
		},
	}
	OpenDNS = Profile{
		Vendor: "Cisco OpenDNS", Note: "SERVFAIL above 150; EDE 12 (NSEC Missing)",
		Policy: resolver.Policy{
			Name: "opendns", Validate: true,
			InsecureLimit: resolver.NoLimit, ServfailLimit: 150,
			VerifyInsecureNSEC3: true,
			EDE:                 dnswire.EDENSECMissing,
		},
	}
	Technitium = Profile{
		Vendor: "Technitium DNS Server", Note: "SERVFAIL above 100; EDE 27 with EXTRA-TEXT",
		Policy: resolver.Policy{
			Name: "technitium", Validate: true,
			InsecureLimit: resolver.NoLimit, ServfailLimit: 100,
			VerifyInsecureNSEC3: true,
			EDE:                 dnswire.EDEUnsupportedNSEC3Iter,
			EDEText:             "Unsupported NSEC3 iterations value",
		},
	}
	StrictZero = Profile{
		Vendor: "strict-zero boxes", Note: "SERVFAIL for any iteration count above 0; RA echoed (§5.2)",
		Policy: resolver.Policy{
			Name: "strict-zero", Validate: true,
			InsecureLimit: resolver.NoLimit, ServfailLimit: 0,
			VerifyInsecureNSEC3: true,
			EchoRA:              true,
		},
	}
	NegativeADForwarder = Profile{
		Vendor: "AD-stripping forwarders", Note: "validate (expired ⇒ SERVFAIL) but never set AD on NXDOMAIN — no observable Item 6 transition (the ≈40 % of §5.2 validators outside Items 6/8)",
		Policy: resolver.Policy{
			Name: "ad-stripping-forwarder", Validate: true,
			InsecureLimit: 150, ServfailLimit: resolver.NoLimit,
			VerifyInsecureNSEC3: true,
			NoNegativeAD:        true,
		},
	}
	Legacy2018 = Profile{
		Vendor: "pre-2021 validators", Note: "no iteration limit below the RFC 5155 caps",
		Policy: resolver.Policy{
			Name: "legacy-2018", Validate: true,
			InsecureLimit: resolver.NoLimit, ServfailLimit: resolver.NoLimit,
			VerifyInsecureNSEC3: true,
		},
	}
	Item7Violator = Profile{
		Vendor: "misconfigured validators", Note: "skip RRSIG check on over-limit NSEC3 (violates Item 7; 0.2 % in §5.2)",
		Policy: resolver.Policy{
			Name: "item7-violator", Validate: true,
			InsecureLimit: 150, ServfailLimit: resolver.NoLimit,
			VerifyInsecureNSEC3: false,
		},
	}
	ThreePhase = Profile{
		Vendor: "broken boxes", Note: "insecure at one limit, SERVFAIL at a higher one (violates Item 12; 4.3 % in §5.2)",
		Policy: resolver.Policy{
			Name: "three-phase", Validate: true,
			InsecureLimit: 100, ServfailLimit: 150,
			VerifyInsecureNSEC3: true,
		},
	}
	NonValidating = Profile{
		Vendor: "non-validating resolvers", Note: "no DNSSEC validation at all",
		Policy: resolver.Policy{
			Name: "non-validating", Validate: false,
			InsecureLimit: resolver.NoLimit, ServfailLimit: resolver.NoLimit,
		},
	}
)

// Profiles lists every profile, for iteration in tests and docs.
func Profiles() []Profile {
	return []Profile{
		BIND2021, BINDPatched, Unbound2021, GooglePublicDNS, Quad9,
		Cloudflare, OpenDNS, Technitium, StrictZero, Legacy2018,
		NegativeADForwarder, Item7Violator, ThreePhase, NonValidating,
	}
}

// Quadrant names one of the four measured resolver categories of
// Figure 3.
type Quadrant int

// Quadrants.
const (
	OpenIPv4 Quadrant = iota
	OpenIPv6
	ClosedIPv4
	ClosedIPv6
)

// String returns the figure label.
func (q Quadrant) String() string {
	switch q {
	case OpenIPv4:
		return "Open, IPv4"
	case OpenIPv6:
		return "Open, IPv6"
	case ClosedIPv4:
		return "Closed, IPv4"
	case ClosedIPv6:
		return "Closed, IPv6"
	}
	return "?"
}

// Share is one profile's weight within a quadrant mix.
type Share struct {
	Profile Profile
	Weight  float64
}

// Mix returns the calibrated profile mix for a quadrant. The weights
// apportion *validators* so the §5.2 shares emerge: 59.9 % implement
// Item 6 (150 dominant, 100 = Google at 36.4 % of open IPv4, 50 =
// patched at 1/12.5 of the 150 group), 18.4 % implement Item 8 (mostly
// SERVFAIL from 151 via Cloudflare/OpenDNS forwardees, plus the small
// Technitium and strict-zero clusters), ≈22 % validate with no limit
// below the RFC 5155 caps, 0.2 % violate Item 7, and 4.3 % are
// three-phase boxes violating Item 12. EDE 27 stays under 18 % of the
// limit-implementing group (§5.2): only Cloudflare, Technitium, and
// CVE-patched BIND emit it.
func Mix(q Quadrant) []Share {
	switch q {
	case OpenIPv4:
		return []Share{
			// Item 6 at 150: 2021-era BIND/Unbound/Knot/PowerDNS plus
			// Quad9 forwardees — 17.6 % (so that with Google's 36.4 %
			// and the patched 1.4 %, Item 6 lands at ≈59.9 %).
			{BIND2021, 0.130}, {Unbound2021, 0.036}, {Quad9, 0.010},
			// Item 6 at 100: Google Public DNS forwardees — the 36.4 %
			// of open IPv4 validators that cleared AD at 101 (§5.2).
			{GooglePublicDNS, 0.364},
			// Item 6 at 50: CVE-2023-50868-patched software, 12.5×
			// rarer than the 150 limit (§5.2).
			{BINDPatched, 0.014},
			// Item 8 at 151: Cloudflare and OpenDNS forwardees.
			{Cloudflare, 0.100}, {OpenDNS, 0.036},
			// Item 8 at 101: Technitium — weight calibrated so
			// largest-remainder allocation at the full 105,200-validator
			// scale yields exactly the paper's 92 resolvers.
			{Technitium, 0.00088},
			// Item 8 at 1: strict-zero boxes — exactly 418 resolvers at
			// full scale, same calibration.
			{StrictZero, 0.00397},
			// Validators with no observable transition: AD-stripping
			// forwarders plus a residue of no-limit pre-2021 boxes.
			{NegativeADForwarder, 0.24015}, {Legacy2018, 0.020},
			{Item7Violator, 0.002},
			{ThreePhase, 0.043},
		}
	case OpenIPv6:
		return []Share{
			{BIND2021, 0.270}, {Unbound2021, 0.080}, {Quad9, 0.020},
			{GooglePublicDNS, 0.150},
			{BINDPatched, 0.030},
			{Cloudflare, 0.100}, {OpenDNS, 0.040},
			{StrictZero, 0.002},
			{NegativeADForwarder, 0.242}, {Legacy2018, 0.020},
			{Item7Violator, 0.002},
			{ThreePhase, 0.044},
		}
	case ClosedIPv4:
		return []Share{
			{BIND2021, 0.290}, {Unbound2021, 0.090}, {Quad9, 0.010},
			{GooglePublicDNS, 0.140},
			{BINDPatched, 0.030},
			{Cloudflare, 0.090}, {OpenDNS, 0.040},
			{NegativeADForwarder, 0.246}, {Legacy2018, 0.020},
			{Item7Violator, 0.002},
			{ThreePhase, 0.042},
		}
	default: // ClosedIPv6
		return []Share{
			{BIND2021, 0.300}, {Unbound2021, 0.100},
			{GooglePublicDNS, 0.120},
			{BINDPatched, 0.030},
			{Cloudflare, 0.100}, {OpenDNS, 0.030},
			{NegativeADForwarder, 0.252}, {Legacy2018, 0.020},
			{Item7Violator, 0.002},
			{ThreePhase, 0.046},
		}
	}
}

// DeployConfig sizes a resolver population.
type DeployConfig struct {
	// Validators per quadrant (the paper found 105.2 K open IPv4,
	// 6.8 K open IPv6, 1,236 closed IPv4, 689 closed IPv6; deploy a
	// scaled-down version).
	Counts map[Quadrant]int
	// Seed drives the deterministic profile assignment.
	Seed uint64
	// Now is the simulation clock for all resolvers.
	Now func() uint32
}

// DefaultCounts scales the paper's validator counts (105.2 K open
// IPv4, 6.8 K open IPv6, 1,236 closed IPv4, 689 closed IPv6) by 1/den,
// keeping at least 50 resolvers per quadrant so shares stay resolvable.
func DefaultCounts(den int) map[Quadrant]int {
	if den < 1 {
		den = 1
	}
	scale := func(n int) int {
		s := n / den
		if s < 50 {
			s = min(n, 50)
		}
		return s
	}
	return map[Quadrant]int{
		OpenIPv4:   scale(105200),
		OpenIPv6:   scale(6800),
		ClosedIPv4: scale(1236),
		ClosedIPv6: scale(689),
	}
}

// allocateCounts distributes n slots over the mix by largest
// remainder, guaranteeing at least one slot per profile when
// n ≥ len(mix). The deterministic allocation keeps shares exact at any
// scale, so rare profiles (Item 7 violators at 0.2 %, strict-zero
// boxes) are present whenever the quadrant can hold them — the
// property the paper's absolute counts (418 strict-zero boxes,
// 92 Technitium) rely on.
func allocateCounts(mix []Share, n int) []int {
	total := 0.0
	for _, s := range mix {
		total += s.Weight
	}
	counts := make([]int, len(mix))
	rema := make([]float64, len(mix))
	used := 0
	for i, s := range mix {
		ideal := float64(n) * s.Weight / total
		counts[i] = int(ideal)
		rema[i] = ideal - float64(counts[i])
		used += counts[i]
	}
	for used < n {
		best := 0
		for i := 1; i < len(rema); i++ {
			if rema[i] > rema[best] {
				best = i
			}
		}
		counts[best]++
		rema[best] = -1
		used++
	}
	// Guarantee presence of every profile by stealing from the largest.
	if n >= len(mix) {
		for i := range counts {
			if counts[i] > 0 {
				continue
			}
			donor := 0
			for j := range counts {
				if counts[j] > counts[donor] {
					donor = j
				}
			}
			if counts[donor] > 1 {
				counts[donor]--
				counts[i]++
			}
		}
	}
	return counts
}
